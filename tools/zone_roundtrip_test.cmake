# Runs `cdnstool zone-sample`, writes it to a file, and verifies
# `cdnstool zone-check` accepts it.
execute_process(COMMAND ${CDNSTOOL} zone-sample
                OUTPUT_FILE ${CMAKE_CURRENT_BINARY_DIR}/sample.zone
                RESULT_VARIABLE sample_result)
if(NOT sample_result EQUAL 0)
  message(FATAL_ERROR "zone-sample failed: ${sample_result}")
endif()
execute_process(COMMAND ${CDNSTOOL} zone-check
                        ${CMAKE_CURRENT_BINARY_DIR}/sample.zone
                RESULT_VARIABLE check_result OUTPUT_VARIABLE out)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "zone-check rejected the sample zone: ${out}")
endif()
