// cdnstool — the command-line front end to the clouddns library.
//
//   cdnstool simulate  --vantage nl --year 2020 --queries 100000
//                      --out week.cdns [--anonymize-key K]
//   cdnstool inspect   week.cdns [--by qtype|rcode|transport|family] [--top N]
//   cdnstool anonymize in.cdns out.cdns --key K
//   cdnstool dig       <qname> [qtype] [--qmin] [--validate] [--edns N]
//   cdnstool zone-check file.zone [--origin name]
//   cdnstool zone-sample
//   cdnstool verify    file...   (storage-frame integrity check)
//
// Every subcommand exercises the public library API only.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/report.h"
#include "analysis/rssac002.h"
#include "base/io.h"
#include "capture/anonymize.h"
#include "capture/columnar.h"
#include "capture/pcap.h"
#include "cloud/scenario.h"
#include "entrada/analytics.h"
#include "entrada/topk.h"
#include "resolver/resolver.h"
#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "zone/dnssec.h"
#include "zone/master_file.h"
#include "zone/zone_builder.h"

using namespace clouddns;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::unordered_map<std::string, std::string> options;
  std::unordered_map<std::string, bool> flags;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          args.options[key] = argv[++i];
        } else {
          args.flags[key] = true;
        }
      } else {
        args.positional.push_back(std::move(arg));
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const {
    return flags.count(key) > 0 || options.count(key) > 0;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cdnstool simulate   --vantage nl|nz|root --year 2018|2019|2020\n"
      "                      [--queries N] [--seed S] [--out file.cdns]\n"
      "                      [--anonymize-key K]\n"
      "  cdnstool inspect    file.cdns [--by qtype|rcode|transport|family]\n"
      "                      [--top N] [--rssac002]\n"
      "  cdnstool anonymize  in.cdns out.cdns --key K\n"
      "  cdnstool export-pcap in.cdns out.pcap [--raw]\n"
      "                      (--raw: plain libpcap for tcpdump/wireshark,\n"
      "                       no integrity frame)\n"
      "  cdnstool import-pcap in.pcap out.cdns\n"
      "  cdnstool report     file.cdns   (cloud-provider attribution)\n"
      "  cdnstool dig        qname [qtype] [--qmin] [--validate] [--edns N]\n"
      "  cdnstool zone-check file.zone [--origin name]\n"
      "  cdnstool zone-sample\n"
      "  cdnstool verify     file...     (storage-frame integrity check)\n");
  return 2;
}

cloud::Vantage VantageFrom(const std::string& text) {
  if (text == "nz") return cloud::Vantage::kNz;
  if (text == "root") return cloud::Vantage::kRoot;
  return cloud::Vantage::kNl;
}

int CmdSimulate(const Args& args) {
  cloud::ScenarioConfig config;
  config.vantage = VantageFrom(args.Get("vantage", "nl"));
  config.year = std::atoi(args.Get("year", "2020").c_str());
  config.client_queries =
      std::strtoull(args.Get("queries", "100000").c_str(), nullptr, 10);
  config.seed = std::strtoull(args.Get("seed", "20201027").c_str(), nullptr, 10);

  std::fprintf(stderr, "simulating %s %d (%llu client queries)...\n",
               std::string(cloud::ToString(config.vantage)).c_str(),
               config.year,
               static_cast<unsigned long long>(config.client_queries));
  cloud::ScenarioResult result = cloud::RunScenario(config);
  std::fprintf(stderr, "captured %zu queries\n", result.records.size());

  // TakeFlat, not a plain move: the result keeps records sharded, and the
  // export below needs the single merge-ordered stream.
  capture::CaptureBuffer records = std::move(result.records).TakeFlat();
  if (args.Has("anonymize-key")) {
    capture::Anonymizer anonymizer(std::strtoull(
        args.Get("anonymize-key", "1").c_str(), nullptr, 10));
    records = anonymizer.AnonymizeCapture(records);
    std::fprintf(stderr, "source addresses anonymized\n");
  }

  std::string out = args.Get("out", "capture.cdns");
  if (auto status = capture::WriteCaptureFileStatus(out, records);
      !status.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}

int CmdInspect(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto records = capture::ReadCaptureFile(args.positional[0]);
  if (!records) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  std::printf("%zu records\n", records->size());
  if (records->empty()) return 0;
  std::printf("window: %s .. %s\n",
              sim::DateString(records->front().time_us).c_str(),
              sim::DateString(records->back().time_us).c_str());

  std::string by = args.Get("by", "qtype");
  entrada::KeyFn key;
  if (by == "rcode") {
    key = entrada::KeyRcode();
  } else if (by == "transport") {
    key = entrada::KeyTransport();
  } else if (by == "family") {
    key = entrada::KeyIpFamily();
  } else {
    key = entrada::KeyQtype();
  }
  auto agg = entrada::CountBy(*records, key);
  analysis::TextTable table({by, "queries", "share"});
  for (const auto& [bucket, count] : agg.counts) {
    table.AddRow({bucket, analysis::Count(count),
                  analysis::Percent(agg.Share(bucket))});
  }
  std::printf("%s", table.Render().c_str());

  std::size_t top_n =
      std::strtoul(args.Get("top", "5").c_str(), nullptr, 10);
  entrada::SpaceSaving topk(1024);
  for (const auto& record : *records) topk.Add(record.src.ToString());
  std::printf("\ntop %zu sources:\n", top_n);
  for (const auto& entry : topk.Top(top_n)) {
    std::printf("  %-40s %s\n", entry.key.c_str(),
                analysis::Count(entry.count).c_str());
  }
  std::printf("\ndistinct sources: %llu (exact), %.0f (HLL)\n",
              static_cast<unsigned long long>(
                  entrada::DistinctExact(*records, entrada::KeySrcAddress())),
              entrada::DistinctSketch(*records, entrada::KeySrcAddress())
                  .Estimate());
  if (args.Has("rssac002")) {
    std::printf("\nRSSAC002-style daily metrics:\n");
    for (const auto& day : analysis::Rssac002Report(*records)) {
      std::printf("%s", analysis::RenderRssac002Yaml(day, "capture").c_str());
    }
  }
  std::printf("junk ratio: %s\n",
              analysis::Percent(static_cast<double>(entrada::CountIf(
                                    *records, entrada::FilterJunk())) /
                                static_cast<double>(records->size()))
                  .c_str());
  return 0;
}

int CmdAnonymize(const Args& args) {
  if (args.positional.size() != 2 || !args.Has("key")) return Usage();
  auto records = capture::ReadCaptureFile(args.positional[0]);
  if (!records) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  capture::Anonymizer anonymizer(
      std::strtoull(args.Get("key", "1").c_str(), nullptr, 10));
  if (auto status = capture::WriteCaptureFileStatus(
          args.positional[1], anonymizer.AnonymizeCapture(*records));
      !status.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n",
                 args.positional[1].c_str(), status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "anonymized %zu records -> %s\n", records->size(),
               args.positional[1].c_str());
  return 0;
}

int CmdReport(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto records = capture::ReadCaptureFile(args.positional[0]);
  if (!records) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  // Attribution uses the paper's Table 1 provider networks; everything
  // else counts as "other ASes".
  net::AsDatabase asdb;
  cloud::RegisterProviderAses(asdb);
  std::map<std::string, std::uint64_t> per_provider;
  std::uint64_t cloud_total = 0;
  for (const auto& record : *records) {
    auto asn = asdb.OriginAs(record.src);
    cloud::Provider provider =
        asn ? cloud::ProviderOfAsn(*asn) : cloud::Provider::kOther;
    ++per_provider[std::string(cloud::ToString(provider))];
    cloud_total += provider != cloud::Provider::kOther;
  }
  analysis::TextTable table({"provider", "queries", "share"});
  for (const auto& [provider, count] : per_provider) {
    table.AddRow({provider, analysis::Count(count),
                  analysis::Percent(static_cast<double>(count) /
                                    static_cast<double>(records->size()))});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\n5 cloud providers combined: %s of %zu queries\n",
              analysis::Percent(static_cast<double>(cloud_total) /
                                static_cast<double>(records->size()))
                  .c_str(),
              records->size());
  return 0;
}

int CmdExportPcap(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  capture::CaptureBuffer records;
  if (auto status =
          capture::ReadCaptureFileStatus(args.positional[0], records);
      !status.ok()) {
    std::fprintf(stderr, "error: cannot read %s: %s\n",
                 args.positional[0].c_str(), status.ToString().c_str());
    return 1;
  }
  // --raw writes a plain libpcap file tcpdump/wireshark open directly;
  // the default wraps the pcap bytes in the checksummed integrity frame.
  const bool framed = !args.Has("raw");
  if (auto status =
          capture::WritePcapFileStatus(args.positional[1], records, framed);
      !status.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n",
                 args.positional[1].c_str(), status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "exported %zu query packets -> %s%s (response metadata is not\n"
               "representable in pcap and was dropped)\n",
               records.size(), args.positional[1].c_str(),
               framed ? " [framed; use --raw for tcpdump interop]" : "");
  return 0;
}

int CmdImportPcap(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  capture::CaptureBuffer records;
  if (auto status = capture::ReadPcapFileStatus(args.positional[0], records);
      !status.ok()) {
    std::fprintf(stderr, "error: cannot parse %s: %s\n",
                 args.positional[0].c_str(), status.ToString().c_str());
    return 1;
  }
  if (auto status =
          capture::WriteCaptureFileStatus(args.positional[1], records);
      !status.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n",
                 args.positional[1].c_str(), status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "imported %zu DNS queries -> %s\n", records.size(),
               args.positional[1].c_str());
  return 0;
}

// Frame-level integrity check of any base::io artifact: reports the
// content tag, framing state, and payload size, or the exact corruption.
int CmdVerify(const Args& args) {
  if (args.positional.empty()) return Usage();
  int failures = 0;
  for (const std::string& path : args.positional) {
    std::vector<std::uint8_t> bytes;
    if (auto status = base::io::ReadFileBytes(path, bytes); !status.ok()) {
      std::printf("%s: UNREADABLE (%s)\n", path.c_str(),
                  status.ToString().c_str());
      ++failures;
      continue;
    }
    std::vector<std::uint8_t> payload;
    bool framed = false;
    std::uint32_t tag = 0;
    auto status =
        base::io::UnwrapFrame(bytes, base::io::kTagAny, payload, framed, &tag);
    if (!status.ok()) {
      std::printf("%s: CORRUPT (%s)\n", path.c_str(),
                  status.ToString().c_str());
      ++failures;
      continue;
    }
    if (!framed) {
      std::printf("%s: OK legacy-unframed %zu bytes (no checksums)\n",
                  path.c_str(), bytes.size());
      continue;
    }
    const char tag_text[5] = {static_cast<char>(tag >> 24),
                              static_cast<char>(tag >> 16),
                              static_cast<char>(tag >> 8),
                              static_cast<char>(tag), '\0'};
    std::printf("%s: OK framed tag=%s payload=%zu bytes\n", path.c_str(),
                tag_text, payload.size());
  }
  return failures == 0 ? 0 : 1;
}

int CmdDig(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto qname = dns::Name::Parse(args.positional[0]);
  if (!qname) {
    std::fprintf(stderr, "error: bad name '%s'\n",
                 args.positional[0].c_str());
    return 1;
  }
  dns::RrType qtype = dns::RrType::kA;
  if (args.positional.size() > 1) {
    auto parsed = dns::RrTypeFromString(args.positional[1]);
    if (!parsed) {
      std::fprintf(stderr, "error: bad type '%s'\n",
                   args.positional[1].c_str());
      return 1;
    }
    qtype = *parsed;
  }

  // A self-contained mini Internet: root + .nl + leaf catch-all.
  sim::LatencyModel latency;
  auto auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
  auto client_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
  sim::Network network(latency);

  zone::ZoneBuildConfig root_config;
  root_config.apex = dns::Name{};
  root_config.nameservers = {{*dns::Name::Parse("b.root-servers.example"),
                              {*net::IpAddress::Parse("198.41.0.4")}}};
  auto root = zone::MakeZoneSkeleton(root_config);
  zone::AddDelegation(root, *dns::Name::Parse("nl"),
                      {{*dns::Name::Parse("ns1.dns.nl"),
                        {*net::IpAddress::Parse("194.0.28.1")}}},
                      true, 172800);
  zone::SignZone(root);
  auto root_zone = std::make_shared<const zone::Zone>(std::move(root));

  zone::ZoneBuildConfig nl_config;
  nl_config.apex = *dns::Name::Parse("nl");
  nl_config.nameservers = {{*dns::Name::Parse("ns1.dns.nl"),
                            {*net::IpAddress::Parse("194.0.28.1")}}};
  auto nl = zone::MakeZoneSkeleton(nl_config);
  zone::PopulateDelegations(nl, 1000, "dom", 0.55,
                            net::Ipv4Address(100, 70, 0, 0));
  zone::SignZone(nl);
  auto nl_zone = std::make_shared<const zone::Zone>(std::move(nl));

  server::AuthServerConfig root_ns_config;
  root_ns_config.server_id = 0;
  root_ns_config.name = "root";
  server::AuthServer root_server{root_ns_config};
  root_server.Serve(root_zone);
  network.RegisterServer(*net::IpAddress::Parse("198.41.0.4"), auth_site,
                         root_server);
  server::AuthServerConfig nl_ns_config;
  nl_ns_config.server_id = 1;
  nl_ns_config.name = "nl";
  server::AuthServer nl_server{nl_ns_config};
  nl_server.Serve(nl_zone);
  network.RegisterServer(*net::IpAddress::Parse("194.0.28.1"), auth_site,
                         nl_server);
  server::LeafAuthService leaf{server::LeafAuthConfig{}};
  network.SetDefaultRoute(auth_site, leaf);

  resolver::ResolverConfig config;
  resolver::EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.site = client_site;
  config.hosts = {host};
  config.qname_minimization = args.Has("qmin");
  config.validate_dnssec = args.Has("validate");
  config.edns_udp_size =
      static_cast<std::uint16_t>(std::atoi(args.Get("edns", "1232").c_str()));
  resolver::RecursiveResolver resolver(
      network, config, {*net::IpAddress::Parse("198.41.0.4")}, {});

  auto result = resolver.Resolve(*qname, qtype, 1);
  std::printf(";; %s after %d upstream queries%s\n",
              std::string(ToString(result.rcode)).c_str(),
              result.upstream_queries, result.from_cache ? " (cached)" : "");
  for (const auto& record : result.records) {
    std::printf("%s\n", record.ToString().c_str());
  }
  std::printf("\n;; upstream packets seen by the captured servers:\n");
  for (const auto* server : {&root_server, &nl_server}) {
    for (const auto& record : server->captured()) {
      std::printf(";;   @%-5s %s %s %s -> %s%s\n",
                  server->config().name.c_str(),
                  std::string(ToString(record.transport)).c_str(),
                  record.qname.ToString().c_str(),
                  std::string(ToString(record.qtype)).c_str(),
                  std::string(ToString(record.rcode)).c_str(),
                  record.tc ? " +TC" : "");
    }
  }
  return result.rcode == dns::Rcode::kNoError ? 0 : 1;
}

int CmdZoneCheck(const Args& args) {
  if (args.positional.empty()) return Usage();
  std::ifstream file(args.positional[0]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  dns::Name origin;
  if (args.Has("origin")) {
    auto parsed = dns::Name::Parse(args.Get("origin", "."));
    if (!parsed) {
      std::fprintf(stderr, "error: bad --origin\n");
      return 1;
    }
    origin = *parsed;
  }
  auto parsed = zone::ParseMasterFile(buffer.str(), origin);
  for (const auto& error : parsed.errors) {
    std::fprintf(stderr, "%s:%zu: %s\n", args.positional[0].c_str(),
                 error.line, error.message.c_str());
  }
  if (!parsed.zone) {
    std::fprintf(stderr, "FATAL: zone did not load\n");
    return 1;
  }
  std::printf("zone %s: %zu names, %zu records%s\n",
              parsed.zone->apex().ToString().c_str(),
              parsed.zone->name_count(), parsed.zone->record_count(),
              parsed.zone->IsSigned() ? " (signed)" : "");
  return parsed.errors.empty() ? 0 : 1;
}

int CmdZoneSample(const Args&) {
  zone::ZoneBuildConfig config;
  config.apex = *dns::Name::Parse("example");
  config.nameservers = {{*dns::Name::Parse("ns1.example"),
                         {*net::IpAddress::Parse("192.0.2.53"),
                          *net::IpAddress::Parse("2001:db8::53")}}};
  auto zone = zone::MakeZoneSkeleton(config);
  zone::PopulateDelegations(zone, 5, "dom", 0.5,
                            net::Ipv4Address(100, 70, 0, 0));
  std::printf("%s", zone::ToMasterFile(zone).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = Args::Parse(argc, argv, 2);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "anonymize") return CmdAnonymize(args);
  if (command == "report") return CmdReport(args);
  if (command == "export-pcap") return CmdExportPcap(args);
  if (command == "import-pcap") return CmdImportPcap(args);
  if (command == "dig") return CmdDig(args);
  if (command == "zone-check") return CmdZoneCheck(args);
  if (command == "zone-sample") return CmdZoneSample(args);
  if (command == "verify") return CmdVerify(args);
  return Usage();
}
