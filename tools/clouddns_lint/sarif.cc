#include "sarif.h"

#include <fstream>

namespace lint {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ResultUri(const std::string& file, const std::string& uri_base) {
  std::string uri = file;
  if (!uri_base.empty() && uri.compare(0, uri_base.size(), uri_base) == 0) {
    uri.erase(0, uri_base.size());
    while (!uri.empty() && uri.front() == '/') uri.erase(0, 1);
  }
  for (char& c : uri) {
    if (c == '\\') c = '/';
  }
  return uri;
}

}  // namespace

std::string SarifReport(const std::vector<Violation>& violations,
                        const std::string& uri_base) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"clouddns_lint\",\n"
      "          \"informationUri\": "
      "\"https://github.com/clouddns/clouddns\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const RuleInfo& rule : kRules) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"" + JsonEscape(rule.id) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(rule.summary) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Violation& violation : violations) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\"ruleId\": \"" + JsonEscape(violation.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(violation.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(ResultUri(violation.file, uri_base)) +
           "\"}, \"region\": {\"startLine\": " +
           std::to_string(violation.line) + "}}}]}";
  }
  if (!violations.empty()) out += "\n";
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

bool WriteSarif(const std::string& path,
                const std::vector<Violation>& violations,
                const std::string& uri_base) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << SarifReport(violations, uri_base);
  return static_cast<bool>(out);
}

}  // namespace lint
