#include "compdb.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace lint {
namespace {

namespace fs = std::filesystem;

/// Reads the JSON string starting at the opening quote `pos`; handles the
/// escapes CMake actually emits in paths (\\ \" \/ A never appears).
std::optional<std::string> JsonString(const std::string& text,
                                      std::size_t pos, std::size_t* end) {
  if (pos >= text.size() || text[pos] != '"') return std::nullopt;
  std::string out;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      *end = i + 1;
      return out;
    }
    if (c == '\\' && i + 1 < text.size()) {
      out += text[++i];
      continue;
    }
    out += c;
  }
  return std::nullopt;
}

/// Values of every `"file"` key in the database. The compile_commands
/// format is flat enough that a key scan is exact: "file" only appears
/// as a key of each command object.
std::vector<std::string> FileEntries(const std::string& text) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    std::size_t cursor = pos + key.size();
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t' ||
            text[cursor] == ':')) {
      ++cursor;
    }
    std::size_t end = cursor;
    if (auto value = JsonString(text, cursor, &end)) {
      files.push_back(*value);
      pos = end;
    } else {
      pos += key.size();
    }
  }
  return files;
}

std::vector<std::string> QuotedIncludeTargets(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> targets;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = line.find_first_not_of(" \t", pos + 7);
    if (pos == std::string::npos || line[pos] != '"') continue;
    std::size_t close = line.find('"', pos + 1);
    if (close == std::string::npos) continue;
    targets.push_back(line.substr(pos + 1, close - pos - 1));
  }
  return targets;
}

bool Under(const fs::path& root, const fs::path& candidate) {
  auto root_it = root.begin();
  auto cand_it = candidate.begin();
  for (; root_it != root.end(); ++root_it, ++cand_it) {
    if (cand_it == candidate.end() || *root_it != *cand_it) return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<std::string>> FilesFromCompdb(
    const std::string& path, const std::string& src_root, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read compilation database " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::error_code ec;
  const fs::path root = fs::weakly_canonical(fs::path(src_root), ec);
  if (ec) {
    *error = "cannot resolve src root " + src_root;
    return std::nullopt;
  }

  // Seed from every translation unit in the database — tests and bench
  // TUs live outside src/ but still pull in header-only src files, and a
  // header included only from there must not escape analysis. Only files
  // under the src root are selected for scanning.
  std::set<std::string> selected;
  std::set<std::string> visited;
  std::deque<std::string> frontier;
  for (const std::string& entry : FileEntries(text)) {
    fs::path canonical = fs::weakly_canonical(fs::path(entry), ec);
    if (ec || !fs::exists(canonical)) continue;
    if (visited.insert(canonical.string()).second) {
      frontier.push_back(canonical.string());
      if (Under(root, canonical)) selected.insert(canonical.string());
    }
  }
  // Headers never appear in the database; reach them through the quoted
  // includes of what does, resolved against the src root (the tree's one
  // include directory).
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const std::string& target : QuotedIncludeTargets(current)) {
      fs::path resolved = fs::weakly_canonical(root / target, ec);
      if (ec || !Under(root, resolved) || !fs::exists(resolved)) continue;
      if (visited.insert(resolved.string()).second) {
        frontier.push_back(resolved.string());
        selected.insert(resolved.string());
      }
    }
  }
  return std::vector<std::string>(selected.begin(), selected.end());
}

}  // namespace lint
