// Per-line determinism rules (PR 2/3/4 contracts): forbidden generators,
// wall-clock reads, raw threads, float accumulators, invented seeds, and
// hot-path string allocation — plus the wrap-tolerant unordered-iteration
// rule for emit paths. Matching is plain token scanning: the former
// std::regex patterns were both the dominant lint cost and a per-call
// compile hazard, and none of the rules needs more than word-boundary
// lookups (BENCH_lint.json records the wall-time before/after).
#pragma once

#include "report.h"
#include "source.h"

namespace lint {

void RunTextRules(SourceFile& file, Reporter& reporter);

}  // namespace lint
