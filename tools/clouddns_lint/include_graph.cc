#include "include_graph.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <sstream>

namespace lint {
namespace {

struct IncludeEdge {
  std::size_t line = 0;  ///< 1-based line of the #include.
  std::string target;    ///< Quoted include text ("zone/zone.h").
};

/// Quoted includes of one file, parsed from the raw lines (the code lines
/// have string contents blanked, which would erase the include path).
std::vector<IncludeEdge> QuotedIncludes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = line.find_first_not_of(" \t", pos + 7);
    if (pos == std::string::npos || line[pos] != '"') continue;
    std::size_t close = line.find('"', pos + 1);
    if (close == std::string::npos) continue;
    edges.push_back(IncludeEdge{i + 1, line.substr(pos + 1, close - pos - 1)});
  }
  return edges;
}

std::string ModuleOfInclude(const std::string& target) {
  std::size_t slash = target.find('/');
  return slash == std::string::npos ? std::string() : target.substr(0, slash);
}

std::string JoinPath(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& hop : path) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

/// Shortest dependency path from `from` to `to` in the declared DAG
/// (edges module -> its allowed deps), inclusive; empty if unreachable.
std::vector<std::string> DeclaredPath(const LayerSpec& layers,
                                      const std::string& from,
                                      const std::string& to) {
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    std::string node = queue.front();
    queue.pop_front();
    if (node == to) {
      std::vector<std::string> path{to};
      while (path.back() != from) path.push_back(parent[path.back()]);
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = layers.allowed.find(node);
    if (it == layers.allowed.end()) continue;
    for (const std::string& dep : it->second) {
      if (parent.emplace(dep, node).second) queue.push_back(dep);
    }
  }
  return {};
}

void CheckLayering(std::vector<SourceFile>& files, const LayerSpec& layers,
                   const std::set<std::string>& tree_modules,
                   Reporter& reporter) {
  for (SourceFile& file : files) {
    if (file.module.empty()) continue;
    for (const IncludeEdge& edge : QuotedIncludes(file)) {
      const std::string target = ModuleOfInclude(edge.target);
      if (target.empty() || target == file.module) continue;
      const bool known = layers.allowed.count(target) != 0 ||
                         tree_modules.count(target) != 0;
      if (!known) continue;  // external quoted include, not a src module
      if (layers.allowed.count(file.module) == 0) {
        reporter.Report(file, edge.line, "layer-inversion",
                        "module `" + file.module +
                            "` is not declared in layers.txt; every src/ "
                            "module must state its allowed dependencies");
        continue;
      }
      if (layers.allowed.count(target) == 0) {
        reporter.Report(file, edge.line, "layer-inversion",
                        "included module `" + target +
                            "` is not declared in layers.txt; declare it "
                            "before depending on it");
        continue;
      }
      if (layers.allowed.at(file.module).count(target) != 0) continue;
      std::vector<std::string> reverse_path =
          DeclaredPath(layers, target, file.module);
      std::string message = "include of \"" + edge.target + "\" makes `" +
                            file.module + "` depend on `" + target + "`, ";
      if (!reverse_path.empty()) {
        message += "inverting the declared layering (layers.txt has " +
                   JoinPath(reverse_path) +
                   "); depend downward or move the shared piece into a "
                   "lower module";
      } else {
        message += "an edge layers.txt does not declare; add `" + target +
                   "` to the `" + file.module +
                   ":` line if the dependency is intended";
      }
      reporter.Report(file, edge.line, "layer-inversion", message);
    }
  }
}

void CheckCycles(std::vector<SourceFile>& files, Reporter& reporter,
                 std::size_t* edge_count) {
  // File-level graph over the scanned set, nodes keyed by rel path.
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!files[i].rel.empty()) index_of.emplace(files[i].rel, i);
  }
  struct FileEdge {
    std::size_t from, to, line;
  };
  std::vector<FileEdge> edges;
  std::vector<std::vector<std::size_t>> adjacent(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeEdge& edge : QuotedIncludes(files[i])) {
      auto it = index_of.find(edge.target);
      if (it == index_of.end() || it->second == i) continue;
      edges.push_back(FileEdge{i, it->second, edge.line});
      adjacent[i].push_back(it->second);
    }
  }
  if (edge_count != nullptr) *edge_count = edges.size();

  // For each edge u -> v participating in a cycle (v reaches u), report
  // at the offending #include with the shortest cycle through that edge.
  auto shortest_path = [&](std::size_t from,
                           std::size_t to) -> std::vector<std::size_t> {
    std::vector<std::size_t> parent(files.size(), files.size());
    std::deque<std::size_t> queue{from};
    parent[from] = from;
    while (!queue.empty()) {
      std::size_t node = queue.front();
      queue.pop_front();
      if (node == to) {
        std::vector<std::size_t> path{to};
        while (path.back() != from) path.push_back(parent[path.back()]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      for (std::size_t next : adjacent[node]) {
        if (parent[next] == files.size()) {
          parent[next] = node;
          queue.push_back(next);
        }
      }
    }
    return {};
  };
  for (const FileEdge& edge : edges) {
    std::vector<std::size_t> back = shortest_path(edge.to, edge.from);
    if (back.empty()) continue;
    std::vector<std::string> cycle{files[edge.from].rel};
    for (std::size_t node : back) cycle.push_back(files[node].rel);
    cycle.push_back(files[edge.from].rel);
    reporter.Report(files[edge.from], edge.line, "include-cycle",
                    "cyclic include chain: " + JoinPath(cycle) +
                        "; break the cycle with a forward declaration or by "
                        "splitting the shared type out");
  }
}

}  // namespace

std::optional<LayerSpec> LayerSpec::Load(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path;
    return std::nullopt;
  }
  LayerSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string module;
    if (!(tokens >> module)) continue;
    if (module.back() != ':') {
      *error = path + ":" + std::to_string(line_no) +
               ": expected `module: deps...`, got `" + module + "`";
      return std::nullopt;
    }
    module.pop_back();
    if (!spec.allowed.emplace(module, std::set<std::string>{}).second) {
      *error = path + ":" + std::to_string(line_no) + ": module `" + module +
               "` declared twice";
      return std::nullopt;
    }
    spec.order.push_back(module);
    std::string dep;
    while (tokens >> dep) spec.allowed[module].insert(dep);
  }
  // Every dep must itself be declared, and a module declared before its
  // deps would make the file unreadable as a bottom-up layering — both
  // checks together guarantee the declared graph is a DAG.
  std::set<std::string> seen;
  for (const std::string& module : spec.order) {
    for (const std::string& dep : spec.allowed.at(module)) {
      if (spec.allowed.count(dep) == 0) {
        *error = path + ": module `" + module + "` depends on undeclared `" +
                 dep + "`";
        return std::nullopt;
      }
      if (seen.count(dep) == 0) {
        *error = path + ": module `" + module + "` depends on `" + dep +
                 "`, which is declared later — order layers.txt bottom-up";
        return std::nullopt;
      }
    }
    seen.insert(module);
  }
  return spec;
}

void RunIncludeGraphPass(std::vector<SourceFile>& files,
                         const LayerSpec* layers, Reporter& reporter,
                         std::size_t* edge_count) {
  std::set<std::string> tree_modules;
  for (const SourceFile& file : files) {
    if (!file.module.empty()) tree_modules.insert(file.module);
  }
  if (layers != nullptr) {
    CheckLayering(files, *layers, tree_modules, reporter);
  }
  CheckCycles(files, reporter, edge_count);
}

}  // namespace lint
