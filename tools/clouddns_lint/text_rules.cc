#include "text_rules.h"

#include <cctype>
#include <set>

namespace lint {
namespace {

std::size_t SkipWs(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

/// `word` followed (after optional whitespace) by an opening parenthesis:
/// the call-shaped forms `srand (`, `ToKey (`.
bool HasCall(const std::string& line, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = FindWord(line, word, pos)) != std::string::npos) {
    std::size_t after = SkipWs(line, pos + word.size());
    if (after < line.size() && line[after] == '(') return true;
    ++pos;
  }
  return false;
}

/// `word` followed by an *empty* call — `rand()`, `random ( )` — or, for
/// `rand`, the qualified `std::rand` without parentheses.
bool HasNullaryCall(const std::string& line, const std::string& word,
                    bool allow_std_qualified) {
  std::size_t pos = 0;
  while ((pos = FindWord(line, word, pos)) != std::string::npos) {
    if (allow_std_qualified && pos >= 5 &&
        line.compare(pos - 5, 5, "std::") == 0) {
      return true;
    }
    std::size_t after = SkipWs(line, pos + word.size());
    if (after < line.size() && line[after] == '(' &&
        SkipWs(line, after + 1) < line.size() &&
        line[SkipWs(line, after + 1)] == ')') {
      return true;
    }
    ++pos;
  }
  return false;
}

bool MatchNoRand(const std::string& line) {
  for (const char* token :
       {"random_device", "mt19937", "minstd_rand", "default_random_engine"}) {
    if (line.find(token) != std::string::npos) return true;
  }
  std::size_t pos = line.find("ranlux");
  if (pos != std::string::npos && pos + 6 < line.size() &&
      std::isdigit(static_cast<unsigned char>(line[pos + 6]))) {
    return true;
  }
  return HasCall(line, "srand") || HasNullaryCall(line, "rand", true) ||
         HasNullaryCall(line, "random", false);
}

bool MatchWallClock(const std::string& line) {
  for (const char* token :
       {"system_clock", "steady_clock", "high_resolution_clock"}) {
    if (line.find(token) != std::string::npos) return true;
  }
  for (const char* word :
       {"gettimeofday", "clock_gettime", "localtime", "gmtime"}) {
    if (FindWord(line, word) != std::string::npos) return true;
  }
  // time(nullptr) / time(NULL) / time(0)
  std::size_t pos = 0;
  while ((pos = FindWord(line, "time", pos)) != std::string::npos) {
    std::size_t cursor = SkipWs(line, pos + 4);
    pos += 4;
    if (cursor >= line.size() || line[cursor] != '(') continue;
    cursor = SkipWs(line, cursor + 1);
    for (const char* arg : {"nullptr", "NULL", "0"}) {
      const std::size_t len = std::char_traits<char>::length(arg);
      if (line.compare(cursor, len, arg) == 0 &&
          SkipWs(line, cursor + len) < line.size() &&
          line[SkipWs(line, cursor + len)] == ')') {
        return true;
      }
    }
  }
  return false;
}

bool MatchRawThread(const std::string& line) {
  for (const char* token : {"std::thread", "std::jthread"}) {
    const std::size_t len = std::char_traits<char>::length(token);
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
      std::size_t end = pos + len;
      bool boundary = end >= line.size() ||
                      (!IsIdentChar(line[end]) && line[end] != ':');
      if (boundary) return true;
      ++pos;
    }
  }
  return false;
}

/// `Rng name(0x...` / `Rng(42` — a generator constructed from a bare
/// numeric literal.
bool MatchInventedSeed(const std::string& line) {
  std::size_t pos = 0;
  while ((pos = FindWord(line, "Rng", pos)) != std::string::npos) {
    std::size_t cursor = SkipWs(line, pos + 3);
    pos += 3;
    while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
    cursor = SkipWs(line, cursor);
    if (cursor >= line.size() ||
        (line[cursor] != '(' && line[cursor] != '{')) {
      continue;
    }
    cursor = SkipWs(line, cursor + 1);
    if (cursor < line.size() &&
        std::isdigit(static_cast<unsigned char>(line[cursor]))) {
      return true;
    }
  }
  return false;
}

/// Any `Rng ...(`/`Rng ...{` construction at all; the fault-rng rule
/// additionally requires SubstreamSeed on the same line.
bool MatchRngConstruction(const std::string& line) {
  std::size_t pos = 0;
  while ((pos = FindWord(line, "Rng", pos)) != std::string::npos) {
    std::size_t cursor = SkipWs(line, pos + 3);
    pos += 3;
    while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
    cursor = SkipWs(line, cursor);
    if (cursor < line.size() && (line[cursor] == '(' || line[cursor] == '{')) {
      return true;
    }
  }
  return false;
}

/// Raw unchecked file I/O: fopen/fwrite call-shapes and ofstream
/// declarations. base::io::FileWriter is the only sanctioned writer —
/// it checks every result and lands files atomically (DESIGN.md §14).
bool MatchIoUnchecked(const std::string& line) {
  if (HasCall(line, "fopen") || HasCall(line, "fwrite")) return true;
  return FindWord(line, "ofstream") != std::string::npos;
}

bool MatchHotAlloc(const std::string& line) {
  if (HasCall(line, "ToKey") || HasCall(line, "ToString")) return true;
  // std::string with a word boundary after (std::string_view and
  // std::stringstream stay legal).
  std::size_t pos = 0;
  while ((pos = line.find("std::string", pos)) != std::string::npos) {
    std::size_t end = pos + 11;
    if ((pos == 0 || !IsIdentChar(line[pos - 1])) &&
        (end >= line.size() || !IsIdentChar(line[end]))) {
      return true;
    }
    ++pos;
  }
  return false;
}

/// Collects the names of variables/members declared with an unordered
/// container type anywhere in the file (declarations may wrap lines).
std::set<std::string> UnorderedDeclarations(const FlatSource& flat) {
  std::set<std::string> names;
  const std::string& text = flat.text;
  static const std::string kTokens[] = {"unordered_map", "unordered_set"};
  for (const std::string& token : kTokens) {
    std::size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
      std::size_t cursor = pos + token.size();
      pos = cursor;
      // Balance the template argument list.
      cursor = SkipWs(text, cursor);
      if (cursor >= text.size() || text[cursor] != '<') continue;
      int depth = 0;
      while (cursor < text.size()) {
        if (text[cursor] == '<') ++depth;
        if (text[cursor] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++cursor;
      }
      if (cursor >= text.size()) continue;
      ++cursor;  // past '>'
      while (cursor < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[cursor])) ||
              text[cursor] == '&')) {
        ++cursor;
      }
      std::string ident;
      while (cursor < text.size() && IsIdentChar(text[cursor])) {
        ident += text[cursor++];
      }
      if (ident.empty()) continue;
      cursor = SkipWs(text, cursor);
      // A declaration introduces the name and then ends or initializes;
      // `Type Fn::Name(` or `Type Name::member` are not declarations of
      // an iterable variable.
      if (cursor < text.size() && (text[cursor] == ';' || text[cursor] == '=' ||
                                   text[cursor] == '{' || text[cursor] == ',' ||
                                   text[cursor] == ')')) {
        names.insert(ident);
      }
    }
  }
  return names;
}

struct RangeFor {
  std::size_t line = 0;          ///< 1-based line of the `for` keyword.
  std::string range_expression;  ///< Text after the loop's `:`.
};

/// Finds range-based for statements, tolerating statements that wrap
/// lines. Classic three-clause fors (which contain a top-level `;`) are
/// skipped.
std::vector<RangeFor> FindRangeFors(const FlatSource& flat) {
  std::vector<RangeFor> fors;
  const std::string& text = flat.text;
  std::size_t pos = 0;
  while ((pos = text.find("for", pos)) != std::string::npos) {
    bool word = WordAt(text, pos, "for");
    std::size_t keyword_at = pos;
    pos += 3;
    if (!word) continue;
    std::size_t open = text.find_first_not_of(" \t\n", pos);
    if (open == std::string::npos || text[open] != '(') continue;
    int depth = 0;
    std::size_t cursor = open;
    std::size_t colon = std::string::npos;
    bool has_semicolon = false;
    for (; cursor < text.size(); ++cursor) {
      char c = text[cursor];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) break;
      }
      if (depth == 1 && c == ';') has_semicolon = true;
      if (depth == 1 && c == ':' && colon == std::string::npos) {
        bool double_colon = (cursor > 0 && text[cursor - 1] == ':') ||
                            (cursor + 1 < text.size() &&
                             text[cursor + 1] == ':');
        if (!double_colon) colon = cursor;
      }
    }
    if (cursor >= text.size() || has_semicolon || colon == std::string::npos) {
      continue;
    }
    fors.push_back(RangeFor{flat.LineAt(keyword_at),
                            text.substr(colon + 1, cursor - colon - 1)});
  }
  return fors;
}

void UnorderedIterRule(SourceFile& file, Reporter& reporter) {
  const bool emit_path = PathContains(file, "/capture/") ||
                         PathContains(file, "/analysis/") ||
                         PathContains(file, "/entrada/plan");
  if (!emit_path) return;
  const FlatSource flat = Flatten(file);
  std::set<std::string> unordered = UnorderedDeclarations(flat);
  if (unordered.empty()) return;
  for (const RangeFor& loop : FindRangeFors(flat)) {
    std::string ident;
    std::string hit;
    for (std::size_t i = 0; i <= loop.range_expression.size(); ++i) {
      char c = i < loop.range_expression.size() ? loop.range_expression[i]
                                                : ' ';
      if (IsIdentChar(c)) {
        ident += c;
      } else {
        if (!ident.empty() && unordered.count(ident)) hit = ident;
        ident.clear();
      }
    }
    if (!hit.empty()) {
      reporter.Report(file, loop.line, "unordered-iter",
                      "iteration over unordered container `" + hit +
                          "` in an emit path; hash order leaks into output — "
                          "sort at the boundary or use std::map");
    }
  }
}

}  // namespace

void RunTextRules(SourceFile& file, Reporter& reporter) {
  struct LineRule {
    const char* rule;
    bool (*matches)(const std::string&);
    const char* message;
    bool (*applies)(const SourceFile&);
  };
  static const LineRule kLineRules[] = {
      {"no-rand", MatchNoRand,
       "C library / <random> generators are nondeterministic across "
       "platforms; draw from a plumbed sim::Rng instead",
       [](const SourceFile&) { return true; }},
      {"wall-clock", MatchWallClock,
       "wall-clock reads leak host time into simulation output; use "
       "sim::TimeUs plumbed from the scenario clock",
       [](const SourceFile&) { return true; }},
      {"raw-thread", MatchRawThread,
       "raw std::thread outside the scenario engine; route parallelism "
       "through src/cloud/scenario.cc so determinism stays auditable",
       [](const SourceFile& f) {
         return !PathEndsWith(f, "cloud/scenario.cc");
       }},
      {"float-accumulator",
       [](const std::string& line) {
         return FindWord(line, "float") != std::string::npos;
       },
       "aggregate accumulators must be double or integer; float "
       "rounding makes report numbers platform-dependent",
       [](const SourceFile& f) {
         return PathContains(f, "/entrada/") || PathContains(f, "/analysis/");
       }},
      {"seed-plumbing", MatchInventedSeed,
       "freshly invented seed; plumb the scenario seed (config/ctx) or "
       "derive one with sim::SubstreamSeed",
       [](const SourceFile& f) {
         return PathContains(f, "/sim/") || PathContains(f, "/cloud/");
       }},
      {"fault-rng",
       [](const std::string& line) {
         return line.find("SubstreamSeed") == std::string::npos &&
                MatchRngConstruction(line);
       },
       "fault-module Rng must be built from sim::SubstreamSeed on the "
       "construction line; a stateful generator here breaks the "
       "thread-count byte-identity of fault-enabled runs",
       [](const SourceFile& f) { return PathContains(f, "/sim/fault"); }},
      {"hot-alloc", MatchHotAlloc,
       "string construction in a hot-path-tagged file; key on the "
       "cached Name hash + flat bytes (DESIGN.md §10), or add a "
       "reasoned lint:allow(hot-alloc) for a genuinely cold line",
       [](const SourceFile& f) { return f.hot_path; }},
      {"io-unchecked", MatchIoUnchecked,
       "raw fopen/fwrite/ofstream outside base::io; short writes and "
       "failed closes vanish silently — write through "
       "base::io::FileWriter / the framed helpers (DESIGN.md §14)",
       [](const SourceFile& f) { return !PathContains(f, "base/io"); }},
  };
  for (const LineRule& rule : kLineRules) {
    if (!rule.applies(file)) continue;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (rule.matches(file.code[i])) {
        reporter.Report(file, i + 1, rule.rule, rule.message);
      }
    }
  }
  UnorderedIterRule(file, reporter);
}

}  // namespace lint
