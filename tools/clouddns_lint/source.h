// Source model shared by every clouddns_lint pass: a file split into raw
// lines and "code" lines (comments stripped, string/char literal contents
// blanked), its module identity relative to the src/ root, and the parsed
// `lint:allow` suppressions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lint {

/// One `// lint:allow(<rule>): <reason>` marker.
struct Suppression {
  std::string rule;
  std::size_t line = 0;          ///< Line the suppression governs (1-based).
  std::size_t comment_line = 0;  ///< Line the marker itself sits on.
  bool has_reason = false;
  bool used = false;  ///< Set by Reporter when a violation matches.
};

struct SourceFile {
  std::string path;          ///< As reported in diagnostics.
  std::string generic_path;  ///< Forward-slash form for path matching.
  std::string rel;           ///< Path relative to the src root ("zone/zone.h").
  std::string module;        ///< First component of rel ("zone"); may be "".
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<Suppression> suppressions;
  bool hot_path = false;  ///< Carries a `// lint:hot-path` tag.
};

/// A file's code lines joined into one string, with a map from flat
/// offset back to 1-based line number — for rules whose syntax wraps
/// lines (declarations, range-fors, lambdas).
struct FlatSource {
  std::string text;
  std::vector<std::size_t> line_of;  ///< line_of[offset] = 1-based line.

  [[nodiscard]] std::size_t LineAt(std::size_t offset) const {
    return offset < line_of.size() ? line_of[offset] : 0;
  }
};

[[nodiscard]] bool IsIdentChar(char c);
[[nodiscard]] bool HasCode(const std::string& code_line);
[[nodiscard]] bool PathContains(const SourceFile& file,
                                const std::string& fragment);
[[nodiscard]] bool PathEndsWith(const SourceFile& file,
                                const std::string& suffix);

/// True when text[pos..] spells `word` with identifier boundaries on both
/// sides.
[[nodiscard]] bool WordAt(const std::string& text, std::size_t pos,
                          const std::string& word);

/// First boundary-delimited occurrence of `word` at/after `from`, or npos.
[[nodiscard]] std::size_t FindWord(const std::string& text,
                                   const std::string& word,
                                   std::size_t from = 0);

[[nodiscard]] FlatSource Flatten(const SourceFile& file);

/// Loads, strips, and annotates one file. `src_root` (generic form, no
/// trailing slash, possibly empty) anchors rel/module; when the path is
/// not under it, the last "/src/" path component is used instead.
/// Returns false when the file cannot be read.
bool LoadSourceFile(const std::string& path, const std::string& src_root,
                    SourceFile& out);

}  // namespace lint
