// Include-graph structural pass: extracts the `#include "mod/..."` edges
// of every scanned file, checks module-level edges against the declared
// layering DAG (tools/clouddns_lint/layers.txt), and rejects file-level
// include cycles. Diagnostics carry the shortest offending path so a
// layering break reads as an architecture statement, not a line number.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "report.h"
#include "source.h"

namespace lint {

/// The declared module DAG: `module: dep dep ...` lines, `#` comments.
/// A module may directly include only its declared deps (transitive deps
/// must be declared explicitly — the declaration is the architecture).
struct LayerSpec {
  std::vector<std::string> order;  ///< Declaration order (bottom-up).
  std::map<std::string, std::set<std::string>> allowed;

  /// Parses and validates (all deps declared, graph acyclic). Returns
  /// nullopt with a human-readable *error on failure.
  static std::optional<LayerSpec> Load(const std::string& path,
                                       std::string* error);
};

/// Runs both include passes over the whole file set. `layers` may be
/// null, in which case only cycle detection runs (the layering rule is
/// then inactive for stale-suppression accounting).
void RunIncludeGraphPass(std::vector<SourceFile>& files,
                         const LayerSpec* layers, Reporter& reporter,
                         std::size_t* edge_count);

}  // namespace lint
