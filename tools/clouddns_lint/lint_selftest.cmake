# Self-test for clouddns_lint: seed a scratch tree with known violations
# and assert the linter (a) fails, (b) reports each violation with the
# correct file:line, and (c) honours a reasoned lint:allow suppression.
#
# Driven by ctest:
#   cmake -DLINT=<path-to-clouddns_lint> -DWORK=<scratch-dir> -P lint_selftest.cmake

if(NOT LINT OR NOT WORK)
  message(FATAL_ERROR "pass -DLINT=<linter> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
# The scratch file sits under a path containing /analysis/ so the
# emit-path-scoped rules (unordered-iter, float-accumulator) apply.
set(scratch "${WORK}/src/analysis/scratch.cc")

file(WRITE "${scratch}" "#include <cstdlib>
#include <unordered_map>
void Violations() {
  int a = rand();
  float shares = 0.0f;
  std::unordered_map<int, int> counts;
  for (auto& [k, v] : counts) a += v;
  int ok = rand();  // lint:allow(no-rand): selftest exercises suppression
  (void)a; (void)shares; (void)ok;
}
")

execute_process(
  COMMAND "${LINT}" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)

if(status EQUAL 0)
  message(FATAL_ERROR "linter passed a tree with seeded violations")
endif()

foreach(expected
    "scratch.cc:4: error: .no-rand."
    "scratch.cc:5: error: .float-accumulator."
    "scratch.cc:7: error: .unordered-iter.")
  if(NOT diagnostics MATCHES "${expected}")
    message(FATAL_ERROR
      "missing diagnostic matching '${expected}' in:\n${diagnostics}")
  endif()
endforeach()

if(diagnostics MATCHES "scratch.cc:8")
  message(FATAL_ERROR
    "suppressed line 8 was still reported:\n${diagnostics}")
endif()
if(NOT diagnostics MATCHES "1 suppressed")
  message(FATAL_ERROR
    "suppression was not counted:\n${diagnostics}")
endif()

# The fault-rng rule: Rng construction in the fault module must derive
# its seed with SubstreamSeed on the construction line. Line 3 (a bare
# seed) must fire; line 4 (substream-derived) must not.
set(fault_scratch "${WORK}/src/sim/fault_scratch.cc")
file(WRITE "${fault_scratch}" "#include <cstdint>
void FaultRng(std::uint64_t seed) {
  Rng bad(seed);
  Rng ok(SubstreamSeed(seed, 1));
  (void)bad; (void)ok;
}
")
execute_process(
  COMMAND "${LINT}" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR "linter passed a tree with a fault-rng violation")
endif()
if(NOT diagnostics MATCHES "fault_scratch.cc:3: error: .fault-rng.")
  message(FATAL_ERROR
    "missing fault-rng diagnostic for line 3 in:\n${diagnostics}")
endif()
if(diagnostics MATCHES "fault_scratch.cc:4")
  message(FATAL_ERROR
    "SubstreamSeed-derived Rng was wrongly flagged:\n${diagnostics}")
endif()
file(REMOVE "${fault_scratch}")

# The hot-alloc rule fires only in files tagged `lint:hot-path`: string
# key construction on line 4/5 must be reported, the reasoned allow on
# line 6 must be honoured, and an untagged file with the same code must
# pass untouched.
set(hot_scratch "${WORK}/src/server/hot_scratch.cc")
file(WRITE "${hot_scratch}" "// scratch server
// lint:hot-path
void Hot() {
  auto key = name.ToKey();
  std::string rendered = name.ToString();
  std::string path = Render();  // lint:allow(hot-alloc): once per file
  (void)key; (void)rendered; (void)path;
}
")
set(cold_scratch "${WORK}/src/server/cold_scratch.cc")
file(WRITE "${cold_scratch}" "// scratch server, untagged
void Cold() {
  std::string rendered = name.ToString();
  (void)rendered;
}
")
execute_process(
  COMMAND "${LINT}" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR "linter passed a tree with hot-alloc violations")
endif()
foreach(expected
    "hot_scratch.cc:4: error: .hot-alloc."
    "hot_scratch.cc:5: error: .hot-alloc.")
  if(NOT diagnostics MATCHES "${expected}")
    message(FATAL_ERROR
      "missing diagnostic matching '${expected}' in:\n${diagnostics}")
  endif()
endforeach()
if(diagnostics MATCHES "hot_scratch.cc:6")
  message(FATAL_ERROR
    "reasoned lint:allow(hot-alloc) was still reported:\n${diagnostics}")
endif()
if(diagnostics MATCHES "cold_scratch.cc")
  message(FATAL_ERROR
    "hot-alloc fired in an untagged file:\n${diagnostics}")
endif()
file(REMOVE "${hot_scratch}" "${cold_scratch}")

# The io-unchecked rule: raw fopen/fwrite/ofstream anywhere outside
# src/base/io* must fire (lines 4-6); a reasoned allow is honoured
# (line 7); the same calls inside base/io itself must pass untouched.
set(io_scratch "${WORK}/src/capture/io_scratch.cc")
file(WRITE "${io_scratch}" "#include <cstdio>
#include <fstream>
void RawIo(const char* path) {
  std::FILE* f = std::fopen(path, \"wb\");
  std::fwrite(path, 1, 1, f);
  std::ofstream out(path);
  std::FILE* g = std::fopen(path, \"rb\");  // lint:allow(io-unchecked): selftest waiver
  (void)f; (void)g;
}
")
set(io_base_scratch "${WORK}/src/base/io_scratch.cc")
file(WRITE "${io_base_scratch}" "#include <cstdio>
void Primitive(const char* path) {
  std::FILE* f = std::fopen(path, \"wb\");
  std::fwrite(path, 1, 1, f);
  (void)f;
}
")
execute_process(
  COMMAND "${LINT}" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR "linter passed a tree with io-unchecked violations")
endif()
foreach(expected
    "io_scratch.cc:4: error: .io-unchecked."
    "io_scratch.cc:5: error: .io-unchecked."
    "io_scratch.cc:6: error: .io-unchecked.")
  if(NOT diagnostics MATCHES "${expected}")
    message(FATAL_ERROR
      "missing diagnostic matching '${expected}' in:\n${diagnostics}")
  endif()
endforeach()
if(diagnostics MATCHES "io_scratch.cc:7")
  message(FATAL_ERROR
    "reasoned lint:allow(io-unchecked) was still reported:\n${diagnostics}")
endif()
if(diagnostics MATCHES "io_base_scratch.cc")
  message(FATAL_ERROR
    "io-unchecked fired inside src/base/io*:\n${diagnostics}")
endif()
file(REMOVE "${io_scratch}" "${io_base_scratch}")

# A suppression without a reason must itself be flagged.
file(WRITE "${scratch}" "#include <cstdlib>
void NoReason() {
  int a = rand();  // lint:allow(no-rand)
  (void)a;
}
")
execute_process(
  COMMAND "${LINT}" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0 OR NOT diagnostics MATCHES "bad-suppression")
  message(FATAL_ERROR
    "reasonless lint:allow was not rejected:\n${diagnostics}")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "lint selftest passed")
