#include "report.h"

#include <algorithm>
#include <iterator>
#include <tuple>

namespace lint {

bool IsKnownRule(const std::string& rule) {
  return std::any_of(std::begin(kRules), std::end(kRules),
                     [&rule](const RuleInfo& info) { return rule == info.id; });
}

void Reporter::Report(SourceFile& file, std::size_t line,
                      const std::string& rule, const std::string& message) {
  for (Suppression& s : file.suppressions) {
    if (s.line == line && s.rule == rule && s.has_reason) {
      s.used = true;
      ++suppressed_;
      return;
    }
  }
  violations_.push_back(Violation{file.path, line, rule, message});
}

void Reporter::ReportUnsuppressable(const SourceFile& file, std::size_t line,
                                    const std::string& rule,
                                    const std::string& message) {
  violations_.push_back(Violation{file.path, line, rule, message});
}

void Reporter::FinalizeSuppressions(std::vector<SourceFile>& files,
                                    const std::set<std::string>& active_rules) {
  for (SourceFile& file : files) {
    for (const Suppression& s : file.suppressions) {
      if (!s.has_reason) {
        ReportUnsuppressable(
            file, s.comment_line, "bad-suppression",
            "lint:allow(" + s.rule + ") needs a reason: `// lint:allow(" +
                s.rule + "): <why this is safe>`");
        continue;
      }
      if (!IsKnownRule(s.rule)) {
        ReportUnsuppressable(file, s.comment_line, "bad-suppression",
                             "lint:allow(" + s.rule +
                                 ") names a rule this analyzer does not have");
        continue;
      }
      if (!s.used && active_rules.count(s.rule) != 0) {
        ReportUnsuppressable(
            file, s.comment_line, "unused-suppression",
            "lint:allow(" + s.rule + ") no longer matches a violation on line " +
                std::to_string(s.line) + "; remove the stale waiver");
      }
    }
  }
}

void Reporter::Sort() {
  std::sort(violations_.begin(), violations_.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

}  // namespace lint
