#include "source.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lint {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Strips // and /* */ comments and blanks string/char literal contents.
/// Raw string literals are handled for the R"( ... )" delimiter-free form,
/// which is the only shape the tree uses.
std::vector<std::string> StripComments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        code += quote;  // contents blanked
        continue;
      }
      code += c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

/// Parses every lint:allow marker on the raw lines. The reason (text
/// after the closing parenthesis) is mandatory; reasonless markers are
/// kept with has_reason=false so the driver can flag them.
void ParseSuppressions(SourceFile& file) {
  static const std::string kMarker = "lint:allow(";
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    std::size_t pos = 0;
    while ((pos = line.find(kMarker, pos)) != std::string::npos) {
      std::size_t cursor = pos + kMarker.size();
      std::string rule;
      while (cursor < line.size() &&
             (std::islower(static_cast<unsigned char>(line[cursor])) ||
              std::isdigit(static_cast<unsigned char>(line[cursor])) ||
              line[cursor] == '-')) {
        rule += line[cursor++];
      }
      pos = cursor;
      if (rule.empty() || cursor >= line.size() || line[cursor] != ')') {
        continue;
      }
      Suppression s;
      s.rule = std::move(rule);
      s.comment_line = i + 1;
      // A comment-only line governs the next line; otherwise this line.
      s.line = HasCode(file.code[i]) ? i + 1 : i + 2;
      const std::string reason = line.substr(cursor + 1);
      s.has_reason = std::any_of(reason.begin(), reason.end(), IsIdentChar);
      file.suppressions.push_back(std::move(s));
    }
  }
}

void ComputeModule(SourceFile& file, const std::string& src_root) {
  const std::string& p = file.generic_path;
  std::size_t start = std::string::npos;
  if (!src_root.empty() && p.size() > src_root.size() + 1 &&
      p.compare(0, src_root.size(), src_root) == 0 &&
      p[src_root.size()] == '/') {
    start = src_root.size() + 1;
  } else {
    // Fall back to the last "/src/" component (selftest scratch trees).
    std::size_t marker = p.rfind("/src/");
    if (marker != std::string::npos) start = marker + 5;
    if (p.compare(0, 4, "src/") == 0) start = 4;
  }
  if (start == std::string::npos || start >= p.size()) return;
  file.rel = p.substr(start);
  std::size_t slash = file.rel.find('/');
  if (slash != std::string::npos) file.module = file.rel.substr(0, slash);
}

}  // namespace

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool HasCode(const std::string& code_line) {
  return std::any_of(code_line.begin(), code_line.end(), [](char c) {
    return !std::isspace(static_cast<unsigned char>(c));
  });
}

bool PathContains(const SourceFile& file, const std::string& fragment) {
  return file.generic_path.find(fragment) != std::string::npos;
}

bool PathEndsWith(const SourceFile& file, const std::string& suffix) {
  const std::string& p = file.generic_path;
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool WordAt(const std::string& text, std::size_t pos,
            const std::string& word) {
  if (pos + word.size() > text.size()) return false;
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

std::size_t FindWord(const std::string& text, const std::string& word,
                     std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    if (WordAt(text, pos, word)) return pos;
    ++pos;
  }
  return std::string::npos;
}

FlatSource Flatten(const SourceFile& file) {
  FlatSource flat;
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    for (char c : file.code[i]) {
      flat.text += c;
      flat.line_of.push_back(i + 1);
    }
    flat.text += '\n';
    flat.line_of.push_back(i + 1);
  }
  return flat;
}

bool LoadSourceFile(const std::string& path, const std::string& src_root,
                    SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out.path = path;
  out.generic_path = std::filesystem::path(path).generic_string();
  out.raw = SplitLines(buffer.str());
  out.code = StripComments(out.raw);
  for (const std::string& line : out.raw) {
    if (line.find("lint:hot-path") != std::string::npos) {
      out.hot_path = true;
      break;
    }
  }
  ParseSuppressions(out);
  ComputeModule(out, src_root);
  return true;
}

}  // namespace lint
