// Borrowed-buffer escape pass (DESIGN.md §10/§11): the PR-4 reusable
// buffer idioms hand out std::span / std::string_view into pooled scratch
// (EncodeInto/DecodeInto out-params, the columnar cursor decode, resolver
// send scratch). A borrowed view is only valid for the duration of the
// call that produced it; this pass flags the three ways one escapes:
//
//   borrow-member  a span/view stored into a data member (trailing-`_`
//                  name), where it outlives the callee's frame,
//   borrow-return  a span/view constructed over a function-local (or
//                  by-value parameter) owning buffer and returned,
//   lambda-borrow  a lambda that captures scratch by reference (or a
//                  view by value) and escapes the call — returned,
//                  assigned to a member, or stored in a std::function.
//
// Scoped to the modules that traffic in pooled scratch: src/capture,
// src/net, src/resolver. Lifetime-correct exceptions carry a reasoned
// `lint:allow(<rule>)`.
#pragma once

#include "report.h"
#include "source.h"

namespace lint {

void RunEscapePass(SourceFile& file, Reporter& reporter);

}  // namespace lint
