// clouddns_lint: project-invariant linter for the clouddns source tree.
//
// The scenario engine promises byte-identical output for any thread count
// (DESIGN.md §7) and the analytics layer promises stable report ordering.
// Those contracts die silently: one rand() call, one wall-clock read, or
// one iteration over an unordered container in an emit path produces
// output that differs run to run without failing a single test. This tool
// makes the contracts mechanical. It walks the given roots (normally
// src/), strips comments and string literals, and enforces:
//
//   no-rand            rand()/srand()/std::random_device/std::mt19937 and
//                      friends are forbidden everywhere; sim::Rng is the
//                      only sanctioned generator.
//   wall-clock         system_clock/steady_clock/time(nullptr)/localtime/
//                      gettimeofday leak host time into simulation output.
//   unordered-iter     range-for over a std::unordered_{map,set} variable
//                      in emit-path files (src/capture, src/analysis,
//                      src/entrada/plan*): hash-iteration order leaks into
//                      reports. Sort at the boundary or use std::map.
//   raw-thread         std::thread outside src/cloud/scenario.cc; the
//                      scenario engine owns parallelism so determinism is
//                      reasoned about in one place.
//   float-accumulator  `float` in src/entrada or src/analysis: aggregate
//                      accumulators must be double/integer — float adds
//                      platform-dependent rounding to report numbers.
//   seed-plumbing      sim::Rng constructed from a bare numeric literal in
//                      simulation code (src/sim, src/cloud): seeds must be
//                      plumbed (config/ctx seed or SubstreamSeed), never
//                      invented at the construction site.
//   fault-rng          Rng constructed in the fault module (src/sim/fault*)
//                      without SubstreamSeed on the same line: fault
//                      decisions must be derived per-decision from the
//                      plumbed substream hierarchy, or a stray stateful
//                      generator silently breaks the thread-count
//                      byte-identity contract for fault-enabled runs.
//   hot-alloc          ToKey()/ToString() calls or std::string mentions in
//                      a file carrying a `// lint:hot-path` tag: hot-path
//                      code keys on the cached Name hash + flat bytes
//                      (DESIGN.md §10); a string key here reintroduces a
//                      per-query allocation. Cold-side exceptions carry a
//                      reasoned lint:allow(hot-alloc).
//
// Suppression: `// lint:allow(<rule>): <reason>` on the offending line, or
// on a comment line directly above it. The reason is mandatory; an allow
// without one is itself a violation (bad-suppression).
//
// Exit status is non-zero when any unsuppressed violation exists.
// `--json <path>` additionally writes a BENCH_lint.json-style summary so
// the lint pass shows up in the perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::string rule;
  bool has_reason = false;
  std::size_t line = 0;  ///< Line the suppression governs.
};

/// One source file, split into raw lines and "code" lines (comments
/// removed, string/char literal contents blanked) so rule regexes never
/// fire on prose or test data.
struct SourceFile {
  std::string path;          ///< As reported in diagnostics.
  std::string generic_path;  ///< Forward-slash form for path matching.
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Strips // and /* */ comments and blanks string/char literal contents.
/// Raw string literals are handled for the R"( ... )" delimiter-free form,
/// which is the only shape the tree uses.
std::vector<std::string> StripComments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        code += quote;  // contents blanked
        continue;
      }
      code += c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool HasCode(const std::string& code_line) {
  return std::any_of(code_line.begin(), code_line.end(),
                     [](char c) { return !std::isspace(static_cast<unsigned char>(c)); });
}

bool PathContains(const SourceFile& file, const std::string& fragment) {
  return file.generic_path.find(fragment) != std::string::npos;
}

bool PathEndsWith(const SourceFile& file, const std::string& suffix) {
  const std::string& p = file.generic_path;
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Collects the names of variables/members declared with an unordered
/// container type anywhere in the file (declarations may wrap lines).
std::set<std::string> UnorderedDeclarations(const SourceFile& file) {
  std::set<std::string> names;
  std::string flat;
  for (const std::string& line : file.code) {
    flat += line;
    flat += '\n';
  }
  static const std::string kTokens[] = {"unordered_map", "unordered_set"};
  for (const std::string& token : kTokens) {
    std::size_t pos = 0;
    while ((pos = flat.find(token, pos)) != std::string::npos) {
      std::size_t cursor = pos + token.size();
      pos = cursor;
      // Balance the template argument list.
      while (cursor < flat.size() && std::isspace(static_cast<unsigned char>(flat[cursor]))) ++cursor;
      if (cursor >= flat.size() || flat[cursor] != '<') continue;
      int depth = 0;
      while (cursor < flat.size()) {
        if (flat[cursor] == '<') ++depth;
        if (flat[cursor] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++cursor;
      }
      if (cursor >= flat.size()) continue;
      ++cursor;  // past '>'
      while (cursor < flat.size() &&
             (std::isspace(static_cast<unsigned char>(flat[cursor])) ||
              flat[cursor] == '&')) {
        ++cursor;
      }
      std::string ident;
      while (cursor < flat.size() && IsIdentChar(flat[cursor])) {
        ident += flat[cursor++];
      }
      if (ident.empty()) continue;
      while (cursor < flat.size() && std::isspace(static_cast<unsigned char>(flat[cursor]))) ++cursor;
      // A declaration introduces the name and then ends or initializes;
      // `Type Fn::Name(` or `Type Name::member` are not declarations of
      // an iterable variable.
      if (cursor < flat.size() && (flat[cursor] == ';' || flat[cursor] == '=' ||
                                   flat[cursor] == '{' || flat[cursor] == ',' ||
                                   flat[cursor] == ')')) {
        names.insert(ident);
      }
    }
  }
  return names;
}

struct RangeFor {
  std::size_t line = 0;          ///< 1-based line of the `for` keyword.
  std::string range_expression;  ///< Text after the loop's `:`.
};

/// Finds range-based for statements, tolerating statements that wrap
/// lines. Classic three-clause fors (which contain a top-level `;`) are
/// skipped.
std::vector<RangeFor> FindRangeFors(const SourceFile& file) {
  std::vector<RangeFor> fors;
  std::string flat;
  std::vector<std::size_t> line_of_offset;
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    for (char c : file.code[i]) {
      flat += c;
      line_of_offset.push_back(i + 1);
    }
    flat += '\n';
    line_of_offset.push_back(i + 1);
  }
  std::size_t pos = 0;
  while ((pos = flat.find("for", pos)) != std::string::npos) {
    bool word_start = pos == 0 || !IsIdentChar(flat[pos - 1]);
    bool word_end = pos + 3 >= flat.size() || !IsIdentChar(flat[pos + 3]);
    std::size_t keyword_at = pos;
    pos += 3;
    if (!word_start || !word_end) continue;
    std::size_t open = flat.find_first_not_of(" \t\n", pos);
    if (open == std::string::npos || flat[open] != '(') continue;
    int depth = 0;
    std::size_t cursor = open;
    std::size_t colon = std::string::npos;
    bool has_semicolon = false;
    for (; cursor < flat.size(); ++cursor) {
      char c = flat[cursor];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) break;
      }
      if (depth == 1 && c == ';') has_semicolon = true;
      if (depth == 1 && c == ':' && colon == std::string::npos) {
        bool double_colon = (cursor > 0 && flat[cursor - 1] == ':') ||
                            (cursor + 1 < flat.size() && flat[cursor + 1] == ':');
        if (!double_colon) colon = cursor;
      }
    }
    if (cursor >= flat.size() || has_semicolon || colon == std::string::npos) {
      continue;
    }
    fors.push_back(RangeFor{line_of_offset[keyword_at],
                            flat.substr(colon + 1, cursor - colon - 1)});
  }
  return fors;
}

class Linter {
 public:
  void Lint(const SourceFile& file) {
    CollectSuppressions(file);
    LineRules(file);
    UnorderedIterRule(file);
    ++files_scanned_;
  }

  void Report(const SourceFile& file, std::size_t line, const std::string& rule,
              const std::string& message) {
    for (const Suppression& s : suppressions_) {
      if (s.line == line && s.rule == rule) {
        ++suppressed_;
        return;
      }
    }
    violations_.push_back(Violation{file.path, line, rule, message});
  }

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }
  [[nodiscard]] std::size_t suppressed() const { return suppressed_; }

 private:
  void CollectSuppressions(const SourceFile& file) {
    suppressions_.clear();
    static const std::regex kAllow(
        R"(lint:allow\(([a-z][a-z0-9-]*)\)(.*))");
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      std::string::const_iterator begin = file.raw[i].begin();
      std::smatch m;
      std::string rest = file.raw[i];
      while (std::regex_search(rest, m, kAllow)) {
        Suppression s;
        s.rule = m[1];
        std::string reason = m[2];
        // Strip separator punctuation; a reason must have a word in it.
        s.has_reason = std::any_of(reason.begin(), reason.end(), [](char c) {
          return IsIdentChar(c);
        });
        // A comment-only line governs the next line; otherwise this line.
        s.line = HasCode(file.code[i]) ? i + 1 : i + 2;
        if (!s.has_reason) {
          violations_.push_back(Violation{
              file.path, i + 1, "bad-suppression",
              "lint:allow(" + s.rule + ") needs a reason: " +
                  "`// lint:allow(" + s.rule + "): <why this is safe>`"});
        } else {
          suppressions_.push_back(s);
        }
        rest = m.suffix();
      }
      (void)begin;
    }
  }

  void LineRules(const SourceFile& file) {
    struct LineRule {
      const char* rule;
      std::regex pattern;
      const char* message;
      bool (*applies)(const SourceFile&);
    };
    static const std::vector<LineRule> kRules = [] {
      std::vector<LineRule> rules;
      rules.push_back(
          {"no-rand",
           std::regex(R"((\bsrand\s*\()|(\brand\s*\(\s*\))|(std::rand\b)|(\brandom\s*\(\s*\))|(random_device)|(mt19937)|(minstd_rand)|(default_random_engine)|(ranlux\d+))"),
           "C library / <random> generators are nondeterministic across "
           "platforms; draw from a plumbed sim::Rng instead",
           [](const SourceFile&) { return true; }});
      rules.push_back(
          {"wall-clock",
           std::regex(R"((system_clock)|(steady_clock)|(high_resolution_clock)|(\bgettimeofday\b)|(\bclock_gettime\b)|(\blocaltime\b)|(\bgmtime\b)|(\btime\s*\(\s*(nullptr|NULL|0)\s*\)))"),
           "wall-clock reads leak host time into simulation output; use "
           "sim::TimeUs plumbed from the scenario clock",
           [](const SourceFile&) { return true; }});
      rules.push_back(
          {"raw-thread",
           std::regex(R"(std::j?thread\b(?!::))"),
           "raw std::thread outside the scenario engine; route parallelism "
           "through src/cloud/scenario.cc so determinism stays auditable",
           [](const SourceFile& f) {
             return !PathEndsWith(f, "cloud/scenario.cc");
           }});
      rules.push_back(
          {"float-accumulator",
           std::regex(R"(\bfloat\b)"),
           "aggregate accumulators must be double or integer; float "
           "rounding makes report numbers platform-dependent",
           [](const SourceFile& f) {
             return PathContains(f, "/entrada/") ||
                    PathContains(f, "/analysis/");
           }});
      rules.push_back(
          {"seed-plumbing",
           std::regex(R"(\bRng\s+\w+\s*[({]\s*[0-9]|\bRng\s*[({]\s*[0-9])"),
           "freshly invented seed; plumb the scenario seed (config/ctx) or "
           "derive one with sim::SubstreamSeed",
           [](const SourceFile& f) {
             return PathContains(f, "/sim/") || PathContains(f, "/cloud/");
           }});
      rules.push_back(
          {"hot-alloc",
           std::regex(R"((\bToKey\s*\()|(\bToString\s*\()|(std::string\b))"),
           "string construction in a hot-path-tagged file; key on the "
           "cached Name hash + flat bytes (DESIGN.md §10), or add a "
           "reasoned lint:allow(hot-alloc) for a genuinely cold line",
           [](const SourceFile& f) {
             for (const std::string& line : f.raw) {
               if (line.find("lint:hot-path") != std::string::npos) {
                 return true;
               }
             }
             return false;
           }});
      rules.push_back(
          {"fault-rng",
           std::regex(R"(^(?!.*SubstreamSeed).*\bRng\s*(\w+\s*)?[({])"),
           "fault-module Rng must be built from sim::SubstreamSeed on the "
           "construction line; a stateful generator here breaks the "
           "thread-count byte-identity of fault-enabled runs",
           [](const SourceFile& f) {
             return PathContains(f, "/sim/fault");
           }});
      return rules;
    }();
    for (const LineRule& rule : kRules) {
      if (!rule.applies(file)) continue;
      for (std::size_t i = 0; i < file.code.size(); ++i) {
        if (std::regex_search(file.code[i], rule.pattern)) {
          Report(file, i + 1, rule.rule, rule.message);
        }
      }
    }
  }

  void UnorderedIterRule(const SourceFile& file) {
    const bool emit_path = PathContains(file, "/capture/") ||
                           PathContains(file, "/analysis/") ||
                           PathContains(file, "/entrada/plan");
    if (!emit_path) return;
    std::set<std::string> unordered = UnorderedDeclarations(file);
    if (unordered.empty()) return;
    for (const RangeFor& loop : FindRangeFors(file)) {
      std::string ident;
      std::string hit;
      for (std::size_t i = 0; i <= loop.range_expression.size(); ++i) {
        char c = i < loop.range_expression.size() ? loop.range_expression[i]
                                                  : ' ';
        if (IsIdentChar(c)) {
          ident += c;
        } else {
          if (!ident.empty() && unordered.count(ident)) hit = ident;
          ident.clear();
        }
      }
      if (!hit.empty()) {
        Report(file, loop.line, "unordered-iter",
               "iteration over unordered container `" + hit +
                   "` in an emit path; hash order leaks into output — sort "
                   "at the boundary or use std::map");
      }
    }
  }

  std::vector<Suppression> suppressions_;
  std::vector<Violation> violations_;
  std::size_t files_scanned_ = 0;
  std::size_t suppressed_ = 0;
};

constexpr const char* kRuleNames[] = {
    "no-rand",      "wall-clock",        "unordered-iter",
    "raw-thread",   "float-accumulator", "seed-plumbing",
    "fault-rng",    "hot-alloc",         "bad-suppression",
};

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::string json_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: clouddns_lint [--json <out.json>] <root>...\n");
      return 2;
    } else {
      roots.push_back(std::move(arg));
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "clouddns_lint: no roots given\n");
    return 2;
  }

  Linter linter;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(it->path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "clouddns_lint: cannot walk %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "clouddns_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SourceFile file;
    file.path = path;
    file.generic_path = fs::path(path).generic_string();
    file.raw = SplitLines(buffer.str());
    file.code = StripComments(file.raw);
    linter.Lint(file);
  }

  for (const Violation& v : linter.violations()) {
    std::fprintf(stderr, "%s:%zu: error: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr,
               "clouddns_lint: %zu files, %zu rules, %zu violation(s), "
               "%zu suppressed, %.3fs\n",
               linter.files_scanned(), std::size(kRuleNames),
               linter.violations().size(), linter.suppressed(), wall);

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"name\": \"lint\",\n"
                   "  \"files_scanned\": %zu,\n"
                   "  \"rules\": %zu,\n"
                   "  \"violations\": %zu,\n"
                   "  \"suppressed\": %zu,\n"
                   "  \"wall_seconds\": %.3f\n"
                   "}\n",
                   linter.files_scanned(), std::size(kRuleNames),
                   linter.violations().size(), linter.suppressed(), wall);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "clouddns_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  return linter.violations().empty() ? 0 : 1;
}
