// clouddns_lint: structural analyzer for the clouddns source tree.
//
// The scenario engine promises byte-identical output for any thread count
// (DESIGN.md §7), the analytics layer promises stable report ordering,
// and the PR-4 buffer pools promise that borrowed views never outlive
// their call (DESIGN.md §11). Those contracts die silently; this tool
// makes them mechanical. Three passes run over every file the build
// compiles (discovered through compile_commands.json, headers reached
// via quoted includes):
//
//   text rules      per-line determinism rules — no-rand, wall-clock,
//                   unordered-iter, raw-thread, float-accumulator,
//                   seed-plumbing, fault-rng, hot-alloc (see
//                   text_rules.h for the catalogue).
//   include graph   module edges checked against the declared layering
//                   DAG in tools/clouddns_lint/layers.txt
//                   (layer-inversion), plus file-level cycle rejection
//                   (include-cycle). Diagnostics carry the shortest
//                   offending path.
//   escape pass     borrowed std::span/std::string_view lifetime rules
//                   over the pooled-scratch modules (borrow-member,
//                   borrow-return, lambda-borrow; see escape.h).
//
// Suppression: `// lint:allow(<rule>): <reason>` on the offending line,
// or on a comment line directly above it. The reason is mandatory
// (bad-suppression otherwise), and an allow whose governed line no
// longer triggers its rule is itself flagged (unused-suppression) so
// waivers cannot outlive the code they excused.
//
// Exit status is non-zero when any unsuppressed violation exists.
// `--json <path>` writes a BENCH_lint.json-style summary; `--sarif
// <path>` writes a deterministic SARIF 2.1.0 report for CI upload.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "compdb.h"
#include "escape.h"
#include "include_graph.h"
#include "report.h"
#include "sarif.h"
#include "source.h"
#include "text_rules.h"

namespace {

namespace fs = std::filesystem;

// Wall time of the pre-rewrite std::regex implementation over the same
// tree (100 files, this container), kept in BENCH_lint.json so the
// regex -> token-scan change stays visible in the perf trajectory.
constexpr double kRegexBaselineWallSeconds = 0.716;

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::fprintf(stderr,
               "usage: clouddns_lint [--compdb <compile_commands.json>] "
               "[--src-root <dir>] [--layers <layers.txt>] "
               "[--json <out.json>] [--sarif <out.sarif>] [<root>...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::string json_path;
  std::string sarif_path;
  std::string compdb_path;
  std::string src_root;
  std::string layers_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--compdb" && i + 1 < argc) {
      compdb_path = argv[++i];
    } else if (arg == "--src-root" && i + 1 < argc) {
      src_root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "clouddns_lint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      roots.push_back(std::move(arg));
    }
  }
  if (roots.empty() && compdb_path.empty()) {
    std::fprintf(stderr, "clouddns_lint: no roots and no --compdb given\n");
    return Usage();
  }
  if (!compdb_path.empty() && src_root.empty()) {
    std::fprintf(stderr, "clouddns_lint: --compdb requires --src-root\n");
    return Usage();
  }

  std::string error;
  std::set<std::string> paths;
  if (!compdb_path.empty()) {
    auto from_compdb = lint::FilesFromCompdb(compdb_path, src_root, &error);
    if (!from_compdb) {
      std::fprintf(stderr, "clouddns_lint: %s\n", error.c_str());
      return 2;
    }
    paths.insert(from_compdb->begin(), from_compdb->end());
  }
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      paths.insert(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        paths.insert(it->path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "clouddns_lint: cannot walk %s: %s\n", root.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  const lint::LayerSpec* layers = nullptr;
  std::optional<lint::LayerSpec> loaded_layers;
  if (!layers_path.empty()) {
    loaded_layers = lint::LayerSpec::Load(layers_path, &error);
    if (!loaded_layers) {
      std::fprintf(stderr, "clouddns_lint: %s\n", error.c_str());
      return 2;
    }
    layers = &*loaded_layers;
  }

  const std::string generic_root =
      src_root.empty() ? std::string() : fs::path(src_root).generic_string();
  std::vector<lint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    lint::SourceFile file;
    if (!lint::LoadSourceFile(path, generic_root, file)) {
      std::fprintf(stderr, "clouddns_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }

  lint::Reporter reporter;
  for (lint::SourceFile& file : files) {
    lint::RunTextRules(file, reporter);
    lint::RunEscapePass(file, reporter);
  }
  std::size_t include_edges = 0;
  lint::RunIncludeGraphPass(files, layers, reporter, &include_edges);

  std::set<std::string> active_rules;
  for (const lint::RuleInfo& rule : lint::kRules) {
    active_rules.insert(rule.id);
  }
  if (layers == nullptr) active_rules.erase("layer-inversion");
  reporter.FinalizeSuppressions(files, active_rules);
  reporter.Sort();

  for (const lint::Violation& v : reporter.violations()) {
    std::fprintf(stderr, "%s:%zu: error: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr,
               "clouddns_lint: %zu files, %zu rules, %zu violation(s), "
               "%zu suppressed, %.3fs\n",
               files.size(), std::size(lint::kRules),
               reporter.violations().size(), reporter.suppressed(), wall);

  if (!sarif_path.empty()) {
    // Repo-relative URIs: strip the src root's parent so results read
    // "src/zone/zone.h" regardless of where the checkout lives.
    std::string uri_base;
    if (!generic_root.empty()) {
      uri_base = fs::path(generic_root).parent_path().generic_string();
    }
    if (!lint::WriteSarif(sarif_path, reporter.violations(), uri_base)) {
      std::fprintf(stderr, "clouddns_lint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
  }
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"name\": \"lint\",\n"
                   "  \"files_scanned\": %zu,\n"
                   "  \"rules\": %zu,\n"
                   "  \"include_edges\": %zu,\n"
                   "  \"violations\": %zu,\n"
                   "  \"suppressed\": %zu,\n"
                   "  \"wall_seconds\": %.3f,\n"
                   "  \"regex_baseline_wall_seconds\": %.3f\n"
                   "}\n",
                   files.size(), std::size(lint::kRules), include_edges,
                   reporter.violations().size(), reporter.suppressed(), wall,
                   kRegexBaselineWallSeconds);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "clouddns_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  return reporter.violations().empty() ? 0 : 1;
}
