#include "escape.h"

#include <cctype>
#include <optional>
#include <vector>

namespace lint {
namespace {

std::size_t SkipWs(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

/// If `pos` starts a type token, returns the offset just past it (with a
/// balanced template argument list when one follows). Checks the left
/// identifier boundary; `tokens` must be ordered longest-first when one
/// is a prefix of another.
std::optional<std::size_t> TypeEnd(const std::string& text, std::size_t pos,
                                   const std::vector<const char*>& tokens) {
  if (pos > 0 && IsIdentChar(text[pos - 1])) return std::nullopt;
  for (const char* token : tokens) {
    const std::size_t len = std::char_traits<char>::length(token);
    if (text.compare(pos, len, token) != 0) continue;
    std::size_t end = pos + len;
    if (end < text.size() && IsIdentChar(text[end])) continue;
    std::size_t cursor = SkipWs(text, end);
    if (cursor < text.size() && text[cursor] == '<') {
      int depth = 0;
      while (cursor < text.size()) {
        if (text[cursor] == '<') ++depth;
        if (text[cursor] == '>') {
          --depth;
          if (depth == 0) return cursor + 1;
        }
        ++cursor;
      }
      return std::nullopt;  // unbalanced
    }
    return end;
  }
  return std::nullopt;
}

const std::vector<const char*>& ViewTypes() {
  static const std::vector<const char*> kTypes = {"std::string_view",
                                                  "std::span"};
  return kTypes;
}

/// Owning buffer types whose storage dies with their scope. string_view
/// never matches std::string here: the boundary check in TypeEnd rejects
/// the `_` that follows.
const std::vector<const char*>& OwningTypes() {
  static const std::vector<const char*> kTypes = {"std::vector", "std::string",
                                                  "std::array"};
  return kTypes;
}

struct ScopedName {
  std::string name;
  int depth = 0;
  bool view = false;  ///< declared as span/string_view (else owning)
};

/// After a type spelling: skip cv/ref noise and read the declared
/// identifier. References and pointers are rejected (they alias storage
/// owned elsewhere, which is exactly the safe case).
std::optional<std::string> DeclaredIdent(const std::string& text,
                                         std::size_t type_end) {
  std::size_t cursor = SkipWs(text, type_end);
  if (cursor < text.size() && (text[cursor] == '&' || text[cursor] == '*')) {
    return std::nullopt;
  }
  std::string ident;
  while (cursor < text.size() && IsIdentChar(text[cursor])) {
    ident += text[cursor++];
  }
  if (ident.empty()) return std::nullopt;
  cursor = SkipWs(text, cursor);
  if (cursor >= text.size()) return std::nullopt;
  // A declaration introduces the name and then ends, initializes, or (for
  // parameters) hits the separator/closer.
  char next = text[cursor];
  if (next == ';' || next == '=' || next == '{' || next == '(' ||
      next == ',' || next == ')' || next == '[') {
    return ident;
  }
  return std::nullopt;
}

std::vector<std::string> IdentsIn(const std::string& text) {
  std::vector<std::string> idents;
  std::string current;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    char c = i < text.size() ? text[i] : ' ';
    if (IsIdentChar(c)) {
      current += c;
    } else {
      if (!current.empty()) idents.push_back(current);
      current.clear();
    }
  }
  return idents;
}

class EscapeScanner {
 public:
  EscapeScanner(SourceFile& file, Reporter& reporter)
      : file_(file), reporter_(reporter), flat_(Flatten(file)) {}

  void Run() {
    const std::string& text = flat_.text;
    for (std::size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '{') {
        ++depth_;
        continue;
      }
      if (c == '}') {
        --depth_;
        while (!scoped_.empty() && scoped_.back().depth > depth_) {
          scoped_.pop_back();
        }
        continue;
      }
      if (c == '[') {
        MaybeLambda(i);
        continue;
      }
      if (c == 'r' && WordAt(text, i, "return")) {
        MaybeBorrowReturn(i);
        continue;
      }
      if (c == 's') {
        MaybeDeclaration(i);
        continue;
      }
    }
  }

 private:
  /// Records view/owning declarations and flags view members.
  void MaybeDeclaration(std::size_t pos) {
    const std::string& text = flat_.text;
    bool view = true;
    auto type_end = TypeEnd(text, pos, ViewTypes());
    if (!type_end) {
      view = false;
      type_end = TypeEnd(text, pos, OwningTypes());
    }
    if (!type_end) return;
    auto ident = DeclaredIdent(text, *type_end);
    if (!ident) return;
    const bool member = ident->size() > 1 && ident->back() == '_';
    if (member) {
      if (view) {
        reporter_.Report(
            file_, flat_.LineAt(pos), "borrow-member",
            "member `" + *ident +
                "` holds a borrowed std::span/std::string_view; the view "
                "outlives the call that borrowed it — copy into owned "
                "storage, or carry a reasoned lint:allow(borrow-member) "
                "if the pointee provably outlives this object");
      }
      return;  // owning members are fine, and members are not locals
    }
    scoped_.push_back(ScopedName{*ident, depth_, view});
  }

  /// `return std::span(...)` / `return std::string_view{...}` over an
  /// in-scope owning local or by-value parameter.
  void MaybeBorrowReturn(std::size_t pos) {
    const std::string& text = flat_.text;
    std::size_t cursor = SkipWs(text, pos + 6);
    auto type_end = TypeEnd(text, cursor, ViewTypes());
    if (!type_end) return;
    std::size_t open = SkipWs(text, *type_end);
    if (open >= text.size() || (text[open] != '(' && text[open] != '{')) {
      return;
    }
    const char close = text[open] == '(' ? ')' : '}';
    int depth = 0;
    std::size_t end = open;
    while (end < text.size()) {
      if (text[end] == text[open]) ++depth;
      if (text[end] == close) {
        --depth;
        if (depth == 0) break;
      }
      ++end;
    }
    if (end >= text.size()) return;
    for (const std::string& ident :
         IdentsIn(text.substr(open + 1, end - open - 1))) {
      for (const ScopedName& local : scoped_) {
        if (local.view || local.name != ident) continue;
        reporter_.Report(
            file_, flat_.LineAt(pos), "borrow-return",
            "returns a view over `" + ident +
                "`, a buffer that dies with this scope; return owned bytes "
                "or have the caller pass the buffer in");
        return;
      }
    }
  }

  /// A lambda that escapes its statement (returned, member-assigned, or
  /// stored in a std::function) while capturing borrowed state.
  void MaybeLambda(std::size_t pos) {
    const std::string& text = flat_.text;
    if (pos + 1 < text.size() && text[pos + 1] == '[') return;  // attribute
    if (pos > 0 && text[pos - 1] == '[') return;
    // Subscripts and array declarators follow a value or declarator.
    std::size_t before = pos;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             text[before - 1]))) {
      --before;
    }
    if (before > 0) {
      char prev = text[before - 1];
      if (IsIdentChar(prev) || prev == ')' || prev == ']' || prev == '>') {
        return;
      }
    }
    // Capture list, tolerating nested brackets in init-captures.
    int depth = 0;
    std::size_t end = pos;
    while (end < text.size()) {
      if (text[end] == '[') ++depth;
      if (text[end] == ']') {
        --depth;
        if (depth == 0) break;
      }
      ++end;
    }
    if (end >= text.size()) return;
    std::size_t after = SkipWs(text, end + 1);
    if (after >= text.size() || (text[after] != '(' && text[after] != '{')) {
      return;  // not a lambda introducer
    }
    const std::string captures = text.substr(pos + 1, end - pos - 1);
    if (!CapturesBorrowed(captures)) return;
    if (!StatementEscapes(pos)) return;
    reporter_.Report(
        file_, flat_.LineAt(pos), "lambda-borrow",
        "escaping lambda captures borrowed scratch (`" + captures +
            "`); the capture outlives the call that owns the buffer — "
            "capture owned copies, or keep the lambda call-local");
  }

  [[nodiscard]] bool CapturesBorrowed(const std::string& captures) const {
    if (captures.find('&') != std::string::npos) return true;
    for (const std::string& ident : IdentsIn(captures)) {
      if (ident.find("scratch") != std::string::npos) return true;
      for (const ScopedName& local : scoped_) {
        if (local.view && local.name == ident) return true;
      }
    }
    return false;
  }

  /// Does the statement containing offset `pos` hand the lambda to an
  /// owner that outlives the call?
  [[nodiscard]] bool StatementEscapes(std::size_t pos) const {
    const std::string& text = flat_.text;
    std::size_t start = pos;
    while (start > 0 && text[start - 1] != ';' && text[start - 1] != '{' &&
           text[start - 1] != '}') {
      --start;
    }
    const std::string stmt = text.substr(start, pos - start);
    if (stmt.find("std::function") != std::string::npos) return true;
    std::size_t cursor = stmt.size();
    while (cursor > 0 &&
           std::isspace(static_cast<unsigned char>(stmt[cursor - 1]))) {
      --cursor;
    }
    if (cursor == 0) return false;
    // `return [...]`.
    if (cursor >= 6 && stmt.compare(cursor - 6, 6, "return") == 0 &&
        (cursor == 6 || !IsIdentChar(stmt[cursor - 7]))) {
      return true;
    }
    // `member_ = [...]` (plain assignment, not ==/<=/...).
    if (stmt[cursor - 1] != '=') return false;
    if (cursor >= 2 &&
        std::string("=!<>+-*/%&|^").find(stmt[cursor - 2]) !=
            std::string::npos) {
      return false;
    }
    std::size_t ident_end = cursor - 1;
    while (ident_end > 0 && std::isspace(static_cast<unsigned char>(
                                stmt[ident_end - 1]))) {
      --ident_end;
    }
    std::size_t ident_start = ident_end;
    while (ident_start > 0 && IsIdentChar(stmt[ident_start - 1])) {
      --ident_start;
    }
    return ident_end > ident_start && stmt[ident_end - 1] == '_';
  }

  SourceFile& file_;
  Reporter& reporter_;
  FlatSource flat_;
  int depth_ = 0;
  std::vector<ScopedName> scoped_;
};

}  // namespace

void RunEscapePass(SourceFile& file, Reporter& reporter) {
  const bool watched = file.module == "capture" || file.module == "net" ||
                       file.module == "resolver";
  if (!watched) return;
  EscapeScanner(file, reporter).Run();
}

}  // namespace lint
