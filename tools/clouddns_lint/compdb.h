// compile_commands.json-driven file discovery: the analyzer scans exactly
// what the build compiles (plus headers reached through quoted includes),
// so a file CMake forgot is a build bug, not a lint blind spot.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lint {

/// Translation units under `src_root` listed in the compilation database
/// at `path`, plus every header transitively reachable from them via
/// quoted includes resolved against `src_root`. Paths are returned
/// sorted and deduplicated. Returns nullopt with a message in *error if
/// the database cannot be read.
std::optional<std::vector<std::string>> FilesFromCompdb(
    const std::string& path, const std::string& src_root, std::string* error);

}  // namespace lint
