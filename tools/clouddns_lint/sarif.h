// Deterministic SARIF 2.1.0 writer. The report is a function of the
// sorted violation list and the static rule registry only — no
// timestamps, no absolute paths, no environment — so two runs over the
// same tree produce byte-identical files (asserted by the structural
// selftest) and the artifact diffs cleanly in CI.
#pragma once

#include <string>
#include <vector>

#include "report.h"

namespace lint {

/// Renders the violations as one SARIF run. `uri_base` is stripped from
/// violation paths to keep URIs repo-relative (pass the source root's
/// parent, or empty to emit paths as-is).
std::string SarifReport(const std::vector<Violation>& violations,
                        const std::string& uri_base);

/// Writes SarifReport() to `path`; returns false on I/O failure.
bool WriteSarif(const std::string& path,
                const std::vector<Violation>& violations,
                const std::string& uri_base);

}  // namespace lint
