// Violation collection shared by every pass: suppression matching, the
// rule registry (ids + one-line summaries, reused by the SARIF writer),
// and end-of-run bookkeeping (reasonless and stale suppressions).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "source.h"

namespace lint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the analyzer can emit, in SARIF registry order.
inline constexpr RuleInfo kRules[] = {
    {"no-rand",
     "C library / <random> generators are nondeterministic across "
     "platforms; draw from a plumbed sim::Rng instead"},
    {"wall-clock",
     "wall-clock reads leak host time into simulation output; use "
     "sim::TimeUs plumbed from the scenario clock"},
    {"unordered-iter",
     "iteration over an unordered container in an emit path; hash order "
     "leaks into output"},
    {"raw-thread",
     "raw std::thread outside the scenario engine; route parallelism "
     "through src/cloud/scenario.cc"},
    {"float-accumulator",
     "aggregate accumulators must be double or integer; float rounding "
     "makes report numbers platform-dependent"},
    {"seed-plumbing",
     "freshly invented seed; plumb the scenario seed or derive one with "
     "sim::SubstreamSeed"},
    {"fault-rng",
     "fault-module Rng must be built from sim::SubstreamSeed on the "
     "construction line"},
    {"hot-alloc",
     "string construction in a hot-path-tagged file; key on the cached "
     "Name hash + flat bytes (DESIGN.md §10)"},
    {"io-unchecked",
     "raw fopen/fwrite/ofstream outside base::io; write through the "
     "checked atomic FileWriter / framed helpers (DESIGN.md §14)"},
    {"layer-inversion",
     "include edge violates the declared module DAG (layers.txt)"},
    {"include-cycle", "cyclic #include chain between source files"},
    {"borrow-member",
     "borrowed span/string_view stored in a data member; the view can "
     "outlive the pooled buffer it points into (DESIGN.md §11)"},
    {"borrow-return",
     "span/string_view over a function-local buffer returned past the "
     "buffer's scope (DESIGN.md §11)"},
    {"lambda-borrow",
     "escaping lambda captures a borrowed scratch view by reference; the "
     "capture outlives the owning call (DESIGN.md §11)"},
    {"bad-suppression", "lint:allow without a reason"},
    {"unused-suppression",
     "lint:allow whose governed line no longer triggers the rule; remove "
     "the dead waiver"},
};

class Reporter {
 public:
  /// Records a violation unless a matching suppression governs `line`
  /// (the suppression is marked used either way it matches).
  void Report(SourceFile& file, std::size_t line, const std::string& rule,
              const std::string& message);

  /// Records a violation no suppression can silence (meta rules).
  void ReportUnsuppressable(const SourceFile& file, std::size_t line,
                            const std::string& rule,
                            const std::string& message);

  /// Emits bad-suppression for reasonless markers and unused-suppression
  /// for markers whose governed line never triggered their rule. Rules
  /// outside `active_rules` (e.g. layer-inversion without --layers) are
  /// exempt from staleness, as are unknown rule names (typo'd markers are
  /// reported as bad-suppression instead). Call once, after every pass.
  void FinalizeSuppressions(std::vector<SourceFile>& files,
                            const std::set<std::string>& active_rules);

  /// Sorts violations by (file, line, rule, message) for deterministic
  /// output; call before reading violations().
  void Sort();

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t suppressed() const { return suppressed_; }

 private:
  std::vector<Violation> violations_;
  std::size_t suppressed_ = 0;
};

[[nodiscard]] bool IsKnownRule(const std::string& rule);

}  // namespace lint
