# Self-test for the structural passes of clouddns_lint: seed scratch
# trees with a layering inversion, an include cycle, each borrowed-buffer
# escape shape, and a stale suppression; assert each fires with the
# expected rule id at the right file:line, and that two analyzer runs
# produce a byte-identical SARIF report.
#
# Driven by ctest:
#   cmake -DLINT=<path-to-clouddns_lint> -DWORK=<scratch-dir> \
#     -P lint_structural_selftest.cmake

if(NOT LINT OR NOT WORK)
  message(FATAL_ERROR "pass -DLINT=<linter> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")

# --- Pass 1: layering inversion and include cycle -------------------------
# Declared DAG: analysis may see dns, dns may see net. The seeded tree
# has dns including an analysis header (an inversion — the declared path
# runs the other way) and a two-header cycle inside net.
set(layers "${WORK}/layers.txt")
file(WRITE "${layers}" "net:
dns: net
analysis: dns net
")
file(WRITE "${WORK}/src/analysis/report.h" "#pragma once
int ReportRows();
")
file(WRITE "${WORK}/src/dns/bad.cc" "#include \"analysis/report.h\"
int Encode() { return ReportRows(); }
")
file(WRITE "${WORK}/src/net/a.h" "#include \"net/b.h\"
struct A { B* peer; };
")
file(WRITE "${WORK}/src/net/b.h" "#include \"net/a.h\"
struct B { A* peer; };
")

execute_process(
  COMMAND "${LINT}" --layers "${layers}" --src-root "${WORK}/src"
          "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR
    "analyzer passed a tree with a layering inversion and a cycle")
endif()
if(NOT diagnostics MATCHES "bad.cc:1: error: .layer-inversion.")
  message(FATAL_ERROR
    "missing layer-inversion diagnostic in:\n${diagnostics}")
endif()
# The diagnostic must quote the declared reverse path, not just the edge.
if(NOT diagnostics MATCHES "analysis -> dns")
  message(FATAL_ERROR
    "layer-inversion diagnostic lacks the declared path in:\n${diagnostics}")
endif()
if(NOT diagnostics MATCHES "a.h:1: error: .include-cycle.")
  message(FATAL_ERROR
    "missing include-cycle diagnostic in:\n${diagnostics}")
endif()
if(NOT diagnostics MATCHES "net/a.h -> net/b.h -> net/a.h")
  message(FATAL_ERROR
    "include-cycle diagnostic lacks the cycle chain in:\n${diagnostics}")
endif()
file(REMOVE_RECURSE "${WORK}/src")

# --- Pass 2: borrowed-buffer escapes --------------------------------------
# view_member.h stores a span in a member (borrow-member), the resolver
# fixtures return a view over a scope-local buffer (borrow-return) and
# member-assign a lambda capturing scratch by reference (lambda-borrow).
file(WRITE "${WORK}/src/capture/view_member.h" "#pragma once
#include <cstdint>
#include <span>
class Cursor {
 public:
  void Bind(std::span<const std::uint8_t> bytes);
 private:
  std::span<const std::uint8_t> view_;
};
")
file(WRITE "${WORK}/src/resolver/borrow_return.cc" "#include <cstdint>
#include <span>
#include <vector>
std::span<const std::uint8_t> Encode() {
  std::vector<std::uint8_t> wire;
  wire.push_back(0);
  return std::span<const std::uint8_t>(wire.data(), wire.size());
}
")
file(WRITE "${WORK}/src/resolver/lambda_borrow.cc" "#include <cstdint>
#include <functional>
#include <span>
struct Sender {
  std::function<void()> on_send_;
  void Arm(std::span<const std::uint8_t> scratch) {
    on_send_ = [&scratch] { (void)scratch.size(); };
  }
};
")

execute_process(
  COMMAND "${LINT}" --src-root "${WORK}/src" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR "analyzer passed a tree with seeded escapes")
endif()
foreach(expected
    "view_member.h:8: error: .borrow-member."
    "borrow_return.cc:7: error: .borrow-return."
    "lambda_borrow.cc:7: error: .lambda-borrow.")
  if(NOT diagnostics MATCHES "${expected}")
    message(FATAL_ERROR
      "missing diagnostic matching '${expected}' in:\n${diagnostics}")
  endif()
endforeach()

# --- SARIF determinism ----------------------------------------------------
# Two runs over the same tree must produce byte-identical reports.
execute_process(
  COMMAND "${LINT}" --src-root "${WORK}/src" "${WORK}/src"
          --sarif "${WORK}/run1.sarif"
  RESULT_VARIABLE status1
  ERROR_VARIABLE ignored
  OUTPUT_VARIABLE ignored_out)
execute_process(
  COMMAND "${LINT}" --src-root "${WORK}/src" "${WORK}/src"
          --sarif "${WORK}/run2.sarif"
  RESULT_VARIABLE status2
  ERROR_VARIABLE ignored
  OUTPUT_VARIABLE ignored_out)
if(NOT EXISTS "${WORK}/run1.sarif" OR NOT EXISTS "${WORK}/run2.sarif")
  message(FATAL_ERROR "analyzer did not write the SARIF reports")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK}/run1.sarif" "${WORK}/run2.sarif"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "SARIF output is not byte-identical across runs")
endif()
file(READ "${WORK}/run1.sarif" sarif_text)
if(NOT sarif_text MATCHES "\"version\": \"2.1.0\"" OR
   NOT sarif_text MATCHES "\"ruleId\": \"borrow-member\"")
  message(FATAL_ERROR "SARIF report is missing expected content:\n${sarif_text}")
endif()
file(REMOVE_RECURSE "${WORK}/src")

# --- Stale suppression ----------------------------------------------------
# A reasoned allow whose governed line no longer triggers the rule must
# itself be flagged, so waivers cannot outlive the code they excused.
file(WRITE "${WORK}/src/dns/stale.cc" "int Stale() {
  int x = 0;  // lint:allow(no-rand): waiver kept after the rand call left
  return x;
}
")
execute_process(
  COMMAND "${LINT}" --src-root "${WORK}/src" "${WORK}/src"
  RESULT_VARIABLE status
  ERROR_VARIABLE diagnostics
  OUTPUT_VARIABLE stdout_text)
if(status EQUAL 0)
  message(FATAL_ERROR "analyzer passed a tree with a stale suppression")
endif()
if(NOT diagnostics MATCHES "stale.cc:2: error: .unused-suppression.")
  message(FATAL_ERROR
    "stale lint:allow was not flagged:\n${diagnostics}")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "lint structural selftest passed")
