# Gate on the thread-scaling sweep: for every bench in BENCH_scaling.json,
# 8-thread throughput must be at least 1-thread throughput. The sharded
# pipeline has no serial merge barrier left, so adding workers must never
# cost queries/second — a regression here means a new serial section or
# false sharing crept into the hot path.
#
# Entries named `<bench>_cold` come from the cache-cleared cold sweep
# (CLOUDDNS_COLD_SWEEP=1) and are gated on wall time instead: the cold
# 8-thread rebuild must beat the cold 1-thread rebuild outright, or the
# parallel zone build / signing / codec path has stopped pulling its
# weight.
#
# Usage: cmake -DSCALING_JSON=path/to/BENCH_scaling.json -P check_scaling.cmake
if(NOT DEFINED SCALING_JSON)
  set(SCALING_JSON "BENCH_scaling.json")
endif()
if(NOT EXISTS "${SCALING_JSON}")
  message(FATAL_ERROR "scaling results not found: ${SCALING_JSON} "
                      "(run the benches with CLOUDDNS_SCALING=1 first)")
endif()

# One JSON object per line; parsed with MATCHALL on the raw content because
# cmake list semantics choke on the surrounding [ ] array brackets.
file(READ "${SCALING_JSON}" content)
string(REGEX MATCHALL "\\{[^\n]*\\}" entries "${content}")
set(benches "")
foreach(entry IN LISTS entries)
  if(NOT entry MATCHES "\"name\": \"([^\"]+)\", \"threads\": ([0-9]+), \"wall_seconds\": ([0-9]+)\\.([0-9]+), .*\"queries_per_second\": ([0-9]+)")
    continue()
  endif()
  set(bench "${CMAKE_MATCH_1}")
  set(threads "${CMAKE_MATCH_2}")
  # Wall time as integer milliseconds (%.3f always prints 3 decimals), so
  # the comparisons below stay integer arithmetic.
  set(wall_ms "${CMAKE_MATCH_3}${CMAKE_MATCH_4}")
  set(qps "${CMAKE_MATCH_5}")
  list(APPEND benches "${bench}")
  set(qps_${bench}_${threads} "${qps}")
  set(wall_${bench}_${threads} "${wall_ms}")
endforeach()
list(REMOVE_DUPLICATES benches)
if(benches STREQUAL "")
  message(FATAL_ERROR "no sweep entries parsed from ${SCALING_JSON}")
endif()

set(failed FALSE)
foreach(bench IN LISTS benches)
  if(NOT DEFINED qps_${bench}_1 OR NOT DEFINED qps_${bench}_8)
    message(FATAL_ERROR "${bench}: sweep is missing the 1- or 8-thread point")
  endif()
  if(bench MATCHES "_cold$")
    # Cold gate: a cache-cleared rebuild must get strictly faster with
    # workers — wall time, not throughput, is what the user waits on.
    set(one "${wall_${bench}_1}")
    set(eight "${wall_${bench}_8}")
    if(eight GREATER_EQUAL one)
      message(SEND_ERROR "${bench}: cold 8-thread rebuild is no faster "
                         "than 1-thread (${eight} ms >= ${one} ms)")
      set(failed TRUE)
    else()
      message(STATUS "${bench}: cold 1T=${one} ms, 8T=${eight} ms — faster")
    endif()
  else()
    set(one "${qps_${bench}_1}")
    set(eight "${qps_${bench}_8}")
    if(eight LESS one)
      message(SEND_ERROR "${bench}: 8-thread throughput regressed below "
                         "1-thread (${eight} q/s < ${one} q/s)")
      set(failed TRUE)
    else()
      message(STATUS "${bench}: 1T=${one} q/s, 8T=${eight} q/s — monotonic")
    endif()
  endif()
endforeach()
if(failed)
  message(FATAL_ERROR "thread scaling is no longer monotonic")
endif()
