# Gate on the thread-scaling sweep: for every bench in BENCH_scaling.json,
# 8-thread throughput must be at least 1-thread throughput. The sharded
# pipeline has no serial merge barrier left, so adding workers must never
# cost queries/second — a regression here means a new serial section or
# false sharing crept into the hot path.
#
# Usage: cmake -DSCALING_JSON=path/to/BENCH_scaling.json -P check_scaling.cmake
if(NOT DEFINED SCALING_JSON)
  set(SCALING_JSON "BENCH_scaling.json")
endif()
if(NOT EXISTS "${SCALING_JSON}")
  message(FATAL_ERROR "scaling results not found: ${SCALING_JSON} "
                      "(run the benches with CLOUDDNS_SCALING=1 first)")
endif()

# One JSON object per line; parsed with MATCHALL on the raw content because
# cmake list semantics choke on the surrounding [ ] array brackets.
file(READ "${SCALING_JSON}" content)
string(REGEX MATCHALL "\\{[^\n]*\\}" entries "${content}")
set(benches "")
foreach(entry IN LISTS entries)
  if(NOT entry MATCHES "\"name\": \"([^\"]+)\", \"threads\": ([0-9]+), .*\"queries_per_second\": ([0-9]+)")
    continue()
  endif()
  set(bench "${CMAKE_MATCH_1}")
  set(threads "${CMAKE_MATCH_2}")
  set(qps "${CMAKE_MATCH_3}")
  list(APPEND benches "${bench}")
  set(qps_${bench}_${threads} "${qps}")
endforeach()
list(REMOVE_DUPLICATES benches)
if(benches STREQUAL "")
  message(FATAL_ERROR "no sweep entries parsed from ${SCALING_JSON}")
endif()

set(failed FALSE)
foreach(bench IN LISTS benches)
  if(NOT DEFINED qps_${bench}_1 OR NOT DEFINED qps_${bench}_8)
    message(FATAL_ERROR "${bench}: sweep is missing the 1- or 8-thread point")
  endif()
  set(one "${qps_${bench}_1}")
  set(eight "${qps_${bench}_8}")
  if(eight LESS one)
    message(SEND_ERROR "${bench}: 8-thread throughput regressed below "
                       "1-thread (${eight} q/s < ${one} q/s)")
    set(failed TRUE)
  else()
    message(STATUS "${bench}: 1T=${one} q/s, 8T=${eight} q/s — monotonic")
  endif()
endforeach()
if(failed)
  message(FATAL_ERROR "thread scaling is no longer monotonic")
endif()
