// Quickstart: the library in five minutes.
//
//  1. Build and parse RFC 1035 wire-format messages.
//  2. Attribute source addresses to cloud providers with the AS database.
//  3. Run a miniature capture-week simulation and print who sends what.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "analysis/experiments.h"
#include "cloud/scenario.h"
#include "dns/message.h"
#include "net/asdb.h"

using namespace clouddns;

int main() {
  // --- 1. DNS messages on the wire -------------------------------------
  dns::Message query = dns::Message::MakeQuery(
      0x2b1a, *dns::Name::Parse("www.example.nl"), dns::RrType::kAaaa,
      dns::EdnsInfo{1232, /*dnssec_ok=*/true, 0});
  dns::WireBuffer wire = query.Encode();
  std::printf("Encoded a %zu-byte query:\n%s\n", wire.size(),
              dns::Message::Decode(wire)->ToString().c_str());

  // --- 2. Source-address attribution (the ENTRADA enrichment step) ------
  net::AsDatabase asdb;
  cloud::RegisterProviderAses(asdb);
  for (const char* source : {"8.8.8.8", "2a03:2880::1", "52.95.1.2",
                             "203.0.113.50"}) {
    auto address = *net::IpAddress::Parse(source);
    auto asn = asdb.OriginAs(address);
    cloud::Provider provider =
        asn ? cloud::ProviderOfAsn(*asn) : cloud::Provider::kOther;
    std::printf("%-16s -> AS%-6s %s\n", source,
                asn ? std::to_string(*asn).c_str() : "?",
                std::string(cloud::ToString(provider)).c_str());
  }

  // --- 3. A one-minute Internet ----------------------------------------
  // Simulate a small .nl capture: client queries flow through provider
  // resolver fleets, across the latency-modelled network, into the TLD's
  // authoritative servers, which capture every query/response pair.
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  config.year = 2020;
  config.client_queries = 30'000;
  config.zone_scale = 0.001;
  std::printf("\nSimulating a scaled .nl capture week (30k client queries)"
              "...\n");
  cloud::ScenarioResult result = cloud::RunScenario(config);

  std::printf("Captured %zu queries at the two monitored .nl servers.\n",
              result.records.size());
  auto shares = analysis::ComputeCloudShares(result);
  for (std::size_t i = 0; i + 1 < shares.size(); ++i) {
    std::printf("  %-12s %6.2f%%\n",
                std::string(cloud::ToString(shares[i].provider)).c_str(),
                100.0 * shares[i].share);
  }
  std::printf("  %-12s %6.2f%%  <- the paper's headline: ~30%% from 5 CPs\n",
              "5 CPs", 100.0 * shares.back().share);
  return 0;
}
