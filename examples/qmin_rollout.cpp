// Longitudinal Q-min detection (the Fig. 3 methodology): run Google's
// fleet against a ccTLD for eight months, bucket the captured queries by
// month, and *detect* the deployment instant from the NS-share jump —
// without being told when the operator flipped the switch.
//
// Usage: qmin_rollout [nl|nz]
#include <cstdio>
#include <cstring>

#include "analysis/experiments.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

using namespace clouddns;

int main(int argc, char** argv) {
  cloud::Vantage vantage = cloud::Vantage::kNl;
  if (argc > 1 && std::strcmp(argv[1], "nz") == 0) {
    vantage = cloud::Vantage::kNz;
  }

  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = 2020;
  config.client_queries = 250'000;
  config.window_start = sim::TimeFromCivil({2019, 9, 1});
  config.window_end = sim::TimeFromCivil({2020, 5, 1});
  config.google_only = true;
  config.inject_cyclic_event = vantage == cloud::Vantage::kNz;

  std::printf("Simulating Google vs %s, Sep 2019 - Apr 2020...\n",
              std::string(cloud::ToString(vantage)).c_str());
  auto result = cloud::RunScenario(config);
  auto months =
      analysis::ComputeMonthlyQtypes(result, cloud::Provider::kGoogle);

  analysis::TextTable table({"month", "queries", "A+AAAA", "NS", "verdict"});
  double previous_ns = 0;
  std::string deployment;
  for (const auto& month : months) {
    auto share = [&month](const char* key) {
      auto it = month.qtype_share.find(key);
      return it == month.qtype_share.end() ? 0.0 : it->second;
    };
    double ns = share("NS");
    std::string verdict;
    if (deployment.empty() && ns > previous_ns + 0.20 && ns > 0.30) {
      deployment = month.month;
      verdict = "<- Q-min deployment detected";
    } else if (!deployment.empty() && ns < previous_ns - 0.10) {
      verdict = "<- anomaly: A/AAAA burst (misconfigured domains?)";
    }
    table.AddRow({month.month, analysis::Count(month.total),
                  analysis::Percent(share("A") + share("AAAA")),
                  analysis::Percent(ns), verdict});
    previous_ns = ns;
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nDetected deployment: %s (Google confirmed Dec 2019 to the\n"
              "paper's authors). The positive side of centralization: one\n"
              "operator's switch immediately improved query privacy for\n"
              "every user of its resolvers.\n",
              deployment.empty() ? "none" : deployment.c_str());
  return 0;
}
