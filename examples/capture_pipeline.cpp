// The offline ENTRADA workflow, end to end:
//   capture -> columnar file -> (prefix-preserving anonymization) ->
//   reload -> enrichment + aggregation.
// This is the shape of a real deployment, where capture and analysis are
// separate systems with a storage format and a privacy boundary between
// them. Shows that the analyses still work on anonymized data when the
// routing table is mapped through the same anonymizer.
#include <cstdio>

#include "analysis/report.h"
#include "analysis/rssac002.h"
#include "capture/anonymize.h"
#include "capture/columnar.h"
#include "cloud/scenario.h"
#include "entrada/analytics.h"

using namespace clouddns;

int main() {
  // --- capture side -----------------------------------------------------
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  config.year = 2020;
  config.client_queries = 60'000;
  std::printf("capturing a scaled .nl week...\n");
  cloud::ScenarioResult week = cloud::RunScenario(config);

  // Exports need the single time-ordered stream, so flatten explicitly
  // (merged once, memoized; analytics would scan the shards in place).
  const std::string raw_path = "/tmp/clouddns_example_raw.cdns";
  capture::WriteCaptureFile(raw_path, week.records.Flatten());
  std::printf("wrote %zu records to %s\n", week.records.size(),
              raw_path.c_str());

  // Privacy boundary: anonymize before the trace leaves the operator.
  capture::Anonymizer anonymizer(/*key=*/0x5eed);
  const std::string anon_path = "/tmp/clouddns_example_anon.cdns";
  capture::WriteCaptureFile(anon_path,
                            anonymizer.AnonymizeCapture(week.records.Flatten()));
  std::printf("anonymized copy at %s\n", anon_path.c_str());

  // --- analysis side (only the anonymized file + the mapped routing
  // table cross the boundary) --------------------------------------------
  auto records = capture::ReadCaptureFile(anon_path);
  if (!records) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }

  // Map the AS database through the same anonymizer: announcements keyed
  // by anonymized prefixes attribute anonymized sources correctly because
  // the mapping is prefix-preserving.
  net::AsDatabase anonymized_asdb;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    const auto& network = cloud::NetworkOf(provider);
    for (net::Asn asn : network.ases) {
      anonymized_asdb.AddAs(asn, std::string(cloud::ToString(provider)));
    }
    auto announce = [&](const net::Prefix& block) {
      anonymized_asdb.Announce(
          net::Prefix(anonymizer.Anonymize(block.address()), block.length()),
          network.ases.front());
    };
    for (const auto& block : network.v4_blocks) announce(block);
    for (const auto& block : network.v6_blocks) announce(block);
    for (const auto& block : network.public_dns_blocks) announce(block);
  }

  auto by_as = entrada::CountBy(*records, entrada::KeySrcAs(anonymized_asdb));
  std::uint64_t cloud_queries = 0;
  for (const auto& [key, count] : by_as.counts) {
    if (key != "AS?") cloud_queries += count;
  }
  std::printf(
      "\ncloud share measured on ANONYMIZED data: %s (5 CPs)\n",
      analysis::Percent(static_cast<double>(cloud_queries) /
                        static_cast<double>(records->size()))
          .c_str());

  // Aggregations that never needed addresses at all work unchanged.
  analysis::TextTable table({"qtype", "share"});
  auto qtypes = entrada::CountBy(*records, entrada::KeyQtype());
  for (const auto& [qtype, count] : qtypes.counts) {
    if (qtypes.Share(qtype) > 0.02) {
      table.AddRow({qtype, analysis::Percent(qtypes.Share(qtype))});
    }
  }
  std::printf("\n%s", table.Render().c_str());

  std::printf("\nRSSAC002-style daily summary (first day):\n");
  auto days = analysis::Rssac002Report(*records);
  if (!days.empty()) {
    std::printf("%s", analysis::RenderRssac002Yaml(days.front(),
                                                   "nl-anonymized")
                          .c_str());
  }

  std::remove(raw_path.c_str());
  std::remove(anon_path.c_str());
  return 0;
}
