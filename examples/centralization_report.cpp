// Full centralization report for one capture week — the paper's §4 in one
// run: provider shares (Fig. 1), transport mix (Table 5), RR types
// (Fig. 2), junk ratios (Fig. 4) and dataset totals (Table 3).
//
// Usage: centralization_report [nl|nz|root] [2018|2019|2020] [queries]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/experiments.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

using namespace clouddns;

int main(int argc, char** argv) {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  if (argc > 1) {
    if (std::strcmp(argv[1], "nz") == 0) config.vantage = cloud::Vantage::kNz;
    if (std::strcmp(argv[1], "root") == 0) {
      config.vantage = cloud::Vantage::kRoot;
    }
  }
  config.year = argc > 2 ? std::atoi(argv[2]) : 2020;
  config.client_queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 150'000;

  std::printf("Simulating %s %d with %llu client queries...\n",
              std::string(cloud::ToString(config.vantage)).c_str(),
              config.year,
              static_cast<unsigned long long>(config.client_queries));
  cloud::ScenarioResult result = cloud::RunScenario(config);

  analysis::PrintBanner("Dataset", "Table 3 style totals");
  auto stats = analysis::ComputeDatasetStats(result);
  std::printf("queries=%s valid=%s (%s) resolvers=%s ases=%s\n",
              analysis::Count(stats.queries_total).c_str(),
              analysis::Count(stats.queries_valid).c_str(),
              analysis::Percent(static_cast<double>(stats.queries_valid) /
                                static_cast<double>(stats.queries_total))
                  .c_str(),
              analysis::Count(stats.resolvers_exact).c_str(),
              analysis::Count(stats.ases_exact).c_str());

  analysis::PrintBanner("Centralization", "Figure 1 style provider shares");
  auto shares = analysis::ComputeCloudShares(result);
  analysis::TextTable share_table({"provider", "queries", "share"});
  for (const auto& share : shares) {
    std::string name = &share == &shares.back()
                           ? "ALL 5 CPs"
                           : std::string(cloud::ToString(share.provider));
    share_table.AddRow({name, analysis::Count(share.queries),
                        analysis::Percent(share.share)});
  }
  std::printf("%s", share_table.Render().c_str());

  analysis::PrintBanner("Behaviour", "Table 5 / Fig. 2 / Fig. 4 per provider");
  analysis::TextTable behaviour({"provider", "IPv6", "TCP", "junk", "NS", "DS",
                                 "DNSKEY"});
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    auto mix = analysis::ComputeTransportMix(result, provider);
    auto rr = analysis::ComputeRrTypeMix(result, provider);
    behaviour.AddRow({std::string(cloud::ToString(provider)),
                      analysis::Percent(mix.ipv6), analysis::Percent(mix.tcp),
                      analysis::Percent(
                          analysis::ComputeJunkRatio(result, provider)),
                      analysis::Percent(rr["NS"]), analysis::Percent(rr["DS"]),
                      analysis::Percent(rr["DNSKEY"])});
  }
  std::printf("%s", behaviour.Render().c_str());

  std::printf("\nInterpretation guide: Google/Cloudflare dual-stack, pure\n"
              "UDP; Microsoft v4-only with no DNSSEC fetches; Facebook v6-\n"
              "heavy with a real TCP share; NS-heavy mixes indicate QNAME\n"
              "minimization (2020 captures).\n");
  return 0;
}
