// The §4.3 dual-stack methodology, step by step:
//   1. capture a week of .nl traffic and keep Facebook's source addresses;
//   2. reverse-lookup every address (in-addr.arpa / ip6.arpa PTR);
//   3. read the site (airport code) out of the PTR name;
//   4. match v4/v6 addresses with identical PTR names -> dual-stack hosts;
//   5. correlate per-site median TCP-handshake RTTs with the v4/v6 split.
#include <cstdio>

#include "analysis/experiments.h"
#include "analysis/rdns.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

using namespace clouddns;

int main() {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  config.year = 2020;
  config.client_queries = 150'000;
  std::printf("Simulating .nl w2020...\n");
  auto result = cloud::RunScenario(config);

  // Step 2-3 on a single address, to show the moving parts.
  analysis::RdnsDatabase rdns(result.ptr_records);
  for (const auto& record : result.records) {
    if (analysis::ProviderOfRecord(result, record) !=
        cloud::Provider::kFacebook) {
      continue;
    }
    auto ptr = rdns.Lookup(record.src);
    if (!ptr) continue;
    std::printf("\nExample reverse lookup:\n  %s -> %s (site tag: %s)\n",
                record.src.ToString().c_str(), ptr->ToString().c_str(),
                analysis::SiteTagFromPtr(*ptr)->c_str());
    break;
  }

  // Steps 1-5, aggregated.
  auto sites = analysis::ComputeFacebookSites(result, /*server A=*/0);
  analysis::TextTable table(
      {"site", "queries", "v6-share", "medRTTv4", "medRTTv6", "dual-hosts",
       "reading"});
  for (const auto& site : sites) {
    std::string reading;
    if (!site.median_rtt_v4_ms && !site.median_rtt_v6_ms) {
      reading = "no TCP at all (paper's Location 1)";
    } else if (site.median_rtt_v4_ms && site.median_rtt_v6_ms &&
               *site.median_rtt_v6_ms > *site.median_rtt_v4_ms + 20) {
      reading = "slow v6 path -> prefers IPv4";
    } else {
      reading = "similar RTTs -> even split";
    }
    auto rtt = [](const std::optional<double>& v) {
      return v ? analysis::Fixed(*v, 1) + "ms" : std::string("-");
    };
    table.AddRow({site.site, analysis::Count(site.queries),
                  analysis::Percent(site.v6_share),
                  rtt(site.median_rtt_v4_ms), rtt(site.median_rtt_v6_ms),
                  std::to_string(site.dual_stack_hosts), reading});
  }
  std::printf("\n%s", table.Render().c_str());
  std::printf("\n%zu PTR records served from the generated arpa zones.\n",
              rdns.record_count());
  return 0;
}
