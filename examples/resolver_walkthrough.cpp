// A guided tour of one recursive resolution: every packet a resolver sends
// while answering "www.dom3.nl AAAA", printed in four configurations —
// plain, QNAME-minimized, validating, and validating at EDNS 512 (which
// forces a TCP retry). This is the microscope view of the mechanisms the
// scenario benches aggregate over millions of queries.
#include <cstdio>

#include "resolver/resolver.h"
#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "sim/network.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

using namespace clouddns;

namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

struct World {
  World() {
    auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
    resolver_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
    network = std::make_unique<sim::Network>(latency);

    zone::ZoneBuildConfig root_config;
    root_config.apex = dns::Name{};
    root_config.nameservers = {
        {N("b.root-servers.example"), {*net::IpAddress::Parse("198.41.0.4")}}};
    auto root = zone::MakeZoneSkeleton(root_config);
    zone::AddDelegation(root, N("nl"),
                        {{N("ns1.dns.nl"),
                          {*net::IpAddress::Parse("194.0.28.1")}}},
                        true, 172800);
    zone::SignZone(root);
    root_zone = std::make_shared<const zone::Zone>(std::move(root));

    zone::ZoneBuildConfig nl_config;
    nl_config.apex = N("nl");
    nl_config.nameservers = {
        {N("ns1.dns.nl"), {*net::IpAddress::Parse("194.0.28.1")}}};
    auto nl = zone::MakeZoneSkeleton(nl_config);
    zone::PopulateDelegations(nl, 10, "dom", 1.0,
                              net::Ipv4Address(100, 70, 0, 0));
    zone::SignZone(nl);
    nl_zone = std::make_shared<const zone::Zone>(std::move(nl));

    root_server =
        std::make_unique<server::AuthServer>(server::AuthServerConfig{});
    root_server->Serve(root_zone);
    network->RegisterServer(*net::IpAddress::Parse("198.41.0.4"), auth_site,
                            *root_server);
    nl_server =
        std::make_unique<server::AuthServer>(server::AuthServerConfig{});
    nl_server->Serve(nl_zone);
    network->RegisterServer(*net::IpAddress::Parse("194.0.28.1"), auth_site,
                            *nl_server);
    leaf = std::make_unique<server::LeafAuthService>(server::LeafAuthConfig{});
    network->SetDefaultRoute(auth_site, *leaf);
  }

  void Walk(const char* title, bool qmin, bool validate,
            std::uint16_t edns_size) {
    std::printf("\n=== %s ===\n", title);
    resolver::ResolverConfig config;
    resolver::EgressHost host;
    host.v4 = *net::IpAddress::Parse("10.1.0.1");
    host.site = resolver_site;
    config.hosts = {host};
    config.qname_minimization = qmin;
    config.validate_dnssec = validate;
    config.edns_udp_size = edns_size;
    resolver::RecursiveResolver resolver(
        *network, config, {*net::IpAddress::Parse("198.41.0.4")}, {});

    std::size_t root_before = root_server->captured().size();
    std::size_t nl_before = nl_server->captured().size();
    auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kAaaa, 1);

    std::printf("result: %s after %d upstream queries\n",
                std::string(ToString(result.rcode)).c_str(),
                result.upstream_queries);
    auto dump = [](const char* where, const capture::CaptureBuffer& records,
                   std::size_t from) {
      for (std::size_t i = from; i < records.size(); ++i) {
        const auto& r = records[i];
        std::printf("  @%-7s %-4s %-22s %-6s edns=%-4u%s%s rcode=%s\n", where,
                    std::string(ToString(r.transport)).c_str(),
                    r.qname.ToString().c_str(),
                    std::string(ToString(r.qtype)).c_str(), r.edns_udp_size,
                    r.do_bit ? " DO" : "", r.tc ? " TC" : "",
                    std::string(ToString(r.rcode)).c_str());
      }
    };
    dump("root", root_server->captured(), root_before);
    dump(".nl", nl_server->captured(), nl_before);
    std::printf("  (+ leaf-authoritative traffic the study never captures)\n");
  }

  sim::LatencyModel latency;
  sim::SiteId auth_site, resolver_site;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<const zone::Zone> root_zone, nl_zone;
  std::unique_ptr<server::AuthServer> root_server, nl_server;
  std::unique_ptr<server::LeafAuthService> leaf;
};

}  // namespace

int main() {
  World world;
  world.Walk("plain iterative resolution", false, false, 4096);
  world.Walk("QNAME minimization: the TLD only learns 'dom3.nl NS'", true,
             false, 4096);
  world.Walk("DNSSEC validation: DNSKEY fetches join the walk", false, true,
             4096);
  world.Walk("validating at EDNS 512: truncation forces TCP", false, true,
             512);
  return 0;
}
