// What-if projection: the paper asks "how centralized is DNS traffic
// becoming?" — this example turns the question around and asks the
// simulator how the measured concentration responds if cloud providers'
// client bases keep growing relative to the ISP long tail. Sweeps a
// consolidation factor over the calibrated 2020 .nl world and reports the
// Fig.-1-style share plus the single-point-of-failure framing from the
// paper's introduction (how much of the ccTLD's query stream depends on
// the top provider / top five).
#include <cstdio>

#include "analysis/experiments.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

using namespace clouddns;

int main() {
  analysis::TextTable table({"consolidation", "5-CP share", "Google share",
                             "largest-AS share", "distinct ASes"});
  for (double factor : {0.5, 1.0, 2.0, 4.0}) {
    cloud::ScenarioConfig config;
    config.vantage = cloud::Vantage::kNl;
    config.year = 2020;
    config.client_queries = 60'000;
    config.consolidation_factor = factor;
    auto result = cloud::RunScenario(config);

    auto shares = analysis::ComputeCloudShares(result);
    auto by_as = entrada::CountBy(result.records,
                                  entrada::KeySrcAs(result.asdb));
    std::uint64_t largest = 0;
    for (const auto& [asn, count] : by_as.counts) {
      largest = std::max(largest, count);
    }
    char label[16];
    std::snprintf(label, sizeof label, "x%.1f", factor);
    table.AddRow({label, analysis::Percent(shares.back().share),
                  analysis::Percent(shares[0].share),
                  analysis::Percent(static_cast<double>(largest) /
                                    static_cast<double>(result.records.size())),
                  analysis::Count(by_as.counts.size())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nReading: at the calibrated operating point (x1.0) five providers\n"
      "already carry ~1/3 of the ccTLD's queries; doubling their client\n"
      "base pushes the share toward half, concentrating the failure domain\n"
      "the paper's introduction warns about (Dyn 2016, AWS 2019). The\n"
      "distinct-AS count barely moves — consolidation is about volume, not\n"
      "about fewer players appearing.\n");
  return 0;
}
