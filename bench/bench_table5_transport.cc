// Table 5 reproduction: per-provider IPv4/IPv6 and UDP/TCP query ratios at
// both ccTLDs, all three years — printed against the paper's exact values.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  bench::BenchRecorder recorder("table5_transport");
  analysis::PrintBanner("Table 5", "Query distribution per CP for ccTLDs");
  for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
    analysis::TextTable table({"provider", "year", "IPv4", "(paper)", "IPv6",
                               "(paper)", "UDP", "(paper)", "TCP", "(paper)"});
    // One fused pass per dataset covers every provider's mix.
    std::map<int, std::map<cloud::Provider, analysis::TransportMix>> by_year;
    for (int year : {2018, 2019, 2020}) {
      auto result = bench::WithSimulatePhase(recorder, [&] {
        return analysis::LoadOrRun(bench::StandardConfig(vantage, year));
      });
      recorder.AddQueries(result.records.size());
      by_year[year] = bench::WithScanPhase(
          recorder, [&] { return analysis::ComputeTransportMixes(result); });
    }
    for (cloud::Provider provider : cloud::MeasuredProviders()) {
      for (int year : {2018, 2019, 2020}) {
        const auto& mix = by_year[year][provider];
        auto paper = *analysis::paper::Table5(provider, vantage, year);
        table.AddRow({bench::ProviderName(provider), std::to_string(year),
                      analysis::Ratio(mix.ipv4), analysis::Ratio(paper.ipv4),
                      analysis::Ratio(mix.ipv6), analysis::Ratio(paper.ipv6),
                      analysis::Ratio(mix.udp), analysis::Ratio(paper.udp),
                      analysis::Ratio(mix.tcp), analysis::Ratio(paper.tcp)});
      }
    }
    std::printf("\n[%s]\n%s", std::string(cloud::ToString(vantage)).c_str(),
                table.Render().c_str());
  }
  std::printf(
      "\nExpected shape: Google/Cloudflare near-even v4:v6 and ~pure UDP;\n"
      "Amazon and Microsoft essentially v4-only (Amazon grows a small TCP\n"
      "share); Facebook v6-majority from 2019 with a material TCP share\n"
      "driven by its 512-byte EDNS frontends.\n");
  return 0;
}
