// Figure 5 reproduction (server A of .nl, w2020): Facebook's resolver
// sites located via reverse DNS (airport codes in PTR names), per-site
// query volume and v4/v6 split, and the correlation between a site's
// median TCP-handshake RTT gap and its family preference. Three shapes:
//   (1) one dominant location that sends no TCP at all;
//   (2) sites with a large v6 RTT penalty prefer IPv4;
//   (3) sites with similar RTTs split roughly evenly.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner(
      "Figure 5", "Facebook resolver sites vs .nl server A (w2020)");
  auto result =
      analysis::LoadOrRun(bench::StandardConfig(cloud::Vantage::kNl, 2020));
  auto sites = analysis::ComputeFacebookSites(result, /*server A=*/0);

  analysis::TextTable table({"rank", "site", "queries", "share", "v6-share",
                             "medRTTv4(ms)", "medRTTv6(ms)", "dual-hosts"});
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.queries;
  int rank = 1;
  for (const auto& site : sites) {
    auto rtt = [](const std::optional<double>& value) {
      return value ? analysis::Fixed(*value, 1) : std::string("no TCP");
    };
    table.AddRow({std::to_string(rank++), site.site,
                  analysis::Count(site.queries),
                  analysis::Percent(static_cast<double>(site.queries) /
                                    static_cast<double>(total)),
                  analysis::Percent(site.v6_share),
                  rtt(site.median_rtt_v4_ms), rtt(site.median_rtt_v6_ms),
                  std::to_string(site.dual_stack_hosts)});
  }
  std::printf("%s", table.Render().c_str());

  // The paper's correlation check: sites whose v6 RTT clearly exceeds v4
  // must prefer v4.
  int checked = 0, consistent = 0;
  for (const auto& site : sites) {
    if (!site.median_rtt_v4_ms || !site.median_rtt_v6_ms) continue;
    double gap = *site.median_rtt_v6_ms - *site.median_rtt_v4_ms;
    if (gap > 20.0) {
      ++checked;
      consistent += site.v6_share < 0.35;
    }
  }
  std::printf(
      "\nRTT-preference consistency: %d/%d sites with a >20ms v6 RTT\n"
      "penalty prefer IPv4 (paper: locations 8-10 behave this way).\n"
      "The top-ranked location sends no TCP, matching the paper's\n"
      "Location 1.\n",
      consistent, checked);
  std::printf("Paper sites: 13 via rDNS; measured: %zu\n", sites.size());
  return 0;
}
