// Table 6 reproduction: Amazon's and Microsoft's distinct resolver source
// addresses split by IP family (w2020). The paper's point: both fleets are
// overwhelmingly IPv4 (98.2% / 97.0% at .nl), which explains their IPv4-
// dominant traffic in Table 5. Absolute counts scale with fleet_scale.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner("Table 6", "Amazon and Microsoft resolvers (w2020)");
  analysis::TextTable table({"provider", "vantage", "total", "IPv4", "IPv4%",
                             "paper%", "IPv6", "IPv6%", "paper%",
                             "paper-total(scaled)"});
  for (cloud::Provider provider :
       {cloud::Provider::kAmazon, cloud::Provider::kMicrosoft}) {
    for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
      auto result = analysis::LoadOrRun(bench::StandardConfig(vantage, 2020));
      auto count = analysis::ComputeResolverFamilies(result, provider);
      auto paper = *analysis::paper::Table6(provider, vantage);
      double total = static_cast<double>(count.total);
      table.AddRow(
          {bench::ProviderName(provider), std::string(cloud::ToString(vantage)),
           analysis::Count(count.total), analysis::Count(count.v4),
           analysis::Percent(total == 0 ? 0 : count.v4 / total),
           analysis::Percent(static_cast<double>(paper.v4) / paper.total),
           analysis::Count(count.v6),
           analysis::Percent(total == 0 ? 0 : count.v6 / total),
           analysis::Percent(static_cast<double>(paper.v6) / paper.total),
           analysis::Fixed(static_cast<double>(paper.total) *
                               result.config.fleet_scale,
                           0)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: >93%% of both providers' source addresses are\n"
      "IPv4; the small IPv6 populations match the tiny IPv6 traffic shares\n"
      "in Table 5 (Amazon's few v6 sources send a bit, Microsoft's almost\n"
      "nothing).\n");
  return 0;
}
