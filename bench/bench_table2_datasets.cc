// Table 2 reproduction: the .nl and .nz authoritative NS sets and zone
// sizes per capture week. Metadata-only (no traffic is simulated): the
// scenario builder's zone/NS inventory is compared against the paper.
#include <cstdio>

#include "common.h"

using namespace clouddns;

namespace {

struct PaperRow {
  const char* week;
  int anycast;
  int unicast;
  int captured;
  const char* zone_size;
};

void Report(cloud::Vantage vantage, int year, const PaperRow& paper) {
  cloud::ScenarioConfig config = bench::StandardConfig(vantage, year);
  config.client_queries = 0;  // metadata only
  cloud::ScenarioResult result = cloud::RunScenario(config);

  // Both ccTLDs exist in every scenario; this table is per-vantage, so
  // filter the NS set by the vantage TLD's label prefix.
  const std::string prefix =
      vantage == cloud::Vantage::kNl ? "nl-" : "nz-";
  const std::string tld = vantage == cloud::Vantage::kNl ? "nl" : "nz";
  int anycast = 0, unicast = 0, captured = 0;
  for (const auto& server : result.servers) {
    if (server.id >= 100) continue;  // root letters are not this table
    if (server.label.rfind(prefix, 0) != 0) continue;
    (server.anycast ? anycast : unicast)++;
    captured += server.captured;
  }
  std::printf(
      "%-6s %-24s  NSSet paper=%dA,%dU measured=%dA,%dU  analyzed "
      "paper=%d measured=%d  zone paper=%s measured=%zu (x%.4g scale)\n",
      std::string(cloud::ToString(vantage)).c_str(), paper.week, paper.anycast,
      paper.unicast, anycast, unicast, paper.captured, captured,
      paper.zone_size, result.zone_domains_by_tld.at(tld),
      config.zone_scale);
}

}  // namespace

int main() {
  analysis::PrintBanner("Table 2", ".nl and .nz authoritative servers");
  Report(cloud::Vantage::kNl, 2018, {"w2018", 4, 0, 2, "5.8M"});
  Report(cloud::Vantage::kNl, 2019, {"w2019", 4, 0, 2, "5.8M"});
  Report(cloud::Vantage::kNl, 2020, {"w2020", 3, 0, 2, "5.9M"});
  Report(cloud::Vantage::kNz, 2018, {"w2018", 6, 1, 6, "720K"});
  Report(cloud::Vantage::kNz, 2019, {"w2019", 6, 1, 6, "710K"});
  Report(cloud::Vantage::kNz, 2020, {"w2020", 6, 1, 6, "710K"});
  std::printf(
      "\nNote: captured-NS counts follow the paper (2 of .nl's NSes, 6 of\n"
      ".nz's 7); zone sizes are the paper's counts times the configured\n"
      "zone_scale.\n");
  return 0;
}
