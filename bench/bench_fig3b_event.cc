// Figure 3b event mechanics: the Feb-2020 .nz cyclic-dependency weeks as a
// *robustness* experiment. The qualitative spike (bench_figure3_qmin_rollout)
// comes from the q-min fallback alone; here we model the full event against
// a normal-month baseline — the broken cyclic pair enters the query stream
// AND the event weeks run under a response-heavy loss regime
// (FaultPreset::kNzEventLoss) — and measure how much the resolver fleet's
// timeout/retry/failover engine multiplies the upstream query load, which is
// the mechanism behind the paper's observation that a *broken* pair of
// domains increased the TLD's total traffic.
//
// Emits BENCH_fig3b_event.json with the baseline/faulted query volumes, the
// amplification factors and the retry breakdown.
#include <cstdio>

#include "analysis/chaos.h"
#include "common.h"

using namespace clouddns;

namespace {

cloud::ScenarioConfig EventConfig() {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNz;
  config.year = 2020;
  config.client_queries = 150'000;
  // The event weeks only: Feb 3 - Feb 27 2020 (plus the warmup day).
  config.window_start = sim::TimeFromCivil({2020, 2, 3});
  config.window_end = sim::TimeFromCivil({2020, 2, 27});
  config.google_only = true;
  // A small warmup keeps one-time TLD discovery from diluting the
  // event-window contrast.
  config.warmup_fraction = 0.1;
  return config;
}

/// Runs the config, falling back to a live simulation when a cached capture
/// was loaded through a pre-robustness sidecar (its counters would read 0).
cloud::ScenarioResult RunWithCounters(const cloud::ScenarioConfig& config) {
  cloud::ScenarioResult result = analysis::LoadOrRun(config);
  if (result.robustness.upstream_queries == 0 &&
      !result.records.empty()) {
    result = cloud::RunScenario(config);
  }
  return result;
}

}  // namespace

int main() {
  analysis::PrintBanner("Figure 3b (event mechanics)",
                        "Retry amplification during the .nz cyclic event");
  bench::BenchRecorder recorder("fig3b_event");

  // Baseline: the same client demand over the same weeks, but in a normal
  // month — no broken domains, no loss. Event run: the cyclic pair enters
  // the query stream and the event-window loss regime is active.
  cloud::ScenarioConfig baseline_config = EventConfig();
  baseline_config.inject_cyclic_event = false;
  cloud::ScenarioConfig faulted_config = EventConfig();
  faulted_config.inject_cyclic_event = true;
  faulted_config.fault_preset = cloud::FaultPreset::kNzEventLoss;

  cloud::ScenarioResult baseline = bench::WithSimulatePhase(
      recorder, [&] { return RunWithCounters(baseline_config); });
  cloud::ScenarioResult faulted = bench::WithSimulatePhase(
      recorder, [&] { return RunWithCounters(faulted_config); });
  recorder.AddQueries(baseline.records.size() + faulted.records.size());

  analysis::RetryAmplification amp = bench::WithScanPhase(recorder, [&] {
    return analysis::ComputeRetryAmplification(baseline, faulted);
  });

  analysis::TextTable table({"metric", "baseline", "faulted", "factor"});
  table.AddRow({"upstream queries", analysis::Count(amp.baseline_upstream),
                analysis::Count(amp.faulted_upstream),
                analysis::Fixed(amp.upstream_factor, 2)});
  table.AddRow({"captured at .nz", analysis::Count(amp.baseline_captured),
                analysis::Count(amp.faulted_captured),
                analysis::Fixed(amp.captured_factor, 2)});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nFaulted-run retry breakdown: %llu retransmits, %llu timeouts, "
      "%llu failovers, %llu stale answers\n",
      static_cast<unsigned long long>(amp.faulted_counters.retransmits),
      static_cast<unsigned long long>(amp.faulted_counters.timeouts),
      static_cast<unsigned long long>(amp.faulted_counters.failovers),
      static_cast<unsigned long long>(amp.faulted_counters.served_stale));
  std::printf(
      "\nExpected shape: the faulted run multiplies the upstream query "
      "load\n(>= 2x) without any increase in client demand — resolution "
      "failure\ncreates traffic, which is the Fig. 3b mechanism.\n");

  recorder.AddStat("baseline_upstream", amp.baseline_upstream);
  recorder.AddStat("faulted_upstream", amp.faulted_upstream);
  recorder.AddStat("baseline_captured", amp.baseline_captured);
  recorder.AddStat("faulted_captured", amp.faulted_captured);
  recorder.AddStat("upstream_amplification", amp.upstream_factor);
  recorder.AddStat("captured_amplification", amp.captured_factor);
  recorder.AddStat("faulted_retransmits", amp.faulted_counters.retransmits);
  recorder.AddStat("faulted_timeouts", amp.faulted_counters.timeouts);
  recorder.AddStat("faulted_failovers", amp.faulted_counters.failovers);
  recorder.AddStat("faulted_served_stale", amp.faulted_counters.served_stale);
  return 0;
}
