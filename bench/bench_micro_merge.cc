// Old-vs-new capture merge throughput. MergeShardsHeap is the original
// per-record priority-queue K-way merge; MergeShards is the parallel
// ladder of galloping two-way merges that replaced it on the flatten
// path (and that routes a serial >2-way merge back to the single-pass
// cursor core, so on a single-lane host the two only diverge on the
// two-shard shapes). items_per_second is merged records per second, so
// the two families are directly comparable per (shard count, burst
// length) shape.
//
// The `burst` arg controls run length: shard streams in real captures
// interleave at burst granularity (a resolver's queries cluster in time),
// which is exactly what galloping exploits. burst=1 is the adversarial
// fully-interleaved case where runs degenerate to single records.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "capture/merge.h"

using namespace clouddns;

namespace {

std::vector<capture::CaptureBuffer> MakeShards(std::size_t shard_count,
                                               std::size_t per_shard,
                                               std::uint64_t burst) {
  std::mt19937_64 rng(20201027);
  std::vector<capture::CaptureBuffer> shards(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::uint64_t t = rng() % 1000;
    shards[s].reserve(per_shard);
    for (std::size_t i = 0; i < per_shard; ++i) {
      if (burst > 0 && i % burst == 0) t += rng() % 5000;  // next burst
      t += rng() % 3;
      capture::CaptureRecord record;
      record.time_us = static_cast<sim::TimeUs>(t);
      record.src_port = static_cast<std::uint16_t>(i);
      shards[s].push_back(record);
    }
  }
  return shards;
}

template <capture::CaptureBuffer (*MergeFn)(
    std::vector<capture::CaptureBuffer>&&)>
void RunMerge(benchmark::State& state) {
  const auto shard_count = static_cast<std::size_t>(state.range(0));
  const auto per_shard = static_cast<std::size_t>(state.range(1));
  const auto burst = static_cast<std::uint64_t>(state.range(2));
  const std::vector<capture::CaptureBuffer> master =
      MakeShards(shard_count, per_shard, burst);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<capture::CaptureBuffer> shards = master;
    state.ResumeTiming();
    capture::CaptureBuffer merged = MergeFn(std::move(shards));
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shard_count * per_shard));
}

void BM_MergeGalloping(benchmark::State& state) {
  RunMerge<capture::MergeShards>(state);
}
void BM_MergeHeap(benchmark::State& state) {
  RunMerge<capture::MergeShardsHeap>(state);
}

// {shard_count, records_per_shard, burst_length}
#define MERGE_SHAPES                                                     \
  Args({2, 200000, 64})      /* two-shard fast path, bursty */           \
      ->Args({2, 200000, 1}) /* two-shard, fully interleaved */          \
      ->Args({16, 25000, 64})  /* default engine sharding, bursty */     \
      ->Args({16, 25000, 1})   /* default sharding, interleaved */       \
      ->Args({16, 25000, 1024}) /* long quiet shards (skewed runs) */

BENCHMARK(BM_MergeGalloping)->MERGE_SHAPES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeHeap)->MERGE_SHAPES->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
