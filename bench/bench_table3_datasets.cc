// Table 3 reproduction: total/valid queries, distinct resolvers, and
// distinct ASes for each of the nine datasets (.nl/.nz/B-Root x 3 years).
// Absolute counts are scaled (the paper processed 55.7B queries; we stream
// a configurable budget through the same pipeline) — the comparisons that
// must hold are the *ratios*: valid share per vantage, the ccTLD-vs-root
// junk contrast, and the growth directions across years.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  bench::BenchRecorder recorder("table3_datasets");
  analysis::PrintBanner("Table 3", "Evaluated datasets");
  analysis::TextTable table(
      {"dataset", "queries", "valid", "valid%", "paper-valid%", "resolvers",
       "resolvers(HLL)", "ASes", "paper-ASes(scaled)"});

  for (cloud::Vantage vantage :
       {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
    for (int year : {2018, 2019, 2020}) {
      auto result = bench::WithSimulatePhase(recorder, [&] {
        return analysis::LoadOrRun(bench::StandardConfig(vantage, year));
      });
      recorder.AddQueries(result.records.size());
      auto stats = bench::WithScanPhase(
          recorder, [&] { return analysis::ComputeDatasetStats(result); });
      auto paper_row = *analysis::paper::Table3(vantage, year);
      double paper_valid =
          paper_row.queries_valid_b / paper_row.queries_total_b;
      double scaled_ases =
          static_cast<double>(paper_row.ases) * result.config.as_scale;
      table.AddRow({std::string(cloud::ToString(vantage)) + " " +
                        std::to_string(year),
                    analysis::Count(stats.queries_total),
                    analysis::Count(stats.queries_valid),
                    analysis::Percent(static_cast<double>(stats.queries_valid) /
                                      static_cast<double>(stats.queries_total)),
                    analysis::Percent(paper_valid),
                    analysis::Count(stats.resolvers_exact),
                    analysis::Fixed(stats.resolvers_hll, 0),
                    analysis::Count(stats.ases_exact),
                    analysis::Fixed(scaled_ases, 0)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: ccTLD valid%% high (~71-86%%), B-Root valid%% low\n"
      "(20-35%%, Chromium junk); query volume grows every year at every\n"
      "vantage; HLL estimates track the exact distinct counts within ~1%%.\n");

  if (bench::ScalingSweepRequested()) {
    bench::WithPhase(recorder, "sweep", [&] {
      std::vector<cloud::ScenarioResult> datasets;
      for (cloud::Vantage vantage :
           {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
        for (int year : {2018, 2019, 2020}) {
          datasets.push_back(
              analysis::LoadOrRun(bench::StandardConfig(vantage, year)));
        }
      }
      bench::RunScalingSweep(
          "table3_datasets", datasets,
          [](const cloud::ScenarioResult& result) {
            auto stats = analysis::ComputeDatasetStats(result);
            char buf[192];
            std::snprintf(buf, sizeof(buf), "%llu %llu %llu %.6f %llu %.6f\n",
                          static_cast<unsigned long long>(stats.queries_total),
                          static_cast<unsigned long long>(stats.queries_valid),
                          static_cast<unsigned long long>(
                              stats.resolvers_exact),
                          stats.resolvers_hll,
                          static_cast<unsigned long long>(stats.ases_exact),
                          stats.ases_hll);
            return std::string(buf);
          });
    });
  }

  if (bench::ColdSweepRequested()) {
    bench::WithPhase(recorder, "cold_sweep", [&] {
      bench::RunColdSweep("table3_datasets", [] {
        std::uint64_t queries = 0;
        for (cloud::Vantage vantage :
             {cloud::Vantage::kNl, cloud::Vantage::kNz,
              cloud::Vantage::kRoot}) {
          for (int year : {2018, 2019, 2020}) {
            queries +=
                analysis::LoadOrRun(bench::StandardConfig(vantage, year))
                    .records.size();
          }
        }
        return queries;
      });
    });
  }
  return 0;
}
