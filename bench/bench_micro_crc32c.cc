// CRC32C kernel microbenchmark: software table vs the dispatched hardware
// kernel (SSE4.2 / ARMv8-CRC when the host has one), and whole-payload vs
// per-64KiB-block + Crc32cCombine fold — the exact shapes the CLDFRAM1
// block-parallel codec runs on every capture read/write. Emits
// BENCH_codec.json so CI can watch the kernel throughputs per commit.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

#include "common.h"

using namespace clouddns;

namespace {

constexpr std::size_t kPayloadBytes = 32u * 1024 * 1024;
constexpr int kReps = 5;

/// Best-of-kReps wall seconds for one full-payload pass of `fn`.
template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (s < best) best = s;
  }
  return best;
}

double Gbps(double seconds) {
  return seconds > 0 ? static_cast<double>(kPayloadBytes) / seconds / 1e9
                     : 0.0;
}

/// Per-block CRC of the payload at CLDFRAM1 granularity, folded back into
/// the whole-payload value with Crc32cCombine — the associativity the
/// block-parallel frame trailer relies on.
template <typename Kernel>
std::uint32_t BlockwiseCrc(const std::vector<std::uint8_t>& payload,
                           Kernel&& kernel) {
  std::uint32_t combined = 0;
  for (std::size_t off = 0; off < payload.size();
       off += base::io::kFrameBlockSize) {
    const std::size_t len =
        std::min(base::io::kFrameBlockSize, payload.size() - off);
    combined = base::io::Crc32cCombine(combined, kernel(payload.data() + off, len),
                                   len);
  }
  return combined;
}

}  // namespace

int main() {
  bench::BenchRecorder recorder("codec");
  analysis::PrintBanner("CRC32C microbench",
                        "software vs hardware kernel, whole vs per-block");

  std::vector<std::uint8_t> payload;
  bench::WithPhase(recorder, "setup", [&] {
    payload.resize(kPayloadBytes);
    std::mt19937_64 rng(20201027);
    for (std::size_t i = 0; i < payload.size(); i += 8) {
      const std::uint64_t word = rng();
      for (std::size_t b = 0; b < 8 && i + b < payload.size(); ++b) {
        payload[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
  });

  const auto software = [](const std::uint8_t* data, std::size_t len) {
    return base::io::Crc32cSoftware(data, len);
  };
  const auto dispatched = [](const std::uint8_t* data, std::size_t len) {
    return base::io::Crc32c(data, len);
  };

  const std::uint32_t want = base::io::Crc32cSoftware(payload.data(),
                                                  payload.size());
  std::uint32_t got_hw = 0, got_sw_block = 0, got_hw_block = 0;
  double sw_whole = 0, hw_whole = 0, sw_block = 0, hw_block = 0;
  bench::WithPhase(recorder, "encode", [&] {
    sw_whole = BestSeconds(
        [&] { (void)base::io::Crc32cSoftware(payload.data(), payload.size()); });
    hw_whole = BestSeconds(
        [&] { got_hw = base::io::Crc32c(payload.data(), payload.size()); });
    sw_block =
        BestSeconds([&] { got_sw_block = BlockwiseCrc(payload, software); });
    hw_block =
        BestSeconds([&] { got_hw_block = BlockwiseCrc(payload, dispatched); });
  });
  if (got_hw != want || got_sw_block != want || got_hw_block != want) {
    std::fprintf(stderr,
                 "FATAL: CRC32C kernel disagreement (sw=%08x hw=%08x "
                 "sw_block=%08x hw_block=%08x)\n",
                 want, got_hw, got_sw_block, got_hw_block);
    return 1;
  }

  analysis::TextTable table({"kernel", "shape", "GB/s", "vs sw-whole"});
  const double base_gbps = Gbps(sw_whole);
  auto add = [&](const char* kernel, const char* shape, double seconds) {
    table.AddRow({kernel, shape, analysis::Fixed(Gbps(seconds), 2),
                  analysis::Fixed(base_gbps > 0 ? Gbps(seconds) / base_gbps
                                                : 0.0,
                                  2) +
                      "x"});
  };
  add("software", "whole-payload", sw_whole);
  add(base::io::Crc32cBackend(), "whole-payload", hw_whole);
  add("software", "per-64KiB-block", sw_block);
  add(base::io::Crc32cBackend(), "per-64KiB-block", hw_block);
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nDispatched backend: %s. All four shapes agree on the payload CRC\n"
      "(%08x), including the per-block Crc32cCombine fold the CLDFRAM1\n"
      "trailer uses.\n",
      base::io::Crc32cBackend(), want);

  recorder.AddQueries(static_cast<std::uint64_t>(kPayloadBytes) *
                      static_cast<std::uint64_t>(4 * kReps));
  recorder.AddStat("payload_bytes", static_cast<std::uint64_t>(kPayloadBytes));
  recorder.AddStat("hw_backend_available",
                   static_cast<std::uint64_t>(
                       std::string(base::io::Crc32cBackend()) != "software" ? 1
                                                                        : 0));
  recorder.AddStat("sw_whole_gbps", Gbps(sw_whole));
  recorder.AddStat("hw_whole_gbps", Gbps(hw_whole));
  recorder.AddStat("sw_block_gbps", Gbps(sw_block));
  recorder.AddStat("hw_block_gbps", Gbps(hw_block));
  return 0;
}
