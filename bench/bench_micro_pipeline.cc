// End-to-end pipeline microbenchmarks: full resolutions through the
// resolver/network/server stack, and simulation throughput per client
// query — the numbers that justify the scaled-down capture budgets.
#include <benchmark/benchmark.h>

#include "cloud/scenario.h"
#include "resolver/resolver.h"
#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "sim/network.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

using namespace clouddns;

namespace {

struct Pipeline {
  Pipeline() {
    auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
    resolver_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
    network = std::make_unique<sim::Network>(latency);

    zone::ZoneBuildConfig root_config;
    root_config.apex = dns::Name{};
    root_config.nameservers = {
        {*dns::Name::Parse("b.root-servers.example"),
         {*net::IpAddress::Parse("198.41.0.4")}}};
    auto root = zone::MakeZoneSkeleton(root_config);
    zone::AddDelegation(root, *dns::Name::Parse("nl"),
                        {{*dns::Name::Parse("ns1.dns.nl"),
                          {*net::IpAddress::Parse("194.0.28.1")}}},
                        true, 172800);
    zone::SignZone(root);
    root_zone = std::make_shared<const zone::Zone>(std::move(root));

    zone::ZoneBuildConfig nl_config;
    nl_config.apex = *dns::Name::Parse("nl");
    nl_config.nameservers = {{*dns::Name::Parse("ns1.dns.nl"),
                              {*net::IpAddress::Parse("194.0.28.1")}}};
    auto nl = zone::MakeZoneSkeleton(nl_config);
    zone::PopulateDelegations(nl, 20000, "dom", 0.55,
                              net::Ipv4Address(100, 70, 0, 0));
    zone::SignZone(nl);
    nl_zone = std::make_shared<const zone::Zone>(std::move(nl));

    root_server = std::make_unique<server::AuthServer>(
        server::AuthServerConfig{});
    root_server->Serve(root_zone);
    network->RegisterServer(*net::IpAddress::Parse("198.41.0.4"), auth_site,
                            *root_server);
    nl_server =
        std::make_unique<server::AuthServer>(server::AuthServerConfig{});
    nl_server->Serve(nl_zone);
    network->RegisterServer(*net::IpAddress::Parse("194.0.28.1"), auth_site,
                            *nl_server);
    leaf = std::make_unique<server::LeafAuthService>(server::LeafAuthConfig{});
    network->SetDefaultRoute(auth_site, *leaf);
  }

  resolver::RecursiveResolver MakeResolver(bool qmin, bool validate) {
    resolver::ResolverConfig config;
    resolver::EgressHost host;
    host.v4 = *net::IpAddress::Parse("10.1.0.1");
    host.site = resolver_site;
    config.hosts = {host};
    config.qname_minimization = qmin;
    config.validate_dnssec = validate;
    return resolver::RecursiveResolver(
        *network, config, {*net::IpAddress::Parse("198.41.0.4")}, {});
  }

  sim::LatencyModel latency;
  sim::SiteId auth_site, resolver_site;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<const zone::Zone> root_zone, nl_zone;
  std::unique_ptr<server::AuthServer> root_server, nl_server;
  std::unique_ptr<server::LeafAuthService> leaf;
};

void BM_ColdResolution(benchmark::State& state) {
  Pipeline pipeline;
  auto resolver = pipeline.MakeResolver(state.range(0) != 0, false);
  sim::Rng rng(7);
  sim::TimeUs now = 0;
  for (auto _ : state) {
    // Unique domains defeat the cache: every iteration is a full descent.
    dns::Name qname = *dns::Name::Parse(
        "www.dom" + std::to_string(rng.NextBelow(20000)) + ".nl");
    now += 1000;
    benchmark::DoNotOptimize(resolver.Resolve(qname, dns::RrType::kA, now));
  }
}
BENCHMARK(BM_ColdResolution)->Arg(0)->Arg(1)->ArgNames({"qmin"});

void BM_WarmResolution(benchmark::State& state) {
  Pipeline pipeline;
  auto resolver = pipeline.MakeResolver(false, false);
  dns::Name qname = *dns::Name::Parse("www.dom7.nl");
  resolver.Resolve(qname, dns::RrType::kA, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(qname, dns::RrType::kA, 1000));
  }
}
BENCHMARK(BM_WarmResolution);

void BM_AuthServerRespond(benchmark::State& state) {
  Pipeline pipeline;
  dns::Message query = dns::Message::MakeQuery(
      9, *dns::Name::Parse("www.dom42.nl"), dns::RrType::kA,
      dns::EdnsInfo{1232, true, 0});
  dns::WireBuffer wire = query.Encode();
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.1.0.1"), 40000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.nl_server->HandlePacket(ctx, wire));
  }
}
BENCHMARK(BM_AuthServerRespond);

void BM_ScenarioThroughput(benchmark::State& state) {
  // Whole-pipeline cost per client query at a tiny scale.
  for (auto _ : state) {
    cloud::ScenarioConfig config;
    config.vantage = cloud::Vantage::kNl;
    config.year = 2020;
    config.client_queries = 20000;
    config.zone_scale = 0.0005;
    benchmark::DoNotOptimize(cloud::RunScenario(config));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ScenarioThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
