// Table 4 reproduction: Google's queries split between its advertised
// Public DNS ranges and the rest of its infrastructure, w2020. The paper:
// ~86.5% (.nl) / 88.4% (.nz) of Google's queries come from ~16-19% of its
// source addresses.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner("Table 4", "Queries from Google on w2020");
  analysis::TextTable table({"vantage", "queries", "pub-queries", "ratio",
                             "paper", "resolvers", "pub-resolvers", "ratio",
                             "paper"});
  for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
    auto result = analysis::LoadOrRun(bench::StandardConfig(vantage, 2020));
    auto split = analysis::ComputeGoogleSplit(result);
    auto paper = *analysis::paper::GoogleSplitRef(vantage, 2020);
    table.AddRow({std::string(cloud::ToString(vantage)),
                  analysis::Count(split.queries_total),
                  analysis::Count(split.queries_public),
                  analysis::Percent(split.QueryRatio()),
                  analysis::Percent(paper.query_ratio),
                  analysis::Count(split.resolvers_total),
                  analysis::Count(split.resolvers_public),
                  analysis::Percent(split.ResolverRatio()),
                  analysis::Percent(paper.resolver_ratio)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: the public service is ~86-88%% of Google's query\n"
      "volume from a small (~16-19%%) slice of its source addresses, and\n"
      "the ratio is similar at both ccTLDs.\n");
  return 0;
}
