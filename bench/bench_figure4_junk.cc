// Figure 4 reproduction: the junk (non-NOERROR) ratio of each provider's
// queries at every vantage/year, next to the overall junk ratio (§3).
// Shapes: ccTLD junk is moderate and similar across .nl/.nz; B-Root junk
// is dominated by random-TLD probes overall, yet the CPs' *own* junk
// ratios at the root stay far below the root-wide figure.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  bench::BenchRecorder recorder("figure4_junk");
  analysis::PrintBanner("Figure 4", "Clouds' DNS junk query ratio");
  for (cloud::Vantage vantage :
       {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
    analysis::TextTable table({"year", "GOOGLE", "AMAZON", "MICROSOFT",
                               "FACEBOOK", "CLOUDFLARE", "ALL", "paper-ALL"});
    for (int year : {2018, 2019, 2020}) {
      auto result = bench::WithSimulatePhase(recorder, [&] {
        return analysis::LoadOrRun(bench::StandardConfig(vantage, year));
      });
      recorder.AddQueries(result.records.size());
      // One fused pass yields every provider's ratio plus the overall one.
      auto ratios = bench::WithScanPhase(
          recorder, [&] { return analysis::ComputeJunkRatios(result); });
      std::vector<std::string> row = {std::to_string(year)};
      for (cloud::Provider provider : cloud::MeasuredProviders()) {
        row.push_back(analysis::Percent(ratios.per_provider[provider]));
      }
      row.push_back(analysis::Percent(ratios.overall));
      row.push_back(
          analysis::Percent(analysis::paper::SectionThreeJunk(vantage, year)));
      table.AddRow(std::move(row));
    }
    std::printf("\n[%s]\n%s", std::string(cloud::ToString(vantage)).c_str(),
                table.Render().c_str());
  }
  std::printf(
      "\nExpected shape: similar CP junk ratios at .nl and .nz; overall\n"
      "B-Root junk is far higher than any CP's own junk ratio there.\n");
  return 0;
}
