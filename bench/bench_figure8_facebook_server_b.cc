// Figure 8 (Appendix B) reproduction: the Figure 5 analysis repeated for
// server B of .nl — the paper's check that the per-site dual-stack RTT
// correlation is not an artifact of one vantage server. Server B sits at
// different anycast sites, so per-site RTTs (and with them the marginal
// family preferences) shift, while the overall correlation holds.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner(
      "Figure 8 (Appendix B)",
      "Facebook resolver sites vs .nl server B (w2020)");
  auto result =
      analysis::LoadOrRun(bench::StandardConfig(cloud::Vantage::kNl, 2020));
  auto sites = analysis::ComputeFacebookSites(result, /*server B=*/1);

  analysis::TextTable table({"rank", "site", "queries", "share", "v6-share",
                             "medRTTv4(ms)", "medRTTv6(ms)"});
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.queries;
  int rank = 1;
  for (const auto& site : sites) {
    auto rtt = [](const std::optional<double>& value) {
      return value ? analysis::Fixed(*value, 1) : std::string("no TCP");
    };
    table.AddRow({std::to_string(rank++), site.site,
                  analysis::Count(site.queries),
                  analysis::Percent(total == 0
                                        ? 0
                                        : static_cast<double>(site.queries) /
                                              static_cast<double>(total)),
                  analysis::Percent(site.v6_share),
                  rtt(site.median_rtt_v4_ms), rtt(site.median_rtt_v6_ms)});
  }
  std::printf("%s", table.Render().c_str());

  int checked = 0, consistent = 0;
  for (const auto& site : sites) {
    if (!site.median_rtt_v4_ms || !site.median_rtt_v6_ms) continue;
    double gap = *site.median_rtt_v6_ms - *site.median_rtt_v4_ms;
    if (gap > 20.0) {
      ++checked;
      consistent += site.v6_share < 0.35;
    }
  }
  std::printf(
      "\nRTT-preference consistency at server B: %d/%d penalized sites\n"
      "prefer IPv4 — same correlation as at server A (Fig. 5).\n",
      consistent, checked);
  return 0;
}
