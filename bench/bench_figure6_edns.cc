// Figure 6 + §4.4 reproduction: the CDF of EDNS(0) advertised UDP sizes
// for Facebook vs Google at .nl (w2020), and the resulting truncation
// ratios (paper: Facebook 17.16% of UDP answers truncated, Google 0.04%,
// Microsoft 0.01%).
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner("Figure 6",
                        "CDF of EDNS(0) UDP message size, .nl w2020");
  auto result =
      analysis::LoadOrRun(bench::StandardConfig(cloud::Vantage::kNl, 2020));

  for (cloud::Provider provider :
       {cloud::Provider::kFacebook, cloud::Provider::kGoogle,
        cloud::Provider::kMicrosoft}) {
    auto stats = analysis::ComputeEdnsStats(result, provider);
    std::printf("\n[%s] EDNS(0) size CDF points:\n",
                bench::ProviderName(provider).c_str());
    for (const auto& [size, fraction] : stats.cdf) {
      std::printf("  size <= %4.0f : %s\n", size,
                  analysis::Percent(fraction).c_str());
    }
    std::printf("  truncated UDP answers: %s\n",
                analysis::Percent(stats.truncated_udp).c_str());
  }

  auto facebook = analysis::ComputeEdnsStats(result, cloud::Provider::kFacebook);
  auto google = analysis::ComputeEdnsStats(result, cloud::Provider::kGoogle);
  auto microsoft =
      analysis::ComputeEdnsStats(result, cloud::Provider::kMicrosoft);

  analysis::TextTable table({"metric", "measured", "paper"});
  table.AddRow({"Facebook share at EDNS 512",
                analysis::Percent(facebook.fraction_at_512),
                analysis::Percent(analysis::paper::kFacebookEdns512Share)});
  table.AddRow({"Google share at sizes <= 1232",
                analysis::Percent(google.fraction_up_to_1232),
                analysis::Percent(analysis::paper::kGoogleEdnsUpTo1232Share)});
  table.AddRow({"Facebook truncated UDP",
                analysis::Percent(facebook.truncated_udp),
                analysis::Percent(analysis::paper::kFacebookTruncated)});
  table.AddRow({"Google truncated UDP", analysis::Percent(google.truncated_udp),
                analysis::Percent(analysis::paper::kGoogleTruncated)});
  table.AddRow({"Microsoft truncated UDP",
                analysis::Percent(microsoft.truncated_udp),
                analysis::Percent(analysis::paper::kMicrosoftTruncated)});
  std::printf("\n%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: ~30%% of Facebook's UDP queries advertise 512\n"
      "bytes while Google advertises >= 1232, so Facebook sees orders of\n"
      "magnitude more truncation — which is what drives its TCP share in\n"
      "Table 5.\n");
  return 0;
}
