// Mechanism ablations (DESIGN.md §6): rerun the .nl w2020 dataset with one
// mechanism disabled at a time and show which measured signature each one
// carries. If a paper signature survives its mechanism's removal, the
// reproduction would be cosmetic — these checks prove it is not.
//
//   baseline        — everything on
//   q-min off       — the Fig. 2/3 NS surge must vanish
//   RRL off         — inert for well-behaved resolvers (their TCP comes
//                     from EDNS truncation); a synthetic flood shows what
//                     RRL actually does
//   diurnal off     — hourly volume flattens (capture realism)
#include <cstdio>

#include "common.h"
#include "entrada/cdf.h"
#include "server/auth_server.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

using namespace clouddns;

namespace {

struct Metrics {
  double google_ns = 0;
  double amazon_tcp = 0;
  double facebook_tcp = 0;
  double hourly_peak_trough = 0;
  std::uint64_t captured = 0;
};

Metrics Measure(const cloud::ScenarioResult& result) {
  Metrics metrics;
  metrics.captured = result.records.size();
  metrics.google_ns =
      analysis::ComputeRrTypeMix(result, cloud::Provider::kGoogle)["NS"];
  metrics.amazon_tcp =
      analysis::ComputeTransportMix(result, cloud::Provider::kAmazon).tcp;
  metrics.facebook_tcp =
      analysis::ComputeTransportMix(result, cloud::Provider::kFacebook).tcp;

  // Hourly volume ratio over the week.
  std::map<std::uint64_t, std::uint64_t> hourly;
  for (const auto& record : result.records) {
    ++hourly[record.time_us / (sim::kMicrosPerDay / 24)];
  }
  std::uint64_t peak = 0, trough = ~0ull;
  for (const auto& [hour, count] : hourly) {
    peak = std::max(peak, count);
    trough = std::min(trough, count);
  }
  metrics.hourly_peak_trough =
      trough == 0 ? 0 : static_cast<double>(peak) / static_cast<double>(trough);
  return metrics;
}

}  // namespace

int main() {
  analysis::PrintBanner("Ablations",
                        "which mechanism carries which paper signature");

  cloud::ScenarioConfig base = bench::StandardConfig(cloud::Vantage::kNl, 2020);
  base.client_queries = std::min<std::uint64_t>(base.client_queries, 250'000);

  struct Variant {
    const char* name;
    cloud::ScenarioConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline", base});
  {
    cloud::ScenarioConfig config = base;
    config.qmin_override_off = true;
    variants.push_back({"q-min off", config});
  }
  {
    cloud::ScenarioConfig config = base;
    config.rrl_override_off = true;
    variants.push_back({"RRL off", config});
  }
  {
    cloud::ScenarioConfig config = base;
    config.diurnal_amplitude = 0.0;
    variants.push_back({"diurnal off", config});
  }

  analysis::TextTable table({"variant", "captured", "Google NS%",
                             "Amazon TCP%", "Facebook TCP%", "peak/trough"});
  std::vector<Metrics> measured;
  for (const auto& variant : variants) {
    auto result = analysis::LoadOrRun(variant.config);
    Metrics metrics = Measure(result);
    measured.push_back(metrics);
    table.AddRow({variant.name, analysis::Count(metrics.captured),
                  analysis::Percent(metrics.google_ns),
                  analysis::Percent(metrics.amazon_tcp),
                  analysis::Percent(metrics.facebook_tcp),
                  analysis::Fixed(metrics.hourly_peak_trough, 2)});
  }
  std::printf("%s", table.Render().c_str());

  bool qmin_carries_ns = measured[1].google_ns < measured[0].google_ns / 4;
  bool rrl_inert = measured[2].amazon_tcp == measured[0].amazon_tcp &&
                   measured[2].facebook_tcp == measured[0].facebook_tcp;
  bool diurnal_flattens =
      measured[3].hourly_peak_trough < measured[0].hourly_peak_trough;

  // What RRL actually defends against: a single source flooding one name.
  // (Vixie [44]: legitimate resolvers that hit the limit switch to TCP.)
  zone::ZoneBuildConfig zone_config;
  zone_config.apex = *dns::Name::Parse("nl");
  zone_config.nameservers = {{*dns::Name::Parse("ns1.dns.nl"),
                              {*net::IpAddress::Parse("194.0.28.1")}}};
  auto flood_zone = std::make_shared<const zone::Zone>(
      zone::MakeZoneSkeleton(zone_config));
  server::AuthServerConfig flood_config;
  flood_config.rrl.enabled = true;
  flood_config.rrl.responses_per_second = 400;
  flood_config.rrl.burst = 1200;
  server::AuthServer flooded(flood_config);
  flooded.Serve(flood_zone);
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("203.0.113.66"), 4444};
  dns::WireBuffer probe = dns::Message::MakeQuery(
      1, *dns::Name::Parse("nl"), dns::RrType::kSoa).Encode();
  int slipped = 0;
  constexpr int kFlood = 20000;
  for (int i = 0; i < kFlood; ++i) {
    ctx.time_us = 1'000'000 + static_cast<sim::TimeUs>(i) * 100;  // 10k qps
    auto wire = flooded.HandlePacket(ctx, probe);
    auto response = dns::Message::Decode(wire);
    slipped += response && response->header.tc;
  }
  double slip_ratio = static_cast<double>(slipped) / kFlood;

  std::printf("\nchecks:\n");
  std::printf("  [%s] q-min off kills the Google NS surge\n",
              qmin_carries_ns ? "ok" : "FAIL");
  std::printf("  [%s] RRL is inert for well-behaved resolvers (their TCP is\n"
              "       EDNS/truncation-driven, not rate-limit-driven)\n",
              rrl_inert ? "ok" : "FAIL");
  std::printf("  [%s] ...but a 10k-qps single-source flood gets %.0f%% TC\n"
              "       slips, forcing the sender to prove itself over TCP\n",
              slip_ratio > 0.8 ? "ok" : "FAIL", slip_ratio * 100);
  std::printf("  [%s] diurnal off flattens the hourly volume profile\n",
              diurnal_flattens ? "ok" : "FAIL");
  return 0;
}
