// Figure 1 reproduction: share of all queries originating from the five
// cloud providers' 20 ASes, per vantage and year. The headline results:
// the five CPs send ~30% of ccTLD queries but only ~8.7% of B-Root's.
#include <cstdio>

#include "common.h"
#include "entrada/topk.h"

using namespace clouddns;

namespace {

// §4.1's textual claim: "in the 2020 dataset, the first CP was in a 5th
// place rank" at B-Root, behind large ISPs. Rank source ASes with the
// Space-Saving sketch and report where the first cloud AS lands.
void ReportRootAsRanking(const cloud::ScenarioResult& result) {
  entrada::SpaceSaving topk(256);
  for (const auto& record : result.records) {
    auto asn = result.asdb.OriginAs(record.src);
    topk.Add(asn ? "AS" + std::to_string(*asn) : "AS?");
  }
  std::printf("\nTop source ASes at B-Root %d (Space-Saving sketch):\n",
              result.config.year);
  int rank = 0, first_cp_rank = 0;
  for (const auto& entry : topk.Top(10)) {
    ++rank;
    cloud::Provider provider = cloud::Provider::kOther;
    if (entry.key != "AS?") {
      provider = cloud::ProviderOfAsn(
          static_cast<net::Asn>(std::stoul(entry.key.substr(2))));
    }
    bool is_cp = provider != cloud::Provider::kOther;
    if (is_cp && first_cp_rank == 0) first_cp_rank = rank;
    std::printf("  #%-2d %-9s %8s queries  %s\n", rank, entry.key.c_str(),
                analysis::Count(entry.count).c_str(),
                is_cp ? std::string(cloud::ToString(provider)).c_str()
                      : "(ISP)");
  }
  std::printf("First cloud AS ranks #%d (paper, 2020: #5 behind ISPs from\n"
              "India, France and Indonesia).\n",
              first_cp_rank == 0 ? -1 : first_cp_rank);
}

}  // namespace

int main() {
  bench::BenchRecorder recorder("figure1_cloud_share");
  analysis::PrintBanner("Figure 1", "Clouds' query ratio per ccTLD and B-Root");

  for (cloud::Vantage vantage :
       {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
    analysis::TextTable table({"year", "GOOGLE", "AMAZON", "MICROSOFT",
                               "FACEBOOK", "CLOUDFLARE", "5 CPs", "paper~"});
    for (int year : {2018, 2019, 2020}) {
      auto result = bench::WithSimulatePhase(recorder, [&] {
        return analysis::LoadOrRun(bench::StandardConfig(vantage, year));
      });
      recorder.AddQueries(result.records.size());
      auto shares = bench::WithScanPhase(
          recorder, [&] { return analysis::ComputeCloudShares(result); });
      std::vector<std::string> row = {std::to_string(year)};
      for (std::size_t i = 0; i + 1 < shares.size(); ++i) {
        row.push_back(analysis::Percent(shares[i].share));
      }
      row.push_back(analysis::Percent(shares.back().share));
      row.push_back(
          analysis::Percent(analysis::paper::Figure1CloudShare(vantage, year)));
      table.AddRow(std::move(row));
    }
    std::printf("\n[%s]\n%s", std::string(cloud::ToString(vantage)).c_str(),
                table.Render().c_str());
    if (vantage == cloud::Vantage::kRoot) {
      auto root = bench::WithSimulatePhase(recorder, [&] {
        return analysis::LoadOrRun(bench::StandardConfig(vantage, 2020));
      });
      // The rank sketch consumes records in merged order, so this is the
      // one figure1 consumer that flattens — its merge share lands in
      // phase_merge_seconds.
      bench::WithScanPhase(recorder, [&] { ReportRootAsRanking(root); });
    }
  }
  std::printf(
      "\nExpected shape: 5 CPs carry ~30%% of ccTLD queries (Google the\n"
      "largest, and larger at .nl than .nz), but under 10%% of B-Root's —\n"
      "the root's view is dominated by the long tail of other ASes.\n");

  if (bench::ScalingSweepRequested()) {
    bench::WithPhase(recorder, "sweep", [&] {
      std::vector<cloud::ScenarioResult> datasets;
      for (cloud::Vantage vantage :
           {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
        for (int year : {2018, 2019, 2020}) {
          datasets.push_back(
              analysis::LoadOrRun(bench::StandardConfig(vantage, year)));
        }
      }
      bench::RunScalingSweep(
          "figure1_cloud_share", datasets,
          [](const cloud::ScenarioResult& result) {
            std::string out;
            for (const auto& share : analysis::ComputeCloudShares(result)) {
              out += std::string(cloud::ToString(share.provider)) + " " +
                     std::to_string(share.queries) + "\n";
            }
            return out;
          });
    });
  }
  return 0;
}
