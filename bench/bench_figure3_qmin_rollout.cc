// Figure 3 reproduction: Google's monthly query mix at .nl and .nz from
// Sep 2019 to Apr 2020. Two events must be visible:
//   (1) the Dec-2019 Q-min deployment — NS share jumps and stays high;
//   (2) the Feb-2020 .nz cyclic-dependency misconfiguration — an A/AAAA
//       spike that interrupts the NS trend at .nz only, resuming in March.
// The bench also runs the q-min-off ablation to show the NS surge is
// caused by the resolver's minimization logic, not workload drift.
#include <cstdio>

#include "common.h"

using namespace clouddns;

namespace {

void ReportLongitudinal(cloud::Vantage vantage, bool ablation_qmin_off) {
  cloud::ScenarioConfig config = bench::LongitudinalGoogleConfig(vantage);
  config.qmin_override_off = ablation_qmin_off;
  auto result = analysis::LoadOrRun(config);
  auto rows =
      analysis::ComputeMonthlyQtypes(result, cloud::Provider::kGoogle);

  analysis::TextTable table(
      {"month", "queries", "A", "AAAA", "NS", "DS", "DNSKEY", "other"});
  std::string detected_month;
  double previous_ns = 0;
  for (const auto& row : rows) {
    auto share = [&row](const char* key) {
      auto it = row.qtype_share.find(key);
      return it == row.qtype_share.end() ? 0.0 : it->second;
    };
    double ns = share("NS");
    double other = 1.0 - share("A") - share("AAAA") - ns - share("DS") -
                   share("DNSKEY");
    table.AddRow({row.month, analysis::Count(row.total),
                  analysis::Percent(share("A")),
                  analysis::Percent(share("AAAA")), analysis::Percent(ns),
                  analysis::Percent(share("DS")),
                  analysis::Percent(share("DNSKEY")),
                  analysis::Percent(other)});
    // Deployment detection: the first month where the NS share jumps by
    // more than 20 points over the previous month.
    if (detected_month.empty() && ns > previous_ns + 0.20 && ns > 0.30) {
      detected_month = row.month;
    }
    previous_ns = ns;
  }
  std::printf("\n[%s%s]\n%s", std::string(cloud::ToString(vantage)).c_str(),
              ablation_qmin_off ? ", ABLATION: q-min forced off" : "",
              table.Render().c_str());
  if (!ablation_qmin_off) {
    std::printf("Detected Q-min deployment month: %s (paper: %s)\n",
                detected_month.empty() ? "none" : detected_month.c_str(),
                analysis::paper::kGoogleQminMonth);
  } else {
    std::printf("Ablation check: %s\n",
                detected_month.empty()
                    ? "no NS surge without q-min, as expected"
                    : "UNEXPECTED NS surge despite q-min off");
  }
}

}  // namespace

int main() {
  analysis::PrintBanner("Figure 3",
                        "Google's monthly query mix and the Q-min rollout");
  ReportLongitudinal(cloud::Vantage::kNl, false);
  ReportLongitudinal(cloud::Vantage::kNz, false);
  ReportLongitudinal(cloud::Vantage::kNl, true);
  std::printf(
      "\nExpected shape: NS share jumps in Dec 2019 at both ccTLDs and\n"
      "stays high; at .nz only, Feb 2020 shows an A/AAAA spike (the cyclic\n"
      "dependency event) with the NS trend resuming in March; the ablation\n"
      "run shows no NS surge at all.\n");
  return 0;
}
