// Figure 2 reproduction: resource-record type mix per cloud provider for
// 2018 vs 2020 at both ccTLDs (Fig. 7 covers 2019 in its own bench). The
// shapes to reproduce: A/AAAA dominate everywhere in 2018; by 2020 NS
// queries surge for the q-min adopters (Google, Cloudflare, Facebook, and
// Amazon partially); Cloudflare's DS share exceeds its DNSKEY share;
// Microsoft shows no DS/DNSKEY at all.
#include <cstdio>

#include "common.h"

using namespace clouddns;

namespace {

void ReportYear(cloud::Vantage vantage, int year) {
  auto result =
      analysis::LoadOrRun(bench::StandardConfig(vantage, year));
  analysis::TextTable table(
      {"provider", "A", "AAAA", "NS", "DS", "DNSKEY", "MX", "OTHER"});
  auto mixes = analysis::ComputeRrTypeMixes(result);  // one fused pass
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    auto& mix = mixes[provider];
    table.AddRow({bench::ProviderName(provider), analysis::Percent(mix["A"]),
                  analysis::Percent(mix["AAAA"]), analysis::Percent(mix["NS"]),
                  analysis::Percent(mix["DS"]),
                  analysis::Percent(mix["DNSKEY"]),
                  analysis::Percent(mix["MX"]),
                  analysis::Percent(mix["OTHER"])});
  }
  std::printf("\n[%s %d]\n%s", std::string(cloud::ToString(vantage)).c_str(),
              year, table.Render().c_str());
}

}  // namespace

int main() {
  analysis::PrintBanner("Figure 2", "Resource records per cloud provider");
  for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
    ReportYear(vantage, 2018);
    ReportYear(vantage, 2020);
  }
  std::printf(
      "\nExpected shape: 2018 panels are A/AAAA-heavy for every provider\n"
      "(except Cloudflare, an early q-min + explicit-DS adopter); in 2020\n"
      "NS dominates for Google/Facebook/Cloudflare (q-min), Amazon shows a\n"
      "partial NS rise, and Microsoft alone still shows no DNSSEC types.\n");
  return 0;
}
