// Microbenchmarks of the analytics substrates: longest-prefix matching
// (the per-record AS enrichment), HyperLogLog distinct counting (with an
// accuracy report vs exact counting), resolver cache operations, and the
// columnar-vs-rowwise capture codec ablation.
#include <benchmark/benchmark.h>

#include "capture/columnar.h"
#include "entrada/analytics.h"
#include "entrada/hll.h"
#include "net/prefix_trie.h"
#include "resolver/cache.h"
#include "sim/random.h"

using namespace clouddns;

namespace {

net::PrefixMap<int> BuildRoutingTable(std::size_t prefixes) {
  net::PrefixMap<int> map;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < prefixes; ++i) {
    net::Ipv4Address addr(static_cast<std::uint32_t>(rng.Next()));
    int len = 8 + static_cast<int>(rng.NextBelow(17));
    map.Insert(net::Prefix(net::IpAddress(addr), len), static_cast<int>(i));
  }
  return map;
}

void BM_TrieLookup(benchmark::State& state) {
  auto map = BuildRoutingTable(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(2);
  for (auto _ : state) {
    net::IpAddress probe{net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))};
    benchmark::DoNotOptimize(map.Lookup(probe));
  }
}
BENCHMARK(BM_TrieLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HllAdd(benchmark::State& state) {
  entrada::Hll hll;
  sim::Rng rng(3);
  for (auto _ : state) {
    hll.AddHash(rng.Next());
  }
  benchmark::DoNotOptimize(hll.Estimate());
}
BENCHMARK(BM_HllAdd);

void BM_HllVsExactAccuracy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    entrada::Hll hll;
    sim::Rng rng(4);
    for (std::size_t i = 0; i < n; ++i) hll.AddHash(rng.Next());
    benchmark::DoNotOptimize(hll.Estimate());
  }
  entrada::Hll hll;
  sim::Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) hll.AddHash(rng.Next());
  state.counters["relative_error"] =
      (hll.Estimate() - static_cast<double>(n)) / static_cast<double>(n);
}
BENCHMARK(BM_HllVsExactAccuracy)->Arg(10000)->Arg(1000000);

void BM_DnsCachePutGet(benchmark::State& state) {
  resolver::DnsCache cache(1u << 16);
  sim::Rng rng(5);
  dns::Name base = *dns::Name::Parse("nl");
  std::vector<dns::Name> names;
  for (int i = 0; i < 4096; ++i) {
    names.push_back(base.Child("dom" + std::to_string(i)));
  }
  resolver::CachedAnswer answer;
  answer.expires_at = ~0ull;
  for (auto _ : state) {
    const dns::Name& name = names[rng.NextBelow(names.size())];
    if (rng.Bernoulli(0.2)) {
      cache.Put(name, dns::RrType::kA, answer);
    } else {
      benchmark::DoNotOptimize(cache.Get(name, dns::RrType::kA, 1));
    }
  }
}
BENCHMARK(BM_DnsCachePutGet);

capture::CaptureBuffer MakeRecords(std::size_t count) {
  capture::CaptureBuffer records;
  sim::Rng rng(6);
  for (std::size_t i = 0; i < count; ++i) {
    capture::CaptureRecord r;
    r.time_us = 1000 * i;
    r.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.NextBelow(5000)));
    r.qname = *dns::Name::Parse("dom" + std::to_string(rng.NextBelow(2000)) +
                                ".nl");
    r.qtype = rng.Bernoulli(0.5) ? dns::RrType::kA : dns::RrType::kNs;
    r.rcode = rng.Bernoulli(0.14) ? dns::Rcode::kNxDomain
                                  : dns::Rcode::kNoError;
    r.edns_udp_size = 1232;
    r.has_edns = true;
    records.push_back(std::move(r));
  }
  return records;
}

void BM_ColumnarEncode(benchmark::State& state) {
  auto records = MakeRecords(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = capture::EncodeColumnar(records);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes_per_record"] =
      static_cast<double>(bytes) / static_cast<double>(records.size());
}
BENCHMARK(BM_ColumnarEncode)->Arg(100000);

void BM_RowWiseEncode(benchmark::State& state) {
  auto records = MakeRecords(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = capture::EncodeRowWise(records);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes_per_record"] =
      static_cast<double>(bytes) / static_cast<double>(records.size());
}
BENCHMARK(BM_RowWiseEncode)->Arg(100000);

void BM_ColumnarDecode(benchmark::State& state) {
  auto encoded =
      capture::EncodeColumnar(MakeRecords(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture::DecodeColumnar(encoded));
  }
}
BENCHMARK(BM_ColumnarDecode)->Arg(100000);

void BM_AggregationScan(benchmark::State& state) {
  auto records = MakeRecords(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        entrada::CountBy(records, entrada::KeyQtype(), entrada::FilterValid()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_AggregationScan)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
