// Microbenchmarks of the DNS wire-format layer: the hot path every
// simulated packet crosses twice (encode at sender, decode at receiver).
#include <benchmark/benchmark.h>

#include "dns/message.h"

using namespace clouddns;

namespace {

dns::Message MakeReferralResponse() {
  dns::Message msg = dns::Message::MakeQuery(
      42, *dns::Name::Parse("www.dom123.nl"), dns::RrType::kA,
      dns::EdnsInfo{1232, true, 0});
  msg.header.qr = true;
  for (int i = 1; i <= 3; ++i) {
    msg.authorities.push_back(dns::MakeNs(
        *dns::Name::Parse("dom123.nl"),
        *dns::Name::Parse("ns" + std::to_string(i) + ".dom123.nl"), 86400));
    msg.additionals.push_back(dns::MakeA(
        *dns::Name::Parse("ns" + std::to_string(i) + ".dom123.nl"),
        net::Ipv4Address(100, 70, 0, static_cast<std::uint8_t>(i)), 86400));
  }
  return msg;
}

void BM_EncodeQuery(benchmark::State& state) {
  dns::Message query = dns::Message::MakeQuery(
      7, *dns::Name::Parse("www.example.nl"), dns::RrType::kAaaa,
      dns::EdnsInfo{4096, true, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Encode());
  }
}
BENCHMARK(BM_EncodeQuery);

void BM_DecodeQuery(benchmark::State& state) {
  dns::WireBuffer wire = dns::Message::MakeQuery(
                             7, *dns::Name::Parse("www.example.nl"),
                             dns::RrType::kAaaa, dns::EdnsInfo{4096, true, 0})
                             .Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::Decode(wire));
  }
}
BENCHMARK(BM_DecodeQuery);

void BM_EncodeReferral(benchmark::State& state) {
  dns::Message msg = MakeReferralResponse();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.Encode());
  }
}
BENCHMARK(BM_EncodeReferral);

void BM_DecodeReferral(benchmark::State& state) {
  dns::WireBuffer wire = MakeReferralResponse().Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::Decode(wire));
  }
}
BENCHMARK(BM_DecodeReferral);

void BM_EncodeWithTruncationCheck(benchmark::State& state) {
  dns::Message msg = MakeReferralResponse();
  for (auto _ : state) {
    bool truncated = false;
    benchmark::DoNotOptimize(msg.EncodeWithLimit(512, &truncated));
  }
}
BENCHMARK(BM_EncodeWithTruncationCheck);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Name::Parse("www.some-domain.co.nz"));
  }
}
BENCHMARK(BM_NameParse);

void BM_NameCompare(benchmark::State& state) {
  dns::Name a = *dns::Name::Parse("WWW.Example.NL");
  dns::Name b = *dns::Name::Parse("www.example.nl");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_NameCompare);

}  // namespace

BENCHMARK_MAIN();
