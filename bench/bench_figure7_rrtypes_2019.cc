// Figure 7 (Appendix B) reproduction: the 2019 RR-type panels omitted from
// Figure 2 for space. 2019 sits between the 2018 and 2020 shapes: still
// A/AAAA-heavy for Google/Amazon/Microsoft/Facebook (Google's q-min only
// landed in Dec 2019, after the w2019 capture), Cloudflare already NS/DS-
// heavy.
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner("Figure 7 (Appendix B)",
                        "Resource records per cloud provider, 2019");
  for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
    auto result = analysis::LoadOrRun(bench::StandardConfig(vantage, 2019));
    analysis::TextTable table(
        {"provider", "A", "AAAA", "NS", "DS", "DNSKEY", "MX", "OTHER"});
    auto mixes = analysis::ComputeRrTypeMixes(result);  // one fused pass
    for (cloud::Provider provider : cloud::MeasuredProviders()) {
      auto& mix = mixes[provider];
      table.AddRow({bench::ProviderName(provider), analysis::Percent(mix["A"]),
                    analysis::Percent(mix["AAAA"]),
                    analysis::Percent(mix["NS"]), analysis::Percent(mix["DS"]),
                    analysis::Percent(mix["DNSKEY"]),
                    analysis::Percent(mix["MX"]),
                    analysis::Percent(mix["OTHER"])});
    }
    std::printf("\n[%s 2019]\n%s",
                std::string(cloud::ToString(vantage)).c_str(),
                table.Render().c_str());
  }
  std::printf(
      "\nExpected shape: like the 2018 panels for everyone but Cloudflare\n"
      "— the w2019 capture (Nov 2019) predates Google's Dec-2019 q-min\n"
      "rollout, so no NS surge yet.\n");
  return 0;
}
