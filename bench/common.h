// Shared scenario configurations for the bench harness. Every bench that
// reproduces a table/figure pulls its datasets through LoadOrRun, so a
// capture week is simulated once and shared across binaries via the cache
// directory (CLOUDDNS_CACHE_DIR, default ./clouddns_cache). The per-dataset
// client-query budget can be raised with CLOUDDNS_QUERIES for smoother
// statistics.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/calibration.h"
#include "analysis/dataset_cache.h"
#include "analysis/experiments.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

namespace clouddns::bench {

/// Records a bench run into BENCH_<name>.json (wall time, processed query
/// volume, thread count, peak RSS) so speedups across commits can be
/// compared machine-readably. Construct at the top of main(); the file is
/// written when the recorder goes out of scope.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  /// Call once per dataset with the number of capture records analyzed.
  void AddQueries(std::uint64_t n) { queries_ += n; }

  /// Appends a bench-specific numeric field to the emitted JSON, so a
  /// bench can expose its headline result (an amplification factor, a
  /// ratio, a count) machine-readably next to the timing data.
  void AddStat(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    stats_.emplace_back(key, buf);
  }
  void AddStat(const std::string& key, std::uint64_t value) {
    stats_.emplace_back(key, std::to_string(value));
  }

  ~BenchRecorder() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("CLOUDDNS_THREADS")) {
      char* end = nullptr;
      unsigned long long value = std::strtoull(env, &end, 10);
      if (end != env && value > 0) threads = static_cast<std::size_t>(value);
    }
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);  // ru_maxrss is KiB on Linux.
    const std::string path = "BENCH_" + name_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"name\": \"%s\",\n"
                   "  \"wall_seconds\": %.3f,\n"
                   "  \"queries\": %llu,\n"
                   "  \"queries_per_second\": %.0f,\n"
                   "  \"threads\": %zu,\n"
                   "  \"peak_rss_mb\": %.1f",
                   name_.c_str(), wall,
                   static_cast<unsigned long long>(queries_),
                   wall > 0 ? static_cast<double>(queries_) / wall : 0.0,
                   threads, static_cast<double>(usage.ru_maxrss) / 1024.0);
      for (const auto& [key, value] : stats_) {
        std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
      }
      std::fprintf(f, "\n}\n");
      std::fclose(f);
    }
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t queries_ = 0;
  std::vector<std::pair<std::string, std::string>> stats_;
};

inline cloud::ScenarioConfig StandardConfig(cloud::Vantage vantage, int year) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = year;
  std::uint64_t base =
      vantage == cloud::Vantage::kRoot ? 220'000 : 260'000;
  // Client demand grows across the study years in proportion to the
  // paper's Table 3 totals (normalized to 2018), so the year-over-year
  // growth directions reproduce.
  auto t3_2018 = *analysis::paper::Table3(vantage, 2018);
  auto t3_now = *analysis::paper::Table3(vantage, year);
  config.client_queries = static_cast<std::uint64_t>(
      static_cast<double>(base) * t3_now.queries_total_b /
      t3_2018.queries_total_b);
  return config;
}

/// The Fig. 3 longitudinal window: September 2019 through April 2020,
/// Google's fleet only, monthly buckets. The .nz variant injects the
/// February 2020 cyclic-dependency misconfiguration.
inline cloud::ScenarioConfig LongitudinalGoogleConfig(cloud::Vantage vantage) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = 2020;
  config.client_queries = 500'000;
  config.window_start = sim::TimeFromCivil({2019, 9, 1});
  config.window_end = sim::TimeFromCivil({2020, 5, 1});
  config.google_only = true;
  config.inject_cyclic_event = vantage == cloud::Vantage::kNz;
  return config;
}

inline std::string ProviderName(cloud::Provider provider) {
  return std::string(cloud::ToString(provider));
}

}  // namespace clouddns::bench
