// Shared scenario configurations for the bench harness. Every bench that
// reproduces a table/figure pulls its datasets through LoadOrRun, so a
// capture week is simulated once and shared across binaries via the cache
// directory (CLOUDDNS_CACHE_DIR, default ./clouddns_cache). The per-dataset
// client-query budget can be raised with CLOUDDNS_QUERIES for smoother
// statistics.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/calibration.h"
#include "analysis/dataset_cache.h"
#include "base/io.h"
#include "base/mutex.h"
#include "base/phase.h"
#include "base/thread_annotations.h"
#include "analysis/experiments.h"
#include "analysis/report.h"
#include "capture/merge.h"
#include "cloud/scenario.h"

namespace clouddns::bench {

/// Heap-allocation counters fed by the replacement operator new below.
/// Every bench binary is a single translation unit including this header,
/// so the replacement is defined exactly once per binary.
///
/// The counter is sharded across cache-line-padded slots: scan workers now
/// allocate concurrently on the shared pool, and a single shared atomic
/// would bounce its cache line between workers on every allocation —
/// distorting the very scaling numbers the bench exists to record. Each
/// thread picks a slot round-robin on first use; AllocCount() sums them.
struct AllocSlot {
  alignas(64) std::atomic<std::uint64_t> count{0};
};
inline AllocSlot g_alloc_slots[16];
inline std::atomic<std::size_t> g_alloc_slot_next{0};

inline std::atomic<std::uint64_t>& AllocSlotOfThread() {
  thread_local std::atomic<std::uint64_t>* slot =
      &g_alloc_slots[g_alloc_slot_next.fetch_add(1, std::memory_order_relaxed) %
                     (sizeof(g_alloc_slots) / sizeof(g_alloc_slots[0]))]
           .count;
  return *slot;
}

/// Total allocations across all threads since process start.
inline std::uint64_t AllocCount() {
  std::uint64_t total = 0;
  for (const AllocSlot& slot : g_alloc_slots) {
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace clouddns::bench

// Sanitizer runtimes install their own allocator interposers; skip the
// counting hook there (the stat reads 0 and is omitted from the JSON).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CLOUDDNS_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CLOUDDNS_BENCH_COUNT_ALLOCS 0
#else
#define CLOUDDNS_BENCH_COUNT_ALLOCS 1
#endif
#else
#define CLOUDDNS_BENCH_COUNT_ALLOCS 1
#endif

#if CLOUDDNS_BENCH_COUNT_ALLOCS
// Replacement global allocation functions (not inline — [replacement
// .functions] forbids it). Counting is a relaxed atomic increment, cheap
// enough to leave on for every bench run. GCC's mismatched-new-delete
// check pairs the library operator new declaration with our inlined
// free() and warns, although new/delete here are a consistent
// malloc/free pair — silence it for these definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  clouddns::bench::AllocSlotOfThread().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
#endif

namespace clouddns::bench {

/// Resets the kernel's resident-set high-water mark to the current RSS
/// (write "5" to /proc/self/clear_refs). Called by BenchRecorder at
/// construction so peak_rss_mb reflects THIS bench's run, not whatever
/// the process (or a shared fixture) peaked at earlier.
inline void ResetPeakRss() {
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

/// Peak RSS in MiB since the last ResetPeakRss: VmHWM from
/// /proc/self/status, with getrusage (whole-process high-water, never
/// reset) as the portable fallback.
inline double PeakRssMb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long kb = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
        std::fclose(f);
        return static_cast<double>(kb) / 1024.0;
      }
    }
    std::fclose(f);
  }
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Records a bench run into BENCH_<name>.json (wall time, processed query
/// volume, thread count, peak RSS) so speedups across commits can be
/// compared machine-readably. Construct at the top of main(); the file is
/// written when the recorder goes out of scope.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    ResetPeakRss();
    alloc_start_ = AllocCount();
  }
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  /// Call once per dataset with the number of capture records analyzed.
  /// Thread-safe: benches may accumulate from per-dataset callbacks.
  void AddQueries(std::uint64_t n) EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    queries_ += n;
  }

  /// Appends a bench-specific numeric field to the emitted JSON, so a
  /// bench can expose its headline result (an amplification factor, a
  /// ratio, a count) machine-readably next to the timing data.
  void AddStat(const std::string& key, double value) EXCLUDES(mu_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    base::MutexLock lock(mu_);
    stats_.emplace_back(key, buf);
  }
  void AddStat(const std::string& key, std::uint64_t value) EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    stats_.emplace_back(key, std::to_string(value));
  }

  /// Accumulates wall time into a named pipeline phase (simulate / merge /
  /// scan), emitted as `"phase_<name>_seconds"` so BENCH json proves where
  /// the time went, not just how much there was. Repeated calls with the
  /// same name add up.
  void AddPhaseSeconds(const std::string& name, double seconds)
      EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    for (auto& [key, total] : phases_) {
      if (key == name) {
        total += seconds;
        return;
      }
    }
    phases_.emplace_back(name, seconds);
  }

  ~BenchRecorder() EXCLUDES(mu_) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    base::MutexLock lock(mu_);
    // Wall-time breakdown line (lands in bench_output.txt), plus the
    // asserted phase-coverage invariant: once a bench books phases, they
    // must explain the wall — an unaccounted slice above 10% (and a
    // 0.25s absolute floor, so millisecond benches aren't judged on
    // startup noise) means a new cost crept in outside the accounting,
    // which is exactly the blind spot the phases exist to prevent.
    if (!phases_.empty()) {
      double accounted = 0;
      for (const auto& [key, seconds] : phases_) accounted += seconds;
      const double unaccounted = wall - accounted;
      std::printf("[bench] %s wall %.3fs =", name_.c_str(), wall);
      for (std::size_t i = 0; i < phases_.size(); ++i) {
        std::printf("%s %s %.3fs", i == 0 ? "" : " +",
                    phases_[i].first.c_str(), phases_[i].second);
      }
      std::printf(" | unaccounted %.3fs (%.1f%%)\n", unaccounted,
                  wall > 0 ? 100.0 * unaccounted / wall : 0.0);
      if (unaccounted > 0.1 * wall && unaccounted > 0.25) {
        std::fprintf(stderr,
                     "FATAL: %s phase accounting covers only %.3fs of %.3fs "
                     "wall — the phase breakdown no longer explains where "
                     "the time goes\n",
                     name_.c_str(), accounted, wall);
        std::abort();
      }
    }
    std::size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("CLOUDDNS_THREADS")) {
      char* end = nullptr;
      unsigned long long value = std::strtoull(env, &end, 10);
      if (end != env && value > 0) threads = static_cast<std::size_t>(value);
    }
    const std::uint64_t allocs = AllocCount() - alloc_start_;
    const std::string path = "BENCH_" + name_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"name\": \"%s\",\n"
                   "  \"wall_seconds\": %.3f,\n"
                   "  \"queries\": %llu,\n"
                   "  \"queries_per_second\": %.0f,\n"
                   "  \"threads\": %zu,\n"
                   "  \"peak_rss_mb\": %.1f",
                   name_.c_str(), wall,
                   static_cast<unsigned long long>(queries_),
                   wall > 0 ? static_cast<double>(queries_) / wall : 0.0,
                   threads, PeakRssMb());
#if CLOUDDNS_BENCH_COUNT_ALLOCS
      std::fprintf(f,
                   ",\n  \"allocations\": %llu,\n"
                   "  \"allocs_per_query\": %.2f",
                   static_cast<unsigned long long>(allocs),
                   queries_ > 0
                       ? static_cast<double>(allocs) /
                             static_cast<double>(queries_)
                       : 0.0);
#else
      (void)allocs;
#endif
      for (const auto& [key, seconds] : phases_) {
        std::fprintf(f, ",\n  \"phase_%s_seconds\": %.3f", key.c_str(),
                     seconds);
      }
      for (const auto& [key, value] : stats_) {
        std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
      }
      std::fprintf(f, "\n}\n");
      std::fclose(f);
    }
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t alloc_start_ = 0;
  mutable base::Mutex mu_;
  std::uint64_t queries_ GUARDED_BY(mu_) = 0;
  std::vector<std::pair<std::string, std::string>> stats_ GUARDED_BY(mu_);
  std::vector<std::pair<std::string, double>> phases_ GUARDED_BY(mu_);
};

/// Runs `fn` and books its wall time into the named phase of `recorder`.
/// Returns fn's result.
template <typename Fn>
auto WithPhase(BenchRecorder& recorder, const char* phase, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    recorder.AddPhaseSeconds(
        phase, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  } else {
    auto result = fn();
    recorder.AddPhaseSeconds(
        phase, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count());
    return result;
  }
}

/// Runs a dataset-producing callable (typically analysis::LoadOrRun) and
/// books its wall time split by where it actually went: the library-side
/// phase counters attribute scenario construction (`setup`), codec work
/// (`encode`: columnar/frame/CRC), and raw file bytes (`io`); whatever
/// the counters don't claim — the simulation schedule loop on a cold
/// run, approximately nothing on a warm cache hit — is booked as
/// `simulate`.
template <typename Fn>
auto WithSimulatePhase(BenchRecorder& recorder, Fn&& fn) {
  const std::uint64_t setup0 = base::PhaseNanos(base::Phase::kSetup);
  const std::uint64_t encode0 = base::PhaseNanos(base::Phase::kEncode);
  const std::uint64_t io0 = base::PhaseNanos(base::Phase::kIo);
  const auto start = std::chrono::steady_clock::now();
  auto book = [&] {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const double setup =
        static_cast<double>(base::PhaseNanos(base::Phase::kSetup) - setup0) *
        1e-9;
    const double encode =
        static_cast<double>(base::PhaseNanos(base::Phase::kEncode) -
                            encode0) *
        1e-9;
    const double io =
        static_cast<double>(base::PhaseNanos(base::Phase::kIo) - io0) * 1e-9;
    recorder.AddPhaseSeconds("setup", setup);
    recorder.AddPhaseSeconds("encode", encode);
    recorder.AddPhaseSeconds("io", io);
    const double accounted = setup + encode + io;
    recorder.AddPhaseSeconds("simulate",
                             wall > accounted ? wall - accounted : 0.0);
  };
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    book();
  } else {
    auto result = fn();
    book();
    return result;
  }
}

/// Runs an analysis callable and books its wall time split into the
/// `scan` and `merge` phases — merge is the capture::MergeNanos delta
/// (time flattening sharded captures), scan is everything else. With
/// shard-wise analytics the merge share should be zero unless a consumer
/// genuinely flattens.
template <typename Fn>
auto WithScanPhase(BenchRecorder& recorder, Fn&& fn) {
  const std::uint64_t merge_start = capture::MergeNanos();
  const auto start = std::chrono::steady_clock::now();
  auto book = [&] {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const double merge =
        static_cast<double>(capture::MergeNanos() - merge_start) * 1e-9;
    recorder.AddPhaseSeconds("scan", wall > merge ? wall - merge : 0.0);
    recorder.AddPhaseSeconds("merge", merge);
  };
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    book();
  } else {
    auto result = fn();
    book();
    return result;
  }
}

/// One measured point of the thread-scaling sweep. Phase split: `merge` is
/// time inside the capture K-way/ladder merge (capture::MergeNanos delta —
/// zero when analytics scan shard-wise), `scan` is the rest of the analyze
/// wall time.
struct ScalingPoint {
  std::size_t threads = 0;
  double wall_seconds = 0;
  double scan_seconds = 0;
  double merge_seconds = 0;
  std::uint64_t queries = 0;
};

/// The sweep is opt-in: it re-analyzes every dataset 24x (4 thread counts
/// x best-of-6 repeats), which is noise for the default single-shot bench
/// run.
inline bool ScalingSweepRequested() {
  return std::getenv("CLOUDDNS_SCALING") != nullptr;
}

/// Rewrites this bench's entries in the shared BENCH_scaling.json (a JSON
/// array with one object per line), keeping other benches' entries so the
/// sweep binaries merge into one artifact.
inline void WriteScalingResults(const std::string& bench_name,
                                const std::vector<ScalingPoint>& points) {
  std::vector<std::string> lines;
  const std::string self_key = "\"name\": \"" + bench_name + "\"";
  if (std::FILE* f = std::fopen("BENCH_scaling.json", "r")) {
    char buf[512];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
      std::string line(buf);
      if (line.find("\"name\": ") == std::string::npos) continue;
      if (line.find(self_key) != std::string::npos) continue;
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r' ||
              line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      lines.push_back(std::move(line));
    }
    std::fclose(f);
  }
  for (const ScalingPoint& p : points) {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"threads\": %zu, "
                  "\"wall_seconds\": %.3f, \"scan_seconds\": %.3f, "
                  "\"merge_seconds\": %.3f, \"queries\": %llu, "
                  "\"queries_per_second\": %.0f}",
                  bench_name.c_str(), p.threads, p.wall_seconds,
                  p.scan_seconds, p.merge_seconds,
                  static_cast<unsigned long long>(p.queries),
                  p.wall_seconds > 0
                      ? static_cast<double>(p.queries) / p.wall_seconds
                      : 0.0);
    lines.emplace_back(buf);
  }
  if (std::FILE* f = std::fopen("BENCH_scaling.json", "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::fprintf(f, "%s%s\n", lines[i].c_str(),
                   i + 1 < lines.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }
}

/// Runs `analyze` (which must render its full analysis result to a string)
/// over every dataset at 1/2/4/8 worker threads, asserting the rendered
/// output is byte-identical across thread counts — the AnalysisPlan's
/// worker-ordered fold makes results thread-count-invariant, and this is
/// the executable form of that contract. Each point is measured six
/// times and the fastest repeat kept (scheduler noise otherwise swamps
/// the single-digit-millisecond analyze times). Timing per thread count,
/// split into scan and merge phases, goes to BENCH_scaling.json.
template <typename AnalyzeFn>
void RunScalingSweep(const std::string& bench_name,
                     const std::vector<cloud::ScenarioResult>& datasets,
                     AnalyzeFn analyze) {
  const char* prev = std::getenv("CLOUDDNS_THREADS");
  const std::string saved = prev != nullptr ? prev : "";
  std::vector<ScalingPoint> points;
  std::string baseline;
  std::printf("\nThread-scaling sweep (CLOUDDNS_SCALING):\n");
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    setenv("CLOUDDNS_THREADS", std::to_string(threads).c_str(), 1);
    ScalingPoint point;
    point.threads = threads;
    bool measured = false;
    for (int repeat = 0; repeat < 6; ++repeat) {
      std::string rendered;
      std::uint64_t queries = 0;
      const std::uint64_t merge_start = capture::MergeNanos();
      const auto start = std::chrono::steady_clock::now();
      for (const auto& dataset : datasets) {
        rendered += analyze(dataset);
        queries += dataset.records.size();
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double merge = static_cast<double>(capture::MergeNanos() -
                                               merge_start) *
                           1e-9;
      if (baseline.empty()) {
        baseline = rendered;
      } else if (rendered != baseline) {
        std::fprintf(stderr,
                     "FATAL: %s analysis output at %zu threads differs from "
                     "the 1-thread rendering — thread-count invariance is "
                     "broken\n",
                     bench_name.c_str(), threads);
        std::abort();
      }
      if (!measured || wall < point.wall_seconds) {
        measured = true;
        point.wall_seconds = wall;
        point.merge_seconds = merge;
        point.scan_seconds = wall > merge ? wall - merge : 0.0;
        point.queries = queries;
      }
    }
    std::printf("  threads=%zu  %8.3fs (scan %.3fs, merge %.3fs)  %12.0f q/s\n",
                threads, point.wall_seconds, point.scan_seconds,
                point.merge_seconds,
                point.wall_seconds > 0
                    ? static_cast<double>(point.queries) / point.wall_seconds
                    : 0.0);
    points.push_back(point);
  }
  if (prev != nullptr) {
    setenv("CLOUDDNS_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("CLOUDDNS_THREADS");
  }
  std::printf("  outputs byte-identical across thread counts\n");
  WriteScalingResults(bench_name, points);
}

/// The cold sweep is opt-in like the scaling sweep: it deletes and
/// rebuilds the whole dataset cache twice, which only the bench CI job
/// should pay for.
inline bool ColdSweepRequested() {
  return std::getenv("CLOUDDNS_COLD_SWEEP") != nullptr;
}

/// Cold-path thread sweep (CLOUDDNS_COLD_SWEEP): clears the dataset cache
/// and rebuilds every dataset from scratch at 1 and 8 worker threads,
/// recording "<bench>_cold" points in BENCH_scaling.json (gated by
/// tools/check_scaling.cmake: cold 8T must beat cold 1T). `build` must
/// re-create all datasets through analysis::LoadOrRun and return the
/// total capture-record count. After each rebuild the cache artifacts are
/// fingerprinted (CRC32C of every file, name-sorted) and the sweep aborts
/// on any difference — the executable form of the parallel cold path's
/// byte-identity contract (zone build/signing fan-out, block-parallel
/// framed codec).
template <typename BuildFn>
void RunColdSweep(const std::string& bench_name, BuildFn build) {
  namespace fs = std::filesystem;
  const std::string cache_dir = analysis::DefaultCacheDir();
  const char* prev = std::getenv("CLOUDDNS_THREADS");
  const std::string saved = prev != nullptr ? prev : "";
  auto fingerprint = [&cache_dir] {
    std::vector<std::pair<std::string, std::uint32_t>> files;
    std::error_code ec;
    for (fs::directory_iterator it(cache_dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      std::vector<std::uint8_t> bytes;
      if (!base::io::ReadFileBytes(it->path().string(), bytes).ok()) continue;
      files.emplace_back(it->path().filename().string(),
                         base::io::Crc32c(bytes));
    }
    std::sort(files.begin(), files.end());
    std::string digest;
    for (const auto& [file, crc] : files) {
      digest += file + ":" + std::to_string(crc) + "\n";
    }
    return digest;
  };
  std::vector<ScalingPoint> points;
  std::string baseline_digest;
  std::printf("\nCold-path sweep (CLOUDDNS_COLD_SWEEP):\n");
  for (std::size_t threads : {1u, 8u}) {
    std::error_code ec;
    fs::remove_all(cache_dir, ec);
    setenv("CLOUDDNS_THREADS", std::to_string(threads).c_str(), 1);
    ScalingPoint point;
    point.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    point.queries = build();
    point.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const std::string digest = fingerprint();
    if (baseline_digest.empty()) {
      baseline_digest = digest;
    } else if (digest != baseline_digest) {
      std::fprintf(stderr,
                   "FATAL: %s cold rebuild at %zu threads produced different "
                   "cache artifacts than the 1-thread rebuild — the parallel "
                   "cold path broke byte-identity\n",
                   bench_name.c_str(), threads);
      std::abort();
    }
    std::printf("  threads=%zu  %8.3fs cold rebuild  %12.0f q/s\n", threads,
                point.wall_seconds,
                point.wall_seconds > 0
                    ? static_cast<double>(point.queries) / point.wall_seconds
                    : 0.0);
    points.push_back(point);
  }
  if (prev != nullptr) {
    setenv("CLOUDDNS_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("CLOUDDNS_THREADS");
  }
  std::printf("  cold artifacts byte-identical across thread counts\n");
  WriteScalingResults(bench_name + "_cold", points);
}

inline cloud::ScenarioConfig StandardConfig(cloud::Vantage vantage, int year) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = year;
  std::uint64_t base =
      vantage == cloud::Vantage::kRoot ? 220'000 : 260'000;
  // Client demand grows across the study years in proportion to the
  // paper's Table 3 totals (normalized to 2018), so the year-over-year
  // growth directions reproduce.
  auto t3_2018 = *analysis::paper::Table3(vantage, 2018);
  auto t3_now = *analysis::paper::Table3(vantage, year);
  config.client_queries = static_cast<std::uint64_t>(
      static_cast<double>(base) * t3_now.queries_total_b /
      t3_2018.queries_total_b);
  return config;
}

/// The Fig. 3 longitudinal window: September 2019 through April 2020,
/// Google's fleet only, monthly buckets. The .nz variant injects the
/// February 2020 cyclic-dependency misconfiguration.
inline cloud::ScenarioConfig LongitudinalGoogleConfig(cloud::Vantage vantage) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = 2020;
  config.client_queries = 500'000;
  config.window_start = sim::TimeFromCivil({2019, 9, 1});
  config.window_end = sim::TimeFromCivil({2020, 5, 1});
  config.google_only = true;
  config.inject_cyclic_event = vantage == cloud::Vantage::kNz;
  return config;
}

inline std::string ProviderName(cloud::Provider provider) {
  return std::string(cloud::ToString(provider));
}

}  // namespace clouddns::bench
