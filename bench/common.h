// Shared scenario configurations for the bench harness. Every bench that
// reproduces a table/figure pulls its datasets through LoadOrRun, so a
// capture week is simulated once and shared across binaries via the cache
// directory (CLOUDDNS_CACHE_DIR, default ./clouddns_cache). The per-dataset
// client-query budget can be raised with CLOUDDNS_QUERIES for smoother
// statistics.
#pragma once

#include "analysis/calibration.h"
#include "analysis/dataset_cache.h"
#include "analysis/experiments.h"
#include "analysis/report.h"
#include "cloud/scenario.h"

namespace clouddns::bench {

inline cloud::ScenarioConfig StandardConfig(cloud::Vantage vantage, int year) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = year;
  std::uint64_t base =
      vantage == cloud::Vantage::kRoot ? 220'000 : 260'000;
  // Client demand grows across the study years in proportion to the
  // paper's Table 3 totals (normalized to 2018), so the year-over-year
  // growth directions reproduce.
  auto t3_2018 = *analysis::paper::Table3(vantage, 2018);
  auto t3_now = *analysis::paper::Table3(vantage, year);
  config.client_queries = static_cast<std::uint64_t>(
      static_cast<double>(base) * t3_now.queries_total_b /
      t3_2018.queries_total_b);
  return config;
}

/// The Fig. 3 longitudinal window: September 2019 through April 2020,
/// Google's fleet only, monthly buckets. The .nz variant injects the
/// February 2020 cyclic-dependency misconfiguration.
inline cloud::ScenarioConfig LongitudinalGoogleConfig(cloud::Vantage vantage) {
  cloud::ScenarioConfig config;
  config.vantage = vantage;
  config.year = 2020;
  config.client_queries = 500'000;
  config.window_start = sim::TimeFromCivil({2019, 9, 1});
  config.window_end = sim::TimeFromCivil({2020, 5, 1});
  config.google_only = true;
  config.inject_cyclic_event = vantage == cloud::Vantage::kNz;
  return config;
}

inline std::string ProviderName(cloud::Provider provider) {
  return std::string(cloud::ToString(provider));
}

}  // namespace clouddns::bench
