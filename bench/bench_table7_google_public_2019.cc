// Table 7 (Appendix A) reproduction: the Google public-DNS split for
// w2019 — the paper's check that the w2020 Table 4 ratios are stable over
// time (89.3% / 84.4% of queries from the public ranges).
#include <cstdio>

#include "common.h"

using namespace clouddns;

int main() {
  analysis::PrintBanner("Table 7 (Appendix A)",
                        "Queries from Google on w2019");
  analysis::TextTable table({"vantage", "queries", "pub-queries", "ratio",
                             "paper", "resolvers", "pub-resolvers", "ratio",
                             "paper"});
  for (cloud::Vantage vantage : {cloud::Vantage::kNl, cloud::Vantage::kNz}) {
    auto result = analysis::LoadOrRun(bench::StandardConfig(vantage, 2019));
    auto split = analysis::ComputeGoogleSplit(result);
    auto paper = *analysis::paper::GoogleSplitRef(vantage, 2019);
    table.AddRow({std::string(cloud::ToString(vantage)),
                  analysis::Count(split.queries_total),
                  analysis::Count(split.queries_public),
                  analysis::Percent(split.QueryRatio()),
                  analysis::Percent(paper.query_ratio),
                  analysis::Count(split.resolvers_total),
                  analysis::Count(split.resolvers_public),
                  analysis::Percent(split.ResolverRatio()),
                  analysis::Percent(paper.resolver_ratio)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: same split as Table 4 one year earlier — the\n"
      "public service carries ~84-89%% of Google's queries from a small\n"
      "fraction of its sources.\n");
  return 0;
}
