// Shared test fixture: a miniature Internet with a root server, one ccTLD
// (.nl) with two domains, a catch-all leaf authoritative, and a latency
// plane — enough substrate to run full resolutions in unit tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

namespace clouddns::testutil {

inline dns::Name N(const char* text) { return *dns::Name::Parse(text); }

struct MiniInternet {
  static constexpr const char* kRootV4 = "199.9.14.201";
  static constexpr const char* kRootV6 = "2001:500:200::b";
  static constexpr const char* kNlV4 = "194.0.28.53";
  static constexpr const char* kNlV6 = "2001:678:2c::53";

  MiniInternet(std::size_t nl_domains = 50, bool sign_zones = true) {
    auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
    leaf_site = latency.AddSite({"LEAF", 30, 0, 1.0, 0.0});
    resolver_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
    network = std::make_unique<sim::Network>(latency);

    // Root zone delegating .nl (signed).
    zone::ZoneBuildConfig root_config;
    root_config.apex = dns::Name{};
    root_config.nameservers = {
        {N("b.root-servers.net"),
         {*net::IpAddress::Parse(kRootV4), *net::IpAddress::Parse(kRootV6)}}};
    auto root = zone::MakeZoneSkeleton(root_config);
    zone::AddDelegation(
        root, N("nl"),
        {{N("ns1.dns.nl"),
          {*net::IpAddress::Parse(kNlV4), *net::IpAddress::Parse(kNlV6)}}},
        /*with_ds=*/true);
    if (sign_zones) zone::SignZone(root);
    root_zone = std::make_shared<const zone::Zone>(std::move(root));

    // .nl zone with delegations dom0..domN-1 (half signed).
    zone::ZoneBuildConfig nl_config;
    nl_config.apex = N("nl");
    nl_config.nameservers = {
        {N("ns1.dns.nl"),
         {*net::IpAddress::Parse(kNlV4), *net::IpAddress::Parse(kNlV6)}}};
    auto nl = zone::MakeZoneSkeleton(nl_config);
    zone::PopulateDelegations(nl, nl_domains, "dom", 0.5,
                              net::Ipv4Address(100, 70, 0, 0));
    if (sign_zones) zone::SignZone(nl);
    nl_zone = std::make_shared<const zone::Zone>(std::move(nl));

    server::AuthServerConfig root_server_config;
    root_server_config.server_id = 0;
    root_server_config.name = "b-root";
    root_server = std::make_unique<server::AuthServer>(root_server_config);
    root_server->Serve(root_zone);
    network->RegisterServer(*net::IpAddress::Parse(kRootV4), auth_site,
                            *root_server);
    network->RegisterServer(*net::IpAddress::Parse(kRootV6), auth_site,
                            *root_server);

    server::AuthServerConfig nl_server_config;
    nl_server_config.server_id = 1;
    nl_server_config.name = "nl-a";
    nl_server = std::make_unique<server::AuthServer>(nl_server_config);
    nl_server->Serve(nl_zone);
    network->RegisterServer(*net::IpAddress::Parse(kNlV4), auth_site,
                            *nl_server);
    network->RegisterServer(*net::IpAddress::Parse(kNlV6), auth_site,
                            *nl_server);

    leaf = std::make_unique<server::LeafAuthService>(server::LeafAuthConfig{});
    network->SetDefaultRoute(leaf_site, *leaf);
  }

  std::vector<net::IpAddress> RootHintsV4() const {
    return {*net::IpAddress::Parse(kRootV4)};
  }
  std::vector<net::IpAddress> RootHintsV6() const {
    return {*net::IpAddress::Parse(kRootV6)};
  }

  sim::LatencyModel latency;
  sim::SiteId auth_site, leaf_site, resolver_site;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<const zone::Zone> root_zone;
  std::shared_ptr<const zone::Zone> nl_zone;
  std::unique_ptr<server::AuthServer> root_server;
  std::unique_ptr<server::AuthServer> nl_server;
  std::unique_ptr<server::LeafAuthService> leaf;
};

/// Minimal FIPS 180-4 SHA-256 over a byte string, hex-encoded. Determinism
/// tests fingerprint zone wire images and rendered reports with it so a
/// single flipped byte (or a reordered record) shows up as a digest diff.
inline std::string Sha256Hex(std::string_view data) {
  auto rotr = [](std::uint32_t x, int n) {
    return (x >> n) | (x << (32 - n));
  };
  static constexpr std::uint32_t kK[64] = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
      0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
      0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
      0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
      0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
      0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
      0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
      0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
      0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::vector<std::uint8_t> msg(data.begin(), data.end());
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg.size()) * 8;
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  for (int i = 7; i >= 0; --i) {
    msg.push_back(static_cast<std::uint8_t>(bit_len >> (8 * i)));
  }
  for (std::size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(msg[chunk + 4 * i]) << 24) |
             (static_cast<std::uint32_t>(msg[chunk + 4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(msg[chunk + 4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(msg[chunk + 4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                  g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
  }
  std::string hex;
  hex.reserve(64);
  for (std::uint32_t word : h) {
    for (int i = 28; i >= 0; i -= 4) {
      hex.push_back("0123456789abcdef"[(word >> i) & 0xF]);
    }
  }
  return hex;
}

}  // namespace clouddns::testutil
