// Shared test fixture: a miniature Internet with a root server, one ccTLD
// (.nl) with two domains, a catch-all leaf authoritative, and a latency
// plane — enough substrate to run full resolutions in unit tests.
#pragma once

#include <memory>

#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

namespace clouddns::testutil {

inline dns::Name N(const char* text) { return *dns::Name::Parse(text); }

struct MiniInternet {
  static constexpr const char* kRootV4 = "199.9.14.201";
  static constexpr const char* kRootV6 = "2001:500:200::b";
  static constexpr const char* kNlV4 = "194.0.28.53";
  static constexpr const char* kNlV6 = "2001:678:2c::53";

  MiniInternet(std::size_t nl_domains = 50, bool sign_zones = true) {
    auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
    leaf_site = latency.AddSite({"LEAF", 30, 0, 1.0, 0.0});
    resolver_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
    network = std::make_unique<sim::Network>(latency);

    // Root zone delegating .nl (signed).
    zone::ZoneBuildConfig root_config;
    root_config.apex = dns::Name{};
    root_config.nameservers = {
        {N("b.root-servers.net"),
         {*net::IpAddress::Parse(kRootV4), *net::IpAddress::Parse(kRootV6)}}};
    auto root = zone::MakeZoneSkeleton(root_config);
    zone::AddDelegation(
        root, N("nl"),
        {{N("ns1.dns.nl"),
          {*net::IpAddress::Parse(kNlV4), *net::IpAddress::Parse(kNlV6)}}},
        /*with_ds=*/true);
    if (sign_zones) zone::SignZone(root);
    root_zone = std::make_shared<const zone::Zone>(std::move(root));

    // .nl zone with delegations dom0..domN-1 (half signed).
    zone::ZoneBuildConfig nl_config;
    nl_config.apex = N("nl");
    nl_config.nameservers = {
        {N("ns1.dns.nl"),
         {*net::IpAddress::Parse(kNlV4), *net::IpAddress::Parse(kNlV6)}}};
    auto nl = zone::MakeZoneSkeleton(nl_config);
    zone::PopulateDelegations(nl, nl_domains, "dom", 0.5,
                              net::Ipv4Address(100, 70, 0, 0));
    if (sign_zones) zone::SignZone(nl);
    nl_zone = std::make_shared<const zone::Zone>(std::move(nl));

    server::AuthServerConfig root_server_config;
    root_server_config.server_id = 0;
    root_server_config.name = "b-root";
    root_server = std::make_unique<server::AuthServer>(root_server_config);
    root_server->Serve(root_zone);
    network->RegisterServer(*net::IpAddress::Parse(kRootV4), auth_site,
                            *root_server);
    network->RegisterServer(*net::IpAddress::Parse(kRootV6), auth_site,
                            *root_server);

    server::AuthServerConfig nl_server_config;
    nl_server_config.server_id = 1;
    nl_server_config.name = "nl-a";
    nl_server = std::make_unique<server::AuthServer>(nl_server_config);
    nl_server->Serve(nl_zone);
    network->RegisterServer(*net::IpAddress::Parse(kNlV4), auth_site,
                            *nl_server);
    network->RegisterServer(*net::IpAddress::Parse(kNlV6), auth_site,
                            *nl_server);

    leaf = std::make_unique<server::LeafAuthService>(server::LeafAuthConfig{});
    network->SetDefaultRoute(leaf_site, *leaf);
  }

  std::vector<net::IpAddress> RootHintsV4() const {
    return {*net::IpAddress::Parse(kRootV4)};
  }
  std::vector<net::IpAddress> RootHintsV6() const {
    return {*net::IpAddress::Parse(kRootV6)};
  }

  sim::LatencyModel latency;
  sim::SiteId auth_site, leaf_site, resolver_site;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<const zone::Zone> root_zone;
  std::shared_ptr<const zone::Zone> nl_zone;
  std::unique_ptr<server::AuthServer> root_server;
  std::unique_ptr<server::AuthServer> nl_server;
  std::unique_ptr<server::LeafAuthService> leaf;
};

}  // namespace clouddns::testutil
