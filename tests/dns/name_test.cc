#include "dns/name.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/message.h"

namespace clouddns::dns {
namespace {

TEST(NameTest, ParsesSimpleName) {
  auto name = Name::Parse("www.example.nl");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->LabelCount(), 3u);
  EXPECT_EQ(name->Label(0), "www");
  EXPECT_EQ(name->Label(2), "nl");
  EXPECT_EQ(name->ToString(), "www.example.nl");
}

TEST(NameTest, TrailingDotIsAbsorbed) {
  EXPECT_EQ(*Name::Parse("example.nz."), *Name::Parse("example.nz"));
}

TEST(NameTest, RootName) {
  auto root = Name::Parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->IsRoot());
  EXPECT_EQ(root->LabelCount(), 0u);
  EXPECT_EQ(root->ToString(), ".");
  EXPECT_EQ(root->WireLength(), 1u);
}

TEST(NameTest, RejectsBadNames) {
  EXPECT_FALSE(Name::Parse("").has_value());
  EXPECT_FALSE(Name::Parse("..").has_value());
  EXPECT_FALSE(Name::Parse("a..b").has_value());
  EXPECT_FALSE(Name::Parse(".leading").has_value());
  EXPECT_FALSE(Name::Parse("sp ace.nl").has_value());
  EXPECT_FALSE(Name::Parse(std::string(64, 'a') + ".nl").has_value());
}

TEST(NameTest, RejectsOverlongName) {
  // Four 63-byte labels = 4*64+1 = 257 wire bytes > 255.
  std::string label(63, 'x');
  std::string too_long = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(Name::Parse(too_long).has_value());
  // Three fit (3*64 + 1 = 193).
  EXPECT_TRUE(Name::Parse(label + "." + label + "." + label).has_value());
}

TEST(NameTest, WireLength) {
  EXPECT_EQ(Name::Parse("nl")->WireLength(), 4u);            // 1+2+1
  EXPECT_EQ(Name::Parse("example.nl")->WireLength(), 12u);   // 1+7+1+2+1
}

TEST(NameTest, CaseInsensitiveEquality) {
  EXPECT_EQ(*Name::Parse("WWW.Example.NL"), *Name::Parse("www.example.nl"));
  NameHash hash;
  EXPECT_EQ(hash(*Name::Parse("WWW.Example.NL")),
            hash(*Name::Parse("www.example.nl")));
}

TEST(NameTest, PreservesOriginalCase) {
  EXPECT_EQ(Name::Parse("ExAmPlE.Nl")->ToString(), "ExAmPlE.Nl");
  EXPECT_EQ(Name::Parse("ExAmPlE.Nl")->ToKey(), "example.nl");
}

TEST(NameTest, ParentChainEndsAtRoot) {
  Name name = *Name::Parse("a.b.c");
  EXPECT_EQ(name.Parent().ToString(), "b.c");
  EXPECT_EQ(name.Parent().Parent().ToString(), "c");
  EXPECT_TRUE(name.Parent().Parent().Parent().IsRoot());
  EXPECT_TRUE(Name{}.Parent().IsRoot());
}

TEST(NameTest, Suffix) {
  Name name = *Name::Parse("a.b.c.d");
  EXPECT_EQ(name.Suffix(2).ToString(), "c.d");
  EXPECT_EQ(name.Suffix(0).ToString(), ".");
  EXPECT_EQ(name.Suffix(4), name);
  EXPECT_EQ(name.Suffix(9), name);
}

TEST(NameTest, Child) {
  Name nl = *Name::Parse("nl");
  EXPECT_EQ(nl.Child("example").ToString(), "example.nl");
  EXPECT_EQ(Name{}.Child("nz").ToString(), "nz");
  EXPECT_THROW(nl.Child(""), std::invalid_argument);
  EXPECT_THROW(nl.Child(std::string(64, 'a')), std::invalid_argument);
}

TEST(NameTest, IsSubdomainOf) {
  Name zone = *Name::Parse("example.nl");
  EXPECT_TRUE(Name::Parse("www.example.nl")->IsSubdomainOf(zone));
  EXPECT_TRUE(Name::Parse("a.b.example.nl")->IsSubdomainOf(zone));
  EXPECT_TRUE(zone.IsSubdomainOf(zone));
  EXPECT_FALSE(Name::Parse("example.nz")->IsSubdomainOf(zone));
  EXPECT_FALSE(Name::Parse("badexample.nl")->IsSubdomainOf(zone));
  EXPECT_FALSE(Name::Parse("nl")->IsSubdomainOf(zone));
  // Everything is under the root.
  EXPECT_TRUE(zone.IsSubdomainOf(Name{}));
  // Case-insensitive.
  EXPECT_TRUE(Name::Parse("WWW.EXAMPLE.NL")->IsSubdomainOf(zone));
}

TEST(NameTest, CanonicalOrdering) {
  // RFC 4034 §6.1 example ordering.
  EXPECT_LT(*Name::Parse("example"), *Name::Parse("a.example"));
  EXPECT_LT(*Name::Parse("a.example"), *Name::Parse("yljkjljk.a.example"));
  EXPECT_LT(*Name::Parse("yljkjljk.a.example"), *Name::Parse("z.a.example"));
  EXPECT_LT(*Name::Parse("z.example"), *Name::Parse("b.z.example"));
  EXPECT_EQ(Name::Parse("A.EXAMPLE")->Compare(*Name::Parse("a.example")), 0);
}

TEST(NameTest, FromLabelsValidates) {
  EXPECT_EQ(Name::FromLabels({"www", "example", "nl"}).ToString(),
            "www.example.nl");
  EXPECT_THROW(Name::FromLabels({""}), std::invalid_argument);
  EXPECT_THROW(Name::FromLabels({std::string(64, 'a')}),
               std::invalid_argument);
}

TEST(NameTest, HashDistinguishesLabelBoundaries) {
  NameHash hash;
  // "ab.c" vs "a.bc" must hash (and compare) differently.
  EXPECT_NE(*Name::Parse("ab.c"), *Name::Parse("a.bc"));
  EXPECT_NE(hash(*Name::Parse("ab.c")), hash(*Name::Parse("a.bc")));
}


TEST(NameTest, SmallBufferBoundaryIsExact) {
  // One 53-byte label = 54 flat bytes, the last size that fits inline.
  auto inline_name = Name::Parse(std::string(53, 'a'));
  ASSERT_TRUE(inline_name.has_value());
  EXPECT_TRUE(inline_name->IsInline());
  // One more label pushes the flat size to 56 and onto the heap.
  auto heap_name = Name::Parse(std::string(53, 'a') + ".b");
  ASSERT_TRUE(heap_name.has_value());
  EXPECT_FALSE(heap_name->IsInline());
  EXPECT_EQ(heap_name->ToString(), std::string(53, 'a') + ".b");
}

TEST(NameTest, HeapPathSurvivesCopyMoveAndReassignment) {
  std::string label(63, 'x');
  std::string long_text = label + "." + label + "." + label;
  auto heap_name = Name::Parse(long_text);
  ASSERT_TRUE(heap_name.has_value());
  ASSERT_FALSE(heap_name->IsInline());

  Name copy = *heap_name;
  EXPECT_EQ(copy, *heap_name);
  EXPECT_EQ(copy.CachedHash(), heap_name->CachedHash());
  EXPECT_EQ(copy.ToString(), long_text);

  Name moved = std::move(copy);
  EXPECT_EQ(moved, *heap_name);
  EXPECT_EQ(moved.ToString(), long_text);

  // Heap -> inline reassignment releases the block (ASan tree verifies);
  // inline -> heap reassignment re-acquires one.
  Name slot = *heap_name;
  slot = *Name::Parse("short.nl");
  EXPECT_TRUE(slot.IsInline());
  EXPECT_EQ(slot.ToString(), "short.nl");
  slot = moved;
  EXPECT_FALSE(slot.IsInline());
  EXPECT_EQ(slot, *heap_name);
}

TEST(NameTest, MaxLengthNameRoundTripsThroughWireAndAudit) {
  // 63+63+63+61 byte labels = 254 flat bytes = the RFC 1035 255-octet
  // wire maximum including the root terminator.
  std::string label(63, 'x');
  std::string text =
      label + "." + label + "." + label + "." + std::string(61, 'y');
  auto name = Name::Parse(text);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->WireLength(), Name::kMaxWireLength);
  EXPECT_FALSE(name->IsInline());

  // Encode is audit-hooked (CLOUDDNS_AUDIT aborts on any structural
  // fault), so a full message round trip exercises wire + audit at the
  // length limit for both SBO paths.
  for (const Name& qname : {*name, *Name::Parse("short.nl")}) {
    Message query = Message::MakeQuery(7, qname, RrType::kA);
    WireBuffer wire = query.Encode();
    auto decoded = Message::Decode(wire);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->questions.size(), 1u);
    EXPECT_EQ(decoded->questions[0].name, qname);
    EXPECT_EQ(decoded->questions[0].name.ToString(), qname.ToString());
    EXPECT_EQ(decoded->questions[0].name.CachedHash(), qname.CachedHash());
  }
}

}  // namespace
}  // namespace clouddns::dns
