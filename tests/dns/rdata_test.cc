#include "dns/rdata.h"

#include <gtest/gtest.h>

#include "dns/record.h"

namespace clouddns::dns {
namespace {

// Encodes rdata standalone (fresh writer), then decodes and compares.
Rdata RoundTrip(RrType type, const Rdata& rdata) {
  WireBuffer buf;
  WireWriter writer(buf);
  EncodeRdata(rdata, writer);
  WireReader reader(buf);
  Rdata out;
  EXPECT_TRUE(
      DecodeRdata(type, static_cast<std::uint16_t>(buf.size()), reader, out));
  return out;
}

TEST(RdataTest, ARoundTrip) {
  Rdata r = ARdata{net::Ipv4Address(203, 0, 113, 7)};
  EXPECT_EQ(RoundTrip(RrType::kA, r), r);
}

TEST(RdataTest, AaaaRoundTrip) {
  Rdata r = AaaaRdata{*net::Ipv6Address::Parse("2001:db8::53")};
  EXPECT_EQ(RoundTrip(RrType::kAaaa, r), r);
}

TEST(RdataTest, NsRoundTrip) {
  Rdata r = NsRdata{*Name::Parse("ns1.dns.nl")};
  EXPECT_EQ(RoundTrip(RrType::kNs, r), r);
}

TEST(RdataTest, CnameAndPtrRoundTrip) {
  Rdata c = CnameRdata{*Name::Parse("real.example.nz")};
  EXPECT_EQ(RoundTrip(RrType::kCname, c), c);
  Rdata p = PtrRdata{*Name::Parse("resolver.ams2.facebook.example")};
  EXPECT_EQ(RoundTrip(RrType::kPtr, p), p);
}

TEST(RdataTest, MxRoundTrip) {
  Rdata r = MxRdata{10, *Name::Parse("mail.example.nl")};
  EXPECT_EQ(RoundTrip(RrType::kMx, r), r);
}

TEST(RdataTest, TxtRoundTrip) {
  TxtRdata txt;
  txt.strings = {"v=spf1 -all", "second string"};
  Rdata r = txt;
  EXPECT_EQ(RoundTrip(RrType::kTxt, r), r);
}

TEST(RdataTest, EmptyTxtRoundTrip) {
  Rdata r = TxtRdata{};
  EXPECT_EQ(RoundTrip(RrType::kTxt, r), r);
}

TEST(RdataTest, SoaRoundTrip) {
  SoaRdata soa;
  soa.mname = *Name::Parse("ns1.dns.nl");
  soa.rname = *Name::Parse("hostmaster.dns.nl");
  soa.serial = 2020041100;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 600;
  Rdata r = soa;
  EXPECT_EQ(RoundTrip(RrType::kSoa, r), r);
}

TEST(RdataTest, SrvRoundTrip) {
  Rdata r = SrvRdata{10, 20, 853, *Name::Parse("dot.example.nl")};
  EXPECT_EQ(RoundTrip(RrType::kSrv, r), r);
}

TEST(RdataTest, DsRoundTrip) {
  Rdata r = DsRdata{12345, 13, 2, {0xde, 0xad, 0xbe, 0xef}};
  EXPECT_EQ(RoundTrip(RrType::kDs, r), r);
}

TEST(RdataTest, DnskeyRoundTrip) {
  Rdata r = DnskeyRdata{257, 3, 13, {1, 2, 3, 4, 5, 6, 7, 8}};
  EXPECT_EQ(RoundTrip(RrType::kDnskey, r), r);
}

TEST(RdataTest, RrsigRoundTrip) {
  RrsigRdata sig;
  sig.type_covered = static_cast<std::uint16_t>(RrType::kNs);
  sig.algorithm = 13;
  sig.labels = 1;
  sig.original_ttl = 3600;
  sig.expiration = 1600000000;
  sig.inception = 1598000000;
  sig.key_tag = 4242;
  sig.signer = *Name::Parse("nl");
  sig.signature = {9, 8, 7};
  Rdata r = sig;
  EXPECT_EQ(RoundTrip(RrType::kRrsig, r), r);
}

TEST(RdataTest, NsecRoundTripSingleWindow) {
  NsecRdata nsec;
  nsec.next = *Name::Parse("b.nl");
  nsec.types = {RrType::kA, RrType::kNs, RrType::kSoa, RrType::kAaaa,
                RrType::kDs};
  Rdata r = nsec;
  auto decoded = RoundTrip(RrType::kNsec, r);
  // Decode returns types sorted ascending; our input is already ascending.
  EXPECT_EQ(decoded, r);
}

TEST(RdataTest, NsecBitmapSortsAndDeduplicates) {
  NsecRdata nsec;
  nsec.next = *Name::Parse("z.nl");
  nsec.types = {RrType::kAaaa, RrType::kA, RrType::kA};
  WireBuffer buf;
  WireWriter writer(buf);
  EncodeRdata(nsec, writer);
  WireReader reader(buf);
  Rdata out;
  ASSERT_TRUE(DecodeRdata(RrType::kNsec,
                          static_cast<std::uint16_t>(buf.size()), reader, out));
  const auto& decoded = std::get<NsecRdata>(out);
  ASSERT_EQ(decoded.types.size(), 2u);
  EXPECT_EQ(decoded.types[0], RrType::kA);
  EXPECT_EQ(decoded.types[1], RrType::kAaaa);
}

TEST(RdataTest, UnknownTypeFallsBackToRaw) {
  Rdata r = RawRdata{{0x11, 0x22, 0x33}};
  auto decoded = RoundTrip(static_cast<RrType>(99), r);
  EXPECT_EQ(decoded, r);
}

TEST(RdataTest, RejectsTruncatedA) {
  WireBuffer buf = {1, 2, 3};
  WireReader reader(buf);
  Rdata out;
  EXPECT_FALSE(DecodeRdata(RrType::kA, 3, reader, out));
}

TEST(RdataTest, RejectsWrongLengthA) {
  WireBuffer buf = {1, 2, 3, 4, 5};
  WireReader reader(buf);
  Rdata out;
  EXPECT_FALSE(DecodeRdata(RrType::kA, 5, reader, out));
}

TEST(RdataTest, RejectsRdlengthBeyondBuffer) {
  WireBuffer buf = {1, 2};
  WireReader reader(buf);
  Rdata out;
  EXPECT_FALSE(DecodeRdata(RrType::kTxt, 10, reader, out));
}

TEST(RdataTest, RejectsTxtStringOverrunningRdlength) {
  // TXT with a string length that crosses the rdata boundary.
  WireBuffer buf = {5, 'a', 'b'};
  WireReader reader(buf);
  Rdata out;
  EXPECT_FALSE(DecodeRdata(RrType::kTxt, 3, reader, out));
}

TEST(RdataTest, RejectsShortDs) {
  WireBuffer buf = {0, 1, 2};
  WireReader reader(buf);
  Rdata out;
  EXPECT_FALSE(DecodeRdata(RrType::kDs, 3, reader, out));
}

TEST(RdataTest, ToStringRendersKeyTypes) {
  EXPECT_EQ(RdataToString(ARdata{net::Ipv4Address(8, 8, 8, 8)}), "8.8.8.8");
  EXPECT_EQ(RdataToString(NsRdata{*Name::Parse("ns1.nl")}), "ns1.nl");
  EXPECT_EQ(RdataToString(MxRdata{5, *Name::Parse("mx.nl")}), "5 mx.nl");
  EXPECT_EQ(RdataToString(DsRdata{1, 13, 2, {0xab}}), "1 13 2 ab");
}

TEST(RecordHelpersTest, BuildExpectedRecords) {
  Name name = *Name::Parse("example.nl");
  auto a = MakeA(name, net::Ipv4Address(192, 0, 2, 1), 300);
  EXPECT_EQ(a.type, RrType::kA);
  EXPECT_EQ(a.ttl, 300u);
  auto ns = MakeNs(name, *Name::Parse("ns1.example.nl"), 3600);
  EXPECT_EQ(ns.type, RrType::kNs);
  auto mx = MakeMx(name, 10, *Name::Parse("mail.example.nl"), 3600);
  EXPECT_EQ(std::get<MxRdata>(mx.rdata).preference, 10);
  auto txt = MakeTxt(name, "hello", 60);
  EXPECT_EQ(std::get<TxtRdata>(txt.rdata).strings.size(), 1u);
}

}  // namespace
}  // namespace clouddns::dns
