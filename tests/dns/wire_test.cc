#include "dns/wire.h"

#include <gtest/gtest.h>

namespace clouddns::dns {
namespace {

TEST(WireWriterTest, IntegersAreBigEndian) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteU8(0xab);
  writer.WriteU16(0x1234);
  writer.WriteU32(0xdeadbeef);
  ASSERT_EQ(buf.size(), 7u);
  EXPECT_EQ(buf[0], 0xab);
  EXPECT_EQ(buf[1], 0x12);
  EXPECT_EQ(buf[2], 0x34);
  EXPECT_EQ(buf[3], 0xde);
  EXPECT_EQ(buf[6], 0xef);
}

TEST(WireReaderTest, ReadsBackWhatWriterWrote) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteU16(0xbeef);
  writer.WriteU32(0x01020304);

  WireReader reader(buf);
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  ASSERT_TRUE(reader.ReadU16(u16));
  ASSERT_TRUE(reader.ReadU32(u32));
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireReaderTest, RefusesToReadPastEnd) {
  WireBuffer buf = {0x01};
  WireReader reader(buf);
  std::uint16_t u16 = 0;
  EXPECT_FALSE(reader.ReadU16(u16));
  std::uint8_t u8 = 0;
  EXPECT_TRUE(reader.ReadU8(u8));
  EXPECT_FALSE(reader.ReadU8(u8));
}

TEST(WireNameTest, UncompressedRoundTrip) {
  WireBuffer buf;
  WireWriter writer(buf);
  Name name = *Name::Parse("www.example.nl");
  writer.WriteName(name);
  // 1+3 + 1+7 + 1+2 + 1 = 16 bytes.
  EXPECT_EQ(buf.size(), 16u);

  WireReader reader(buf);
  Name decoded;
  ASSERT_TRUE(reader.ReadName(decoded));
  EXPECT_EQ(decoded, name);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireNameTest, RootNameIsSingleByte) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteName(Name{});
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0u);
}

TEST(WireNameTest, SecondOccurrenceIsCompressed) {
  WireBuffer buf;
  WireWriter writer(buf);
  Name name = *Name::Parse("ns1.example.nl");
  writer.WriteName(name);
  std::size_t first_size = buf.size();
  writer.WriteName(name);
  // The whole second name collapses to one 2-byte pointer.
  EXPECT_EQ(buf.size(), first_size + 2);

  WireReader reader(buf);
  Name a, b;
  ASSERT_TRUE(reader.ReadName(a));
  ASSERT_TRUE(reader.ReadName(b));
  EXPECT_EQ(a, name);
  EXPECT_EQ(b, name);
}

TEST(WireNameTest, SharedSuffixIsCompressed) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteName(*Name::Parse("a.example.nl"));
  std::size_t first = buf.size();
  writer.WriteName(*Name::Parse("b.example.nl"));
  // Second name: 1+1 ("b") + 2 (pointer to "example.nl") = 4 bytes.
  EXPECT_EQ(buf.size() - first, 4u);

  WireReader reader(buf);
  Name a, b;
  ASSERT_TRUE(reader.ReadName(a));
  ASSERT_TRUE(reader.ReadName(b));
  EXPECT_EQ(b.ToString(), "b.example.nl");
}

TEST(WireNameTest, CompressionIsCaseInsensitive) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteName(*Name::Parse("EXAMPLE.NL"));
  std::size_t first = buf.size();
  writer.WriteName(*Name::Parse("example.nl"));
  EXPECT_EQ(buf.size() - first, 2u);
}

TEST(WireNameTest, CompressionDisabled) {
  WireBuffer buf;
  WireWriter writer(buf);
  Name name = *Name::Parse("sig.example.nl");
  writer.WriteName(name);
  std::size_t first = buf.size();
  writer.WriteName(name, /*compress=*/false);
  EXPECT_EQ(buf.size() - first, first);  // full copy
}

TEST(WireNameTest, RejectsPointerLoop) {
  // A name that points at itself.
  WireBuffer buf = {0xc0, 0x00};
  WireReader reader(buf);
  Name name;
  EXPECT_FALSE(reader.ReadName(name));
}

TEST(WireNameTest, RejectsMutualPointerLoop) {
  WireBuffer buf = {0xc0, 0x02, 0xc0, 0x00};
  WireReader reader(buf);
  Name name;
  EXPECT_FALSE(reader.ReadName(name));
}

TEST(WireNameTest, RejectsTruncatedLabel) {
  WireBuffer buf = {0x05, 'a', 'b'};  // label claims 5 bytes, only 2 present
  WireReader reader(buf);
  Name name;
  EXPECT_FALSE(reader.ReadName(name));
}

TEST(WireNameTest, RejectsMissingTerminator) {
  WireBuffer buf = {0x01, 'a'};  // no root byte, no pointer
  WireReader reader(buf);
  Name name;
  EXPECT_FALSE(reader.ReadName(name));
}

TEST(WireNameTest, RejectsReservedLabelType) {
  WireBuffer buf = {0x80, 0x01, 0x00};  // 0b10 label type is reserved
  WireReader reader(buf);
  Name name;
  EXPECT_FALSE(reader.ReadName(name));
}

TEST(WireNameTest, PointerToForwardOffsetTerminates) {
  // Pointer chain that walks forward then to a valid name; hop limit must
  // still let legitimate (if odd) encodings through.
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteName(*Name::Parse("x.nl"));        // offset 0
  buf.push_back(0xc0);                           // pointer at offset 6
  buf.push_back(0x00);
  WireReader reader(buf);
  ASSERT_TRUE(reader.Seek(6));
  Name name;
  ASSERT_TRUE(reader.ReadName(name));
  EXPECT_EQ(name.ToString(), "x.nl");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireNameTest, CursorResumesAfterPointer) {
  // name1, then [label "a" + pointer to name1], then a trailing u16; the
  // reader must resume right after the pointer.
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteName(*Name::Parse("example.nl"));
  writer.WriteName(*Name::Parse("a.example.nl"));
  writer.WriteU16(0x4242);

  WireReader reader(buf);
  Name n1, n2;
  ASSERT_TRUE(reader.ReadName(n1));
  ASSERT_TRUE(reader.ReadName(n2));
  std::uint16_t trailer = 0;
  ASSERT_TRUE(reader.ReadU16(trailer));
  EXPECT_EQ(trailer, 0x4242);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireNameTest, OffsetsBeyondPointerRangeAreNotCompressionTargets) {
  // Compression pointers address 14 bits (0x3fff). Names first written
  // past that offset must be emitted in full, and the whole buffer must
  // still decode.
  WireBuffer buf;
  WireWriter writer(buf);
  // Fill past 0x3fff with unique (incompressible) names.
  int i = 0;
  while (buf.size() <= 0x4000) {
    writer.WriteName(*Name::Parse("n" + std::to_string(i++) + ".filler"));
  }
  std::size_t late = buf.size();
  Name target = *Name::Parse("late-name.example");
  writer.WriteName(target);           // first occurrence, beyond 0x3fff
  std::size_t first_len = buf.size() - late;
  writer.WriteName(target);           // must NOT compress to an offset
                                      // beyond the pointer range
  std::size_t second_len = buf.size() - late - first_len;
  EXPECT_EQ(second_len, first_len);   // full copy, no pointer

  WireReader reader(buf);
  ASSERT_TRUE(reader.Seek(late));
  Name a, b;
  ASSERT_TRUE(reader.ReadName(a));
  ASSERT_TRUE(reader.ReadName(b));
  EXPECT_EQ(a, target);
  EXPECT_EQ(b, target);
}

TEST(WireNameTest, SuffixWrittenEarlyIsStillPointableLate) {
  WireBuffer buf;
  WireWriter writer(buf);
  Name target = *Name::Parse("early.example");
  writer.WriteName(target);  // offset 0: always pointable
  int i = 0;
  while (buf.size() <= 0x4000) {
    writer.WriteName(*Name::Parse("n" + std::to_string(i++) + ".filler"));
  }
  std::size_t late = buf.size();
  writer.WriteName(target);
  EXPECT_EQ(buf.size() - late, 2u);  // a single pointer back to offset 0

  WireReader reader(buf);
  ASSERT_TRUE(reader.Seek(late));
  Name decoded;
  ASSERT_TRUE(reader.ReadName(decoded));
  EXPECT_EQ(decoded, target);
}

TEST(WireWriterTest, PatchU16) {
  WireBuffer buf;
  WireWriter writer(buf);
  writer.WriteU16(0);
  writer.WriteU32(0x11223344);
  writer.PatchU16(0, 0xaabb);
  EXPECT_EQ(buf[0], 0xaa);
  EXPECT_EQ(buf[1], 0xbb);
  EXPECT_EQ(buf[2], 0x11);  // rest untouched
}

TEST(WireReaderTest, SeekAndSkip) {
  WireBuffer buf = {1, 2, 3, 4};
  WireReader reader(buf);
  EXPECT_TRUE(reader.Skip(2));
  std::uint8_t v = 0;
  ASSERT_TRUE(reader.ReadU8(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(reader.Seek(5));
  EXPECT_TRUE(reader.Seek(4));
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace clouddns::dns
