// Malformed-message corpus for the wire auditor and the Message parser.
//
// Every corpus entry is a hand-built byte string violating one RFC 1035
// structural rule. The parser must reject each without UB (this test runs
// under the ASan/UBSan matrix in CI), and audit::CheckWire must name a
// violation. The parser is required to be at least as strict as the
// auditor — the CLOUDDNS_AUDIT decode hook aborts on any accepted
// message the auditor rejects, so a divergence is a parser bug by
// definition, and the mutation fuzzers in message_test.cc sweep for one
// on every audit-enabled run.
#include "dns/audit.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dns/message.h"

namespace clouddns::dns {
namespace {

WireBuffer Bytes(std::initializer_list<int> values) {
  WireBuffer out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

void AppendU16(WireBuffer& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

/// 12-byte header with the given section counts.
WireBuffer HeaderBytes(std::uint16_t qd, std::uint16_t an, std::uint16_t ns,
                       std::uint16_t ar) {
  WireBuffer out;
  AppendU16(out, 0x1234);  // id
  AppendU16(out, 0x0000);  // flags
  AppendU16(out, qd);
  AppendU16(out, an);
  AppendU16(out, ns);
  AppendU16(out, ar);
  return out;
}

void Append(WireBuffer& out, const WireBuffer& tail) {
  out.insert(out.end(), tail.begin(), tail.end());
}

TEST(WireAuditTest, WellFormedQueryPasses) {
  Message query = Message::MakeQuery(7, *Name::Parse("www.example.nl"),
                                     RrType::kA, EdnsInfo{1232, true, 0});
  WireBuffer wire = query.Encode();
  EXPECT_EQ(audit::CheckWire(wire), std::nullopt);
  EXPECT_TRUE(Message::Decode(wire).has_value());
}

TEST(WireAuditTest, CompressedResponsePasses) {
  Message query = Message::MakeQuery(7, *Name::Parse("www.example.nl"),
                                     RrType::kA);
  Message response = Message::MakeResponse(query);
  response.answers.push_back(
      MakeA(*Name::Parse("www.example.nl"), net::Ipv4Address(192, 0, 2, 1), 60));
  response.authorities.push_back(
      MakeNs(*Name::Parse("example.nl"), *Name::Parse("ns1.example.nl"), 60));
  WireBuffer wire = response.Encode();
  EXPECT_EQ(audit::CheckWire(wire), std::nullopt);
  EXPECT_TRUE(Message::Decode(wire).has_value());
}

TEST(WireAuditTest, TruncatedHeaderRejected) {
  WireBuffer wire = Bytes({0x12, 0x34, 0x00, 0x00, 0x00});
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("header truncated"),
            std::string::npos);
}

TEST(WireAuditTest, TruncatedQuestionRejected) {
  WireBuffer wire = HeaderBytes(1, 0, 0, 0);  // promises a question, has none
  EXPECT_FALSE(Message::Decode(wire).has_value());
  EXPECT_TRUE(audit::CheckWire(wire).has_value());
}

TEST(WireAuditTest, SelfReferencingCompressionPointerRejected) {
  WireBuffer wire = HeaderBytes(1, 0, 0, 0);
  Append(wire, Bytes({0xc0, 0x0c}));  // pointer to offset 12 = itself
  AppendU16(wire, 1);                 // qtype A
  AppendU16(wire, 1);                 // class IN
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("not strictly earlier"),
            std::string::npos);
}

TEST(WireAuditTest, PingPongCompressionLoopRejected) {
  WireBuffer wire = HeaderBytes(1, 0, 0, 0);
  Append(wire, Bytes({0xc0, 0x0e,    // offset 12 -> 14
                      0xc0, 0x0c})); // offset 14 -> 12
  AppendU16(wire, 1);
  AppendU16(wire, 1);
  EXPECT_FALSE(Message::Decode(wire).has_value());
  EXPECT_TRUE(audit::CheckWire(wire).has_value());
}

TEST(WireAuditTest, ReservedLabelTypeRejected) {
  // Length byte 0x64 sets the reserved 01 high bits (a >63 "label").
  WireBuffer wire = HeaderBytes(1, 0, 0, 0);
  Append(wire, Bytes({0x64, 'a', 'b', 0x00}));
  AppendU16(wire, 1);
  AppendU16(wire, 1);
  EXPECT_FALSE(Message::Decode(wire).has_value());
  EXPECT_TRUE(audit::CheckWire(wire).has_value());
}

TEST(WireAuditTest, OverlongNameRejected) {
  // Five 63-byte labels: 5 * 64 + 1 = 321 wire bytes, over the 255 cap.
  WireBuffer wire = HeaderBytes(1, 0, 0, 0);
  for (int label = 0; label < 5; ++label) {
    wire.push_back(63);
    for (int i = 0; i < 63; ++i) wire.push_back('a');
  }
  wire.push_back(0);
  AppendU16(wire, 1);
  AppendU16(wire, 1);
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("255"), std::string::npos);
}

TEST(WireAuditTest, RdlengthOverrunRejected) {
  WireBuffer wire = HeaderBytes(0, 1, 0, 0);
  wire.push_back(0x00);     // root owner
  AppendU16(wire, 1);       // type A
  AppendU16(wire, 1);       // class IN
  AppendU16(wire, 0);       // ttl hi
  AppendU16(wire, 60);      // ttl lo
  AppendU16(wire, 100);     // RDLENGTH far past the end
  Append(wire, Bytes({1, 2, 3, 4}));
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("RDLENGTH"), std::string::npos);
}

TEST(WireAuditTest, RdlengthLargerThanEncodedRdataRejectedByParser) {
  // RDLENGTH says 10 but the NS rdata name is 3 bytes; the parser enforces
  // exact consumption. Structurally the bytes stay in bounds, so this is
  // the parser's check rather than the auditor's.
  WireBuffer wire = HeaderBytes(0, 1, 0, 0);
  wire.push_back(0x00);  // root owner
  AppendU16(wire, 2);    // type NS
  AppendU16(wire, 1);
  AppendU16(wire, 0);
  AppendU16(wire, 60);
  AppendU16(wire, 10);  // RDLENGTH
  Append(wire, Bytes({0x01, 'a', 0x00, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_FALSE(Message::Decode(wire).has_value());
}

TEST(WireAuditTest, DuplicateOptRejected) {
  WireBuffer wire = HeaderBytes(0, 0, 0, 2);
  for (int i = 0; i < 2; ++i) {
    wire.push_back(0x00);   // root owner
    AppendU16(wire, 41);    // OPT
    AppendU16(wire, 4096);  // class = udp size
    AppendU16(wire, 0);
    AppendU16(wire, 0);
    AppendU16(wire, 0);     // RDLENGTH 0
  }
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("duplicate OPT"), std::string::npos);
}

WireBuffer OptInAnswerSection() {
  WireBuffer wire = HeaderBytes(0, 1, 0, 0);
  wire.push_back(0x00);
  AppendU16(wire, 41);
  AppendU16(wire, 4096);
  AppendU16(wire, 0);
  AppendU16(wire, 0);
  AppendU16(wire, 0);
  return wire;
}

WireBuffer OptWithNonRootOwner() {
  WireBuffer wire = HeaderBytes(0, 0, 0, 1);
  Append(wire, Bytes({0x01, 'x', 0x00}));  // owner "x." — RFC 6891 violation
  AppendU16(wire, 41);
  AppendU16(wire, 4096);
  AppendU16(wire, 0);
  AppendU16(wire, 0);
  AppendU16(wire, 0);
  return wire;
}

TEST(WireAuditTest, OptPlacementRejected) {
  for (const WireBuffer& wire : {OptInAnswerSection(), OptWithNonRootOwner()}) {
    EXPECT_FALSE(Message::Decode(wire).has_value());
    ASSERT_TRUE(audit::CheckWire(wire).has_value());
    EXPECT_NE(audit::CheckWire(wire)->find("OPT"), std::string::npos);
  }
}

TEST(WireAuditTest, TrailingBytesRejected) {
  Message query = Message::MakeQuery(7, *Name::Parse("example.nl"),
                                     RrType::kA);
  WireBuffer wire = query.Encode();
  Append(wire, Bytes({0xde, 0xad}));
  EXPECT_FALSE(Message::Decode(wire).has_value());
  ASSERT_TRUE(audit::CheckWire(wire).has_value());
  EXPECT_NE(audit::CheckWire(wire)->find("trailing"), std::string::npos);
}

TEST(WireAuditTest, AuditHookAbortsWithDump) {
  if (!audit::Enabled()) {
    GTEST_SKIP() << "audit hook not compiled in (build with CLOUDDNS_AUDIT)";
  }
  WireBuffer bad = HeaderBytes(1, 0, 0, 0);  // promises a question, has none
  EXPECT_DEATH(audit::Audit(bad, "audit_test"), "wire audit failure");
}

}  // namespace
}  // namespace clouddns::dns
