// Parameterized property sweep: for every supported RDATA type, randomly
// generated records must survive a full message encode/decode round trip,
// both alone and packed into multi-record responses with name compression.
#include <gtest/gtest.h>

#include <random>

#include "dns/message.h"

namespace clouddns::dns {
namespace {

class RdataRoundTripTest : public ::testing::TestWithParam<RrType> {
 protected:
  std::mt19937_64 rng_{20201027};

  std::string RandomLabel(std::size_t max_len) {
    std::size_t len = 1 + rng_() % max_len;
    std::string label;
    for (std::size_t i = 0; i < len; ++i) {
      label += static_cast<char>('a' + rng_() % 26);
    }
    return label;
  }

  Name RandomName() {
    std::vector<std::string> labels;
    std::size_t count = 1 + rng_() % 4;
    for (std::size_t i = 0; i < count; ++i) labels.push_back(RandomLabel(12));
    return Name::FromLabels(std::move(labels));
  }

  std::vector<std::uint8_t> RandomBytes(std::size_t max_len) {
    std::vector<std::uint8_t> bytes(1 + rng_() % max_len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng_());
    return bytes;
  }

  Rdata RandomRdata(RrType type) {
    switch (type) {
      case RrType::kA:
        return ARdata{net::Ipv4Address(static_cast<std::uint32_t>(rng_()))};
      case RrType::kAaaa: {
        net::Ipv6Address::Bytes bytes;
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng_());
        return AaaaRdata{net::Ipv6Address(bytes)};
      }
      case RrType::kNs:
        return NsRdata{RandomName()};
      case RrType::kCname:
        return CnameRdata{RandomName()};
      case RrType::kPtr:
        return PtrRdata{RandomName()};
      case RrType::kMx:
        return MxRdata{static_cast<std::uint16_t>(rng_()), RandomName()};
      case RrType::kTxt: {
        TxtRdata txt;
        std::size_t strings = 1 + rng_() % 3;
        for (std::size_t i = 0; i < strings; ++i) {
          txt.strings.push_back(RandomLabel(40));
        }
        return txt;
      }
      case RrType::kSoa: {
        SoaRdata soa;
        soa.mname = RandomName();
        soa.rname = RandomName();
        soa.serial = static_cast<std::uint32_t>(rng_());
        soa.refresh = static_cast<std::uint32_t>(rng_());
        soa.retry = static_cast<std::uint32_t>(rng_());
        soa.expire = static_cast<std::uint32_t>(rng_());
        soa.minimum = static_cast<std::uint32_t>(rng_());
        return soa;
      }
      case RrType::kSrv:
        return SrvRdata{static_cast<std::uint16_t>(rng_()),
                        static_cast<std::uint16_t>(rng_()),
                        static_cast<std::uint16_t>(rng_()), RandomName()};
      case RrType::kDs:
        return DsRdata{static_cast<std::uint16_t>(rng_()),
                       static_cast<std::uint8_t>(rng_()),
                       static_cast<std::uint8_t>(rng_()), RandomBytes(48)};
      case RrType::kDnskey:
        return DnskeyRdata{static_cast<std::uint16_t>(rng_()), 3,
                           static_cast<std::uint8_t>(rng_()),
                           RandomBytes(260)};
      case RrType::kRrsig: {
        RrsigRdata sig;
        sig.type_covered = static_cast<std::uint16_t>(rng_() % 260);
        sig.algorithm = static_cast<std::uint8_t>(rng_());
        sig.labels = static_cast<std::uint8_t>(rng_() % 5);
        sig.original_ttl = static_cast<std::uint32_t>(rng_());
        sig.expiration = static_cast<std::uint32_t>(rng_());
        sig.inception = static_cast<std::uint32_t>(rng_());
        sig.key_tag = static_cast<std::uint16_t>(rng_());
        sig.signer = RandomName();
        sig.signature = RandomBytes(260);
        return sig;
      }
      case RrType::kNsec: {
        NsecRdata nsec;
        nsec.next = RandomName();
        std::size_t types = 1 + rng_() % 6;
        for (std::size_t i = 0; i < types; ++i) {
          nsec.types.push_back(static_cast<RrType>(1 + rng_() % 255));
        }
        std::sort(nsec.types.begin(), nsec.types.end());
        nsec.types.erase(std::unique(nsec.types.begin(), nsec.types.end()),
                         nsec.types.end());
        return nsec;
      }
      case RrType::kNsec3: {
        Nsec3Rdata nsec3;
        nsec3.hash_algorithm = 1;
        nsec3.flags = static_cast<std::uint8_t>(rng_() % 2);
        nsec3.iterations = static_cast<std::uint16_t>(rng_() % 100);
        nsec3.salt = RandomBytes(8);
        nsec3.next_hashed_owner = RandomBytes(20);
        std::size_t types = 1 + rng_() % 4;
        for (std::size_t i = 0; i < types; ++i) {
          nsec3.types.push_back(static_cast<RrType>(1 + rng_() % 255));
        }
        std::sort(nsec3.types.begin(), nsec3.types.end());
        nsec3.types.erase(
            std::unique(nsec3.types.begin(), nsec3.types.end()),
            nsec3.types.end());
        return nsec3;
      }
      case RrType::kNsec3Param:
        return Nsec3ParamRdata{1, 0, static_cast<std::uint16_t>(rng_() % 100),
                               RandomBytes(8)};
      default:
        return RawRdata{RandomBytes(64)};
    }
  }
};

TEST_P(RdataRoundTripTest, SurvivesSingleRecordMessage) {
  for (int round = 0; round < 50; ++round) {
    ResourceRecord rr;
    rr.name = RandomName();
    rr.type = GetParam();
    rr.ttl = static_cast<std::uint32_t>(rng_());
    rr.rdata = RandomRdata(GetParam());

    Message msg;
    msg.header.id = static_cast<std::uint16_t>(rng_());
    msg.header.qr = true;
    msg.questions.push_back(Question{rr.name, rr.type, RrClass::kIn});
    msg.answers.push_back(rr);

    auto decoded = Message::Decode(msg.Encode());
    ASSERT_TRUE(decoded.has_value()) << ToString(GetParam());
    ASSERT_EQ(decoded->answers.size(), 1u);
    EXPECT_EQ(decoded->answers[0], rr) << ToString(GetParam());
  }
}

TEST_P(RdataRoundTripTest, SurvivesPackedMultiRecordMessage) {
  for (int round = 0; round < 10; ++round) {
    Message msg;
    msg.header.qr = true;
    Name shared_suffix = RandomName();
    msg.questions.push_back(
        Question{shared_suffix, GetParam(), RrClass::kIn});
    // Several records under a shared suffix exercise compression pointers.
    for (int i = 0; i < 5; ++i) {
      ResourceRecord rr;
      rr.name = shared_suffix.Child(RandomLabel(8));
      rr.type = GetParam();
      rr.ttl = static_cast<std::uint32_t>(rng_());
      rr.rdata = RandomRdata(GetParam());
      msg.answers.push_back(std::move(rr));
    }
    auto decoded = Message::Decode(msg.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->answers, msg.answers) << ToString(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataRoundTripTest,
    ::testing::Values(RrType::kA, RrType::kAaaa, RrType::kNs, RrType::kCname,
                      RrType::kPtr, RrType::kMx, RrType::kTxt, RrType::kSoa,
                      RrType::kSrv, RrType::kDs, RrType::kDnskey,
                      RrType::kRrsig, RrType::kNsec, RrType::kNsec3,
                      RrType::kNsec3Param),
    [](const ::testing::TestParamInfo<RrType>& info) {
      return std::string(ToString(info.param));
    });

}  // namespace
}  // namespace clouddns::dns
