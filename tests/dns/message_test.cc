#include "dns/message.h"

#include <gtest/gtest.h>

#include <random>

namespace clouddns::dns {
namespace {

TEST(MessageTest, QueryRoundTrip) {
  Message query = Message::MakeQuery(0x1234, *Name::Parse("example.nl"),
                                     RrType::kA, EdnsInfo{1232, true, 0});
  WireBuffer wire = query.Encode();
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, query);
  EXPECT_EQ(decoded->header.id, 0x1234);
  ASSERT_TRUE(decoded->edns.has_value());
  EXPECT_EQ(decoded->edns->udp_payload_size, 1232);
  EXPECT_TRUE(decoded->edns->dnssec_ok);
}

TEST(MessageTest, QueryWithoutEdnsRoundTrip) {
  Message query =
      Message::MakeQuery(7, *Name::Parse("example.nz"), RrType::kAaaa);
  auto decoded = Message::Decode(query.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->edns.has_value());
  EXPECT_EQ(decoded->questions[0].type, RrType::kAaaa);
}

TEST(MessageTest, ResponseRoundTripWithAllSections) {
  Message query = Message::MakeQuery(42, *Name::Parse("www.example.nl"),
                                     RrType::kA, EdnsInfo{4096, false, 0});
  Message resp = Message::MakeResponse(query);
  resp.header.aa = true;
  resp.answers.push_back(
      MakeA(*Name::Parse("www.example.nl"), net::Ipv4Address(192, 0, 2, 1), 300));
  resp.authorities.push_back(
      MakeNs(*Name::Parse("example.nl"), *Name::Parse("ns1.example.nl"), 3600));
  resp.additionals.push_back(
      MakeA(*Name::Parse("ns1.example.nl"), net::Ipv4Address(192, 0, 2, 53), 3600));

  auto decoded = Message::Decode(resp.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, resp);
  EXPECT_TRUE(decoded->header.qr);
  EXPECT_TRUE(decoded->header.aa);
  EXPECT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->authorities.size(), 1u);
  EXPECT_EQ(decoded->additionals.size(), 1u);
}

TEST(MessageTest, MakeResponseEchoesQuestionAndId) {
  Message query = Message::MakeQuery(99, *Name::Parse("nl"), RrType::kSoa,
                                     EdnsInfo{512, true, 0});
  Message resp = Message::MakeResponse(query);
  EXPECT_EQ(resp.header.id, 99);
  EXPECT_TRUE(resp.header.qr);
  ASSERT_EQ(resp.questions.size(), 1u);
  EXPECT_EQ(resp.questions[0], query.questions[0]);
  ASSERT_TRUE(resp.edns.has_value());
  EXPECT_TRUE(resp.edns->dnssec_ok);  // DO bit echoed
}

TEST(MessageTest, RcodeAndFlagsSurvive) {
  Message msg = Message::MakeQuery(1, *Name::Parse("junk.example"), RrType::kA);
  msg.header.qr = true;
  msg.header.rcode = Rcode::kNxDomain;
  msg.header.ra = true;
  auto decoded = Message::Decode(msg.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(decoded->header.ra);
}

TEST(MessageTest, TruncationDropsSectionsAndSetsTc) {
  Message resp = Message::MakeQuery(5, *Name::Parse("big.example.nl"),
                                    RrType::kTxt, EdnsInfo{512, false, 0});
  resp.header.qr = true;
  for (int i = 0; i < 40; ++i) {
    resp.answers.push_back(MakeTxt(*Name::Parse("big.example.nl"),
                                   std::string(50, 'x'), 60));
  }
  bool truncated = false;
  WireBuffer wire = resp.EncodeWithLimit(512, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_LE(wire.size(), 512u);

  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.tc);
  EXPECT_TRUE(decoded->answers.empty());
  // Question and EDNS survive truncation.
  EXPECT_EQ(decoded->questions.size(), 1u);
  EXPECT_TRUE(decoded->edns.has_value());
}

TEST(MessageTest, NoTruncationWhenFits) {
  Message resp = Message::MakeQuery(5, *Name::Parse("example.nl"), RrType::kA);
  resp.header.qr = true;
  resp.answers.push_back(
      MakeA(*Name::Parse("example.nl"), net::Ipv4Address(1, 2, 3, 4), 60));
  bool truncated = true;
  WireBuffer wire = resp.EncodeWithLimit(512, &truncated);
  EXPECT_FALSE(truncated);
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->header.tc);
  EXPECT_EQ(decoded->answers.size(), 1u);
}

TEST(MessageTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Message::Decode(WireBuffer{}).has_value());
  EXPECT_FALSE(Message::Decode(WireBuffer{1, 2, 3}).has_value());
  // Header claims a question that is not present.
  WireBuffer lying = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(Message::Decode(lying).has_value());
}

TEST(MessageTest, DecodeRejectsDuplicateOpt) {
  Message query = Message::MakeQuery(1, *Name::Parse("example.nl"), RrType::kA,
                                     EdnsInfo{4096, false, 0});
  WireBuffer wire = query.Encode();
  // Append a second OPT record and bump ARCOUNT.
  WireWriter writer(wire);
  writer.WriteU8(0);  // root name
  writer.WriteU16(static_cast<std::uint16_t>(RrType::kOpt));
  writer.WriteU16(4096);
  writer.WriteU32(0);
  writer.WriteU16(0);
  wire[11] = 2;  // ARCOUNT low byte
  EXPECT_FALSE(Message::Decode(wire).has_value());
}

TEST(MessageTest, DecodeNeverCrashesOnMutatedInput) {
  // Property test: take a valid message, flip random bytes, and require
  // Decode to either fail cleanly or produce a message that re-encodes.
  Message resp = Message::MakeQuery(77, *Name::Parse("www.example.nl"),
                                    RrType::kA, EdnsInfo{1232, true, 0});
  resp.header.qr = true;
  resp.answers.push_back(
      MakeA(*Name::Parse("www.example.nl"), net::Ipv4Address(192, 0, 2, 1), 300));
  resp.authorities.push_back(
      MakeNs(*Name::Parse("example.nl"), *Name::Parse("ns1.example.nl"), 3600));
  WireBuffer base = resp.Encode();

  std::mt19937_64 rng(1035);
  for (int i = 0; i < 2000; ++i) {
    WireBuffer mutated = base;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    auto decoded = Message::Decode(mutated);
    if (decoded) {
      (void)decoded->Encode();  // must not throw
    }
  }
}

TEST(MessageTest, DecodeNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(4096);
  for (int i = 0; i < 2000; ++i) {
    WireBuffer noise(rng() % 128);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    auto decoded = Message::Decode(noise);
    if (decoded) (void)decoded->Encode();
  }
}

TEST(MessageTest, ToStringMentionsKeyFacts) {
  Message query = Message::MakeQuery(3, *Name::Parse("example.nz"),
                                     RrType::kNs, EdnsInfo{1232, false, 0});
  std::string text = query.ToString();
  EXPECT_NE(text.find("example.nz"), std::string::npos);
  EXPECT_NE(text.find("NS"), std::string::npos);
  EXPECT_NE(text.find("1232"), std::string::npos);
}

TEST(MessageTest, CompressionShrinksRealResponses) {
  Message resp;
  resp.header.qr = true;
  resp.questions.push_back(Question{*Name::Parse("www.example.nl"), RrType::kA,
                                    RrClass::kIn});
  for (int i = 0; i < 4; ++i) {
    resp.authorities.push_back(MakeNs(*Name::Parse("example.nl"),
                                      *Name::Parse("ns" + std::to_string(i) +
                                                   ".example.nl"),
                                      3600));
  }
  WireBuffer wire = resp.Encode();
  // Without compression each NS would repeat "example.nl" twice; with it the
  // whole message stays well under the naive size.
  std::size_t naive = 12;
  naive += resp.questions[0].name.WireLength() + 4;
  for (const auto& rr : resp.authorities) {
    naive += rr.name.WireLength() + 10 +
             std::get<NsRdata>(rr.rdata).nameserver.WireLength();
  }
  EXPECT_LT(wire.size(), naive - 30);
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->authorities.size(), 4u);
}


TEST(MessageTest, MutatedSurvivorsReencodeStablyAndReuseMatchesFresh) {
  // Two regressions for the pooled decode path. (1) Mutants that Decode
  // accepts must reach a re-encode fixed point: Encode(Decode(Encode(m)))
  // is bit-identical to Encode(m) — the encoder is a canonicalizer, so one
  // round trip must normalize fully. (2) DecodeInto into a reused (dirty)
  // message must agree exactly with a fresh Decode, including after the
  // reused message was left in the unspecified post-failure state.
  Message resp = Message::MakeQuery(77, *Name::Parse("www.example.nl"),
                                    RrType::kA, EdnsInfo{1232, true, 0});
  resp.header.qr = true;
  resp.answers.push_back(MakeA(*Name::Parse("www.example.nl"),
                               net::Ipv4Address(192, 0, 2, 1), 300));
  resp.authorities.push_back(
      MakeNs(*Name::Parse("example.nl"), *Name::Parse("ns1.example.nl"), 3600));
  WireBuffer base = resp.Encode();

  Message reused;  // deliberately carries state across iterations
  std::mt19937_64 rng(8767);
  int survivors = 0;
  for (int i = 0; i < 2000; ++i) {
    WireBuffer mutated = base;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    auto fresh = Message::Decode(mutated);
    const bool reused_ok =
        Message::DecodeInto(mutated.data(), mutated.size(), reused);
    ASSERT_EQ(reused_ok, fresh.has_value());
    if (!fresh) continue;
    ++survivors;
    EXPECT_EQ(reused, *fresh);

    WireBuffer first = fresh->Encode();
    auto redecoded = Message::Decode(first);
    ASSERT_TRUE(redecoded.has_value());
    EXPECT_EQ(redecoded->Encode(), first);
  }
  // The flip distribution must actually produce survivors, or the test
  // is vacuous.
  EXPECT_GT(survivors, 0);
}

}  // namespace
}  // namespace clouddns::dns
