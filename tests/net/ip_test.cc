#include "net/ip.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

namespace clouddns::net {
namespace {

TEST(Ipv4AddressTest, ParsesDottedQuad) {
  auto addr = Ipv4Address::Parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->octet(0), 192);
  EXPECT_EQ(addr->octet(1), 0);
  EXPECT_EQ(addr->octet(2), 2);
  EXPECT_EQ(addr->octet(3), 1);
  EXPECT_EQ(addr->bits(), 0xc0000201u);
}

TEST(Ipv4AddressTest, ParsesBoundaryValues) {
  EXPECT_TRUE(Ipv4Address::Parse("0.0.0.0").has_value());
  EXPECT_TRUE(Ipv4Address::Parse("255.255.255.255").has_value());
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->bits(), 0xffffffffu);
}

TEST(Ipv4AddressTest, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.04").has_value());  // leading zero
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("-1.2.3.4").has_value());
}

TEST(Ipv4AddressTest, FormatRoundTrip) {
  Ipv4Address addr(10, 20, 30, 40);
  EXPECT_EQ(addr.ToString(), "10.20.30.40");
  EXPECT_EQ(Ipv4Address::Parse(addr.ToString()), addr);
}

TEST(Ipv4AddressTest, ByteRoundTrip) {
  Ipv4Address addr(1, 2, 3, 4);
  EXPECT_EQ(Ipv4Address::FromBytes(addr.ToBytes()), addr);
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_LT(Ipv4Address(1, 0, 0, 1), Ipv4Address(1, 0, 0, 2));
}

TEST(Ipv6AddressTest, ParsesFullForm) {
  auto addr = Ipv6Address::Parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->group(0), 0x2001);
  EXPECT_EQ(addr->group(1), 0x0db8);
  EXPECT_EQ(addr->group(7), 0x0001);
}

TEST(Ipv6AddressTest, ParsesCompressedForms) {
  EXPECT_EQ(Ipv6Address::Parse("::")->ToString(), "::");
  EXPECT_EQ(Ipv6Address::Parse("::1")->ToString(), "::1");
  EXPECT_EQ(Ipv6Address::Parse("2001:db8::")->ToString(), "2001:db8::");
  EXPECT_EQ(Ipv6Address::Parse("2001:db8::1")->ToString(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address::Parse("fe80::1:2:3")->group(0), 0xfe80);
}

TEST(Ipv6AddressTest, ParsesEmbeddedIpv4) {
  auto addr = Ipv6Address::Parse("::ffff:192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->group(5), 0xffff);
  EXPECT_EQ(addr->group(6), 0xc000);
  EXPECT_EQ(addr->group(7), 0x0201);
}

TEST(Ipv6AddressTest, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv6Address::Parse("").has_value());
  EXPECT_FALSE(Ipv6Address::Parse(":").has_value());
  EXPECT_FALSE(Ipv6Address::Parse(":::").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("12345::").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("g::1").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:8::").has_value());
  // "::" must compress at least one group.
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4::5:6:7:8").has_value());
}

TEST(Ipv6AddressTest, CanonicalFormCompressesLongestRun) {
  // Two zero runs: the longer one is compressed.
  EXPECT_EQ(Ipv6Address::Parse("2001:0:0:1:0:0:0:1")->ToString(),
            "2001:0:0:1::1");
  // Equal runs: the first is compressed.
  EXPECT_EQ(Ipv6Address::Parse("2001:0:0:1:2:0:0:1")->ToString(),
            "2001::1:2:0:0:1");
  // A single zero group is not compressed.
  EXPECT_EQ(Ipv6Address::Parse("2001:db8:0:1:1:1:1:1")->ToString(),
            "2001:db8:0:1:1:1:1:1");
}

TEST(Ipv6AddressTest, ParseFormatRoundTripRandomized) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    std::array<std::uint16_t, 8> groups;
    for (auto& g : groups) {
      // Bias towards zeros so compression paths get exercised.
      g = (rng() % 3 == 0) ? 0 : static_cast<std::uint16_t>(rng());
    }
    Ipv6Address addr = Ipv6Address::FromGroups(groups);
    auto reparsed = Ipv6Address::Parse(addr.ToString());
    ASSERT_TRUE(reparsed.has_value()) << addr.ToString();
    EXPECT_EQ(*reparsed, addr) << addr.ToString();
  }
}

TEST(IpAddressTest, ParsesEitherFamily) {
  auto v4 = IpAddress::Parse("198.51.100.7");
  ASSERT_TRUE(v4.has_value());
  EXPECT_TRUE(v4->is_v4());
  auto v6 = IpAddress::Parse("2001:db8::7");
  ASSERT_TRUE(v6.has_value());
  EXPECT_TRUE(v6->is_v6());
  EXPECT_FALSE(IpAddress::Parse("not-an-ip").has_value());
}

TEST(IpAddressTest, BitExtraction) {
  IpAddress v4(Ipv4Address(0x80000001u));
  EXPECT_TRUE(v4.bit(0));
  EXPECT_FALSE(v4.bit(1));
  EXPECT_TRUE(v4.bit(31));
  EXPECT_EQ(v4.bit_width(), 32);

  auto v6 = IpAddress::Parse("8000::1");
  ASSERT_TRUE(v6.has_value());
  EXPECT_TRUE(v6->bit(0));
  EXPECT_FALSE(v6->bit(1));
  EXPECT_TRUE(v6->bit(127));
  EXPECT_EQ(v6->bit_width(), 128);
}

TEST(IpAddressTest, V4AndV6NeverCompareEqual) {
  IpAddress v4(Ipv4Address(0));
  IpAddress v6((Ipv6Address()));
  EXPECT_NE(v4, v6);
}

TEST(IpAddressTest, HashSpreadsAndMatchesEquality) {
  IpAddressHash hash;
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(hash(IpAddress(Ipv4Address(i))));
  }
  // FNV over distinct inputs should nearly never collide at this scale.
  EXPECT_GT(hashes.size(), 995u);
  EXPECT_EQ(hash(IpAddress(Ipv4Address(42))), hash(IpAddress(Ipv4Address(42))));
}

TEST(EndpointTest, Formatting) {
  Endpoint v4{IpAddress(Ipv4Address(192, 0, 2, 1)), 53};
  EXPECT_EQ(v4.ToString(), "192.0.2.1:53");
  Endpoint v6{*IpAddress::Parse("2001:db8::1"), 853};
  EXPECT_EQ(v6.ToString(), "[2001:db8::1]:853");
}

}  // namespace
}  // namespace clouddns::net
