#include "net/asdb.h"

#include <gtest/gtest.h>

namespace clouddns::net {
namespace {

TEST(AsDatabaseTest, BasicOriginLookup) {
  AsDatabase db;
  db.AddAs(15169, "GOOGLE");
  db.Announce(*Prefix::Parse("8.8.8.0/24"), 15169);
  db.Announce(*Prefix::Parse("2001:4860::/32"), 15169);

  EXPECT_EQ(db.OriginAs(*IpAddress::Parse("8.8.8.8")), 15169u);
  EXPECT_EQ(db.OriginAs(*IpAddress::Parse("2001:4860::8888")), 15169u);
  EXPECT_FALSE(db.OriginAs(*IpAddress::Parse("9.9.9.9")).has_value());
}

TEST(AsDatabaseTest, MoreSpecificAnnouncementWins) {
  AsDatabase db;
  db.AddAs(100, "BIG-ISP");
  db.AddAs(200, "CUSTOMER");
  db.Announce(*Prefix::Parse("100.64.0.0/10"), 100);
  db.Announce(*Prefix::Parse("100.64.7.0/24"), 200);

  EXPECT_EQ(db.OriginAs(*IpAddress::Parse("100.64.7.1")), 200u);
  EXPECT_EQ(db.OriginAs(*IpAddress::Parse("100.64.8.1")), 100u);
}

TEST(AsDatabaseTest, AnnounceUnknownAsnThrows) {
  AsDatabase db;
  EXPECT_THROW(db.Announce(*Prefix::Parse("10.0.0.0/8"), 42),
               std::invalid_argument);
}

TEST(AsDatabaseTest, InfoAndCounts) {
  AsDatabase db;
  db.AddAs(13335, "CLOUDFLARE");
  db.AddAs(32934, "FACEBOOK");
  db.Announce(*Prefix::Parse("1.1.1.0/24"), 13335);
  db.Announce(*Prefix::Parse("1.0.0.0/24"), 13335);

  EXPECT_EQ(db.as_count(), 2u);
  EXPECT_EQ(db.prefix_count(), 2u);
  ASSERT_NE(db.Info(13335), nullptr);
  EXPECT_EQ(db.Info(13335)->org, "CLOUDFLARE");
  EXPECT_EQ(db.Info(7777), nullptr);
  EXPECT_EQ(db.PrefixesOf(13335).size(), 2u);
  EXPECT_TRUE(db.PrefixesOf(32934).empty());
}

TEST(AsDatabaseTest, AddAsIsIdempotent) {
  AsDatabase db;
  db.AddAs(15169, "GOOGLE");
  db.AddAs(15169, "GOOGLE-AGAIN");
  EXPECT_EQ(db.as_count(), 1u);
  EXPECT_EQ(db.Info(15169)->org, "GOOGLE");
}

}  // namespace
}  // namespace clouddns::net
