#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace clouddns::net {
namespace {

TEST(PrefixTrieTest, EmptyTrieMatchesNothing) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.Lookup(*IpAddress::Parse("1.2.3.4")).has_value());
}

TEST(PrefixTrieTest, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 24);

  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("10.1.2.3")), 24);
  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("10.1.9.9")), 16);
  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("10.9.9.9")), 8);
  EXPECT_FALSE(trie.Lookup(*IpAddress::Parse("11.0.0.1")).has_value());
}

TEST(PrefixTrieTest, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("0.0.0.0/0"), 1);
  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("203.0.113.9")), 1);
}

TEST(PrefixTrieTest, InsertOverwritesSamePrefix) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("10.0.0.1")), 2);
}

TEST(PrefixTrieTest, HostRoutes) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("192.0.2.1/32"), 1);
  EXPECT_EQ(trie.Lookup(*IpAddress::Parse("192.0.2.1")), 1);
  EXPECT_FALSE(trie.Lookup(*IpAddress::Parse("192.0.2.2")).has_value());
}

TEST(PrefixTrieTest, LookupExact) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.LookupExact(*Prefix::Parse("10.0.0.0/8")), 8);
  EXPECT_FALSE(trie.LookupExact(*Prefix::Parse("10.0.0.0/9")).has_value());
  EXPECT_FALSE(trie.LookupExact(*Prefix::Parse("10.0.0.0/7")).has_value());
}

TEST(PrefixMapTest, KeepsFamiliesSeparate) {
  PrefixMap<int> map;
  map.Insert(*Prefix::Parse("0.0.0.0/0"), 4);
  map.Insert(*Prefix::Parse("::/0"), 6);
  EXPECT_EQ(map.Lookup(*IpAddress::Parse("1.2.3.4")), 4);
  EXPECT_EQ(map.Lookup(*IpAddress::Parse("2001:db8::1")), 6);
  EXPECT_EQ(map.size(), 2u);
}

TEST(PrefixMapTest, V6LongestPrefix) {
  PrefixMap<int> map;
  map.Insert(*Prefix::Parse("2001:db8::/32"), 32);
  map.Insert(*Prefix::Parse("2001:db8:1::/48"), 48);
  EXPECT_EQ(map.Lookup(*IpAddress::Parse("2001:db8:1::5")), 48);
  EXPECT_EQ(map.Lookup(*IpAddress::Parse("2001:db8:2::5")), 32);
  EXPECT_FALSE(map.Lookup(*IpAddress::Parse("2001:db9::1")).has_value());
}

// Property test: the trie must agree with a brute-force linear scan over
// random prefix sets and random probe addresses.
TEST(PrefixTrieTest, AgreesWithLinearScanOnRandomInput) {
  std::mt19937_64 rng(20201027);
  for (int round = 0; round < 20; ++round) {
    PrefixTrie<int> trie;
    std::vector<std::pair<Prefix, int>> prefixes;
    for (int i = 0; i < 100; ++i) {
      Ipv4Address addr(static_cast<std::uint32_t>(rng()));
      int len = static_cast<int>(rng() % 33);
      Prefix prefix(IpAddress(addr), len);
      // Mirror trie semantics: a re-inserted prefix overwrites.
      bool replaced = false;
      for (auto& [p, v] : prefixes) {
        if (p == prefix) {
          v = i;
          replaced = true;
          break;
        }
      }
      if (!replaced) prefixes.emplace_back(prefix, i);
      trie.Insert(prefix, i);
    }
    ASSERT_EQ(trie.size(), prefixes.size());

    for (int probe = 0; probe < 200; ++probe) {
      IpAddress addr{Ipv4Address(static_cast<std::uint32_t>(rng()))};
      std::optional<int> expected;
      int best_len = -1;
      for (const auto& [prefix, value] : prefixes) {
        if (prefix.length() > best_len && prefix.Contains(addr)) {
          best_len = prefix.length();
          expected = value;
        }
      }
      EXPECT_EQ(trie.Lookup(addr), expected) << addr.ToString();
    }
  }
}

}  // namespace
}  // namespace clouddns::net
