#include "net/prefix.h"

#include <gtest/gtest.h>

namespace clouddns::net {
namespace {

TEST(PrefixTest, ParsesCidr) {
  auto p = Prefix::Parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 8);
  EXPECT_EQ(p->ToString(), "10.0.0.0/8");
}

TEST(PrefixTest, BareAddressIsHostPrefix) {
  EXPECT_EQ(Prefix::Parse("10.1.2.3")->length(), 32);
  EXPECT_EQ(Prefix::Parse("2001:db8::1")->length(), 128);
}

TEST(PrefixTest, MasksHostBitsOnConstruction) {
  auto p = Prefix::Parse("10.1.2.3/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "10.0.0.0/8");
  EXPECT_EQ(*p, *Prefix::Parse("10.255.255.255/8"));
}

TEST(PrefixTest, RejectsBadInput) {
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/1x").has_value());
  EXPECT_FALSE(Prefix::Parse("banana/8").has_value());
}

TEST(PrefixTest, ContainsAddress) {
  auto p = *Prefix::Parse("192.168.0.0/16");
  EXPECT_TRUE(p.Contains(*IpAddress::Parse("192.168.1.1")));
  EXPECT_TRUE(p.Contains(*IpAddress::Parse("192.168.255.255")));
  EXPECT_FALSE(p.Contains(*IpAddress::Parse("192.169.0.0")));
  EXPECT_FALSE(p.Contains(*IpAddress::Parse("2001:db8::1")));  // family
}

TEST(PrefixTest, ContainsAddressV6) {
  auto p = *Prefix::Parse("2001:db8::/32");
  EXPECT_TRUE(p.Contains(*IpAddress::Parse("2001:db8::1")));
  EXPECT_TRUE(p.Contains(*IpAddress::Parse("2001:db8:ffff::")));
  EXPECT_FALSE(p.Contains(*IpAddress::Parse("2001:db9::")));
}

TEST(PrefixTest, ZeroLengthContainsWholeFamily) {
  auto v4_default = *Prefix::Parse("0.0.0.0/0");
  EXPECT_TRUE(v4_default.Contains(*IpAddress::Parse("255.1.2.3")));
  EXPECT_FALSE(v4_default.Contains(*IpAddress::Parse("::1")));
}

TEST(PrefixTest, ContainsPrefix) {
  auto p16 = *Prefix::Parse("10.1.0.0/16");
  auto p24 = *Prefix::Parse("10.1.2.0/24");
  EXPECT_TRUE(p16.Contains(p24));
  EXPECT_FALSE(p24.Contains(p16));
  EXPECT_TRUE(p16.Contains(p16));
}

TEST(PrefixTest, NonOctetAlignedMask) {
  auto p = *Prefix::Parse("10.1.2.0/23");
  EXPECT_TRUE(p.Contains(*IpAddress::Parse("10.1.3.255")));
  EXPECT_FALSE(p.Contains(*IpAddress::Parse("10.1.4.0")));

  auto p6 = *Prefix::Parse("2001:db8:8000::/33");
  EXPECT_TRUE(p6.Contains(*IpAddress::Parse("2001:db8:8000::1")));
  EXPECT_TRUE(p6.Contains(*IpAddress::Parse("2001:db8:ffff::1")));
  EXPECT_FALSE(p6.Contains(*IpAddress::Parse("2001:db8:7fff::1")));
}

TEST(HostInPrefixTest, EnumeratesHosts) {
  auto p = *Prefix::Parse("10.0.0.0/24");
  EXPECT_EQ(HostInPrefix(p, 0).ToString(), "10.0.0.0");
  EXPECT_EQ(HostInPrefix(p, 7).ToString(), "10.0.0.7");
  EXPECT_EQ(HostInPrefix(p, 255).ToString(), "10.0.0.255");
  // Wraps past the host space instead of escaping the prefix.
  EXPECT_TRUE(p.Contains(HostInPrefix(p, 1000)));
}

TEST(HostInPrefixTest, V6Hosts) {
  auto p = *Prefix::Parse("2001:db8::/64");
  EXPECT_EQ(HostInPrefix(p, 1).ToString(), "2001:db8::1");
  EXPECT_EQ(HostInPrefix(p, 0x1234).ToString(), "2001:db8::1234");
  EXPECT_TRUE(p.Contains(HostInPrefix(p, 0xffffffffull)));
}

TEST(MaskAddressTest, EdgeLengths) {
  auto addr = *IpAddress::Parse("255.255.255.255");
  EXPECT_EQ(MaskAddress(addr, 0).ToString(), "0.0.0.0");
  EXPECT_EQ(MaskAddress(addr, 32).ToString(), "255.255.255.255");
  EXPECT_EQ(MaskAddress(addr, 1).ToString(), "128.0.0.0");

  auto v6 = *IpAddress::Parse("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff");
  EXPECT_EQ(MaskAddress(v6, 0).ToString(), "::");
  EXPECT_EQ(MaskAddress(v6, 1).ToString(), "8000::");
  EXPECT_EQ(MaskAddress(v6, 128), v6);
}

}  // namespace
}  // namespace clouddns::net
