// End-to-end storage robustness for the self-healing dataset cache
// (DESIGN.md §14).
//
// Two suites:
//   - The corruption matrix: truncated / bit-flipped / zero-length /
//     legacy-format damage to each cached artifact (columnar capture,
//     `.ctx` context sidecar, `.shards` shard index), each loaded at
//     1/2/4/8 worker threads. Every combination must either fall back
//     (legacy) or quarantine-and-rebuild, and the analysis report
//     rendered from the result must stay byte-identical to the
//     fault-free baseline.
//   - The seeded fault sweep: all nine StorageFaultKind values injected
//     across the columnar, pcap, sidecar, and cache write paths. Zero
//     crashes, every silent corruption detected and quarantined on the
//     next read, post-rebuild reports byte-identical to the baseline.
//
// Scratch location honours CLOUDDNS_STORAGE_SCRATCH (CI points it at an
// upload-on-failure artifact directory so quarantined files and their
// reason breadcrumbs survive a red run); directories are only removed
// when the test body passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataset_cache.h"
#include "base/io.h"
#include "capture/columnar.h"
#include "capture/pcap.h"
#include "capture/sharded.h"
#include "cloud/scenario.h"
#include "entrada/plan.h"

namespace clouddns::analysis {
namespace {

namespace fs = std::filesystem;

cloud::ScenarioConfig SmallConfig(std::size_t threads = 1) {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNz;
  config.year = 2019;
  config.client_queries = 3'000;
  config.zone_scale = 0.001;
  config.threads = threads;
  return config;
}

std::string ScratchDir(const char* name) {
  if (const char* scratch = std::getenv("CLOUDDNS_STORAGE_SCRATCH")) {
    return (fs::path(scratch) / name).string();
  }
  return (fs::path(::testing::TempDir()) / name).string();
}

/// The analysis-report view of a result: everything a paper figure would
/// consume, rendered deterministically from the capture stream. Context
/// counters are deliberately excluded — a quarantined `.ctx` sidecar is
/// rebuilt with a traffic-free run, which resets query-issue accounting
/// (the pre-framing cache had the same contract for missing sidecars).
std::string ReportDigest(const cloud::ScenarioResult& result,
                         std::size_t threads) {
  entrada::AnalysisPlan plan;
  auto by_qtype =
      plan.GroupBy(entrada::FilterSpec::All(), entrada::KeySpec::Qtype());
  auto by_rcode =
      plan.GroupBy(entrada::FilterSpec::All(), entrada::KeySpec::RcodeKey());
  auto sources = plan.Distinct(entrada::FilterSpec::Valid(),
                               entrada::KeySpec::SrcAddress());
  plan.Execute(result.records, threads);

  std::ostringstream out;
  out << "records " << result.records.size() << "\n";
  out << "crc "
      << base::io::Crc32c(capture::EncodeColumnar(result.records.Flatten()))
      << "\n";
  out << "sources " << plan.DistinctResult(sources) << "\n";
  for (const auto& [key, n] : plan.GroupResult(by_qtype).counts) {
    out << "qtype " << key << " " << n << "\n";
  }
  for (const auto& [key, n] : plan.GroupResult(by_rcode).counts) {
    out << "rcode " << key << " " << n << "\n";
  }
  return out.str();
}

enum class Damage { kTruncate, kBitFlip, kZeroLength, kLegacy };

const char* ToString(Damage damage) {
  switch (damage) {
    case Damage::kTruncate: return "truncate";
    case Damage::kBitFlip: return "bit-flip";
    case Damage::kZeroLength: return "zero-length";
    case Damage::kLegacy: return "legacy-format";
  }
  return "unknown";
}

void InflictDamage(const std::string& path, Damage damage) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(base::io::ReadFileBytes(path, bytes).ok()) << path;
  switch (damage) {
    case Damage::kTruncate: {
      std::error_code ec;
      fs::resize_file(path, bytes.size() / 2, ec);
      ASSERT_FALSE(ec) << path;
      return;
    }
    case Damage::kBitFlip: {
      bytes[bytes.size() / 2] ^= 0x04;
      ASSERT_TRUE(base::io::WriteFileAtomic(path, bytes).ok()) << path;
      return;
    }
    case Damage::kZeroLength: {
      std::error_code ec;
      fs::resize_file(path, 0, ec);
      ASSERT_FALSE(ec) << path;
      return;
    }
    case Damage::kLegacy: {
      // What a pre-framing cache looks like: the bare payload on disk.
      std::vector<std::uint8_t> payload;
      bool framed = false;
      ASSERT_TRUE(
          base::io::UnwrapFrame(bytes, base::io::kTagAny, payload, framed)
              .ok())
          << path;
      ASSERT_TRUE(framed) << path << " must be framed before legacy-stripping";
      ASSERT_TRUE(base::io::WriteFileAtomic(path, payload).ok()) << path;
      return;
    }
  }
}

struct ScopedInjector {
  explicit ScopedInjector(base::io::StorageFaultInjector& injector) {
    base::io::SetStorageFaultInjector(&injector);
  }
  ~ScopedInjector() { base::io::SetStorageFaultInjector(nullptr); }
};

// ---------------------------------------------------------------------------
// Corruption matrix

TEST(StorageCorruptionMatrixTest, EveryArtifactDamageThreadComboRecovers) {
  const std::string dir = ScratchDir("clouddns_storage_matrix");
  fs::remove_all(dir);

  auto config = SmallConfig();
  // Resolve the env-driven query budget the same way LoadOrRun does, so
  // the artifact paths below match what the cache actually writes.
  config.client_queries = EffectiveQueryBudget(config.client_queries);
  const std::string key = CacheKey(config);
  const std::string capture_path = dir + "/" + key + ".cdns";
  const std::string context_path = dir + "/" + key + ".ctx";
  const std::string shard_path = dir + "/" + key + ".shards";

  const cloud::ScenarioResult baseline_result = LoadOrRun(config, dir);
  const std::string baseline = ReportDigest(baseline_result, 1);
  const std::vector<std::uint32_t> baseline_shard_ids =
      baseline_result.records.MergeOrderShardIds();
  ASSERT_FALSE(baseline_result.records.empty());
  ASSERT_TRUE(fs::exists(capture_path));
  ASSERT_TRUE(fs::exists(context_path));
  ASSERT_TRUE(fs::exists(shard_path));

  const struct {
    const char* name;
    const std::string& path;
  } artifacts[] = {{"capture", capture_path},
                   {"context", context_path},
                   {"shard-index", shard_path}};
  const Damage damages[] = {Damage::kTruncate, Damage::kBitFlip,
                            Damage::kZeroLength, Damage::kLegacy};

  for (const auto& artifact : artifacts) {
    for (Damage damage : damages) {
      for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string(artifact.name) + " x " + ToString(damage) +
                     " x threads=" + std::to_string(threads));
        // A legacy artifact is valid and is intentionally NOT rewritten
        // by a warm load, so it stays legacy across the thread loop;
        // every other damage kind is re-inflicted on the artifact the
        // previous recovery rebuilt.
        if (damage != Damage::kLegacy || threads == 1) {
          InflictDamage(artifact.path, damage);
          if (::testing::Test::HasFatalFailure()) return;
        }

        auto run_config = SmallConfig(threads);
        const cloud::ScenarioResult result = LoadOrRun(run_config, dir);
        EXPECT_EQ(ReportDigest(result, threads), baseline);
        EXPECT_EQ(result.records.MergeOrderShardIds(), baseline_shard_ids);
        if (damage == Damage::kLegacy) {
          EXPECT_EQ(result.storage.detected, 0u);
          EXPECT_EQ(result.storage.quarantined, 0u);
        } else {
          EXPECT_EQ(result.storage.detected, 1u);
          EXPECT_EQ(result.storage.quarantined, 1u);
          EXPECT_GE(result.storage.rebuilt, 1u);
          EXPECT_GE(result.storage.reverified, 1u);
          EXPECT_TRUE(fs::exists(dir + "/.quarantine"));
        }
      }
      // Leave the tree healthy (framed) for the next damage kind: legacy
      // artifacts load without a rewrite, so restore them explicitly.
      if (damage == Damage::kLegacy) {
        fs::remove(artifact.path);
        (void)LoadOrRun(config, dir);
      }
    }
  }

  // Quarantine holds one artifact + one reason breadcrumb per detection.
  std::size_t quarantined_files = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/.quarantine")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_GE(quarantined_files, 2u * 3u * 3u * 4u);  // 3 artifacts x 3 damages
  fs::remove_all(dir);
}

TEST(StorageCorruptionMatrixTest, StrandedTempFilesAreSweptOnOpen) {
  const std::string dir = ScratchDir("clouddns_storage_tmp_sweep");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::vector<std::uint8_t> torn = {0xDE, 0xAD};
  ASSERT_TRUE(
      base::io::WriteFileAtomic(dir + "/crashed_writer.cdns.tmp", torn).ok());

  const cloud::ScenarioResult result = LoadOrRun(SmallConfig(), dir);
  EXPECT_EQ(result.storage.tmp_cleaned, 1u);
  EXPECT_FALSE(fs::exists(dir + "/crashed_writer.cdns.tmp"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Seeded fault sweep: all nine kinds, across every persistence path.

TEST(StorageFaultSweepTest, AllNineFaultKindsRecoverByteIdentically) {
  const std::string dir = ScratchDir("clouddns_storage_sweep");
  fs::remove_all(dir);

  auto config = SmallConfig(2);
  config.client_queries = EffectiveQueryBudget(config.client_queries);
  const std::string key = CacheKey(config);
  const std::string capture_path = dir + "/" + key + ".cdns";
  const std::string context_path = dir + "/" + key + ".ctx";
  const std::string shard_path = dir + "/" + key + ".shards";

  // Fault-free baseline, cold then warm.
  const cloud::ScenarioResult baseline_result = LoadOrRun(config, dir);
  const std::string baseline = ReportDigest(baseline_result, 2);
  EXPECT_EQ(ReportDigest(LoadOrRun(config, dir), 2), baseline);
  fs::remove_all(dir);

  base::io::StorageFaultInjector injector(0xC10DD45u);
  ScopedInjector scope(injector);

  // --- Phase 1: write-phase faults on the cold populate. The capture's
  // EINTR is retried to completion; the context and shard writes fail
  // typed, leaving those artifacts absent but the result correct.
  injector.Add({".cdns", base::io::StorageFaultKind::kEintrOnce});
  injector.Add({".ctx", base::io::StorageFaultKind::kEnospc});
  injector.Add({".shards", base::io::StorageFaultKind::kFsyncFail});
  EXPECT_EQ(ReportDigest(LoadOrRun(config, dir), 2), baseline);
  EXPECT_EQ(injector.fired(), 3u);
  EXPECT_TRUE(fs::exists(capture_path));
  EXPECT_FALSE(fs::exists(context_path));
  EXPECT_FALSE(fs::exists(shard_path));
  EXPECT_FALSE(fs::exists(capture_path + ".tmp"));

  // --- Phase 2: the missing context sidecar is re-saved on each warm
  // load; fail that save three more distinct ways. Results stay correct.
  injector.Add({".ctx", base::io::StorageFaultKind::kRenameFail});
  EXPECT_EQ(ReportDigest(LoadOrRun(config, dir), 2), baseline);
  injector.Add({".ctx", base::io::StorageFaultKind::kOpenFail});
  EXPECT_EQ(ReportDigest(LoadOrRun(config, dir), 2), baseline);
  injector.Add({".ctx", base::io::StorageFaultKind::kShortWrite});
  EXPECT_EQ(ReportDigest(LoadOrRun(config, dir), 2), baseline);
  EXPECT_EQ(injector.fired(), 6u);
  EXPECT_FALSE(fs::exists(context_path));

  // --- Phase 3: post-commit (silent bit-rot) faults, one recovery cycle
  // per artifact. The corrupting run reports success; the NEXT load must
  // detect, quarantine, rebuild, and re-verify.
  struct Cycle {
    const char* path_substring;
    base::io::StorageFaultKind kind;
    const std::string& victim;
    const std::string& force_rewrite_of;  // removed to trigger the write
  };
  const Cycle cycles[] = {
      {".cdns", base::io::StorageFaultKind::kBitFlipAfterCommit, capture_path,
       capture_path},
      {".ctx", base::io::StorageFaultKind::kTruncateAfterCommit, context_path,
       context_path},
      {".shards", base::io::StorageFaultKind::kZeroAfterCommit, shard_path,
       capture_path},
  };
  for (const Cycle& cycle : cycles) {
    SCOPED_TRACE(base::io::ToString(cycle.kind));
    fs::remove(cycle.force_rewrite_of);  // benign miss -> forces the rewrite
    injector.Add({cycle.path_substring, cycle.kind});
    const cloud::ScenarioResult corrupting = LoadOrRun(config, dir);
    EXPECT_EQ(ReportDigest(corrupting, 2), baseline);
    EXPECT_EQ(corrupting.storage.detected, 0u);  // the rot is silent
    ASSERT_TRUE(fs::exists(cycle.victim));

    const cloud::ScenarioResult recovered = LoadOrRun(config, dir);
    EXPECT_EQ(ReportDigest(recovered, 2), baseline);
    EXPECT_EQ(recovered.storage.detected, 1u);
    EXPECT_EQ(recovered.storage.quarantined, 1u);
    EXPECT_GE(recovered.storage.rebuilt, 1u);
    EXPECT_GE(recovered.storage.reverified, 1u);
  }
  EXPECT_EQ(injector.fired(), 9u);  // all nine kinds, each exactly once

  // --- Phase 4: the pcap export path under the same shim. A write-phase
  // fault fails typed and preserves the previous export; silent rot is
  // caught by the framed read.
  const std::string pcap_path = dir + "/" + key + ".pcap";
  const capture::CaptureBuffer flat = baseline_result.records.FlattenCopy();
  ASSERT_TRUE(capture::WritePcapFileStatus(pcap_path, flat).ok());
  injector.Add({".pcap", base::io::StorageFaultKind::kShortWrite});
  EXPECT_EQ(capture::WritePcapFileStatus(pcap_path, flat).code,
            base::io::IoCode::kWriteFailed);
  capture::CaptureBuffer pcap_back;
  EXPECT_TRUE(capture::ReadPcapFileStatus(pcap_path, pcap_back).ok());
  injector.Add({".pcap", base::io::StorageFaultKind::kBitFlipAfterCommit});
  ASSERT_TRUE(capture::WritePcapFileStatus(pcap_path, flat).ok());
  pcap_back.clear();
  EXPECT_FALSE(capture::ReadPcapFileStatus(pcap_path, pcap_back).ok());
  EXPECT_EQ(injector.fired(), 11u);

  // --- Final state: a clean warm load, nothing left to detect.
  const cloud::ScenarioResult healthy = LoadOrRun(config, dir);
  EXPECT_EQ(ReportDigest(healthy, 2), baseline);
  EXPECT_EQ(healthy.storage.detected, 0u);
  EXPECT_TRUE(fs::exists(dir + "/.quarantine"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace clouddns::analysis
