#include "analysis/rssac002.h"

#include <gtest/gtest.h>

namespace clouddns::analysis {
namespace {

capture::CaptureRecord Record(sim::TimeUs time, const char* src,
                              dns::Transport transport, dns::Rcode rcode) {
  capture::CaptureRecord r;
  r.time_us = time;
  r.src = *net::IpAddress::Parse(src);
  r.qname = *dns::Name::Parse("x.nl");
  r.transport = transport;
  r.rcode = rcode;
  r.query_size = 40;
  r.response_size = 120;
  return r;
}

TEST(Rssac002Test, BucketsByUtcDay) {
  sim::TimeUs day1 = sim::TimeFromCivil({2020, 5, 6});
  sim::TimeUs day2 = sim::TimeFromCivil({2020, 5, 7});
  capture::CaptureBuffer records = {
      Record(day1 + 10, "8.8.8.8", dns::Transport::kUdp,
             dns::Rcode::kNoError),
      Record(day1 + 20, "8.8.8.8", dns::Transport::kUdp,
             dns::Rcode::kNxDomain),
      Record(day2 + 30, "2001:db8::1", dns::Transport::kTcp,
             dns::Rcode::kNoError),
  };
  auto report = Rssac002Report(records);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].date, "2020-05-06");
  EXPECT_EQ(report[0].queries, 2u);
  EXPECT_EQ(report[0].rcode_volume.at("NOERROR"), 1u);
  EXPECT_EQ(report[0].rcode_volume.at("NXDOMAIN"), 1u);
  EXPECT_DOUBLE_EQ(report[0].ValidRatio(), 0.5);
  EXPECT_EQ(report[1].date, "2020-05-07");
  EXPECT_EQ(report[1].tcp_ipv6, 1u);
  EXPECT_EQ(report[1].unique_sources_ipv6, 1u);
}

TEST(Rssac002Test, TransportFamilyCellsSumToMarginals) {
  sim::TimeUs t = sim::TimeFromCivil({2020, 5, 6});
  capture::CaptureBuffer records = {
      Record(t + 1, "8.8.8.8", dns::Transport::kUdp, dns::Rcode::kNoError),
      Record(t + 2, "8.8.4.4", dns::Transport::kTcp, dns::Rcode::kNoError),
      Record(t + 3, "2001:db8::1", dns::Transport::kUdp,
             dns::Rcode::kNoError),
      Record(t + 4, "2001:db8::2", dns::Transport::kTcp,
             dns::Rcode::kNoError),
  };
  auto report = Rssac002Report(records);
  ASSERT_EQ(report.size(), 1u);
  const auto& day = report[0];
  EXPECT_EQ(day.udp_ipv4 + day.udp_ipv6, day.udp_queries);
  EXPECT_EQ(day.tcp_ipv4 + day.tcp_ipv6, day.tcp_queries);
  EXPECT_EQ(day.udp_ipv4 + day.tcp_ipv4, day.ipv4_queries);
  EXPECT_EQ(day.udp_ipv6 + day.tcp_ipv6, day.ipv6_queries);
  EXPECT_EQ(day.queries, 4u);
}

TEST(Rssac002Test, UniqueSourcesDeduplicate) {
  sim::TimeUs t = sim::TimeFromCivil({2020, 5, 6});
  capture::CaptureBuffer records = {
      Record(t + 1, "8.8.8.8", dns::Transport::kUdp, dns::Rcode::kNoError),
      Record(t + 2, "8.8.8.8", dns::Transport::kUdp, dns::Rcode::kNoError),
      Record(t + 3, "8.8.4.4", dns::Transport::kUdp, dns::Rcode::kNoError),
  };
  auto report = Rssac002Report(records);
  EXPECT_EQ(report[0].unique_sources_ipv4, 2u);
  EXPECT_EQ(report[0].unique_sources_ipv6, 0u);
  EXPECT_DOUBLE_EQ(report[0].average_query_size, 40.0);
  EXPECT_DOUBLE_EQ(report[0].average_response_size, 120.0);
}

TEST(Rssac002Test, YamlRenderingContainsAllMetrics) {
  sim::TimeUs t = sim::TimeFromCivil({2020, 5, 6});
  capture::CaptureBuffer records = {
      Record(t + 1, "8.8.8.8", dns::Transport::kUdp, dns::Rcode::kNoError)};
  auto report = Rssac002Report(records);
  std::string yaml = RenderRssac002Yaml(report[0], "b.root-servers.net");
  EXPECT_NE(yaml.find("version: rssac002v3"), std::string::npos);
  EXPECT_NE(yaml.find("service: b.root-servers.net"), std::string::npos);
  EXPECT_NE(yaml.find("start-period: 2020-05-06T00:00:00Z"),
            std::string::npos);
  EXPECT_NE(yaml.find("dns-udp-queries-received-ipv4: 1"), std::string::npos);
  EXPECT_NE(yaml.find("metric: rcode-volume"), std::string::npos);
  EXPECT_NE(yaml.find("NOERROR: 1"), std::string::npos);
  EXPECT_NE(yaml.find("num-sources-ipv4: 1"), std::string::npos);
}

TEST(Rssac002Test, EmptyCaptureGivesEmptyReport) {
  EXPECT_TRUE(Rssac002Report({}).empty());
}

}  // namespace
}  // namespace clouddns::analysis
