// The context sidecar must round-trip every non-capture field of a
// ScenarioResult, and a LoadOrRun cache hit through the sidecar must be
// indistinguishable from the run that populated the cache.
#include "analysis/context_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analysis/dataset_cache.h"
#include "cloud/scenario.h"

namespace clouddns::analysis {
namespace {

cloud::ScenarioConfig SmallConfig() {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNz;
  config.year = 2019;
  config.client_queries = 20'000;
  config.zone_scale = 0.001;
  return config;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ContextCacheTest, RoundTripsEveryContextField) {
  auto original = cloud::RunScenario(SmallConfig());
  const std::string path = TempPath("clouddns_ctx_roundtrip.ctx");
  ASSERT_TRUE(SaveScenarioContext(path, original));

  cloud::ScenarioResult loaded;
  ASSERT_TRUE(LoadScenarioContext(path, loaded));
  std::remove(path.c_str());

  EXPECT_EQ(loaded.window_start, original.window_start);
  EXPECT_EQ(loaded.window_end, original.window_end);
  EXPECT_EQ(loaded.zone_domain_count, original.zone_domain_count);
  EXPECT_EQ(loaded.zone_domains_by_tld, original.zone_domains_by_tld);

  ASSERT_EQ(loaded.servers.size(), original.servers.size());
  for (std::size_t i = 0; i < loaded.servers.size(); ++i) {
    EXPECT_EQ(loaded.servers[i].id, original.servers[i].id);
    EXPECT_EQ(loaded.servers[i].label, original.servers[i].label);
    EXPECT_EQ(loaded.servers[i].captured, original.servers[i].captured);
    EXPECT_EQ(loaded.servers[i].anycast, original.servers[i].anycast);
    EXPECT_EQ(loaded.servers[i].sites, original.servers[i].sites);
  }

  EXPECT_EQ(loaded.asdb.announcements(), original.asdb.announcements());
  auto loaded_as = loaded.asdb.AllInfo();
  auto original_as = original.asdb.AllInfo();
  ASSERT_EQ(loaded_as.size(), original_as.size());
  for (std::size_t i = 0; i < loaded_as.size(); ++i) {
    EXPECT_EQ(loaded_as[i].asn, original_as[i].asn);
    EXPECT_EQ(loaded_as[i].org, original_as[i].org);
  }
  // Spot-check that lookups behave identically on real capture sources.
  for (std::size_t i = 0; i < original.records.size(); i += 997) {
    const auto& src = original.records[i].src;
    EXPECT_EQ(loaded.asdb.OriginAs(src), original.asdb.OriginAs(src));
    EXPECT_EQ(loaded.google_public.Lookup(src),
              original.google_public.Lookup(src));
  }
  EXPECT_EQ(loaded.google_public.Entries(), original.google_public.Entries());

  ASSERT_EQ(loaded.ptr_records.size(), original.ptr_records.size());
  for (std::size_t i = 0; i < loaded.ptr_records.size(); ++i) {
    EXPECT_EQ(loaded.ptr_records[i].first, original.ptr_records[i].first);
    EXPECT_TRUE(
        loaded.ptr_records[i].second.Equals(original.ptr_records[i].second));
  }

  EXPECT_EQ(loaded.client_queries_issued, original.client_queries_issued);
  EXPECT_EQ(loaded.leaf_queries, original.leaf_queries);
  EXPECT_EQ(loaded.client_queries_per_provider,
            original.client_queries_per_provider);
}

TEST(ContextCacheTest, RejectsMissingAndTruncatedFiles) {
  cloud::ScenarioResult result;
  EXPECT_FALSE(LoadScenarioContext(TempPath("clouddns_ctx_missing.ctx"),
                                   result));

  auto original = cloud::RunScenario(SmallConfig());
  const std::string path = TempPath("clouddns_ctx_truncated.ctx");
  ASSERT_TRUE(SaveScenarioContext(path, original));
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(LoadScenarioContext(path, result));
  std::remove(path.c_str());
}

TEST(ContextCacheTest, CacheHitMatchesThePopulatingRun) {
  const std::string cache_dir = TempPath("clouddns_ctx_cache_dir");
  std::filesystem::remove_all(cache_dir);

  auto config = SmallConfig();
  auto first = LoadOrRun(config, cache_dir);   // cold: runs + writes sidecar
  auto second = LoadOrRun(config, cache_dir);  // warm: capture + sidecar only
  std::filesystem::remove_all(cache_dir);

  ASSERT_FALSE(first.records.empty());
  EXPECT_TRUE(first.records == second.records);
  EXPECT_EQ(first.client_queries_issued, second.client_queries_issued);
  EXPECT_EQ(first.leaf_queries, second.leaf_queries);
  EXPECT_EQ(first.client_queries_per_provider,
            second.client_queries_per_provider);
  EXPECT_EQ(first.zone_domains_by_tld, second.zone_domains_by_tld);
  EXPECT_EQ(first.asdb.announcements(), second.asdb.announcements());
  for (std::size_t i = 0; i < first.records.size(); i += 991) {
    const auto& src = first.records[i].src;
    EXPECT_EQ(first.asdb.OriginAs(src), second.asdb.OriginAs(src));
  }
}

}  // namespace
}  // namespace clouddns::analysis
