// Regression test for the determinism contract at report boundaries
// (DESIGN.md §8): rendering the same capture through the analysis layer
// must produce byte-identical text regardless of worker-thread count and
// across repeated runs. This is the test that would have caught the
// unordered_map emission paths the lint rule now forbids.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/rdns.h"
#include "capture/record.h"
#include "entrada/plan.h"
#include "sim/random.h"
#include "zone/reverse.h"

namespace clouddns {
namespace {

/// A capture big enough that Execute() actually chunks across workers.
capture::CaptureBuffer SyntheticCapture() {
  sim::Rng rng(0x5eed0002);
  const dns::RrType qtypes[] = {dns::RrType::kA, dns::RrType::kAaaa,
                                dns::RrType::kNs, dns::RrType::kTxt,
                                dns::RrType::kDs};
  const dns::Rcode rcodes[] = {dns::Rcode::kNoError, dns::Rcode::kNxDomain,
                               dns::Rcode::kRefused};
  capture::CaptureBuffer records;
  records.reserve(6000);
  for (std::size_t i = 0; i < 6000; ++i) {
    capture::CaptureRecord r;
    // Spread over ~60 days so GroupByMonth sees more than one bucket.
    r.time_us = static_cast<sim::TimeUs>(rng.NextBelow(60)) * 86'400'000'000ull +
                static_cast<sim::TimeUs>(rng.NextBelow(86'400'000'000ull));
    r.server_id = static_cast<std::uint32_t>(rng.NextBelow(4));
    if (rng.Bernoulli(0.7)) {
      r.src = net::Ipv4Address(
          10, static_cast<std::uint8_t>(rng.NextBelow(8)),
          static_cast<std::uint8_t>(rng.NextBelow(256)),
          static_cast<std::uint8_t>(rng.NextBelow(256)));
    } else {
      r.src = net::Ipv6Address::FromGroups(
          {0x2001, 0xdb8, 0, 0, 0, 0,
           static_cast<std::uint16_t>(rng.NextBelow(8)),
           static_cast<std::uint16_t>(rng.NextBelow(4096))});
    }
    r.src_port = static_cast<std::uint16_t>(1024 + rng.NextBelow(60000));
    r.transport =
        rng.Bernoulli(0.1) ? dns::Transport::kTcp : dns::Transport::kUdp;
    r.qname = *dns::Name::Parse("q" + std::to_string(rng.NextBelow(500)) +
                                ".example.nl");
    r.qtype = qtypes[rng.NextBelow(std::size(qtypes))];
    r.rcode = rcodes[rng.NextBelow(std::size(rcodes))];
    r.has_edns = rng.Bernoulli(0.8);
    r.edns_udp_size = r.has_edns ? 1232 : 0;
    r.query_size = static_cast<std::uint16_t>(40 + rng.NextBelow(80));
    r.response_size = static_cast<std::uint16_t>(60 + rng.NextBelow(400));
    records.push_back(std::move(r));
  }
  return records;
}

/// Runs the full fused plan plus the rDNS grouping and renders everything
/// into one report string — every emission boundary the repo has.
std::string RenderReport(const capture::CaptureBuffer& records,
                         std::size_t threads) {
  entrada::AnalysisPlan plan;
  auto by_qtype = plan.GroupBy(entrada::FilterSpec::All(),
                               entrada::KeySpec::Qtype());
  auto by_src = plan.GroupBy(entrada::FilterSpec::Valid(),
                             entrada::KeySpec::SrcAddress());
  auto by_month = plan.GroupByMonth(entrada::FilterSpec::All(),
                                    entrada::KeySpec::RcodeKey());
  auto v6_sources = plan.Distinct(entrada::FilterSpec::V6(),
                                  entrada::KeySpec::SrcAddress());
  auto udp_total = plan.Count(entrada::FilterSpec::Udp());
  plan.Execute(records, threads);

  std::ostringstream out;
  out << "udp_total " << plan.CountResult(udp_total) << "\n";
  out << "v6_sources " << plan.DistinctResult(v6_sources) << "\n";
  for (const auto& [key, n] : plan.GroupResult(by_qtype).counts) {
    out << "qtype " << key << " " << n << "\n";
  }
  for (const auto& [key, n] : plan.GroupResult(by_src).counts) {
    out << "src " << key << " " << n << "\n";
  }
  for (const auto& [month, agg] : plan.MonthResult(by_month)) {
    for (const auto& [key, n] : agg.counts) {
      out << "month " << month << " " << key << " " << n << "\n";
    }
  }

  // Dual-stack matching through the ordered GroupByPtrName boundary.
  std::vector<std::pair<net::IpAddress, dns::Name>> ptrs;
  std::vector<net::IpAddress> addresses;
  for (int i = 0; i < 16; ++i) {
    dns::Name host = *dns::Name::Parse("edge-" + std::to_string(i % 5) +
                                       ".ams.example.net");
    net::IpAddress v4 = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    net::IpAddress v6 = net::Ipv6Address::FromGroups(
        {0x2001, 0xdb8, 0, 0, 0, 0, 0, static_cast<std::uint16_t>(i)});
    ptrs.emplace_back(v4, host);
    ptrs.emplace_back(v6, host);
    addresses.push_back(v4);
    addresses.push_back(v6);
  }
  analysis::RdnsDatabase rdns(ptrs);
  for (const auto& [name, members] : rdns.GroupByPtrName(addresses)) {
    out << "ptr-group " << name << " " << members.size() << "\n";
  }
  return out.str();
}

TEST(ReportDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  capture::CaptureBuffer records = SyntheticCapture();
  std::string baseline = RenderReport(records, 1);
  EXPECT_FALSE(baseline.empty());
  for (std::size_t threads : {2u, 3u, 7u}) {
    EXPECT_EQ(baseline, RenderReport(records, threads))
        << "report diverges at threads=" << threads;
  }
}

TEST(ReportDeterminismTest, ByteIdenticalAcrossRepeatedRuns) {
  capture::CaptureBuffer records = SyntheticCapture();
  EXPECT_EQ(RenderReport(records, 4), RenderReport(records, 4));
}

}  // namespace
}  // namespace clouddns
