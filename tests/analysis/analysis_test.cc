#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "analysis/calibration.h"
#include "analysis/dataset_cache.h"
#include "analysis/experiments.h"
#include "analysis/rdns.h"
#include "analysis/report.h"

namespace clouddns::analysis {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

TEST(ReportTest, TextTableAlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::string out = table.Render();
  EXPECT_NE(out.find("name       value"), std::string::npos);
  EXPECT_NE(out.find("long-name  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Percent(0.315), "31.5%");
  EXPECT_EQ(Percent(0.0), "0.0%");
  EXPECT_EQ(Ratio(0.52), "0.52");
  EXPECT_EQ(Count(0), "0");
  EXPECT_EQ(Count(999), "999");
  EXPECT_EQ(Count(1000), "1,000");
  EXPECT_EQ(Count(1234567), "1,234,567");
  EXPECT_EQ(Fixed(3.14159, 2), "3.14");
}

TEST(RdnsTest, LookupThroughArpaZones) {
  std::vector<std::pair<net::IpAddress, dns::Name>> ptrs = {
      {*net::IpAddress::Parse("66.220.144.5"),
       N("edge-dns-66-220-144-5.ams.tfbnw.example")},
      {*net::IpAddress::Parse("2a03:2880::5"),
       N("edge-dns-66-220-144-5.ams.tfbnw.example")},
  };
  RdnsDatabase rdns(ptrs);
  EXPECT_EQ(rdns.record_count(), 2u);

  auto v4 = rdns.Lookup(*net::IpAddress::Parse("66.220.144.5"));
  ASSERT_TRUE(v4.has_value());
  EXPECT_EQ(v4->ToString(), "edge-dns-66-220-144-5.ams.tfbnw.example");
  auto v6 = rdns.Lookup(*net::IpAddress::Parse("2a03:2880::5"));
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(*v4, *v6);
  EXPECT_FALSE(rdns.Lookup(*net::IpAddress::Parse("9.9.9.9")).has_value());
}

TEST(RdnsTest, GroupByPtrNameFindsDualStackHosts) {
  std::vector<std::pair<net::IpAddress, dns::Name>> ptrs = {
      {*net::IpAddress::Parse("66.220.144.5"), N("host-a.ams.fb.example")},
      {*net::IpAddress::Parse("2a03:2880::5"), N("host-a.ams.fb.example")},
      {*net::IpAddress::Parse("66.220.144.6"), N("host-b.ams.fb.example")},
  };
  RdnsDatabase rdns(ptrs);
  auto groups = rdns.GroupByPtrName({*net::IpAddress::Parse("66.220.144.5"),
                                     *net::IpAddress::Parse("2a03:2880::5"),
                                     *net::IpAddress::Parse("66.220.144.6"),
                                     *net::IpAddress::Parse("8.8.8.8")});
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("host-a.ams.fb.example").size(), 2u);
  EXPECT_EQ(groups.at("host-b.ams.fb.example").size(), 1u);
}

TEST(RdnsTest, SiteTagExtraction) {
  EXPECT_EQ(*SiteTagFromPtr(N("edge-dns-1-2-3-4.ams.tfbnw.example")), "ams");
  EXPECT_EQ(*SiteTagFromPtr(N("r7.syd.tfbnw.example")), "syd");
  EXPECT_FALSE(SiteTagFromPtr(N("too.short")).has_value());
}

TEST(CalibrationTest, PaperTablesAreInternallyConsistent) {
  // Table 3 valid <= total everywhere.
  for (cloud::Vantage vantage :
       {cloud::Vantage::kNl, cloud::Vantage::kNz, cloud::Vantage::kRoot}) {
    for (int year : {2018, 2019, 2020}) {
      auto row = paper::Table3(vantage, year);
      ASSERT_TRUE(row.has_value());
      EXPECT_LT(row->queries_valid_b, row->queries_total_b);
    }
  }
  // Table 5 rows are probability pairs.
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    for (int year : {2018, 2019, 2020}) {
      auto row = paper::Table5(provider, cloud::Vantage::kNl, year);
      ASSERT_TRUE(row.has_value());
      EXPECT_NEAR(row->ipv4 + row->ipv6, 1.0, 0.011);
      EXPECT_NEAR(row->udp + row->tcp, 1.0, 0.011);
    }
  }
  // Table 6 family split sums to the total.
  auto t6 = paper::Table6(cloud::Provider::kAmazon, cloud::Vantage::kNl);
  ASSERT_TRUE(t6.has_value());
  EXPECT_EQ(t6->v4 + t6->v6, t6->total);
}

TEST(CalibrationTest, RootIsJunkier) {
  for (int year : {2018, 2019, 2020}) {
    EXPECT_GT(paper::SectionThreeJunk(cloud::Vantage::kRoot, year),
              paper::SectionThreeJunk(cloud::Vantage::kNl, year));
  }
}

TEST(DatasetCacheTest, CacheKeyDependsOnConfig) {
  cloud::ScenarioConfig a;
  cloud::ScenarioConfig b = a;
  EXPECT_EQ(CacheKey(a), CacheKey(b));
  b.year = 2019;
  EXPECT_NE(CacheKey(a), CacheKey(b));
  b = a;
  b.seed ^= 1;
  EXPECT_NE(CacheKey(a), CacheKey(b));
  b = a;
  b.qmin_override_off = true;
  EXPECT_NE(CacheKey(a), CacheKey(b));
}

TEST(DatasetCacheTest, SecondLoadReusesCapture) {
  std::string dir = ::testing::TempDir() + "/clouddns_cache_test";
  std::filesystem::remove_all(dir);

  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  config.year = 2020;
  config.client_queries = 15'000;
  config.zone_scale = 0.0005;

  auto first = LoadOrRun(config, dir);
  ASSERT_FALSE(first.records.empty());
  auto second = LoadOrRun(config, dir);
  EXPECT_EQ(first.records, second.records);
  // The rebuilt context still supports enrichment.
  EXPECT_GT(second.asdb.as_count(), 20u);
  EXPECT_FALSE(second.ptr_records.empty());
  std::filesystem::remove_all(dir);
}

TEST(DatasetCacheTest, QueryBudgetEnvOverride) {
  ::unsetenv("CLOUDDNS_QUERIES");
  EXPECT_EQ(EffectiveQueryBudget(123), 123u);
  ::setenv("CLOUDDNS_QUERIES", "777", 1);
  EXPECT_EQ(EffectiveQueryBudget(123), 777u);
  ::setenv("CLOUDDNS_QUERIES", "garbage", 1);
  EXPECT_EQ(EffectiveQueryBudget(123), 123u);
  ::unsetenv("CLOUDDNS_QUERIES");
}

TEST(ExperimentsTest, EdnsStatsOnSyntheticRecords) {
  cloud::ScenarioResult result;
  cloud::RegisterProviderAses(result.asdb);
  auto add = [&result](const char* src, std::uint16_t edns, bool tc,
                       dns::Transport transport) {
    capture::CaptureRecord r;
    r.src = *net::IpAddress::Parse(src);
    r.qname = *dns::Name::Parse("x.nl");
    r.transport = transport;
    r.has_edns = edns > 0;
    r.edns_udp_size = edns;
    r.tc = tc;
    result.records.push_back(std::move(r));
  };
  // Facebook: 2 x 512 (one truncated), 1 x 4096, 1 TCP.
  add("66.220.144.1", 512, true, dns::Transport::kUdp);
  add("66.220.144.2", 512, false, dns::Transport::kUdp);
  add("66.220.144.3", 4096, false, dns::Transport::kUdp);
  add("66.220.144.3", 4096, false, dns::Transport::kTcp);

  auto stats = ComputeEdnsStats(result, cloud::Provider::kFacebook);
  EXPECT_NEAR(stats.fraction_at_512, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.truncated_udp, 1.0 / 3.0, 1e-9);
  ASSERT_EQ(stats.cdf.size(), 2u);
}

TEST(ExperimentsTest, TransportMixOnSyntheticRecords) {
  cloud::ScenarioResult result;
  cloud::RegisterProviderAses(result.asdb);
  capture::CaptureRecord r;
  r.qname = *dns::Name::Parse("x.nl");
  r.src = *net::IpAddress::Parse("8.8.8.8");
  result.records.push_back(r);
  r.src = *net::IpAddress::Parse("2001:4860:1000::1");
  r.transport = dns::Transport::kTcp;
  result.records.push_back(r);

  auto mix = ComputeTransportMix(result, cloud::Provider::kGoogle);
  EXPECT_EQ(mix.total, 2u);
  EXPECT_DOUBLE_EQ(mix.ipv4, 0.5);
  EXPECT_DOUBLE_EQ(mix.ipv6, 0.5);
  EXPECT_DOUBLE_EQ(mix.tcp, 0.5);
}

}  // namespace
}  // namespace clouddns::analysis
