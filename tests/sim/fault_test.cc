#include "sim/fault.h"

#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/network.h"

namespace clouddns::sim {
namespace {

class EchoHandler : public PacketHandler {
 public:
  void HandlePacket(const PacketContext& ctx, const dns::WireBuffer& query,
                    dns::WireBuffer& response) override {
    last_ctx = ctx;
    ++count;
    if (drop) return;
    response = query;
    response.push_back(tag);
  }
  using PacketHandler::HandlePacket;

  PacketContext last_ctx;
  int count = 0;
  bool drop = false;
  std::uint8_t tag = 0;
};

struct Fixture {
  Fixture() {
    near = latency.AddSite({"NEAR", 0, 0, 1.0, 0.0});
    far = latency.AddSite({"FAR", 100, 0, 1.0, 0.0});
    client = latency.AddSite({"CLIENT", 10, 0, 1.0, 0.0});
  }
  LatencyModel latency;
  SiteId near, far, client;
  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  net::IpAddress service = *net::IpAddress::Parse("192.0.2.53");
};

TEST(FaultInjectorTest, EmptyPlanIsDisabledAndChangesNothing) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultInjector injector(FaultPlan{}, 42);
  EXPECT_FALSE(injector.enabled());
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1, 2, 3}, 1000);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.status, Network::SendStatus::kDelivered);
  EXPECT_EQ(result.rtt_us, 24000u);
  EXPECT_FALSE(handler.last_ctx.brownout_servfail);
}

TEST(FaultInjectorTest, TotalQueryLossDropsBeforeServer) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.loss.push_back({kAnySite, std::nullopt, {}, 1.0, 0.0});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1000);
  EXPECT_EQ(result.status, Network::SendStatus::kLostQuery);
  EXPECT_TRUE(result.timed_out());
  EXPECT_FALSE(result.delivered());
  EXPECT_EQ(handler.count, 0);  // no server work, no capture
  EXPECT_EQ(result.server_site, f.near);
}

TEST(FaultInjectorTest, TotalResponseLossStillCostsServerWork) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.loss.push_back({kAnySite, std::nullopt, {}, 0.0, 1.0});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1000);
  EXPECT_EQ(result.status, Network::SendStatus::kLostResponse);
  EXPECT_TRUE(result.timed_out());
  EXPECT_EQ(handler.count, 1);  // the server answered; only the path lost it
  EXPECT_TRUE(result.response.empty());
}

TEST(FaultInjectorTest, TransportScopedRuleSparesOtherTransport) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.loss.push_back({kAnySite, dns::Transport::kUdp, {}, 1.0, 0.0});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto udp = network.Query(f.src, f.client, f.service, dns::Transport::kUdp,
                           {1}, 1000);
  auto tcp = network.Query(f.src, f.client, f.service, dns::Transport::kTcp,
                           {1}, 1000);
  EXPECT_EQ(udp.status, Network::SendStatus::kLostQuery);
  EXPECT_EQ(tcp.status, Network::SendStatus::kDelivered);
}

TEST(FaultInjectorTest, OutageReroutesToSurvivingSite) {
  Fixture f;
  Network network(f.latency);
  EchoHandler near_handler, far_handler;
  near_handler.tag = 1;
  far_handler.tag = 2;
  network.RegisterServer(f.service, f.near, near_handler);
  network.RegisterServer(f.service, f.far, far_handler);
  FaultPlan plan;
  plan.outages.push_back({f.near, {1000, 2000}});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  // Inside the window the anycast winner is the surviving far site.
  auto during = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1500);
  ASSERT_TRUE(during.delivered());
  EXPECT_EQ(during.server_site, f.far);
  // Outside the window the near site is back.
  auto after = network.Query(f.src, f.client, f.service, dns::Transport::kUdp,
                             {1}, 2000);
  ASSERT_TRUE(after.delivered());
  EXPECT_EQ(after.server_site, f.near);
}

TEST(FaultInjectorTest, FullOutageBlackholes) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.outages.push_back({f.near, {}});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1000);
  EXPECT_EQ(result.status, Network::SendStatus::kTimeout);
  EXPECT_EQ(handler.count, 0);
}

TEST(FaultInjectorTest, LatencySpikeInflatesRtt) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.spikes.push_back({kAnySite, {}, 2.0, 1000});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1000);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.rtt_us, 2 * 24000u + 1000u);
}

TEST(FaultInjectorTest, BrownoutFlagsServfailAndStillDelivers) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  network.RegisterServer(f.service, f.near, handler);
  FaultPlan plan;
  plan.brownouts.push_back({kAnySite, {}, 1.0, 500});
  FaultInjector injector(plan, 42);
  network.SetFaultInjector(&injector);

  auto result = network.Query(f.src, f.client, f.service,
                              dns::Transport::kUdp, {1}, 1000);
  ASSERT_TRUE(result.delivered());
  EXPECT_TRUE(handler.last_ctx.brownout_servfail);
  EXPECT_EQ(result.rtt_us, 24000u + 500u);
}

TEST(FaultInjectorTest, DecisionsAreDeterministicAcrossInstances) {
  FaultPlan plan;
  plan.loss.push_back({kAnySite, std::nullopt, {}, 0.5, 0.3});
  plan.brownouts.push_back({kAnySite, {}, 0.25, 0});
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  net::Endpoint src{*net::IpAddress::Parse("10.1.2.3"), 1234};
  for (TimeUs t = 0; t < 200; ++t) {
    FaultDecision da = a.Evaluate(3, dns::Transport::kUdp, t * 1000, src);
    FaultDecision db = b.Evaluate(3, dns::Transport::kUdp, t * 1000, src);
    EXPECT_EQ(da.lose_query, db.lose_query);
    EXPECT_EQ(da.lose_response, db.lose_response);
    EXPECT_EQ(da.servfail, db.servfail);
  }
}

TEST(FaultInjectorTest, LossRateApproximatesConfiguredProbability) {
  FaultPlan plan;
  plan.loss.push_back({kAnySite, std::nullopt, {}, 0.3, 0.0});
  FaultInjector injector(plan, 99);
  net::Endpoint src{*net::IpAddress::Parse("10.1.2.3"), 1234};
  int lost = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (injector.Evaluate(1, dns::Transport::kUdp, i * 1000, src).lose_query) {
      ++lost;
    }
  }
  double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(FaultInjectorTest, HashDistinguishesPlans) {
  FaultPlan a;
  a.loss.push_back({kAnySite, std::nullopt, {}, 0.25, 0.15});
  FaultPlan b = a;
  b.loss[0].query_loss = 0.26;
  FaultPlan c = a;
  c.outages.push_back({1, {0, 100}});
  EXPECT_NE(HashFaultPlan(a), HashFaultPlan(b));
  EXPECT_NE(HashFaultPlan(a), HashFaultPlan(c));
  EXPECT_EQ(HashFaultPlan(a), HashFaultPlan(FaultPlan{a}));
  EXPECT_EQ(HashFaultPlan(FaultPlan{}), HashFaultPlan(FaultPlan{}));
}

TEST(SendStatusTest, ReasonsReportedWithoutInjector) {
  Fixture f;
  Network network(f.latency);
  auto no_route = network.Query(f.src, f.client, f.service,
                                dns::Transport::kUdp, {1}, 0);
  EXPECT_EQ(no_route.status, Network::SendStatus::kNoRoute);
  EXPECT_FALSE(no_route.delivered());
  EXPECT_FALSE(no_route.timed_out());

  EchoHandler handler;
  handler.drop = true;
  network.RegisterServer(f.service, f.near, handler);
  auto dropped = network.Query(f.src, f.client, f.service,
                               dns::Transport::kUdp, {1}, 0);
  EXPECT_EQ(dropped.status, Network::SendStatus::kServerDropped);
  EXPECT_FALSE(dropped.timed_out());
}

}  // namespace
}  // namespace clouddns::sim
