#include "sim/clock.h"

#include <gtest/gtest.h>

namespace clouddns::sim {
namespace {

TEST(CivilDateTest, EpochIsDayZero) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(CivilFromDays(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilDateTest, KnownDates) {
  // The paper's capture weeks.
  EXPECT_EQ(DaysFromCivil({2018, 11, 4}), 17839);
  EXPECT_EQ(DaysFromCivil({2019, 11, 3}), 18203);
  EXPECT_EQ(DaysFromCivil({2020, 4, 5}), 18357);
}

TEST(CivilDateTest, RoundTripAcrossRange) {
  for (std::int64_t day = 17000; day < 19000; ++day) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(day)), day);
  }
}

TEST(CivilDateTest, LeapYearHandling) {
  // 2020 is a leap year.
  std::int64_t feb28 = DaysFromCivil({2020, 2, 28});
  EXPECT_EQ(CivilFromDays(feb28 + 1), (CivilDate{2020, 2, 29}));
  EXPECT_EQ(CivilFromDays(feb28 + 2), (CivilDate{2020, 3, 1}));
  // 2019 is not.
  std::int64_t feb28_19 = DaysFromCivil({2019, 2, 28});
  EXPECT_EQ(CivilFromDays(feb28_19 + 1), (CivilDate{2019, 3, 1}));
}

TEST(CivilDateTest, TimeConversion) {
  TimeUs t = TimeFromCivil({2020, 4, 5});
  EXPECT_EQ(CivilFromTime(t), (CivilDate{2020, 4, 5}));
  EXPECT_EQ(CivilFromTime(t + kMicrosPerDay - 1), (CivilDate{2020, 4, 5}));
  EXPECT_EQ(CivilFromTime(t + kMicrosPerDay), (CivilDate{2020, 4, 6}));
}

TEST(CivilDateTest, MonthKeyAndDateString) {
  TimeUs t = TimeFromCivil({2019, 12, 15});
  EXPECT_EQ(MonthKey(t), "2019-12");
  EXPECT_EQ(DateString(t), "2019-12-15");
  EXPECT_EQ(MonthKey(TimeFromCivil({2020, 2, 1})), "2020-02");
}

TEST(ClockTest, AdvancesMonotonically) {
  Clock clock(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.now(), 150u);
  clock.AdvanceTo(120);  // backwards AdvanceTo is ignored
  EXPECT_EQ(clock.now(), 150u);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.now(), 300u);
}

}  // namespace
}  // namespace clouddns::sim
