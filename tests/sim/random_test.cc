#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace clouddns::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(9);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(8)]++;
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 80);  // within 10%
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  DiscreteSampler sampler({1.0, 2.0, 7.0});
  Rng rng(17);
  std::array<int, 3> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.01);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({0.0, 1.0});
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(DiscreteSamplerTest, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
}

TEST(ZipfSamplerTest, HeadDominatesTail) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(23);
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;

  // With s=1 and n=1000, H_1000 ~ 7.485; P(rank 1) ~ 13.4%.
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.134, 0.01);
  // Rank 1 should be drawn about twice as often as rank 2.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.15);
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(29);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(ZipfSamplerTest, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace clouddns::sim
