#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/latency.h"

namespace clouddns::sim {
namespace {

class EchoHandler : public PacketHandler {
 public:
  void HandlePacket(const PacketContext& ctx, const dns::WireBuffer& query,
                    dns::WireBuffer& response) override {
    last_ctx = ctx;
    ++count;
    if (drop) return;
    response = query;
    response.push_back(tag);
  }
  using PacketHandler::HandlePacket;

  PacketContext last_ctx;
  int count = 0;
  bool drop = false;
  std::uint8_t tag = 0;
};

struct Fixture {
  Fixture() {
    near = latency.AddSite({"NEAR", 0, 0, 1.0, 0.0});
    far = latency.AddSite({"FAR", 100, 0, 1.0, 0.0});
    client = latency.AddSite({"CLIENT", 10, 0, 1.0, 0.0});
  }
  LatencyModel latency;
  SiteId near, far, client;
};

TEST(LatencyModelTest, RttScalesWithDistance) {
  Fixture f;
  std::uint32_t near_rtt = f.latency.RttUs(f.client, f.near, false);
  std::uint32_t far_rtt = f.latency.RttUs(f.client, f.far, false);
  EXPECT_LT(near_rtt, far_rtt);
  // client<->near: distance 10ms + 2ms access, doubled = 24ms.
  EXPECT_EQ(near_rtt, 24000u);
}

TEST(LatencyModelTest, V6PenaltyApplies) {
  LatencyModel latency;
  SiteId a = latency.AddSite({"A", 0, 0, 1.0, 30.0});
  SiteId b = latency.AddSite({"B", 10, 0, 1.0, 0.0});
  EXPECT_EQ(latency.RttUs(a, b, false), 24000u);
  EXPECT_EQ(latency.RttUs(a, b, true), 84000u);  // +2*30ms one-way penalty
}

TEST(NetworkTest, RoutesToRegisteredService) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  auto service = *net::IpAddress::Parse("192.0.2.53");
  network.RegisterServer(service, f.near, handler);

  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  dns::WireBuffer query = {1, 2, 3};
  auto result = network.Query(src, f.client, service, dns::Transport::kUdp,
                              query, 1000);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.response.size(), 4u);
  EXPECT_EQ(result.server_site, f.near);
  EXPECT_EQ(result.rtt_us, 24000u);
  EXPECT_EQ(handler.last_ctx.src.port, 5353);
  EXPECT_EQ(handler.last_ctx.transport, dns::Transport::kUdp);
  EXPECT_EQ(handler.last_ctx.handshake_rtt_us, 0u);
}

TEST(NetworkTest, UnknownDestinationFailsWithoutDefaultRoute) {
  Fixture f;
  Network network(f.latency);
  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  auto result = network.Query(src, f.client,
                              *net::IpAddress::Parse("203.0.113.1"),
                              dns::Transport::kUdp, {1}, 0);
  EXPECT_FALSE(result.delivered());
}

TEST(NetworkTest, DefaultRouteCatchesUnknownDestinations) {
  Fixture f;
  Network network(f.latency);
  EchoHandler leaf;
  network.SetDefaultRoute(f.far, leaf);

  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 1234};
  auto result = network.Query(src, f.client,
                              *net::IpAddress::Parse("203.0.113.1"),
                              dns::Transport::kUdp, {1}, 0);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.server_site, f.far);
  EXPECT_EQ(leaf.count, 1);
}

TEST(NetworkTest, AnycastPicksNearestSite) {
  Fixture f;
  Network network(f.latency);
  EchoHandler near_handler, far_handler;
  near_handler.tag = 1;
  far_handler.tag = 2;
  auto service = *net::IpAddress::Parse("192.0.2.53");
  network.RegisterServer(service, f.far, far_handler);
  network.RegisterServer(service, f.near, near_handler);

  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  auto result = network.Query(src, f.client, service, dns::Transport::kUdp,
                              {7}, 0);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.server_site, f.near);
  EXPECT_EQ(near_handler.count, 1);
  EXPECT_EQ(far_handler.count, 0);
}

TEST(NetworkTest, TcpCostsExtraRoundTripAndReportsHandshake) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  auto service = *net::IpAddress::Parse("192.0.2.53");
  network.RegisterServer(service, f.near, handler);

  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  auto udp = network.Query(src, f.client, service, dns::Transport::kUdp, {1},
                           0);
  auto tcp = network.Query(src, f.client, service, dns::Transport::kTcp, {1},
                           0);
  EXPECT_EQ(tcp.rtt_us, 2 * udp.rtt_us);
  EXPECT_EQ(handler.last_ctx.handshake_rtt_us, udp.rtt_us);
}

TEST(NetworkTest, DroppedResponseIsNotDelivered) {
  Fixture f;
  Network network(f.latency);
  EchoHandler handler;
  handler.drop = true;
  auto service = *net::IpAddress::Parse("192.0.2.53");
  network.RegisterServer(service, f.near, handler);

  net::Endpoint src{*net::IpAddress::Parse("10.0.0.1"), 5353};
  auto result = network.Query(src, f.client, service, dns::Transport::kUdp,
                              {1}, 0);
  EXPECT_FALSE(result.delivered());
  EXPECT_EQ(handler.count, 1);
}

}  // namespace
}  // namespace clouddns::sim
