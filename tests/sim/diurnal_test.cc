#include "sim/diurnal.h"

#include <gtest/gtest.h>

#include <array>

namespace clouddns::sim {
namespace {

TEST(DiurnalWarpTest, TimesAreMonotoneAndInsideWindow) {
  TimeUs start = TimeFromCivil({2020, 4, 5});
  TimeUs end = start + 7 * kMicrosPerDay;
  DiurnalWarp warp(start, end, 0.45);
  TimeUs previous = 0;
  constexpr std::uint64_t kTotal = 10'000;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    TimeUs t = warp.TimeOf(i, kTotal);
    EXPECT_GE(t, start);
    EXPECT_LT(t, end);
    EXPECT_GE(t, previous);
    previous = t;
  }
}

TEST(DiurnalWarpTest, ZeroAmplitudeIsUniform) {
  TimeUs start = TimeFromCivil({2020, 4, 5});
  DiurnalWarp warp(start, start + kMicrosPerDay, 0.0);
  constexpr std::uint64_t kTotal = 24'000;
  std::array<int, 24> hourly{};
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    TimeUs t = warp.TimeOf(i, kTotal);
    hourly[(t - start) / (kMicrosPerDay / 24)]++;
  }
  for (int count : hourly) EXPECT_NEAR(count, 1000, 30);
}

TEST(DiurnalWarpTest, AmplitudeCreatesPeakToTroughSwing) {
  TimeUs start = TimeFromCivil({2020, 4, 5});
  DiurnalWarp warp(start, start + kMicrosPerDay, 0.5);
  constexpr std::uint64_t kTotal = 240'000;
  std::array<int, 24> hourly{};
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    TimeUs t = warp.TimeOf(i, kTotal);
    hourly[std::min<TimeUs>(23, (t - start) / (kMicrosPerDay / 24))]++;
  }
  int peak = *std::max_element(hourly.begin(), hourly.end());
  int trough = *std::min_element(hourly.begin(), hourly.end());
  // rate 1 +/- 0.5 -> 3:1 instantaneous; hourly binning smooths a little.
  EXPECT_GT(static_cast<double>(peak) / trough, 2.2);
  EXPECT_LT(static_cast<double>(peak) / trough, 3.6);
  // Total is conserved.
  int sum = 0;
  for (int count : hourly) sum += count;
  EXPECT_EQ(sum, kTotal);
}

TEST(DiurnalWarpTest, PeakLandsNearConfiguredHour) {
  TimeUs start = TimeFromCivil({2020, 4, 5});  // midnight
  DiurnalWarp warp(start, start + kMicrosPerDay, 0.5, /*peak_hour=*/15.0);
  constexpr std::uint64_t kTotal = 240'000;
  std::array<int, 24> hourly{};
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    hourly[std::min<TimeUs>(
        23, (warp.TimeOf(i, kTotal) - start) / (kMicrosPerDay / 24))]++;
  }
  int peak_hour = static_cast<int>(
      std::max_element(hourly.begin(), hourly.end()) - hourly.begin());
  EXPECT_NEAR(peak_hour, 15, 1);
}

TEST(DiurnalWarpTest, WeeklyWindowRepeatsDaily) {
  TimeUs start = TimeFromCivil({2018, 11, 4});
  TimeUs end = start + 7 * kMicrosPerDay;
  DiurnalWarp warp(start, end, 0.4);
  constexpr std::uint64_t kTotal = 700'000;
  std::array<int, 7> daily{};
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    daily[std::min<TimeUs>(6, (warp.TimeOf(i, kTotal) - start) /
                                  kMicrosPerDay)]++;
  }
  // Whole days carry equal volume (the paper's reason for weekly windows).
  for (int count : daily) EXPECT_NEAR(count, 100'000, 2'500);
}

TEST(DiurnalWarpTest, DegenerateInputsAreSafe) {
  DiurnalWarp warp(100, 100, 0.5);  // empty window
  EXPECT_EQ(warp.TimeOf(0, 0), 100u);
  EXPECT_GE(warp.TimeOf(5, 10), 100u);
}

}  // namespace
}  // namespace clouddns::sim
