#include "cloud/fleet.h"

#include <gtest/gtest.h>

#include "cloud/scenario.h"

namespace clouddns::cloud {
namespace {

struct FleetFixture {
  FleetFixture() {
    for (int i = 0; i < 6; ++i) {
      sites.push_back(latency.AddSite(
          {"S" + std::to_string(i), 10.0 * i, 0, 1.0, 0.0}));
    }
    network = std::make_unique<sim::Network>(latency);
    ctx.latency = &latency;
    ctx.network = network.get();
    ctx.root_v4 = {*net::IpAddress::Parse("198.41.0.4")};
    ctx.root_v6 = {*net::IpAddress::Parse("2001:500:1::53")};
    ctx.resolver_sites = sites;
    ctx.fleet_scale = 0.01;
    ctx.seed = 7;
  }

  sim::LatencyModel latency;
  std::vector<sim::SiteId> sites;
  std::unique_ptr<sim::Network> network;
  FleetBuildContext ctx;
};

TEST(FleetTest, GoogleFleetSplitsPublicAndRest) {
  FleetFixture f;
  Fleet fleet = BuildProviderFleet(ProfileFor(Provider::kGoogle, 2020), f.ctx);
  ASSERT_EQ(fleet.engines.size(), 10u);

  double public_weight = 0, total_weight = 0;
  int public_engines = 0;
  for (std::size_t e = 0; e < fleet.engines.size(); ++e) {
    total_weight += fleet.engine_weights[e];
    if (fleet.engine_is_public[e]) {
      public_weight += fleet.engine_weights[e];
      ++public_engines;
      // The public service validates and minimizes...
      EXPECT_TRUE(fleet.engines[e]->config().validate_dnssec);
      EXPECT_TRUE(fleet.engines[e]->config().qname_minimization);
    } else {
      // ...the rest of the infrastructure does neither.
      EXPECT_FALSE(fleet.engines[e]->config().validate_dnssec);
      EXPECT_FALSE(fleet.engines[e]->config().qname_minimization);
    }
  }
  EXPECT_EQ(public_engines, 5);
  EXPECT_NEAR(public_weight / total_weight, 0.91, 0.001);  // Table 4 target
  // (0.91 of client load yields ~86.5% of *captured* queries; the public
  // engines' big shared caches absorb proportionally more).
}

TEST(FleetTest, GooglePublicHostsLiveInAdvertisedRanges) {
  FleetFixture f;
  Fleet fleet = BuildProviderFleet(ProfileFor(Provider::kGoogle, 2020), f.ctx);
  const auto& network_info = NetworkOf(Provider::kGoogle);
  auto in_public = [&network_info](const net::IpAddress& address) {
    for (const auto& block : network_info.public_dns_blocks) {
      if (block.Contains(address)) return true;
    }
    return false;
  };
  for (std::size_t e = 0; e < fleet.engines.size(); ++e) {
    for (const auto& host : fleet.engines[e]->config().hosts) {
      if (host.v4) {
        EXPECT_EQ(in_public(*host.v4), fleet.engine_is_public[e])
            << host.v4->ToString();
      }
    }
  }
}

TEST(FleetTest, FacebookHasThirteenSitesWithAirportPtrs) {
  FleetFixture f;
  Fleet fleet =
      BuildProviderFleet(ProfileFor(Provider::kFacebook, 2020), f.ctx);
  EXPECT_EQ(fleet.engines.size(), 13u);
  EXPECT_EQ(FacebookSiteCodes().size(), 13u);

  // Every host is dual-stack; most PTR names embed the v4 address.
  int embedded = 0, total_names = 0;
  for (const auto& [address, name] : fleet.ptr_records) {
    ++total_names;
    embedded += name.Label(0).find("edge-dns-") == 0 &&
                name.Label(0).find("r") != 9;  // "edge-dns-r<h>" = no embed
  }
  EXPECT_GT(total_names, 0);
  EXPECT_GT(embedded, total_names / 2);

  // The dominant engine (Location 1) must be pinned to EDNS 4096.
  EXPECT_EQ(fleet.engines[0]->config().edns_udp_size, 4096);
  double w0 = fleet.engine_weights[0];
  for (double w : fleet.engine_weights) EXPECT_LE(w, w0);
}

TEST(FleetTest, FacebookDualStackPtrNamesMatchAcrossFamilies) {
  FleetFixture f;
  Fleet fleet =
      BuildProviderFleet(ProfileFor(Provider::kFacebook, 2020), f.ctx);
  // Group PTR records by name: dual-stack hosts appear once per family.
  std::map<std::string, std::pair<int, int>> by_name;  // v4 count, v6 count
  for (const auto& [address, name] : fleet.ptr_records) {
    auto& entry = by_name[name.ToKey()];
    (address.is_v4() ? entry.first : entry.second)++;
  }
  int dual = 0;
  for (const auto& [name, counts] : by_name) {
    dual += counts.first == 1 && counts.second == 1;
  }
  EXPECT_GT(dual, 10);
}

TEST(FleetTest, MicrosoftFleetIsEffectivelyV4) {
  FleetFixture f;
  Fleet fleet =
      BuildProviderFleet(ProfileFor(Provider::kMicrosoft, 2020), f.ctx);
  std::size_t v6_hosts = 0, hosts = 0;
  for (const auto& engine : fleet.engines) {
    EXPECT_FALSE(engine->config().validate_dnssec);
    for (const auto& host : engine->config().hosts) {
      ++hosts;
      v6_hosts += host.v6.has_value();
    }
  }
  EXPECT_LT(static_cast<double>(v6_hosts) / static_cast<double>(hosts), 0.15);
}

TEST(FleetTest, CloudflareUsesExplicitDsProbing) {
  FleetFixture f;
  Fleet cloudflare =
      BuildProviderFleet(ProfileFor(Provider::kCloudflare, 2020), f.ctx);
  for (const auto& engine : cloudflare.engines) {
    EXPECT_TRUE(engine->config().explicit_ds_fetch);
    EXPECT_TRUE(engine->config().qname_minimization);
  }
  Fleet google = BuildProviderFleet(ProfileFor(Provider::kGoogle, 2020), f.ctx);
  for (const auto& engine : google.engines) {
    EXPECT_FALSE(engine->config().explicit_ds_fetch);
  }
}

TEST(FleetTest, OtherFleetAnnouncesOneAsPerEngine) {
  FleetFixture f;
  net::AsDatabase asdb;
  Fleet fleet = BuildOtherFleet(2020, 50, asdb, f.ctx);
  EXPECT_EQ(fleet.engines.size(), 50u);
  EXPECT_EQ(fleet.engine_asns.size(), 50u);
  EXPECT_EQ(asdb.as_count(), 50u);
  // Every engine's hosts route back to its own AS.
  for (std::size_t e = 0; e < fleet.engines.size(); ++e) {
    for (const auto& host : fleet.engines[e]->config().hosts) {
      if (host.v4) {
        EXPECT_EQ(asdb.OriginAs(*host.v4), fleet.engine_asns[e]);
      }
      if (host.v6) {
        EXPECT_EQ(asdb.OriginAs(*host.v6), fleet.engine_asns[e]);
      }
    }
  }
}

TEST(FleetTest, OtherFleetLoadIsHeavyTailed) {
  FleetFixture f;
  net::AsDatabase asdb;
  Fleet fleet = BuildOtherFleet(2020, 100, asdb, f.ctx);
  EXPECT_GT(fleet.engine_weights.front(), fleet.engine_weights.back() * 10);
}

TEST(FleetTest, QminOffOverrideReachesEveryEngine) {
  FleetFixture f;
  f.ctx.qmin_off = true;
  net::AsDatabase asdb;
  Fleet fleet = BuildOtherFleet(2020, 80, asdb, f.ctx);
  for (const auto& engine : fleet.engines) {
    EXPECT_FALSE(engine->config().qname_minimization);
  }
}

TEST(FleetTest, HostCountScalesWithFleetScale) {
  FleetFixture f;
  Fleet small = BuildProviderFleet(ProfileFor(Provider::kAmazon, 2020), f.ctx);
  f.ctx.fleet_scale = 0.02;
  Fleet large = BuildProviderFleet(ProfileFor(Provider::kAmazon, 2020), f.ctx);
  EXPECT_GT(large.host_count(), small.host_count() * 3 / 2);
}

}  // namespace
}  // namespace clouddns::cloud
