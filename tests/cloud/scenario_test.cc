// Scenario integration tests: small end-to-end runs asserting the
// headline *shapes* the benches report at full budget. Budgets here are
// kept small so the whole file runs in seconds.
#include "cloud/scenario.h"

#include <gtest/gtest.h>

#include "analysis/experiments.h"

namespace clouddns::cloud {
namespace {

ScenarioConfig SmallConfig(Vantage vantage, int year) {
  ScenarioConfig config;
  config.vantage = vantage;
  config.year = year;
  config.client_queries = 40'000;
  config.zone_scale = 0.001;
  return config;
}

TEST(ScenarioTest, WeekStartMatchesPaperDates) {
  EXPECT_EQ(sim::DateString(WeekStart(Vantage::kNl, 2018)), "2018-11-04");
  EXPECT_EQ(sim::DateString(WeekStart(Vantage::kNl, 2020)), "2020-04-05");
  EXPECT_EQ(sim::DateString(WeekStart(Vantage::kRoot, 2020)), "2020-05-06");
  EXPECT_EQ(WindowLength(Vantage::kNl), 7 * sim::kMicrosPerDay);
  EXPECT_EQ(WindowLength(Vantage::kRoot), sim::kMicrosPerDay);
}

TEST(ScenarioTest, NlCapturesOnlyTheTwoMonitoredServers) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  ASSERT_FALSE(result.records.empty());
  for (const auto& record : result.records) {
    EXPECT_LT(record.server_id, 2u);
  }
  int captured = 0, cctld_servers = 0;
  for (const auto& server : result.servers) {
    if (server.id >= 100) continue;  // root letters
    ++cctld_servers;
    captured += server.captured;
  }
  EXPECT_EQ(cctld_servers, 3 + 7);  // .nl 2020 has 3 NSes, .nz has 7
  EXPECT_EQ(captured, 2);
}

TEST(ScenarioTest, RecordsAreTimeOrderedAndInsideWindow) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  sim::TimeUs previous = 0;
  for (const auto& record : result.records) {
    EXPECT_GE(record.time_us, previous);
    EXPECT_GE(record.time_us, result.window_start);
    previous = record.time_us;
  }
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  auto a = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto b = RunScenario(SmallConfig(Vantage::kNl, 2020));
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.records.front(), b.records.front());
  EXPECT_EQ(a.records.back(), b.records.back());
}

TEST(ScenarioTest, SeedChangesTraffic) {
  auto a = RunScenario(SmallConfig(Vantage::kNl, 2020));
  ScenarioConfig other = SmallConfig(Vantage::kNl, 2020);
  other.seed ^= 1;
  auto b = RunScenario(other);
  EXPECT_NE(a.records.size(), b.records.size());
}

TEST(ScenarioTest, CloudShareIsAboutOneThirdAtCcTld) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto shares = analysis::ComputeCloudShares(result);
  double cp_share = shares.back().share;
  EXPECT_GT(cp_share, 0.22);
  EXPECT_LT(cp_share, 0.45);
  // Google is the largest CP (§4.1).
  EXPECT_EQ(shares[0].provider, Provider::kGoogle);
  for (std::size_t i = 1; i + 1 < shares.size(); ++i) {
    EXPECT_GE(shares[0].queries, shares[i].queries);
  }
}

TEST(ScenarioTest, RootSeesFarLessCloudAndFarMoreJunk) {
  ScenarioConfig config = SmallConfig(Vantage::kRoot, 2020);
  config.client_queries = 120'000;
  auto root = RunScenario(config);
  auto cctld = RunScenario(SmallConfig(Vantage::kNl, 2020));

  // At bench scale the gap is ~6-12% vs ~30%; the reduced test budget
  // inflates the root's TTL-driven maintenance share, so the bound here
  // is looser but still requires a clear contrast.
  double root_cp = analysis::ComputeCloudShares(root).back().share;
  double cctld_cp = analysis::ComputeCloudShares(cctld).back().share;
  EXPECT_LT(root_cp, cctld_cp * 0.65);

  // At this reduced test budget the root's TTL-driven maintenance traffic
  // weighs more than at bench scale, so the junk threshold is looser; the
  // root-vs-ccTLD contrast is what matters.
  double root_junk = analysis::ComputeJunkRatio(root, std::nullopt);
  double cctld_junk = analysis::ComputeJunkRatio(cctld, std::nullopt);
  EXPECT_GT(root_junk, 0.40);
  EXPECT_LT(cctld_junk, 0.35);
  EXPECT_GT(root_junk, cctld_junk * 1.5);
}

TEST(ScenarioTest, MicrosoftIsPureV4UdpEveryYear) {
  for (int year : {2018, 2020}) {
    auto result = RunScenario(SmallConfig(Vantage::kNl, year));
    auto mix = analysis::ComputeTransportMix(result, Provider::kMicrosoft);
    ASSERT_GT(mix.total, 100u);
    EXPECT_GT(mix.ipv4, 0.99);
    EXPECT_GT(mix.udp, 0.99);
  }
}

TEST(ScenarioTest, FacebookPrefersV6From2019) {
  auto y2018 = RunScenario(SmallConfig(Vantage::kNl, 2018));
  auto y2020 = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto mix2018 = analysis::ComputeTransportMix(y2018, Provider::kFacebook);
  auto mix2020 = analysis::ComputeTransportMix(y2020, Provider::kFacebook);
  EXPECT_NEAR(mix2018.ipv6, 0.48, 0.15);
  EXPECT_GT(mix2020.ipv6, 0.60);
  // Facebook is the only CP with a material TCP share.
  EXPECT_GT(mix2020.tcp, 0.05);
  auto google = analysis::ComputeTransportMix(y2020, Provider::kGoogle);
  EXPECT_LT(google.tcp, 0.005);
}

TEST(ScenarioTest, GooglePublicSplitNearTableFour) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto split = analysis::ComputeGoogleSplit(result);
  EXPECT_NEAR(split.QueryRatio(), 0.865, 0.08);
  EXPECT_LT(split.ResolverRatio(), 0.35);
}

TEST(ScenarioTest, QminShowsUpOnlyIn2020NsMix) {
  auto y2019 = RunScenario(SmallConfig(Vantage::kNl, 2019));
  auto y2020 = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto ns2019 = analysis::ComputeRrTypeMix(y2019, Provider::kGoogle)["NS"];
  auto ns2020 = analysis::ComputeRrTypeMix(y2020, Provider::kGoogle)["NS"];
  EXPECT_LT(ns2019, 0.10);
  EXPECT_GT(ns2020, 0.40);
}

TEST(ScenarioTest, QminOverrideKillsTheNsSurge) {
  ScenarioConfig config = SmallConfig(Vantage::kNl, 2020);
  config.qmin_override_off = true;
  auto result = RunScenario(config);
  auto ns = analysis::ComputeRrTypeMix(result, Provider::kGoogle)["NS"];
  EXPECT_LT(ns, 0.10);
}

TEST(ScenarioTest, CloudflareDsExceedsDnskey) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  auto mix = analysis::ComputeRrTypeMix(result, Provider::kCloudflare);
  EXPECT_GT(mix["DS"], mix["DNSKEY"] * 2);
  auto microsoft = analysis::ComputeRrTypeMix(result, Provider::kMicrosoft);
  EXPECT_LT(microsoft["DS"] + microsoft["DNSKEY"], 0.01);
}

TEST(ScenarioTest, PtrRecordsCoverFacebookSources) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  std::unordered_map<net::IpAddress, bool, net::IpAddressHash> has_ptr;
  for (const auto& [address, name] : result.ptr_records) {
    has_ptr[address] = true;
  }
  int facebook_sources = 0, with_ptr = 0;
  for (const auto& record : result.records) {
    if (analysis::ProviderOfRecord(result, record) != Provider::kFacebook) {
      continue;
    }
    ++facebook_sources;
    with_ptr += has_ptr.count(record.src) > 0;
  }
  ASSERT_GT(facebook_sources, 0);
  // Nearly all Facebook sources have PTR records (the paper saw only 3
  // addresses without).
  EXPECT_GT(with_ptr, facebook_sources * 9 / 10);
}

TEST(ScenarioTest, GoogleOnlyModeSilencesOtherFleets) {
  ScenarioConfig config = SmallConfig(Vantage::kNl, 2020);
  config.google_only = true;
  auto result = RunScenario(config);
  for (const auto& record : result.records) {
    EXPECT_EQ(analysis::ProviderOfRecord(result, record), Provider::kGoogle);
  }
}

TEST(ScenarioTest, ZoneScaleControlsDomainCount) {
  auto result = RunScenario(SmallConfig(Vantage::kNl, 2020));
  // 5.9M * 0.001 (plus the unscaled .nz zones built alongside).
  EXPECT_GT(result.zone_domain_count, 5'000u);
  EXPECT_LT(result.zone_domain_count, 8'000u);
}

}  // namespace
}  // namespace clouddns::cloud
