// Determinism contract of the parallel scenario engine: the merged capture
// stream is BYTE-IDENTICAL for every thread count (threads only schedule
// shards onto workers; the shard count determines the realization), and the
// headline aggregates (Table 3 / Fig. 1) follow suit.
#include <gtest/gtest.h>

#include "analysis/dataset_cache.h"
#include "analysis/experiments.h"
#include "cloud/scenario.h"
#include "entrada/plan.h"

namespace clouddns::cloud {
namespace {

ScenarioConfig SmallConfig(std::size_t threads) {
  ScenarioConfig config;
  config.vantage = Vantage::kNl;
  config.year = 2020;
  config.client_queries = 40'000;
  config.zone_scale = 0.001;
  config.threads = threads;
  return config;
}

TEST(ParallelScenarioTest, ByteIdenticalAcrossThreadCounts) {
  auto one = RunScenario(SmallConfig(1));
  auto two = RunScenario(SmallConfig(2));
  auto eight = RunScenario(SmallConfig(8));

  ASSERT_FALSE(one.records.empty());
  ASSERT_EQ(one.records.size(), two.records.size());
  ASSERT_EQ(one.records.size(), eight.records.size());
  // CaptureRecord has defaulted operator==; compare every field of every
  // record across the three runs.
  EXPECT_TRUE(one.records == two.records);
  EXPECT_TRUE(one.records == eight.records);

  EXPECT_EQ(one.client_queries_issued, two.client_queries_issued);
  EXPECT_EQ(one.client_queries_issued, eight.client_queries_issued);
  EXPECT_EQ(one.leaf_queries, two.leaf_queries);
  EXPECT_EQ(one.leaf_queries, eight.leaf_queries);
  EXPECT_EQ(one.client_queries_per_provider, two.client_queries_per_provider);
  EXPECT_EQ(one.client_queries_per_provider,
            eight.client_queries_per_provider);
}

TEST(ParallelScenarioTest, AggregatesIdenticalAcrossThreadCounts) {
  auto one = RunScenario(SmallConfig(1));
  auto eight = RunScenario(SmallConfig(8));

  // Table 3 numbers.
  auto stats_one = analysis::ComputeDatasetStats(one);
  auto stats_eight = analysis::ComputeDatasetStats(eight);
  EXPECT_EQ(stats_one.queries_total, stats_eight.queries_total);
  EXPECT_EQ(stats_one.queries_valid, stats_eight.queries_valid);
  EXPECT_EQ(stats_one.resolvers_exact, stats_eight.resolvers_exact);
  EXPECT_EQ(stats_one.ases_exact, stats_eight.ases_exact);
  EXPECT_DOUBLE_EQ(stats_one.resolvers_hll, stats_eight.resolvers_hll);
  EXPECT_DOUBLE_EQ(stats_one.ases_hll, stats_eight.ases_hll);

  // Fig. 1 numbers.
  auto shares_one = analysis::ComputeCloudShares(one);
  auto shares_eight = analysis::ComputeCloudShares(eight);
  ASSERT_EQ(shares_one.size(), shares_eight.size());
  for (std::size_t i = 0; i < shares_one.size(); ++i) {
    EXPECT_EQ(shares_one[i].queries, shares_eight[i].queries);
    EXPECT_DOUBLE_EQ(shares_one[i].share, shares_eight[i].share);
  }
}

TEST(ParallelScenarioTest, ShardCountChangesRealizationButStaysValid) {
  // Unlike threads, the shard count IS part of the statistical
  // configuration: per-shard workload substreams produce a different
  // (equally valid) traffic realization.
  auto base = RunScenario(SmallConfig(1));
  ScenarioConfig coarse = SmallConfig(1);
  coarse.shards = 4;
  auto other = RunScenario(coarse);
  EXPECT_NE(base.records.size(), other.records.size());
  EXPECT_EQ(base.client_queries_issued, other.client_queries_issued);
}

TEST(ParallelScenarioTest, CacheKeyTracksShardsButNeverThreads) {
  ScenarioConfig a = SmallConfig(1);
  ScenarioConfig b = SmallConfig(8);
  EXPECT_EQ(analysis::CacheKey(a), analysis::CacheKey(b));

  ScenarioConfig c = SmallConfig(1);
  c.shards = 4;
  EXPECT_NE(analysis::CacheKey(a), analysis::CacheKey(c));
}

// Snapshot of every plan-op family over a scenario capture — the payload
// compared between the shard-wise scan and the flatten-then-scan baseline.
struct PlanSnapshot {
  std::uint64_t valid;
  entrada::Aggregation by_qtype;
  std::uint64_t resolvers;
  double resolvers_hll;
  double query_size_median;

  friend bool operator==(const PlanSnapshot& a, const PlanSnapshot& b) {
    return a.valid == b.valid && a.by_qtype.total == b.by_qtype.total &&
           a.by_qtype.counts == b.by_qtype.counts &&
           a.resolvers == b.resolvers && a.resolvers_hll == b.resolvers_hll &&
           a.query_size_median == b.query_size_median;
  }
};

template <typename Capture>
PlanSnapshot SnapshotPlan(const Capture& records, std::size_t threads) {
  entrada::AnalysisPlan plan;
  auto valid = plan.Count(entrada::FilterSpec::Valid());
  auto qtype = plan.GroupBy(entrada::FilterSpec::All(),
                            entrada::KeySpec::Qtype());
  auto resolvers = plan.Distinct(entrada::FilterSpec::All(),
                                 entrada::KeySpec::SrcAddress());
  auto hll = plan.Sketch(entrada::FilterSpec::All(),
                         entrada::KeySpec::SrcAddress());
  auto sizes = plan.Collect(
      entrada::FilterSpec::All(),
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        return static_cast<double>(r.query_size);
      });
  plan.Execute(records, threads);
  return {plan.CountResult(valid), plan.GroupResult(qtype),
          plan.DistinctResult(resolvers), plan.SketchResult(hll).Estimate(),
          plan.CdfResult(sizes).Quantile(0.5)};
}

TEST(ParallelScenarioTest, ShardedAnalyticsMatchFlattenThenScan) {
  // The tentpole contract: scanning the scenario's shard buffers in place
  // must reproduce the flatten-then-scan results exactly, at every thread
  // count.
  auto result = RunScenario(SmallConfig(2));
  ASSERT_GT(result.records.shard_count(), 1u);
  const PlanSnapshot baseline = SnapshotPlan(result.records.Flatten(), 1);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_TRUE(SnapshotPlan(result.records, threads) == baseline)
        << "sharded scan diverges at " << threads << " threads";
  }
}

TEST(ParallelScenarioTest, ShardedAnalyticsMatchUnderFaults) {
  // Fault injection skews per-shard record counts (drops, retries) — the
  // shard-wise scan must stay equivalent on those lopsided shards too.
  ScenarioConfig config = SmallConfig(2);
  config.fault_preset = FaultPreset::kLossyPath;
  auto result = RunScenario(config);
  ASSERT_FALSE(result.records.empty());
  const PlanSnapshot baseline = SnapshotPlan(result.records.Flatten(), 1);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_TRUE(SnapshotPlan(result.records, threads) == baseline)
        << "sharded scan diverges at " << threads << " threads";
  }
}

TEST(ParallelScenarioTest, DryRebuildStillWorksSharded) {
  // The cache-hit path replays a zero-query scenario to rebuild context
  // (AS database, PTR records) — it must survive the sharded engine.
  ScenarioConfig dry = SmallConfig(4);
  dry.client_queries = 0;
  auto result = RunScenario(dry);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.client_queries_issued, 0u);
  EXPECT_FALSE(result.ptr_records.empty());
}

}  // namespace
}  // namespace clouddns::cloud
