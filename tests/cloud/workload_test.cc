#include "cloud/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace clouddns::cloud {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

WorkloadSpec NlSpec() {
  WorkloadSpec spec;
  spec.suffixes = {{N("nl"), 1000, 1.0, "dom"}};
  return spec;
}

TEST(WorkloadTest, QueriesTargetTheConfiguredSuffix) {
  WorkloadGenerator generator(NlSpec(), 1);
  for (int i = 0; i < 500; ++i) {
    ClientQuery query = generator.Next();
    EXPECT_TRUE(query.qname.IsSubdomainOf(N("nl"))) << query.qname.ToString();
  }
}

TEST(WorkloadTest, JunkFractionProducesUnregisteredNames) {
  WorkloadSpec spec = NlSpec();
  spec.junk_fraction = 0.5;
  WorkloadGenerator generator(spec, 2);
  int junk = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    ClientQuery query = generator.Next();
    // Registered names embed the "dom" stem right under the suffix.
    std::string registrable(query.qname.Label(query.qname.LabelCount() - 2));
    if (registrable.rfind("dom", 0) != 0) ++junk;
  }
  EXPECT_NEAR(junk / static_cast<double>(kDraws), 0.5, 0.04);
}

TEST(WorkloadTest, ZeroJunkMeansAllRegistered) {
  WorkloadSpec spec = NlSpec();
  spec.junk_fraction = 0.0;
  WorkloadGenerator generator(spec, 3);
  for (int i = 0; i < 1000; ++i) {
    ClientQuery query = generator.Next();
    std::string registrable(query.qname.Label(query.qname.LabelCount() - 2));
    EXPECT_EQ(registrable.rfind("dom", 0), 0u) << query.qname.ToString();
  }
}

TEST(WorkloadTest, ZipfHeadDominates) {
  WorkloadSpec spec = NlSpec();
  spec.junk_fraction = 0.0;
  WorkloadGenerator generator(spec, 4);
  std::map<std::string, int> domain_counts;
  for (int i = 0; i < 20000; ++i) {
    ClientQuery query = generator.Next();
    domain_counts[std::string(query.qname.Label(query.qname.LabelCount() - 2))]++;
  }
  EXPECT_GT(domain_counts["dom0"], domain_counts["dom99"] * 5);
}

TEST(WorkloadTest, QtypeMixRoughlyMatchesSpec) {
  WorkloadSpec spec = NlSpec();
  spec.junk_fraction = 0.0;
  WorkloadGenerator generator(spec, 5);
  int a = 0, aaaa = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ClientQuery query = generator.Next();
    a += query.qtype == dns::RrType::kA;
    aaaa += query.qtype == dns::RrType::kAaaa;
  }
  EXPECT_NEAR(a / static_cast<double>(kDraws), 0.58, 0.03);
  EXPECT_NEAR(aaaa / static_cast<double>(kDraws), 0.27, 0.03);
}

TEST(WorkloadTest, ChromiumProbesAreSingleLabel) {
  WorkloadSpec spec = NlSpec();
  spec.chromium_fraction = 1.0;
  WorkloadGenerator generator(spec, 6);
  for (int i = 0; i < 200; ++i) {
    ClientQuery query = generator.Next();
    EXPECT_EQ(query.qname.LabelCount(), 1u);
    EXPECT_GE(query.qname.Label(0).size(), 7u);
    EXPECT_LE(query.qname.Label(0).size(), 15u);
    EXPECT_EQ(query.qtype, dns::RrType::kA);
  }
}

TEST(WorkloadTest, MultiSuffixWeights) {
  WorkloadSpec spec;
  spec.suffixes = {{N("nz"), 100, 0.2, "dom"},
                   {N("co.nz"), 100, 0.8, "dom"}};
  spec.junk_fraction = 0.0;
  WorkloadGenerator generator(spec, 7);
  int co = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    co += generator.Next().qname.IsSubdomainOf(N("co.nz"));
  }
  EXPECT_NEAR(co / static_cast<double>(kDraws), 0.8, 0.03);
}

TEST(WorkloadTest, InjectionOverridesTargets) {
  WorkloadGenerator generator(NlSpec(), 8);
  generator.InjectTargets({N("cyca.nz"), N("cycb.nz")}, 1.0);
  for (int i = 0; i < 100; ++i) {
    ClientQuery query = generator.Next();
    EXPECT_TRUE(query.qname.IsSubdomainOf(N("cyca.nz")) ||
                query.qname.IsSubdomainOf(N("cycb.nz")))
        << query.qname.ToString();
    EXPECT_TRUE(query.qtype == dns::RrType::kA ||
                query.qtype == dns::RrType::kAaaa);
  }
  generator.ClearInjection();
  ClientQuery after = generator.Next();
  EXPECT_TRUE(after.qname.IsSubdomainOf(N("nl")));
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadGenerator a(NlSpec(), 99), b(NlSpec(), 99);
  for (int i = 0; i < 100; ++i) {
    ClientQuery qa = a.Next();
    ClientQuery qb = b.Next();
    EXPECT_EQ(qa.qname, qb.qname);
    EXPECT_EQ(qa.qtype, qb.qtype);
  }
}

TEST(WorkloadTest, RejectsEmptySuffixList) {
  WorkloadSpec spec;
  EXPECT_THROW(WorkloadGenerator(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace clouddns::cloud
