// Chaos contract of the fault-injected scenario engine: fault-enabled runs
// keep the DESIGN.md §7 determinism guarantee (byte-identical output for
// every thread count), faults actually change the realization, the dataset
// cache key tracks the fault configuration, and the .nz-event loss preset
// reproduces the Fig. 3b retry amplification within a tolerance band.
#include <gtest/gtest.h>

#include "analysis/chaos.h"
#include "analysis/dataset_cache.h"
#include "cloud/scenario.h"

namespace clouddns::cloud {
namespace {

ScenarioConfig ChaosConfig(std::size_t threads) {
  ScenarioConfig config;
  config.vantage = Vantage::kNl;
  config.year = 2020;
  config.client_queries = 40'000;
  config.zone_scale = 0.001;
  config.threads = threads;
  config.fault_preset = FaultPreset::kLossyPath;
  return config;
}

TEST(ChaosScenarioTest, FaultedRunByteIdenticalAcrossThreadCounts) {
  auto one = RunScenario(ChaosConfig(1));
  auto four = RunScenario(ChaosConfig(4));
  auto hw = RunScenario(ChaosConfig(0));  // hardware_concurrency

  ASSERT_FALSE(one.records.empty());
  EXPECT_TRUE(one.records == four.records);
  EXPECT_TRUE(one.records == hw.records);
  EXPECT_EQ(one.robustness, four.robustness);
  EXPECT_EQ(one.robustness, hw.robustness);
  EXPECT_EQ(one.client_queries_issued, four.client_queries_issued);
  EXPECT_EQ(one.leaf_queries, four.leaf_queries);
  EXPECT_GT(one.robustness.timeouts, 0u);
  EXPECT_GT(one.robustness.retransmits, 0u);
}

TEST(ChaosScenarioTest, FaultsChangeTheRealization) {
  ScenarioConfig faulted = ChaosConfig(0);
  ScenarioConfig clean = ChaosConfig(0);
  clean.fault_preset = FaultPreset::kNone;

  auto faulted_result = RunScenario(faulted);
  auto clean_result = RunScenario(clean);
  EXPECT_EQ(clean_result.robustness.timeouts, 0u);
  EXPECT_EQ(clean_result.robustness.retransmits, 0u);
  EXPECT_EQ(clean_result.robustness.failovers, 0u);
  EXPECT_GT(faulted_result.robustness.timeouts, 0u);
  // Lossy paths force retries, so the resolvers send more upstream
  // queries for the same client demand.
  EXPECT_GT(faulted_result.robustness.upstream_queries,
            clean_result.robustness.upstream_queries);
  EXPECT_FALSE(faulted_result.records == clean_result.records);
}

TEST(ChaosScenarioTest, CacheKeyTracksFaultConfiguration) {
  ScenarioConfig clean = ChaosConfig(1);
  clean.fault_preset = FaultPreset::kNone;
  ScenarioConfig preset = ChaosConfig(1);
  ScenarioConfig custom = ChaosConfig(1);
  custom.fault_preset = FaultPreset::kNone;
  custom.faults.loss.push_back(
      {sim::kAnySite, std::nullopt, {}, 0.1, 0.0});

  EXPECT_NE(analysis::CacheKey(clean), analysis::CacheKey(preset));
  EXPECT_NE(analysis::CacheKey(clean), analysis::CacheKey(custom));
  EXPECT_NE(analysis::CacheKey(preset), analysis::CacheKey(custom));

  // Thread count must stay out of the key, faults or not.
  ScenarioConfig preset8 = ChaosConfig(8);
  EXPECT_EQ(analysis::CacheKey(preset), analysis::CacheKey(preset8));

  // A custom plan that differs in one probability gets its own key.
  ScenarioConfig custom2 = custom;
  custom2.faults.loss[0].query_loss = 0.2;
  EXPECT_NE(analysis::CacheKey(custom), analysis::CacheKey(custom2));
}

TEST(ChaosScenarioTest, NzEventLossAmplifiesUpstreamQueries) {
  // A one-week slice of the Feb-2020 event with Google's fleet only: the
  // broken cyclic pair plus the event loss regime must at least double
  // the upstream query load relative to a fault-free normal week (the
  // Fig. 3b mechanism), but stay bounded — per-resolution query budgets
  // cap the amplification well below the naive 1/p blowup.
  ScenarioConfig config;
  config.vantage = Vantage::kNz;
  config.year = 2020;
  config.client_queries = 30'000;
  config.zone_scale = 0.001;
  config.window_start = sim::TimeFromCivil({2020, 2, 3});
  config.window_end = sim::TimeFromCivil({2020, 2, 10});
  config.google_only = true;
  config.warmup_fraction = 0.1;

  // Baseline: the same client demand in a normal week — no broken domains,
  // no loss. Event run: the cyclic pair is injected into the query stream
  // and the event-window loss regime is active.
  ScenarioConfig baseline_config = config;
  baseline_config.inject_cyclic_event = false;
  ScenarioConfig faulted_config = config;
  faulted_config.inject_cyclic_event = true;
  faulted_config.fault_preset = FaultPreset::kNzEventLoss;
  auto baseline = RunScenario(baseline_config);
  auto faulted = RunScenario(faulted_config);

  auto amp = analysis::ComputeRetryAmplification(baseline, faulted);
  ASSERT_GT(amp.baseline_upstream, 0u);
  EXPECT_GE(amp.upstream_factor, 2.0);
  EXPECT_LE(amp.upstream_factor, 6.0);
  EXPECT_GT(amp.faulted_counters.retransmits, 0u);
  EXPECT_GT(amp.faulted_counters.timeouts, 0u);

  auto series = analysis::DailyCaptureSeries(baseline, faulted);
  ASSERT_EQ(series.size(), 7u);
  std::uint64_t base_total = 0, fault_total = 0;
  for (const auto& day : series) {
    base_total += day.baseline_captured;
    fault_total += day.faulted_captured;
  }
  EXPECT_EQ(base_total, baseline.records.size());
  EXPECT_EQ(fault_total, faulted.records.size());
}

}  // namespace
}  // namespace clouddns::cloud
