#include "cloud/providers.h"

#include <gtest/gtest.h>

#include "cloud/scenario.h"

namespace clouddns::cloud {
namespace {

TEST(ProvidersTest, TableOneAsCountIsTwenty) {
  // Paper Table 1: "a significant concentration of DNS queries from only
  // 20 ASes".
  std::size_t total = 0;
  for (Provider provider : MeasuredProviders()) {
    total += NetworkOf(provider).ases.size();
  }
  EXPECT_EQ(total, 20u);
}

TEST(ProvidersTest, TableOneAsNumbers) {
  EXPECT_EQ(NetworkOf(Provider::kGoogle).ases,
            (std::vector<net::Asn>{15169}));
  EXPECT_EQ(NetworkOf(Provider::kAmazon).ases,
            (std::vector<net::Asn>{7224, 8987, 9059, 14168, 16509}));
  EXPECT_EQ(NetworkOf(Provider::kFacebook).ases,
            (std::vector<net::Asn>{32934}));
  EXPECT_EQ(NetworkOf(Provider::kCloudflare).ases,
            (std::vector<net::Asn>{13335}));
  EXPECT_EQ(NetworkOf(Provider::kMicrosoft).ases.size(), 12u);
}

TEST(ProvidersTest, PublicDnsFlagsMatchTableOne) {
  EXPECT_TRUE(NetworkOf(Provider::kGoogle).runs_public_dns);
  EXPECT_TRUE(NetworkOf(Provider::kCloudflare).runs_public_dns);
  EXPECT_FALSE(NetworkOf(Provider::kAmazon).runs_public_dns);
  EXPECT_FALSE(NetworkOf(Provider::kMicrosoft).runs_public_dns);
  EXPECT_FALSE(NetworkOf(Provider::kFacebook).runs_public_dns);
}

TEST(ProvidersTest, ProviderOfAsnRoundTrips) {
  for (Provider provider : MeasuredProviders()) {
    for (net::Asn asn : NetworkOf(provider).ases) {
      EXPECT_EQ(ProviderOfAsn(asn), provider);
    }
  }
  EXPECT_EQ(ProviderOfAsn(64512), Provider::kOther);
}

TEST(ProvidersTest, RegisterProviderAsesRoutesKnownAddresses) {
  net::AsDatabase asdb;
  RegisterProviderAses(asdb);
  EXPECT_EQ(asdb.as_count(), 20u);
  EXPECT_EQ(asdb.OriginAs(*net::IpAddress::Parse("8.8.8.8")), 15169u);
  EXPECT_EQ(asdb.OriginAs(*net::IpAddress::Parse("1.1.1.1")), 13335u);
  EXPECT_EQ(ProviderOfAsn(*asdb.OriginAs(*net::IpAddress::Parse("52.95.4.4"))),
            Provider::kAmazon);
  EXPECT_EQ(
      ProviderOfAsn(*asdb.OriginAs(*net::IpAddress::Parse("2a03:2880::5"))),
      Provider::kFacebook);
  EXPECT_FALSE(asdb.OriginAs(*net::IpAddress::Parse("203.0.113.1")));
}

TEST(ProvidersTest, GooglePublicBlocksAreInsideGoogleSpace) {
  net::AsDatabase asdb;
  RegisterProviderAses(asdb);
  for (const auto& block : NetworkOf(Provider::kGoogle).public_dns_blocks) {
    EXPECT_EQ(asdb.OriginAs(block.address()), 15169u) << block.ToString();
  }
}

TEST(ProvidersTest, ProfilesRejectOutOfRangeYears) {
  EXPECT_THROW(ProfileFor(Provider::kGoogle, 2017), std::invalid_argument);
  EXPECT_THROW(ProfileFor(Provider::kGoogle, 2021), std::invalid_argument);
}

TEST(ProvidersTest, MicrosoftNeverValidatesGoogleAlwaysDoes) {
  for (int year : {2018, 2019, 2020}) {
    EXPECT_FALSE(ProfileFor(Provider::kMicrosoft, year).validate_dnssec);
    EXPECT_TRUE(ProfileFor(Provider::kGoogle, year).validate_dnssec);
    EXPECT_TRUE(ProfileFor(Provider::kCloudflare, year).validate_dnssec);
  }
}

TEST(ProvidersTest, GoogleQminActivatesInDecember2019) {
  auto profile = ProfileFor(Provider::kGoogle, 2020);
  EXPECT_TRUE(profile.qname_minimization);
  sim::CivilDate rollout = sim::CivilFromTime(profile.qmin_enabled_at);
  EXPECT_EQ(rollout.year, 2019);
  EXPECT_EQ(rollout.month, 12u);
  // The w2019 capture (Nov 2019) precedes the rollout instant.
  EXPECT_LT(WeekStart(Vantage::kNl, 2019), profile.qmin_enabled_at);
  EXPECT_GT(WeekStart(Vantage::kNl, 2020), profile.qmin_enabled_at);
}

TEST(ProvidersTest, EdnsDistributionsSumToOne) {
  for (Provider provider : MeasuredProviders()) {
    for (int year : {2018, 2019, 2020}) {
      double total = 0;
      for (const auto& [size, weight] :
           ProfileFor(provider, year).edns_sizes) {
        total += weight;
      }
      EXPECT_NEAR(total, 1.0, 1e-9)
          << ToString(provider) << " " << year;
    }
  }
}

TEST(ProvidersTest, FacebookEdns512ShareMatchesFigureSix) {
  auto profile = ProfileFor(Provider::kFacebook, 2020);
  double at_512 = 0;
  for (const auto& [size, weight] : profile.edns_sizes) {
    if (size == 512) at_512 += weight;
  }
  EXPECT_NEAR(at_512, 0.30, 0.02);
}

}  // namespace
}  // namespace clouddns::cloud
