// Parameterized behaviour sweep over the resolver configuration space
// (q-min x validation x EDNS size): invariants that must hold in EVERY
// configuration, checked against the captured TLD traffic.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "resolver/resolver.h"

namespace clouddns::resolver {
namespace {

using testutil::MiniInternet;
using testutil::N;

struct BehaviorParam {
  bool qmin;
  bool validate;
  std::uint16_t edns;

  friend std::ostream& operator<<(std::ostream& os, const BehaviorParam& p) {
    return os << "qmin" << p.qmin << "_val" << p.validate << "_edns"
              << p.edns;
  }
};

class ResolverBehaviorTest : public ::testing::TestWithParam<BehaviorParam> {};

TEST_P(ResolverBehaviorTest, InvariantsHoldAcrossConfigurations) {
  const BehaviorParam& param = GetParam();
  MiniInternet net;
  ResolverConfig config;
  EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.v6 = *net::IpAddress::Parse("2001:db8:10::1");
  host.site = net.resolver_site;
  config.hosts = {host};
  config.qname_minimization = param.qmin;
  config.validate_dnssec = param.validate;
  config.edns_udp_size = param.edns;
  RecursiveResolver resolver(*net.network, config, net.RootHintsV4(),
                             net.RootHintsV6());

  // Resolve a spread of names: registered (signed and unsigned children),
  // nonexistent, and repeats that must come from cache.
  sim::TimeUs t = 1'000'000;
  for (int i = 0; i < 12; ++i) {
    auto result = resolver.Resolve(
        N(("www.dom" + std::to_string(i % 6) + ".nl").c_str()),
        i % 2 == 0 ? dns::RrType::kA : dns::RrType::kAaaa, t);
    EXPECT_NE(result.rcode, dns::Rcode::kServFail);
    EXPECT_LE(result.upstream_queries, config.max_upstream_queries);
    t += 1'000'000;
  }
  auto nx = resolver.Resolve(N("missing-name.nl"), dns::RrType::kA, t);
  EXPECT_EQ(nx.rcode, dns::Rcode::kNxDomain);

  for (const auto& record : net.nl_server->captured()) {
    // Invariant: the DO bit mirrors the validation config.
    EXPECT_EQ(record.do_bit, param.validate);
    // Invariant: EDNS config is advertised verbatim (or absent).
    if (param.edns == 0) {
      EXPECT_FALSE(record.has_edns);
    } else {
      EXPECT_TRUE(record.has_edns);
      EXPECT_EQ(record.edns_udp_size, param.edns);
    }
    // Invariant: q-min resolvers never leak more than one label below the
    // zone to the TLD; the TLD's captured qnames have at most 2 labels
    // (registered domain) and are NS-type probes... except the RFC 7816
    // full-qname fallback and DS/DNSKEY chain queries.
    if (param.qmin && record.qtype != dns::RrType::kDs &&
        record.qtype != dns::RrType::kDnskey) {
      EXPECT_LE(record.qname.LabelCount(), 2u) << record.qname.ToString();
    }
    // Invariant: TCP appears only when a truncated UDP answer preceded it,
    // which requires a small EDNS buffer in this topology.
    if (param.edns >= 1232 || !param.validate) {
      EXPECT_EQ(record.transport, dns::Transport::kUdp);
    }
    // Invariant: DNSSEC record types are only ever requested by validators.
    if (!param.validate) {
      EXPECT_NE(record.qtype, dns::RrType::kDs);
      EXPECT_NE(record.qtype, dns::RrType::kDnskey);
    }
  }

  // Cache invariant: repeating the full workload immediately must be
  // answered locally.
  std::size_t captured_before = net.nl_server->captured().size();
  for (int i = 0; i < 12; ++i) {
    auto result = resolver.Resolve(
        N(("www.dom" + std::to_string(i % 6) + ".nl").c_str()),
        i % 2 == 0 ? dns::RrType::kA : dns::RrType::kAaaa, t);
    EXPECT_TRUE(result.from_cache);
  }
  EXPECT_EQ(net.nl_server->captured().size(), captured_before);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, ResolverBehaviorTest,
    ::testing::Values(BehaviorParam{false, false, 4096},
                      BehaviorParam{false, false, 512},
                      BehaviorParam{false, false, 0},
                      BehaviorParam{false, true, 4096},
                      BehaviorParam{false, true, 1232},
                      BehaviorParam{false, true, 512},
                      BehaviorParam{true, false, 4096},
                      BehaviorParam{true, false, 1232},
                      BehaviorParam{true, true, 4096},
                      BehaviorParam{true, true, 512}),
    [](const ::testing::TestParamInfo<BehaviorParam>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
}  // namespace clouddns::resolver
