// Resolver timeout/retry/backoff engine under fault injection: retransmit
// accounting, Karn backoff against the query budget, NS-set failover, and
// RFC 8767 serve-stale.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "resolver/resolver.h"
#include "sim/fault.h"

namespace clouddns::resolver {
namespace {

using testutil::MiniInternet;
using testutil::N;

ResolverConfig BasicConfig(const MiniInternet& net) {
  ResolverConfig config;
  EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.site = net.resolver_site;
  config.hosts = {host};
  return config;
}

RecursiveResolver MakeResolver(MiniInternet& net, ResolverConfig config) {
  return RecursiveResolver(*net.network, std::move(config), net.RootHintsV4(),
                           net.RootHintsV6());
}

sim::FaultPlan TotalUdpLoss() {
  sim::FaultPlan plan;
  plan.loss.push_back({sim::kAnySite, dns::Transport::kUdp, {}, 1.0, 0.0});
  return plan;
}

TEST(RetryTest, NoFaultsMeansNoRetryActivity) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(result.upstream_queries, 3);
  EXPECT_EQ(result.retransmits, 0);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.failovers, 0);
  EXPECT_FALSE(result.served_stale);
  EXPECT_EQ(resolver.retransmit_count(), 0u);
  EXPECT_EQ(resolver.timeout_count(), 0u);
}

TEST(RetryTest, TotalLossExhaustsRetransmitsThenServfails) {
  MiniInternet net;
  sim::FaultInjector injector(TotalUdpLoss(), 42);
  net.network->SetFaultInjector(&injector);
  auto resolver = MakeResolver(net, BasicConfig(net));

  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  // One root server address: initial send + 2 retransmits, every attempt
  // times out, and with no sibling to fail over to the resolution dies.
  EXPECT_EQ(result.upstream_queries, 3);
  EXPECT_EQ(result.retransmits, 2);
  EXPECT_EQ(result.timeouts, 3);
  EXPECT_EQ(result.failovers, 0);
  EXPECT_EQ(net.root_server->captured().size(), 0u);  // queries never arrived
}

TEST(RetryTest, WindowedLossRecoversViaRetransmit) {
  MiniInternet net;
  // Loss ends at t=500ms; the first attempt (t=1ms) is lost, the
  // retransmit fires after the ~1s initial RTO, outside the window.
  sim::FaultPlan plan;
  plan.loss.push_back(
      {sim::kAnySite, dns::Transport::kUdp, {0, 500'000}, 1.0, 0.0});
  sim::FaultInjector injector(plan, 42);
  net.network->SetFaultInjector(&injector);
  auto resolver = MakeResolver(net, BasicConfig(net));

  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  EXPECT_GE(result.retransmits, 1);
  EXPECT_EQ(result.retransmits, result.timeouts);
  EXPECT_EQ(result.failovers, 0);
  // Retried exchanges reach the servers later than the original send time:
  // the capture shows the retry wave, not the lost originals.
  ASSERT_FALSE(net.root_server->captured().empty());
  EXPECT_GT(net.root_server->captured().front().time_us, 500'000u);
}

TEST(RetryTest, FailoverMovesToHealthySibling) {
  MiniInternet net;
  // A second root-server address, served from a separate site. Loss is
  // scoped to the primary's site, so the sibling stays healthy and
  // failover can rescue every resolution.
  sim::SiteId alt_site = net.latency.AddSite({"ALT", 12, 0, 1.0, 0.0});
  auto alt_root = *net::IpAddress::Parse("199.9.15.201");
  net.network->RegisterServer(alt_root, alt_site, *net.root_server);
  sim::FaultPlan plan;
  plan.loss.push_back(
      {net.auth_site, dns::Transport::kUdp, {}, 1.0, 0.0});
  sim::FaultInjector injector(plan, 42);
  net.network->SetFaultInjector(&injector);

  auto config = BasicConfig(net);
  RecursiveResolver resolver(*net.network, config,
                             {*net::IpAddress::Parse(MiniInternet::kRootV4),
                              alt_root},
                             {});

  // Nonexistent TLDs are answered (NXDOMAIN) by the root alone, so every
  // resolution exercises only the faulty/healthy root pair.
  for (int i = 0; i < 20; ++i) {
    auto result = resolver.Resolve(N(("junk" + std::to_string(i)).c_str()),
                                   dns::RrType::kA, 1'000'000 + i * 1'000);
    EXPECT_EQ(result.rcode, dns::Rcode::kNxDomain) << "query " << i;
  }
  // The first pick of the lossy address exhausts its retransmits, fails
  // over, and the SRTT penalty steers later picks to the healthy sibling.
  EXPECT_GE(resolver.failover_count(), 1u);
  EXPECT_GE(resolver.timeout_count(), 3u);
}

TEST(RetryTest, ServeStaleAnswersFromExpiredEntry) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.retry.serve_stale_ttl_us = 30ull * 86'400 * sim::kMicrosPerSecond;
  auto resolver = MakeResolver(net, config);

  const sim::TimeUs t0 = 1'000'000;
  auto fresh = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, t0);
  ASSERT_EQ(fresh.rcode, dns::Rcode::kNoError);

  // Two days later every TTL has lapsed and the network is fully broken.
  sim::FaultInjector injector(TotalUdpLoss(), 42);
  net.network->SetFaultInjector(&injector);
  const sim::TimeUs t1 = t0 + 2ull * sim::kMicrosPerDay;
  auto stale = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, t1);
  EXPECT_EQ(stale.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(stale.served_stale);
  EXPECT_TRUE(stale.from_cache);
  EXPECT_EQ(stale.records, fresh.records);
  EXPECT_EQ(resolver.served_stale_count(), 1u);
}

TEST(RetryTest, WithoutServeStaleExpiredFailureIsServfail) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  const sim::TimeUs t0 = 1'000'000;
  ASSERT_EQ(resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, t0).rcode,
            dns::Rcode::kNoError);

  sim::FaultInjector injector(TotalUdpLoss(), 42);
  net.network->SetFaultInjector(&injector);
  const sim::TimeUs t1 = t0 + 2ull * sim::kMicrosPerDay;
  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, t1);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  EXPECT_FALSE(result.served_stale);
  EXPECT_EQ(resolver.served_stale_count(), 0u);
}

TEST(RetryTest, RetransmitsChargeTheUpstreamBudget) {
  MiniInternet net;
  sim::FaultInjector injector(TotalUdpLoss(), 42);
  net.network->SetFaultInjector(&injector);
  auto config = BasicConfig(net);
  config.max_upstream_queries = 5;
  config.retry.max_retransmits = 10;
  config.retry.max_failovers = 10;
  auto resolver = MakeResolver(net, config);

  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  // The generous retransmit allowance is still capped by the per-query
  // budget: 5 sends total (1 original + 4 retransmits), not 11.
  EXPECT_EQ(result.upstream_queries, 5);
  EXPECT_EQ(result.retransmits, 4);
  EXPECT_EQ(result.timeouts, 5);
}

}  // namespace
}  // namespace clouddns::resolver
