#include "resolver/resolver.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace clouddns::resolver {
namespace {

using testutil::MiniInternet;
using testutil::N;

ResolverConfig BasicConfig(const MiniInternet& net,
                           bool with_v6_host = false) {
  ResolverConfig config;
  EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  if (with_v6_host) host.v6 = *net::IpAddress::Parse("2001:db8:10::1");
  host.site = net.resolver_site;
  config.hosts = {host};
  return config;
}

RecursiveResolver MakeResolver(MiniInternet& net, ResolverConfig config) {
  return RecursiveResolver(*net.network, std::move(config), net.RootHintsV4(),
                           net.RootHintsV6());
}

int CountQtype(const capture::CaptureBuffer& records, dns::RrType qtype) {
  int count = 0;
  for (const auto& r : records) count += r.qtype == qtype;
  return count;
}

TEST(ResolverTest, ResolvesThroughRootAndTld) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1000000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  ASSERT_FALSE(result.records.empty());
  EXPECT_EQ(result.records[0].type, dns::RrType::kA);
  EXPECT_FALSE(result.from_cache);
  // One query at the root, one at .nl, one at the leaf.
  EXPECT_EQ(net.root_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured().size(), 1u);
  EXPECT_EQ(result.upstream_queries, 3);
}

TEST(ResolverTest, AnswerIsCachedAndServedLocally) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  auto first = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1000000);
  ASSERT_EQ(first.rcode, dns::Rcode::kNoError);
  auto second = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 2000000);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.upstream_queries, 0);
  EXPECT_EQ(second.records, first.records);
}

TEST(ResolverTest, InfraCacheSkipsRootAndTldForSiblingNames) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  std::size_t root_before = net.root_server->captured().size();

  // A different host under the same domain: leaf-only traffic.
  resolver.Resolve(N("mail.dom3.nl"), dns::RrType::kA, 2'000'000);
  EXPECT_EQ(net.root_server->captured().size(), root_before);
  EXPECT_EQ(net.nl_server->captured().size(), 1u);

  // A different domain under .nl: one more TLD query, still no root.
  resolver.Resolve(N("www.dom7.nl"), dns::RrType::kA, 3'000'000);
  EXPECT_EQ(net.root_server->captured().size(), root_before);
  EXPECT_EQ(net.nl_server->captured().size(), 2u);
}

TEST(ResolverTest, CacheExpiryTriggersRefetch) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 0);
  // Leaf answers have TTL 300s; after 400s the answer cache must miss.
  auto later = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA,
                                400ull * sim::kMicrosPerSecond);
  EXPECT_FALSE(later.from_cache);
  EXPECT_GT(later.upstream_queries, 0);
}

TEST(ResolverTest, NxDomainIsNegativeCached) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  auto first = resolver.Resolve(N("nosuch.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(first.rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(net.nl_server->captured().size(), 1u);

  auto second = resolver.Resolve(N("nosuch.nl"), dns::RrType::kA, 2'000'000);
  EXPECT_EQ(second.rcode, dns::Rcode::kNxDomain);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(net.nl_server->captured().size(), 1u);

  // The negative TTL (600s) eventually lapses.
  auto third = resolver.Resolve(N("nosuch.nl"), dns::RrType::kA,
                                700ull * sim::kMicrosPerSecond);
  EXPECT_EQ(third.rcode, dns::Rcode::kNxDomain);
  EXPECT_FALSE(third.from_cache);
}

TEST(ResolverTest, JunkTldGoesToRootOnly) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  auto result = resolver.Resolve(N("qwhjfzzr"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(net.root_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured().size(), 0u);
  EXPECT_EQ(net.root_server->captured()[0].rcode, dns::Rcode::kNxDomain);
}

TEST(ResolverTest, WithoutQminTldSeesOriginalQtype) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kAaaa, 1'000'000);
  ASSERT_EQ(net.nl_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured()[0].qtype, dns::RrType::kAaaa);
  EXPECT_EQ(net.nl_server->captured()[0].qname, N("www.dom3.nl"));
}

TEST(ResolverTest, QminTldSeesNsQueryForMinimizedName) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.qname_minimization = true;
  auto resolver = MakeResolver(net, config);
  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kAaaa,
                                 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  ASSERT_EQ(net.nl_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured()[0].qtype, dns::RrType::kNs);
  EXPECT_EQ(net.nl_server->captured()[0].qname, N("dom3.nl"));
  // The root likewise only learns one label.
  ASSERT_EQ(net.root_server->captured().size(), 1u);
  EXPECT_EQ(net.root_server->captured()[0].qname, N("nl"));
}

TEST(ResolverTest, QminRolloutInstantIsRespected) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.qname_minimization = true;
  config.qmin_enabled_at = 100ull * sim::kMicrosPerSecond;
  auto resolver = MakeResolver(net, config);

  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 0);
  ASSERT_EQ(net.nl_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured()[0].qtype, dns::RrType::kA);

  // After rollout, a fresh domain shows the minimized pattern.
  resolver.Resolve(N("www.dom8.nl"), dns::RrType::kA,
                   200ull * sim::kMicrosPerSecond);
  ASSERT_EQ(net.nl_server->captured().size(), 2u);
  EXPECT_EQ(net.nl_server->captured()[1].qtype, dns::RrType::kNs);
}

TEST(ResolverTest, ReferralDsValidatorSendsNoDsQueries) {
  // Default validators consume the DS set served in DO=1 referrals and
  // never issue standalone DS queries.
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  auto resolver = MakeResolver(net, config);
  auto result = resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDs), 0);
  // DO is still set on every query, and DNSKEYs are still fetched.
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_TRUE(record.do_bit);
  }
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDnskey), 1);
}

TEST(ResolverTest, ValidatorFetchesDsAndDnskey) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  config.explicit_ds_fetch = true;
  auto resolver = MakeResolver(net, config);
  // dom1 is signed.
  auto result = resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);

  // At the root: DNSKEY(.), the nl walk query, and DS(nl).
  EXPECT_EQ(CountQtype(net.root_server->captured(), dns::RrType::kDnskey), 1);
  EXPECT_EQ(CountQtype(net.root_server->captured(), dns::RrType::kDs), 1);
  // At the TLD: DNSKEY(nl), DS(dom1.nl), and the A query.
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDnskey), 1);
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDs), 1);
  // DO bit set on every upstream query.
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_TRUE(record.do_bit);
  }
}

TEST(ResolverTest, ValidatorSendsOneDsPerDomainButOneDnskeyPerZone) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  config.explicit_ds_fetch = true;
  auto resolver = MakeResolver(net, config);
  resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1'000'000);
  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 2'000'000);
  resolver.Resolve(N("www.dom5.nl"), dns::RrType::kA, 3'000'000);

  // One DS per visited domain, but the TLD DNSKEY was fetched once.
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDs), 3);
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDnskey), 1);
}

TEST(ResolverTest, NonValidatorNeverSendsDsOrDo) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net));
  resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDs), 0);
  EXPECT_EQ(CountQtype(net.nl_server->captured(), dns::RrType::kDnskey), 0);
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_FALSE(record.do_bit);
  }
}

TEST(ResolverTest, SmallEdnsValidatorFallsBackToTcp) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  config.edns_udp_size = 512;
  auto resolver = MakeResolver(net, config);
  // NXDOMAIN with denial proof exceeds 512 -> TC -> TCP retry.
  auto result = resolver.Resolve(N("nosuch.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kNxDomain);

  int tcp = 0, truncated_udp = 0;
  for (const auto& record : net.nl_server->captured()) {
    tcp += record.transport == dns::Transport::kTcp;
    truncated_udp +=
        record.transport == dns::Transport::kUdp && record.tc;
  }
  EXPECT_GE(tcp, 1);
  EXPECT_GE(truncated_udp, 1);
  // The TCP record carries a measured handshake RTT.
  bool saw_rtt = false;
  for (const auto& record : net.nl_server->captured()) {
    if (record.transport == dns::Transport::kTcp) {
      saw_rtt |= record.tcp_handshake_rtt_us > 0;
    }
  }
  EXPECT_TRUE(saw_rtt);
}

TEST(ResolverTest, LargeEdnsAvoidsTcp) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  config.edns_udp_size = 4096;
  auto resolver = MakeResolver(net, config);
  resolver.Resolve(N("nosuch.nl"), dns::RrType::kA, 1'000'000);
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_EQ(record.transport, dns::Transport::kUdp);
    EXPECT_FALSE(record.tc);
  }
}

TEST(ResolverTest, NoEdnsConfigSendsClassicQueries) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.edns_udp_size = 0;
  auto resolver = MakeResolver(net, config);
  resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_FALSE(record.has_edns);
    EXPECT_EQ(record.edns_udp_size, 0);
  }
}

TEST(ResolverTest, V4OnlyHostNeverUsesV6) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net, /*with_v6_host=*/false));
  for (int i = 0; i < 10; ++i) {
    resolver.Resolve(N(("www.dom" + std::to_string(i) + ".nl").c_str()),
                     dns::RrType::kA, 1'000'000 * (i + 1));
  }
  for (const auto& record : net.nl_server->captured()) {
    EXPECT_TRUE(record.src.is_v4());
  }
}

TEST(ResolverTest, DualStackSplitsRoughlyEvenlyWhenRttsMatch) {
  MiniInternet net;
  auto resolver = MakeResolver(net, BasicConfig(net, /*with_v6_host=*/true));
  for (int i = 0; i < 40; ++i) {
    resolver.Resolve(N(("www.dom" + std::to_string(i % 50) + ".nl").c_str()),
                     dns::RrType::kA,
                     1'000'000ull * static_cast<unsigned>(i + 1));
  }
  int v4 = 0, v6 = 0;
  for (const auto& record : net.nl_server->captured()) {
    (record.src.is_v4() ? v4 : v6)++;
  }
  EXPECT_GT(v4, 0);
  EXPECT_GT(v6, 0);
}

TEST(ResolverTest, DualStackPrefersFasterFamily) {
  // Build an internet where the resolver site has a heavy v6 penalty.
  MiniInternet net;
  sim::LatencyModel latency;
  auto auth_site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
  auto slow_v6_site = latency.AddSite({"SLOW6", 8, 0, 1.0, 60.0});
  sim::Network network(latency);
  server::AuthServerConfig server_config;
  server::AuthServer root_server(server_config);
  root_server.Serve(net.root_zone);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kRootV4),
                         auth_site, root_server);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kRootV6),
                         auth_site, root_server);
  server::AuthServer nl_server(server_config);
  nl_server.Serve(net.nl_zone);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kNlV4),
                         auth_site, nl_server);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kNlV6),
                         auth_site, nl_server);
  server::LeafAuthService leaf{server::LeafAuthConfig{}};
  network.SetDefaultRoute(auth_site, leaf);

  ResolverConfig config;
  EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.v6 = *net::IpAddress::Parse("2001:db8:10::1");
  host.site = slow_v6_site;
  config.hosts = {host};
  RecursiveResolver resolver(network, config, net.RootHintsV4(),
                             net.RootHintsV6());

  for (int i = 0; i < 200; ++i) {
    resolver.Resolve(N(("www.dom" + std::to_string(i % 50) + ".nl").c_str()),
                     dns::RrType::kA,
                     1'000'000ull * static_cast<unsigned>(i + 1));
  }
  int v4 = 0, v6 = 0;
  for (const auto& record : nl_server.captured()) {
    (record.src.is_v4() ? v4 : v6)++;
  }
  // 60ms extra one-way v6 penalty: v4 must dominate clearly.
  EXPECT_GT(v4, 3 * v6);
}

TEST(ResolverTest, GluelessCycleFailsWithoutInfiniteLoop) {
  // Hand-build a TLD zone with two mutually glueless domains.
  MiniInternet net(0);
  zone::ZoneBuildConfig config;
  config.apex = N("nz");
  config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("194.0.29.53")}}};
  auto nz = zone::MakeZoneSkeleton(config);
  zone::AddDelegation(nz, N("cyca.nz"), {{N("ns.cycb.nz"), {}}}, false);
  zone::AddDelegation(nz, N("cycb.nz"), {{N("ns.cyca.nz"), {}}}, false);
  auto nz_zone = std::make_shared<const zone::Zone>(std::move(nz));

  server::AuthServer nz_server(server::AuthServerConfig{});
  nz_server.Serve(nz_zone);
  net.network->RegisterServer(*net::IpAddress::Parse("194.0.29.53"),
                              net.auth_site, nz_server);
  // Register .nz in the root... easiest: serve a fresh root zone too.
  zone::ZoneBuildConfig root_config;
  root_config.apex = dns::Name{};
  root_config.nameservers = {
      {N("b.root-servers.net"),
       {*net::IpAddress::Parse(MiniInternet::kRootV4)}}};
  auto root = zone::MakeZoneSkeleton(root_config);
  zone::AddDelegation(root, N("nz"),
                      {{N("ns1.dns.nz"),
                        {*net::IpAddress::Parse("194.0.29.53")}}},
                      false);
  server::AuthServer root_server(server::AuthServerConfig{});
  root_server.Serve(std::make_shared<const zone::Zone>(std::move(root)));
  sim::Network network(net.latency);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kRootV4),
                         net.auth_site, root_server);
  network.RegisterServer(*net::IpAddress::Parse("194.0.29.53"), net.auth_site,
                         nz_server);
  server::LeafAuthService leaf{server::LeafAuthConfig{}};
  network.SetDefaultRoute(net.leaf_site, leaf);

  ResolverConfig resolver_config;
  EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.site = net.resolver_site;
  resolver_config.hosts = {host};
  RecursiveResolver resolver(network, resolver_config, net.RootHintsV4(), {});

  auto result = resolver.Resolve(N("www.cyca.nz"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  // The chase generated multiple A/AAAA queries at the TLD — the Fig. 3b
  // signature — but stayed within the budget.
  EXPECT_GT(nz_server.captured().size(), 2u);
  EXPECT_LE(result.upstream_queries, resolver_config.max_upstream_queries);
}

TEST(ResolverTest, ServFailCachingSuppressesRetryStorms) {
  // Without the cache, every client query for a broken domain re-runs the
  // full failing resolution (the Fig. 3b behaviour); with it, only the
  // first query pays.
  MiniInternet net(0);
  zone::ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("194.0.99.1")}}};
  auto nl = zone::MakeZoneSkeleton(config);
  zone::AddDelegation(nl, N("cyca.nl"), {{N("ns.cycb.nl"), {}}}, false);
  zone::AddDelegation(nl, N("cycb.nl"), {{N("ns.cyca.nl"), {}}}, false);
  server::AuthServer nl_server(server::AuthServerConfig{});
  nl_server.Serve(std::make_shared<const zone::Zone>(std::move(nl)));

  // Fresh network with a root that delegates .nl to the broken zone's
  // server (MiniInternet's own .nl registration must not shadow it).
  zone::ZoneBuildConfig root_config;
  root_config.apex = dns::Name{};
  root_config.nameservers = {
      {N("b.root-servers.example"),
       {*net::IpAddress::Parse(MiniInternet::kRootV4)}}};
  auto root = zone::MakeZoneSkeleton(root_config);
  zone::AddDelegation(root, N("nl"),
                      {{N("ns1.dns.nl"),
                        {*net::IpAddress::Parse("194.0.99.1")}}},
                      false);
  server::AuthServer root_server(server::AuthServerConfig{});
  root_server.Serve(std::make_shared<const zone::Zone>(std::move(root)));
  sim::Network network(net.latency);
  network.RegisterServer(*net::IpAddress::Parse(MiniInternet::kRootV4),
                         net.auth_site, root_server);
  network.RegisterServer(*net::IpAddress::Parse("194.0.99.1"), net.auth_site,
                         nl_server);
  server::LeafAuthService leaf{server::LeafAuthConfig{}};
  network.SetDefaultRoute(net.leaf_site, leaf);

  auto run = [&](sim::TimeUs ttl_us) {
    ResolverConfig resolver_config = BasicConfig(net);
    resolver_config.servfail_cache_ttl = ttl_us;
    RecursiveResolver resolver(network, resolver_config, net.RootHintsV4(),
                               {});
    int upstream = 0;
    for (int i = 0; i < 10; ++i) {
      auto result = resolver.Resolve(N("www.cyca.nl"), dns::RrType::kA,
                                     1'000'000ull * static_cast<unsigned>(i + 1));
      EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
      upstream += result.upstream_queries;
    }
    return upstream;
  };

  int without_cache = run(0);
  int with_cache = run(600ull * sim::kMicrosPerSecond);
  EXPECT_GT(without_cache, with_cache * 4);
}

TEST(ResolverTest, AggressiveNsecAbsorbsRandomJunk) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.validate_dnssec = true;
  config.aggressive_nsec_caching = true;
  auto resolver = MakeResolver(net, config);

  // First random-TLD probe reaches the root and learns a denial range.
  auto first = resolver.Resolve(N("qwjkhzfy"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(first.rcode, dns::Rcode::kNxDomain);
  std::size_t root_after_first = net.root_server->captured().size();
  EXPECT_GE(root_after_first, 1u);

  // Subsequent junk covered by the cached NSEC range is answered locally
  // (the §4.2.3 mechanism). The root zone here has one delegation ("nl"),
  // so ranges cover almost the whole namespace.
  int absorbed = 0;
  for (int i = 0; i < 20; ++i) {
    auto probe = resolver.Resolve(
        N(("zz" + std::to_string(i) + "junk").c_str()), dns::RrType::kA,
        2'000'000 + 1000ull * static_cast<unsigned>(i));
    EXPECT_EQ(probe.rcode, dns::Rcode::kNxDomain);
    absorbed += probe.upstream_queries == 0;
  }
  EXPECT_GE(absorbed, 15);
  EXPECT_LE(net.root_server->captured().size(), root_after_first + 5);
  EXPECT_GT(resolver.nsec_cache().hits(), 10u);

  // Without the flag, every unique junk name hits the root.
  auto plain_config = BasicConfig(net);
  plain_config.validate_dnssec = true;
  auto plain = MakeResolver(net, plain_config);
  std::size_t before = net.root_server->captured().size();
  for (int i = 0; i < 10; ++i) {
    plain.Resolve(N(("yy" + std::to_string(i) + "junk").c_str()),
                  dns::RrType::kA, 3'000'000 + 1000ull * static_cast<unsigned>(i));
  }
  EXPECT_GE(net.root_server->captured().size(), before + 10);
}

TEST(ResolverTest, BudgetBoundsUpstreamQueries) {
  MiniInternet net;
  auto config = BasicConfig(net);
  config.max_upstream_queries = 2;
  auto resolver = MakeResolver(net, config);
  // Needs 3 queries; budget of 2 must produce SERVFAIL, not a hang.
  auto result = resolver.Resolve(N("www.dom3.nl"), dns::RrType::kA, 1'000'000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  EXPECT_LE(result.upstream_queries, 2);
}

}  // namespace
}  // namespace clouddns::resolver
