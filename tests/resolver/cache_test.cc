#include "resolver/cache.h"

#include <gtest/gtest.h>

namespace clouddns::resolver {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

CachedAnswer Answer(sim::TimeUs expires) {
  CachedAnswer answer;
  answer.rcode = dns::Rcode::kNoError;
  answer.records.push_back(
      dns::MakeA(N("x.nl"), net::Ipv4Address(1, 2, 3, 4), 300));
  answer.expires_at = expires;
  return answer;
}

TEST(DnsCacheTest, HitWithinTtlMissAfter) {
  DnsCache cache(100);
  cache.Put(N("x.nl"), dns::RrType::kA, Answer(1000));
  EXPECT_NE(cache.Get(N("x.nl"), dns::RrType::kA, 500), nullptr);
  EXPECT_EQ(cache.Get(N("x.nl"), dns::RrType::kA, 1000), nullptr);
  EXPECT_EQ(cache.Get(N("x.nl"), dns::RrType::kA, 2000), nullptr);
}

TEST(DnsCacheTest, TypeAndNameAreBothKeyed) {
  DnsCache cache(100);
  cache.Put(N("x.nl"), dns::RrType::kA, Answer(1000));
  EXPECT_EQ(cache.Get(N("x.nl"), dns::RrType::kAaaa, 1), nullptr);
  EXPECT_EQ(cache.Get(N("y.nl"), dns::RrType::kA, 1), nullptr);
}

TEST(DnsCacheTest, CaseInsensitiveKeys) {
  DnsCache cache(100);
  cache.Put(N("X.NL"), dns::RrType::kA, Answer(1000));
  EXPECT_NE(cache.Get(N("x.nl"), dns::RrType::kA, 1), nullptr);
}

TEST(DnsCacheTest, NxDomainMatchesAnyType) {
  DnsCache cache(100);
  cache.PutNxDomain(N("gone.nl"), 1000);
  EXPECT_TRUE(cache.IsNxDomain(N("gone.nl"), 500));
  EXPECT_FALSE(cache.IsNxDomain(N("gone.nl"), 1500));
  EXPECT_FALSE(cache.IsNxDomain(N("other.nl"), 500));
}

TEST(DnsCacheTest, LruEvictsOldestFirst) {
  DnsCache cache(3);
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(~0ull));
  cache.Put(N("b.nl"), dns::RrType::kA, Answer(~0ull));
  cache.Put(N("c.nl"), dns::RrType::kA, Answer(~0ull));
  // Touch a.nl so b.nl becomes the LRU victim.
  EXPECT_NE(cache.Get(N("a.nl"), dns::RrType::kA, 1), nullptr);
  cache.Put(N("d.nl"), dns::RrType::kA, Answer(~0ull));

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.Get(N("a.nl"), dns::RrType::kA, 1), nullptr);
  EXPECT_EQ(cache.Get(N("b.nl"), dns::RrType::kA, 1), nullptr);
  EXPECT_NE(cache.Get(N("d.nl"), dns::RrType::kA, 1), nullptr);
}

TEST(DnsCacheTest, OverwriteRefreshesEntry) {
  DnsCache cache(10);
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(100));
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(5000));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get(N("a.nl"), dns::RrType::kA, 1000), nullptr);
}

TEST(DnsCacheTest, TracksHitsAndMisses) {
  DnsCache cache(10);
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(1000));
  (void)cache.Get(N("a.nl"), dns::RrType::kA, 1);
  (void)cache.Get(N("a.nl"), dns::RrType::kA, 1);
  (void)cache.Get(N("b.nl"), dns::RrType::kA, 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(InfraCacheTest, DeepestEnclosingWalksUp) {
  InfraCache infra;
  ZoneEntry root;
  root.apex = dns::Name{};
  root.expires_at = ~0ull;
  infra.Put(root);
  ZoneEntry nl;
  nl.apex = N("nl");
  nl.expires_at = ~0ull;
  infra.Put(nl);
  ZoneEntry example;
  example.apex = N("example.nl");
  example.expires_at = ~0ull;
  infra.Put(example);

  EXPECT_EQ(infra.DeepestEnclosing(N("www.example.nl"), 1)->apex,
            N("example.nl"));
  EXPECT_EQ(infra.DeepestEnclosing(N("other.nl"), 1)->apex, N("nl"));
  EXPECT_TRUE(infra.DeepestEnclosing(N("example.com"), 1)->apex.IsRoot());
}

TEST(InfraCacheTest, ExpiredEntriesAreDropped) {
  InfraCache infra;
  ZoneEntry nl;
  nl.apex = N("nl");
  nl.expires_at = 100;
  infra.Put(nl);
  EXPECT_NE(infra.Get(N("nl"), 50), nullptr);
  EXPECT_EQ(infra.Get(N("nl"), 100), nullptr);
  EXPECT_EQ(infra.size(), 0u);  // erased on expiry
}

TEST(InfraCacheTest, PutOverwritesByApex) {
  InfraCache infra;
  ZoneEntry nl;
  nl.apex = N("nl");
  nl.expires_at = ~0ull;
  nl.ds = ZoneEntry::Ds::kAbsent;
  infra.Put(nl);
  nl.ds = ZoneEntry::Ds::kPresent;
  infra.Put(nl);
  EXPECT_EQ(infra.size(), 1u);
  EXPECT_EQ(infra.Get(N("nl"), 1)->ds, ZoneEntry::Ds::kPresent);
}


TEST(DnsCacheTest, LruEvictionOrderIsExactUnderMixedTouches) {
  DnsCache cache(4);
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(~0ull));
  cache.Put(N("b.nl"), dns::RrType::kA, Answer(~0ull));
  cache.Put(N("c.nl"), dns::RrType::kA, Answer(~0ull));
  cache.Put(N("d.nl"), dns::RrType::kA, Answer(~0ull));
  // Recency after touches: a > c > d > b (b is the victim, then d).
  EXPECT_NE(cache.Get(N("c.nl"), dns::RrType::kA, 1), nullptr);
  EXPECT_NE(cache.Get(N("a.nl"), dns::RrType::kA, 1), nullptr);

  cache.Put(N("e.nl"), dns::RrType::kA, Answer(~0ull));
  EXPECT_EQ(cache.Get(N("b.nl"), dns::RrType::kA, 1), nullptr);
  cache.Put(N("f.nl"), dns::RrType::kA, Answer(~0ull));
  EXPECT_EQ(cache.Get(N("d.nl"), dns::RrType::kA, 1), nullptr);

  EXPECT_EQ(cache.size(), 4u);
  for (const char* alive : {"a.nl", "c.nl", "e.nl", "f.nl"}) {
    EXPECT_NE(cache.Get(N(alive), dns::RrType::kA, 1), nullptr) << alive;
  }
}

TEST(DnsCacheTest, ServeStaleHitRefreshesRecencyUnderLru) {
  DnsCache cache(2, /*retain_expired=*/true);
  cache.Put(N("a.nl"), dns::RrType::kA, Answer(1000));
  cache.Put(N("b.nl"), dns::RrType::kA, Answer(1000));

  // Both expired: a plain Get misses but retains the entry, and the
  // expired-miss deliberately does not refresh recency.
  EXPECT_EQ(cache.Get(N("a.nl"), dns::RrType::kA, 2000), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  // A stale hit IS a use: it refreshes recency, so the untouched b.nl is
  // the LRU victim when capacity is exceeded.
  const CachedAnswer* stale =
      cache.GetStale(N("a.nl"), dns::RrType::kA, 2000, 5000);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->rcode, dns::Rcode::kNoError);
  EXPECT_EQ(cache.stale_hits(), 1u);

  cache.Put(N("c.nl"), dns::RrType::kA, Answer(~0ull));
  EXPECT_EQ(cache.GetStale(N("b.nl"), dns::RrType::kA, 2000, 5000), nullptr);
  EXPECT_NE(cache.GetStale(N("a.nl"), dns::RrType::kA, 2000, 5000), nullptr);

  // Outside the serve-stale window the entry is dead even when retained:
  // expires_at=1000 + max_stale=5000 <= now=6000.
  EXPECT_EQ(cache.GetStale(N("a.nl"), dns::RrType::kA, 6000, 5000), nullptr);
}

}  // namespace
}  // namespace clouddns::resolver
