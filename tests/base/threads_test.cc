// The shared worker-pool contract: EffectiveThreads resolution order,
// exactly-once task execution, nested-ParallelFor inlining, and stability
// under repeated jobs — the properties Scenario::Run and
// AnalysisPlan::Execute lean on for determinism.
#include "base/threads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

namespace clouddns::base {
namespace {

class ThreadsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("CLOUDDNS_THREADS");
    had_env_ = prev != nullptr;
    if (had_env_) saved_ = prev;
    unsetenv("CLOUDDNS_THREADS");
  }
  void TearDown() override {
    if (had_env_) {
      setenv("CLOUDDNS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("CLOUDDNS_THREADS");
    }
  }

 private:
  bool had_env_ = false;
  std::string saved_;
};

TEST_F(ThreadsEnvTest, ConfiguredValueWins) {
  setenv("CLOUDDNS_THREADS", "7", 1);
  EXPECT_EQ(EffectiveThreads(3), 3u);
}

TEST_F(ThreadsEnvTest, EnvOverridesHardware) {
  setenv("CLOUDDNS_THREADS", "5", 1);
  EXPECT_EQ(EffectiveThreads(0), 5u);
  // Re-read on every call: the bench sweep mutates it between runs.
  setenv("CLOUDDNS_THREADS", "2", 1);
  EXPECT_EQ(EffectiveThreads(0), 2u);
}

TEST_F(ThreadsEnvTest, MalformedEnvFallsThrough) {
  setenv("CLOUDDNS_THREADS", "banana", 1);
  EXPECT_GE(EffectiveThreads(0), 1u);
  setenv("CLOUDDNS_THREADS", "0", 1);
  EXPECT_GE(EffectiveThreads(0), 1u);
}

TEST_F(ThreadsEnvTest, NeverReturnsZero) {
  EXPECT_GE(EffectiveThreads(0), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool::Shared().ParallelFor(kTasks, 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SerialPathsStillCoverEveryTask) {
  for (std::size_t cap : {0u, 1u}) {
    std::vector<int> hits(64, 0);
    // cap<=1 runs inline on the caller — safe to write plain ints.
    ThreadPool::Shared().ParallelFor(hits.size(), cap,
                                     [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "cap " << cap << " task " << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  bool ran = false;
  ThreadPool::Shared().ParallelFor(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ThreadPool::Shared().ParallelFor(kOuter, 4, [&](std::size_t o) {
    // The inner call must not wait for pool helpers the outer job already
    // occupies — it runs inline on this worker.
    ThreadPool::Shared().ParallelFor(kInner, 8, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ThreadPoolTest, CallerSeesTaskWritesAfterReturn) {
  // Helper-written results must be visible to the caller without extra
  // synchronization — Scenario::Run reads shard buffers right after
  // ParallelFor returns.
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> out(32, 0);
    ThreadPool::Shared().ParallelFor(out.size(), 8, [&](std::size_t i) {
      out[i] = i * 2654435761u + static_cast<std::uint64_t>(round);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * 2654435761u + static_cast<std::uint64_t>(round));
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // The pool is spawned once per process; hammer it with many small jobs
  // to shake out epoch/wakeup bugs.
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    ThreadPool::Shared().ParallelFor(7, 3, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * (1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(ThreadPoolTest, HelperCountIsPositive) {
  // Even on single-core hosts the pool keeps one helper, so cross-thread
  // paths stay exercised under TSan everywhere.
  EXPECT_GE(ThreadPool::Shared().helper_count(), 1u);
}

}  // namespace
}  // namespace clouddns::base
