// The durable-storage primitives (DESIGN.md §14): CRC32C correctness,
// frame wrap/unwrap against a corruption matrix, the atomic FileWriter
// under every injected fault kind, quarantine, and the stranded-temp
// sweep. These are the invariants the self-healing dataset cache builds
// on, so each is pinned at the primitive level here.
#include "base/io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace clouddns::base::io {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> Bytes(const std::string& text) {
  return {text.begin(), text.end()};
}

std::string TempPath(const char* name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Installs an injector for one test body and guarantees removal, so a
/// failing assertion cannot leak faults into later tests.
struct ScopedInjector {
  explicit ScopedInjector(StorageFaultInjector& injector) {
    SetStorageFaultInjector(&injector);
  }
  ~ScopedInjector() { SetStorageFaultInjector(nullptr); }
};

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, MatchesTheCastagnoliKnownAnswer) {
  // RFC 3720 appendix B.4 check value for "123456789".
  const auto data = Bytes("123456789");
  EXPECT_EQ(Crc32c(data), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32cTest, ChainsAcrossBlockBoundaries) {
  const auto whole = Bytes("clouding up the internet");
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    const std::uint32_t head = Crc32c(whole.data(), split);
    EXPECT_EQ(Crc32c(whole.data() + split, whole.size() - split, head),
              Crc32c(whole))
        << "chain broken at split " << split;
  }
}

TEST(Crc32cTest, SoftwareKernelMatchesTheDispatchedOne) {
  // The dispatcher only accepts a hardware kernel after a known-answer
  // cross-check, so the two must agree on arbitrary data — including the
  // odd lengths that exercise the hardware kernel's byte tail.
  const char* backend = Crc32cBackend();
  EXPECT_TRUE(std::string_view(backend) == "sse4.2" ||
              std::string_view(backend) == "armv8-crc" ||
              std::string_view(backend) == "software")
      << backend;
  std::vector<std::uint8_t> data(4099);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 53 + 11);
  }
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{9}, std::size_t{4099}}) {
    EXPECT_EQ(Crc32c(data.data(), len), Crc32cSoftware(data.data(), len))
        << "kernels disagree at len " << len;
  }
  EXPECT_EQ(Crc32cSoftware(Bytes("123456789").data(), 9), 0xE3069283u);
}

TEST(Crc32cTest, CombineMatchesTheConcatenatedCrc) {
  // The block-parallel frame trailer folds per-block CRCs with
  // Crc32cCombine instead of re-walking the payload; the fold must land on
  // the exact whole-payload value at every split, including the degenerate
  // empty-prefix and empty-suffix ones.
  std::vector<std::uint8_t> whole(3 * kFrameBlockSize + 17);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    whole[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const std::uint32_t want = Crc32c(whole);
  for (std::size_t split :
       {std::size_t{0}, std::size_t{1}, kFrameBlockSize - 1, kFrameBlockSize,
        kFrameBlockSize + 1, whole.size() - 1, whole.size()}) {
    const std::uint32_t head = Crc32c(whole.data(), split);
    const std::uint32_t tail =
        Crc32c(whole.data() + split, whole.size() - split);
    EXPECT_EQ(Crc32cCombine(head, tail, whole.size() - split), want)
        << "combine broken at split " << split;
  }
  // Folding block-by-block (the trailer's exact shape) also lands on it.
  std::uint32_t folded = 0;
  for (std::size_t off = 0; off < whole.size(); off += kFrameBlockSize) {
    const std::size_t len = std::min(kFrameBlockSize, whole.size() - off);
    folded = Crc32cCombine(folded, Crc32c(whole.data() + off, len), len);
  }
  EXPECT_EQ(folded, want);
}

// ---------------------------------------------------------------------------
// Framing

TEST(FrameTest, RoundTripsPayloadsAcrossBlockBoundaries) {
  for (std::size_t size :
       {std::size_t{0}, std::size_t{1}, kFrameBlockSize - 1, kFrameBlockSize,
        kFrameBlockSize + 1, 3 * kFrameBlockSize + 17}) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    const auto framed_bytes = WrapFrame(kTagCapture, payload);
    std::vector<std::uint8_t> out;
    bool framed = false;
    std::uint32_t tag = 0;
    const IoStatus status =
        UnwrapFrame(framed_bytes, kTagCapture, out, framed, &tag);
    ASSERT_TRUE(status.ok()) << size << ": " << status.ToString();
    EXPECT_TRUE(framed);
    EXPECT_EQ(tag, kTagCapture);
    EXPECT_EQ(out, payload) << "payload mangled at size " << size;
  }
}

TEST(FrameTest, FrameBytesIdenticalAtEveryThreadCount) {
  // The block-parallel encoder writes each block into a precomputed
  // disjoint slice, so the emitted frame is a pure function of the payload
  // — the worker count must never leak into the bytes.
  const char* prev = std::getenv("CLOUDDNS_THREADS");
  const std::string saved = prev ? prev : "";
  for (std::size_t size :
       {std::size_t{0}, std::size_t{1}, kFrameBlockSize, kFrameBlockSize + 1,
        4 * kFrameBlockSize + 4099}) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 37 + 5);
    }
    std::vector<std::uint8_t> reference;
    for (const char* threads : {"1", "2", "4", "8"}) {
      setenv("CLOUDDNS_THREADS", threads, 1);
      const auto framed_bytes = WrapFrame(kTagCapture, payload);
      if (reference.empty() && std::string_view(threads) == "1") {
        reference = framed_bytes;
      } else {
        EXPECT_EQ(framed_bytes, reference)
            << "frame bytes diverge at size " << size << ", threads "
            << threads;
      }
      // The parallel verifier must accept it at this worker count too.
      std::vector<std::uint8_t> out;
      bool framed = false;
      ASSERT_TRUE(UnwrapFrame(framed_bytes, kTagCapture, out, framed).ok());
      EXPECT_EQ(out, payload);
    }
  }
  if (prev) {
    setenv("CLOUDDNS_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("CLOUDDNS_THREADS");
  }
}

TEST(FrameTest, LegacyBytesPassThroughUntouched) {
  const auto legacy = Bytes("CDNS-legacy-columnar-bytes");
  std::vector<std::uint8_t> out = Bytes("sentinel");
  bool framed = true;
  const IoStatus status = UnwrapFrame(legacy, kTagCapture, out, framed);
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(framed);
  // The caller keeps using `legacy` itself; `out` must not be clobbered.
  EXPECT_EQ(out, Bytes("sentinel"));
}

TEST(FrameTest, DetectsEveryCorruptionKind) {
  std::vector<std::uint8_t> payload(2 * kFrameBlockSize + 100, 0xAB);
  const auto intact = WrapFrame(kTagCapture, payload);
  std::vector<std::uint8_t> out;
  bool framed = false;

  // Header truncated mid-magic-suffix.
  auto header_cut = intact;
  header_cut.resize(10);
  EXPECT_EQ(UnwrapFrame(header_cut, kTagCapture, out, framed).code,
            IoCode::kBadFrame);

  // Future frame version.
  auto wrong_version = intact;
  wrong_version[11] = 0x7F;  // low byte of the big-endian version word
  EXPECT_EQ(UnwrapFrame(wrong_version, kTagCapture, out, framed).code,
            IoCode::kBadVersion);

  // Right frame, wrong artifact kind.
  EXPECT_EQ(UnwrapFrame(intact, kTagShards, out, framed).code, IoCode::kBadTag);
  EXPECT_TRUE(UnwrapFrame(intact, kTagAny, out, framed).ok());

  // Torn mid-payload.
  auto truncated = intact;
  truncated.resize(intact.size() / 2);
  EXPECT_EQ(UnwrapFrame(truncated, kTagCapture, out, framed).code,
            IoCode::kTruncated);

  // Single flipped payload byte inside the second block.
  auto flipped = intact;
  flipped[sizeof("CLDFRAM1") - 1 + 16 + 8 + kFrameBlockSize + 8 + 50] ^= 0x01;
  EXPECT_EQ(UnwrapFrame(flipped, kTagCapture, out, framed).code,
            IoCode::kBlockCorrupt);

  // Trailer magic damaged (blocks all verify).
  auto bad_trailer = intact;
  bad_trailer[bad_trailer.size() - 8] ^= 0xFF;
  EXPECT_EQ(UnwrapFrame(bad_trailer, kTagCapture, out, framed).code,
            IoCode::kTrailerCorrupt);
}

// ---------------------------------------------------------------------------
// FileWriter + whole-file helpers

TEST(FileWriterTest, CommitsAtomicallyAndLeavesNoTemp) {
  const std::string path = TempPath("io_writer_basic.bin");
  fs::remove(path);
  const auto payload = Bytes("atomic payload");
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  std::vector<std::uint8_t> read_back;
  ASSERT_TRUE(ReadFileBytes(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
  fs::remove(path);
}

TEST(FileWriterTest, AbortLeavesNothingBehind) {
  const std::string path = TempPath("io_writer_abort.bin");
  fs::remove(path);
  {
    FileWriter writer(path);
    writer.Append(Bytes("never lands"));
    writer.Abort();
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(FileWriterTest, MissingFileReadsAsNotFound) {
  std::vector<std::uint8_t> out;
  const IoStatus status = ReadFileBytes(TempPath("io_no_such_file"), out);
  EXPECT_EQ(status.code, IoCode::kNotFound);
  EXPECT_NE(status.sys_errno, 0);
}

TEST(FileWriterTest, FramedFileRoundTripsThroughDisk) {
  const std::string path = TempPath("io_framed_roundtrip.bin");
  const auto payload = Bytes("framed on disk");
  ASSERT_TRUE(WriteFramedFile(path, kTagContext, payload).ok());

  std::vector<std::uint8_t> out;
  bool framed = false;
  ASSERT_TRUE(ReadFramedFile(path, kTagContext, out, &framed).ok());
  EXPECT_TRUE(framed);
  EXPECT_EQ(out, payload);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Deterministic fault shim

TEST(StorageFaultTest, WritePhaseFaultsFailTypedAndPreserveTheOldFile) {
  struct Case {
    StorageFaultKind kind;
    IoCode expected;
    int expected_errno;
  };
  const Case cases[] = {
      {StorageFaultKind::kOpenFail, IoCode::kOpenFailed, EACCES},
      {StorageFaultKind::kShortWrite, IoCode::kWriteFailed, EIO},
      {StorageFaultKind::kEnospc, IoCode::kWriteFailed, ENOSPC},
      {StorageFaultKind::kFsyncFail, IoCode::kSyncFailed, EIO},
      {StorageFaultKind::kRenameFail, IoCode::kRenameFailed, EXDEV},
  };
  const std::string path = TempPath("io_fault_typed.bin");
  const auto old_content = Bytes("previous intact generation");
  for (const Case& c : cases) {
    fs::remove(path);
    ASSERT_TRUE(WriteFileAtomic(path, old_content).ok());

    StorageFaultInjector injector(1);
    injector.Add({"io_fault_typed", c.kind, 4, 1});
    ScopedInjector scope(injector);
    const IoStatus status = WriteFileAtomic(path, Bytes("new generation"));
    EXPECT_EQ(status.code, c.expected) << ToString(c.kind);
    EXPECT_EQ(status.sys_errno, c.expected_errno) << ToString(c.kind);
    EXPECT_EQ(injector.fired(), 1u) << ToString(c.kind);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << ToString(c.kind);

    // Atomicity: the destination still holds the old intact generation.
    std::vector<std::uint8_t> survivor;
    ASSERT_TRUE(ReadFileBytes(path, survivor).ok()) << ToString(c.kind);
    EXPECT_EQ(survivor, old_content) << ToString(c.kind);
  }
  fs::remove(path);
}

TEST(StorageFaultTest, EintrIsRetriedToCompletion) {
  const std::string path = TempPath("io_fault_eintr.bin");
  fs::remove(path);
  std::vector<std::uint8_t> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }

  StorageFaultInjector injector(2);
  injector.Add({"io_fault_eintr", StorageFaultKind::kEintrOnce, 137, 1});
  ScopedInjector scope(injector);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  EXPECT_EQ(injector.fired(), 1u);

  std::vector<std::uint8_t> read_back;
  ASSERT_TRUE(ReadFileBytes(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
  fs::remove(path);
}

TEST(StorageFaultTest, PostCommitFaultsAreSilentUntilTheNextRead) {
  struct Case {
    StorageFaultKind kind;
    std::uint64_t offset;
  };
  const Case cases[] = {
      {StorageFaultKind::kBitFlipAfterCommit, 40},
      {StorageFaultKind::kTruncateAfterCommit, 20},
      {StorageFaultKind::kZeroAfterCommit, kAutoOffset},
  };
  const std::string path = TempPath("io_fault_postcommit.bin");
  const auto payload = Bytes("payload that must be found damaged later");
  for (const Case& c : cases) {
    fs::remove(path);
    StorageFaultInjector injector(3);
    injector.Add({"io_fault_postcommit", c.kind, c.offset, 1});
    ScopedInjector scope(injector);

    // The commit itself reports success — bit rot is silent.
    ASSERT_TRUE(WriteFramedFile(path, kTagCapture, payload).ok())
        << ToString(c.kind);
    EXPECT_EQ(injector.fired(), 1u) << ToString(c.kind);

    // The read path is what must notice.
    std::vector<std::uint8_t> out;
    const IoStatus status = ReadFramedFile(path, kTagCapture, out);
    if (c.kind == StorageFaultKind::kZeroAfterCommit) {
      // An emptied file has no magic: it degrades to an (empty) legacy
      // payload; the payload decoder above this layer rejects it.
      EXPECT_TRUE(status.ok()) << status.ToString();
      EXPECT_TRUE(out.empty());
    } else {
      EXPECT_FALSE(status.ok()) << ToString(c.kind);
    }
  }
  fs::remove(path);
}

TEST(StorageFaultTest, AutoOffsetsAreAPureFunctionOfSeedPathAndSize) {
  StorageFaultInjector a(42);
  StorageFaultInjector b(42);
  StorageFaultInjector other_seed(43);
  const std::string path = "cache/nz_2019.cdns";
  const std::uint64_t off = a.DeriveOffset(path, kAutoOffset, 10'000);
  EXPECT_LT(off, 10'000u);
  EXPECT_EQ(off, b.DeriveOffset(path, kAutoOffset, 10'000));
  EXPECT_NE(off, other_seed.DeriveOffset(path, kAutoOffset, 10'000));
  EXPECT_NE(off, a.DeriveOffset("cache/nz_2019.ctx", kAutoOffset, 10'000));
  // Explicit offsets are honoured modulo the file size.
  EXPECT_EQ(a.DeriveOffset(path, 12'345, 10'000), 2'345u);
  EXPECT_EQ(a.DeriveOffset(path, 7, 0), 0u);
}

TEST(StorageFaultTest, FaultsMatchByPathSubstringAndArmCount) {
  StorageFaultInjector injector(0);
  injector.Add({".ctx", StorageFaultKind::kFsyncFail, kAutoOffset, 2});
  EXPECT_FALSE(
      injector.Consume("cache/a.cdns", StorageFaultKind::kFsyncFail, nullptr));
  EXPECT_FALSE(
      injector.Consume("cache/a.ctx", StorageFaultKind::kRenameFail, nullptr));
  EXPECT_TRUE(
      injector.Consume("cache/a.ctx", StorageFaultKind::kFsyncFail, nullptr));
  EXPECT_TRUE(
      injector.Consume("cache/b.ctx", StorageFaultKind::kFsyncFail, nullptr));
  EXPECT_FALSE(  // fire_count exhausted
      injector.Consume("cache/c.ctx", StorageFaultKind::kFsyncFail, nullptr));
  EXPECT_EQ(injector.fired(), 2u);
}

// ---------------------------------------------------------------------------
// Quarantine & stranded-temp sweep

TEST(QuarantineTest, MovesTheArtifactBesideAReasonFile) {
  const std::string dir = TempPath("io_quarantine_dir");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/bad.cdns";
  ASSERT_TRUE(WriteFileAtomic(path, Bytes("corrupt bytes")).ok());

  const std::string moved = QuarantineFile(path, "block CRC mismatch");
  EXPECT_EQ(moved, dir + "/.quarantine/bad.cdns.1");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(moved));

  std::vector<std::uint8_t> reason;
  ASSERT_TRUE(ReadFileBytes(moved + ".reason", reason).ok());
  const std::string text(reason.begin(), reason.end());
  EXPECT_NE(text.find("block CRC mismatch"), std::string::npos);
  EXPECT_NE(text.find(path), std::string::npos);

  // A second corrupt generation of the same name gets the next slot.
  ASSERT_TRUE(WriteFileAtomic(path, Bytes("corrupt again")).ok());
  EXPECT_EQ(QuarantineFile(path, "again"), dir + "/.quarantine/bad.cdns.2");
  fs::remove_all(dir);
}

TEST(QuarantineTest, SweepRemovesOnlyStrandedTempFiles) {
  const std::string dir = TempPath("io_tmp_sweep_dir");
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_TRUE(WriteFileAtomic(dir + "/keep.cdns", Bytes("artifact")).ok());
  // Simulate a crashed writer: temp files that never got renamed away.
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/stranded.cdns.tmp", Bytes("torn")).ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/also.ctx.tmp", Bytes("torn")).ok());

  EXPECT_EQ(RemoveStrandedTmpFiles(dir), 2u);
  EXPECT_TRUE(fs::exists(dir + "/keep.cdns"));
  EXPECT_FALSE(fs::exists(dir + "/stranded.cdns.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/also.ctx.tmp"));
  EXPECT_EQ(RemoveStrandedTmpFiles(dir), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace clouddns::base::io
