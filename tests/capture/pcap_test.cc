#include "capture/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace clouddns::capture {
namespace {

CaptureRecord QueryRecord(const char* src, dns::Transport transport) {
  CaptureRecord r;
  r.time_us = 1'588'723'200'000'000ull + 123'456;  // 2020-05-06-ish
  r.src = *net::IpAddress::Parse(src);
  r.src_port = 54321;
  r.transport = transport;
  r.qname = *dns::Name::Parse("www.dom7.nl");
  r.qtype = dns::RrType::kAaaa;
  r.has_edns = true;
  r.edns_udp_size = 1232;
  r.do_bit = true;
  return r;
}

TEST(PcapTest, GlobalHeaderIsClassicLibpcap) {
  auto bytes = EncodePcap({});
  ASSERT_EQ(bytes.size(), 24u);
  // Little-endian magic 0xa1b2c3d4 and LINKTYPE_ETHERNET.
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  EXPECT_EQ(bytes[20], 1);
}

TEST(PcapTest, UdpV4QueryRoundTrips) {
  CaptureBuffer records = {QueryRecord("198.51.100.7", dns::Transport::kUdp)};
  auto decoded = DecodePcap(EncodePcap(records));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  const CaptureRecord& r = (*decoded)[0];
  EXPECT_EQ(r.time_us, records[0].time_us);
  EXPECT_EQ(r.src, records[0].src);
  EXPECT_EQ(r.src_port, records[0].src_port);
  EXPECT_EQ(r.transport, dns::Transport::kUdp);
  EXPECT_EQ(r.qname, records[0].qname);
  EXPECT_EQ(r.qtype, dns::RrType::kAaaa);
  EXPECT_TRUE(r.has_edns);
  EXPECT_EQ(r.edns_udp_size, 1232);
  EXPECT_TRUE(r.do_bit);
}

TEST(PcapTest, TcpAndV6VariantsRoundTrip) {
  CaptureBuffer records = {
      QueryRecord("2001:db8::7", dns::Transport::kUdp),
      QueryRecord("198.51.100.7", dns::Transport::kTcp),
      QueryRecord("2001:db8::9", dns::Transport::kTcp),
  };
  auto decoded = DecodePcap(EncodePcap(records));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_TRUE((*decoded)[0].src.is_v6());
  EXPECT_EQ((*decoded)[1].transport, dns::Transport::kTcp);
  EXPECT_EQ((*decoded)[2].transport, dns::Transport::kTcp);
  EXPECT_EQ((*decoded)[2].qname, records[2].qname);
}

TEST(PcapTest, NoEdnsQuerySurvives) {
  CaptureRecord r = QueryRecord("10.0.0.1", dns::Transport::kUdp);
  r.has_edns = false;
  r.edns_udp_size = 0;
  r.do_bit = false;
  auto decoded = DecodePcap(EncodePcap({r}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_FALSE((*decoded)[0].has_edns);
  EXPECT_EQ((*decoded)[0].edns_udp_size, 0);
}

TEST(PcapTest, RejectsWrongMagic) {
  auto bytes = EncodePcap({});
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DecodePcap(bytes).has_value());
}

TEST(PcapTest, SkipsNonDnsFramesAndTruncatedTail) {
  CaptureBuffer records = {QueryRecord("198.51.100.7", dns::Transport::kUdp),
                           QueryRecord("198.51.100.8", dns::Transport::kUdp)};
  auto bytes = EncodePcap(records);
  // Truncate the second packet mid-frame: the decoder must keep the first.
  bytes.resize(bytes.size() - 10);
  auto decoded = DecodePcap(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 1u);
}

TEST(PcapTest, FileRoundTrip) {
  CaptureBuffer records = {QueryRecord("198.51.100.7", dns::Transport::kUdp)};
  std::string path = ::testing::TempDir() + "/clouddns_test.pcap";
  ASSERT_TRUE(WritePcapFile(path, records));
  auto decoded = ReadPcapFile(path);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 1u);
  std::remove(path.c_str());
}

TEST(PcapTest, Ipv4HeaderChecksumIsValid) {
  auto bytes = EncodePcap({QueryRecord("198.51.100.7", dns::Transport::kUdp)});
  // Frame starts after the 24-byte global header + 16-byte record header;
  // the IPv4 header starts after 14 bytes of Ethernet.
  const std::uint8_t* ip = bytes.data() + 24 + 16 + 14;
  std::uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += static_cast<std::uint32_t>((ip[i] << 8) | ip[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(sum, 0xffffu);  // one's-complement sum over a valid header
}

}  // namespace
}  // namespace clouddns::capture
