// Parameterized codec sweep: both capture codecs must round-trip streams
// of every size and content shape, and the columnar format must never be
// larger than row-wise on dictionary-friendly (realistic) streams.
#include <gtest/gtest.h>

#include "capture/columnar.h"
#include "sim/random.h"

namespace clouddns::capture {
namespace {

enum class Shape {
  kEmpty,         // zero records
  kSingle,        // one record
  kRealistic,     // few sources/names, skewed — the production shape
  kAdversarial,   // every field unique, dictionaries useless
  kAllV6,         // IPv6-only sources
  kConstant,      // identical records (maximal compression)
};

struct CodecParam {
  Shape shape;
  std::size_t count;
};

CaptureBuffer MakeStream(const CodecParam& param) {
  CaptureBuffer records;
  sim::Rng rng(0xc0dec);
  for (std::size_t i = 0; i < param.count; ++i) {
    CaptureRecord r;
    switch (param.shape) {
      case Shape::kEmpty:
      case Shape::kSingle:
      case Shape::kRealistic:
        r.time_us = 1'000'000 + 1000 * i;
        r.src = net::Ipv4Address(
            static_cast<std::uint32_t>(0x0a000000u + rng.NextBelow(300)));
        r.qname = *dns::Name::Parse(
            "dom" + std::to_string(rng.NextBelow(100)) + ".nl");
        r.qtype = rng.Bernoulli(0.6) ? dns::RrType::kA : dns::RrType::kNs;
        r.rcode = rng.Bernoulli(0.12) ? dns::Rcode::kNxDomain
                                      : dns::Rcode::kNoError;
        r.edns_udp_size = 1232;
        r.has_edns = true;
        break;
      case Shape::kAdversarial: {
        r.time_us = rng.Next() >> 20;  // wildly out of order
        r.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()));
        r.qname = *dns::Name::Parse("u" + std::to_string(i) + "-" +
                                    std::to_string(rng.NextBelow(1u << 30)) +
                                    ".example");
        r.qtype = static_cast<dns::RrType>(1 + rng.NextBelow(250));
        r.rcode = static_cast<dns::Rcode>(rng.NextBelow(6));
        r.src_port = static_cast<std::uint16_t>(rng.Next());
        r.query_size = static_cast<std::uint16_t>(rng.Next());
        r.response_size = static_cast<std::uint16_t>(rng.Next());
        r.tcp_handshake_rtt_us = static_cast<std::uint32_t>(rng.Next());
        r.transport = rng.Bernoulli(0.5) ? dns::Transport::kTcp
                                         : dns::Transport::kUdp;
        r.has_edns = rng.Bernoulli(0.5);
        r.do_bit = rng.Bernoulli(0.5);
        r.tc = rng.Bernoulli(0.5);
        break;
      }
      case Shape::kAllV6: {
        net::Ipv6Address::Bytes bytes{};
        bytes[0] = 0x2a;
        bytes[15] = static_cast<std::uint8_t>(rng.NextBelow(200));
        r.src = net::Ipv6Address(bytes);
        r.time_us = 1000 * i;
        r.qname = *dns::Name::Parse("v6.nl");
        break;
      }
      case Shape::kConstant:
        r.time_us = 42;
        r.src = *net::IpAddress::Parse("8.8.8.8");
        r.qname = *dns::Name::Parse("nl");
        r.qtype = dns::RrType::kSoa;
        break;
    }
    records.push_back(std::move(r));
  }
  return records;
}

class CaptureCodecTest : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CaptureCodecTest, ColumnarRoundTrips) {
  CaptureBuffer records = MakeStream(GetParam());
  auto decoded = DecodeColumnar(EncodeColumnar(records));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, records);
}

TEST_P(CaptureCodecTest, RowWiseRoundTrips) {
  CaptureBuffer records = MakeStream(GetParam());
  auto decoded = DecodeRowWise(EncodeRowWise(records));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, records);
}

TEST_P(CaptureCodecTest, ColumnarWinsOnRealisticStreams) {
  const CodecParam& param = GetParam();
  if (param.shape != Shape::kRealistic && param.shape != Shape::kConstant) {
    GTEST_SKIP() << "size comparison only meaningful for compressible shapes";
  }
  if (param.count < 100) GTEST_SKIP() << "too small for a fair comparison";
  CaptureBuffer records = MakeStream(param);
  EXPECT_LT(EncodeColumnar(records).size(), EncodeRowWise(records).size());
}

std::string ShapeName(const ::testing::TestParamInfo<CodecParam>& info) {
  static const char* const kNames[] = {"Empty",       "Single", "Realistic",
                                       "Adversarial", "AllV6",  "Constant"};
  return std::string(kNames[static_cast<int>(info.param.shape)]) +
         std::to_string(info.param.count);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CaptureCodecTest,
    ::testing::Values(CodecParam{Shape::kEmpty, 0},
                      CodecParam{Shape::kSingle, 1},
                      CodecParam{Shape::kRealistic, 100},
                      CodecParam{Shape::kRealistic, 5000},
                      CodecParam{Shape::kAdversarial, 100},
                      CodecParam{Shape::kAdversarial, 3000},
                      CodecParam{Shape::kAllV6, 500},
                      CodecParam{Shape::kConstant, 2000}),
    ShapeName);

}  // namespace
}  // namespace clouddns::capture
