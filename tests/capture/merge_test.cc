// The shard-merge contract: per-shard streams join into one time-ordered
// buffer with ties resolved to the lower shard index, independent of how
// many buffers there are or how records are distributed among them.
#include "capture/merge.h"

#include <gtest/gtest.h>

namespace clouddns::capture {
namespace {

CaptureRecord At(sim::TimeUs time, std::uint32_t marker) {
  CaptureRecord r;
  r.time_us = time;
  r.src_port = static_cast<std::uint16_t>(marker);
  return r;
}

TEST(MergeTest, MergesByTime) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(10, 0), At(30, 1), At(50, 2)};
  shards[1] = {At(20, 3), At(40, 4)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time_us, merged[i].time_us);
  }
  EXPECT_EQ(merged[0].src_port, 0);
  EXPECT_EQ(merged[1].src_port, 3);
  EXPECT_EQ(merged[4].src_port, 2);
}

TEST(MergeTest, TiesResolveToLowerShard) {
  std::vector<CaptureBuffer> shards(3);
  shards[0] = {At(100, 0)};
  shards[1] = {At(100, 1), At(100, 2)};
  shards[2] = {At(100, 3)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].src_port, 0);  // shard 0 first
  EXPECT_EQ(merged[1].src_port, 1);  // then shard 1, in-shard order kept
  EXPECT_EQ(merged[2].src_port, 2);
  EXPECT_EQ(merged[3].src_port, 3);
}

TEST(MergeTest, HandlesEmptyShards) {
  EXPECT_TRUE(MergeShards({}).empty());
  std::vector<CaptureBuffer> shards(4);
  shards[2] = {At(7, 9)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].src_port, 9);
}

TEST(MergeTest, SortByTimeStableKeepsEqualOrder) {
  CaptureBuffer buffer = {At(5, 0), At(1, 1), At(5, 2), At(1, 3)};
  SortByTimeStable(buffer);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0].src_port, 1);
  EXPECT_EQ(buffer[1].src_port, 3);
  EXPECT_EQ(buffer[2].src_port, 0);
  EXPECT_EQ(buffer[3].src_port, 2);
}

TEST(MergeTest, AppendBufferMovesAll) {
  CaptureBuffer dst = {At(1, 0)};
  CaptureBuffer src = {At(2, 1), At(3, 2)};
  AppendBuffer(dst, std::move(src));
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst[2].src_port, 2);
  CaptureBuffer empty_dst;
  CaptureBuffer src2 = {At(4, 5)};
  AppendBuffer(empty_dst, std::move(src2));
  ASSERT_EQ(empty_dst.size(), 1u);
}

}  // namespace
}  // namespace clouddns::capture
