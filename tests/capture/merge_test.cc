// The shard-merge contract: per-shard streams join into one time-ordered
// buffer with ties resolved to the lower shard index, independent of how
// many buffers there are or how records are distributed among them.
#include "capture/merge.h"

#include <gtest/gtest.h>

namespace clouddns::capture {
namespace {

CaptureRecord At(sim::TimeUs time, std::uint32_t marker) {
  CaptureRecord r;
  r.time_us = time;
  r.src_port = static_cast<std::uint16_t>(marker);
  return r;
}

TEST(MergeTest, MergesByTime) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(10, 0), At(30, 1), At(50, 2)};
  shards[1] = {At(20, 3), At(40, 4)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time_us, merged[i].time_us);
  }
  EXPECT_EQ(merged[0].src_port, 0);
  EXPECT_EQ(merged[1].src_port, 3);
  EXPECT_EQ(merged[4].src_port, 2);
}

TEST(MergeTest, TiesResolveToLowerShard) {
  std::vector<CaptureBuffer> shards(3);
  shards[0] = {At(100, 0)};
  shards[1] = {At(100, 1), At(100, 2)};
  shards[2] = {At(100, 3)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].src_port, 0);  // shard 0 first
  EXPECT_EQ(merged[1].src_port, 1);  // then shard 1, in-shard order kept
  EXPECT_EQ(merged[2].src_port, 2);
  EXPECT_EQ(merged[3].src_port, 3);
}

TEST(MergeTest, HandlesEmptyShards) {
  EXPECT_TRUE(MergeShards({}).empty());
  std::vector<CaptureBuffer> shards(4);
  shards[2] = {At(7, 9)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].src_port, 9);
}

TEST(MergeTest, SortByTimeStableKeepsEqualOrder) {
  CaptureBuffer buffer = {At(5, 0), At(1, 1), At(5, 2), At(1, 3)};
  SortByTimeStable(buffer);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0].src_port, 1);
  EXPECT_EQ(buffer[1].src_port, 3);
  EXPECT_EQ(buffer[2].src_port, 0);
  EXPECT_EQ(buffer[3].src_port, 2);
}

// The ladder/galloping rewrite must be indistinguishable from the original
// per-record heap merge on every shape: the heap version is the executable
// specification of the (time, shard, within-shard) order.
TEST(MergeTest, GallopingMatchesHeapOnRandomShards) {
  // Deterministic pseudo-random shard shapes (xorshift, fixed seed).
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (std::size_t shard_count : {1u, 2u, 3u, 5u, 16u}) {
    std::vector<CaptureBuffer> a(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t n = next() % 200;
      sim::TimeUs t = next() % 50;
      for (std::size_t i = 0; i < n; ++i) {
        // Bursty arrivals with frequent exact ties across shards.
        t += next() % 3;
        a[s].push_back(At(t, static_cast<std::uint32_t>(s * 1000 + i)));
      }
    }
    std::vector<CaptureBuffer> b = a;
    auto galloping = MergeShards(std::move(a));
    auto heap = MergeShardsHeap(std::move(b));
    ASSERT_EQ(galloping.size(), heap.size()) << shard_count << " shards";
    for (std::size_t i = 0; i < galloping.size(); ++i) {
      ASSERT_EQ(galloping[i].src_port, heap[i].src_port)
          << "diverges at record " << i << " with " << shard_count
          << " shards";
    }
  }
}

TEST(MergeTest, TwoShardFastPathKeepsTieOrder) {
  // All-ties two-shard merge: left (lower shard) must win every tie and
  // keep within-shard order — the exact contract Flatten() relies on.
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(5, 0), At(5, 1), At(9, 2)};
  shards[1] = {At(5, 10), At(9, 11), At(9, 12)};
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged[0].src_port, 0);
  EXPECT_EQ(merged[1].src_port, 1);
  EXPECT_EQ(merged[2].src_port, 10);
  EXPECT_EQ(merged[3].src_port, 2);
  EXPECT_EQ(merged[4].src_port, 11);
  EXPECT_EQ(merged[5].src_port, 12);
}

TEST(MergeTest, SkewedRunsMergeWholesale) {
  // One shard entirely before the other: the galloping merge must copy
  // each side as a single run and still match the contract.
  std::vector<CaptureBuffer> shards(2);
  for (std::uint32_t i = 0; i < 1000; ++i) shards[1].push_back(At(i, i));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    shards[0].push_back(At(5000 + i, 100000 + i));
  }
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 2000u);
  EXPECT_EQ(merged.front().src_port, 0);
  EXPECT_EQ(merged[999].time_us, 999u);
  EXPECT_EQ(merged[1000].time_us, 5000u);
}

TEST(MergeTest, MergeShardsCopyLeavesInputsIntact) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(10, 0)};
  shards[1] = {At(5, 1)};
  auto merged = MergeShardsCopy(shards);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].src_port, 1);
  ASSERT_EQ(shards[0].size(), 1u);  // untouched
  ASSERT_EQ(shards[1].size(), 1u);
}

TEST(MergeTest, MergeNanosAccumulates) {
  const std::uint64_t before = MergeNanos();
  std::vector<CaptureBuffer> shards(2);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    shards[i % 2].push_back(At(i, i));
  }
  auto merged = MergeShards(std::move(shards));
  ASSERT_EQ(merged.size(), 5000u);
  EXPECT_GT(MergeNanos(), before);
}

TEST(MergeTest, AppendBufferMovesAll) {
  CaptureBuffer dst = {At(1, 0)};
  CaptureBuffer src = {At(2, 1), At(3, 2)};
  AppendBuffer(dst, std::move(src));
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst[2].src_port, 2);
  CaptureBuffer empty_dst;
  CaptureBuffer src2 = {At(4, 5)};
  AppendBuffer(empty_dst, std::move(src2));
  ASSERT_EQ(empty_dst.size(), 1u);
}

}  // namespace
}  // namespace clouddns::capture
