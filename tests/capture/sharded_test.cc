// ShardedCapture contract tests: flatten ordering on (time, shard) ties,
// single-shard identity, the compat shims, and the `.shards` sidecar
// round trip with clean fallback on every malformed-input shape.
#include "capture/sharded.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "capture/merge.h"

namespace clouddns::capture {
namespace {

CaptureRecord At(sim::TimeUs time, std::uint32_t marker) {
  CaptureRecord r;
  r.time_us = time;
  r.src_port = static_cast<std::uint16_t>(marker);
  return r;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ShardedCaptureTest, FlattenOrdersByTimeThenShard) {
  std::vector<CaptureBuffer> shards(3);
  shards[0] = {At(10, 0), At(30, 1)};
  shards[1] = {At(10, 10), At(20, 11)};
  shards[2] = {At(10, 20), At(30, 21)};
  auto capture = ShardedCapture::FromShards(std::move(shards));
  ASSERT_EQ(capture.size(), 6u);
  const CaptureBuffer& flat = capture.Flatten();
  ASSERT_EQ(flat.size(), 6u);
  // t=10 ties resolve to the lower shard index, in shard order.
  EXPECT_EQ(flat[0].src_port, 0);
  EXPECT_EQ(flat[1].src_port, 10);
  EXPECT_EQ(flat[2].src_port, 20);
  EXPECT_EQ(flat[3].src_port, 11);  // t=20
  EXPECT_EQ(flat[4].src_port, 1);   // t=30 tie: shard 0 before shard 2
  EXPECT_EQ(flat[5].src_port, 21);
  // Memoized: same object on repeat calls.
  EXPECT_EQ(&capture.Flatten(), &flat);
}

TEST(ShardedCaptureTest, WithinShardTieOrderSurvivesFlatten) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(5, 0), At(5, 1), At(5, 2)};
  shards[1] = {At(5, 10)};
  auto capture = ShardedCapture::FromShards(std::move(shards));
  const CaptureBuffer& flat = capture.Flatten();
  EXPECT_EQ(flat[0].src_port, 0);
  EXPECT_EQ(flat[1].src_port, 1);
  EXPECT_EQ(flat[2].src_port, 2);
  EXPECT_EQ(flat[3].src_port, 10);
}

TEST(ShardedCaptureTest, SingleShardViewIsZeroCost) {
  CaptureBuffer flat = {At(1, 0), At(2, 1)};
  const CaptureRecord* data = flat.data();
  ShardedCapture capture(std::move(flat));
  EXPECT_EQ(capture.shard_count(), 1u);
  EXPECT_EQ(capture.size(), 2u);
  // Flatten on a single-shard view returns the shard itself — no copy.
  EXPECT_EQ(capture.Flatten().data(), data);
}

TEST(ShardedCaptureTest, VectorStyleShimsIterateFlattenedOrder) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(20, 1)};
  shards[1] = {At(10, 0)};
  auto capture = ShardedCapture::FromShards(std::move(shards));
  EXPECT_EQ(capture.front().src_port, 0);
  EXPECT_EQ(capture.back().src_port, 1);
  EXPECT_EQ(capture[0].src_port, 0);
  std::size_t n = 0;
  sim::TimeUs last = 0;
  for (const auto& record : capture) {
    EXPECT_GE(record.time_us, last);
    last = record.time_us;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(ShardedCaptureTest, EqualityComparesFlattenedStreams) {
  std::vector<CaptureBuffer> two(2);
  two[0] = {At(1, 0)};
  two[1] = {At(2, 1)};
  auto sharded = ShardedCapture::FromShards(std::move(two));
  ShardedCapture flat(CaptureBuffer{At(1, 0), At(2, 1)});
  EXPECT_TRUE(sharded == flat);  // distribution differs, stream identical
  ShardedCapture other(CaptureBuffer{At(1, 0), At(3, 1)});
  EXPECT_FALSE(sharded == other);
}

TEST(ShardedCaptureTest, TakeFlatMatchesFlattenAndEmptiesView) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(2, 1)};
  shards[1] = {At(1, 0), At(3, 2)};
  auto capture = ShardedCapture::FromShards(std::move(shards));
  CaptureBuffer expected = capture.FlattenCopy();
  CaptureBuffer taken = std::move(capture).TakeFlat();
  EXPECT_EQ(taken, expected);
  EXPECT_TRUE(capture.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(ShardedCaptureTest, PushBackCollapsesAndAppends) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(1, 0)};
  shards[1] = {At(2, 1)};
  auto capture = ShardedCapture::FromShards(std::move(shards));
  capture.push_back(At(3, 2));
  EXPECT_EQ(capture.shard_count(), 1u);
  ASSERT_EQ(capture.size(), 3u);
  EXPECT_EQ(capture[2].src_port, 2);
}

TEST(ShardedCaptureTest, SidecarRoundTripRestoresShardStructure) {
  std::vector<CaptureBuffer> shards(4);
  shards[0] = {At(10, 0), At(40, 1)};
  shards[2] = {At(10, 20), At(20, 21), At(50, 22)};
  shards[3] = {At(30, 30)};
  auto original = ShardedCapture::FromShards(std::move(shards));
  const std::string path = TempPath("roundtrip.shards");
  ASSERT_TRUE(WriteShardIndex(path, original));

  auto restored = ReshardFromIndex(path, original.FlattenCopy());
  ASSERT_EQ(restored.shard_count(), original.shard_count());
  for (std::size_t s = 0; s < original.shard_count(); ++s) {
    EXPECT_EQ(restored.shard(s), original.shard(s)) << "shard " << s;
  }
  EXPECT_TRUE(restored == original);
  std::remove(path.c_str());
}

TEST(ShardedCaptureTest, MissingSidecarFallsBackToSingleShard) {
  CaptureBuffer flat = {At(1, 0), At(2, 1)};
  auto restored =
      ReshardFromIndex(TempPath("does_not_exist.shards"), std::move(flat));
  EXPECT_EQ(restored.shard_count(), 1u);
  EXPECT_EQ(restored.size(), 2u);
}

TEST(ShardedCaptureTest, MismatchedSidecarFallsBackToSingleShard) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(1, 0)};
  shards[1] = {At(2, 1)};
  auto original = ShardedCapture::FromShards(std::move(shards));
  const std::string path = TempPath("mismatch.shards");
  ASSERT_TRUE(WriteShardIndex(path, original));

  // A flat buffer with a different record count must be rejected.
  CaptureBuffer wrong = {At(1, 0)};
  auto restored = ReshardFromIndex(path, std::move(wrong));
  EXPECT_EQ(restored.shard_count(), 1u);
  EXPECT_EQ(restored.size(), 1u);
  std::remove(path.c_str());
}

TEST(ShardedCaptureTest, TruncatedSidecarFallsBackToSingleShard) {
  std::vector<CaptureBuffer> shards(2);
  shards[0] = {At(1, 0), At(3, 2)};
  shards[1] = {At(2, 1)};
  auto original = ShardedCapture::FromShards(std::move(shards));
  const std::string path = TempPath("truncated.shards");
  ASSERT_TRUE(WriteShardIndex(path, original));
  // Truncate the file mid-payload.
  if (std::FILE* f = std::fopen(path.c_str(), "rb+")) {
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), 12), 0);
  }
  auto restored = ReshardFromIndex(path, original.FlattenCopy());
  EXPECT_EQ(restored.shard_count(), 1u);
  EXPECT_EQ(restored.size(), 3u);
  std::remove(path.c_str());
}

TEST(ShardedCaptureTest, GarbageSidecarFallsBackToSingleShard) {
  const std::string path = TempPath("garbage.shards");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fputs("not a shard index at all", f);
    std::fclose(f);
  }
  CaptureBuffer flat = {At(1, 0)};
  auto restored = ReshardFromIndex(path, std::move(flat));
  EXPECT_EQ(restored.shard_count(), 1u);
  EXPECT_EQ(restored.size(), 1u);
  std::remove(path.c_str());
}

TEST(ShardedCaptureTest, ReshardedShardsRemergeByteIdentically) {
  // The property dataset_cache relies on: reshard(flatten(x)) flattens
  // back to exactly flatten(x).
  std::vector<CaptureBuffer> shards(3);
  std::uint32_t marker = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    sim::TimeUs t = s;  // deliberate cross-shard ties
    for (int i = 0; i < 50; ++i) {
      t += (i % 7 == 0) ? 0 : 2;
      shards[s].push_back(At(t, marker++));
    }
  }
  auto original = ShardedCapture::FromShards(std::move(shards));
  const std::string path = TempPath("remerge.shards");
  ASSERT_TRUE(WriteShardIndex(path, original));
  auto restored = ReshardFromIndex(path, original.FlattenCopy());
  EXPECT_EQ(restored.Flatten(), original.Flatten());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace clouddns::capture
