#include "capture/columnar.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "capture/varint.h"

namespace clouddns::capture {
namespace {

CaptureRecord SampleRecord(int i) {
  CaptureRecord r;
  r.time_us = 1'000'000ull * static_cast<unsigned>(i);
  r.server_id = static_cast<std::uint32_t>(i % 2);
  r.site_id = static_cast<std::uint32_t>(i % 5);
  r.src = i % 3 == 0 ? *net::IpAddress::Parse("2001:db8::1")
                     : *net::IpAddress::Parse("198.51.100.7");
  r.src_port = static_cast<std::uint16_t>(1024 + i);
  r.transport = i % 4 == 0 ? dns::Transport::kTcp : dns::Transport::kUdp;
  r.qname = *dns::Name::Parse("dom" + std::to_string(i % 10) + ".nl");
  r.qtype = i % 2 == 0 ? dns::RrType::kA : dns::RrType::kNs;
  r.rcode = i % 7 == 0 ? dns::Rcode::kNxDomain : dns::Rcode::kNoError;
  r.has_edns = true;
  r.edns_udp_size = i % 3 == 0 ? 512 : 1232;
  r.do_bit = i % 2 == 0;
  r.tc = i % 11 == 0;
  r.query_size = static_cast<std::uint16_t>(40 + i % 30);
  r.response_size = static_cast<std::uint16_t>(100 + i % 400);
  r.tcp_handshake_rtt_us =
      r.transport == dns::Transport::kTcp ? 25000u + static_cast<unsigned>(i) : 0u;
  return r;
}

TEST(VarintTest, RoundTripBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xffffffffull, ~0ull}) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    std::size_t pos = 0;
    auto back = GetVarint(buf, pos);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RejectsTruncated) {
  std::vector<std::uint8_t> buf = {0x80, 0x80};
  std::size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, pos).has_value());
}

TEST(ZigzagTest, RoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{
           0, 1, -1, 12345, -12345, std::numeric_limits<std::int64_t>::max(),
           std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(ColumnarTest, EmptyBufferRoundTrips) {
  auto bytes = EncodeColumnar({});
  auto back = DecodeColumnar(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(ColumnarTest, RoundTripPreservesEveryField) {
  CaptureBuffer records;
  for (int i = 0; i < 500; ++i) records.push_back(SampleRecord(i));
  auto bytes = EncodeColumnar(records);
  auto back = DecodeColumnar(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i], records[i]) << i;
  }
}

TEST(ColumnarTest, OutOfOrderTimestampsSurvive) {
  // Delta encoding is zigzag, so non-monotonic times must round-trip.
  CaptureBuffer records;
  CaptureRecord a = SampleRecord(1), b = SampleRecord(2);
  a.time_us = 5'000'000;
  b.time_us = 1'000'000;
  records = {a, b};
  auto back = DecodeColumnar(EncodeColumnar(records));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)[0].time_us, 5'000'000u);
  EXPECT_EQ((*back)[1].time_us, 1'000'000u);
}

TEST(ColumnarTest, DictionaryCompressionBeatsRowWise) {
  // Realistic skew: few resolvers, few names, many records.
  CaptureBuffer records;
  for (int i = 0; i < 5000; ++i) records.push_back(SampleRecord(i));
  auto columnar = EncodeColumnar(records);
  auto row = EncodeRowWise(records);
  EXPECT_LT(static_cast<double>(columnar.size()),
            static_cast<double>(row.size()) * 0.7);
}

TEST(ColumnarTest, RejectsCorruptedHeader) {
  CaptureBuffer records = {SampleRecord(0)};
  auto bytes = EncodeColumnar(records);
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DecodeColumnar(bytes).has_value());
}

TEST(ColumnarTest, RejectsTruncatedBody) {
  CaptureBuffer records;
  for (int i = 0; i < 10; ++i) records.push_back(SampleRecord(i));
  auto bytes = EncodeColumnar(records);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeColumnar(bytes).has_value());
}

TEST(ColumnarTest, FuzzedInputNeverCrashes) {
  CaptureBuffer records;
  for (int i = 0; i < 50; ++i) records.push_back(SampleRecord(i));
  auto base = EncodeColumnar(records);
  std::mt19937_64 rng(99);
  for (int round = 0; round < 500; ++round) {
    auto mutated = base;
    for (int f = 0; f < 4; ++f) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    (void)DecodeColumnar(mutated);  // must not crash or hang
  }
}

TEST(RowWiseTest, RoundTrips) {
  CaptureBuffer records;
  for (int i = 0; i < 100; ++i) records.push_back(SampleRecord(i));
  auto back = DecodeRowWise(EncodeRowWise(records));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
}

TEST(RowWiseTest, FormatsAreNotInterchangeable) {
  CaptureBuffer records = {SampleRecord(0)};
  EXPECT_FALSE(DecodeColumnar(EncodeRowWise(records)).has_value());
  EXPECT_FALSE(DecodeRowWise(EncodeColumnar(records)).has_value());
}

TEST(CaptureFileTest, WriteAndReadBack) {
  CaptureBuffer records;
  for (int i = 0; i < 200; ++i) records.push_back(SampleRecord(i));
  std::string path = ::testing::TempDir() + "/capture_test.cdns";
  ASSERT_TRUE(WriteCaptureFile(path, records));
  auto back = ReadCaptureFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadCaptureFile("/nonexistent/path/x.cdns").has_value());
}

}  // namespace
}  // namespace clouddns::capture
