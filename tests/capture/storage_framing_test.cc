// On-disk integrity contract for every capture-layer artifact (DESIGN.md
// §14): framed writes round-trip, legacy unframed files from before the
// framing change still load byte-identically, and cross-artifact mixups
// (a sidecar renamed over a capture) are rejected by content tag before a
// payload decoder ever sees the bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/context_cache.h"
#include "base/io.h"
#include "capture/columnar.h"
#include "capture/pcap.h"
#include "capture/sharded.h"
#include "cloud/scenario.h"

namespace clouddns::capture {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const char* name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

CaptureRecord SampleRecord(int i) {
  CaptureRecord r;
  r.time_us = 1'000'000ull * static_cast<unsigned>(i);
  r.server_id = static_cast<std::uint32_t>(i % 2);
  r.site_id = static_cast<std::uint32_t>(i % 5);
  r.src = i % 3 == 0 ? *net::IpAddress::Parse("2001:db8::1")
                     : *net::IpAddress::Parse("198.51.100.7");
  r.src_port = static_cast<std::uint16_t>(1024 + i);
  r.transport = i % 4 == 0 ? dns::Transport::kTcp : dns::Transport::kUdp;
  r.qname = *dns::Name::Parse("dom" + std::to_string(i % 10) + ".nl");
  r.qtype = i % 2 == 0 ? dns::RrType::kA : dns::RrType::kNs;
  r.rcode = dns::Rcode::kNoError;
  r.has_edns = true;
  r.edns_udp_size = 1232;
  r.query_size = static_cast<std::uint16_t>(40 + i % 30);
  r.response_size = static_cast<std::uint16_t>(100 + i % 400);
  r.tcp_handshake_rtt_us =
      r.transport == dns::Transport::kTcp ? 25000u : 0u;
  return r;
}

CaptureBuffer SampleBuffer(int n) {
  CaptureBuffer records;
  for (int i = 0; i < n; ++i) records.push_back(SampleRecord(i));
  return records;
}

/// Strips the base::io frame off a freshly written artifact and rewrites
/// the bare payload in place — exactly what a cache written before the
/// framing change looks like on disk.
void RewriteAsLegacy(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(base::io::ReadFileBytes(path, bytes).ok());
  std::vector<std::uint8_t> payload;
  bool framed = false;
  ASSERT_TRUE(
      base::io::UnwrapFrame(bytes, base::io::kTagAny, payload, framed).ok());
  ASSERT_TRUE(framed) << path << " was not framed to begin with";
  ASSERT_TRUE(base::io::WriteFileAtomic(path, payload).ok());
}

bool StartsWithFrameMagic(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (!base::io::ReadFileBytes(path, bytes).ok() || bytes.size() < 8) {
    return false;
  }
  const char magic[] = {'C', 'L', 'D', 'F', 'R', 'A', 'M', '1'};
  return std::equal(std::begin(magic), std::end(magic), bytes.begin());
}

// ---------------------------------------------------------------------------
// Columnar captures

TEST(StorageFramingTest, ColumnarRoundTripsFramed) {
  const std::string path = TempPath("framing_capture.cdns");
  const CaptureBuffer records = SampleBuffer(300);
  ASSERT_TRUE(WriteCaptureFileStatus(path, records).ok());
  EXPECT_TRUE(StartsWithFrameMagic(path));

  CaptureBuffer back;
  ASSERT_TRUE(ReadCaptureFileStatus(path, back).ok());
  EXPECT_TRUE(back == records);
  fs::remove(path);
}

TEST(StorageFramingTest, EmptyCaptureRoundTripsFramedAndLegacy) {
  // A zero-query scenario still writes its capture artifact; the framed
  // payload is just the columnar header, and the legacy passthrough must
  // accept the stripped form too.
  const std::string path = TempPath("framing_capture_empty.cdns");
  ASSERT_TRUE(WriteCaptureFileStatus(path, CaptureBuffer{}).ok());
  EXPECT_TRUE(StartsWithFrameMagic(path));

  CaptureBuffer back = SampleBuffer(3);  // must be cleared by the read
  ASSERT_TRUE(ReadCaptureFileStatus(path, back).ok());
  EXPECT_TRUE(back.empty());

  RewriteAsLegacy(path);
  CaptureBuffer legacy = SampleBuffer(3);
  ASSERT_TRUE(ReadCaptureFileStatus(path, legacy).ok());
  EXPECT_TRUE(legacy.empty());
  fs::remove(path);
}

TEST(StorageFramingTest, SingleRecordCaptureRoundTripsFramedAndLegacy) {
  const std::string path = TempPath("framing_capture_single.cdns");
  const CaptureBuffer records = SampleBuffer(1);
  ASSERT_TRUE(WriteCaptureFileStatus(path, records).ok());

  CaptureBuffer back;
  ASSERT_TRUE(ReadCaptureFileStatus(path, back).ok());
  EXPECT_TRUE(back == records);

  RewriteAsLegacy(path);
  CaptureBuffer legacy;
  ASSERT_TRUE(ReadCaptureFileStatus(path, legacy).ok());
  EXPECT_TRUE(legacy == records);
  fs::remove(path);
}

TEST(StorageFramingTest, CaptureFileBytesIdenticalAtEveryThreadCount) {
  // End-to-end determinism of the block-parallel write path: the bytes
  // that land on disk for the same records must not depend on how many
  // workers encoded the frame. 8000 records is comfortably multi-block
  // even through the columnar encoding's delta/varint shrinkage.
  const char* prev = std::getenv("CLOUDDNS_THREADS");
  const std::string saved = prev ? prev : "";
  const CaptureBuffer records = SampleBuffer(8000);
  std::vector<std::uint8_t> reference;
  for (const char* threads : {"1", "2", "4", "8"}) {
    setenv("CLOUDDNS_THREADS", threads, 1);
    const std::string path = TempPath("framing_capture_threads.cdns");
    ASSERT_TRUE(WriteCaptureFileStatus(path, records).ok());
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(base::io::ReadFileBytes(path, bytes).ok());
    if (reference.empty()) {
      ASSERT_GT(bytes.size(), base::io::kFrameBlockSize)
          << "sample too small to exercise multiple blocks";
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference)
          << "capture bytes diverge at " << threads << " threads";
    }
    CaptureBuffer back;
    ASSERT_TRUE(ReadCaptureFileStatus(path, back).ok());
    EXPECT_TRUE(back == records);
    fs::remove(path);
  }
  if (prev) {
    setenv("CLOUDDNS_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("CLOUDDNS_THREADS");
  }
}

TEST(StorageFramingTest, LegacyUnframedColumnarStillLoads) {
  const std::string path = TempPath("framing_capture_legacy.cdns");
  const CaptureBuffer records = SampleBuffer(300);
  ASSERT_TRUE(WriteCaptureFileStatus(path, records).ok());
  RewriteAsLegacy(path);
  EXPECT_FALSE(StartsWithFrameMagic(path));

  CaptureBuffer back;
  ASSERT_TRUE(ReadCaptureFileStatus(path, back).ok());
  EXPECT_TRUE(back == records);
  fs::remove(path);
}

TEST(StorageFramingTest, CorruptColumnarReportsATypedCode) {
  const std::string path = TempPath("framing_capture_corrupt.cdns");
  ASSERT_TRUE(WriteCaptureFileStatus(path, SampleBuffer(300)).ok());
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(base::io::ReadFileBytes(path, bytes).ok());
  bytes[bytes.size() / 2] ^= 0x10;
  ASSERT_TRUE(base::io::WriteFileAtomic(path, bytes).ok());

  CaptureBuffer back;
  const base::io::IoStatus status = ReadCaptureFileStatus(path, back);
  EXPECT_EQ(status.code, base::io::IoCode::kBlockCorrupt);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// pcap exports

TEST(StorageFramingTest, PcapRoundTripsBothFramedAndRaw) {
  const CaptureBuffer records = SampleBuffer(120);
  const std::string framed_path = TempPath("framing_export.pcap");
  const std::string raw_path = TempPath("framing_export_raw.pcap");
  ASSERT_TRUE(WritePcapFileStatus(framed_path, records, true).ok());
  ASSERT_TRUE(WritePcapFileStatus(raw_path, records, false).ok());
  EXPECT_TRUE(StartsWithFrameMagic(framed_path));
  // The raw shape is a classic libpcap file tcpdump opens directly.
  EXPECT_FALSE(StartsWithFrameMagic(raw_path));

  CaptureBuffer from_framed;
  CaptureBuffer from_raw;
  ASSERT_TRUE(ReadPcapFileStatus(framed_path, from_framed).ok());
  ASSERT_TRUE(ReadPcapFileStatus(raw_path, from_raw).ok());
  // pcap round trips are lossy by design; the two read paths must agree
  // on everything the format carries.
  ASSERT_EQ(from_framed.size(), records.size());
  EXPECT_TRUE(from_framed == from_raw);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(from_framed[i].time_us, records[i].time_us);
    EXPECT_EQ(from_framed[i].src, records[i].src);
    EXPECT_EQ(from_framed[i].qname, records[i].qname);
    EXPECT_EQ(from_framed[i].qtype, records[i].qtype);
  }
  fs::remove(framed_path);
  fs::remove(raw_path);
}

// ---------------------------------------------------------------------------
// Shard-index sidecars

TEST(StorageFramingTest, ShardIndexRoundTripsFramedAndLegacy) {
  // Three time-sorted shards whose merge interleaves non-trivially.
  std::vector<CaptureBuffer> shards(3);
  for (int i = 0; i < 200; ++i) shards[i % 3].push_back(SampleRecord(i));
  const ShardedCapture original = ShardedCapture::FromShards(std::move(shards));
  const std::string path = TempPath("framing_index.shards");
  ASSERT_TRUE(WriteShardIndexStatus(path, original).ok());
  EXPECT_TRUE(StartsWithFrameMagic(path));

  base::io::IoStatus status;
  ShardedCapture resharded =
      ReshardFromIndex(path, original.FlattenCopy(), &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(resharded.shard_count(), original.shard_count());
  EXPECT_EQ(resharded.MergeOrderShardIds(), original.MergeOrderShardIds());
  EXPECT_TRUE(resharded == original);

  // Pre-framing sidecars parse through the legacy passthrough.
  RewriteAsLegacy(path);
  ShardedCapture legacy = ReshardFromIndex(path, original.FlattenCopy(),
                                           &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(legacy.MergeOrderShardIds(), original.MergeOrderShardIds());
  fs::remove(path);
}

TEST(StorageFramingTest, MissingShardIndexIsBenignNotCorrupt) {
  base::io::IoStatus status;
  const ShardedCapture fallback = ReshardFromIndex(
      TempPath("framing_no_such.shards"), SampleBuffer(10), &status);
  EXPECT_EQ(status.code, base::io::IoCode::kNotFound);
  EXPECT_EQ(fallback.shard_count(), 1u);
  EXPECT_EQ(fallback.size(), 10u);
}

// ---------------------------------------------------------------------------
// Context sidecars

TEST(StorageFramingTest, ContextSidecarLoadsFramedAndLegacy) {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNz;
  config.year = 2019;
  config.client_queries = 0;  // context only; no traffic needed
  config.zone_scale = 0.001;
  const cloud::ScenarioResult original = cloud::RunScenario(config);

  const std::string path = TempPath("framing_context.ctx");
  ASSERT_TRUE(analysis::SaveScenarioContextStatus(path, original).ok());
  EXPECT_TRUE(StartsWithFrameMagic(path));

  cloud::ScenarioResult loaded;
  ASSERT_TRUE(analysis::LoadScenarioContextStatus(path, loaded).ok());
  EXPECT_EQ(loaded.zone_domain_count, original.zone_domain_count);
  EXPECT_EQ(loaded.asdb.announcements(), original.asdb.announcements());

  RewriteAsLegacy(path);
  cloud::ScenarioResult legacy;
  ASSERT_TRUE(analysis::LoadScenarioContextStatus(path, legacy).ok());
  EXPECT_EQ(legacy.zone_domain_count, original.zone_domain_count);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Cross-artifact mixups

TEST(StorageFramingTest, ContentTagsRejectRenamedArtifacts) {
  // A shard sidecar renamed over a capture path: the frame verifies, but
  // the content tag names the wrong artifact kind — rejected before the
  // columnar decoder runs.
  std::vector<CaptureBuffer> shards(2);
  for (int i = 0; i < 40; ++i) shards[i % 2].push_back(SampleRecord(i));
  const ShardedCapture capture = ShardedCapture::FromShards(std::move(shards));
  const std::string shard_path = TempPath("framing_mixup.shards");
  const std::string capture_path = TempPath("framing_mixup.cdns");
  ASSERT_TRUE(WriteShardIndexStatus(shard_path, capture).ok());
  fs::rename(shard_path, capture_path);

  CaptureBuffer out;
  EXPECT_EQ(ReadCaptureFileStatus(capture_path, out).code,
            base::io::IoCode::kBadTag);
  fs::remove(capture_path);
}

}  // namespace
}  // namespace clouddns::capture
