#include "capture/anonymize.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/random.h"

namespace clouddns::capture {
namespace {

int SharedPrefixBits(const net::IpAddress& a, const net::IpAddress& b) {
  int width = a.bit_width();
  for (int i = 0; i < width; ++i) {
    if (a.bit(i) != b.bit(i)) return i;
  }
  return width;
}

TEST(AnonymizerTest, DeterministicForSameKey) {
  Anonymizer a(42), b(42);
  auto addr = *net::IpAddress::Parse("192.0.2.77");
  EXPECT_EQ(a.Anonymize(addr), b.Anonymize(addr));
}

TEST(AnonymizerTest, DifferentKeysDiffer) {
  Anonymizer a(1), b(2);
  auto addr = *net::IpAddress::Parse("192.0.2.77");
  EXPECT_NE(a.Anonymize(addr), b.Anonymize(addr));
}

TEST(AnonymizerTest, ActuallyChangesAddresses) {
  Anonymizer anonymizer(7);
  int changed = 0;
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    net::IpAddress addr{net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))};
    changed += !(anonymizer.Anonymize(addr) == addr);
  }
  EXPECT_GT(changed, 95);
}

// The defining property: anonymized addresses share exactly as many prefix
// bits as the originals did.
TEST(AnonymizerTest, PrefixPreservationV4) {
  Anonymizer anonymizer(20201027);
  sim::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    net::IpAddress a{net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))};
    net::IpAddress b{net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))};
    EXPECT_EQ(SharedPrefixBits(anonymizer.Anonymize(a),
                               anonymizer.Anonymize(b)),
              SharedPrefixBits(a, b));
  }
}

TEST(AnonymizerTest, PrefixPreservationV6) {
  Anonymizer anonymizer(99);
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    net::Ipv6Address::Bytes ba{}, bb{};
    for (auto& byte : ba) byte = static_cast<std::uint8_t>(rng.Next());
    bb = ba;
    // Mutate b starting at a random bit so the shared prefix is known.
    int flip = static_cast<int>(rng.NextBelow(128));
    bb[static_cast<std::size_t>(flip / 8)] ^=
        static_cast<std::uint8_t>(0x80u >> (flip % 8));
    net::IpAddress a{net::Ipv6Address(ba)}, b{net::Ipv6Address(bb)};
    EXPECT_EQ(SharedPrefixBits(anonymizer.Anonymize(a),
                               anonymizer.Anonymize(b)),
              SharedPrefixBits(a, b));
  }
}

TEST(AnonymizerTest, InjectiveOnSample) {
  Anonymizer anonymizer(5);
  std::unordered_set<std::string> outputs;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    outputs.insert(
        anonymizer.Anonymize(net::IpAddress(net::Ipv4Address(i))).ToString());
  }
  EXPECT_EQ(outputs.size(), 4096u);  // prefix-preserving => bijective
}

TEST(AnonymizerTest, FamiliesMapIndependently) {
  Anonymizer anonymizer(5);
  auto v4 = anonymizer.Anonymize(*net::IpAddress::Parse("10.0.0.1"));
  auto v6 = anonymizer.Anonymize(*net::IpAddress::Parse("::a00:1"));
  EXPECT_TRUE(v4.is_v4());
  EXPECT_TRUE(v6.is_v6());
}

TEST(AnonymizerTest, CaptureRewritesOnlySources) {
  CaptureRecord record;
  record.src = *net::IpAddress::Parse("198.51.100.7");
  record.qname = *dns::Name::Parse("www.dom1.nl");
  record.qtype = dns::RrType::kAaaa;
  record.response_size = 333;

  Anonymizer anonymizer(11);
  auto anonymized = anonymizer.AnonymizeCapture({record});
  ASSERT_EQ(anonymized.size(), 1u);
  EXPECT_NE(anonymized[0].src, record.src);
  EXPECT_EQ(anonymized[0].qname, record.qname);
  EXPECT_EQ(anonymized[0].qtype, record.qtype);
  EXPECT_EQ(anonymized[0].response_size, record.response_size);
}

// Analyses keyed on shared prefixes survive anonymization: sources from
// the same /24 stay together, sources from different /24s stay apart.
TEST(AnonymizerTest, GroupingAnalysesSurvive) {
  Anonymizer anonymizer(13);
  auto a1 = anonymizer.Anonymize(*net::IpAddress::Parse("203.0.113.5"));
  auto a2 = anonymizer.Anonymize(*net::IpAddress::Parse("203.0.113.99"));
  auto b1 = anonymizer.Anonymize(*net::IpAddress::Parse("198.51.100.5"));
  EXPECT_GE(SharedPrefixBits(a1, a2), 24);
  EXPECT_LT(SharedPrefixBits(a1, b1), 24);
}

}  // namespace
}  // namespace clouddns::capture
