// Error-path coverage: malformed queries, unsupported opcodes, lame
// servers, and the resolver's handling of upstream failures.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "resolver/resolver.h"

namespace clouddns::server {
namespace {

using testutil::MiniInternet;
using testutil::N;

TEST(ServerEdgeTest, MultiQuestionQueriesGetFormErr) {
  MiniInternet net;
  dns::Message query = dns::Message::MakeQuery(1, N("nl"), dns::RrType::kSoa);
  query.questions.push_back(
      dns::Question{N("example.nl"), dns::RrType::kA, dns::RrClass::kIn});
  auto response = net.nl_server->Respond(query);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNotImp);
}

TEST(ServerEdgeTest, EmptyQuestionGetsFormErr) {
  MiniInternet net;
  dns::Message query;
  query.header.id = 7;
  auto response = net.nl_server->Respond(query);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kFormErr);
}

TEST(ServerEdgeTest, NonQueryOpcodeGetsNotImp) {
  MiniInternet net;
  dns::Message query = dns::Message::MakeQuery(1, N("nl"), dns::RrType::kSoa);
  query.header.opcode = dns::Opcode::kNotify;
  auto response = net.nl_server->Respond(query);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNotImp);
}

TEST(ServerEdgeTest, ResponsesArriveAtServerAreDropped) {
  MiniInternet net;
  dns::Message response = dns::Message::MakeQuery(1, N("nl"), dns::RrType::kA);
  response.header.qr = true;  // a reflected response, not a query
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.0.0.1"), 1234};
  EXPECT_TRUE(net.nl_server->HandlePacket(ctx, response.Encode()).empty());
  EXPECT_TRUE(net.nl_server->captured().empty());
}

TEST(ServerEdgeTest, CaptureRecordsRefusedQueries) {
  // Out-of-bailiwick queries are REFUSED *and* still captured — the paper
  // counts them as junk (non-NOERROR).
  MiniInternet net;
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.0.0.1"), 1234};
  dns::Message query =
      dns::Message::MakeQuery(1, N("example.com"), dns::RrType::kA);
  auto wire = net.nl_server->HandlePacket(ctx, query.Encode());
  ASSERT_FALSE(wire.empty());
  ASSERT_EQ(net.nl_server->captured().size(), 1u);
  EXPECT_EQ(net.nl_server->captured()[0].rcode, dns::Rcode::kRefused);
  EXPECT_TRUE(dns::IsJunkRcode(net.nl_server->captured()[0].rcode));
}

TEST(ResolverEdgeTest, LameServerYieldsServFail) {
  // A resolver whose "root hint" points at the .nl server (which refuses
  // out-of-zone queries) must fail cleanly, not loop.
  MiniInternet net;
  resolver::ResolverConfig config;
  resolver::EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.site = net.resolver_site;
  config.hosts = {host};
  resolver::RecursiveResolver resolver(
      *net.network, config, {*net::IpAddress::Parse(MiniInternet::kNlV4)},
      {});
  auto result = resolver.Resolve(N("www.example.com"), dns::RrType::kA, 1000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  EXPECT_LE(result.upstream_queries, 2);
}

TEST(ResolverEdgeTest, UnreachableRootYieldsServFail) {
  MiniInternet net;
  resolver::ResolverConfig config;
  resolver::EgressHost host;
  host.v4 = *net::IpAddress::Parse("10.1.0.1");
  host.site = net.resolver_site;
  config.hosts = {host};
  // Hints point at an address no one serves and no default route covers:
  // build a private network without a default route.
  sim::Network isolated(net.latency);
  resolver::RecursiveResolver resolver(
      isolated, config, {*net::IpAddress::Parse("192.0.2.99")}, {});
  auto result = resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
}

TEST(ResolverEdgeTest, HostPoolWithoutUsableFamilyFails) {
  MiniInternet net;
  resolver::ResolverConfig config;
  resolver::EgressHost host;
  host.v6 = *net::IpAddress::Parse("2001:db8:10::1");  // v6-only host
  host.site = net.resolver_site;
  config.hosts = {host};
  // Root hints offered over v4 only: the v6-only host cannot reach them.
  resolver::RecursiveResolver resolver(*net.network, config,
                                       net.RootHintsV4(), {});
  auto result = resolver.Resolve(N("www.dom1.nl"), dns::RrType::kA, 1000);
  EXPECT_EQ(result.rcode, dns::Rcode::kServFail);
  EXPECT_EQ(result.upstream_queries, 0);
}

}  // namespace
}  // namespace clouddns::server
