#include "server/leaf_auth.h"

#include <gtest/gtest.h>

namespace clouddns::server {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

dns::Message Ask(LeafAuthService& leaf, const char* qname, dns::RrType qtype) {
  return leaf.Respond(dns::Message::MakeQuery(1, N(qname), qtype));
}

TEST(LeafAuthTest, AnswersADeterministically) {
  LeafAuthService leaf{LeafAuthConfig{}};
  auto first = Ask(leaf, "www.dom5.nl", dns::RrType::kA);
  auto second = Ask(leaf, "www.dom5.nl", dns::RrType::kA);
  ASSERT_EQ(first.answers.size(), 1u);
  EXPECT_EQ(first.answers, second.answers);
  EXPECT_TRUE(first.header.aa);

  auto other = Ask(leaf, "www.dom6.nl", dns::RrType::kA);
  EXPECT_NE(first.answers, other.answers);
}

TEST(LeafAuthTest, AaaaFollowsConfiguredFraction) {
  LeafAuthConfig all_v6;
  all_v6.v6_fraction = 1.0;
  LeafAuthService leaf_all(all_v6);
  EXPECT_EQ(Ask(leaf_all, "a.dom1.nl", dns::RrType::kAaaa).answers.size(), 1u);

  LeafAuthConfig no_v6;
  no_v6.v6_fraction = 0.0;
  LeafAuthService leaf_none(no_v6);
  auto response = Ask(leaf_none, "a.dom1.nl", dns::RrType::kAaaa);
  EXPECT_TRUE(response.answers.empty());
  ASSERT_FALSE(response.authorities.empty());  // NODATA with SOA
  EXPECT_EQ(response.authorities[0].type, dns::RrType::kSoa);
}

TEST(LeafAuthTest, NsQueriesBelowDelegationAreNoData) {
  LeafAuthService leaf{LeafAuthConfig{}};
  auto response = Ask(leaf, "www.dom5.nl", dns::RrType::kNs);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_FALSE(response.authorities.empty());
}

TEST(LeafAuthTest, DnskeyAnswersAreRsaSized) {
  LeafAuthService leaf{LeafAuthConfig{}};
  auto response = Ask(leaf, "dom5.nl", dns::RrType::kDnskey);
  ASSERT_EQ(response.answers.size(), 2u);
  auto wire = response.Encode();
  EXPECT_GT(wire.size(), 512u);  // forces TCP for 512-buffer validators
}

TEST(LeafAuthTest, HandlePacketTruncatesAtEdnsLimit) {
  LeafAuthService leaf{LeafAuthConfig{}};
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.0.0.1"), 33333};
  ctx.transport = dns::Transport::kUdp;
  dns::Message query = dns::Message::MakeQuery(
      3, N("dom5.nl"), dns::RrType::kDnskey, dns::EdnsInfo{512, true, 0});
  auto wire = leaf.HandlePacket(ctx, query.Encode());
  auto response = dns::Message::Decode(wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.tc);

  ctx.transport = dns::Transport::kTcp;
  auto tcp = dns::Message::Decode(leaf.HandlePacket(ctx, query.Encode()));
  ASSERT_TRUE(tcp.has_value());
  EXPECT_FALSE(tcp->header.tc);
  EXPECT_EQ(tcp->answers.size(), 2u);
}

TEST(LeafAuthTest, SyntheticAddressesAreStableAndInRange) {
  auto v4 = LeafAuthService::SyntheticV4(N("host.dom1.nl"));
  EXPECT_EQ(v4, LeafAuthService::SyntheticV4(N("HOST.dom1.NL")));
  EXPECT_EQ(v4.octet(0), 100);

  auto v6 = LeafAuthService::SyntheticV6(N("host.dom1.nl"));
  EXPECT_EQ(v6.group(0), 0x2001);
  EXPECT_EQ(v6.group(1), 0x0db8);
}

TEST(LeafAuthTest, CountsHandledPackets) {
  LeafAuthService leaf{LeafAuthConfig{}};
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.0.0.1"), 33333};
  dns::Message query = dns::Message::MakeQuery(3, N("x.nl"), dns::RrType::kA);
  leaf.HandlePacket(ctx, query.Encode());
  leaf.HandlePacket(ctx, query.Encode());
  EXPECT_EQ(leaf.handled(), 2u);
}

}  // namespace
}  // namespace clouddns::server
