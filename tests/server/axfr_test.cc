// Zone-transfer (AXFR) tests: server-side gating and client-side
// reassembly through the simulated network.
#include "server/axfr.h"

#include <gtest/gtest.h>

#include "server/auth_server.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

namespace clouddns::server {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

struct AxfrFixture {
  AxfrFixture() {
    site = latency.AddSite({"AMS", 0, 0, 1.0, 0.0});
    client_site = latency.AddSite({"FRA", 8, 0, 1.0, 0.0});
    network = std::make_unique<sim::Network>(latency);

    zone::ZoneBuildConfig config;
    config.apex = N("nl");
    config.nameservers = {
        {N("ns1.dns.nl"), {*net::IpAddress::Parse("194.0.28.1")}}};
    auto nl = zone::MakeZoneSkeleton(config);
    zone::PopulateDelegations(nl, 40, "dom", 0.5,
                              net::Ipv4Address(100, 70, 0, 0));
    master_zone = std::make_shared<const zone::Zone>(std::move(nl));

    AuthServerConfig server_config;
    server_config.axfr_allow = {*net::Prefix::Parse("10.9.0.0/16")};
    primary = std::make_unique<AuthServer>(server_config);
    primary->Serve(master_zone);
    network->RegisterServer(*net::IpAddress::Parse("194.0.28.1"), site,
                            *primary);
  }

  AxfrResult Fetch(const char* source, const char* apex = "nl") {
    return AxfrFetch(*network, {*net::IpAddress::Parse(source), 40000},
                     client_site, *net::IpAddress::Parse("194.0.28.1"),
                     N(apex));
  }

  sim::LatencyModel latency;
  sim::SiteId site, client_site;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<const zone::Zone> master_zone;
  std::unique_ptr<AuthServer> primary;
};

TEST(AxfrTest, TransfersFullZoneToAllowedSecondary) {
  AxfrFixture f;
  auto result = f.Fetch("10.9.1.1");
  ASSERT_TRUE(result.zone.has_value()) << result.error;
  EXPECT_EQ(result.zone->apex(), N("nl"));
  EXPECT_EQ(result.zone->record_count(), f.master_zone->record_count());
  EXPECT_EQ(result.zone->name_count(), f.master_zone->name_count());

  // The transferred replica answers identically to the primary.
  for (int i : {0, 13, 39}) {
    dns::Name child = N(("dom" + std::to_string(i) + ".nl").c_str());
    auto a = f.master_zone->Lookup(child.Child("www"), dns::RrType::kA);
    auto b = result.zone->Lookup(child.Child("www"), dns::RrType::kA);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.ds, b.ds);
  }
  auto nx = result.zone->Lookup(N("nope.nl"), dns::RrType::kA);
  EXPECT_EQ(nx.status, zone::LookupStatus::kNxDomain);
}

TEST(AxfrTest, RefusesDisallowedSources) {
  AxfrFixture f;
  auto result = f.Fetch("203.0.113.5");
  EXPECT_FALSE(result.zone.has_value());
  EXPECT_NE(result.error.find("REFUSED"), std::string::npos);
}

TEST(AxfrTest, RefusesZonesItDoesNotServe) {
  AxfrFixture f;
  auto result = f.Fetch("10.9.1.1", "nz");
  EXPECT_FALSE(result.zone.has_value());
}

TEST(AxfrTest, NonApexNameRefused) {
  AxfrFixture f;
  auto result = f.Fetch("10.9.1.1", "dom3.nl");
  EXPECT_FALSE(result.zone.has_value());
}

TEST(AxfrTest, UdpAxfrIsTruncatedToForceTcp) {
  AxfrFixture f;
  dns::Message query = dns::Message::MakeQuery(1, N("nl"), dns::RrType::kAxfr);
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.9.1.1"), 40000};
  ctx.transport = dns::Transport::kUdp;
  auto wire = f.primary->HandlePacket(ctx, query.Encode());
  auto response = dns::Message::Decode(wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.tc);
  EXPECT_TRUE(response->answers.empty());
}

TEST(AxfrTest, TransfersAreNotCaptured) {
  // The study's capture stream is query traffic; bulk transfers between
  // the operator's own servers must not pollute it.
  AxfrFixture f;
  auto result = f.Fetch("10.9.1.1");
  ASSERT_TRUE(result.zone.has_value());
  EXPECT_TRUE(f.primary->captured().empty());
}

TEST(AxfrTest, SignedZoneTransfersSignatures) {
  AxfrFixture f;
  zone::ZoneBuildConfig config;
  config.apex = N("nz");
  config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("197.0.29.1")}}};
  auto nz = zone::MakeZoneSkeleton(config);
  zone::SignZone(nz);
  auto signed_zone = std::make_shared<const zone::Zone>(std::move(nz));

  AuthServerConfig server_config;
  server_config.axfr_allow = {*net::Prefix::Parse("10.9.0.0/16")};
  AuthServer primary(server_config);
  primary.Serve(signed_zone);
  f.network->RegisterServer(*net::IpAddress::Parse("197.0.29.1"), f.site,
                            primary);

  auto result = AxfrFetch(*f.network,
                          {*net::IpAddress::Parse("10.9.1.1"), 40000},
                          f.client_site, *net::IpAddress::Parse("197.0.29.1"),
                          N("nz"));
  ASSERT_TRUE(result.zone.has_value()) << result.error;
  EXPECT_TRUE(result.zone->IsSigned());
  EXPECT_NE(result.zone->Find(N("nz"), dns::RrType::kRrsig), nullptr);
}

}  // namespace
}  // namespace clouddns::server
