#include "server/auth_server.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace clouddns::server {
namespace {

using testutil::MiniInternet;
using testutil::N;

dns::Message Ask(AuthServer& server, const char* qname, dns::RrType qtype,
                 std::optional<dns::EdnsInfo> edns = std::nullopt) {
  dns::Message query = dns::Message::MakeQuery(42, N(qname), qtype, edns);
  return server.Respond(query);
}

TEST(AuthServerTest, AuthoritativeAnswerAtApex) {
  MiniInternet net;
  auto response = Ask(*net.nl_server, "nl", dns::RrType::kSoa);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, dns::RrType::kSoa);
}

TEST(AuthServerTest, ReferralIsNotAuthoritative) {
  MiniInternet net;
  auto response = Ask(*net.nl_server, "www.dom3.nl", dns::RrType::kA);
  EXPECT_FALSE(response.header.aa);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
  ASSERT_GE(response.authorities.size(), 2u);
  EXPECT_EQ(response.authorities[0].type, dns::RrType::kNs);
  EXPECT_FALSE(response.additionals.empty());  // glue
}

TEST(AuthServerTest, ReferralIncludesDsOnlyWithDoBit) {
  MiniInternet net;
  // dom1 is signed (PopulateDelegations signs every other domain; acc
  // crosses 1.0 at i=1,3,5...).
  auto plain = Ask(*net.nl_server, "www.dom1.nl", dns::RrType::kA,
                   dns::EdnsInfo{4096, false, 0});
  bool has_ds_plain = false;
  for (const auto& rr : plain.authorities) {
    has_ds_plain |= rr.type == dns::RrType::kDs;
  }
  EXPECT_FALSE(has_ds_plain);

  auto dnssec = Ask(*net.nl_server, "www.dom1.nl", dns::RrType::kA,
                    dns::EdnsInfo{4096, true, 0});
  bool has_ds = false, has_rrsig = false;
  for (const auto& rr : dnssec.authorities) {
    has_ds |= rr.type == dns::RrType::kDs;
    has_rrsig |= rr.type == dns::RrType::kRrsig;
  }
  EXPECT_TRUE(has_ds);
  EXPECT_TRUE(has_rrsig);
}

TEST(AuthServerTest, NxDomainCarriesSoa) {
  MiniInternet net;
  auto response = Ask(*net.nl_server, "no-such-domain-xyz.nl", dns::RrType::kA);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNxDomain);
  EXPECT_TRUE(response.header.aa);
  ASSERT_FALSE(response.authorities.empty());
  EXPECT_EQ(response.authorities[0].type, dns::RrType::kSoa);
}

TEST(AuthServerTest, SignedNxDomainCarriesDenialProof) {
  MiniInternet net;
  auto response = Ask(*net.nl_server, "no-such-domain-xyz.nl", dns::RrType::kA,
                      dns::EdnsInfo{4096, true, 0});
  bool has_nsec = false, has_rrsig = false;
  for (const auto& rr : response.authorities) {
    has_nsec |= rr.type == dns::RrType::kNsec;
    has_rrsig |= rr.type == dns::RrType::kRrsig;
  }
  EXPECT_TRUE(has_nsec);
  EXPECT_TRUE(has_rrsig);
}

TEST(AuthServerTest, RefusesOutOfBailiwickQueries) {
  MiniInternet net;
  auto response = Ask(*net.nl_server, "example.com", dns::RrType::kA);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kRefused);
}

TEST(AuthServerTest, RootServerAnswersAndDelegates) {
  MiniInternet net;
  auto delegation = Ask(*net.root_server, "www.dom0.nl", dns::RrType::kA);
  EXPECT_EQ(delegation.header.rcode, dns::Rcode::kNoError);
  ASSERT_FALSE(delegation.authorities.empty());
  EXPECT_EQ(delegation.authorities[0].name, N("nl"));

  auto junk = Ask(*net.root_server, "local", dns::RrType::kA);
  EXPECT_EQ(junk.header.rcode, dns::Rcode::kNxDomain);
}

TEST(AuthServerTest, MultiZoneServerPicksDeepestApex) {
  // A .nz-style server authoritative for both nz and co.nz.
  zone::ZoneBuildConfig nz_config;
  nz_config.apex = N("nz");
  nz_config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("192.0.2.60")}}};
  auto nz = zone::MakeZoneSkeleton(nz_config);

  zone::ZoneBuildConfig co_config;
  co_config.apex = N("co.nz");
  co_config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("192.0.2.60")}}};
  auto co = zone::MakeZoneSkeleton(co_config);
  zone::AddDelegation(co, N("shop.co.nz"),
                      {{N("ns1.shop.co.nz"),
                        {*net::IpAddress::Parse("100.70.1.1")}}},
                      false);

  AuthServer server(AuthServerConfig{});
  server.Serve(std::make_shared<const zone::Zone>(std::move(nz)));
  server.Serve(std::make_shared<const zone::Zone>(std::move(co)));

  // co.nz apex should be answered from the co.nz zone, not as NXDOMAIN
  // within nz.
  auto response = Ask(server, "co.nz", dns::RrType::kSoa);
  EXPECT_EQ(response.header.rcode, dns::Rcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);

  auto referral = Ask(server, "www.shop.co.nz", dns::RrType::kA);
  EXPECT_TRUE(referral.answers.empty());
  ASSERT_FALSE(referral.authorities.empty());
  EXPECT_EQ(referral.authorities[0].name, N("shop.co.nz"));
}

TEST(AuthServerTest, HandlePacketCapturesEveryQuery) {
  MiniInternet net;
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("8.8.8.8"), 50000};
  ctx.transport = dns::Transport::kUdp;
  ctx.time_us = 12345;
  ctx.server_site = net.auth_site;

  dns::Message query = dns::Message::MakeQuery(
      7, N("www.dom2.nl"), dns::RrType::kA, dns::EdnsInfo{1232, true, 0});
  auto wire = net.nl_server->HandlePacket(ctx, query.Encode());
  EXPECT_FALSE(wire.empty());

  ASSERT_EQ(net.nl_server->captured().size(), 1u);
  const auto& record = net.nl_server->captured()[0];
  EXPECT_EQ(record.src.ToString(), "8.8.8.8");
  EXPECT_EQ(record.qname, N("www.dom2.nl"));
  EXPECT_EQ(record.qtype, dns::RrType::kA);
  EXPECT_EQ(record.edns_udp_size, 1232);
  EXPECT_TRUE(record.do_bit);
  EXPECT_EQ(record.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(record.transport, dns::Transport::kUdp);
  EXPECT_EQ(record.time_us, 12345u);
}

TEST(AuthServerTest, HandlePacketDropsGarbageWithoutCapture) {
  MiniInternet net;
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("8.8.8.8"), 50000};
  EXPECT_TRUE(net.nl_server->HandlePacket(ctx, {1, 2, 3}).empty());
  EXPECT_TRUE(net.nl_server->captured().empty());
}

TEST(AuthServerTest, TruncatesOversizedUdpAndRecordsTc) {
  MiniInternet net;
  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("203.0.113.5"), 40000};
  ctx.transport = dns::Transport::kUdp;

  // Signed NXDOMAIN with DO at EDNS 512 exceeds the limit (SOA + RRSIG +
  // NSEC + RRSIG with RSA-sized signatures).
  dns::Message query = dns::Message::MakeQuery(
      9, N("nonexistent-junk.nl"), dns::RrType::kA, dns::EdnsInfo{512, true, 0});
  auto wire = net.nl_server->HandlePacket(ctx, query.Encode());
  auto response = dns::Message::Decode(wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.tc);
  EXPECT_LE(wire.size(), 512u);
  EXPECT_TRUE(net.nl_server->captured().back().tc);

  // The same query over TCP returns the full answer.
  ctx.transport = dns::Transport::kTcp;
  ctx.handshake_rtt_us = 30000;
  auto tcp_wire = net.nl_server->HandlePacket(ctx, query.Encode());
  auto tcp_response = dns::Message::Decode(tcp_wire);
  ASSERT_TRUE(tcp_response.has_value());
  EXPECT_FALSE(tcp_response->header.tc);
  EXPECT_GT(tcp_wire.size(), 512u);
  EXPECT_EQ(net.nl_server->captured().back().tcp_handshake_rtt_us, 30000u);
}

TEST(AuthServerTest, CaptureCanBeDisabled) {
  AuthServerConfig config;
  config.capture_enabled = false;
  AuthServer server(config);
  zone::ZoneBuildConfig zone_config;
  zone_config.apex = N("nl");
  zone_config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("192.0.2.53")}}};
  server.Serve(std::make_shared<const zone::Zone>(
      zone::MakeZoneSkeleton(zone_config)));

  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("8.8.8.8"), 50000};
  dns::Message query = dns::Message::MakeQuery(7, N("nl"), dns::RrType::kSoa);
  EXPECT_FALSE(server.HandlePacket(ctx, query.Encode()).empty());
  EXPECT_TRUE(server.captured().empty());
}

TEST(RrlTest, DisabledAllowsEverything) {
  ResponseRateLimiter rrl(RrlConfig{});
  auto src = *net::IpAddress::Parse("10.0.0.1");
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(rrl.Allow(src, 0));
}

TEST(RrlTest, BurstThenThrottle) {
  RrlConfig config;
  config.enabled = true;
  config.responses_per_second = 10;
  config.burst = 5;
  ResponseRateLimiter rrl(config);
  auto src = *net::IpAddress::Parse("10.0.0.1");

  sim::TimeUs t = 1'000'000;
  int allowed = 0;
  for (int i = 0; i < 20; ++i) allowed += rrl.Allow(src, t);
  EXPECT_EQ(allowed, 5);  // burst only
  EXPECT_EQ(rrl.slip_count(), 15u);

  // After one second, ~10 more tokens have refilled.
  t += sim::kMicrosPerSecond;
  allowed = 0;
  for (int i = 0; i < 20; ++i) allowed += rrl.Allow(src, t);
  EXPECT_EQ(allowed, 5);  // refill is capped at burst
}

TEST(RrlTest, PerSourceIsolation) {
  RrlConfig config;
  config.enabled = true;
  config.responses_per_second = 1;
  config.burst = 2;
  ResponseRateLimiter rrl(config);
  auto noisy = *net::IpAddress::Parse("10.0.0.1");
  auto quiet = *net::IpAddress::Parse("10.0.0.2");

  sim::TimeUs t = 1'000'000;
  for (int i = 0; i < 10; ++i) (void)rrl.Allow(noisy, t);
  EXPECT_TRUE(rrl.Allow(quiet, t));  // unaffected by the noisy source
}

TEST(RrlTest, SlipForcesTcpRetryPath) {
  MiniInternet net;
  AuthServerConfig config;
  config.rrl.enabled = true;
  config.rrl.responses_per_second = 0.0;
  config.rrl.burst = 1;
  AuthServer server(config);
  server.Serve(net.nl_zone);

  sim::PacketContext ctx;
  ctx.src = {*net::IpAddress::Parse("10.9.9.9"), 40000};
  ctx.transport = dns::Transport::kUdp;
  ctx.time_us = 1'000'000;
  dns::Message query = dns::Message::MakeQuery(7, N("nl"), dns::RrType::kSoa);

  // First query passes, second slips with TC=1.
  auto first = dns::Message::Decode(server.HandlePacket(ctx, query.Encode()));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->header.tc);
  auto second = dns::Message::Decode(server.HandlePacket(ctx, query.Encode()));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->header.tc);
  EXPECT_TRUE(second->answers.empty());

  // TCP is exempt from RRL.
  ctx.transport = dns::Transport::kTcp;
  auto tcp = dns::Message::Decode(server.HandlePacket(ctx, query.Encode()));
  ASSERT_TRUE(tcp.has_value());
  EXPECT_FALSE(tcp->header.tc);
  EXPECT_FALSE(tcp->answers.empty());
}

}  // namespace
}  // namespace clouddns::server
