// Tests for the range-denial machinery: Zone::DenialNeighbors and the
// resolver-side NsecRangeCache (RFC 8198 aggressive use).
#include <gtest/gtest.h>

#include "resolver/cache.h"
#include "zone/zone.h"
#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

Zone MakeRootLike() {
  ZoneBuildConfig config;
  config.apex = dns::Name{};
  config.nameservers = {
      {N("a.root-servers.example"), {*net::IpAddress::Parse("198.41.0.4")}}};
  Zone zone = MakeZoneSkeleton(config);
  for (const char* tld : {"aaa", "mmm", "zzz"}) {
    AddDelegation(zone, N(tld),
                  {{N((std::string("ns1.nic.") + tld).c_str()),
                    {*net::IpAddress::Parse("100.80.0.1")}}},
                  false);
  }
  return zone;
}

TEST(DenialNeighborsTest, BracketsNonexistentName) {
  Zone zone = MakeRootLike();
  // Canonical order around "ccc": ... aaa < nic.aaa < ns1.nic.aaa < ccc <
  // example (the root-server glue's TLD) < ... — NSEC neighbours are the
  // closest *existing* names, glue and empty non-terminals included.
  auto range = zone.DenialNeighbors(N("ccc"));
  EXPECT_EQ(range.prev, N("ns1.nic.aaa"));
  EXPECT_EQ(range.next, N("example"));
  // The range proves exactly the gap: ccc is inside, aaa is not.
  EXPECT_LT(range.prev.Compare(N("ccc")), 0);
  EXPECT_GT(range.next.Compare(N("ccc")), 0);
}

TEST(DenialNeighborsTest, WrapsPastLastName) {
  Zone zone = MakeRootLike();
  auto range = zone.DenialNeighbors(N("zzzz"));
  // Past the canonically greatest name the range wraps to the apex.
  EXPECT_EQ(range.next, dns::Name{});
}

TEST(DenialNeighborsTest, UpdatesAfterAdd) {
  Zone zone = MakeRootLike();
  auto before = zone.DenialNeighbors(N("ccc"));
  EXPECT_EQ(before.next, N("example"));
  AddDelegation(zone, N("ddd"),
                {{N("ns1.nic.ddd"), {*net::IpAddress::Parse("100.80.0.9")}}},
                false);
  auto after = zone.DenialNeighbors(N("ccc"));
  EXPECT_EQ(after.next, N("ddd"));  // sorted cache invalidated by Add
}

TEST(NsecRangeCacheTest, CoversStrictlyInsideRange) {
  resolver::NsecRangeCache cache;
  cache.Put(dns::Name{}, {N("aaa"), N("mmm"), 1000});
  EXPECT_TRUE(cache.Covers(dns::Name{}, N("ccc"), 1));
  EXPECT_TRUE(cache.Covers(dns::Name{}, N("lzz"), 1));
  // Endpoints exist and are never covered.
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("aaa"), 1));
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("mmm"), 1));
  // Outside the range.
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("zzz"), 1));
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(NsecRangeCacheTest, WrappingRangeCoversTail) {
  resolver::NsecRangeCache cache;
  cache.Put(dns::Name{}, {N("zzz"), dns::Name{}, 1000});  // next == apex
  EXPECT_TRUE(cache.Covers(dns::Name{}, N("zzzz"), 1));
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("yyy"), 1));
}

TEST(NsecRangeCacheTest, ExpiryEvicts) {
  resolver::NsecRangeCache cache;
  cache.Put(dns::Name{}, {N("aaa"), N("mmm"), 1000});
  EXPECT_TRUE(cache.Covers(dns::Name{}, N("ccc"), 999));
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("ccc"), 1000));
  EXPECT_EQ(cache.size(), 0u);  // erased lazily on the expired probe
}

TEST(NsecRangeCacheTest, ZonesAreIndependent) {
  resolver::NsecRangeCache cache;
  cache.Put(N("nl"), {N("dom1.nl"), N("dom3.nl"), 1000});
  EXPECT_TRUE(cache.Covers(N("nl"), N("dom2.nl"), 1));
  EXPECT_FALSE(cache.Covers(N("nz"), N("dom2.nl"), 1));
  EXPECT_FALSE(cache.Covers(dns::Name{}, N("dom2.nl"), 1));
}

TEST(NsecRangeCacheTest, SubdomainsOfCoveredNameAreCovered) {
  // The range (dom1.nl, dom3.nl) proves dom2.nl and everything under it.
  resolver::NsecRangeCache cache;
  cache.Put(N("nl"), {N("dom1.nl"), N("dom3.nl"), 1000});
  EXPECT_TRUE(cache.Covers(N("nl"), N("www.dom2.nl"), 1));
  EXPECT_FALSE(cache.Covers(N("nl"), N("www.dom3.nl"), 1));
}

TEST(NsecRangeCacheTest, PicksCorrectRangeAmongMany) {
  resolver::NsecRangeCache cache;
  cache.Put(N("nl"), {N("dom1.nl"), N("dom3.nl"), 1000});
  cache.Put(N("nl"), {N("dom5.nl"), N("dom7.nl"), 1000});
  cache.Put(N("nl"), {N("dom9.nl"), N("nl"), 1000});  // wrap
  EXPECT_TRUE(cache.Covers(N("nl"), N("dom2.nl"), 1));
  EXPECT_FALSE(cache.Covers(N("nl"), N("dom4.nl"), 1));
  EXPECT_TRUE(cache.Covers(N("nl"), N("dom6.nl"), 1));
  EXPECT_FALSE(cache.Covers(N("nl"), N("dom8.nl"), 1));
  EXPECT_TRUE(cache.Covers(N("nl"), N("domx.nl"), 1));
  EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
}  // namespace clouddns::zone
