#include "zone/master_file.h"

#include <gtest/gtest.h>

#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

constexpr const char* kSimpleZone = R"($ORIGIN example.nl.
$TTL 3600
@  IN SOA ns1 hostmaster 2020040500 7200 3600 1209600 600
   IN NS  ns1
   IN NS  ns2.other-dns.example.
ns1        IN A    192.0.2.53
ns1        IN AAAA 2001:db8::53
www   300  IN A    192.0.2.80
mail       IN MX   10 mail
mail       IN A    192.0.2.25
txt        IN TXT  "v=spf1 -all" "second"
_sip._tcp  IN SRV  10 20 5060 sip
)";

TEST(MasterFileTest, ParsesSimpleZone) {
  auto parsed = ParseMasterFile(kSimpleZone, dns::Name{});
  for (const auto& error : parsed.errors) {
    ADD_FAILURE() << "line " << error.line << ": " << error.message;
  }
  ASSERT_TRUE(parsed.zone.has_value());
  const Zone& zone = *parsed.zone;
  EXPECT_EQ(zone.apex(), N("example.nl"));

  auto soa = zone.Find(N("example.nl"), dns::RrType::kSoa);
  ASSERT_NE(soa, nullptr);
  const auto& soa_rdata = std::get<dns::SoaRdata>(soa->front().rdata);
  EXPECT_EQ(soa_rdata.mname, N("ns1.example.nl"));
  EXPECT_EQ(soa_rdata.serial, 2020040500u);
  EXPECT_EQ(soa_rdata.minimum, 600u);

  auto ns = zone.Find(N("example.nl"), dns::RrType::kNs);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->size(), 2u);
  // Absolute names stay absolute.
  EXPECT_EQ(std::get<dns::NsRdata>(ns->at(1).rdata).nameserver,
            N("ns2.other-dns.example"));

  auto www = zone.Find(N("www.example.nl"), dns::RrType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->front().ttl, 300u);  // explicit TTL beats $TTL
  EXPECT_EQ(std::get<dns::ARdata>(www->front().rdata).address.ToString(),
            "192.0.2.80");

  auto aaaa = zone.Find(N("ns1.example.nl"), dns::RrType::kAaaa);
  ASSERT_NE(aaaa, nullptr);
  EXPECT_EQ(aaaa->front().ttl, 3600u);  // inherited $TTL

  auto txt = zone.Find(N("txt.example.nl"), dns::RrType::kTxt);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt->front().rdata).strings,
            (std::vector<std::string>{"v=spf1 -all", "second"}));

  auto srv = zone.Find(N("_sip._tcp.example.nl"), dns::RrType::kSrv);
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(std::get<dns::SrvRdata>(srv->front().rdata).port, 5060);
}

TEST(MasterFileTest, MultiLineSoaWithParenthesesAndComments) {
  const char* text = R"(
$ORIGIN nz.
@ IN SOA ns1.dns.nz. hostmaster.dns.nz. ( ; comment here
      2020041100 ; serial
      2h         ; refresh, with unit suffix
      30m        ; retry
      2w         ; expire
      10m )      ; minimum
@ IN NS ns1.dns.nz.
)";
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_TRUE(parsed.errors.empty()) << parsed.errors.front().message;
  ASSERT_TRUE(parsed.zone.has_value());
  const auto* soa = parsed.zone->Find(N("nz"), dns::RrType::kSoa);
  ASSERT_NE(soa, nullptr);
  const auto& rdata = std::get<dns::SoaRdata>(soa->front().rdata);
  EXPECT_EQ(rdata.refresh, 7200u);
  EXPECT_EQ(rdata.retry, 1800u);
  EXPECT_EQ(rdata.expire, 1209600u);
  EXPECT_EQ(rdata.minimum, 600u);
}

TEST(MasterFileTest, OwnerInheritance) {
  const char* text =
      "$ORIGIN x.\n"
      "@ IN SOA ns1 h 1 2 3 4 5\n"
      "a IN A 192.0.2.1\n"
      "  IN AAAA 2001:db8::1\n";
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_TRUE(parsed.zone.has_value());
  EXPECT_NE(parsed.zone->Find(N("a.x"), dns::RrType::kAaaa), nullptr);
}

TEST(MasterFileTest, DsAndDnskeyHexFields) {
  const char* text =
      "$ORIGIN t.\n"
      "@ IN SOA ns1 h 1 2 3 4 5\n"
      "child IN DS 12345 8 2 deadBEEF\n"
      "@ IN DNSKEY 257 3 8 0102030405\n";
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_TRUE(parsed.errors.empty()) << parsed.errors.front().message;
  const auto* ds = parsed.zone->Find(N("child.t"), dns::RrType::kDs);
  ASSERT_NE(ds, nullptr);
  const auto& rdata = std::get<dns::DsRdata>(ds->front().rdata);
  EXPECT_EQ(rdata.key_tag, 12345);
  EXPECT_EQ(rdata.digest, (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
  const auto* key = parsed.zone->Find(N("t"), dns::RrType::kDnskey);
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(std::get<dns::DnskeyRdata>(key->front().rdata).flags, 257);
}

TEST(MasterFileTest, ErrorsCarryLineNumbers) {
  const char* text =
      "$ORIGIN e.\n"
      "@ IN SOA ns1 h 1 2 3 4 5\n"
      "bad IN A not-an-address\n"
      "worse IN MX ten mail\n";
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_EQ(parsed.errors.size(), 2u);
  EXPECT_EQ(parsed.errors[0].line, 3u);
  EXPECT_EQ(parsed.errors[1].line, 4u);
  // Non-fatal: the zone still parses with the good records.
  ASSERT_TRUE(parsed.zone.has_value());
}

TEST(MasterFileTest, MissingSoaIsFatal) {
  auto parsed = ParseMasterFile("$ORIGIN q.\nwww IN A 192.0.2.1\n",
                                dns::Name{});
  EXPECT_FALSE(parsed.zone.has_value());
  ASSERT_FALSE(parsed.errors.empty());
  EXPECT_NE(parsed.errors.back().message.find("SOA"), std::string::npos);
}

TEST(MasterFileTest, DuplicateSoaRejected) {
  const char* text =
      "$ORIGIN d.\n"
      "@ IN SOA ns1 h 1 2 3 4 5\n"
      "@ IN SOA ns2 h 2 2 3 4 5\n";
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_FALSE(parsed.errors.empty());
  EXPECT_NE(parsed.errors.front().message.find("duplicate"),
            std::string::npos);
}

TEST(MasterFileTest, OutOfZoneRecordIsFatal) {
  const char* text =
      "$ORIGIN z.\n"
      "@ IN SOA ns1 h 1 2 3 4 5\n"
      "www.other. IN A 192.0.2.1\n";
  auto parsed = ParseMasterFile(text, dns::Name{});
  EXPECT_FALSE(parsed.zone.has_value());
}

TEST(MasterFileTest, UnbalancedParenthesesReported) {
  auto parsed = ParseMasterFile(
      "$ORIGIN p.\n@ IN SOA ns1 h ( 1 2 3 4 5\n", dns::Name{});
  bool found = false;
  for (const auto& error : parsed.errors) {
    found |= error.message.find("unbalanced") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(MasterFileTest, SerializeParseRoundTrip) {
  ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"),
       {*net::IpAddress::Parse("194.0.28.1"),
        *net::IpAddress::Parse("2001:678:2c::1")}}};
  Zone original = MakeZoneSkeleton(config);
  PopulateDelegations(original, 25, "dom", 0.5, net::Ipv4Address(100, 70, 0, 0));

  std::string text = ToMasterFile(original);
  auto parsed = ParseMasterFile(text, dns::Name{});
  ASSERT_TRUE(parsed.errors.empty())
      << parsed.errors.front().line << ": " << parsed.errors.front().message;
  ASSERT_TRUE(parsed.zone.has_value());

  EXPECT_EQ(parsed.zone->apex(), original.apex());
  EXPECT_EQ(parsed.zone->name_count(), original.name_count());
  EXPECT_EQ(parsed.zone->record_count(), original.record_count());
  // Spot-check semantic equality through lookups.
  for (int i : {0, 7, 24}) {
    dns::Name child = N(("dom" + std::to_string(i) + ".nl").c_str());
    auto a = original.Lookup(child, dns::RrType::kNs);
    auto b = parsed.zone->Lookup(child, dns::RrType::kNs);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.glue, b.glue);
  }
}

TEST(MasterFileTest, RoundTripIsFixpoint) {
  auto first = ParseMasterFile(kSimpleZone, dns::Name{});
  ASSERT_TRUE(first.zone.has_value());
  std::string once = ToMasterFile(*first.zone);
  auto second = ParseMasterFile(once, dns::Name{});
  ASSERT_TRUE(second.zone.has_value());
  EXPECT_EQ(ToMasterFile(*second.zone), once);
}

}  // namespace
}  // namespace clouddns::zone
