// Determinism contract of the parallel zone signer (DESIGN.md §14): the
// fan-out only computes signatures; the RRSIG records are appended serially
// in target order, so the signed zone's wire image must be byte-for-byte
// identical at every worker count — fingerprinted here with SHA-256 over
// the master-file rendering. The same contract is pinned end-to-end on
// scenario reports, including under a fault preset that skews the capture.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "../testutil.h"
#include "analysis/experiments.h"
#include "capture/columnar.h"
#include "cloud/scenario.h"
#include "zone/dnssec.h"
#include "zone/master_file.h"
#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

/// Pins CLOUDDNS_THREADS for one test body and restores the previous
/// value, so a failing assertion cannot leak the override into later
/// tests.
class SignThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("CLOUDDNS_THREADS");
    had_env_ = prev != nullptr;
    if (had_env_) saved_ = prev;
  }
  void TearDown() override {
    if (had_env_) {
      setenv("CLOUDDNS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("CLOUDDNS_THREADS");
    }
  }

 private:
  bool had_env_ = false;
  std::string saved_;
};

/// A ccTLD-shaped zone large enough that SignZone's fan-out runs many
/// signing tasks per worker: apex NS set plus 400 delegations, half with
/// DS records.
Zone BuildSampleZone() {
  ZoneBuildConfig config;
  config.apex = *dns::Name::Parse("nl");
  config.nameservers = {
      {*dns::Name::Parse("ns1.dns.nl"),
       {*net::IpAddress::Parse("194.0.28.53")}},
      {*dns::Name::Parse("ns2.dns.nl"),
       {*net::IpAddress::Parse("194.0.29.53")}}};
  Zone zone = MakeZoneSkeleton(config);
  PopulateDelegations(zone, 400, "dom", 0.5,
                      *net::Ipv4Address::Parse("100.70.0.0"));
  return zone;
}

TEST_F(SignThreadsTest, SignedZoneImageIdenticalAtEveryThreadCount) {
  std::string reference;
  for (const char* threads : {"1", "2", "4", "8"}) {
    setenv("CLOUDDNS_THREADS", threads, 1);
    Zone zone = BuildSampleZone();
    SignZone(zone);
    const std::string digest = testutil::Sha256Hex(ToMasterFile(zone));
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << "signed zone image diverges at " << threads << " threads";
    }
  }
}

cloud::ScenarioConfig SmallScenario(std::size_t threads,
                                    cloud::FaultPreset preset) {
  cloud::ScenarioConfig config;
  config.vantage = cloud::Vantage::kNl;
  config.year = 2020;
  config.client_queries = 20'000;
  config.zone_scale = 0.001;
  config.threads = threads;
  config.fault_preset = preset;
  return config;
}

/// One digest covering everything a run publishes: the flattened capture's
/// columnar encoding (every record field, in merge order) plus the
/// Table 3 / Fig. 1 report numbers.
std::string ReportDigest(const cloud::ScenarioResult& result) {
  const auto wire = capture::EncodeColumnar(result.records.FlattenCopy());
  std::string blob(wire.begin(), wire.end());
  const auto stats = analysis::ComputeDatasetStats(result);
  blob += std::to_string(stats.queries_total) + "/" +
          std::to_string(stats.queries_valid) + "/" +
          std::to_string(stats.resolvers_exact) + "/" +
          std::to_string(stats.ases_exact);
  for (const auto& share : analysis::ComputeCloudShares(result)) {
    blob += "/" + std::to_string(share.queries);
  }
  return testutil::Sha256Hex(blob);
}

TEST_F(SignThreadsTest, ScenarioReportsIdenticalAtEveryThreadCount) {
  std::string reference;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    setenv("CLOUDDNS_THREADS", std::to_string(threads).c_str(), 1);
    const auto result = cloud::RunScenario(
        SmallScenario(threads, cloud::FaultPreset::kNone));
    const std::string digest = ReportDigest(result);
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << "scenario report diverges at " << threads << " threads";
    }
  }
}

TEST_F(SignThreadsTest, FaultedScenarioReportsIdenticalAtEveryThreadCount) {
  // Fault injection exercises the retry/timeout machinery and skews
  // per-shard record counts; the worker count still must not show through.
  std::string reference;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    setenv("CLOUDDNS_THREADS", std::to_string(threads).c_str(), 1);
    const auto result = cloud::RunScenario(
        SmallScenario(threads, cloud::FaultPreset::kLossyPath));
    const std::string digest = ReportDigest(result);
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << "faulted scenario report diverges at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace clouddns::zone
