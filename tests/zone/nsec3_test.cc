#include "zone/nsec3.h"

#include <gtest/gtest.h>

#include <set>

#include "dns/message.h"
#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

TEST(Base32HexTest, EncodesKnownVectors) {
  // RFC 4648 §10 test vectors (base32hex, padding stripped).
  EXPECT_EQ(Base32HexEncode({}), "");
  EXPECT_EQ(Base32HexEncode({'f'}), "co");
  EXPECT_EQ(Base32HexEncode({'f', 'o'}), "cpng");
  EXPECT_EQ(Base32HexEncode({'f', 'o', 'o'}), "cpnmu");
  EXPECT_EQ(Base32HexEncode({'f', 'o', 'o', 'b'}), "cpnmuog");
  EXPECT_EQ(Base32HexEncode({'f', 'o', 'o', 'b', 'a'}), "cpnmuoj1");
  EXPECT_EQ(Base32HexEncode({'f', 'o', 'o', 'b', 'a', 'r'}), "cpnmuoj1e8");
}

TEST(Base32HexTest, RoundTripsRandomBytes) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 64; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(i * 37 + 11));
    auto decoded = Base32HexDecode(Base32HexEncode(bytes));
    ASSERT_TRUE(decoded.has_value()) << i;
    EXPECT_EQ(*decoded, bytes);
  }
}

TEST(Base32HexTest, DecodeRejectsBadInput) {
  EXPECT_FALSE(Base32HexDecode("w").has_value());   // 'w' beyond alphabet
  EXPECT_FALSE(Base32HexDecode("c=").has_value());
  // Nonzero leftover padding bits.
  EXPECT_FALSE(Base32HexDecode("cp1").has_value());
  // Uppercase is accepted (DNS names are case-insensitive).
  EXPECT_EQ(*Base32HexDecode("CO"), (std::vector<std::uint8_t>{'f'}));
}

TEST(Nsec3HashTest, DeterministicSaltedIterated) {
  std::vector<std::uint8_t> salt = {0xaa, 0xbb};
  auto h1 = Nsec3Hash(N("example.nl"), salt, 5);
  auto h2 = Nsec3Hash(N("example.nl"), salt, 5);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1.size(), 20u);  // SHA-1-sized

  EXPECT_NE(Nsec3Hash(N("example.nl"), salt, 6), h1);      // iterations
  EXPECT_NE(Nsec3Hash(N("example.nl"), {0xcc}, 5), h1);    // salt
  EXPECT_NE(Nsec3Hash(N("example2.nl"), salt, 5), h1);     // name
  // Hashing is case-insensitive like name comparison.
  EXPECT_EQ(Nsec3Hash(N("EXAMPLE.NL"), salt, 5), h1);
}

TEST(Nsec3HashTest, OwnerNameIsBase32HexLabelUnderApex) {
  dns::Name owner = Nsec3OwnerName(N("www.example.nl"), N("nl"), {0x01}, 3);
  EXPECT_EQ(owner.LabelCount(), 2u);
  EXPECT_TRUE(owner.IsSubdomainOf(N("nl")));
  EXPECT_EQ(owner.Label(0).size(), 32u);  // 20 bytes -> 32 base32 chars
  EXPECT_TRUE(Base32HexDecode(owner.Label(0)).has_value());
}

Zone MakeChainedZone(std::size_t domains = 10) {
  ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("194.0.28.1")}}};
  Zone zone = MakeZoneSkeleton(config);
  PopulateDelegations(zone, domains, "dom", 0.5,
                      net::Ipv4Address(100, 70, 0, 0));
  AddNsec3Chain(zone);
  return zone;
}

TEST(Nsec3ChainTest, ParamAtApexAndOneRecordPerName) {
  Zone plain = MakeChainedZone();
  EXPECT_NE(plain.Find(N("nl"), dns::RrType::kNsec3Param), nullptr);

  // Count NSEC3 records and the names they certify.
  std::size_t nsec3_count = 0;
  for (const auto& name : plain.Names()) {
    if (const auto* rrset = plain.Find(name, dns::RrType::kNsec3)) {
      nsec3_count += rrset->size();
    }
  }
  EXPECT_GT(nsec3_count, 10u);
}

TEST(Nsec3ChainTest, ChainIsCircularAndSorted) {
  Zone zone = MakeChainedZone();
  // Collect (hash, next) pairs.
  std::set<std::vector<std::uint8_t>> hashes;
  std::set<std::vector<std::uint8_t>> nexts;
  for (const auto& name : zone.Names()) {
    const auto* rrset = zone.Find(name, dns::RrType::kNsec3);
    if (rrset == nullptr) continue;
    for (const auto& rr : *rrset) {
      auto hash = Base32HexDecode(rr.name.Label(0));
      ASSERT_TRUE(hash.has_value());
      hashes.insert(*hash);
      nexts.insert(std::get<dns::Nsec3Rdata>(rr.rdata).next_hashed_owner);
    }
  }
  // A circular chain: the set of next-pointers equals the set of owners.
  EXPECT_EQ(hashes, nexts);
}

TEST(Nsec3ChainTest, TypeBitmapsReflectOwnerTypes) {
  Zone zone = MakeChainedZone();
  auto apex_owner = Nsec3OwnerName(N("nl"), N("nl"), {0xab, 0xcd}, 5);
  const auto* rrset = zone.Find(apex_owner, dns::RrType::kNsec3);
  ASSERT_NE(rrset, nullptr);
  const auto& rdata = std::get<dns::Nsec3Rdata>(rrset->front().rdata);
  auto has = [&rdata](dns::RrType t) {
    return std::find(rdata.types.begin(), rdata.types.end(), t) !=
           rdata.types.end();
  };
  EXPECT_TRUE(has(dns::RrType::kSoa));
  EXPECT_TRUE(has(dns::RrType::kNs));
  EXPECT_FALSE(has(dns::RrType::kMx));
}

TEST(Nsec3ChainTest, CoveringRecordFoundForNonexistentNames) {
  Zone zone = MakeChainedZone(20);
  for (const char* junk : {"nope.nl", "zzz.nl", "a.nl", "qq.dom3.nl"}) {
    const auto* covering = FindCoveringNsec3(zone, N(junk));
    ASSERT_NE(covering, nullptr) << junk;
    // The covering interval must actually bracket the target hash.
    auto target = Nsec3Hash(N(junk), {0xab, 0xcd}, 5);
    auto own = Base32HexDecode(covering->name.Label(0));
    ASSERT_TRUE(own.has_value());
    const auto& next =
        std::get<dns::Nsec3Rdata>(covering->rdata).next_hashed_owner;
    bool wraps = next < *own;
    if (wraps) {
      EXPECT_TRUE(target > *own || target < next) << junk;
    } else {
      EXPECT_TRUE(*own < target && target < next) << junk;
    }
  }
}

TEST(Nsec3ChainTest, ExistingNamesHaveNoCoveringRecord) {
  Zone zone = MakeChainedZone();
  EXPECT_EQ(FindCoveringNsec3(zone, N("nl")), nullptr);
  EXPECT_EQ(FindCoveringNsec3(zone, N("dom3.nl")), nullptr);
}

TEST(Nsec3ChainTest, ZoneWithoutChainReturnsNull) {
  ZoneBuildConfig config;
  config.apex = N("nz");
  config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("197.0.29.1")}}};
  Zone zone = MakeZoneSkeleton(config);
  EXPECT_EQ(FindCoveringNsec3(zone, N("nope.nz")), nullptr);
}

TEST(Nsec3ChainTest, Nsec3RecordsSurviveWireRoundTrip) {
  Zone zone = MakeChainedZone();
  auto apex_owner = Nsec3OwnerName(N("nl"), N("nl"), {0xab, 0xcd}, 5);
  const auto* rrset = zone.Find(apex_owner, dns::RrType::kNsec3);
  ASSERT_NE(rrset, nullptr);

  dns::Message msg;
  msg.header.qr = true;
  msg.questions.push_back(
      dns::Question{N("nope.nl"), dns::RrType::kA, dns::RrClass::kIn});
  msg.authorities.push_back(rrset->front());
  auto decoded = dns::Message::Decode(msg.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->authorities.front(), rrset->front());
}

}  // namespace
}  // namespace clouddns::zone
