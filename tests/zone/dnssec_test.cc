#include "zone/dnssec.h"

#include <gtest/gtest.h>

#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

TEST(DnssecTest, KeyTagsAreDeterministicAndZoneSpecific) {
  EXPECT_EQ(ZskTagFor(N("nl")), ZskTagFor(N("NL")));
  EXPECT_NE(ZskTagFor(N("nl")), ZskTagFor(N("nz")));
  EXPECT_NE(ZskTagFor(N("nl")), KskTagFor(N("nl")));
}

TEST(DnssecTest, ApexDnskeysHaveKskAndZsk) {
  auto keys = MakeApexDnskeys(N("nl"), 3600);
  ASSERT_EQ(keys.size(), 2u);
  const auto& ksk = std::get<dns::DnskeyRdata>(keys[0].rdata);
  const auto& zsk = std::get<dns::DnskeyRdata>(keys[1].rdata);
  EXPECT_EQ(ksk.flags, 257);
  EXPECT_EQ(zsk.flags, 256);
  EXPECT_EQ(ksk.algorithm, kMockAlgorithm);
  // RSA-2048-sized material, so DNSKEY responses truncate at EDNS 512.
  EXPECT_EQ(ksk.public_key.size(), 256u);
}

TEST(DnssecTest, DsMatchesChildKsk) {
  auto ds_record = MakeDs(N("example.nl"), 3600);
  const auto& ds = std::get<dns::DsRdata>(ds_record.rdata);
  EXPECT_TRUE(VerifyDsMatchesKey(ds, N("example.nl")));
  EXPECT_FALSE(VerifyDsMatchesKey(ds, N("other.nl")));
}

TEST(DnssecTest, SignZoneAttachesRrsigsToEveryRrset) {
  ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("192.0.2.53")}}};
  config.sign = false;
  Zone zone = MakeZoneSkeleton(config);
  SignZone(zone);

  EXPECT_TRUE(zone.IsSigned());
  // SOA, NS, the glue A, and DNSKEY itself must all carry signatures.
  const auto* soa_sigs = zone.Find(N("nl"), dns::RrType::kRrsig);
  ASSERT_NE(soa_sigs, nullptr);
  bool covers_soa = false, covers_ns = false, covers_dnskey = false;
  for (const auto& rr : *soa_sigs) {
    auto covered = static_cast<dns::RrType>(
        std::get<dns::RrsigRdata>(rr.rdata).type_covered);
    covers_soa |= covered == dns::RrType::kSoa;
    covers_ns |= covered == dns::RrType::kNs;
    covers_dnskey |= covered == dns::RrType::kDnskey;
  }
  EXPECT_TRUE(covers_soa);
  EXPECT_TRUE(covers_ns);
  EXPECT_TRUE(covers_dnskey);
  EXPECT_NE(zone.Find(N("ns1.dns.nl"), dns::RrType::kRrsig), nullptr);
}

TEST(DnssecTest, RrsigVerifiesOnlyMatchingIdentity) {
  ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("192.0.2.53")}}};
  Zone zone = MakeZoneSkeleton(config);
  SignZone(zone);

  const auto* sigs = zone.Find(N("nl"), dns::RrType::kRrsig);
  ASSERT_NE(sigs, nullptr);
  for (const auto& rr : *sigs) {
    const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
    auto covered = static_cast<dns::RrType>(sig.type_covered);
    EXPECT_TRUE(VerifyRrsig(sig, N("nl"), covered));
    EXPECT_FALSE(VerifyRrsig(sig, N("nz"), covered));
  }
}

TEST(DnssecTest, DnskeySigKeyTagIsKskOthersZsk) {
  ZoneBuildConfig config;
  config.apex = N("nz");
  config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("192.0.2.60")}}};
  Zone zone = MakeZoneSkeleton(config);
  SignZone(zone);

  const auto* sigs = zone.Find(N("nz"), dns::RrType::kRrsig);
  ASSERT_NE(sigs, nullptr);
  for (const auto& rr : *sigs) {
    const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
    if (static_cast<dns::RrType>(sig.type_covered) == dns::RrType::kDnskey) {
      EXPECT_EQ(sig.key_tag, KskTagFor(N("nz")));
    } else {
      EXPECT_EQ(sig.key_tag, ZskTagFor(N("nz")));
    }
  }
}

}  // namespace
}  // namespace clouddns::zone
