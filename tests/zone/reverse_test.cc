#include "zone/reverse.h"

#include <gtest/gtest.h>

#include <random>

namespace clouddns::zone {
namespace {

TEST(ReverseTest, V4ReverseName) {
  auto addr = *net::IpAddress::Parse("192.0.2.1");
  EXPECT_EQ(ReverseName(addr).ToString(), "1.2.0.192.in-addr.arpa");
}

TEST(ReverseTest, V6ReverseName) {
  auto addr = *net::IpAddress::Parse("2001:db8::1");
  dns::Name name = ReverseName(addr);
  EXPECT_EQ(name.LabelCount(), 34u);
  EXPECT_EQ(name.ToString(),
            "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2."
            "ip6.arpa");
}

TEST(ReverseTest, V4RoundTrip) {
  auto addr = *net::IpAddress::Parse("203.0.113.77");
  auto back = AddressFromReverseName(ReverseName(addr));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, addr);
}

TEST(ReverseTest, V6RoundTripRandomized) {
  std::mt19937_64 rng(3596);
  for (int i = 0; i < 200; ++i) {
    net::Ipv6Address::Bytes bytes;
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    net::IpAddress addr{net::Ipv6Address(bytes)};
    auto back = AddressFromReverseName(ReverseName(addr));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, addr);
  }
}

TEST(ReverseTest, V4RoundTripRandomized) {
  std::mt19937_64 rng(2734);
  for (int i = 0; i < 200; ++i) {
    net::IpAddress addr{net::Ipv4Address(static_cast<std::uint32_t>(rng()))};
    auto back = AddressFromReverseName(ReverseName(addr));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, addr);
  }
}

TEST(ReverseTest, RejectsNonReverseNames) {
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("example.nl")).has_value());
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("in-addr.arpa")).has_value());
  // Wrong label count.
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("1.2.3.in-addr.arpa"))
          .has_value());
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("1.2.3.4.5.in-addr.arpa"))
          .has_value());
  // Bad octet.
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("256.2.0.192.in-addr.arpa"))
          .has_value());
  EXPECT_FALSE(
      AddressFromReverseName(*dns::Name::Parse("x.2.0.192.in-addr.arpa"))
          .has_value());
}

TEST(ReverseTest, CaseInsensitiveSuffix) {
  auto back = AddressFromReverseName(*dns::Name::Parse("1.2.0.192.IN-ADDR.ARPA"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ToString(), "192.0.2.1");
}

}  // namespace
}  // namespace clouddns::zone
