#include "zone/zone.h"

#include <gtest/gtest.h>

#include "zone/zone_builder.h"

namespace clouddns::zone {
namespace {

dns::Name N(const char* text) { return *dns::Name::Parse(text); }

Zone MakeNlZone() {
  ZoneBuildConfig config;
  config.apex = N("nl");
  config.nameservers = {
      {N("ns1.dns.nl"), {*net::IpAddress::Parse("192.0.2.53")}},
      {N("ns2.dns.nl"), {*net::IpAddress::Parse("192.0.2.54")}},
  };
  Zone zone = MakeZoneSkeleton(config);
  AddDelegation(zone, N("example.nl"),
                {{N("ns1.example.nl"), {*net::IpAddress::Parse("198.51.100.1")}},
                 {N("ns2.example.nl"), {*net::IpAddress::Parse("198.51.100.2")}}},
                /*with_ds=*/true);
  AddDelegation(zone, N("unsigned.nl"),
                {{N("ns1.unsigned.nl"), {*net::IpAddress::Parse("198.51.100.9")}}},
                /*with_ds=*/false);
  return zone;
}

TEST(ZoneTest, RejectsOutOfZoneRecords) {
  Zone zone(N("nl"));
  EXPECT_THROW(zone.Add(dns::MakeA(N("example.nz"),
                                   net::Ipv4Address(1, 2, 3, 4), 60)),
               std::invalid_argument);
}

TEST(ZoneTest, ApexSoaAndNsAnswer) {
  Zone zone = MakeNlZone();
  auto soa = zone.Lookup(N("nl"), dns::RrType::kSoa);
  EXPECT_EQ(soa.status, LookupStatus::kAnswer);
  ASSERT_EQ(soa.records.size(), 1u);

  auto ns = zone.Lookup(N("nl"), dns::RrType::kNs);
  EXPECT_EQ(ns.status, LookupStatus::kAnswer);
  EXPECT_EQ(ns.records.size(), 2u);
}

TEST(ZoneTest, DelegationReturnsReferralWithGlue) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("www.example.nl"), dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
  EXPECT_EQ(result.cut, N("example.nl"));
  EXPECT_EQ(result.records.size(), 2u);  // the NS set
  EXPECT_EQ(result.glue.size(), 2u);     // in-zone glue A records
  EXPECT_EQ(result.ds.size(), 1u);       // signed child
}

TEST(ZoneTest, DelegationAtCutItself) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("example.nl"), dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
  EXPECT_EQ(result.cut, N("example.nl"));
}

TEST(ZoneTest, DsQueryAtCutIsAnsweredByParent) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("example.nl"), dns::RrType::kDs);
  EXPECT_EQ(result.status, LookupStatus::kAnswer);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, dns::RrType::kDs);
}

TEST(ZoneTest, DsQueryForUnsignedChildIsNoData) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("unsigned.nl"), dns::RrType::kDs);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
  EXPECT_FALSE(result.soa.empty());
}

TEST(ZoneTest, NxDomainForUnregisteredName) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("definitely-not-registered.nl"),
                            dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNxDomain);
  ASSERT_EQ(result.soa.size(), 1u);
  EXPECT_EQ(result.soa[0].type, dns::RrType::kSoa);
}

TEST(ZoneTest, NoDataForExistingNameWrongType) {
  Zone zone = MakeNlZone();
  // ns1.dns.nl exists with an A record but has no MX.
  auto result = zone.Lookup(N("ns1.dns.nl"), dns::RrType::kMx);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
}

TEST(ZoneTest, EmptyNonTerminalIsNoDataNotNxDomain) {
  Zone zone = MakeNlZone();
  // "dns.nl" exists only as the parent of ns1/ns2.dns.nl.
  auto result = zone.Lookup(N("dns.nl"), dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
}

TEST(ZoneTest, NotInZone) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("example.nz"), dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNotInZone);
}

TEST(ZoneTest, NameBelowDelegationIsReferralNotNxDomain) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("deep.under.example.nl"), dns::RrType::kAaaa);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
}

TEST(ZoneTest, AnyQueryReturnsAllRecords) {
  Zone zone = MakeNlZone();
  auto result = zone.Lookup(N("nl"), dns::RrType::kAny);
  EXPECT_EQ(result.status, LookupStatus::kAnswer);
  EXPECT_GE(result.records.size(), 3u);  // SOA + 2 NS at least
}

TEST(ZoneTest, MoveTransfersContentAndDenialCache) {
  // Zone holds a directly-embedded mutex guarding the lazy denial cache;
  // the explicit move operations must carry the zone's content (and any
  // already-built cache snapshot) across without touching the mutex.
  Zone source = MakeNlZone();
  const std::size_t names = source.name_count();
  const std::size_t records = source.record_count();
  auto warm = source.DenialNeighbors(N("bbb.nl"));  // build the cache

  Zone moved(std::move(source));
  EXPECT_EQ(moved.name_count(), names);
  EXPECT_EQ(moved.record_count(), records);
  auto after_move = moved.DenialNeighbors(N("bbb.nl"));
  EXPECT_EQ(after_move.prev, warm.prev);
  EXPECT_EQ(after_move.next, warm.next);

  Zone assigned(N("nl"));
  assigned = std::move(moved);
  EXPECT_EQ(assigned.name_count(), names);
  EXPECT_EQ(assigned.Lookup(N("nl"), dns::RrType::kSoa).status,
            LookupStatus::kAnswer);
  // The moved-into zone still accepts writes and invalidates its cache.
  AddDelegation(assigned, N("ccc.nl"),
                {{N("ns1.ccc.nl"), {*net::IpAddress::Parse("198.51.100.77")}}},
                /*with_ds=*/false);
  EXPECT_EQ(assigned.DenialNeighbors(N("cca.nl")).next, N("ccc.nl"));
}

TEST(ZoneTest, RootZoneDelegatesTlds) {
  ZoneBuildConfig config;
  config.apex = dns::Name{};
  config.nameservers = {
      {N("b.root-servers.net"), {*net::IpAddress::Parse("199.9.14.201")}}};
  Zone root = MakeZoneSkeleton(config);
  AddDelegation(root, N("nl"),
                {{N("ns1.dns.nl"), {*net::IpAddress::Parse("192.0.2.53")}}},
                true);

  auto result = root.Lookup(N("www.example.nl"), dns::RrType::kA);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
  EXPECT_EQ(result.cut, N("nl"));

  auto junk = root.Lookup(N("hjkdfs"), dns::RrType::kA);
  EXPECT_EQ(junk.status, LookupStatus::kNxDomain);
}

TEST(ZoneBuilderTest, PopulateDelegationsCounts) {
  ZoneBuildConfig config;
  config.apex = N("nz");
  config.nameservers = {
      {N("ns1.dns.nz"), {*net::IpAddress::Parse("192.0.2.60")}}};
  Zone zone = MakeZoneSkeleton(config);
  PopulateDelegations(zone, 100, "dom", 0.5, net::Ipv4Address(10, 50, 0, 0));

  // Every domain is a delegation with 2-4 NS records plus glue; all have
  // IPv4 glue and most carry AAAA glue too.
  int ds_count = 0;
  int aaaa_glue = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    dns::Name child = N(("dom" + std::to_string(i) + ".nz").c_str());
    auto result = zone.Lookup(child.Child("www"), dns::RrType::kA);
    ASSERT_EQ(result.status, LookupStatus::kDelegation) << i;
    EXPECT_GE(result.records.size(), 2u);
    EXPECT_LE(result.records.size(), 4u);
    EXPECT_GE(result.glue.size(), result.records.size());
    for (const auto& rr : result.glue) {
      aaaa_glue += rr.type == dns::RrType::kAaaa;
    }
    ds_count += static_cast<int>(result.ds.size());
  }
  EXPECT_EQ(ds_count, 50);  // exactly the configured signed fraction
  EXPECT_GT(aaaa_glue, 100);  // ~80% of domains ship AAAA glue
}

}  // namespace
}  // namespace clouddns::zone
