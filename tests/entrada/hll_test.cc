#include "entrada/hll.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace clouddns::entrada {
namespace {

TEST(HllTest, EmptyEstimatesZero) {
  Hll hll;
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, SmallCardinalitiesAreNearExact) {
  Hll hll;
  for (int i = 0; i < 100; ++i) hll.Add("key" + std::to_string(i));
  EXPECT_NEAR(hll.Estimate(), 100.0, 3.0);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  Hll hll;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) hll.Add("key" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 20.0, 2.0);
}

TEST(HllTest, LargeCardinalityWithinExpectedError) {
  // p=14 -> standard error ~0.81%; allow 3 sigma.
  Hll hll;
  sim::Rng rng(42);
  constexpr int kN = 1'000'000;
  for (int i = 0; i < kN; ++i) hll.AddHash(rng.Next());
  EXPECT_NEAR(hll.Estimate(), kN, kN * 0.025);
}

TEST(HllTest, MidRangeCardinality) {
  Hll hll;
  for (int i = 0; i < 50'000; ++i) hll.Add("resolver-" + std::to_string(i));
  EXPECT_NEAR(hll.Estimate(), 50'000, 50'000 * 0.03);
}

TEST(HllTest, AddressesAndStringsDoNotCollideByFamily) {
  // The same 4 bytes as IPv4 vs inside an IPv6 address must count as two.
  Hll hll;
  hll.Add(*net::IpAddress::Parse("1.2.3.4"));
  hll.Add(*net::IpAddress::Parse("::102:304"));
  EXPECT_NEAR(hll.Estimate(), 2.0, 0.5);
}

TEST(HllTest, MergeEstimatesUnion) {
  Hll a, b;
  for (int i = 0; i < 10'000; ++i) a.Add("a" + std::to_string(i));
  for (int i = 0; i < 10'000; ++i) b.Add("b" + std::to_string(i));
  // 5000 shared keys.
  for (int i = 0; i < 5'000; ++i) {
    a.Add("shared" + std::to_string(i));
    b.Add("shared" + std::to_string(i));
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 25'000, 25'000 * 0.03);
}

TEST(HllTest, MergeWithEmptyIsIdentity) {
  Hll a, empty;
  for (int i = 0; i < 1000; ++i) a.Add("x" + std::to_string(i));
  double before = a.Estimate();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Estimate(), before);
}

TEST(HllTest, DeterministicForSameInput) {
  Hll a, b;
  for (int i = 0; i < 1000; ++i) {
    a.Add("k" + std::to_string(i));
    b.Add("k" + std::to_string(i));
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

}  // namespace
}  // namespace clouddns::entrada
