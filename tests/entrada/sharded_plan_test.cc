// Sharded-analytics equivalence: AnalysisPlan::Execute(ShardedCapture)
// scans the shard buffers in place and must produce results byte-identical
// to flattening first and scanning the merged stream — for every op type
// and every thread count. This is the contract that lets the figure/table
// drivers skip the merge entirely.
#include "entrada/plan.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <tuple>

#include "capture/sharded.h"
#include "entrada/analytics.h"
#include "sim/random.h"

namespace clouddns::entrada {
namespace {

/// Multi-shard capture with realistic shape: each shard is its own
/// time-sorted stream spanning ~3 months (so monthly bucketing has real
/// work) and shard streams fully overlap in time.
capture::ShardedCapture SyntheticSharded(std::size_t shard_count,
                                         std::size_t per_shard) {
  std::vector<capture::CaptureBuffer> shards(shard_count);
  const sim::TimeUs start = sim::TimeFromCivil({2020, 2, 1});
  // Mean step spreads each shard's stream over ~90 days.
  const std::uint64_t step = 2 * 90 * sim::kMicrosPerDay / (per_shard + 1);
  for (std::size_t s = 0; s < shard_count; ++s) {
    sim::Rng rng(1000 + s);
    shards[s].reserve(per_shard);
    sim::TimeUs t = start + s;
    for (std::size_t i = 0; i < per_shard; ++i) {
      t += rng.NextBelow(step);
      capture::CaptureRecord r;
      r.time_us = t;
      r.server_id = static_cast<std::uint32_t>(rng.NextBelow(3));
      if (rng.Bernoulli(0.4)) {
        r.src = net::IpAddress(net::Ipv4Address(
            static_cast<std::uint32_t>(0x0a000000 + rng.NextBelow(3000))));
      } else {
        auto v6 = *net::Ipv6Address::Parse(
            "2001:db8::" + std::to_string(rng.NextBelow(3000)));
        r.src = net::IpAddress(v6);
      }
      r.transport = rng.Bernoulli(0.1) ? dns::Transport::kTcp
                                       : dns::Transport::kUdp;
      r.qtype = rng.Bernoulli(0.5)
                    ? dns::RrType::kA
                    : (rng.Bernoulli(0.5) ? dns::RrType::kAaaa
                                          : dns::RrType::kNs);
      r.rcode = rng.Bernoulli(0.2) ? dns::Rcode::kNxDomain
                                   : dns::Rcode::kNoError;
      r.has_edns = rng.Bernoulli(0.8);
      r.edns_udp_size = r.has_edns ? static_cast<std::uint16_t>(
                                         512u + 16u * rng.NextBelow(100))
                                   : 0;
      r.query_size = static_cast<std::uint16_t>(40 + rng.NextBelow(200));
      shards[s].push_back(std::move(r));
    }
  }
  return capture::ShardedCapture::FromShards(std::move(shards));
}

struct PlanResults {
  std::uint64_t count;
  Aggregation group;
  std::map<std::string, Aggregation> months;
  std::uint64_t distinct;
  double sketch;
  std::uint64_t cdf_count;
  double cdf_median;
  double cdf_p99;
};

/// Registers one spec of every op type, executes, and snapshots results.
/// `Capture` is either ShardedCapture (shard-wise scan) or CaptureBuffer
/// (flat chunked scan) — the two paths under comparison.
template <typename Capture>
PlanResults RunAllOps(const Capture& records, std::size_t threads) {
  AnalysisPlan plan;
  plan.SetTag(
      [](const capture::CaptureRecord& r) {
        return static_cast<std::uint16_t>(r.server_id);
      },
      [](std::uint16_t tag) { return "server-" + std::to_string(tag); });
  auto count = plan.Count(FilterSpec::Valid());
  auto group = plan.GroupBy(FilterSpec::All(), KeySpec::Qtype());
  auto months = plan.GroupByMonth(FilterSpec::Valid(), KeySpec::Tag());
  auto distinct = plan.Distinct(FilterSpec::Udp(), KeySpec::SrcAddress());
  auto sketch = plan.Sketch(FilterSpec::All(), KeySpec::SrcAddress());
  auto cdf = plan.Collect(
      FilterSpec::All(),
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        if (!r.has_edns) return std::nullopt;
        return static_cast<double>(r.edns_udp_size);
      });
  plan.Execute(records, threads);
  PlanResults out;
  out.count = plan.CountResult(count);
  out.group = plan.GroupResult(group);
  out.months = plan.MonthResult(months);
  out.distinct = plan.DistinctResult(distinct);
  out.sketch = plan.SketchResult(sketch).Estimate();
  out.cdf_count = plan.CdfResult(cdf).count();
  out.cdf_median = plan.CdfResult(cdf).Quantile(0.5);
  out.cdf_p99 = plan.CdfResult(cdf).Quantile(0.99);
  return out;
}

void ExpectSameResults(const PlanResults& got, const PlanResults& want) {
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.group.total, want.group.total);
  EXPECT_EQ(got.group.counts, want.group.counts);
  ASSERT_EQ(got.months.size(), want.months.size());
  for (const auto& [month, agg] : want.months) {
    auto it = got.months.find(month);
    ASSERT_NE(it, got.months.end()) << month;
    EXPECT_EQ(it->second.total, agg.total);
    EXPECT_EQ(it->second.counts, agg.counts);
  }
  EXPECT_EQ(got.distinct, want.distinct);
  EXPECT_DOUBLE_EQ(got.sketch, want.sketch);
  EXPECT_EQ(got.cdf_count, want.cdf_count);
  EXPECT_DOUBLE_EQ(got.cdf_median, want.cdf_median);
  EXPECT_DOUBLE_EQ(got.cdf_p99, want.cdf_p99);
}

class ShardedPlanTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  capture::ShardedCapture records_ = SyntheticSharded(16, 2'000);
};

INSTANTIATE_TEST_SUITE_P(Threads, ShardedPlanTest,
                         ::testing::Values(1, 2, 4, 8));

TEST_P(ShardedPlanTest, ShardWiseScanMatchesFlattenThenScan) {
  const std::size_t threads = GetParam();
  // Reference: the pre-change pipeline — merge shards, scan flat.
  PlanResults flat = RunAllOps(records_.Flatten(), threads);
  // Under test: scan the shard buffers in place, no merge.
  PlanResults sharded = RunAllOps(records_, threads);
  ExpectSameResults(sharded, flat);
}

TEST_P(ShardedPlanTest, ShardedResultsIdenticalToSingleThread) {
  PlanResults serial = RunAllOps(records_, 1);
  PlanResults parallel = RunAllOps(records_, GetParam());
  ExpectSameResults(parallel, serial);
}

TEST(ShardedPlanTest, DegenerateShardingsAgree) {
  // 1, 3, and 16 shards holding the same flattened stream must agree:
  // the shard structure is a storage detail, never a statistics input.
  auto sixteen = SyntheticSharded(16, 1'000);
  capture::ShardedCapture one(sixteen.FlattenCopy());

  std::vector<capture::CaptureBuffer> three(3);
  const auto& flat = sixteen.Flatten();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    three[i % 3].push_back(flat[i]);
  }
  // Per-shard streams must be time-sorted; round-robin of a sorted stream
  // keeps each subsequence sorted.
  auto scattered = capture::ShardedCapture::FromShards(std::move(three));

  PlanResults a = RunAllOps(sixteen, 4);
  PlanResults b = RunAllOps(one, 4);
  PlanResults c = RunAllOps(scattered, 4);
  ExpectSameResults(b, a);
  ExpectSameResults(c, a);
}

TEST(ShardedPlanTest, EmptyAndTinyCapturesSurvive) {
  capture::ShardedCapture empty;
  PlanResults e = RunAllOps(empty, 4);
  EXPECT_EQ(e.count, 0u);
  EXPECT_EQ(e.group.total, 0u);

  auto tiny = SyntheticSharded(16, 3);  // far below the serial cutoff
  PlanResults flat = RunAllOps(tiny.Flatten(), 8);
  PlanResults sharded = RunAllOps(tiny, 8);
  ExpectSameResults(sharded, flat);
}

}  // namespace
}  // namespace clouddns::entrada
