#include "entrada/analytics.h"

#include <gtest/gtest.h>

namespace clouddns::entrada {
namespace {

capture::CaptureBuffer MakeRecords() {
  capture::CaptureBuffer records;
  auto add = [&records](const char* src, const char* qname, dns::RrType qtype,
                        dns::Rcode rcode, dns::Transport transport,
                        sim::TimeUs time) {
    capture::CaptureRecord r;
    r.src = *net::IpAddress::Parse(src);
    r.qname = *dns::Name::Parse(qname);
    r.qtype = qtype;
    r.rcode = rcode;
    r.transport = transport;
    r.time_us = time;
    r.server_id = 0;
    records.push_back(std::move(r));
  };
  sim::TimeUs jan = sim::TimeFromCivil({2020, 1, 15});
  sim::TimeUs feb = sim::TimeFromCivil({2020, 2, 15});
  add("8.8.8.8", "a.nl", dns::RrType::kA, dns::Rcode::kNoError,
      dns::Transport::kUdp, jan);
  add("8.8.8.8", "b.nl", dns::RrType::kNs, dns::Rcode::kNoError,
      dns::Transport::kUdp, jan);
  add("8.8.4.4", "c.nl", dns::RrType::kA, dns::Rcode::kNxDomain,
      dns::Transport::kUdp, feb);
  add("2001:db8::1", "d.nl", dns::RrType::kAaaa, dns::Rcode::kNoError,
      dns::Transport::kTcp, feb);
  return records;
}

TEST(AnalyticsTest, CountByQtype) {
  auto records = MakeRecords();
  auto agg = CountBy(records, KeyQtype());
  EXPECT_EQ(agg.total, 4u);
  EXPECT_EQ(agg.Of("A"), 2u);
  EXPECT_EQ(agg.Of("NS"), 1u);
  EXPECT_EQ(agg.Of("AAAA"), 1u);
  EXPECT_EQ(agg.Of("MX"), 0u);
  EXPECT_DOUBLE_EQ(agg.Share("A"), 0.5);
}

TEST(AnalyticsTest, CountByWithFilter) {
  auto records = MakeRecords();
  auto agg = CountBy(records, KeyQtype(), FilterValid());
  EXPECT_EQ(agg.total, 3u);
  EXPECT_EQ(agg.Of("A"), 1u);  // the NXDOMAIN A query is filtered out
}

TEST(AnalyticsTest, CountIfJunk) {
  auto records = MakeRecords();
  EXPECT_EQ(CountIf(records, FilterJunk()), 1u);
  EXPECT_EQ(CountIf(records, FilterValid()), 3u);
  EXPECT_EQ(CountIf(records, nullptr), 4u);
}

TEST(AnalyticsTest, AndCombinatorShortCircuits) {
  auto records = MakeRecords();
  auto combined = And(FilterValid(), FilterTransport(dns::Transport::kTcp));
  EXPECT_EQ(CountIf(records, combined), 1u);
  // And() with a null side behaves like the other side alone.
  EXPECT_EQ(CountIf(records, And(nullptr, FilterJunk())), 1u);
}

TEST(AnalyticsTest, DistinctExactAndSketchAgree) {
  auto records = MakeRecords();
  EXPECT_EQ(DistinctExact(records, KeySrcAddress()), 3u);
  EXPECT_NEAR(DistinctSketch(records, KeySrcAddress()).Estimate(), 3.0, 0.5);
}

TEST(AnalyticsTest, KeyIpFamily) {
  auto records = MakeRecords();
  auto agg = CountBy(records, KeyIpFamily());
  EXPECT_EQ(agg.Of("IPv4"), 3u);
  EXPECT_EQ(agg.Of("IPv6"), 1u);
}

TEST(AnalyticsTest, KeySrcAsUsesLongestPrefix) {
  net::AsDatabase asdb;
  asdb.AddAs(15169, "GOOGLE");
  asdb.Announce(*net::Prefix::Parse("8.8.8.0/24"), 15169);
  auto records = MakeRecords();
  auto agg = CountBy(records, KeySrcAs(asdb));
  EXPECT_EQ(agg.Of("AS15169"), 2u);
  EXPECT_EQ(agg.Of("AS?"), 2u);  // unrouted sources
}

TEST(AnalyticsTest, CollectCdfSkipsNullopt) {
  auto records = MakeRecords();
  auto cdf = CollectCdf(
      records,
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        if (r.transport != dns::Transport::kUdp) return std::nullopt;
        return 100.0;
      });
  EXPECT_EQ(cdf.count(), 3u);
}

TEST(AnalyticsTest, CountByMonthBuckets) {
  auto records = MakeRecords();
  auto months = CountByMonth(records, KeyQtype());
  ASSERT_EQ(months.size(), 2u);
  EXPECT_EQ(months.at("2020-01").total, 2u);
  EXPECT_EQ(months.at("2020-02").total, 2u);
  EXPECT_EQ(months.at("2020-02").Of("AAAA"), 1u);
}

TEST(AnalyticsTest, EmptyBufferYieldsEmptyAggregates) {
  capture::CaptureBuffer empty;
  auto agg = CountBy(empty, KeyQtype());
  EXPECT_EQ(agg.total, 0u);
  EXPECT_DOUBLE_EQ(agg.Share("A"), 0.0);
  EXPECT_EQ(DistinctExact(empty, KeySrcAddress()), 0u);
  EXPECT_TRUE(CountByMonth(empty, KeyQtype()).empty());
}

}  // namespace
}  // namespace clouddns::entrada
