#include "entrada/cdf.h"

#include <gtest/gtest.h>

namespace clouddns::entrada {
namespace {

TEST(CdfTest, EmptyCdfIsSafe) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10), 0.0);
  EXPECT_TRUE(cdf.Curve().empty());
}

TEST(CdfTest, MedianOfOddCount) {
  Cdf cdf;
  for (double v : {5.0, 1.0, 3.0}) cdf.Add(v);
  EXPECT_DOUBLE_EQ(cdf.Median(), 3.0);
}

TEST(CdfTest, QuantilesNearestRank) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf;
  for (double v : {512.0, 512.0, 1232.0, 4096.0}) cdf.Add(v);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(511), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(512), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1232), 0.75);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(9999), 1.0);
}

TEST(CdfTest, CurveHasOnePointPerDistinctValue) {
  Cdf cdf;
  for (double v : {512.0, 512.0, 1232.0, 4096.0}) cdf.Add(v);
  auto curve = cdf.Curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].first, 512.0);
  EXPECT_DOUBLE_EQ(curve[0].second, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].first, 4096.0);
  EXPECT_DOUBLE_EQ(curve[2].second, 1.0);
}

TEST(CdfTest, InterleavedAddAndQuery) {
  Cdf cdf;
  cdf.Add(10);
  EXPECT_DOUBLE_EQ(cdf.Median(), 10.0);
  cdf.Add(20);
  cdf.Add(30);
  EXPECT_DOUBLE_EQ(cdf.Median(), 20.0);  // re-sorts after new samples
  EXPECT_EQ(cdf.count(), 3u);
}

TEST(CdfTest, QuantileClampsOutOfRangeInput) {
  Cdf cdf;
  cdf.Add(7);
  EXPECT_DOUBLE_EQ(cdf.Quantile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(2.0), 7.0);
}

}  // namespace
}  // namespace clouddns::entrada
