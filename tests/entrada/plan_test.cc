// AnalysisPlan equivalence: every fused-plan aggregate must match the
// legacy one-scan-per-statistic primitives exactly (counts, group-bys,
// distinct sets, CDF quantiles, monthly buckets) — single-threaded and
// chunked across workers alike. HLL sketches hash differently between the
// two paths (codes vs strings), so those are compared as estimates against
// the exact count.
#include "entrada/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "entrada/analytics.h"
#include "sim/random.h"

namespace clouddns::entrada {
namespace {

capture::CaptureBuffer SyntheticBuffer(std::size_t n) {
  capture::CaptureBuffer records;
  records.reserve(n);
  sim::Rng rng(42);
  // Spread records over ~3 months so monthly bucketing has real work.
  const sim::TimeUs start = sim::TimeFromCivil({2020, 2, 1});
  for (std::size_t i = 0; i < n; ++i) {
    capture::CaptureRecord r;
    r.time_us = start + i * (90 * sim::kMicrosPerDay / n);
    r.server_id = static_cast<std::uint32_t>(rng.NextBelow(3));
    if (rng.Bernoulli(0.4)) {
      r.src = net::IpAddress(net::Ipv4Address(
          static_cast<std::uint32_t>(0x0a000000 + rng.NextBelow(5000))));
    } else {
      auto v6 = *net::Ipv6Address::Parse(
          "2001:db8::" + std::to_string(rng.NextBelow(5000)));
      r.src = net::IpAddress(v6);
    }
    r.transport = rng.Bernoulli(0.1) ? dns::Transport::kTcp
                                     : dns::Transport::kUdp;
    r.qtype = rng.Bernoulli(0.5)
                  ? dns::RrType::kA
                  : (rng.Bernoulli(0.5) ? dns::RrType::kAaaa
                                        : dns::RrType::kNs);
    r.rcode = rng.Bernoulli(0.2) ? dns::Rcode::kNxDomain
                                 : dns::Rcode::kNoError;
    r.has_edns = rng.Bernoulli(0.8);
    r.edns_udp_size = r.has_edns
                          ? static_cast<std::uint16_t>(
                                512u + 16u * rng.NextBelow(100))
                          : 0;
    records.push_back(std::move(r));
  }
  return records;
}

class PlanTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  capture::CaptureBuffer records_ = SyntheticBuffer(20'000);
};

INSTANTIATE_TEST_SUITE_P(Threads, PlanTest, ::testing::Values(1, 2, 8));

TEST_P(PlanTest, CountsMatchLegacyFilters) {
  AnalysisPlan plan;
  auto valid = plan.Count(FilterSpec::Valid());
  auto junk = plan.Count(FilterSpec::Junk());
  auto udp = plan.Count(FilterSpec::Udp());
  auto tcp = plan.Count(FilterSpec::Tcp());
  auto v4 = plan.Count(FilterSpec::V4());
  auto v6 = plan.Count(FilterSpec::V6());
  auto server1 = plan.Count(FilterSpec::Server(1));
  auto custom = plan.Count(FilterSpec::Custom(
      [](const capture::CaptureRecord& r) { return r.has_edns; }));
  plan.Execute(records_, GetParam());

  EXPECT_EQ(plan.CountResult(valid), CountIf(records_, FilterValid()));
  EXPECT_EQ(plan.CountResult(junk), CountIf(records_, FilterJunk()));
  EXPECT_EQ(plan.CountResult(udp),
            CountIf(records_, FilterTransport(dns::Transport::kUdp)));
  EXPECT_EQ(plan.CountResult(tcp),
            CountIf(records_, FilterTransport(dns::Transport::kTcp)));
  EXPECT_EQ(plan.CountResult(v4),
            CountIf(records_, [](const capture::CaptureRecord& r) {
              return r.src.is_v4();
            }));
  EXPECT_EQ(plan.CountResult(v6),
            CountIf(records_, [](const capture::CaptureRecord& r) {
              return r.src.is_v6();
            }));
  EXPECT_EQ(plan.CountResult(server1), CountIf(records_, FilterServer(1)));
  EXPECT_EQ(plan.CountResult(custom),
            CountIf(records_, [](const capture::CaptureRecord& r) {
              return r.has_edns;
            }));
}

TEST_P(PlanTest, GroupBysMatchLegacyCountBy) {
  AnalysisPlan plan;
  auto qtype = plan.GroupBy(FilterSpec::All(), KeySpec::Qtype());
  auto rcode = plan.GroupBy(FilterSpec::Valid(), KeySpec::RcodeKey());
  auto transport = plan.GroupBy(FilterSpec::All(), KeySpec::Transport());
  auto family = plan.GroupBy(FilterSpec::All(), KeySpec::Family());
  auto address = plan.GroupBy(FilterSpec::Junk(), KeySpec::SrcAddress());
  auto custom = plan.GroupBy(
      FilterSpec::All(),
      KeySpec::Custom([](const capture::CaptureRecord& r) {
        return std::to_string(r.server_id);
      }));
  plan.Execute(records_, GetParam());

  auto expect_eq = [](const Aggregation& got, const Aggregation& want) {
    EXPECT_EQ(got.total, want.total);
    EXPECT_EQ(got.counts, want.counts);
  };
  expect_eq(plan.GroupResult(qtype), CountBy(records_, KeyQtype()));
  expect_eq(plan.GroupResult(rcode),
            CountBy(records_, KeyRcode(), FilterValid()));
  expect_eq(plan.GroupResult(transport), CountBy(records_, KeyTransport()));
  expect_eq(plan.GroupResult(family), CountBy(records_, KeyIpFamily()));
  expect_eq(plan.GroupResult(address),
            CountBy(records_, KeySrcAddress(), FilterJunk()));
  expect_eq(plan.GroupResult(custom),
            CountBy(records_, [](const capture::CaptureRecord& r) {
              return std::to_string(r.server_id);
            }));
}

TEST_P(PlanTest, DistinctAndSketchMatchLegacy) {
  AnalysisPlan plan;
  auto exact = plan.Distinct(FilterSpec::All(), KeySpec::SrcAddress());
  auto exact_udp = plan.Distinct(FilterSpec::Udp(), KeySpec::SrcAddress());
  auto sketch = plan.Sketch(FilterSpec::All(), KeySpec::SrcAddress());
  plan.Execute(records_, GetParam());

  EXPECT_EQ(plan.DistinctResult(exact),
            DistinctExact(records_, KeySrcAddress()));
  EXPECT_EQ(plan.DistinctResult(exact_udp),
            DistinctExact(records_, KeySrcAddress(),
                          FilterTransport(dns::Transport::kUdp)));
  // The sketch hashes addresses in binary rather than as strings, so the
  // estimate differs from the legacy string-keyed sketch but must still
  // land within HLL's error envelope of the exact count.
  double estimate = plan.SketchResult(sketch).Estimate();
  double exact_count = static_cast<double>(plan.DistinctResult(exact));
  EXPECT_NEAR(estimate, exact_count, exact_count * 0.05);
}

TEST_P(PlanTest, CdfMatchesLegacyCollect) {
  AnalysisPlan plan;
  auto sizes = plan.Collect(
      FilterSpec::Udp(),
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        if (!r.has_edns) return std::nullopt;
        return static_cast<double>(r.edns_udp_size);
      });
  plan.Execute(records_, GetParam());

  Cdf legacy = CollectCdf(
      records_,
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        if (!r.has_edns) return std::nullopt;
        return static_cast<double>(r.edns_udp_size);
      },
      FilterTransport(dns::Transport::kUdp));
  Cdf& fused = plan.CdfResult(sizes);
  ASSERT_EQ(fused.count(), legacy.count());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(fused.Quantile(q), legacy.Quantile(q));
  }
  EXPECT_DOUBLE_EQ(fused.FractionAtOrBelow(1232),
                   legacy.FractionAtOrBelow(1232));
}

TEST_P(PlanTest, MonthlyBucketsMatchLegacyCountByMonth) {
  AnalysisPlan plan;
  auto months = plan.GroupByMonth(FilterSpec::Valid(), KeySpec::Qtype());
  plan.Execute(records_, GetParam());

  auto legacy = CountByMonth(records_, KeyQtype(), FilterValid());
  const auto& fused = plan.MonthResult(months);
  ASSERT_EQ(fused.size(), legacy.size());
  for (const auto& [month, agg] : legacy) {
    auto it = fused.find(month);
    ASSERT_NE(it, fused.end()) << month;
    EXPECT_EQ(it->second.total, agg.total);
    EXPECT_EQ(it->second.counts, agg.counts);
  }
}

TEST_P(PlanTest, TagFilterAndGrouping) {
  // Tag = server_id; grouping by tag with a namer must match a custom
  // group-by, and tag filters must match server filters.
  AnalysisPlan plan;
  plan.SetTag(
      [](const capture::CaptureRecord& r) {
        return static_cast<std::uint16_t>(r.server_id);
      },
      [](std::uint16_t tag) { return "server-" + std::to_string(tag); });
  auto tagged = plan.Count(FilterSpec::Tagged(2));
  auto grouped = plan.GroupBy(FilterSpec::All(), KeySpec::Tag());
  plan.Execute(records_, GetParam());

  EXPECT_EQ(plan.CountResult(tagged), CountIf(records_, FilterServer(2)));
  auto legacy = CountBy(records_, [](const capture::CaptureRecord& r) {
    return "server-" + std::to_string(r.server_id);
  });
  EXPECT_EQ(plan.GroupResult(grouped).counts, legacy.counts);
  EXPECT_EQ(plan.GroupResult(grouped).total, legacy.total);
}

TEST(PlanDeterminismTest, IdenticalAcrossThreadCounts) {
  auto records = SyntheticBuffer(30'000);
  auto run = [&records](std::size_t threads) {
    AnalysisPlan plan;
    auto group = plan.GroupBy(FilterSpec::All(), KeySpec::Qtype());
    auto distinct = plan.Distinct(FilterSpec::All(), KeySpec::SrcAddress());
    auto sketch = plan.Sketch(FilterSpec::All(), KeySpec::SrcAddress());
    auto cdf = plan.Collect(
        FilterSpec::All(),
        [](const capture::CaptureRecord& r) -> std::optional<double> {
          return static_cast<double>(r.query_size);
        });
    plan.Execute(records, threads);
    return std::tuple{plan.GroupResult(group).counts,
                      plan.DistinctResult(distinct),
                      plan.SketchResult(sketch).Estimate(),
                      plan.CdfResult(cdf).Quantile(0.5)};
  };
  auto one = run(1);
  auto two = run(2);
  auto eight = run(8);
  EXPECT_EQ(std::get<0>(one), std::get<0>(two));
  EXPECT_EQ(std::get<0>(one), std::get<0>(eight));
  EXPECT_EQ(std::get<1>(one), std::get<1>(two));
  EXPECT_EQ(std::get<1>(one), std::get<1>(eight));
  EXPECT_DOUBLE_EQ(std::get<2>(one), std::get<2>(two));
  EXPECT_DOUBLE_EQ(std::get<2>(one), std::get<2>(eight));
  EXPECT_DOUBLE_EQ(std::get<3>(one), std::get<3>(two));
  EXPECT_DOUBLE_EQ(std::get<3>(one), std::get<3>(eight));
}

}  // namespace
}  // namespace clouddns::entrada
