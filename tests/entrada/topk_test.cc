#include "entrada/topk.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/random.h"

namespace clouddns::entrada {
namespace {

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving topk(10);
  for (int i = 0; i < 5; ++i) {
    for (int n = 0; n <= i; ++n) topk.Add("k" + std::to_string(i));
  }
  auto top = topk.Top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "k4");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "k3");
  EXPECT_EQ(topk.MaxError(), 0u);
  EXPECT_EQ(topk.total(), 1u + 2 + 3 + 4 + 5);
}

TEST(SpaceSavingTest, WeightsAccumulate) {
  SpaceSaving topk(4);
  topk.Add("a", 100);
  topk.Add("b", 50);
  topk.Add("a", 7);
  auto top = topk.Top(2);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 107u);
}

TEST(SpaceSavingTest, EvictionNeverUnderestimates) {
  SpaceSaving topk(3);
  topk.Add("a", 10);
  topk.Add("b", 8);
  topk.Add("c", 1);
  topk.Add("d");  // evicts c (count 1); d gets count 2, error 1
  auto top = topk.Top(4);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[2].key, "d");
  EXPECT_EQ(top[2].count, 2u);
  EXPECT_EQ(top[2].error, 1u);
}

TEST(SpaceSavingTest, HeavyHittersSurviveZipfStream) {
  // Property: with capacity well above the true top-k, the heaviest keys
  // of a skewed stream must surface in order.
  SpaceSaving topk(64);
  sim::ZipfSampler zipf(10000, 1.1);
  sim::Rng rng(7);
  std::map<std::size_t, std::uint64_t> truth;
  for (int i = 0; i < 200000; ++i) {
    std::size_t rank = zipf.Sample(rng);
    ++truth[rank];
    topk.Add("as" + std::to_string(rank));
  }
  auto top = topk.Top(5);
  ASSERT_EQ(top.size(), 5u);
  // Rank 0 dominates the stream and must rank first.
  EXPECT_EQ(top[0].key, "as0");
  // Each reported count is within the structure's error bound of truth.
  for (const auto& entry : top) {
    std::size_t rank = std::stoul(entry.key.substr(2));
    EXPECT_GE(entry.count, truth[rank]);
    EXPECT_LE(entry.count - entry.error, truth[rank]);
  }
}

TEST(SpaceSavingTest, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving(0), std::invalid_argument);
}

TEST(SpaceSavingTest, TopHandlesKLargerThanTracked) {
  SpaceSaving topk(8);
  topk.Add("only");
  auto top = topk.Top(100);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "only");
}

}  // namespace
}  // namespace clouddns::entrada
