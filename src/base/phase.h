// Process-wide pipeline-phase accounting (the BENCH `phase_*_seconds`
// substrate). Library layers that do attributable cold-path work — the
// scenario setup (zone build + signing), the framed/columnar codecs, and
// raw file I/O — book their wall time into one of three monotonically
// increasing counters. The bench harness snapshots the counters around a
// pipeline stage and turns the deltas into phase fields, so
// `wall ≈ Σ phase_*_seconds` can be asserted instead of hoped for.
//
// The counters mirror capture::MergeNanos(): pure telemetry, never read by
// simulation or analysis code, and excluded from every rendered artifact —
// the wall-clock determinism contract is untouched.
//
// Attribution rule: only the ORCHESTRATING thread's time is booked.
// Parallel helpers (frame CRC workers, zone-signing workers) run inside a
// timed region of their caller, so a phase delta is wall time of that
// stage, not CPU time summed over workers. A thread-local guard makes
// nested timers no-ops: whichever timer is outermost owns the interval.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace clouddns::base {

enum class Phase : unsigned {
  kSetup = 0,   ///< Scenario construction: sites, zones, signing, fleets.
  kEncode = 1,  ///< Codec work: columnar/sidecar encode+decode, frame
                ///< wrap/unwrap incl. CRC32C.
  kIo = 2,      ///< Raw file bytes: reads, atomic writes, fsync, rename.
};
inline constexpr unsigned kPhaseCount = 3;

namespace detail {
inline std::atomic<std::uint64_t> g_phase_nanos[kPhaseCount];
inline thread_local bool g_phase_timer_active = false;
}  // namespace detail

/// Nanoseconds booked into `phase` since process start. Monotonic;
/// callers diff two snapshots around the stage they are attributing.
[[nodiscard]] inline std::uint64_t PhaseNanos(Phase phase) {
  return detail::g_phase_nanos[static_cast<unsigned>(phase)].load(
      std::memory_order_relaxed);
}

/// RAII accumulator: books the scope's wall time into `phase`. Nested
/// timers (any phase) on the same thread are inert, so instrumenting both
/// a helper and its caller never double-counts.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase)
      : phase_(phase), owner_(!detail::g_phase_timer_active) {
    if (!owner_) return;
    detail::g_phase_timer_active = true;
    // lint:allow(wall-clock): bench-phase telemetry only; the reading never reaches simulation state or rendered output
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPhaseTimer() {
    if (!owner_) return;
    detail::g_phase_timer_active = false;
    // lint:allow(wall-clock): bench-phase telemetry only; see constructor
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    detail::g_phase_nanos[static_cast<unsigned>(phase_)].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Phase phase_;
  bool owner_;
  // lint:allow(wall-clock): telemetry start timestamp for the counter above
  std::chrono::steady_clock::time_point start_;
};

}  // namespace clouddns::base
