// Clang thread-safety-analysis capability macros (DESIGN.md §11).
//
// These expand to Clang's `capability` attribute family so that lock
// discipline — which member is guarded by which mutex, which functions
// must (or must not) hold it — is part of the type signature and checked
// at compile time with -Wthread-safety (the CLOUDDNS_TSA build). Under
// GCC, or Clang without the attribute, every macro expands to nothing:
// the annotations are free documentation.
//
// std::mutex carries no annotations in libstdc++/libc++, so the analysis
// cannot see through it; use base::Mutex / base::MutexLock (base/mutex.h),
// which wrap std::mutex with ACQUIRE/RELEASE-annotated methods.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CLOUDDNS_TSA_HAS(x) __has_attribute(x)
#else
#define CLOUDDNS_TSA_HAS(x) 0
#endif

#if CLOUDDNS_TSA_HAS(guarded_by)
#define CLOUDDNS_TSA_ATTR(x) __attribute__((x))
#else
#define CLOUDDNS_TSA_ATTR(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define CAPABILITY(x) CLOUDDNS_TSA_ATTR(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY CLOUDDNS_TSA_ATTR(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) CLOUDDNS_TSA_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) CLOUDDNS_TSA_ATTR(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define REQUIRES(...) CLOUDDNS_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CLOUDDNS_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities; caller must not hold them.
#define ACQUIRE(...) CLOUDDNS_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CLOUDDNS_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities; caller must hold them.
#define RELEASE(...) CLOUDDNS_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CLOUDDNS_TSA_ATTR(release_shared_capability(__VA_ARGS__))

/// Function acquires on a given return value (e.g. TRY_ACQUIRE(true)).
#define TRY_ACQUIRE(...) CLOUDDNS_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking public entry points).
#define EXCLUDES(...) CLOUDDNS_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) CLOUDDNS_TSA_ATTR(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. move
/// constructors locking the source object); always pair with a comment
/// explaining why the access is safe.
#define NO_THREAD_SAFETY_ANALYSIS CLOUDDNS_TSA_ATTR(no_thread_safety_analysis)
