// base::io — the durable-storage layer (DESIGN.md §14).
//
// Every on-disk artifact the pipeline trusts (columnar captures, pcap
// exports, `.ctx`/`.shards` cache sidecars) goes through this module:
//
//   FileWriter     write-to-temp + fsync + atomic rename, with every
//                  fwrite/fflush/fsync/fclose/rename result checked and
//                  surfaced as a typed IoStatus. A crashed writer leaves
//                  only a `*.tmp` file that the dataset cache sweeps away
//                  on the next open; readers never observe a torn file.
//   Framing        CRC32C-checksummed, versioned, length-prefixed
//                  container (magic + header + per-block CRC + trailer)
//                  wrapped around the payload codecs. Readers detect
//                  truncation, bit flips, and cross-artifact mixups
//                  (content tags) before a payload decoder ever runs.
//                  Legacy unframed files pass through byte-identically,
//                  so caches written before the framing change still load.
//   Fault shim     a deterministic StorageFaultInjector the tests install
//                  to produce short writes, ENOSPC, EINTR, failed fsync /
//                  rename, and post-commit bit flips / truncation at
//                  chosen (or seed-derived) offsets — every recovery path
//                  in the dataset cache is exercised reproducibly.
//   Quarantine     artifacts that fail integrity checks are moved into a
//                  `.quarantine/` subdirectory next to a reason file so a
//                  corrupt file can be inspected but never re-trusted.
//
// This module is the only place in src/ allowed to call raw fopen /
// fwrite / ofstream; the `io-unchecked` lint rule enforces that.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace clouddns::base::io {

// ---------------------------------------------------------------------------
// Typed status

enum class IoCode : std::uint8_t {
  kOk = 0,
  kNotFound,        ///< The file does not exist (distinct from corrupt).
  kOpenFailed,      ///< Could not create/open the file.
  kReadFailed,      ///< Short read / seek failure on an existing file.
  kWriteFailed,     ///< Short write (ENOSPC, EIO, ...) to the temp file.
  kFlushFailed,     ///< fflush reported an error.
  kSyncFailed,      ///< fsync reported an error.
  kCloseFailed,     ///< fclose reported an error (delayed write failure).
  kRenameFailed,    ///< Atomic rename into place failed.
  kBadFrame,        ///< Framed file with a malformed/truncated header.
  kBadVersion,      ///< Frame version this build does not understand.
  kBadTag,          ///< Frame content tag names a different artifact kind.
  kBlockCorrupt,    ///< A block's CRC32C does not match its bytes.
  kTruncated,       ///< Frame ends before the declared payload length.
  kTrailerCorrupt,  ///< Whole-payload CRC or trailer magic mismatch.
  kPayloadCorrupt,  ///< Framing verified (or legacy) but the payload
                    ///< decoder rejected the bytes.
};

[[nodiscard]] const char* ToString(IoCode code);

struct IoStatus {
  IoCode code = IoCode::kOk;
  int sys_errno = 0;    ///< errno at the failing call, 0 if not OS-level.
  std::string detail;   ///< Human-readable context ("fwrite wrote 12/80").

  [[nodiscard]] bool ok() const { return code == IoCode::kOk; }
  [[nodiscard]] static IoStatus Ok() { return IoStatus{}; }
  [[nodiscard]] static IoStatus Error(IoCode code, std::string detail,
                                      int sys_errno = 0);
  /// "write-failed (No space left on device): fwrite wrote 12/80".
  [[nodiscard]] std::string ToString() const;
};

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli), runtime-dispatched.
//
// Crc32c() routes through a hardware kernel when the host has one
// (SSE4.2 on x86, the ARMv8 CRC extension on aarch64) and falls back to
// the table-driven software implementation otherwise. Dispatch happens
// once per process; the hardware kernel is accepted only after it
// reproduces the software result on a test vector (DESIGN.md §10), so a
// miscompiled or misreported CPU feature can never change file bytes.

/// CRC32C of `data`; chain blocks by passing the previous result as
/// `seed` (the seed is pre/post-inverted internally, so Crc32c(a+b) ==
/// Crc32c(b, Crc32c(a))).
[[nodiscard]] std::uint32_t Crc32c(const std::uint8_t* data, std::size_t len,
                                   std::uint32_t seed = 0);
[[nodiscard]] std::uint32_t Crc32c(const std::vector<std::uint8_t>& data,
                                   std::uint32_t seed = 0);

/// The table-driven software path, always available. The dispatcher
/// cross-checks the hardware kernel against this; the codec bench
/// (bench_micro_crc32c) measures both.
[[nodiscard]] std::uint32_t Crc32cSoftware(const std::uint8_t* data,
                                           std::size_t len,
                                           std::uint32_t seed = 0);

/// Name of the kernel Crc32c() dispatches to: "sse4.2", "armv8-crc", or
/// "software". Stable for the process lifetime.
[[nodiscard]] const char* Crc32cBackend();

/// CRC32C of the concatenation A||B from the two parts' CRCs alone:
/// Crc32cCombine(Crc32c(A), Crc32c(B), B.size()) == Crc32c(A||B).
/// O(log len_b) GF(2) matrix shifts — the parallel frame codec derives
/// the whole-payload trailer CRC from the per-block CRCs without a second
/// pass over the bytes.
[[nodiscard]] std::uint32_t Crc32cCombine(std::uint32_t crc_a,
                                          std::uint32_t crc_b,
                                          std::uint64_t len_b);

// ---------------------------------------------------------------------------
// Checksummed framing

/// Content tags (big-endian fourcc) naming what a frame's payload is, so
/// a `.shards` sidecar renamed over a `.cdns` capture is detected as a
/// mixup instead of being fed to the wrong decoder.
inline constexpr std::uint32_t kTagCapture = 0x43444e53;  // "CDNS"
inline constexpr std::uint32_t kTagPcap = 0x50434150;     // "PCAP"
inline constexpr std::uint32_t kTagShards = 0x53485244;   // "SHRD"
inline constexpr std::uint32_t kTagContext = 0x43545820;  // "CTX "
/// Wildcard for UnwrapFrame: accept any tag (cdnstool verify).
inline constexpr std::uint32_t kTagAny = 0;

/// Payload bytes per checksummed block. Small enough that a single bit
/// flip is localized in diagnostics, large enough that per-block CRC cost
/// is noise next to the payload codec.
inline constexpr std::size_t kFrameBlockSize = 64 * 1024;

/// Wraps `payload` in the framed container:
///   magic "CLDFRAM1" | u32 version | u32 tag | u64 payload length |
///   blocks (u32 len | u32 crc32c | bytes)* | u32 trailer magic |
///   u32 crc32c(entire payload)
/// All integers big-endian.
[[nodiscard]] std::vector<std::uint8_t> WrapFrame(
    std::uint32_t content_tag, const std::vector<std::uint8_t>& payload);

/// Detects and verifies framing in `bytes`.
///   - Framed and intact: returns kOk, sets `framed` = true and fills
///     `payload` with the verified bytes (`tag_out`, if given, gets the
///     frame's content tag).
///   - Not framed (no magic): returns kOk with `framed` = false and
///     leaves `payload` untouched — the caller treats `bytes` itself as a
///     legacy unframed payload.
///   - Framed but damaged or tag-mismatched: the specific error code.
/// `expected_tag` of kTagAny accepts any content tag.
[[nodiscard]] IoStatus UnwrapFrame(const std::vector<std::uint8_t>& bytes,
                                   std::uint32_t expected_tag,
                                   std::vector<std::uint8_t>& payload,
                                   bool& framed,
                                   std::uint32_t* tag_out = nullptr);

// ---------------------------------------------------------------------------
// Deterministic storage-fault shim

enum class StorageFaultKind : std::uint8_t {
  kOpenFail,            ///< Opening the temp file fails (EACCES).
  kShortWrite,          ///< fwrite persists only a prefix, then fails (EIO).
  kEnospc,              ///< fwrite persists a prefix, errno ENOSPC.
  kEintrOnce,           ///< fwrite is interrupted mid-buffer once (EINTR);
                        ///< the writer's retry loop must finish the write.
  kFsyncFail,           ///< fsync fails (EIO).
  kRenameFail,          ///< rename into place fails (EXDEV).
  kBitFlipAfterCommit,  ///< Commit succeeds, then one bit of the final
                        ///< file flips (latent media corruption).
  kTruncateAfterCommit, ///< Commit succeeds, then the file is truncated
                        ///< (torn at a chosen offset).
  kZeroAfterCommit,     ///< Commit succeeds, then the file becomes empty.
};

[[nodiscard]] const char* ToString(StorageFaultKind kind);

/// `offset` sentinel: derive the fault offset deterministically from the
/// injector seed, the file path, and the file size.
inline constexpr std::uint64_t kAutoOffset = ~std::uint64_t{0};

struct StorageFault {
  std::string path_substring;  ///< Applies to paths containing this.
  StorageFaultKind kind = StorageFaultKind::kShortWrite;
  std::uint64_t offset = kAutoOffset;
  int fire_count = 1;          ///< Arm for this many firings (-1 = always).
};

/// A declarative schedule of storage faults. Deterministic by
/// construction: which operation fails is fixed by the plan, and
/// auto-derived offsets are a pure function of (seed, path, size) — the
/// same sweep always corrupts the same bytes.
class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  void Add(StorageFault fault) { faults_.push_back(std::move(fault)); }

  /// Total faults fired so far (all kinds).
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Arms the next matching fault for `path`/`kind` and consumes one
  /// firing. Returns false when no armed fault matches. Internal to
  /// base::io and the tests that assert on it.
  bool Consume(const std::string& path, StorageFaultKind kind,
               std::uint64_t* offset_out);

  /// The deterministic offset for a consumed fault: the fault's explicit
  /// offset, or splitmix64(seed ^ fnv1a(path)) % max(size, 1).
  [[nodiscard]] std::uint64_t DeriveOffset(const std::string& path,
                                           std::uint64_t explicit_offset,
                                           std::uint64_t size) const;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t fired_ = 0;
  std::vector<StorageFault> faults_;
};

/// Installs the process-wide injector every FileWriter consults; pass
/// nullptr to disable. Test-only: not synchronized against concurrent
/// writers (the storage suites write single-threaded).
void SetStorageFaultInjector(StorageFaultInjector* injector);
[[nodiscard]] StorageFaultInjector* GetStorageFaultInjector();

// ---------------------------------------------------------------------------
// Atomic file writer / whole-file reader

/// Writes `<path>.tmp`, then Commit() flushes, fsyncs, closes and
/// atomically renames into place. Any step failing surfaces a typed
/// IoStatus and removes the temp file; the destination is either the old
/// intact file or the complete new one, never a torn mix.
class FileWriter {
 public:
  explicit FileWriter(std::string path);
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  [[nodiscard]] const IoStatus& status() const { return status_; }

  /// Appends bytes to the temp file. No-op once an error is recorded
  /// (the first failure wins; Commit() reports it).
  void Append(const std::uint8_t* data, std::size_t len);
  void Append(const std::vector<std::uint8_t>& bytes);

  /// Flush + fsync + close + rename. Returns the first error recorded
  /// anywhere in the write sequence; on failure the temp file is gone
  /// and the destination is untouched.
  [[nodiscard]] IoStatus Commit();

  /// Discards the temp file without touching the destination.
  void Abort();

 private:
  void Fail(IoCode code, std::string detail, int sys_errno);

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  IoStatus status_;
  bool done_ = false;
};

/// Whole file -> bytes. kNotFound when the file does not exist.
[[nodiscard]] IoStatus ReadFileBytes(const std::string& path,
                                     std::vector<std::uint8_t>& out);

/// One-shot atomic write of `bytes` to `path` (no framing).
[[nodiscard]] IoStatus WriteFileAtomic(const std::string& path,
                                       const std::vector<std::uint8_t>& bytes);

/// One-shot atomic write of WrapFrame(tag, payload) to `path`.
[[nodiscard]] IoStatus WriteFramedFile(const std::string& path,
                                       std::uint32_t content_tag,
                                       const std::vector<std::uint8_t>& payload);

/// Reads `path` and unwraps framing. Legacy unframed files land in
/// `payload` byte-identically with `*framed_out` = false (when given).
[[nodiscard]] IoStatus ReadFramedFile(const std::string& path,
                                      std::uint32_t expected_tag,
                                      std::vector<std::uint8_t>& payload,
                                      bool* framed_out = nullptr);

// ---------------------------------------------------------------------------
// Quarantine & recovery accounting

/// Moves `path` into `<parent>/.quarantine/<name>.<n>` (first free n)
/// and writes `<name>.<n>.reason` beside it containing `reason`. Returns
/// the quarantined path, or "" when the move itself failed (the original
/// is removed in that case so a corrupt artifact is never re-read).
std::string QuarantineFile(const std::string& path, const std::string& reason);

/// Removes stranded `*.tmp` files under `dir` left by a crashed writer.
/// Returns how many were removed.
std::size_t RemoveStrandedTmpFiles(const std::string& dir);

/// RobustnessCounters-style block for storage integrity events, reported
/// in ScenarioResult by the self-healing dataset cache.
struct StorageCounters {
  std::uint64_t detected = 0;     ///< Integrity failures found on load.
  std::uint64_t quarantined = 0;  ///< Artifacts moved to .quarantine/.
  std::uint64_t rebuilt = 0;      ///< Artifacts regenerated from simulation
                                  ///< after a detected failure.
  std::uint64_t reverified = 0;   ///< Rebuilt artifacts re-read and intact.
  std::uint64_t tmp_cleaned = 0;  ///< Stranded *.tmp files swept on open.
  friend bool operator==(const StorageCounters&,
                         const StorageCounters&) = default;
};

}  // namespace clouddns::base::io
