// Annotated mutex wrappers (DESIGN.md §11).
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so Clang's -Wthread-safety analysis cannot track them:
// GUARDED_BY members accessed under a std::lock_guard would warn on
// every use. These zero-cost wrappers put ACQUIRE/RELEASE annotations on
// the lock operations so the analysis sees exactly which scopes hold
// which capability.
#pragma once

#include <mutex>

#include "base/thread_annotations.h"

namespace clouddns::base {

/// An annotated std::mutex. Prefer MutexLock for scoped acquisition.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped acquisition of a base::Mutex (std::lock_guard with
/// SCOPED_CAPABILITY annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace clouddns::base
