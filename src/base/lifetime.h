// Lifetime-contract annotation (DESIGN.md §11), the static counterpart
// of clouddns_lint's borrowed-buffer escape pass.
//
// CLOUDDNS_LIFETIMEBOUND marks a function whose returned view or
// reference borrows from the annotated parameter (or from `*this` when
// placed after a member function's cv-qualifiers). Clang's
// -Wdangling-gsl / -Wreturn-stack-address diagnostics then flag callers
// that let the result outlive the owner — e.g. binding `name.Label(0)`
// to a longer-lived variable than `name`. Under GCC, or Clang without
// the attribute, it expands to nothing and serves as documentation of
// the borrow.
#pragma once

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define CLOUDDNS_LIFETIMEBOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef CLOUDDNS_LIFETIMEBOUND
#define CLOUDDNS_LIFETIMEBOUND
#endif
