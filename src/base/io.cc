#include "base/io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "base/phase.h"
#include "base/threads.h"

#ifndef _WIN32
#include <unistd.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#if __has_include(<sys/auxv.h>)
#include <sys/auxv.h>
#endif
#endif

namespace clouddns::base::io {
namespace {

namespace fs = std::filesystem;

constexpr char kFrameMagic[8] = {'C', 'L', 'D', 'F', 'R', 'A', 'M', '1'};
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kTrailerMagic = 0x43444e44;  // "CDND"

void StoreU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void StoreU64(std::uint8_t* out, std::uint64_t v) {
  StoreU32(out, static_cast<std::uint32_t>(v >> 32));
  StoreU32(out + 4, static_cast<std::uint32_t>(v));
}

bool GetU32(const std::vector<std::uint8_t>& in, std::size_t& pos,
            std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = (static_cast<std::uint32_t>(in[pos]) << 24) |
      (static_cast<std::uint32_t>(in[pos + 1]) << 16) |
      (static_cast<std::uint32_t>(in[pos + 2]) << 8) |
      static_cast<std::uint32_t>(in[pos + 3]);
  pos += 4;
  return true;
}

bool GetU64(const std::vector<std::uint8_t>& in, std::size_t& pos,
            std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!GetU32(in, pos, hi) || !GetU32(in, pos, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

/// Pure 64-bit mixers for seed-derived fault offsets. Not a statistical
/// generator — every output is a function of its input alone, which is
/// what keeps the fault sweep reproducible.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

StorageFaultInjector* g_injector = nullptr;

/// Applies a consumed post-commit fault to the final (renamed) file.
/// Failures here are ignored: the fault shim is simulating silent media
/// corruption, and the read path is what must notice.
void CorruptCommittedFile(const std::string& path, StorageFaultKind kind,
                          std::uint64_t offset) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return;
  if (kind == StorageFaultKind::kZeroAfterCommit) {
    fs::resize_file(path, 0, ec);
    return;
  }
  if (size == 0) return;
  const std::uint64_t at =
      g_injector ? g_injector->DeriveOffset(path, offset, size) : 0;
  if (kind == StorageFaultKind::kTruncateAfterCommit) {
    fs::resize_file(path, at, ec);
    return;
  }
  // kBitFlipAfterCommit
  // The fault shim itself mutates the committed
  // file in place; this is the simulated corruption, not a durability path.
  if (std::FILE* f = std::fopen(path.c_str(), "rb+")) {
    unsigned char byte = 0;
    if (std::fseek(f, static_cast<long>(at), SEEK_SET) == 0 &&
        std::fread(&byte, 1, 1, f) == 1) {
      byte = static_cast<unsigned char>(byte ^ 0x20u);
      if (std::fseek(f, static_cast<long>(at), SEEK_SET) == 0) {
        // Simulated bit rot; see above.
        (void)std::fwrite(&byte, 1, 1, f);
      }
    }
    std::fclose(f);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// IoStatus

const char* ToString(IoCode code) {
  switch (code) {
    case IoCode::kOk: return "ok";
    case IoCode::kNotFound: return "not-found";
    case IoCode::kOpenFailed: return "open-failed";
    case IoCode::kReadFailed: return "read-failed";
    case IoCode::kWriteFailed: return "write-failed";
    case IoCode::kFlushFailed: return "flush-failed";
    case IoCode::kSyncFailed: return "sync-failed";
    case IoCode::kCloseFailed: return "close-failed";
    case IoCode::kRenameFailed: return "rename-failed";
    case IoCode::kBadFrame: return "bad-frame";
    case IoCode::kBadVersion: return "bad-version";
    case IoCode::kBadTag: return "bad-tag";
    case IoCode::kBlockCorrupt: return "block-corrupt";
    case IoCode::kTruncated: return "truncated";
    case IoCode::kTrailerCorrupt: return "trailer-corrupt";
    case IoCode::kPayloadCorrupt: return "payload-corrupt";
  }
  return "unknown";
}

IoStatus IoStatus::Error(IoCode code, std::string detail, int sys_errno) {
  IoStatus status;
  status.code = code;
  status.sys_errno = sys_errno;
  status.detail = std::move(detail);
  return status;
}

std::string IoStatus::ToString() const {
  std::string text = io::ToString(code);
  if (sys_errno != 0) {
    text += " (";
    text += std::strerror(sys_errno);
    text += ")";
  }
  if (!detail.empty()) {
    text += ": ";
    text += detail;
  }
  return text;
}

// ---------------------------------------------------------------------------
// CRC32C

namespace {

constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

struct Crc32cTable {
  std::uint32_t entries[256];
  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

// Raw kernels operate on the pre-inverted CRC state; the public entry
// points own the ~seed / ~result conditioning so every kernel is
// interchangeable.
std::uint32_t Crc32cRawSoftware(std::uint32_t crc, const std::uint8_t* data,
                                std::size_t len) {
  static const Crc32cTable table;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ data[i]) & 0xffu];
  }
  return crc;
}

#if defined(__x86_64__)
#define CLOUDDNS_CRC32C_HW 1
constexpr const char* kHwCrcName = "sse4.2";

bool HwCrcSupported() { return __builtin_cpu_supports("sse4.2") != 0; }

__attribute__((target("sse4.2"))) std::uint32_t Crc32cRawHw(
    std::uint32_t crc, const std::uint8_t* data, std::size_t len) {
  std::uint64_t state = crc;
  while (len >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    state = __builtin_ia32_crc32di(state, chunk);
    data += 8;
    len -= 8;
  }
  crc = static_cast<std::uint32_t>(state);
  while (len > 0) {
    crc = __builtin_ia32_crc32qi(crc, *data);
    ++data;
    --len;
  }
  return crc;
}
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define CLOUDDNS_CRC32C_HW 1
constexpr const char* kHwCrcName = "armv8-crc";

bool HwCrcSupported() {
#if defined(AT_HWCAP) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  // Compiled with +crc and no auxv to consult: the target mandates it.
  return true;
#endif
}

std::uint32_t Crc32cRawHw(std::uint32_t crc, const std::uint8_t* data,
                          std::size_t len) {
  while (len >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = __crc32cd(crc, chunk);
    data += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = __crc32cb(crc, *data);
    ++data;
    --len;
  }
  return crc;
}
#else
#define CLOUDDNS_CRC32C_HW 0
#endif

using Crc32cRawFn = std::uint32_t (*)(std::uint32_t, const std::uint8_t*,
                                      std::size_t);

struct Crc32cDispatch {
  Crc32cRawFn fn;
  const char* name;
};

/// Dispatch rule (DESIGN.md §10): the hardware kernel is used only when
/// the CPU advertises it AND it reproduces the software table's result on
/// a known-answer vector ("123456789" -> 0xe3069283). Any disagreement —
/// miscompilation, misreported feature bit — silently falls back to
/// software, so file bytes can never depend on which kernel won.
Crc32cDispatch PickCrc32cKernel() {
#if CLOUDDNS_CRC32C_HW
  if (HwCrcSupported()) {
    static constexpr std::uint8_t kVector[] = {'1', '2', '3', '4', '5',
                                               '6', '7', '8', '9'};
    constexpr std::uint32_t kKnownAnswer = 0xe3069283u;
    const std::uint32_t sw = ~Crc32cRawSoftware(~0u, kVector, sizeof(kVector));
    const std::uint32_t hw = ~Crc32cRawHw(~0u, kVector, sizeof(kVector));
    if (sw == kKnownAnswer && hw == kKnownAnswer) {
      return {&Crc32cRawHw, kHwCrcName};
    }
  }
#endif
  return {&Crc32cRawSoftware, "software"};
}

const Crc32cDispatch& Crc32cKernel() {
  static const Crc32cDispatch dispatch = PickCrc32cKernel();
  return dispatch;
}

// GF(2) matrix helpers for Crc32cCombine: a CRC over k zero bytes is a
// linear map on the 32-bit state, so appending len_b bytes to A is
// "multiply crc_a by the zero-byte matrix raised to len_b" — computed in
// O(log len_b) squarings (the zlib crc32_combine construction, re-derived
// for the Castagnoli polynomial).
std::uint32_t Gf2MatrixTimes(const std::uint32_t mat[32], std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1u) sum ^= mat[i];
  }
  return sum;
}

void Gf2MatrixSquare(std::uint32_t square[32], const std::uint32_t mat[32]) {
  for (int i = 0; i < 32; ++i) square[i] = Gf2MatrixTimes(mat, mat[i]);
}

}  // namespace

std::uint32_t Crc32c(const std::uint8_t* data, std::size_t len,
                     std::uint32_t seed) {
  return ~Crc32cKernel().fn(~seed, data, len);
}

std::uint32_t Crc32c(const std::vector<std::uint8_t>& data,
                     std::uint32_t seed) {
  return Crc32c(data.data(), data.size(), seed);
}

std::uint32_t Crc32cSoftware(const std::uint8_t* data, std::size_t len,
                             std::uint32_t seed) {
  return ~Crc32cRawSoftware(~seed, data, len);
}

const char* Crc32cBackend() { return Crc32cKernel().name; }

std::uint32_t Crc32cCombine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) {
  if (len_b == 0) return crc_a;
  std::uint32_t even[32];
  std::uint32_t odd[32];
  // odd := the map "advance the CRC register by one zero bit".
  odd[0] = kCrc32cPoly;
  std::uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  // Square twice: even = 2 zero bits, odd = 4 zero bits; the loop below
  // then walks len_b's bits, squaring to 8, 16, 32, ... zero-BYTE shifts.
  Gf2MatrixSquare(even, odd);
  Gf2MatrixSquare(odd, even);
  std::uint64_t len = len_b;
  do {
    Gf2MatrixSquare(even, odd);
    if (len & 1u) crc_a = Gf2MatrixTimes(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1u) crc_a = Gf2MatrixTimes(odd, crc_a);
    len >>= 1;
  } while (len != 0);
  return crc_a ^ crc_b;
}

// ---------------------------------------------------------------------------
// Framing

std::vector<std::uint8_t> WrapFrame(std::uint32_t content_tag,
                                    const std::vector<std::uint8_t>& payload) {
  ScopedPhaseTimer phase(Phase::kEncode);
  constexpr std::size_t kHeaderSize = sizeof(kFrameMagic) + 4 + 4 + 8;
  const std::size_t blocks =
      (payload.size() + kFrameBlockSize - 1) / kFrameBlockSize;
  std::vector<std::uint8_t> out(kHeaderSize + payload.size() + blocks * 8 + 8);
  std::memcpy(out.data(), kFrameMagic, sizeof(kFrameMagic));
  StoreU32(out.data() + sizeof(kFrameMagic), kFrameVersion);
  StoreU32(out.data() + sizeof(kFrameMagic) + 4, content_tag);
  StoreU64(out.data() + sizeof(kFrameMagic) + 8, payload.size());
  // Every block before the last is exactly kFrameBlockSize, so block b's
  // source and destination offsets are pure functions of b — workers fill
  // disjoint output regions and the assembled bytes cannot depend on
  // scheduling (DESIGN.md §14).
  std::vector<std::uint32_t> block_crcs(blocks);
  ThreadPool::Shared().ParallelFor(
      blocks, EffectiveThreads(0), [&](std::size_t b) {
        const std::size_t src = b * kFrameBlockSize;
        const std::size_t len = std::min(kFrameBlockSize, payload.size() - src);
        const std::uint32_t crc = Crc32c(payload.data() + src, len);
        std::uint8_t* dst = out.data() + kHeaderSize + src + b * 8;
        StoreU32(dst, static_cast<std::uint32_t>(len));
        StoreU32(dst + 4, crc);
        std::memcpy(dst + 8, payload.data() + src, len);
        block_crcs[b] = crc;
      });
  // Whole-payload trailer CRC, derived from the per-block CRCs instead of
  // a second pass over the bytes; Crc32cCombine makes the two identical.
  std::uint32_t payload_crc = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t src = b * kFrameBlockSize;
    const std::size_t len = std::min(kFrameBlockSize, payload.size() - src);
    payload_crc = Crc32cCombine(payload_crc, block_crcs[b], len);
  }
  std::uint8_t* trailer =
      out.data() + kHeaderSize + payload.size() + blocks * 8;
  StoreU32(trailer, kTrailerMagic);
  StoreU32(trailer + 4, payload_crc);
  return out;
}

IoStatus UnwrapFrame(const std::vector<std::uint8_t>& bytes,
                     std::uint32_t expected_tag,
                     std::vector<std::uint8_t>& payload, bool& framed,
                     std::uint32_t* tag_out) {
  ScopedPhaseTimer phase(Phase::kEncode);
  framed = false;
  if (bytes.size() < sizeof(kFrameMagic) ||
      !std::equal(std::begin(kFrameMagic), std::end(kFrameMagic),
                  bytes.begin())) {
    return IoStatus::Ok();  // legacy unframed payload
  }
  framed = true;
  std::size_t pos = sizeof(kFrameMagic);
  std::uint32_t version = 0;
  std::uint32_t tag = 0;
  std::uint64_t payload_len = 0;
  if (!GetU32(bytes, pos, version) || !GetU32(bytes, pos, tag) ||
      !GetU64(bytes, pos, payload_len)) {
    return IoStatus::Error(IoCode::kBadFrame, "frame header truncated");
  }
  if (version != kFrameVersion) {
    return IoStatus::Error(IoCode::kBadVersion,
                           "frame version " + std::to_string(version));
  }
  if (tag_out != nullptr) *tag_out = tag;
  if (expected_tag != kTagAny && tag != expected_tag) {
    return IoStatus::Error(IoCode::kBadTag,
                           "content tag mismatch: file holds a different "
                           "artifact kind");
  }
  if (payload_len > bytes.size()) {
    return IoStatus::Error(IoCode::kTruncated,
                           "declared payload longer than the file");
  }
  // Index pass: walk the block headers serially, bounds-checking exactly
  // as the serial decoder did. CRC verification and payload assembly then
  // fan out per block — the expensive work — while error reporting stays
  // deterministic: the first failing block IN FILE ORDER is reported, not
  // the first to be noticed by a worker (DESIGN.md §14).
  struct BlockRef {
    std::size_t src;
    std::size_t dst;
    std::uint32_t len;
    std::uint32_t crc;
  };
  std::vector<BlockRef> index;
  index.reserve(
      static_cast<std::size_t>(payload_len / kFrameBlockSize) + 1);
  std::uint64_t indexed = 0;
  while (indexed < payload_len) {
    std::uint32_t block_len = 0;
    std::uint32_t block_crc = 0;
    if (!GetU32(bytes, pos, block_len) || !GetU32(bytes, pos, block_crc)) {
      return IoStatus::Error(IoCode::kTruncated, "block header truncated");
    }
    if (block_len == 0 || block_len > kFrameBlockSize ||
        block_len > payload_len - indexed ||
        pos + block_len > bytes.size()) {
      return IoStatus::Error(IoCode::kTruncated,
                             "block exceeds declared payload/file bounds");
    }
    index.push_back({pos, static_cast<std::size_t>(indexed), block_len,
                     block_crc});
    pos += block_len;
    indexed += block_len;
  }
  std::vector<std::uint8_t> assembled(static_cast<std::size_t>(payload_len));
  std::vector<std::uint8_t> bad(index.size(), 0);
  ThreadPool::Shared().ParallelFor(
      index.size(), EffectiveThreads(0), [&](std::size_t b) {
        const BlockRef& ref = index[b];
        if (Crc32c(bytes.data() + ref.src, ref.len) != ref.crc) {
          bad[b] = 1;
          return;
        }
        std::memcpy(assembled.data() + ref.dst, bytes.data() + ref.src,
                    ref.len);
      });
  for (std::size_t b = 0; b < index.size(); ++b) {
    if (bad[b]) {
      return IoStatus::Error(IoCode::kBlockCorrupt,
                             "block CRC mismatch at payload offset " +
                                 std::to_string(index[b].dst));
    }
  }
  std::uint32_t trailer_magic = 0;
  std::uint32_t payload_crc = 0;
  if (!GetU32(bytes, pos, trailer_magic) || !GetU32(bytes, pos, payload_crc)) {
    return IoStatus::Error(IoCode::kTruncated, "trailer truncated");
  }
  // Every block already matched its stored CRC, so combining the stored
  // block CRCs is exactly Crc32c(assembled) — no second pass needed.
  std::uint32_t combined = 0;
  for (const BlockRef& ref : index) {
    combined = Crc32cCombine(combined, ref.crc, ref.len);
  }
  if (trailer_magic != kTrailerMagic || payload_crc != combined) {
    return IoStatus::Error(IoCode::kTrailerCorrupt,
                           "whole-payload CRC/trailer mismatch");
  }
  payload = std::move(assembled);
  return IoStatus::Ok();
}

// ---------------------------------------------------------------------------
// Fault shim

const char* ToString(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kOpenFail: return "open-fail";
    case StorageFaultKind::kShortWrite: return "short-write";
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kEintrOnce: return "eintr-once";
    case StorageFaultKind::kFsyncFail: return "fsync-fail";
    case StorageFaultKind::kRenameFail: return "rename-fail";
    case StorageFaultKind::kBitFlipAfterCommit: return "bit-flip-after-commit";
    case StorageFaultKind::kTruncateAfterCommit:
      return "truncate-after-commit";
    case StorageFaultKind::kZeroAfterCommit: return "zero-after-commit";
  }
  return "unknown";
}

bool StorageFaultInjector::Consume(const std::string& path,
                                   StorageFaultKind kind,
                                   std::uint64_t* offset_out) {
  for (StorageFault& fault : faults_) {
    if (fault.kind != kind || fault.fire_count == 0) continue;
    if (path.find(fault.path_substring) == std::string::npos) continue;
    if (fault.fire_count > 0) --fault.fire_count;
    ++fired_;
    if (offset_out != nullptr) *offset_out = fault.offset;
    return true;
  }
  return false;
}

std::uint64_t StorageFaultInjector::DeriveOffset(
    const std::string& path, std::uint64_t explicit_offset,
    std::uint64_t size) const {
  if (explicit_offset != kAutoOffset) {
    return size == 0 ? 0 : explicit_offset % size;
  }
  if (size == 0) return 0;
  return SplitMix64(seed_ ^ Fnv1a64(path)) % size;
}

void SetStorageFaultInjector(StorageFaultInjector* injector) {
  g_injector = injector;
}

StorageFaultInjector* GetStorageFaultInjector() { return g_injector; }

// ---------------------------------------------------------------------------
// FileWriter

FileWriter::FileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  if (g_injector != nullptr &&
      g_injector->Consume(path_, StorageFaultKind::kOpenFail, nullptr)) {
    Fail(IoCode::kOpenFailed, "injected open failure for " + tmp_path_,
         EACCES);
    return;
  }
  // This class IS the checked-I/O primitive; the
  // raw handle never escapes and every result feeds status_.
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    Fail(IoCode::kOpenFailed, "cannot open " + tmp_path_, errno);
  }
}

FileWriter::~FileWriter() {
  if (!done_) Abort();
}

void FileWriter::Fail(IoCode code, std::string detail, int sys_errno) {
  if (!status_.ok()) return;  // first failure wins
  status_ = IoStatus::Error(code, std::move(detail), sys_errno);
}

void FileWriter::Append(const std::uint8_t* data, std::size_t len) {
  if (!status_.ok() || file_ == nullptr || len == 0) return;

  // Injected mid-buffer faults: a prefix lands on disk, then the write
  // fails (kShortWrite/kEnospc) or is merely interrupted (kEintrOnce —
  // the retry below must complete it).
  std::size_t write_len = len;
  bool injected_fail = false;
  bool injected_eintr = false;
  int injected_errno = 0;
  std::uint64_t fault_offset = kAutoOffset;
  if (g_injector != nullptr) {
    if (g_injector->Consume(path_, StorageFaultKind::kEnospc, &fault_offset)) {
      injected_fail = true;
      injected_errno = ENOSPC;
    } else if (g_injector->Consume(path_, StorageFaultKind::kShortWrite,
                                   &fault_offset)) {
      injected_fail = true;
      injected_errno = EIO;
    } else if (g_injector->Consume(path_, StorageFaultKind::kEintrOnce,
                                   &fault_offset)) {
      injected_eintr = true;
      injected_errno = EINTR;
    }
    if (injected_fail || injected_eintr) {
      write_len = static_cast<std::size_t>(
          g_injector->DeriveOffset(path_, fault_offset, len));
    }
  }

  std::size_t written = 0;
  for (int attempt = 0; attempt < 4 && written < write_len; ++attempt) {
    // The checked primitive itself.
    std::size_t n = std::fwrite(data + written, 1, write_len - written, file_);
    written += n;
    if (written < write_len && errno != EINTR) break;
  }
  offset_ += written;
  if (injected_fail) {
    Fail(IoCode::kWriteFailed,
         "fwrite wrote " + std::to_string(written) + "/" +
             std::to_string(len) + " bytes to " + tmp_path_,
         injected_errno);
    return;
  }
  if (written < write_len) {
    Fail(IoCode::kWriteFailed,
         "fwrite wrote " + std::to_string(written) + "/" +
             std::to_string(len) + " bytes to " + tmp_path_,
         errno);
    return;
  }
  if (injected_eintr && write_len < len) {
    // The interrupted call persisted a prefix; a robust writer resumes
    // where it left off. Recurse for the remainder (the fault has been
    // consumed, so this completes unless another fault is armed).
    Append(data + write_len, len - write_len);
  }
}

void FileWriter::Append(const std::vector<std::uint8_t>& bytes) {
  Append(bytes.data(), bytes.size());
}

IoStatus FileWriter::Commit() {
  done_ = true;
  if (file_ != nullptr) {
    if (status_.ok() && std::fflush(file_) != 0) {
      Fail(IoCode::kFlushFailed, "fflush " + tmp_path_, errno);
    }
    if (status_.ok()) {
      if (g_injector != nullptr &&
          g_injector->Consume(path_, StorageFaultKind::kFsyncFail, nullptr)) {
        Fail(IoCode::kSyncFailed, "injected fsync failure for " + tmp_path_,
             EIO);
      }
#ifndef _WIN32
      else if (::fsync(::fileno(file_)) != 0) {
        Fail(IoCode::kSyncFailed, "fsync " + tmp_path_, errno);
      }
#endif
    }
    const int close_result = std::fclose(file_);
    file_ = nullptr;
    if (status_.ok() && close_result != 0) {
      Fail(IoCode::kCloseFailed, "fclose " + tmp_path_, errno);
    }
  }
  if (!status_.ok()) {
    std::remove(tmp_path_.c_str());
    return status_;
  }
  if (g_injector != nullptr &&
      g_injector->Consume(path_, StorageFaultKind::kRenameFail, nullptr)) {
    std::remove(tmp_path_.c_str());
    Fail(IoCode::kRenameFailed, "injected rename failure for " + path_, EXDEV);
    return status_;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(tmp_path_.c_str());
    Fail(IoCode::kRenameFailed, "rename " + tmp_path_ + " -> " + path_,
         rename_errno);
    return status_;
  }
  // Post-commit corruption faults: the commit SUCCEEDS (that is the
  // point — bit rot is silent) and the next read must detect the damage.
  if (g_injector != nullptr) {
    std::uint64_t offset = kAutoOffset;
    for (StorageFaultKind kind : {StorageFaultKind::kBitFlipAfterCommit,
                                  StorageFaultKind::kTruncateAfterCommit,
                                  StorageFaultKind::kZeroAfterCommit}) {
      if (g_injector->Consume(path_, kind, &offset)) {
        CorruptCommittedFile(path_, kind, offset);
      }
    }
  }
  return status_;
}

void FileWriter::Abort() {
  done_ = true;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
}

// ---------------------------------------------------------------------------
// Whole-file helpers

IoStatus ReadFileBytes(const std::string& path,
                       std::vector<std::uint8_t>& out) {
  ScopedPhaseTimer phase(Phase::kIo);
  // The checked read primitive itself.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    const int open_errno = errno;
    return IoStatus::Error(
        open_errno == ENOENT ? IoCode::kNotFound : IoCode::kOpenFailed,
        "open " + path, open_errno);
  }
  IoStatus status;
  long size = -1;
  if (std::fseek(file, 0, SEEK_END) != 0 || (size = std::ftell(file)) < 0 ||
      std::fseek(file, 0, SEEK_SET) != 0) {
    status = IoStatus::Error(IoCode::kReadFailed, "seek " + path, errno);
  } else {
    out.resize(static_cast<std::size_t>(size));
    std::size_t read = out.empty()
                           ? 0
                           // checked primitive
                           : std::fread(out.data(), 1, out.size(), file);
    if (read != out.size()) {
      status = IoStatus::Error(IoCode::kReadFailed,
                               "fread read " + std::to_string(read) + "/" +
                                   std::to_string(out.size()) + " bytes of " +
                                   path,
                               errno);
    }
  }
  std::fclose(file);
  return status;
}

IoStatus WriteFileAtomic(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  ScopedPhaseTimer phase(Phase::kIo);
  FileWriter writer(path);
  writer.Append(bytes);
  return writer.Commit();
}

IoStatus WriteFramedFile(const std::string& path, std::uint32_t content_tag,
                         const std::vector<std::uint8_t>& payload) {
  return WriteFileAtomic(path, WrapFrame(content_tag, payload));
}

IoStatus ReadFramedFile(const std::string& path, std::uint32_t expected_tag,
                        std::vector<std::uint8_t>& payload, bool* framed_out) {
  std::vector<std::uint8_t> bytes;
  IoStatus status = ReadFileBytes(path, bytes);
  if (!status.ok()) return status;
  bool framed = false;
  status = UnwrapFrame(bytes, expected_tag, payload, framed);
  if (status.ok() && !framed) payload = std::move(bytes);
  if (framed_out != nullptr) *framed_out = framed;
  return status;
}

// ---------------------------------------------------------------------------
// Quarantine & recovery

std::string QuarantineFile(const std::string& path, const std::string& reason) {
  std::error_code ec;
  const fs::path source(path);
  const fs::path dir = source.parent_path() / ".quarantine";
  fs::create_directories(dir, ec);
  fs::path target;
  for (int n = 1; n < 10000; ++n) {
    fs::path candidate =
        dir / (source.filename().string() + "." + std::to_string(n));
    if (!fs::exists(candidate, ec)) {
      target = candidate;
      break;
    }
  }
  if (target.empty()) {
    fs::remove(source, ec);
    return "";
  }
  fs::rename(source, target, ec);
  if (ec) {
    // Cross-device or permission trouble: the one invariant is that the
    // corrupt artifact must not be re-read, so fall back to deleting it.
    fs::remove(source, ec);
    return "";
  }
  const std::string reason_path = target.string() + ".reason";
  // Best-effort breadcrumb; quarantine itself already succeeded.
  FileWriter writer(reason_path);
  const std::string text = "artifact: " + path + "\nreason: " + reason + "\n";
  writer.Append(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size());
  (void)writer.Commit();
  return target.string();
}

std::size_t RemoveStrandedTmpFiles(const std::string& dir) {
  std::error_code ec;
  std::size_t removed = 0;
  for (fs::directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code remove_ec;
      if (fs::remove(it->path(), remove_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace clouddns::base::io
