#include "base/io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace clouddns::base::io {
namespace {

namespace fs = std::filesystem;

constexpr char kFrameMagic[8] = {'C', 'L', 'D', 'F', 'R', 'A', 'M', '1'};
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kTrailerMagic = 0x43444e44;  // "CDND"

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
  PutU32(out, static_cast<std::uint32_t>(v));
}

bool GetU32(const std::vector<std::uint8_t>& in, std::size_t& pos,
            std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = (static_cast<std::uint32_t>(in[pos]) << 24) |
      (static_cast<std::uint32_t>(in[pos + 1]) << 16) |
      (static_cast<std::uint32_t>(in[pos + 2]) << 8) |
      static_cast<std::uint32_t>(in[pos + 3]);
  pos += 4;
  return true;
}

bool GetU64(const std::vector<std::uint8_t>& in, std::size_t& pos,
            std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!GetU32(in, pos, hi) || !GetU32(in, pos, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

/// Pure 64-bit mixers for seed-derived fault offsets. Not a statistical
/// generator — every output is a function of its input alone, which is
/// what keeps the fault sweep reproducible.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

StorageFaultInjector* g_injector = nullptr;

/// Applies a consumed post-commit fault to the final (renamed) file.
/// Failures here are ignored: the fault shim is simulating silent media
/// corruption, and the read path is what must notice.
void CorruptCommittedFile(const std::string& path, StorageFaultKind kind,
                          std::uint64_t offset) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return;
  if (kind == StorageFaultKind::kZeroAfterCommit) {
    fs::resize_file(path, 0, ec);
    return;
  }
  if (size == 0) return;
  const std::uint64_t at =
      g_injector ? g_injector->DeriveOffset(path, offset, size) : 0;
  if (kind == StorageFaultKind::kTruncateAfterCommit) {
    fs::resize_file(path, at, ec);
    return;
  }
  // kBitFlipAfterCommit
  // The fault shim itself mutates the committed
  // file in place; this is the simulated corruption, not a durability path.
  if (std::FILE* f = std::fopen(path.c_str(), "rb+")) {
    unsigned char byte = 0;
    if (std::fseek(f, static_cast<long>(at), SEEK_SET) == 0 &&
        std::fread(&byte, 1, 1, f) == 1) {
      byte = static_cast<unsigned char>(byte ^ 0x20u);
      if (std::fseek(f, static_cast<long>(at), SEEK_SET) == 0) {
        // Simulated bit rot; see above.
        (void)std::fwrite(&byte, 1, 1, f);
      }
    }
    std::fclose(f);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// IoStatus

const char* ToString(IoCode code) {
  switch (code) {
    case IoCode::kOk: return "ok";
    case IoCode::kNotFound: return "not-found";
    case IoCode::kOpenFailed: return "open-failed";
    case IoCode::kReadFailed: return "read-failed";
    case IoCode::kWriteFailed: return "write-failed";
    case IoCode::kFlushFailed: return "flush-failed";
    case IoCode::kSyncFailed: return "sync-failed";
    case IoCode::kCloseFailed: return "close-failed";
    case IoCode::kRenameFailed: return "rename-failed";
    case IoCode::kBadFrame: return "bad-frame";
    case IoCode::kBadVersion: return "bad-version";
    case IoCode::kBadTag: return "bad-tag";
    case IoCode::kBlockCorrupt: return "block-corrupt";
    case IoCode::kTruncated: return "truncated";
    case IoCode::kTrailerCorrupt: return "trailer-corrupt";
    case IoCode::kPayloadCorrupt: return "payload-corrupt";
  }
  return "unknown";
}

IoStatus IoStatus::Error(IoCode code, std::string detail, int sys_errno) {
  IoStatus status;
  status.code = code;
  status.sys_errno = sys_errno;
  status.detail = std::move(detail);
  return status;
}

std::string IoStatus::ToString() const {
  std::string text = io::ToString(code);
  if (sys_errno != 0) {
    text += " (";
    text += std::strerror(sys_errno);
    text += ")";
  }
  if (!detail.empty()) {
    text += ": ";
    text += detail;
  }
  return text;
}

// ---------------------------------------------------------------------------
// CRC32C

namespace {

struct Crc32cTable {
  std::uint32_t entries[256];
  Crc32cTable() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

std::uint32_t Crc32c(const std::uint8_t* data, std::size_t len,
                     std::uint32_t seed) {
  static const Crc32cTable table;
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ data[i]) & 0xffu];
  }
  return ~crc;
}

std::uint32_t Crc32c(const std::vector<std::uint8_t>& data,
                     std::uint32_t seed) {
  return Crc32c(data.data(), data.size(), seed);
}

// ---------------------------------------------------------------------------
// Framing

std::vector<std::uint8_t> WrapFrame(std::uint32_t content_tag,
                                    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  const std::size_t blocks =
      (payload.size() + kFrameBlockSize - 1) / kFrameBlockSize;
  out.reserve(sizeof(kFrameMagic) + 16 + payload.size() + blocks * 8 + 8);
  for (char c : kFrameMagic) out.push_back(static_cast<std::uint8_t>(c));
  PutU32(out, kFrameVersion);
  PutU32(out, content_tag);
  PutU64(out, payload.size());
  for (std::size_t pos = 0; pos < payload.size(); pos += kFrameBlockSize) {
    const std::size_t len = std::min(kFrameBlockSize, payload.size() - pos);
    PutU32(out, static_cast<std::uint32_t>(len));
    PutU32(out, Crc32c(payload.data() + pos, len));
    out.insert(out.end(), payload.begin() + static_cast<std::ptrdiff_t>(pos),
               payload.begin() + static_cast<std::ptrdiff_t>(pos + len));
  }
  PutU32(out, kTrailerMagic);
  PutU32(out, Crc32c(payload));
  return out;
}

IoStatus UnwrapFrame(const std::vector<std::uint8_t>& bytes,
                     std::uint32_t expected_tag,
                     std::vector<std::uint8_t>& payload, bool& framed,
                     std::uint32_t* tag_out) {
  framed = false;
  if (bytes.size() < sizeof(kFrameMagic) ||
      !std::equal(std::begin(kFrameMagic), std::end(kFrameMagic),
                  bytes.begin())) {
    return IoStatus::Ok();  // legacy unframed payload
  }
  framed = true;
  std::size_t pos = sizeof(kFrameMagic);
  std::uint32_t version = 0;
  std::uint32_t tag = 0;
  std::uint64_t payload_len = 0;
  if (!GetU32(bytes, pos, version) || !GetU32(bytes, pos, tag) ||
      !GetU64(bytes, pos, payload_len)) {
    return IoStatus::Error(IoCode::kBadFrame, "frame header truncated");
  }
  if (version != kFrameVersion) {
    return IoStatus::Error(IoCode::kBadVersion,
                           "frame version " + std::to_string(version));
  }
  if (tag_out != nullptr) *tag_out = tag;
  if (expected_tag != kTagAny && tag != expected_tag) {
    return IoStatus::Error(IoCode::kBadTag,
                           "content tag mismatch: file holds a different "
                           "artifact kind");
  }
  std::vector<std::uint8_t> assembled;
  if (payload_len > bytes.size()) {
    return IoStatus::Error(IoCode::kTruncated,
                           "declared payload longer than the file");
  }
  assembled.reserve(static_cast<std::size_t>(payload_len));
  while (assembled.size() < payload_len) {
    std::uint32_t block_len = 0;
    std::uint32_t block_crc = 0;
    if (!GetU32(bytes, pos, block_len) || !GetU32(bytes, pos, block_crc)) {
      return IoStatus::Error(IoCode::kTruncated, "block header truncated");
    }
    if (block_len == 0 || block_len > kFrameBlockSize ||
        block_len > payload_len - assembled.size() ||
        pos + block_len > bytes.size()) {
      return IoStatus::Error(IoCode::kTruncated,
                             "block exceeds declared payload/file bounds");
    }
    if (Crc32c(bytes.data() + pos, block_len) != block_crc) {
      return IoStatus::Error(
          IoCode::kBlockCorrupt,
          "block CRC mismatch at payload offset " +
              std::to_string(assembled.size()));
    }
    assembled.insert(assembled.end(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                     bytes.begin() + static_cast<std::ptrdiff_t>(pos) +
                         block_len);
    pos += block_len;
  }
  std::uint32_t trailer_magic = 0;
  std::uint32_t payload_crc = 0;
  if (!GetU32(bytes, pos, trailer_magic) || !GetU32(bytes, pos, payload_crc)) {
    return IoStatus::Error(IoCode::kTruncated, "trailer truncated");
  }
  if (trailer_magic != kTrailerMagic || payload_crc != Crc32c(assembled)) {
    return IoStatus::Error(IoCode::kTrailerCorrupt,
                           "whole-payload CRC/trailer mismatch");
  }
  payload = std::move(assembled);
  return IoStatus::Ok();
}

// ---------------------------------------------------------------------------
// Fault shim

const char* ToString(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kOpenFail: return "open-fail";
    case StorageFaultKind::kShortWrite: return "short-write";
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kEintrOnce: return "eintr-once";
    case StorageFaultKind::kFsyncFail: return "fsync-fail";
    case StorageFaultKind::kRenameFail: return "rename-fail";
    case StorageFaultKind::kBitFlipAfterCommit: return "bit-flip-after-commit";
    case StorageFaultKind::kTruncateAfterCommit:
      return "truncate-after-commit";
    case StorageFaultKind::kZeroAfterCommit: return "zero-after-commit";
  }
  return "unknown";
}

bool StorageFaultInjector::Consume(const std::string& path,
                                   StorageFaultKind kind,
                                   std::uint64_t* offset_out) {
  for (StorageFault& fault : faults_) {
    if (fault.kind != kind || fault.fire_count == 0) continue;
    if (path.find(fault.path_substring) == std::string::npos) continue;
    if (fault.fire_count > 0) --fault.fire_count;
    ++fired_;
    if (offset_out != nullptr) *offset_out = fault.offset;
    return true;
  }
  return false;
}

std::uint64_t StorageFaultInjector::DeriveOffset(
    const std::string& path, std::uint64_t explicit_offset,
    std::uint64_t size) const {
  if (explicit_offset != kAutoOffset) {
    return size == 0 ? 0 : explicit_offset % size;
  }
  if (size == 0) return 0;
  return SplitMix64(seed_ ^ Fnv1a64(path)) % size;
}

void SetStorageFaultInjector(StorageFaultInjector* injector) {
  g_injector = injector;
}

StorageFaultInjector* GetStorageFaultInjector() { return g_injector; }

// ---------------------------------------------------------------------------
// FileWriter

FileWriter::FileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  if (g_injector != nullptr &&
      g_injector->Consume(path_, StorageFaultKind::kOpenFail, nullptr)) {
    Fail(IoCode::kOpenFailed, "injected open failure for " + tmp_path_,
         EACCES);
    return;
  }
  // This class IS the checked-I/O primitive; the
  // raw handle never escapes and every result feeds status_.
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    Fail(IoCode::kOpenFailed, "cannot open " + tmp_path_, errno);
  }
}

FileWriter::~FileWriter() {
  if (!done_) Abort();
}

void FileWriter::Fail(IoCode code, std::string detail, int sys_errno) {
  if (!status_.ok()) return;  // first failure wins
  status_ = IoStatus::Error(code, std::move(detail), sys_errno);
}

void FileWriter::Append(const std::uint8_t* data, std::size_t len) {
  if (!status_.ok() || file_ == nullptr || len == 0) return;

  // Injected mid-buffer faults: a prefix lands on disk, then the write
  // fails (kShortWrite/kEnospc) or is merely interrupted (kEintrOnce —
  // the retry below must complete it).
  std::size_t write_len = len;
  bool injected_fail = false;
  bool injected_eintr = false;
  int injected_errno = 0;
  std::uint64_t fault_offset = kAutoOffset;
  if (g_injector != nullptr) {
    if (g_injector->Consume(path_, StorageFaultKind::kEnospc, &fault_offset)) {
      injected_fail = true;
      injected_errno = ENOSPC;
    } else if (g_injector->Consume(path_, StorageFaultKind::kShortWrite,
                                   &fault_offset)) {
      injected_fail = true;
      injected_errno = EIO;
    } else if (g_injector->Consume(path_, StorageFaultKind::kEintrOnce,
                                   &fault_offset)) {
      injected_eintr = true;
      injected_errno = EINTR;
    }
    if (injected_fail || injected_eintr) {
      write_len = static_cast<std::size_t>(
          g_injector->DeriveOffset(path_, fault_offset, len));
    }
  }

  std::size_t written = 0;
  for (int attempt = 0; attempt < 4 && written < write_len; ++attempt) {
    // The checked primitive itself.
    std::size_t n = std::fwrite(data + written, 1, write_len - written, file_);
    written += n;
    if (written < write_len && errno != EINTR) break;
  }
  offset_ += written;
  if (injected_fail) {
    Fail(IoCode::kWriteFailed,
         "fwrite wrote " + std::to_string(written) + "/" +
             std::to_string(len) + " bytes to " + tmp_path_,
         injected_errno);
    return;
  }
  if (written < write_len) {
    Fail(IoCode::kWriteFailed,
         "fwrite wrote " + std::to_string(written) + "/" +
             std::to_string(len) + " bytes to " + tmp_path_,
         errno);
    return;
  }
  if (injected_eintr && write_len < len) {
    // The interrupted call persisted a prefix; a robust writer resumes
    // where it left off. Recurse for the remainder (the fault has been
    // consumed, so this completes unless another fault is armed).
    Append(data + write_len, len - write_len);
  }
}

void FileWriter::Append(const std::vector<std::uint8_t>& bytes) {
  Append(bytes.data(), bytes.size());
}

IoStatus FileWriter::Commit() {
  done_ = true;
  if (file_ != nullptr) {
    if (status_.ok() && std::fflush(file_) != 0) {
      Fail(IoCode::kFlushFailed, "fflush " + tmp_path_, errno);
    }
    if (status_.ok()) {
      if (g_injector != nullptr &&
          g_injector->Consume(path_, StorageFaultKind::kFsyncFail, nullptr)) {
        Fail(IoCode::kSyncFailed, "injected fsync failure for " + tmp_path_,
             EIO);
      }
#ifndef _WIN32
      else if (::fsync(::fileno(file_)) != 0) {
        Fail(IoCode::kSyncFailed, "fsync " + tmp_path_, errno);
      }
#endif
    }
    const int close_result = std::fclose(file_);
    file_ = nullptr;
    if (status_.ok() && close_result != 0) {
      Fail(IoCode::kCloseFailed, "fclose " + tmp_path_, errno);
    }
  }
  if (!status_.ok()) {
    std::remove(tmp_path_.c_str());
    return status_;
  }
  if (g_injector != nullptr &&
      g_injector->Consume(path_, StorageFaultKind::kRenameFail, nullptr)) {
    std::remove(tmp_path_.c_str());
    Fail(IoCode::kRenameFailed, "injected rename failure for " + path_, EXDEV);
    return status_;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(tmp_path_.c_str());
    Fail(IoCode::kRenameFailed, "rename " + tmp_path_ + " -> " + path_,
         rename_errno);
    return status_;
  }
  // Post-commit corruption faults: the commit SUCCEEDS (that is the
  // point — bit rot is silent) and the next read must detect the damage.
  if (g_injector != nullptr) {
    std::uint64_t offset = kAutoOffset;
    for (StorageFaultKind kind : {StorageFaultKind::kBitFlipAfterCommit,
                                  StorageFaultKind::kTruncateAfterCommit,
                                  StorageFaultKind::kZeroAfterCommit}) {
      if (g_injector->Consume(path_, kind, &offset)) {
        CorruptCommittedFile(path_, kind, offset);
      }
    }
  }
  return status_;
}

void FileWriter::Abort() {
  done_ = true;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
}

// ---------------------------------------------------------------------------
// Whole-file helpers

IoStatus ReadFileBytes(const std::string& path,
                       std::vector<std::uint8_t>& out) {
  // The checked read primitive itself.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    const int open_errno = errno;
    return IoStatus::Error(
        open_errno == ENOENT ? IoCode::kNotFound : IoCode::kOpenFailed,
        "open " + path, open_errno);
  }
  IoStatus status;
  long size = -1;
  if (std::fseek(file, 0, SEEK_END) != 0 || (size = std::ftell(file)) < 0 ||
      std::fseek(file, 0, SEEK_SET) != 0) {
    status = IoStatus::Error(IoCode::kReadFailed, "seek " + path, errno);
  } else {
    out.resize(static_cast<std::size_t>(size));
    std::size_t read = out.empty()
                           ? 0
                           // checked primitive
                           : std::fread(out.data(), 1, out.size(), file);
    if (read != out.size()) {
      status = IoStatus::Error(IoCode::kReadFailed,
                               "fread read " + std::to_string(read) + "/" +
                                   std::to_string(out.size()) + " bytes of " +
                                   path,
                               errno);
    }
  }
  std::fclose(file);
  return status;
}

IoStatus WriteFileAtomic(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  FileWriter writer(path);
  writer.Append(bytes);
  return writer.Commit();
}

IoStatus WriteFramedFile(const std::string& path, std::uint32_t content_tag,
                         const std::vector<std::uint8_t>& payload) {
  return WriteFileAtomic(path, WrapFrame(content_tag, payload));
}

IoStatus ReadFramedFile(const std::string& path, std::uint32_t expected_tag,
                        std::vector<std::uint8_t>& payload, bool* framed_out) {
  std::vector<std::uint8_t> bytes;
  IoStatus status = ReadFileBytes(path, bytes);
  if (!status.ok()) return status;
  bool framed = false;
  status = UnwrapFrame(bytes, expected_tag, payload, framed);
  if (status.ok() && !framed) payload = std::move(bytes);
  if (framed_out != nullptr) *framed_out = framed;
  return status;
}

// ---------------------------------------------------------------------------
// Quarantine & recovery

std::string QuarantineFile(const std::string& path, const std::string& reason) {
  std::error_code ec;
  const fs::path source(path);
  const fs::path dir = source.parent_path() / ".quarantine";
  fs::create_directories(dir, ec);
  fs::path target;
  for (int n = 1; n < 10000; ++n) {
    fs::path candidate =
        dir / (source.filename().string() + "." + std::to_string(n));
    if (!fs::exists(candidate, ec)) {
      target = candidate;
      break;
    }
  }
  if (target.empty()) {
    fs::remove(source, ec);
    return "";
  }
  fs::rename(source, target, ec);
  if (ec) {
    // Cross-device or permission trouble: the one invariant is that the
    // corrupt artifact must not be re-read, so fall back to deleting it.
    fs::remove(source, ec);
    return "";
  }
  const std::string reason_path = target.string() + ".reason";
  // Best-effort breadcrumb; quarantine itself already succeeded.
  FileWriter writer(reason_path);
  const std::string text = "artifact: " + path + "\nreason: " + reason + "\n";
  writer.Append(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size());
  (void)writer.Commit();
  return target.string();
}

std::size_t RemoveStrandedTmpFiles(const std::string& dir) {
  std::error_code ec;
  std::size_t removed = 0;
  for (fs::directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code remove_ec;
      if (fs::remove(it->path(), remove_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace clouddns::base::io
