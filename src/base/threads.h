// Shared worker-thread infrastructure (DESIGN.md §13). EffectiveThreads()
// resolves a configured worker count against the CLOUDDNS_THREADS
// environment override and the hardware, and ThreadPool::Shared() owns the
// one process-wide helper set that both the scenario engine
// (cloud::Scenario::Run) and the analytics scanner
// (entrada::AnalysisPlan::Execute) draw from — so a thread-scaling sweep
// pays thread creation once per process instead of once per run, and the
// two layers can never oversubscribe each other with private pools.
//
// Determinism: the pool only schedules; every task writes state owned by
// its task index, and results are reduced in task order by the caller.
// Which helper runs which task is deliberately unobservable in any output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace clouddns::base {

/// Worker count for a parallel stage: an explicit `configured` value wins;
/// otherwise the CLOUDDNS_THREADS environment variable (re-read on every
/// call — the bench sweep mutates it between runs); otherwise the
/// hardware concurrency. Never returns 0.
inline std::size_t EffectiveThreads(std::size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("CLOUDDNS_THREADS")) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && value > 0) return static_cast<std::size_t>(value);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// A lazily started, process-wide helper pool. ParallelFor(tasks, cap, fn)
/// runs fn(0) .. fn(tasks-1) exactly once each, with the calling thread
/// participating and at most cap-1 pool helpers assisting; tasks are drawn
/// dynamically from a shared counter, so uneven task costs balance without
/// affecting which state each task touches. The caller returns only after
/// every task has finished (helper writes are ordered before the return by
/// the pool mutex, so the caller may read task results immediately).
///
/// Nested ParallelFor from inside a task runs inline on that worker — an
/// inner stage can never deadlock waiting for helpers the outer stage
/// already occupies.
class ThreadPool {
 public:
  static ThreadPool& Shared() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Helper threads the pool will own once started (callers excluded).
  [[nodiscard]] std::size_t helper_count() const { return helper_target_; }

  /// Execution lanes that can make simultaneous progress: the physical
  /// concurrency, clamped to caller + helpers. On a single-core host this
  /// is 1 even though one helper exists (the helper is there for TSan
  /// coverage, not speed) — per-worker state fan-out should not exceed it.
  [[nodiscard]] std::size_t lane_count() const {
    unsigned hw = std::thread::hardware_concurrency();
    std::size_t lanes = hw > 0 ? hw : 1;
    return lanes < helper_target_ + 1 ? lanes : helper_target_ + 1;
  }

  void ParallelFor(std::size_t tasks, std::size_t max_workers,
                   const std::function<void(std::size_t)>& fn) {
    if (tasks == 0) return;
    if (tasks == 1 || max_workers <= 1 || in_pool_task_ ||
        helper_target_ == 0) {
      for (std::size_t i = 0; i < tasks; ++i) fn(i);
      return;
    }
    EnsureStarted();
    // One job at a time; concurrent top-level callers queue here.
    std::lock_guard<std::mutex> serialize(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      job_tasks_ = tasks;
      next_task_.store(0, std::memory_order_relaxed);
      claim_cap_ = max_workers - 1;
      if (claim_cap_ > helpers_.size()) claim_cap_ = helpers_.size();
      if (claim_cap_ > tasks - 1) claim_cap_ = tasks - 1;
      claimed_ = 0;
      active_ = 0;
      ++epoch_;
    }
    cv_.notify_all();
    DrainTasks(tasks, fn);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    // Helpers that wake late see no job and go back to sleep; `fn` must
    // not be touched after ParallelFor returns.
    job_ = nullptr;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& helper : helpers_) helper.join();
  }

 private:
  ThreadPool() {
    unsigned hw = std::thread::hardware_concurrency();
    // At least one helper even on single-core hosts, so the cross-thread
    // paths stay exercised (and TSan-checked) everywhere.
    helper_target_ = (hw > 2 ? hw : 2) - 1;
  }

  void EnsureStarted() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!helpers_.empty() || stop_) return;
    helpers_.reserve(helper_target_);
    for (std::size_t i = 0; i < helper_target_; ++i) {
      helpers_.emplace_back([this] { HelperLoop(); });
    }
  }

  /// Pulls task indices until the shared counter runs dry. Both the caller
  /// and every claiming helper execute this same loop.
  void DrainTasks(std::size_t tasks,
                  const std::function<void(std::size_t)>& fn) {
    in_pool_task_ = true;
    for (;;) {
      std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks) break;
      fn(i);
    }
    in_pool_task_ = false;
  }

  void HelperLoop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [&] { return stop_ || (job_ != nullptr && epoch_ != seen); });
        if (stop_) return;
        seen = epoch_;
        if (claimed_ >= claim_cap_) continue;
        if (next_task_.load(std::memory_order_relaxed) >= job_tasks_) continue;
        ++claimed_;
        ++active_;
        fn = job_;
        tasks = job_tasks_;
      }
      DrainTasks(tasks, *fn);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  // The pool intentionally uses std::mutex/std::condition_variable rather
  // than base::Mutex: helpers block on a condition variable, which the
  // annotated wrapper does not expose.
  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  // lint:allow(raw-thread): this pool IS the sanctioned thread owner — Scenario::Run and AnalysisPlan::Execute route their parallelism through it
  std::vector<std::thread> helpers_;
  std::size_t helper_target_ = 0;

  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mu_
  std::size_t job_tasks_ = 0;                              // guarded by mu_
  std::atomic<std::size_t> next_task_{0};
  std::size_t claim_cap_ = 0;  // guarded by mu_
  std::size_t claimed_ = 0;    // guarded by mu_
  std::size_t active_ = 0;     // guarded by mu_
  std::uint64_t epoch_ = 0;    // guarded by mu_
  bool stop_ = false;          // guarded by mu_

  static thread_local bool in_pool_task_;
};

inline thread_local bool ThreadPool::in_pool_task_ = false;

}  // namespace clouddns::base
