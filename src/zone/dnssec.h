// Mock DNSSEC signer and verifier.
//
// The paper measures DNSSEC *query patterns* (DS/DNSKEY fetches by
// validating resolvers), not cryptography. We therefore substitute real
// RSA/ECDSA with a deterministic keyed hash: signatures are reproducible
// functions of (signer zone, owner name, type), so the resolver-side
// verifier can check them without any crypto library while the wire format
// stays bit-exact RFC 4034. DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "zone/zone.h"

namespace clouddns::zone {

/// Algorithm number we stamp into records (8 = RSASHA256; RSA-sized
/// signatures matter because they drive truncation at small EDNS sizes).
inline constexpr std::uint8_t kMockAlgorithm = 8;

/// Deterministic key tag for a zone's ZSK/KSK.
[[nodiscard]] std::uint16_t ZskTagFor(const dns::Name& zone_apex);
[[nodiscard]] std::uint16_t KskTagFor(const dns::Name& zone_apex);

/// Deterministic "signature" bytes over an RRset identity.
[[nodiscard]] std::vector<std::uint8_t> MockSignature(
    const dns::Name& signer, const dns::Name& owner, dns::RrType type);

/// Builds the apex DNSKEY RRset (one KSK, one ZSK) for a zone.
[[nodiscard]] std::vector<dns::ResourceRecord> MakeApexDnskeys(
    const dns::Name& zone_apex, std::uint32_t ttl);

/// Builds the DS record a parent publishes for a signed child.
[[nodiscard]] dns::ResourceRecord MakeDs(const dns::Name& child_apex,
                                         std::uint32_t ttl);

/// Signs every RRset in `zone`: attaches apex DNSKEYs and one RRSIG per
/// (owner, type) RRset. Idempotent signing is not supported; call once.
void SignZone(Zone& zone, std::uint32_t dnskey_ttl = 172800);

/// Verifies a mock RRSIG against the RRset identity it claims to cover.
[[nodiscard]] bool VerifyRrsig(const dns::RrsigRdata& sig,
                               const dns::Name& owner, dns::RrType type);

/// Checks that a DS record matches the child's mock KSK.
[[nodiscard]] bool VerifyDsMatchesKey(const dns::DsRdata& ds,
                                      const dns::Name& child_apex);

}  // namespace clouddns::zone
