// NSEC3 (RFC 5155) support: hashed authenticated denial of existence,
// which is what the real .nl zone uses (plain NSEC would allow trivial
// zone enumeration of a registry). The hash is mocked (like the rest of
// this library's DNSSEC crypto) but the machinery is faithful: salted,
// iterated hashing of the owner name, base32hex owner labels, a circular
// chain in hash order, and covering-record lookup for denials.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "zone/zone.h"

namespace clouddns::zone {

/// RFC 4648 §7 "extended hex" alphabet (0-9, a-v), the encoding NSEC3
/// owner labels use; no padding.
[[nodiscard]] std::string Base32HexEncode(
    const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::optional<std::vector<std::uint8_t>> Base32HexDecode(
    std::string_view text);

/// The RFC 5155 iterated, salted hash of a name (H(H(...H(owner||salt)...)
/// || salt), `iterations` extra rounds). 20 bytes, SHA-1-sized; the hash
/// core is this library's deterministic mock.
[[nodiscard]] std::vector<std::uint8_t> Nsec3Hash(
    const dns::Name& name, const std::vector<std::uint8_t>& salt,
    std::uint16_t iterations);

/// The NSEC3 record's owner: base32hex(hash).<zone apex>.
[[nodiscard]] dns::Name Nsec3OwnerName(const dns::Name& name,
                                       const dns::Name& zone_apex,
                                       const std::vector<std::uint8_t>& salt,
                                       std::uint16_t iterations);

struct Nsec3ChainConfig {
  std::uint16_t iterations = 5;
  std::vector<std::uint8_t> salt = {0xab, 0xcd};
  std::uint32_t ttl = 600;
};

/// Builds the zone's NSEC3 chain: one NSEC3 record per existing owner
/// name (type bitmap = the types present there), chained circularly in
/// hash order, plus the apex NSEC3PARAM. Call after all ordinary records
/// are added (like SignZone).
void AddNsec3Chain(Zone& zone, const Nsec3ChainConfig& config = {});

/// The NSEC3 record whose hash interval covers `qname` (for NXDOMAIN
/// proofs). Returns nullptr when the zone has no chain.
[[nodiscard]] const dns::ResourceRecord* FindCoveringNsec3(
    const Zone& zone, const dns::Name& qname);

}  // namespace clouddns::zone
