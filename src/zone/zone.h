// An authoritative DNS zone: the record database one authoritative server
// answers from, with the lookup semantics RFC 1034 §4.3.2 requires —
// answers, referrals at zone cuts, NXDOMAIN, and NODATA.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "dns/name.h"
#include "dns/record.h"
#include "dns/types.h"

namespace clouddns::zone {

/// What a lookup found; drives how the server builds its response.
enum class LookupStatus {
  kAnswer,      ///< Records of the requested type exist at the name.
  kDelegation,  ///< The name is at/under a zone cut: return the referral.
  kNxDomain,    ///< The name does not exist in the zone.
  kNoData,      ///< The name exists but has no records of that type.
  kNotInZone,   ///< The name is not under this zone's apex at all.
};

struct LookupResult {
  LookupStatus status = LookupStatus::kNotInZone;
  /// kAnswer: the matching RRset. kDelegation: the cut's NS RRset.
  std::vector<dns::ResourceRecord> records;
  /// kDelegation: glue A/AAAA for in-zone nameservers; kAnswer for NS at a
  /// cut is never produced (cuts take precedence below the apex).
  std::vector<dns::ResourceRecord> glue;
  /// kDelegation: DS records of the child, for DO=1 referrals.
  std::vector<dns::ResourceRecord> ds;
  /// kNxDomain / kNoData: the zone SOA for the negative response.
  std::vector<dns::ResourceRecord> soa;
  /// Name of the zone cut for delegations.
  dns::Name cut;
};

class Zone {
 public:
  explicit Zone(dns::Name apex) : apex_(std::move(apex)) {}

  // Movable (builders return zones by value) but not copyable: the
  // denial cache's mutex is held directly, so the moves are spelled out
  // in zone.cc — they lock the source while stealing its cache.
  Zone(Zone&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  Zone& operator=(Zone&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;

  [[nodiscard]] const dns::Name& apex() const { return apex_; }

  /// Adds one record. The record's name must be at or under the apex.
  /// Throws std::invalid_argument otherwise.
  void Add(dns::ResourceRecord record);

  /// Convenience: number of distinct owner names (the "zone size" the
  /// paper's Table 2 reports counts registered domains; see builders).
  [[nodiscard]] std::size_t name_count() const { return records_.size(); }
  [[nodiscard]] std::size_t record_count() const { return record_count_; }

  /// Performs the RFC 1034 lookup algorithm for qname/qtype.
  [[nodiscard]] LookupResult Lookup(const dns::Name& qname,
                                    dns::RrType qtype) const;

  /// Direct RRset access (exact name + type), no cut processing.
  [[nodiscard]] const std::vector<dns::ResourceRecord>* Find(
      const dns::Name& name, dns::RrType type) const;

  /// All names in the zone, unordered. Used by the mock signer.
  [[nodiscard]] std::vector<dns::Name> Names() const;

  /// All records at a name, across types.
  [[nodiscard]] std::vector<dns::ResourceRecord> RecordsAt(
      const dns::Name& name) const;

  /// True when the zone has an apex DNSKEY (i.e. it was signed).
  [[nodiscard]] bool IsSigned() const;

  /// The NSEC neighbours of a nonexistent name: the greatest existing name
  /// canonically before `qname` and the least one after (wrapping to the
  /// apex past the zone's last name, per RFC 4034 §6.1 ordering). Used by
  /// the server to serve *range* denials, which is what makes aggressive
  /// NSEC caching (RFC 8198) possible at resolvers.
  struct DenialRange {
    dns::Name prev;
    dns::Name next;
  };
  [[nodiscard]] DenialRange DenialNeighbors(const dns::Name& qname) const;

 private:
  using TypeMap = std::map<dns::RrType, std::vector<dns::ResourceRecord>>;

  dns::Name apex_;
  std::unordered_map<std::string, TypeMap> records_;  // key: Name::ToKey()
  // Owner-name keys that exist (including empty non-terminals' children),
  // for NXDOMAIN vs NODATA decisions.
  std::unordered_map<std::string, dns::Name> names_;
  std::size_t record_count_ = 0;
  // Canonically sorted owner names, built lazily for DenialNeighbors and
  // invalidated by Add. Zones are shared read-only across parallel scenario
  // shards, so the cache is handed out as an immutable snapshot under a
  // lock; the search itself runs lock-free on the snapshot.
  [[nodiscard]] std::shared_ptr<const std::vector<dns::Name>> SortedNames()
      const EXCLUDES(denial_mutex_);
  mutable base::Mutex denial_mutex_;
  mutable std::shared_ptr<const std::vector<dns::Name>> sorted_names_
      GUARDED_BY(denial_mutex_);

  /// Finds the closest enclosing zone cut strictly below the apex, if any.
  [[nodiscard]] std::optional<dns::Name> FindZoneCut(
      const dns::Name& qname) const;
  [[nodiscard]] bool NameExists(const dns::Name& name) const;
};

}  // namespace clouddns::zone
