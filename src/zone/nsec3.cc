#include "zone/nsec3.h"

#include <algorithm>
#include <map>

namespace clouddns::zone {
namespace {

constexpr char kAlphabet[] = "0123456789abcdefghijklmnopqrstuv";

int AlphabetIndex(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  char lower = dns::AsciiLower(c);
  if (lower >= 'a' && lower <= 'v') return lower - 'a' + 10;
  return -1;
}

/// 20-byte deterministic mock hash (SHA-1-sized) over raw bytes.
std::vector<std::uint8_t> MockDigest(const std::vector<std::uint8_t>& data) {
  std::uint64_t h1 = 1469598103934665603ull;
  std::uint64_t h2 = 0x9e3779b97f4a7c15ull;
  for (std::uint8_t byte : data) {
    h1 = (h1 ^ byte) * 1099511628211ull;
    h2 = (h2 + byte) * 6364136223846793005ull + 1442695040888963407ull;
  }
  std::vector<std::uint8_t> out(20);
  std::uint64_t h3 = h1 ^ (h2 << 1);
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(h1 >> (8 * i));
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(8 + i)] =
      static_cast<std::uint8_t>(h2 >> (8 * i));
  for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(16 + i)] =
      static_cast<std::uint8_t>(h3 >> (8 * i));
  return out;
}

}  // namespace

std::string Base32HexEncode(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  out.reserve((bytes.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t byte : bytes) {
    buffer = (buffer << 8) | byte;
    bits += 8;
    while (bits >= 5) {
      out += kAlphabet[(buffer >> (bits - 5)) & 0x1f];
      bits -= 5;
    }
  }
  if (bits > 0) {
    out += kAlphabet[(buffer << (5 - bits)) & 0x1f];
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Base32HexDecode(
    std::string_view text) {
  std::vector<std::uint8_t> out;
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    int value = AlphabetIndex(c);
    if (value < 0) return std::nullopt;
    buffer = (buffer << 5) | static_cast<std::uint32_t>(value);
    bits += 5;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(buffer >> (bits - 8)));
      bits -= 8;
    }
  }
  // Leftover bits must be zero padding.
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> Nsec3Hash(const dns::Name& name,
                                    const std::vector<std::uint8_t>& salt,
                                    std::uint16_t iterations) {
  // RFC 5155 §5: IH(0) = H(owner-wire || salt); IH(k) = H(IH(k-1) || salt).
  std::vector<std::uint8_t> input;
  dns::WireWriter writer(input);
  writer.WriteName(name, /*compress=*/false);
  // Canonicalize: wire names are case-preserving, hashing is not.
  for (auto& byte : input) {
    byte = static_cast<std::uint8_t>(
        dns::AsciiLower(static_cast<char>(byte)));
  }
  input.insert(input.end(), salt.begin(), salt.end());
  std::vector<std::uint8_t> digest = MockDigest(input);
  for (std::uint16_t i = 0; i < iterations; ++i) {
    digest.insert(digest.end(), salt.begin(), salt.end());
    digest = MockDigest(digest);
  }
  return digest;
}

dns::Name Nsec3OwnerName(const dns::Name& name, const dns::Name& zone_apex,
                         const std::vector<std::uint8_t>& salt,
                         std::uint16_t iterations) {
  return zone_apex.Child(
      Base32HexEncode(Nsec3Hash(name, salt, iterations)));
}

void AddNsec3Chain(Zone& zone, const Nsec3ChainConfig& config) {
  // Hash every existing owner name and sort by hash value; the chain's
  // next pointers wrap around.
  struct Entry {
    std::vector<std::uint8_t> hash;
    dns::Name owner;
  };
  std::vector<Entry> entries;
  for (const auto& name : zone.Names()) {
    entries.push_back(
        {Nsec3Hash(name, config.salt, config.iterations), name});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.hash < b.hash; });

  zone.Add(dns::ResourceRecord{
      zone.apex(), dns::RrType::kNsec3Param, dns::RrClass::kIn, config.ttl,
      dns::Nsec3ParamRdata{1, 0, config.iterations, config.salt}});

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    const Entry& next = entries[(i + 1) % entries.size()];

    dns::Nsec3Rdata rdata;
    rdata.hash_algorithm = 1;
    rdata.iterations = config.iterations;
    rdata.salt = config.salt;
    rdata.next_hashed_owner = next.hash;
    std::vector<dns::RrType> types;
    for (const auto& rr : zone.RecordsAt(entry.owner)) {
      types.push_back(rr.type);
    }
    std::sort(types.begin(), types.end());
    types.erase(std::unique(types.begin(), types.end()), types.end());
    rdata.types = std::move(types);

    zone.Add(dns::ResourceRecord{
        zone.apex().Child(Base32HexEncode(entry.hash)), dns::RrType::kNsec3,
        dns::RrClass::kIn, config.ttl, std::move(rdata)});
  }
}

const dns::ResourceRecord* FindCoveringNsec3(const Zone& zone,
                                             const dns::Name& qname) {
  const auto* params = zone.Find(zone.apex(), dns::RrType::kNsec3Param);
  if (params == nullptr || params->empty()) return nullptr;
  const auto& param = std::get<dns::Nsec3ParamRdata>(params->front().rdata);

  std::vector<std::uint8_t> target =
      Nsec3Hash(qname, param.salt, param.iterations);
  dns::Name owner = zone.apex().Child(Base32HexEncode(target));
  // Exact match means the name exists (no covering record needed).
  if (zone.Find(owner, dns::RrType::kNsec3) != nullptr) return nullptr;

  // Walk the chain records; covering = hash(owner) < target < next, with
  // wrap-around for the last interval. Linear scan: denial lookups are
  // rare relative to zone size in our use, and the zone's sorted-name
  // cache keys on owner names, not hash order.
  const dns::ResourceRecord* wrap_candidate = nullptr;
  for (const auto& name : zone.Names()) {
    const auto* rrset = zone.Find(name, dns::RrType::kNsec3);
    if (rrset == nullptr) continue;
    for (const auto& rr : *rrset) {
      auto own_hash = Base32HexDecode(rr.name.Label(0));
      if (!own_hash) continue;
      const auto& next_hash =
          std::get<dns::Nsec3Rdata>(rr.rdata).next_hashed_owner;
      if (*own_hash < target && target < next_hash) return &rr;
      // Last interval: next wraps to the smallest hash.
      if (next_hash < *own_hash &&
          (target > *own_hash || target < next_hash)) {
        wrap_candidate = &rr;
      }
    }
  }
  return wrap_candidate;
}

}  // namespace clouddns::zone
