// Zone master-file (presentation format, RFC 1035 §5) parsing and
// serialization: load a Zone from the textual format every DNS operator
// tool speaks, and dump one back out. Supports $ORIGIN/$TTL directives,
// '@' for the origin, relative and absolute names, ';' comments, and the
// record types this library models (A, AAAA, NS, CNAME, PTR, MX, TXT,
// SRV, SOA, DS, DNSKEY). Multi-line parentheses are supported for SOA.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "zone/zone.h"

namespace clouddns::zone {

struct MasterFileError {
  std::size_t line = 0;
  std::string message;
};

struct ParsedZone {
  std::optional<Zone> zone;  ///< Present when no fatal error occurred.
  std::vector<MasterFileError> errors;
};

/// Parses presentation-format text. `default_origin` seeds $ORIGIN (may be
/// overridden by a directive). The zone apex is taken from the SOA owner;
/// a file without a SOA is rejected.
[[nodiscard]] ParsedZone ParseMasterFile(std::string_view text,
                                         const dns::Name& default_origin);

/// Renders a zone in presentation format: SOA first, then the remaining
/// records in canonical owner order. Output re-parses to an equal zone.
[[nodiscard]] std::string ToMasterFile(const Zone& zone);

}  // namespace clouddns::zone
