#include "zone/zone.h"

#include <algorithm>
#include <stdexcept>

namespace clouddns::zone {

// Moves lock the *source* zone's mutex while stealing its denial cache;
// the destination is under construction (or exclusively owned by the
// caller), so its own mutex needs no lock. The analysis cannot model
// "other's mutex guards other's member", hence the escape hatch.
Zone::Zone(Zone&& other) noexcept
    : apex_(std::move(other.apex_)),
      records_(std::move(other.records_)),
      names_(std::move(other.names_)),
      record_count_(other.record_count_) {
  base::MutexLock lock(other.denial_mutex_);
  sorted_names_ = std::move(other.sorted_names_);
  other.record_count_ = 0;
}

Zone& Zone::operator=(Zone&& other) noexcept {
  if (this == &other) return *this;
  apex_ = std::move(other.apex_);
  records_ = std::move(other.records_);
  names_ = std::move(other.names_);
  record_count_ = other.record_count_;
  other.record_count_ = 0;
  base::MutexLock lock(other.denial_mutex_);
  sorted_names_ = std::move(other.sorted_names_);
  return *this;
}

void Zone::Add(dns::ResourceRecord record) {
  {
    base::MutexLock lock(denial_mutex_);
    sorted_names_.reset();
  }
  if (!record.name.IsSubdomainOf(apex_)) {
    throw std::invalid_argument("Zone::Add: " + record.name.ToString() +
                                " is outside zone " + apex_.ToString());
  }
  // Register the owner and every empty non-terminal up to the apex so
  // NXDOMAIN vs NODATA can be decided by existence checks.
  dns::Name walker = record.name;
  while (true) {
    auto [it, inserted] = names_.try_emplace(walker.ToKey(), walker);
    (void)it;
    if (!inserted || walker.Equals(apex_)) break;
    walker = walker.Parent();
  }
  records_[record.name.ToKey()][record.type].push_back(std::move(record));
  ++record_count_;
}

const std::vector<dns::ResourceRecord>* Zone::Find(const dns::Name& name,
                                                   dns::RrType type) const {
  auto it = records_.find(name.ToKey());
  if (it == records_.end()) return nullptr;
  auto type_it = it->second.find(type);
  if (type_it == it->second.end()) return nullptr;
  return &type_it->second;
}

std::vector<dns::Name> Zone::Names() const {
  std::vector<dns::Name> out;
  out.reserve(names_.size());
  for (const auto& [key, name] : names_) out.push_back(name);
  return out;
}

std::vector<dns::ResourceRecord> Zone::RecordsAt(const dns::Name& name) const {
  std::vector<dns::ResourceRecord> out;
  auto it = records_.find(name.ToKey());
  if (it == records_.end()) return out;
  for (const auto& [type, rrset] : it->second) {
    out.insert(out.end(), rrset.begin(), rrset.end());
  }
  return out;
}

bool Zone::IsSigned() const {
  return Find(apex_, dns::RrType::kDnskey) != nullptr;
}

std::shared_ptr<const std::vector<dns::Name>> Zone::SortedNames() const {
  base::MutexLock lock(denial_mutex_);
  if (!sorted_names_) {
    auto sorted = std::make_shared<std::vector<dns::Name>>();
    sorted->reserve(names_.size());
    for (const auto& [key, name] : names_) sorted->push_back(name);
    std::sort(sorted->begin(), sorted->end());
    sorted_names_ = std::move(sorted);
  }
  return sorted_names_;
}

Zone::DenialRange Zone::DenialNeighbors(const dns::Name& qname) const {
  auto sorted = SortedNames();
  DenialRange range;
  range.prev = apex_;
  range.next = apex_;  // wrap by default
  if (sorted->empty()) return range;
  auto it = std::lower_bound(sorted->begin(), sorted->end(), qname);
  range.prev = it == sorted->begin() ? sorted->front() : *std::prev(it);
  range.next = it == sorted->end() ? apex_ : *it;
  return range;
}

bool Zone::NameExists(const dns::Name& name) const {
  return names_.contains(name.ToKey());
}

std::optional<dns::Name> Zone::FindZoneCut(const dns::Name& qname) const {
  // Walk from just below the apex towards qname; the first name with an NS
  // RRset (other than the apex) is the enclosing cut.
  if (qname.LabelCount() <= apex_.LabelCount()) return std::nullopt;
  for (std::size_t labels = apex_.LabelCount() + 1;
       labels <= qname.LabelCount(); ++labels) {
    dns::Name candidate = qname.Suffix(labels);
    if (Find(candidate, dns::RrType::kNs) != nullptr) return candidate;
  }
  return std::nullopt;
}

LookupResult Zone::Lookup(const dns::Name& qname, dns::RrType qtype) const {
  LookupResult result;
  if (!qname.IsSubdomainOf(apex_)) {
    result.status = LookupStatus::kNotInZone;
    return result;
  }

  // Zone cuts take precedence over data below them.
  if (auto cut = FindZoneCut(qname)) {
    // Querying the cut itself for DS stays authoritative at the parent
    // (RFC 4035 §3.1.4.1); everything else is a referral.
    if (!(qname.Equals(*cut) && qtype == dns::RrType::kDs)) {
      result.status = LookupStatus::kDelegation;
      result.cut = *cut;
      const auto* ns_set = Find(*cut, dns::RrType::kNs);
      result.records = *ns_set;
      if (const auto* ds_set = Find(*cut, dns::RrType::kDs)) {
        result.ds = *ds_set;
      }
      // Glue: addresses for nameservers whose names fall in/below this zone.
      for (const auto& ns_rr : *ns_set) {
        const auto& target = std::get<dns::NsRdata>(ns_rr.rdata).nameserver;
        if (!target.IsSubdomainOf(apex_)) continue;
        if (const auto* a = Find(target, dns::RrType::kA)) {
          result.glue.insert(result.glue.end(), a->begin(), a->end());
        }
        if (const auto* aaaa = Find(target, dns::RrType::kAaaa)) {
          result.glue.insert(result.glue.end(), aaaa->begin(), aaaa->end());
        }
      }
      return result;
    }
  }

  auto attach_soa = [this, &result] {
    if (const auto* soa = Find(apex_, dns::RrType::kSoa)) {
      result.soa = *soa;
    }
  };

  if (!NameExists(qname)) {
    result.status = LookupStatus::kNxDomain;
    attach_soa();
    return result;
  }

  if (qtype == dns::RrType::kAny) {
    result.records = RecordsAt(qname);
    result.status = result.records.empty() ? LookupStatus::kNoData
                                           : LookupStatus::kAnswer;
    if (result.records.empty()) attach_soa();
    return result;
  }

  if (const auto* rrset = Find(qname, qtype)) {
    result.status = LookupStatus::kAnswer;
    result.records = *rrset;
    return result;
  }
  // CNAME at the name answers any type (we only chase one level; our zones
  // never chain CNAMEs).
  if (const auto* cname = Find(qname, dns::RrType::kCname)) {
    result.status = LookupStatus::kAnswer;
    result.records = *cname;
    return result;
  }

  result.status = LookupStatus::kNoData;
  attach_soa();
  return result;
}

}  // namespace clouddns::zone
