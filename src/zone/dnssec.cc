#include "zone/dnssec.h"

#include <unordered_set>

#include "base/threads.h"

namespace clouddns::zone {
namespace {

std::uint64_t Fnv1a(std::string_view text, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kZskSeed = 0x5a534b5a534b5a53ull;
constexpr std::uint64_t kKskSeed = 0x4b534b4b534b4b53ull;
constexpr std::uint64_t kSigSeed = 0x5349475349475349ull;

// Fixed validity window: the simulation clock always falls inside it, so
// mock signatures never "expire" mid-run.
constexpr std::uint32_t kInception = 1514764800;   // 2018-01-01
constexpr std::uint32_t kExpiration = 1735689600;  // 2025-01-01

std::vector<std::uint8_t> HashBytes(std::uint64_t h, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(h >> (8 * (i % 8)));
    if (i % 8 == 7) h = h * 6364136223846793005ull + 1442695040888963407ull;
  }
  return out;
}

}  // namespace

std::uint16_t ZskTagFor(const dns::Name& zone_apex) {
  return static_cast<std::uint16_t>(Fnv1a(zone_apex.ToKey(), kZskSeed));
}

std::uint16_t KskTagFor(const dns::Name& zone_apex) {
  return static_cast<std::uint16_t>(Fnv1a(zone_apex.ToKey(), kKskSeed));
}

std::vector<std::uint8_t> MockSignature(const dns::Name& signer,
                                        const dns::Name& owner,
                                        dns::RrType type) {
  std::uint64_t h = Fnv1a(signer.ToKey(), kSigSeed);
  h = Fnv1a(owner.ToKey(), h);
  h = Fnv1a(ToString(type), h);
  return HashBytes(h, 256);  // RSA-2048 signature size
}

std::vector<dns::ResourceRecord> MakeApexDnskeys(const dns::Name& zone_apex,
                                                 std::uint32_t ttl) {
  auto make_key = [&zone_apex, ttl](std::uint16_t flags, std::uint64_t seed) {
    dns::DnskeyRdata key;
    key.flags = flags;
    key.protocol = 3;
    key.algorithm = kMockAlgorithm;
    key.public_key = HashBytes(Fnv1a(zone_apex.ToKey(), seed), 256);
    return dns::ResourceRecord{zone_apex, dns::RrType::kDnskey,
                               dns::RrClass::kIn, ttl, std::move(key)};
  };
  return {make_key(257, kKskSeed), make_key(256, kZskSeed)};
}

dns::ResourceRecord MakeDs(const dns::Name& child_apex, std::uint32_t ttl) {
  dns::DsRdata ds;
  ds.key_tag = KskTagFor(child_apex);
  ds.algorithm = kMockAlgorithm;
  ds.digest_type = 2;  // SHA-256
  ds.digest = HashBytes(Fnv1a(child_apex.ToKey(), kKskSeed), 32);
  return dns::ResourceRecord{child_apex, dns::RrType::kDs, dns::RrClass::kIn,
                             ttl, std::move(ds)};
}

void SignZone(Zone& zone, std::uint32_t dnskey_ttl) {
  for (auto& key : MakeApexDnskeys(zone.apex(), dnskey_ttl)) {
    zone.Add(std::move(key));
  }
  // Sign every RRset present after key insertion. Collect first: Add()
  // mutates the container we'd be iterating.
  struct Target {
    dns::Name owner;
    dns::RrType type;
    std::uint32_t ttl;
  };
  std::vector<Target> targets;
  std::unordered_set<std::string> seen;
  for (const auto& name : zone.Names()) {
    for (const auto& rr : zone.RecordsAt(name)) {
      if (rr.type == dns::RrType::kRrsig) continue;
      std::string key = rr.name.ToKey() + "/" + std::string(ToString(rr.type));
      if (seen.insert(std::move(key)).second) {
        targets.push_back({rr.name, rr.type, rr.ttl});
      }
    }
  }
  // Signature computation is pure (a function of signer/owner/type alone),
  // so it fans out over the shared pool into slots indexed by target.
  // Insertion stays serial and in target order below — the RRSIG vector
  // order at each owner/type IS the Add order, and that order is part of
  // the zone's byte image, so it must not depend on worker scheduling.
  std::vector<dns::RrsigRdata> sigs(targets.size());
  base::ThreadPool::Shared().ParallelFor(
      targets.size(), base::EffectiveThreads(0), [&](std::size_t i) {
        const Target& target = targets[i];
        dns::RrsigRdata sig;
        sig.type_covered = static_cast<std::uint16_t>(target.type);
        sig.algorithm = kMockAlgorithm;
        sig.labels = static_cast<std::uint8_t>(target.owner.LabelCount());
        sig.original_ttl = target.ttl;
        sig.expiration = kExpiration;
        sig.inception = kInception;
        sig.key_tag = target.type == dns::RrType::kDnskey
                          ? KskTagFor(zone.apex())
                          : ZskTagFor(zone.apex());
        sig.signer = zone.apex();
        sig.signature = MockSignature(zone.apex(), target.owner, target.type);
        sigs[i] = std::move(sig);
      });
  for (std::size_t i = 0; i < targets.size(); ++i) {
    zone.Add(dns::ResourceRecord{targets[i].owner, dns::RrType::kRrsig,
                                 dns::RrClass::kIn, targets[i].ttl,
                                 std::move(sigs[i])});
  }
}

bool VerifyRrsig(const dns::RrsigRdata& sig, const dns::Name& owner,
                 dns::RrType type) {
  if (sig.algorithm != kMockAlgorithm) return false;
  if (sig.type_covered != static_cast<std::uint16_t>(type)) return false;
  return sig.signature == MockSignature(sig.signer, owner, type);
}

bool VerifyDsMatchesKey(const dns::DsRdata& ds, const dns::Name& child_apex) {
  return ds.key_tag == KskTagFor(child_apex) &&
         ds.digest == HashBytes(Fnv1a(child_apex.ToKey(), kKskSeed), 32);
}

}  // namespace clouddns::zone
