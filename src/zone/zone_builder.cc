#include "zone/zone_builder.h"

#include "zone/dnssec.h"

namespace clouddns::zone {

Zone MakeZoneSkeleton(const ZoneBuildConfig& config) {
  Zone zone(config.apex);

  dns::SoaRdata soa;
  soa.mname = config.nameservers.empty() ? config.apex.Child("ns1")
                                         : config.nameservers.front().name;
  soa.rname = config.apex.Child("hostmaster");
  soa.serial = 2020040500;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = config.negative_ttl;
  zone.Add(dns::MakeSoa(config.apex, soa, config.soa_ttl));

  for (const auto& ns : config.nameservers) {
    zone.Add(dns::MakeNs(config.apex, ns.name, config.ns_ttl));
    if (!ns.name.IsSubdomainOf(config.apex)) continue;
    for (const auto& addr : ns.addresses) {
      if (addr.is_v4()) {
        zone.Add(dns::MakeA(ns.name, addr.v4(), config.ns_ttl));
      } else {
        zone.Add(dns::MakeAaaa(ns.name, addr.v6(), config.ns_ttl));
      }
    }
  }
  return zone;
}

void AddDelegation(Zone& zone, const dns::Name& child,
                   const std::vector<NameserverSpec>& nameservers,
                   bool with_ds, std::uint32_t ttl) {
  for (const auto& ns : nameservers) {
    zone.Add(dns::MakeNs(child, ns.name, ttl));
    if (!ns.name.IsSubdomainOf(zone.apex())) continue;
    for (const auto& addr : ns.addresses) {
      if (addr.is_v4()) {
        zone.Add(dns::MakeA(ns.name, addr.v4(), ttl));
      } else {
        zone.Add(dns::MakeAaaa(ns.name, addr.v6(), ttl));
      }
    }
  }
  if (with_ds) {
    zone.Add(MakeDs(child, ttl));
  }
}

std::string DomainLabel(const std::string& stem, std::size_t i) {
  return stem + std::to_string(i);
}

void PopulateDelegations(Zone& zone, std::size_t count,
                         const std::string& stem, double signed_fraction,
                         net::Ipv4Address glue_base, std::uint32_t ttl) {
  // Deterministic stride-based DS assignment: index i is signed when
  // i * signed_fraction crosses an integer boundary, giving exactly
  // round(count * fraction) signed children without an RNG.
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    dns::Name child = zone.apex().Child(DomainLabel(stem, i));
    acc += signed_fraction;
    bool with_ds = acc >= 1.0;
    if (with_ds) acc -= 1.0;

    std::vector<NameserverSpec> nameservers;
    // Registrants run 2-4 nameservers; the larger NS sets are what pushes
    // DO=1 referrals past a 512-byte EDNS buffer.
    int ns_count = 2 + static_cast<int>(i % 3);
    for (int n = 1; n <= ns_count; ++n) {
      NameserverSpec spec;
      spec.name = child.Child("ns" + std::to_string(n));
      std::uint32_t offset =
          static_cast<std::uint32_t>(i * 4 + static_cast<std::size_t>(n));
      spec.addresses.push_back(
          net::Ipv4Address(glue_base.bits() + offset));
      // Most delegations also carry AAAA glue nowadays; besides realism,
      // the extra 28 bytes per record matter for EDNS-512 truncation.
      if (i % 5 != 0) {
        net::Ipv6Address::Bytes v6{};
        v6[0] = 0x20;
        v6[1] = 0x01;
        v6[2] = 0x0d;
        v6[3] = 0xba;
        v6[4] = static_cast<std::uint8_t>(glue_base.bits() >> 24);
        v6[5] = static_cast<std::uint8_t>(glue_base.bits() >> 16);
        for (int b = 0; b < 4; ++b) {
          v6[static_cast<std::size_t>(12 + b)] =
              static_cast<std::uint8_t>(offset >> (8 * (3 - b)));
        }
        spec.addresses.push_back(net::Ipv6Address(v6));
      }
      nameservers.push_back(std::move(spec));
    }
    AddDelegation(zone, child, nameservers, with_ds, ttl);
  }
}

}  // namespace clouddns::zone
