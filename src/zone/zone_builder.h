// Generators for the zones the study's authoritative servers serve:
// a root zone delegating TLDs, TLD zones with many registered-domain
// delegations, and PTR zones for resolver fleets.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ip.h"
#include "zone/zone.h"

namespace clouddns::zone {

struct NameserverSpec {
  dns::Name name;
  std::vector<net::IpAddress> addresses;  ///< v4 and/or v6.
};

struct ZoneBuildConfig {
  dns::Name apex;
  std::vector<NameserverSpec> nameservers;  ///< The zone's own NS set.
  bool sign = true;
  std::uint32_t soa_ttl = 3600;
  std::uint32_t ns_ttl = 3600;
  std::uint32_t negative_ttl = 600;  ///< SOA MINIMUM, negative-caching TTL.
};

/// Builds apex SOA + NS (+ in-zone glue). Signing is applied by the caller
/// *after* all delegations are added (RRSIGs cover final content).
[[nodiscard]] Zone MakeZoneSkeleton(const ZoneBuildConfig& config);

/// Adds a delegation for `child` (NS records at the cut + glue for in-zone
/// nameservers). When `with_ds` is set, a mock DS for the child is added,
/// marking the child as DNSSEC-signed from the parent's perspective.
void AddDelegation(Zone& zone, const dns::Name& child,
                   const std::vector<NameserverSpec>& nameservers,
                   bool with_ds, std::uint32_t ttl = 86400);

/// Adds `count` registered-domain delegations named
/// "<stem><index>.<apex>", each with two in-child nameservers and IPv4
/// glue derived deterministically from `glue_base`. A `signed_fraction`
/// of children (by index stride) also get DS records.
void PopulateDelegations(Zone& zone, std::size_t count,
                         const std::string& stem, double signed_fraction,
                         net::Ipv4Address glue_base,
                         std::uint32_t ttl = 86400);

/// Registered-domain label for index `i` ("<stem><i>").
[[nodiscard]] std::string DomainLabel(const std::string& stem, std::size_t i);

}  // namespace clouddns::zone
