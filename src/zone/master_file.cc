#include "zone/master_file.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace clouddns::zone {
namespace {

// ---------- tokenization ----------

// One logical record line: parentheses join physical lines, ';' starts a
// comment, quoted strings keep their spaces.
struct Token {
  std::string text;
  bool quoted = false;
};

struct LogicalLine {
  std::size_t line_number = 0;
  std::vector<Token> tokens;
  bool starts_with_whitespace = false;  ///< Owner inherited from previous.
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) {}

  /// Splits the input into logical lines honouring (), ;, and "".
  std::vector<LogicalLine> Run(std::vector<MasterFileError>& errors) {
    std::vector<LogicalLine> lines;
    LogicalLine current;
    bool in_line = false;
    int paren_depth = 0;

    while (pos_ < text_.size()) {
      if (!in_line) {
        current = LogicalLine{};
        current.line_number = line_;
        current.starts_with_whitespace =
            pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t');
        in_line = true;
      }
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        if (paren_depth == 0) {
          if (!current.tokens.empty()) lines.push_back(std::move(current));
          in_line = false;
        }
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == ';') {  // comment to end of physical line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '(') {
        ++paren_depth;
        ++pos_;
        continue;
      }
      if (c == ')') {
        if (paren_depth == 0) {
          errors.push_back({line_, "unbalanced ')'"});
        } else {
          --paren_depth;
        }
        ++pos_;
        continue;
      }
      if (c == '"') {
        Token token;
        token.quoted = true;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"' &&
               text_[pos_] != '\n') {
          token.text += text_[pos_++];
        }
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          errors.push_back({line_, "unterminated quoted string"});
        } else {
          ++pos_;
        }
        current.tokens.push_back(std::move(token));
        continue;
      }
      Token token;
      while (pos_ < text_.size() && !std::isspace(
                 static_cast<unsigned char>(text_[pos_])) &&
             text_[pos_] != ';' && text_[pos_] != '(' && text_[pos_] != ')') {
        token.text += text_[pos_++];
      }
      current.tokens.push_back(std::move(token));
    }
    if (paren_depth != 0) errors.push_back({line_, "unbalanced '('"});
    if (in_line && !current.tokens.empty()) lines.push_back(std::move(current));
    return lines;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// ---------- field parsing ----------

std::optional<std::uint32_t> ParseU32(const std::string& text) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// TTLs allow unit suffixes (300, 5m, 2h, 1d, 1w).
std::optional<std::uint32_t> ParseTtl(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char suffix = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text.back())));
  std::uint32_t multiplier = 1;
  std::string digits = text;
  switch (suffix) {
    case 's': multiplier = 1; digits.pop_back(); break;
    case 'm': multiplier = 60; digits.pop_back(); break;
    case 'h': multiplier = 3600; digits.pop_back(); break;
    case 'd': multiplier = 86400; digits.pop_back(); break;
    case 'w': multiplier = 604800; digits.pop_back(); break;
    default: break;
  }
  auto value = ParseU32(digits);
  if (!value) return std::nullopt;
  return *value * multiplier;
}

std::optional<dns::Name> ParseNameField(const std::string& token,
                                        const dns::Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') {
    return dns::Name::Parse(token);  // absolute
  }
  auto relative = dns::Name::Parse(token);
  if (!relative) return std::nullopt;
  // Append the origin: relative-label list + origin labels.
  std::vector<std::string> labels;
  labels.reserve(relative->LabelCount() + origin.LabelCount());
  for (std::size_t i = 0; i < relative->LabelCount(); ++i) {
    labels.emplace_back(relative->Label(i));
  }
  for (std::size_t i = 0; i < origin.LabelCount(); ++i) {
    labels.emplace_back(origin.Label(i));
  }
  try {
    return dns::Name::FromLabels(std::move(labels));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<std::vector<std::uint8_t>> ParseHex(const std::string& text) {
  if (text.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < text.size(); i += 2) {
    int hi = nibble(text[i]);
    int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

// ---------- rdata parsing, one function per type ----------

struct RecordParseContext {
  const std::vector<Token>& fields;  ///< RDATA fields only.
  const dns::Name& origin;
  std::string error;
};

std::optional<dns::Rdata> ParseRdata(dns::RrType type,
                                     RecordParseContext& ctx) {
  const auto& f = ctx.fields;
  auto need = [&ctx, &f](std::size_t n) {
    if (f.size() != n) {
      ctx.error = "expected " + std::to_string(n) + " rdata fields, got " +
                  std::to_string(f.size());
      return false;
    }
    return true;
  };
  auto name_at = [&ctx, &f](std::size_t i) -> std::optional<dns::Name> {
    auto name = ParseNameField(f[i].text, ctx.origin);
    if (!name) ctx.error = "bad name '" + f[i].text + "'";
    return name;
  };
  auto u32_at = [&ctx, &f](std::size_t i) -> std::optional<std::uint32_t> {
    auto value = ParseU32(f[i].text);
    if (!value) ctx.error = "bad integer '" + f[i].text + "'";
    return value;
  };

  switch (type) {
    case dns::RrType::kA: {
      if (!need(1)) return std::nullopt;
      auto addr = net::Ipv4Address::Parse(f[0].text);
      if (!addr) {
        ctx.error = "bad IPv4 address '" + f[0].text + "'";
        return std::nullopt;
      }
      return dns::ARdata{*addr};
    }
    case dns::RrType::kAaaa: {
      if (!need(1)) return std::nullopt;
      auto addr = net::Ipv6Address::Parse(f[0].text);
      if (!addr) {
        ctx.error = "bad IPv6 address '" + f[0].text + "'";
        return std::nullopt;
      }
      return dns::AaaaRdata{*addr};
    }
    case dns::RrType::kNs: {
      if (!need(1)) return std::nullopt;
      auto name = name_at(0);
      if (!name) return std::nullopt;
      return dns::NsRdata{*name};
    }
    case dns::RrType::kCname: {
      if (!need(1)) return std::nullopt;
      auto name = name_at(0);
      if (!name) return std::nullopt;
      return dns::CnameRdata{*name};
    }
    case dns::RrType::kPtr: {
      if (!need(1)) return std::nullopt;
      auto name = name_at(0);
      if (!name) return std::nullopt;
      return dns::PtrRdata{*name};
    }
    case dns::RrType::kMx: {
      if (!need(2)) return std::nullopt;
      auto pref = u32_at(0);
      auto name = name_at(1);
      if (!pref || !name) return std::nullopt;
      return dns::MxRdata{static_cast<std::uint16_t>(*pref), *name};
    }
    case dns::RrType::kTxt: {
      if (f.empty()) {
        ctx.error = "TXT needs at least one string";
        return std::nullopt;
      }
      dns::TxtRdata txt;
      for (const auto& field : f) txt.strings.push_back(field.text);
      return txt;
    }
    case dns::RrType::kSrv: {
      if (!need(4)) return std::nullopt;
      auto priority = u32_at(0);
      auto weight = u32_at(1);
      auto port = u32_at(2);
      auto target = name_at(3);
      if (!priority || !weight || !port || !target) return std::nullopt;
      return dns::SrvRdata{static_cast<std::uint16_t>(*priority),
                           static_cast<std::uint16_t>(*weight),
                           static_cast<std::uint16_t>(*port), *target};
    }
    case dns::RrType::kSoa: {
      if (!need(7)) return std::nullopt;
      auto mname = name_at(0);
      auto rname = name_at(1);
      if (!mname || !rname) return std::nullopt;
      dns::SoaRdata soa;
      soa.mname = *mname;
      soa.rname = *rname;
      std::optional<std::uint32_t> numbers[5];
      for (int i = 0; i < 5; ++i) {
        numbers[i] = ParseTtl(f[static_cast<std::size_t>(2 + i)].text);
        if (!numbers[i]) {
          ctx.error = "bad SOA field '" +
                      f[static_cast<std::size_t>(2 + i)].text + "'";
          return std::nullopt;
        }
      }
      soa.serial = *numbers[0];
      soa.refresh = *numbers[1];
      soa.retry = *numbers[2];
      soa.expire = *numbers[3];
      soa.minimum = *numbers[4];
      return soa;
    }
    case dns::RrType::kDs: {
      if (!need(4)) return std::nullopt;
      auto tag = u32_at(0);
      auto algorithm = u32_at(1);
      auto digest_type = u32_at(2);
      auto digest = ParseHex(f[3].text);
      if (!tag || !algorithm || !digest_type) return std::nullopt;
      if (!digest) {
        ctx.error = "bad DS digest hex";
        return std::nullopt;
      }
      return dns::DsRdata{static_cast<std::uint16_t>(*tag),
                          static_cast<std::uint8_t>(*algorithm),
                          static_cast<std::uint8_t>(*digest_type),
                          std::move(*digest)};
    }
    case dns::RrType::kDnskey: {
      if (!need(4)) return std::nullopt;
      auto flags = u32_at(0);
      auto protocol = u32_at(1);
      auto algorithm = u32_at(2);
      auto key = ParseHex(f[3].text);
      if (!flags || !protocol || !algorithm) return std::nullopt;
      if (!key) {
        ctx.error = "bad DNSKEY hex";
        return std::nullopt;
      }
      return dns::DnskeyRdata{static_cast<std::uint16_t>(*flags),
                              static_cast<std::uint8_t>(*protocol),
                              static_cast<std::uint8_t>(*algorithm),
                              std::move(*key)};
    }
    default:
      ctx.error = "unsupported record type in master file";
      return std::nullopt;
  }
}

std::string BytesToHex(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

std::string RenderRdata(const dns::ResourceRecord& rr) {
  struct Visitor {
    std::string operator()(const dns::ARdata& r) const {
      return r.address.ToString();
    }
    std::string operator()(const dns::AaaaRdata& r) const {
      return r.address.ToString();
    }
    std::string operator()(const dns::NsRdata& r) const {
      return r.nameserver.ToString() + ".";
    }
    std::string operator()(const dns::CnameRdata& r) const {
      return r.target.ToString() + ".";
    }
    std::string operator()(const dns::PtrRdata& r) const {
      return r.target.ToString() + ".";
    }
    std::string operator()(const dns::MxRdata& r) const {
      return std::to_string(r.preference) + " " + r.exchange.ToString() + ".";
    }
    std::string operator()(const dns::TxtRdata& r) const {
      std::string out;
      for (const auto& s : r.strings) {
        if (!out.empty()) out += ' ';
        out += '"' + s + '"';
      }
      return out;
    }
    std::string operator()(const dns::SoaRdata& r) const {
      return r.mname.ToString() + ". " + r.rname.ToString() + ". " +
             std::to_string(r.serial) + " " + std::to_string(r.refresh) +
             " " + std::to_string(r.retry) + " " + std::to_string(r.expire) +
             " " + std::to_string(r.minimum);
    }
    std::string operator()(const dns::SrvRdata& r) const {
      return std::to_string(r.priority) + " " + std::to_string(r.weight) +
             " " + std::to_string(r.port) + " " + r.target.ToString() + ".";
    }
    std::string operator()(const dns::DsRdata& r) const {
      return std::to_string(r.key_tag) + " " + std::to_string(r.algorithm) +
             " " + std::to_string(r.digest_type) + " " + BytesToHex(r.digest);
    }
    std::string operator()(const dns::DnskeyRdata& r) const {
      return std::to_string(r.flags) + " " + std::to_string(r.protocol) +
             " " + std::to_string(r.algorithm) + " " +
             BytesToHex(r.public_key);
    }
    std::string operator()(const dns::RrsigRdata&) const { return {}; }
    std::string operator()(const dns::NsecRdata&) const { return {}; }
    std::string operator()(const dns::Nsec3Rdata&) const { return {}; }
    std::string operator()(const dns::Nsec3ParamRdata&) const { return {}; }
    std::string operator()(const dns::RawRdata&) const { return {}; }
  };
  return std::visit(Visitor{}, rr.rdata);
}

bool IsSerializableType(dns::RrType type) {
  switch (type) {
    case dns::RrType::kA:
    case dns::RrType::kAaaa:
    case dns::RrType::kNs:
    case dns::RrType::kCname:
    case dns::RrType::kPtr:
    case dns::RrType::kMx:
    case dns::RrType::kTxt:
    case dns::RrType::kSrv:
    case dns::RrType::kSoa:
    case dns::RrType::kDs:
    case dns::RrType::kDnskey:
      return true;
    default:
      return false;
  }
}

}  // namespace

ParsedZone ParseMasterFile(std::string_view text,
                           const dns::Name& default_origin) {
  ParsedZone result;
  Tokenizer tokenizer(text);
  auto lines = tokenizer.Run(result.errors);

  dns::Name origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<dns::Name> last_owner;
  std::vector<dns::ResourceRecord> records;
  std::optional<dns::Name> apex;

  for (const auto& line : lines) {
    const auto& tokens = line.tokens;
    auto fail = [&result, &line](std::string message) {
      result.errors.push_back({line.line_number, std::move(message)});
    };

    // Directives.
    if (tokens[0].text == "$ORIGIN") {
      if (tokens.size() != 2) {
        fail("$ORIGIN needs one argument");
        continue;
      }
      auto parsed = dns::Name::Parse(tokens[1].text);
      if (!parsed) {
        fail("bad $ORIGIN name");
        continue;
      }
      origin = *parsed;
      continue;
    }
    if (tokens[0].text == "$TTL") {
      if (tokens.size() != 2) {
        fail("$TTL needs one argument");
        continue;
      }
      auto ttl = ParseTtl(tokens[1].text);
      if (!ttl) {
        fail("bad $TTL value");
        continue;
      }
      default_ttl = *ttl;
      continue;
    }
    if (tokens[0].text.starts_with("$")) {
      fail("unknown directive " + tokens[0].text);
      continue;
    }

    // <owner>? <ttl>? <class>? <type> <rdata...>
    std::size_t cursor = 0;
    dns::Name owner;
    if (line.starts_with_whitespace) {
      if (!last_owner) {
        fail("record with inherited owner but no previous owner");
        continue;
      }
      owner = *last_owner;
    } else {
      auto parsed = ParseNameField(tokens[cursor].text, origin);
      if (!parsed) {
        fail("bad owner name '" + tokens[cursor].text + "'");
        continue;
      }
      owner = *parsed;
      ++cursor;
    }

    std::uint32_t ttl = default_ttl;
    // Optional TTL and class in either order.
    for (int i = 0; i < 2 && cursor < tokens.size(); ++i) {
      if (tokens[cursor].text == "IN" || tokens[cursor].text == "in") {
        ++cursor;
      } else if (auto maybe_ttl = ParseTtl(tokens[cursor].text);
                 maybe_ttl && !dns::RrTypeFromString(tokens[cursor].text)) {
        ttl = *maybe_ttl;
        ++cursor;
      }
    }
    if (cursor >= tokens.size()) {
      fail("missing record type");
      continue;
    }
    std::string type_text = tokens[cursor].text;
    std::transform(type_text.begin(), type_text.end(), type_text.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    auto type = dns::RrTypeFromString(type_text);
    if (!type) {
      fail("unknown record type '" + tokens[cursor].text + "'");
      continue;
    }
    ++cursor;

    std::vector<Token> rdata_fields(tokens.begin() +
                                        static_cast<std::ptrdiff_t>(cursor),
                                    tokens.end());
    RecordParseContext ctx{rdata_fields, origin, {}};
    auto rdata = ParseRdata(*type, ctx);
    if (!rdata) {
      fail(ctx.error);
      continue;
    }
    if (*type == dns::RrType::kSoa) {
      if (apex) {
        fail("duplicate SOA");
        continue;
      }
      apex = owner;
    }
    records.push_back(dns::ResourceRecord{owner, *type, dns::RrClass::kIn,
                                          ttl, std::move(*rdata)});
    last_owner = owner;
  }

  if (!apex) {
    result.errors.push_back({0, "zone has no SOA record"});
    return result;
  }
  Zone zone(*apex);
  bool fatal = false;
  for (auto& record : records) {
    if (!record.name.IsSubdomainOf(*apex)) {
      result.errors.push_back(
          {0, "record " + record.name.ToString() + " outside zone " +
                  apex->ToString()});
      fatal = true;
      continue;
    }
    zone.Add(std::move(record));
  }
  if (!fatal) result.zone = std::move(zone);
  return result;
}

std::string ToMasterFile(const Zone& zone) {
  std::string out;
  out += "$ORIGIN " + zone.apex().ToString() + (zone.apex().IsRoot() ? "" : ".") +
         "\n";

  auto names = zone.Names();
  std::sort(names.begin(), names.end());
  // Apex (with its SOA) first.
  std::stable_partition(names.begin(), names.end(), [&zone](const dns::Name& n) {
    return n.Equals(zone.apex());
  });

  auto render = [&out](const dns::ResourceRecord& rr) {
    if (!IsSerializableType(rr.type)) return;  // RRSIG/NSEC are derived
    out += rr.name.ToString() + ". " + std::to_string(rr.ttl) + " IN " +
           std::string(ToString(rr.type)) + " " + RenderRdata(rr) + "\n";
  };

  for (const auto& name : names) {
    auto records = zone.RecordsAt(name);
    // SOA first at the apex.
    std::stable_partition(records.begin(), records.end(),
                          [](const dns::ResourceRecord& rr) {
                            return rr.type == dns::RrType::kSoa;
                          });
    for (const auto& record : records) render(record);
  }
  return out;
}

}  // namespace clouddns::zone
