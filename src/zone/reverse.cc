#include "zone/reverse.h"

namespace clouddns::zone {
namespace {

constexpr char kHex[] = "0123456789abcdef";

std::optional<int> NibbleValue(std::string_view label) {
  if (label.size() != 1) return std::nullopt;
  char c = dns::AsciiLower(label[0]);
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return std::nullopt;
}

std::optional<int> OctetValue(std::string_view label) {
  if (label.empty() || label.size() > 3) return std::nullopt;
  int value = 0;
  for (char c : label) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value <= 255 ? std::optional<int>(value) : std::nullopt;
}

}  // namespace

dns::Name ReverseName(const net::IpAddress& address) {
  std::vector<std::string> labels;
  if (address.is_v4()) {
    labels.reserve(6);
    for (int i = 3; i >= 0; --i) {
      labels.push_back(std::to_string(address.v4().octet(i)));
    }
    labels.emplace_back("in-addr");
  } else {
    labels.reserve(34);
    const auto& bytes = address.v6().bytes();
    for (int i = 15; i >= 0; --i) {
      labels.emplace_back(1, kHex[bytes[static_cast<std::size_t>(i)] & 0xf]);
      labels.emplace_back(1, kHex[bytes[static_cast<std::size_t>(i)] >> 4]);
    }
    labels.emplace_back("ip6");
  }
  labels.emplace_back("arpa");
  return dns::Name::FromLabels(std::move(labels));
}

std::optional<net::IpAddress> AddressFromReverseName(const dns::Name& name) {
  static const dns::Name kInAddrArpa = *dns::Name::Parse("in-addr.arpa");
  static const dns::Name kIp6Arpa = *dns::Name::Parse("ip6.arpa");

  if (name.IsSubdomainOf(kInAddrArpa)) {
    if (name.LabelCount() != 6) return std::nullopt;
    std::array<std::uint8_t, 4> octets{};
    for (int i = 0; i < 4; ++i) {
      auto v = OctetValue(name.Label(static_cast<std::size_t>(i)));
      if (!v) return std::nullopt;
      octets[static_cast<std::size_t>(3 - i)] =
          static_cast<std::uint8_t>(*v);
    }
    return net::IpAddress(net::Ipv4Address::FromBytes(octets));
  }

  if (name.IsSubdomainOf(kIp6Arpa)) {
    if (name.LabelCount() != 34) return std::nullopt;
    net::Ipv6Address::Bytes bytes{};
    for (int i = 0; i < 32; ++i) {
      auto v = NibbleValue(name.Label(static_cast<std::size_t>(i)));
      if (!v) return std::nullopt;
      // Label 0 is the lowest nibble of byte 15.
      std::size_t byte_index = static_cast<std::size_t>(15 - i / 2);
      if (i % 2 == 0) {
        bytes[byte_index] |= static_cast<std::uint8_t>(*v);
      } else {
        bytes[byte_index] |= static_cast<std::uint8_t>(*v << 4);
      }
    }
    return net::IpAddress(net::Ipv6Address(bytes));
  }
  return std::nullopt;
}

}  // namespace clouddns::zone
