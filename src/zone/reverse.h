// Reverse-DNS name construction (in-addr.arpa / ip6.arpa), used to build
// PTR zones for cloud resolver fleets and to run the paper's §4.3
// dual-stack identification (reverse-lookup every Facebook resolver).
#pragma once

#include <optional>

#include "dns/name.h"
#include "net/ip.h"

namespace clouddns::zone {

/// "192.0.2.1" -> "1.2.0.192.in-addr.arpa";
/// IPv6 -> 32 reversed nibbles under ip6.arpa (RFC 3596 §2.5).
[[nodiscard]] dns::Name ReverseName(const net::IpAddress& address);

/// Inverse of ReverseName. Returns nullopt for names that are not
/// well-formed reverse names.
[[nodiscard]] std::optional<net::IpAddress> AddressFromReverseName(
    const dns::Name& name);

}  // namespace clouddns::zone
