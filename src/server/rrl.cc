#include "server/rrl.h"

#include <algorithm>

namespace clouddns::server {

bool ResponseRateLimiter::Allow(const net::IpAddress& src, sim::TimeUs now) {
  if (!config_.enabled) return true;
  Bucket& bucket = buckets_[src];
  if (bucket.last_refill == 0) {
    bucket.tokens = config_.burst;
    bucket.last_refill = now;
  } else if (now > bucket.last_refill) {
    double elapsed_s = static_cast<double>(now - bucket.last_refill) /
                       static_cast<double>(sim::kMicrosPerSecond);
    bucket.tokens = std::min(config_.burst,
                             bucket.tokens +
                                 elapsed_s * config_.responses_per_second);
    bucket.last_refill = now;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  ++slips_;
  return false;
}

}  // namespace clouddns::server
