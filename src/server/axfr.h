// Zone transfer (AXFR, RFC 5936) — how TLD operators actually propagate
// their zones to the NS fleet the study captures at. The server side lives
// in AuthServer (qtype AXFR over TCP, gated by an allowlist); this header
// provides the client side: fetch a zone over the simulated network and
// reassemble it.
#pragma once

#include <optional>

#include "dns/message.h"
#include "sim/network.h"
#include "zone/zone.h"

namespace clouddns::server {

struct AxfrResult {
  std::optional<zone::Zone> zone;
  std::string error;  ///< Populated when `zone` is empty.
};

/// Transfers `apex` from `server` over TCP. Validates RFC 5936 framing:
/// the answer section must start and end with the zone's SOA record.
[[nodiscard]] AxfrResult AxfrFetch(sim::Network& network,
                                   const net::Endpoint& src,
                                   sim::SiteId src_site,
                                   const net::IpAddress& server,
                                   const dns::Name& apex,
                                   sim::TimeUs now = 0);

}  // namespace clouddns::server
