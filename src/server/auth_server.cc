#include "server/auth_server.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

#include "zone/dnssec.h"

namespace clouddns::server {
namespace {

// NSEC TTL follows the zone's negative-caching TTL (SOA MINIMUM), as in
// real signed zones; the root's long TTL is what makes aggressive caching
// there so effective.
std::uint32_t NegativeTtlOf(const zone::Zone& zone) {
  if (const auto* soa_set = zone.Find(zone.apex(), dns::RrType::kSoa)) {
    return std::get<dns::SoaRdata>(soa_set->front().rdata).minimum;
  }
  return 600;
}

void AttachNsecWithSig(const zone::Zone& zone, const dns::Name& owner,
                       dns::Name next,
                       std::vector<dns::ResourceRecord>& section) {
  const std::uint32_t ttl = NegativeTtlOf(zone);
  dns::NsecRdata nsec;
  nsec.next = std::move(next);
  nsec.types = {dns::RrType::kNs, dns::RrType::kRrsig, dns::RrType::kNsec};
  section.push_back(dns::ResourceRecord{owner, dns::RrType::kNsec,
                                        dns::RrClass::kIn, ttl,
                                        std::move(nsec)});
  dns::RrsigRdata sig;
  sig.type_covered = static_cast<std::uint16_t>(dns::RrType::kNsec);
  sig.algorithm = zone::kMockAlgorithm;
  sig.labels = static_cast<std::uint8_t>(owner.LabelCount());
  sig.original_ttl = ttl;
  sig.key_tag = zone::ZskTagFor(zone.apex());
  sig.signer = zone.apex();
  sig.signature = zone::MockSignature(zone.apex(), owner, dns::RrType::kNsec);
  section.push_back(dns::ResourceRecord{owner, dns::RrType::kRrsig,
                                        dns::RrClass::kIn, ttl,
                                        std::move(sig)});
}

// NXDOMAIN denial: a real *range* NSEC between the denied name's existing
// canonical neighbours. Besides adding the response bytes that push DO=1
// negatives past small EDNS buffers, the range is what lets resolvers do
// aggressive NSEC caching (RFC 8198) — the mechanism §4.2.3 credits for
// the 2020 drop in cloud junk at the root.
void AttachRangeDenial(const zone::Zone& zone, const dns::Name& denied,
                       std::vector<dns::ResourceRecord>& section) {
  auto range = zone.DenialNeighbors(denied);
  AttachNsecWithSig(zone, range.prev, range.next, section);
}

// NODATA denial ("white lies", RFC 4470 style): an NSEC at the name itself
// whose type bitmap omits the denied type.
void AttachNoDataProof(const zone::Zone& zone, const dns::Name& denied,
                       std::vector<dns::ResourceRecord>& section) {
  // The "next" name is the denied name's immediate successor so the range
  // covers nothing else; fall back to the apex when at the length limit.
  dns::Name next = denied.WireLength() + 4 <= dns::Name::kMaxWireLength
                       ? denied.Child("000")
                       : zone.apex();
  AttachNsecWithSig(zone, denied, std::move(next), section);
}

}  // namespace

void AuthServer::Serve(std::shared_ptr<const zone::Zone> zone) {
  zones_.push_back(std::move(zone));
}

const zone::Zone* AuthServer::BestZoneFor(const dns::Name& qname) const {
  const zone::Zone* best = nullptr;
  std::size_t best_labels = 0;
  for (const auto& zone : zones_) {
    if (!qname.IsSubdomainOf(zone->apex())) continue;
    std::size_t labels = zone->apex().LabelCount();
    if (best == nullptr || labels > best_labels) {
      best = zone.get();
      best_labels = labels;
    }
  }
  return best;
}

void AuthServer::AttachRrsigs(const zone::Zone& zone, const dns::Name& owner,
                              dns::RrType covered,
                              std::vector<dns::ResourceRecord>& section) const {
  const auto* sigs = zone.Find(owner, dns::RrType::kRrsig);
  if (sigs == nullptr) return;
  for (const auto& sig : *sigs) {
    const auto& rdata = std::get<dns::RrsigRdata>(sig.rdata);
    if (rdata.type_covered == static_cast<std::uint16_t>(covered)) {
      section.push_back(sig);
    }
  }
}

dns::Message AuthServer::Respond(const dns::Message& query) const {
  dns::Message response;
  RespondInto(query, response);
  return response;
}

void AuthServer::RespondInto(const dns::Message& query,
                             dns::Message& response) const {
  response.ResetAsResponseTo(query);
  if (query.questions.size() != 1 ||
      query.header.opcode != dns::Opcode::kQuery) {
    response.header.rcode = query.questions.empty() ? dns::Rcode::kFormErr
                                                    : dns::Rcode::kNotImp;
    return;
  }
  const dns::Question& question = query.questions.front();
  const bool want_dnssec = query.edns && query.edns->dnssec_ok;

  const zone::Zone* zone = BestZoneFor(question.name);
  if (zone == nullptr) {
    response.header.rcode = dns::Rcode::kRefused;
    return;
  }

  zone::LookupResult result = zone->Lookup(question.name, question.type);
  switch (result.status) {
    case zone::LookupStatus::kAnswer:
      response.header.aa = true;
      response.answers = std::move(result.records);
      if (want_dnssec && zone->IsSigned() && !response.answers.empty()) {
        AttachRrsigs(*zone, question.name, response.answers.front().type,
                     response.answers);
      }
      break;
    case zone::LookupStatus::kDelegation:
      response.header.aa = false;
      response.authorities = std::move(result.records);
      if (want_dnssec) {
        for (auto& ds : result.ds) response.authorities.push_back(ds);
        if (zone->IsSigned() && !result.ds.empty()) {
          AttachRrsigs(*zone, result.cut, dns::RrType::kDs,
                       response.authorities);
        }
      }
      response.additionals = std::move(result.glue);
      break;
    case zone::LookupStatus::kNxDomain:
      response.header.aa = true;
      response.header.rcode = dns::Rcode::kNxDomain;
      response.authorities = std::move(result.soa);
      if (want_dnssec && zone->IsSigned()) {
        AttachRrsigs(*zone, zone->apex(), dns::RrType::kSoa,
                     response.authorities);
        AttachRangeDenial(*zone, question.name, response.authorities);
      }
      break;
    case zone::LookupStatus::kNoData:
      response.header.aa = true;
      response.authorities = std::move(result.soa);
      if (want_dnssec && zone->IsSigned()) {
        AttachRrsigs(*zone, zone->apex(), dns::RrType::kSoa,
                     response.authorities);
        AttachNoDataProof(*zone, question.name, response.authorities);
      }
      break;
    case zone::LookupStatus::kNotInZone:
      response.header.rcode = dns::Rcode::kRefused;
      break;
  }
}

dns::Message AuthServer::RespondAxfr(const dns::Message& query,
                                     const sim::PacketContext& ctx) const {
  dns::Message response = dns::Message::MakeResponse(query);
  const dns::Name& apex = query.questions.front().name;
  bool allowed = false;
  for (const auto& prefix : config_.axfr_allow) {
    allowed |= prefix.Contains(ctx.src.address);
  }
  if (!allowed) {
    response.header.rcode = dns::Rcode::kRefused;
    return response;
  }
  // AXFR requires TCP; over UDP answer with TC=1 so the client retries.
  if (ctx.transport == dns::Transport::kUdp) {
    response.header.tc = true;
    return response;
  }
  const zone::Zone* zone = BestZoneFor(apex);
  if (zone == nullptr || !zone->apex().Equals(apex)) {
    response.header.rcode = dns::Rcode::kRefused;  // not authoritative
    return response;
  }
  const auto* soa = zone->Find(apex, dns::RrType::kSoa);
  if (soa == nullptr || soa->empty()) {
    response.header.rcode = dns::Rcode::kServFail;
    return response;
  }
  // RFC 5936 framing: SOA, every other record, SOA.
  response.header.aa = true;
  response.answers.push_back(soa->front());
  for (const auto& name : zone->Names()) {
    for (const auto& rr : zone->RecordsAt(name)) {
      if (rr.type == dns::RrType::kSoa) continue;
      response.answers.push_back(rr);
    }
  }
  response.answers.push_back(soa->front());
  return response;
}

void AuthServer::HandlePacket(const sim::PacketContext& ctx,
                              const dns::WireBuffer& query_wire,
                              dns::WireBuffer& wire) {
  wire.clear();
  dns::Message& query = query_scratch_;
  if (!dns::Message::DecodeInto(query_wire.data(), query_wire.size(), query) ||
      query.header.qr) {
    return;  // drop garbage silently, as real servers do
  }

  if (query.questions.size() == 1 &&
      query.questions.front().type == dns::RrType::kAxfr) {
    // Zone transfers bypass RRL/truncation; they are TCP bulk operations
    // and are never part of the captured query stream the study analyzes.
    RespondAxfr(query, ctx).EncodeInto(wire);
    return;
  }

  dns::Message& response = response_scratch_;
  bool slipped = false;
  if (ctx.brownout_servfail) {
    // Browned-out site: answer SERVFAIL without the lookup work, bypassing
    // RRL (the failure is ours, not the client's). The exchange is still
    // captured below — overload responses are part of the observed stream.
    response.ResetAsResponseTo(query);
    response.header.rcode = dns::Rcode::kServFail;
    ++brownout_servfails_;
  } else if (!rrl_.Allow(ctx.src.address, ctx.time_us)) {
    // RRL slip: minimal truncated response; resolver should retry via TCP.
    // TCP queries are never rate-limited (the handshake proves the source).
    if (ctx.transport == dns::Transport::kUdp) {
      response.ResetAsResponseTo(query);
      response.header.tc = true;
      slipped = true;
    } else {
      RespondInto(query, response);
    }
  } else {
    RespondInto(query, response);
  }

  std::size_t udp_limit = dns::kClassicUdpLimit;
  if (query.edns) {
    udp_limit = std::min<std::size_t>(query.edns->udp_payload_size,
                                      config_.max_udp_response);
    udp_limit = std::max(udp_limit, dns::kClassicUdpLimit);
  }

  bool truncated = false;
  if (ctx.transport == dns::Transport::kUdp) {
    response.EncodeWithLimitInto(udp_limit, wire, &truncated);
    if (slipped) truncated = true;
  } else {
    response.EncodeInto(wire);
  }

  if (config_.capture_enabled) {
    capture::CaptureRecord record;
    record.time_us = ctx.time_us;
    record.server_id = config_.server_id;
    record.site_id = ctx.server_site;
    record.src = ctx.src.address;
    record.src_port = ctx.src.port;
    record.transport = ctx.transport;
    if (!query.questions.empty()) {
      record.qname = query.questions.front().name;
      record.qtype = query.questions.front().type;
    }
    record.rcode = response.header.rcode;
    record.has_edns = query.edns.has_value();
    record.edns_udp_size = query.edns ? query.edns->udp_payload_size : 0;
    record.do_bit = query.edns && query.edns->dnssec_ok;
    record.tc = truncated;
    record.query_size = static_cast<std::uint16_t>(query_wire.size());
    record.response_size = static_cast<std::uint16_t>(wire.size());
    record.tcp_handshake_rtt_us =
        ctx.transport == dns::Transport::kTcp ? ctx.handshake_rtt_us : 0;
    capture_.push_back(std::move(record));
  }
}

}  // namespace clouddns::server
