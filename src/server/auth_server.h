// The authoritative DNS server engine.
//
// One AuthServer models one NS of a TLD/root operator (e.g. ".nl server A").
// It can serve several zones (the .nz operator serves .nz plus the
// second-level zones like co.nz), is deployed at one or more anycast sites
// via sim::Network registration, applies EDNS-aware truncation and optional
// response rate limiting, and — like the paper's vantage points — captures
// every query/response pair into an ENTRADA-style CaptureBuffer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "capture/record.h"
#include "net/prefix_trie.h"
#include "dns/message.h"
#include "server/rrl.h"
#include "sim/network.h"
#include "zone/zone.h"

namespace clouddns::server {

struct AuthServerConfig {
  std::uint32_t server_id = 0;       ///< Capture label ("server A" = 0).
  std::string name = "ns";           ///< Human label, for reports.
  std::size_t max_udp_response = 4096;  ///< Server-side EDNS cap.
  /// Sources allowed to AXFR this server's zones (RFC 5936); empty = deny
  /// all, which is how production TLD servers are configured.
  std::vector<net::Prefix> axfr_allow;
  RrlConfig rrl;
  bool capture_enabled = true;  ///< The paper could only pcap some NSes.
};

class AuthServer final : public sim::PacketHandler {
 public:
  explicit AuthServer(AuthServerConfig config)
      : config_(std::move(config)), rrl_(config_.rrl) {}

  /// Adds a zone this server is authoritative for. Zones must outlive the
  /// server. When several apexes enclose a qname the deepest wins.
  void Serve(std::shared_ptr<const zone::Zone> zone);

  /// sim::PacketHandler: full query->response cycle plus capture. Decodes
  /// into and responds from member scratch messages, so serving a query at
  /// steady state does not allocate.
  void HandlePacket(const sim::PacketContext& ctx,
                    const dns::WireBuffer& query,
                    dns::WireBuffer& response) override;
  using sim::PacketHandler::HandlePacket;

  /// Builds the response message for a decoded query (exposed for tests;
  /// no truncation or capture applied here).
  [[nodiscard]] dns::Message Respond(const dns::Message& query) const;

  [[nodiscard]] const capture::CaptureBuffer& captured() const {
    return capture_;
  }
  capture::CaptureBuffer TakeCaptured() { return std::move(capture_); }
  [[nodiscard]] const AuthServerConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t rrl_slips() const { return rrl_.slip_count(); }
  /// Queries answered SERVFAIL because fault injection browned the site
  /// out (PacketContext::brownout_servfail).
  [[nodiscard]] std::uint64_t brownout_servfails() const {
    return brownout_servfails_;
  }

 private:
  [[nodiscard]] const zone::Zone* BestZoneFor(const dns::Name& qname) const;
  /// Fills `response` (reset first, section capacity kept) for `query`.
  void RespondInto(const dns::Message& query, dns::Message& response) const;
  [[nodiscard]] dns::Message RespondAxfr(const dns::Message& query,
                                         const sim::PacketContext& ctx) const;
  void AttachRrsigs(const zone::Zone& zone, const dns::Name& owner,
                    dns::RrType covered,
                    std::vector<dns::ResourceRecord>& section) const;

  AuthServerConfig config_;
  std::vector<std::shared_ptr<const zone::Zone>> zones_;
  ResponseRateLimiter rrl_;
  capture::CaptureBuffer capture_;
  std::uint64_t brownout_servfails_ = 0;
  /// Per-packet scratch reused across HandlePacket calls; their section
  /// vectors keep capacity, so decode/respond stop allocating once warm.
  dns::Message query_scratch_;
  dns::Message response_scratch_;
};

}  // namespace clouddns::server
