// The synthetic "rest of the DNS" — a catch-all authoritative service that
// answers for every second-level-domain nameserver the TLD zones delegate
// to. The study never captures this traffic (its vantage points are the
// TLDs and B-Root), but resolvers must be able to finish resolutions below
// the delegation point or their caching/QNAME-minimization behaviour at the
// TLD would be wrong. Answers are synthesized deterministically from the
// query name, so the same name always resolves the same way.
#pragma once

#include "dns/message.h"
#include "sim/network.h"

namespace clouddns::server {

struct LeafAuthConfig {
  /// Fraction of names that have AAAA records (deterministic by name hash).
  double v6_fraction = 0.55;
  std::uint32_t answer_ttl = 300;
  std::size_t max_udp_response = 4096;
};

class LeafAuthService final : public sim::PacketHandler {
 public:
  explicit LeafAuthService(LeafAuthConfig config) : config_(config) {}

  void HandlePacket(const sim::PacketContext& ctx,
                    const dns::WireBuffer& query,
                    dns::WireBuffer& response) override;
  using sim::PacketHandler::HandlePacket;

  /// Response construction, exposed for tests.
  [[nodiscard]] dns::Message Respond(const dns::Message& query) const;

  /// The deterministic address a name resolves to (also used by tests).
  [[nodiscard]] static net::Ipv4Address SyntheticV4(const dns::Name& name);
  [[nodiscard]] static net::Ipv6Address SyntheticV6(const dns::Name& name);

  [[nodiscard]] std::uint64_t handled() const { return handled_; }

 private:
  [[nodiscard]] bool HasV6(const dns::Name& name) const;
  void RespondInto(const dns::Message& query, dns::Message& response) const;

  LeafAuthConfig config_;
  std::uint64_t handled_ = 0;
  /// Per-packet scratch reused across HandlePacket calls.
  dns::Message query_scratch_;
  dns::Message response_scratch_;
};

}  // namespace clouddns::server
