#include "server/leaf_auth.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

#include "zone/dnssec.h"

namespace clouddns::server {
namespace {

std::uint64_t NameHash(const dns::Name& name) {
  // FNV-1a over the lowercased presentation form ("www.example.nl", root
  // is "."), streamed straight off the flat label bytes so no ToKey()
  // string is built. The dot separators are hashed explicitly to keep the
  // synthetic addresses identical to the original key-based hash.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](char c) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  };
  if (name.IsRoot()) {
    mix('.');
    return h;
  }
  const std::uint8_t* p = name.FlatData();
  for (std::size_t i = 0; i < name.LabelCount(); ++i) {
    if (i > 0) mix('.');
    for (std::uint8_t j = 1; j <= *p; ++j) {
      mix(dns::AsciiLower(static_cast<char>(p[j])));
    }
    p += 1 + *p;
  }
  return h;
}

}  // namespace

net::Ipv4Address LeafAuthService::SyntheticV4(const dns::Name& name) {
  // 100.96.0.0/12-ish synthetic space, never colliding with fleet or
  // authoritative service addresses.
  std::uint64_t h = NameHash(name);
  return net::Ipv4Address(0x64600000u | (static_cast<std::uint32_t>(h) &
                                         0x001fffffu));
}

net::Ipv6Address LeafAuthService::SyntheticV6(const dns::Name& name) {
  std::uint64_t h = NameHash(name) * 0x9e3779b97f4a7c15ull;
  net::Ipv6Address::Bytes bytes{};
  bytes[0] = 0x20;
  bytes[1] = 0x01;
  bytes[2] = 0x0d;
  bytes[3] = 0xb8;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(h >> (8 * i));
  }
  return net::Ipv6Address(bytes);
}

bool LeafAuthService::HasV6(const dns::Name& name) const {
  return static_cast<double>(NameHash(name) % 10000) <
         config_.v6_fraction * 10000.0;
}

dns::Message LeafAuthService::Respond(const dns::Message& query) const {
  dns::Message response;
  RespondInto(query, response);
  return response;
}

void LeafAuthService::RespondInto(const dns::Message& query,
                                  dns::Message& response) const {
  response.ResetAsResponseTo(query);
  if (query.questions.size() != 1) {
    response.header.rcode = dns::Rcode::kFormErr;
    return;
  }
  const dns::Question& question = query.questions.front();
  response.header.aa = true;
  const std::uint32_t ttl = config_.answer_ttl;

  auto nodata = [&response, &question, ttl] {
    dns::SoaRdata soa;
    soa.mname = question.name;
    soa.rname = question.name;
    soa.serial = 1;
    soa.minimum = ttl;
    response.authorities.push_back(dns::MakeSoa(question.name, soa, ttl));
  };

  switch (question.type) {
    case dns::RrType::kA:
      response.answers.push_back(
          dns::MakeA(question.name, SyntheticV4(question.name), ttl));
      break;
    case dns::RrType::kAaaa:
      if (HasV6(question.name)) {
        response.answers.push_back(
            dns::MakeAaaa(question.name, SyntheticV6(question.name), ttl));
      } else {
        nodata();
      }
      break;
    case dns::RrType::kMx:
      response.answers.push_back(
          dns::MakeMx(question.name, 10, question.name.Child("mail"), ttl));
      break;
    case dns::RrType::kTxt:
      response.answers.push_back(
          dns::MakeTxt(question.name, "synthetic-leaf", ttl));
      break;
    case dns::RrType::kDnskey: {
      // Validators fetching a leaf zone's keys get realistic RSA-sized
      // material; with a 512-byte EDNS buffer this truncates, which is the
      // classic "TCP is needed for DNSKEY retrieval" path (§4.4).
      for (auto& key : zone::MakeApexDnskeys(question.name, ttl)) {
        response.answers.push_back(std::move(key));
      }
      break;
    }
    case dns::RrType::kDs:
      response.answers.push_back(zone::MakeDs(question.name, ttl));
      break;
    case dns::RrType::kNs:
      // Minimized NS probes below the delegation point: the name exists
      // but carries no NS RRset of its own.
      nodata();
      break;
    default:
      nodata();
      break;
  }
}

void LeafAuthService::HandlePacket(const sim::PacketContext& ctx,
                                   const dns::WireBuffer& query,
                                   dns::WireBuffer& wire) {
  wire.clear();
  ++handled_;
  dns::Message& decoded = query_scratch_;
  if (!dns::Message::DecodeInto(query.data(), query.size(), decoded) ||
      decoded.header.qr) {
    return;
  }
  dns::Message& response = response_scratch_;
  RespondInto(decoded, response);
  if (ctx.transport == dns::Transport::kUdp) {
    std::size_t limit = dns::kClassicUdpLimit;
    if (decoded.edns) {
      limit = std::min<std::size_t>(decoded.edns->udp_payload_size,
                                    config_.max_udp_response);
      limit = std::max(limit, dns::kClassicUdpLimit);
    }
    response.EncodeWithLimitInto(limit, wire);
    return;
  }
  response.EncodeInto(wire);
}

}  // namespace clouddns::server
