// Response Rate Limiting (Vixie, CACM 2014): a per-source token bucket.
// When a source exceeds its budget the server "slips" — answers with a
// minimal truncated response — forcing legitimate resolvers to retry over
// TCP (spoofed sources cannot). This is one of the mechanisms behind the
// small-but-nonzero TCP shares in the paper's Table 5.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ip.h"
#include "sim/clock.h"

namespace clouddns::server {

struct RrlConfig {
  double responses_per_second = 1000.0;  ///< Token refill rate per source.
  double burst = 2000.0;                 ///< Bucket capacity.
  bool enabled = false;
};

class ResponseRateLimiter {
 public:
  explicit ResponseRateLimiter(RrlConfig config) : config_(config) {}

  /// True when a full response may be sent; false means "slip" (respond
  /// with TC=1 and no data). Always true when disabled.
  [[nodiscard]] bool Allow(const net::IpAddress& src, sim::TimeUs now);

  [[nodiscard]] const RrlConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t slip_count() const { return slips_; }

 private:
  struct Bucket {
    double tokens = 0;
    sim::TimeUs last_refill = 0;
  };

  RrlConfig config_;
  std::unordered_map<net::IpAddress, Bucket, net::IpAddressHash> buckets_;
  std::uint64_t slips_ = 0;
};

}  // namespace clouddns::server
