#include "server/axfr.h"

namespace clouddns::server {

AxfrResult AxfrFetch(sim::Network& network, const net::Endpoint& src,
                     sim::SiteId src_site, const net::IpAddress& server,
                     const dns::Name& apex, sim::TimeUs now) {
  AxfrResult result;
  dns::Message query =
      dns::Message::MakeQuery(0x5936, apex, dns::RrType::kAxfr);
  auto sent = network.Query(src, src_site, server, dns::Transport::kTcp,
                            query.Encode(), now);
  if (!sent.delivered()) {
    result.error = "no route to server or query dropped";
    return result;
  }
  auto response = dns::Message::Decode(sent.response);
  if (!response) {
    result.error = "malformed AXFR response";
    return result;
  }
  if (response->header.rcode != dns::Rcode::kNoError) {
    result.error = "transfer refused: " +
                   std::string(ToString(response->header.rcode));
    return result;
  }
  const auto& answers = response->answers;
  if (answers.size() < 2 || answers.front().type != dns::RrType::kSoa ||
      answers.back().type != dns::RrType::kSoa ||
      !answers.front().name.Equals(apex)) {
    result.error = "response is not SOA-framed";
    return result;
  }

  zone::Zone zone(apex);
  // The stream is SOA, <records...>, SOA; the trailing SOA is framing only.
  for (std::size_t i = 0; i + 1 < answers.size(); ++i) {
    if (!answers[i].name.IsSubdomainOf(apex)) {
      result.error = "out-of-zone record in transfer: " +
                     answers[i].name.ToString();
      return result;
    }
    zone.Add(answers[i]);
  }
  result.zone = std::move(zone);
  return result;
}

}  // namespace clouddns::server
