// Bounds-checked DNS wire-format primitives.
//
// WireWriter appends big-endian integers, raw bytes, and domain names with
// RFC 1035 §4.1.4 compression pointers. WireReader is the mirror: every read
// is bounds-checked and returns false on malformed input instead of throwing,
// because the authoritative server must survive arbitrary junk queries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"

namespace clouddns::dns {

using WireBuffer = std::vector<std::uint8_t>;

class WireWriter {
 public:
  explicit WireWriter(WireBuffer& out) : out_(out) {}

  void WriteU8(std::uint8_t value) { out_.push_back(value); }
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteBytes(const std::uint8_t* data, std::size_t size);
  void WriteBytes(const std::vector<std::uint8_t>& data) {
    WriteBytes(data.data(), data.size());
  }

  /// Writes `name`, emitting a compression pointer to an earlier occurrence
  /// of any suffix already written through this writer. Set `compress` to
  /// false inside RDATA types where compression is forbidden (RFC 3597).
  void WriteName(const Name& name, bool compress = true);

  /// Patches a previously written 16-bit field (e.g. RDLENGTH back-fill).
  void PatchU16(std::size_t offset, std::uint16_t value);

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  WireBuffer& out_;
  // Lowercased suffix text -> offset of its first occurrence. Offsets beyond
  // 0x3fff cannot be pointer targets and are not recorded.
  std::unordered_map<std::string, std::uint16_t> suffix_offsets_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const WireBuffer& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  [[nodiscard]] bool ReadU8(std::uint8_t& value);
  [[nodiscard]] bool ReadU16(std::uint16_t& value);
  [[nodiscard]] bool ReadU32(std::uint32_t& value);
  [[nodiscard]] bool ReadBytes(std::size_t count,
                               std::vector<std::uint8_t>& out);

  /// Reads a (possibly compressed) name starting at the cursor. Follows
  /// pointers with a hop limit so crafted loops cannot hang the parser.
  [[nodiscard]] bool ReadName(Name& name);

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }
  [[nodiscard]] bool AtEnd() const { return offset_ == size_; }

  /// Moves the cursor; false if the target is out of range.
  [[nodiscard]] bool Seek(std::size_t offset);
  [[nodiscard]] bool Skip(std::size_t count) { return Seek(offset_ + count); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace clouddns::dns
