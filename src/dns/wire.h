// Bounds-checked DNS wire-format primitives.
//
// WireWriter appends big-endian integers, raw bytes, and domain names with
// RFC 1035 §4.1.4 compression pointers. WireReader is the mirror: every read
// is bounds-checked and returns false on malformed input instead of throwing,
// because the authoritative server must survive arbitrary junk queries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dns/name.h"

namespace clouddns::dns {

using WireBuffer = std::vector<std::uint8_t>;

namespace detail {

/// Compression state for one in-flight message encode: an open-addressing
/// table of (suffix hash -> wire offset of its first occurrence). Entries
/// are invalidated wholesale by bumping the epoch, so one thread-local
/// table serves every message a thread encodes without clearing or
/// reallocating between messages. Matches are verified against the wire
/// bytes already written (following pointers), so hash collisions cannot
/// corrupt the encoding.
struct SuffixTable {
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t epoch = 0;
    std::uint16_t offset = 0;
  };

  std::vector<Slot> slots;
  std::uint32_t epoch = 0;  ///< Slots with a matching epoch are live.
  std::size_t count = 0;    ///< Live entries in the current epoch.
  bool busy = false;        ///< Claimed by a live WireWriter.

  void NewEpoch();
  /// Finds a previously recorded occurrence of the suffix whose flat label
  /// bytes are [suffix, suffix_end); `wire` is the message written so far.
  [[nodiscard]] bool Find(std::uint64_t hash, const WireBuffer& wire,
                          const std::uint8_t* suffix,
                          const std::uint8_t* suffix_end,
                          std::uint16_t& offset_out) const;
  void Insert(std::uint64_t hash, std::uint16_t offset);

 private:
  void Grow();
};

}  // namespace detail

class WireWriter {
 public:
  explicit WireWriter(WireBuffer& out);
  ~WireWriter();
  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  void WriteU8(std::uint8_t value) { out_.push_back(value); }
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteBytes(const std::uint8_t* data, std::size_t size);
  void WriteBytes(const std::vector<std::uint8_t>& data) {
    WriteBytes(data.data(), data.size());
  }

  /// Writes `name`, emitting a compression pointer to an earlier occurrence
  /// of any suffix already written through this writer. Set `compress` to
  /// false inside RDATA types where compression is forbidden (RFC 3597).
  void WriteName(const Name& name, bool compress = true);

  /// Patches a previously written 16-bit field (e.g. RDLENGTH back-fill).
  void PatchU16(std::size_t offset, std::uint16_t value);

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  WireBuffer& out_;
  // Offsets beyond 0x3fff cannot be pointer targets and are not recorded.
  // Usually the thread-local table; a writer constructed while another
  // writer on the same thread is live gets its own (cold path).
  detail::SuffixTable* table_;
  std::unique_ptr<detail::SuffixTable> owned_table_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const WireBuffer& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  [[nodiscard]] bool ReadU8(std::uint8_t& value);
  [[nodiscard]] bool ReadU16(std::uint16_t& value);
  [[nodiscard]] bool ReadU32(std::uint32_t& value);
  [[nodiscard]] bool ReadBytes(std::size_t count,
                               std::vector<std::uint8_t>& out);

  /// Reads a (possibly compressed) name starting at the cursor. Follows
  /// pointers with a hop limit so crafted loops cannot hang the parser.
  [[nodiscard]] bool ReadName(Name& name);

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }
  [[nodiscard]] bool AtEnd() const { return offset_ == size_; }

  /// Moves the cursor; false if the target is out of range.
  [[nodiscard]] bool Seek(std::size_t offset);
  [[nodiscard]] bool Skip(std::size_t count) { return Seek(offset_ + count); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace clouddns::dns
