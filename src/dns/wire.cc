#include "dns/wire.h"

namespace clouddns::dns {

void WireWriter::WriteU16(std::uint16_t value) {
  out_.push_back(static_cast<std::uint8_t>(value >> 8));
  out_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void WireWriter::WriteU32(std::uint32_t value) {
  out_.push_back(static_cast<std::uint8_t>(value >> 24));
  out_.push_back(static_cast<std::uint8_t>(value >> 16));
  out_.push_back(static_cast<std::uint8_t>(value >> 8));
  out_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void WireWriter::WriteBytes(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

void WireWriter::WriteName(const Name& name, bool compress) {
  // Walk the label list; for every suffix check whether it was written
  // before, and if so emit a 2-byte pointer and stop.
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::string suffix_key;
    for (std::size_t j = i; j < labels.size(); ++j) {
      for (char c : labels[j]) suffix_key += AsciiLower(c);
      suffix_key += '.';
    }
    if (compress) {
      auto it = suffix_offsets_.find(suffix_key);
      if (it != suffix_offsets_.end()) {
        WriteU16(static_cast<std::uint16_t>(0xc000u | it->second));
        return;
      }
      if (out_.size() <= 0x3fff) {
        suffix_offsets_.emplace(std::move(suffix_key),
                                static_cast<std::uint16_t>(out_.size()));
      }
    }
    const std::string& label = labels[i];
    WriteU8(static_cast<std::uint8_t>(label.size()));
    WriteBytes(reinterpret_cast<const std::uint8_t*>(label.data()),
               label.size());
  }
  WriteU8(0);  // root
}

void WireWriter::PatchU16(std::size_t offset, std::uint16_t value) {
  out_[offset] = static_cast<std::uint8_t>(value >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(value & 0xff);
}

bool WireReader::ReadU8(std::uint8_t& value) {
  if (remaining() < 1) return false;
  value = data_[offset_++];
  return true;
}

bool WireReader::ReadU16(std::uint16_t& value) {
  if (remaining() < 2) return false;
  value = static_cast<std::uint16_t>((data_[offset_] << 8) |
                                     data_[offset_ + 1]);
  offset_ += 2;
  return true;
}

bool WireReader::ReadU32(std::uint32_t& value) {
  if (remaining() < 4) return false;
  value = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
          (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
          (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
          static_cast<std::uint32_t>(data_[offset_ + 3]);
  offset_ += 4;
  return true;
}

bool WireReader::ReadBytes(std::size_t count, std::vector<std::uint8_t>& out) {
  if (remaining() < count) return false;
  out.assign(data_ + offset_, data_ + offset_ + count);
  offset_ += count;
  return true;
}

bool WireReader::ReadName(Name& name) {
  std::vector<std::string> labels;
  std::size_t cursor = offset_;
  std::size_t end_of_name = 0;  // where the cursor resumes (set at first jump)
  bool jumped = false;
  std::size_t last_target = offset_;
  std::size_t total_len = 1;

  for (;;) {
    if (cursor >= size_) return false;
    std::uint8_t len = data_[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= size_) return false;
      std::size_t target = static_cast<std::size_t>((len & 0x3f) << 8) |
                           data_[cursor + 1];
      // RFC 1035 §4.1.4: a pointer references a *prior* occurrence.
      // Requiring each target to be strictly earlier than the last makes
      // loops and forward references impossible by construction, and
      // matches both what WriteName emits and what the wire auditor
      // (dns/audit.h) enforces.
      if (target >= last_target) return false;
      if (!jumped) {
        end_of_name = cursor + 2;
        jumped = true;
      }
      last_target = target;
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) return false;  // reserved label types
    ++cursor;
    if (len == 0) break;
    if (cursor + len > size_) return false;
    total_len += 1 + len;
    if (total_len > Name::kMaxWireLength) return false;
    labels.emplace_back(reinterpret_cast<const char*>(data_ + cursor), len);
    cursor += len;
  }

  offset_ = jumped ? end_of_name : cursor;
  // Labels read off the wire are length-delimited so any byte value is legal
  // here; construct without re-validating the character set.
  name = Name::FromLabels(std::move(labels));
  return true;
}

bool WireReader::Seek(std::size_t offset) {
  if (offset > size_) return false;
  offset_ = offset;
  return true;
}

}  // namespace clouddns::dns
