#include "dns/wire.h"

namespace clouddns::dns {

namespace {

[[nodiscard]] constexpr std::uint8_t LowerByte(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<std::uint8_t>(c - 'A' + 'a') : c;
}

/// Case-insensitively compares the name suffix whose flat label bytes are
/// [suffix, suffix_end) against the name encoded in `wire` at `offset`,
/// following compression pointers. Offsets only ever come from names this
/// writer finished encoding, so the walk terminates; the bounds checks are
/// belt-and-braces.
[[nodiscard]] bool MatchesWireSuffix(const WireBuffer& wire,
                                     std::size_t offset,
                                     const std::uint8_t* suffix,
                                     const std::uint8_t* suffix_end) {
  std::size_t cursor = offset;
  for (;;) {
    if (cursor >= wire.size()) return false;
    const std::uint8_t len = wire[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= wire.size()) return false;
      cursor = (static_cast<std::size_t>(len & 0x3f) << 8) | wire[cursor + 1];
      continue;
    }
    if (len == 0) return suffix == suffix_end;
    if (suffix == suffix_end) return false;
    if (*suffix != len) return false;
    if (cursor + 1 + len > wire.size()) return false;
    for (std::size_t j = 0; j < len; ++j) {
      if (LowerByte(wire[cursor + 1 + j]) != LowerByte(suffix[1 + j])) {
        return false;
      }
    }
    suffix += 1 + len;
    cursor += 1 + len;
  }
}

// One compression table per thread: a new epoch per WireWriter makes prior
// entries stale without touching them, so steady-state encodes never clear
// or reallocate the table.
thread_local detail::SuffixTable tls_suffix_table;

constexpr std::size_t kInitialSlots = 256;  // power of two

}  // namespace

namespace detail {

void SuffixTable::NewEpoch() {
  if (slots.empty()) {
    slots.resize(kInitialSlots);
  }
  count = 0;
  if (++epoch == 0) {
    // Epoch wrapped: stale slots from epoch 0 would look live again.
    for (Slot& slot : slots) slot.epoch = 0;
    epoch = 1;
  }
}

bool SuffixTable::Find(std::uint64_t hash, const WireBuffer& wire,
                       const std::uint8_t* suffix,
                       const std::uint8_t* suffix_end,
                       std::uint16_t& offset_out) const {
  const std::size_t mask = slots.size() - 1;
  for (std::size_t idx = static_cast<std::size_t>(hash) & mask;
       slots[idx].epoch == epoch; idx = (idx + 1) & mask) {
    if (slots[idx].hash == hash &&
        MatchesWireSuffix(wire, slots[idx].offset, suffix, suffix_end)) {
      offset_out = slots[idx].offset;
      return true;
    }
  }
  return false;
}

void SuffixTable::Insert(std::uint64_t hash, std::uint16_t offset) {
  if ((count + 1) * 2 > slots.size()) Grow();
  const std::size_t mask = slots.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash) & mask;
  while (slots[idx].epoch == epoch) idx = (idx + 1) & mask;
  slots[idx] = Slot{hash, epoch, offset};
  ++count;
}

void SuffixTable::Grow() {
  std::vector<Slot> old = std::move(slots);
  slots.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots.size() - 1;
  for (const Slot& slot : old) {
    if (slot.epoch != epoch) continue;
    std::size_t idx = static_cast<std::size_t>(slot.hash) & mask;
    while (slots[idx].epoch == epoch) idx = (idx + 1) & mask;
    slots[idx] = slot;
  }
}

}  // namespace detail

WireWriter::WireWriter(WireBuffer& out) : out_(out) {
  if (tls_suffix_table.busy) {
    owned_table_ = std::make_unique<detail::SuffixTable>();
    table_ = owned_table_.get();
  } else {
    tls_suffix_table.busy = true;
    table_ = &tls_suffix_table;
  }
  table_->NewEpoch();
}

WireWriter::~WireWriter() {
  if (table_ == &tls_suffix_table) tls_suffix_table.busy = false;
}

void WireWriter::WriteU16(std::uint16_t value) {
  out_.push_back(static_cast<std::uint8_t>(value >> 8));
  out_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void WireWriter::WriteU32(std::uint32_t value) {
  out_.push_back(static_cast<std::uint8_t>(value >> 24));
  out_.push_back(static_cast<std::uint8_t>(value >> 16));
  out_.push_back(static_cast<std::uint8_t>(value >> 8));
  out_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void WireWriter::WriteBytes(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

void WireWriter::WriteName(const Name& name, bool compress) {
  // Walk the labels; for every suffix check whether it was written before,
  // and if so emit a 2-byte pointer and stop. First occurrences at offsets
  // that can still be pointer targets are recorded.
  const std::uint8_t* p = name.FlatData();
  const std::uint8_t* const end = p + name.FlatSize();
  const std::size_t label_count = name.LabelCount();
  for (std::size_t i = 0; i < label_count; ++i) {
    if (compress) {
      const std::uint64_t hash =
          Name::HashFlat(p, static_cast<std::size_t>(end - p));
      std::uint16_t target = 0;
      if (table_->Find(hash, out_, p, end, target)) {
        WriteU16(static_cast<std::uint16_t>(0xc000u | target));
        return;
      }
      if (out_.size() <= 0x3fff) {
        table_->Insert(hash, static_cast<std::uint16_t>(out_.size()));
      }
    }
    WriteU8(*p);
    WriteBytes(p + 1, *p);
    p += 1 + *p;
  }
  WriteU8(0);  // root
}

void WireWriter::PatchU16(std::size_t offset, std::uint16_t value) {
  out_[offset] = static_cast<std::uint8_t>(value >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(value & 0xff);
}

bool WireReader::ReadU8(std::uint8_t& value) {
  if (remaining() < 1) return false;
  value = data_[offset_++];
  return true;
}

bool WireReader::ReadU16(std::uint16_t& value) {
  if (remaining() < 2) return false;
  value = static_cast<std::uint16_t>((data_[offset_] << 8) |
                                     data_[offset_ + 1]);
  offset_ += 2;
  return true;
}

bool WireReader::ReadU32(std::uint32_t& value) {
  if (remaining() < 4) return false;
  value = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
          (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
          (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
          static_cast<std::uint32_t>(data_[offset_ + 3]);
  offset_ += 4;
  return true;
}

bool WireReader::ReadBytes(std::size_t count, std::vector<std::uint8_t>& out) {
  if (remaining() < count) return false;
  out.assign(data_ + offset_, data_ + offset_ + count);
  offset_ += count;
  return true;
}

bool WireReader::ReadName(Name& name) {
  Name::Builder builder;
  std::size_t cursor = offset_;
  std::size_t end_of_name = 0;  // where the cursor resumes (set at first jump)
  bool jumped = false;
  std::size_t last_target = offset_;

  for (;;) {
    if (cursor >= size_) return false;
    std::uint8_t len = data_[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= size_) return false;
      std::size_t target = static_cast<std::size_t>((len & 0x3f) << 8) |
                           data_[cursor + 1];
      // RFC 1035 §4.1.4: a pointer references a *prior* occurrence.
      // Requiring each target to be strictly earlier than the last makes
      // loops and forward references impossible by construction, and
      // matches both what WriteName emits and what the wire auditor
      // (dns/audit.h) enforces.
      if (target >= last_target) return false;
      if (!jumped) {
        end_of_name = cursor + 2;
        jumped = true;
      }
      last_target = target;
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) return false;  // reserved label types
    ++cursor;
    if (len == 0) break;
    if (cursor + len > size_) return false;
    // Labels read off the wire are length-delimited so any byte value is
    // legal here; the builder only enforces the length limits (and rejects
    // names over 255 octets, like the old total-length check).
    if (!builder.Append(data_ + cursor, len)) return false;
    cursor += len;
  }

  offset_ = jumped ? end_of_name : cursor;
  name = builder.Take();
  return true;
}

bool WireReader::Seek(std::size_t offset) {
  if (offset > size_) return false;
  offset_ = offset;
  return true;
}

}  // namespace clouddns::dns
