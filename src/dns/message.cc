#include "dns/message.h"

#include "dns/audit.h"

namespace clouddns::dns {
namespace {

constexpr std::uint16_t kFlagQr = 0x8000;
constexpr std::uint16_t kFlagAa = 0x0400;
constexpr std::uint16_t kFlagTc = 0x0200;
constexpr std::uint16_t kFlagRd = 0x0100;
constexpr std::uint16_t kFlagRa = 0x0080;

std::uint16_t PackFlags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= kFlagQr;
  flags |= static_cast<std::uint16_t>((static_cast<unsigned>(h.opcode) & 0xf)
                                      << 11);
  if (h.aa) flags |= kFlagAa;
  if (h.tc) flags |= kFlagTc;
  if (h.rd) flags |= kFlagRd;
  if (h.ra) flags |= kFlagRa;
  flags |= static_cast<std::uint16_t>(static_cast<unsigned>(h.rcode) & 0xf);
  return flags;
}

Header UnpackFlags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = flags & kFlagQr;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  h.aa = flags & kFlagAa;
  h.tc = flags & kFlagTc;
  h.rd = flags & kFlagRd;
  h.ra = flags & kFlagRa;
  h.rcode = static_cast<Rcode>(flags & 0xf);
  return h;
}

ResourceRecord MakeOptRecord(const EdnsInfo& edns) {
  ResourceRecord opt;
  opt.name = Name{};  // root
  opt.type = RrType::kOpt;
  // OPT reuses CLASS for the UDP payload size.
  opt.rclass = static_cast<RrClass>(edns.udp_payload_size);
  // TTL packs extended-rcode / version / DO.
  opt.ttl = (static_cast<std::uint32_t>(edns.version) << 16) |
            (edns.dnssec_ok ? 0x8000u : 0u);
  opt.rdata = RawRdata{};
  return opt;
}

void EncodeSections(const Message& msg, WireWriter& writer,
                    bool sections_truncated) {
  for (const auto& q : msg.questions) q.Encode(writer);
  if (!sections_truncated) {
    for (const auto& rr : msg.answers) rr.Encode(writer);
    for (const auto& rr : msg.authorities) rr.Encode(writer);
    for (const auto& rr : msg.additionals) rr.Encode(writer);
  }
  if (msg.edns) MakeOptRecord(*msg.edns).Encode(writer);
}

void EncodeImpl(const Message& msg, bool truncate_sections,
                WireBuffer& out) {
  out.clear();
  out.reserve(512);
  WireWriter writer(out);
  writer.WriteU16(msg.header.id);
  Header header = msg.header;
  if (truncate_sections) header.tc = true;
  writer.WriteU16(PackFlags(header));
  writer.WriteU16(static_cast<std::uint16_t>(msg.questions.size()));
  std::size_t opt_count = msg.edns ? 1 : 0;
  if (truncate_sections) {
    writer.WriteU16(0);
    writer.WriteU16(0);
    writer.WriteU16(static_cast<std::uint16_t>(opt_count));
  } else {
    writer.WriteU16(static_cast<std::uint16_t>(msg.answers.size()));
    writer.WriteU16(static_cast<std::uint16_t>(msg.authorities.size()));
    writer.WriteU16(
        static_cast<std::uint16_t>(msg.additionals.size() + opt_count));
  }
  EncodeSections(msg, writer, truncate_sections);
  audit::Audit(out, "dns::Message::Encode");
}

}  // namespace

Message Message::MakeQuery(std::uint16_t id, const Name& qname, RrType qtype,
                           std::optional<EdnsInfo> edns) {
  Message msg;
  msg.ResetAsQueryFor(id, qname, qtype, edns);
  return msg;
}

void Message::ResetAsQueryFor(std::uint16_t id, const Name& qname,
                              RrType qtype,
                              const std::optional<EdnsInfo>& edns) {
  header = Header{};
  header.id = id;
  header.rd = false;  // resolver-to-authoritative queries are iterative
  questions.clear();
  questions.push_back(Question{qname, qtype, RrClass::kIn});
  answers.clear();
  authorities.clear();
  additionals.clear();
  this->edns = edns;
}

Message Message::MakeResponse(const Message& query) {
  Message msg;
  msg.ResetAsResponseTo(query);
  return msg;
}

void Message::ResetAsResponseTo(const Message& query) {
  header = Header{};
  header.id = query.header.id;
  header.qr = true;
  header.opcode = query.header.opcode;
  header.rd = query.header.rd;
  questions = query.questions;
  answers.clear();
  authorities.clear();
  additionals.clear();
  edns.reset();
  if (query.edns) {
    // Echo EDNS with the server's own advertised size.
    edns = EdnsInfo{4096, query.edns->dnssec_ok, 0};
  }
}

WireBuffer Message::Encode() const {
  WireBuffer out;
  EncodeImpl(*this, false, out);
  return out;
}

void Message::EncodeInto(WireBuffer& out) const {
  EncodeImpl(*this, false, out);
}

WireBuffer Message::EncodeWithLimit(std::size_t limit, bool* truncated) const {
  WireBuffer out;
  EncodeWithLimitInto(limit, out, truncated);
  return out;
}

void Message::EncodeWithLimitInto(std::size_t limit, WireBuffer& out,
                                  bool* truncated) const {
  EncodeImpl(*this, false, out);
  if (out.size() <= limit) {
    if (truncated) *truncated = false;
    return;
  }
  if (truncated) *truncated = true;
  EncodeImpl(*this, true, out);
}

std::optional<Message> Message::Decode(const WireBuffer& wire) {
  return Decode(wire.data(), wire.size());
}

std::optional<Message> Message::Decode(const std::uint8_t* data,
                                       std::size_t size) {
  Message msg;
  if (!DecodeInto(data, size, msg)) return std::nullopt;
  return msg;
}

bool Message::DecodeInto(const std::uint8_t* data, std::size_t size,
                         Message& msg) {
  msg.header = Header{};
  msg.questions.clear();
  msg.answers.clear();
  msg.authorities.clear();
  msg.additionals.clear();
  msg.edns.reset();

  WireReader reader(data, size);
  std::uint16_t id = 0, flags = 0, qdcount = 0, ancount = 0, nscount = 0,
                arcount = 0;
  if (!reader.ReadU16(id) || !reader.ReadU16(flags) ||
      !reader.ReadU16(qdcount) || !reader.ReadU16(ancount) ||
      !reader.ReadU16(nscount) || !reader.ReadU16(arcount)) {
    return false;
  }
  msg.header = UnpackFlags(id, flags);

  for (int i = 0; i < qdcount; ++i) {
    Question q;
    if (!Question::Decode(reader, q)) return false;
    msg.questions.push_back(std::move(q));
  }
  auto read_records = [&reader](int count,
                                std::vector<ResourceRecord>& out) -> bool {
    for (int i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!ResourceRecord::Decode(reader, rr)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_records(ancount, msg.answers) ||
      !read_records(nscount, msg.authorities)) {
    return false;
  }
  // RFC 6891 §6.1.1: the OPT pseudo-record lives in the additional
  // section only.
  for (const auto* section : {&msg.answers, &msg.authorities}) {
    for (const auto& rr : *section) {
      if (rr.type == RrType::kOpt) return false;
    }
  }
  for (int i = 0; i < arcount; ++i) {
    ResourceRecord rr;
    if (!ResourceRecord::Decode(reader, rr)) return false;
    if (rr.type == RrType::kOpt) {
      if (msg.edns) return false;  // duplicate OPT is FORMERR
      if (rr.name.LabelCount() != 0) {
        return false;  // OPT owner must be root (RFC 6891 §6.1.2)
      }
      EdnsInfo edns;
      edns.udp_payload_size = static_cast<std::uint16_t>(rr.rclass);
      edns.dnssec_ok = (rr.ttl & 0x8000u) != 0;
      edns.version = static_cast<std::uint8_t>((rr.ttl >> 16) & 0xff);
      msg.edns = edns;
    } else {
      msg.additionals.push_back(std::move(rr));
    }
  }
  // Trailing bytes after the promised record counts are a framing error
  // (and would make re-encoding lossy).
  if (!reader.AtEnd()) return false;
  // Anything the parser accepts must also satisfy the structural auditor;
  // a divergence here is a parser bug, not bad input.
  audit::Audit(data, size, "dns::Message::Decode (accepted input)");
  return true;
}

std::string Message::ToString() const {
  std::string out;
  out += ";; id " + std::to_string(header.id) + " " +
         (header.qr ? "response" : "query") + " rcode " +
         std::string(dns::ToString(header.rcode));
  if (header.aa) out += " aa";
  if (header.tc) out += " tc";
  if (edns) {
    out += " edns(size=" + std::to_string(edns->udp_payload_size) +
           (edns->dnssec_ok ? ",do" : "") + ")";
  }
  out += "\n;; QUESTION\n";
  for (const auto& q : questions) out += "  " + q.ToString() + "\n";
  auto dump = [&out](const char* title,
                     const std::vector<ResourceRecord>& records) {
    if (records.empty()) return;
    out += std::string(";; ") + title + "\n";
    for (const auto& rr : records) out += "  " + rr.ToString() + "\n";
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authorities);
  dump("ADDITIONAL", additionals);
  return out;
}

}  // namespace clouddns::dns
