#include "dns/types.h"

namespace clouddns::dns {

std::string_view ToString(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kPtr: return "PTR";
    case RrType::kMx: return "MX";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kSrv: return "SRV";
    case RrType::kOpt: return "OPT";
    case RrType::kDs: return "DS";
    case RrType::kRrsig: return "RRSIG";
    case RrType::kNsec: return "NSEC";
    case RrType::kDnskey: return "DNSKEY";
    case RrType::kNsec3: return "NSEC3";
    case RrType::kNsec3Param: return "NSEC3PARAM";
    case RrType::kAxfr: return "AXFR";
    case RrType::kAny: return "ANY";
  }
  return "TYPE?";
}

std::optional<RrType> RrTypeFromString(std::string_view text) {
  struct Entry {
    std::string_view name;
    RrType type;
  };
  static constexpr Entry kEntries[] = {
      {"A", RrType::kA},         {"NS", RrType::kNs},
      {"CNAME", RrType::kCname}, {"SOA", RrType::kSoa},
      {"PTR", RrType::kPtr},     {"MX", RrType::kMx},
      {"TXT", RrType::kTxt},     {"AAAA", RrType::kAaaa},
      {"SRV", RrType::kSrv},     {"OPT", RrType::kOpt},
      {"DS", RrType::kDs},       {"RRSIG", RrType::kRrsig},
      {"NSEC", RrType::kNsec},   {"DNSKEY", RrType::kDnskey},
      {"NSEC3", RrType::kNsec3}, {"NSEC3PARAM", RrType::kNsec3Param},
      {"AXFR", RrType::kAxfr},   {"ANY", RrType::kAny},
  };
  for (const auto& entry : kEntries) {
    if (entry.name == text) return entry.type;
  }
  return std::nullopt;
}

std::string_view ToString(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE?";
}

std::string_view ToString(Transport transport) {
  return transport == Transport::kUdp ? "UDP" : "TCP";
}

}  // namespace clouddns::dns
