#include "dns/audit.h"

#include <cstdio>
#include <cstdlib>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/types.h"

namespace clouddns::dns::audit {
namespace {

/// Independent structural walker. Deliberately does not share code with
/// WireReader: the auditor exists to catch the parser's own mistakes, so
/// it re-derives every bound from RFC 1035 directly.
class Walker {
 public:
  Walker(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::string> Check() {
    if (size_ < 12) {
      return Fail("header truncated: " + std::to_string(size_) +
                  " bytes, need 12");
    }
    pos_ = 4;  // id + flags already irrelevant to structure
    std::uint16_t qdcount = U16At(4), ancount = U16At(6), nscount = U16At(8),
                  arcount = U16At(10);
    pos_ = 12;
    for (std::uint16_t q = 0; q < qdcount; ++q) {
      if (auto err = CheckName("question " + std::to_string(q))) return err;
      if (!Advance(4, "question type/class")) return error_;
    }
    if (auto err = CheckSection("answer", ancount, false)) return err;
    if (auto err = CheckSection("authority", nscount, false)) return err;
    if (auto err = CheckSection("additional", arcount, true)) return err;
    if (pos_ != size_) {
      return Fail(std::to_string(size_ - pos_) +
                  " trailing byte(s) after the last record");
    }
    return std::nullopt;
  }

 private:
  std::optional<std::string> CheckSection(const char* section,
                                          std::uint16_t count,
                                          bool opt_allowed) {
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::string what =
          std::string(section) + " record " + std::to_string(i);
      bool root_owner = false;
      if (auto err = CheckName(what, &root_owner)) return err;
      if (!Advance(10, "record fixed fields")) return error_;
      std::uint16_t type = U16At(pos_ - 10);
      std::uint16_t rdlength = U16At(pos_ - 2);
      if (type == static_cast<std::uint16_t>(RrType::kOpt)) {
        if (!opt_allowed) {
          return Fail("OPT pseudo-record in the " + std::string(section) +
                      " section; RFC 6891 allows it only in additional");
        }
        if (!root_owner) {
          return Fail("OPT owner name is not the root (RFC 6891 §6.1.2)");
        }
        if (seen_opt_) return Fail("duplicate OPT record (RFC 6891 §6.1.1)");
        seen_opt_ = true;
      }
      if (pos_ + rdlength > size_) {
        return Fail(what + ": RDLENGTH " + std::to_string(rdlength) +
                    " overruns the message (" +
                    std::to_string(size_ - pos_) + " bytes left)");
      }
      pos_ += rdlength;
    }
    return std::nullopt;
  }

  /// Walks one (possibly compressed) name starting at pos_, advancing
  /// pos_ past it. Pointer targets must strictly decrease — that is what
  /// "a prior occurrence of a name" (RFC 1035 §4.1.4) compiles to, and it
  /// makes loops impossible by construction.
  std::optional<std::string> CheckName(const std::string& what,
                                       bool* root = nullptr) {
    std::size_t cursor = pos_;
    std::size_t resume = 0;
    bool jumped = false;
    std::size_t last_target = cursor;
    std::size_t name_bytes = 1;  // terminating root byte
    std::size_t labels = 0;
    for (;;) {
      if (cursor >= size_) return Fail(what + ": name runs off the buffer");
      std::uint8_t len = data_[cursor];
      if ((len & 0xc0) == 0xc0) {
        if (cursor + 1 >= size_) {
          return Fail(what + ": compression pointer truncated");
        }
        std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | data_[cursor + 1];
        if (target >= last_target) {
          return Fail(what + ": compression pointer at offset " +
                      std::to_string(cursor) + " targets offset " +
                      std::to_string(target) +
                      " which is not strictly earlier — forward reference "
                      "or loop");
        }
        if (!jumped) {
          resume = cursor + 2;
          jumped = true;
        }
        last_target = target;
        cursor = target;
        continue;
      }
      if ((len & 0xc0) != 0) {
        return Fail(what + ": reserved label type 0x" +
                    std::to_string(len >> 6) + " at offset " +
                    std::to_string(cursor));
      }
      ++cursor;
      if (len == 0) break;
      if (len > Name::kMaxLabelLength) {
        return Fail(what + ": label length " + std::to_string(len) +
                    " exceeds 63");
      }
      if (cursor + len > size_) {
        return Fail(what + ": label runs off the buffer");
      }
      name_bytes += 1 + len;
      if (name_bytes > Name::kMaxWireLength) {
        return Fail(what + ": name exceeds 255 wire bytes");
      }
      ++labels;
      cursor += len;
    }
    if (root != nullptr) *root = labels == 0;
    pos_ = jumped ? resume : cursor;
    return std::nullopt;
  }

  bool Advance(std::size_t count, const char* what) {
    if (pos_ + count > size_) {
      error_ = std::string(what) + " truncated at offset " +
               std::to_string(pos_);
      return false;
    }
    pos_ += count;
    return true;
  }

  std::optional<std::string> Fail(std::string message) {
    error_ = std::move(message);
    return error_;
  }

  [[nodiscard]] std::uint16_t U16At(std::size_t at) const {
    return static_cast<std::uint16_t>((data_[at] << 8) | data_[at + 1]);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool seen_opt_ = false;
  std::string error_;
};

#ifdef CLOUDDNS_AUDIT
/// Re-entrancy guard: the violation dump decodes the message, and that
/// decode path itself calls Audit().
thread_local bool tl_in_audit_dump = false;

[[noreturn]] void Die(const std::uint8_t* data, std::size_t size,
                      const char* context, const std::string& why) {
  tl_in_audit_dump = true;
  std::fprintf(stderr,
               "\n=== clouddns wire audit failure ===\ncontext: %s\n"
               "violation: %s\nmessage (%zu bytes):\n",
               context, why.c_str(), size);
  const std::size_t shown = size < 512 ? size : 512;
  for (std::size_t i = 0; i < shown; ++i) {
    std::fprintf(stderr, "%02x%s", data[i],
                 (i + 1) % 16 == 0 ? "\n" : " ");
  }
  if (shown % 16 != 0) std::fprintf(stderr, "\n");
  if (shown < size) std::fprintf(stderr, "... (%zu more)\n", size - shown);
  if (auto decoded = Message::Decode(data, size)) {
    std::fprintf(stderr, "decoded view:\n%s", decoded->ToString().c_str());
  } else {
    std::fprintf(stderr, "decoded view: parser also rejects this message\n");
  }
  std::fflush(stderr);
  std::abort();
}
#endif

}  // namespace

std::optional<std::string> CheckWire(const std::uint8_t* data,
                                     std::size_t size) {
  return Walker(data, size).Check();
}

std::optional<std::string> CheckWire(const WireBuffer& wire) {
  return CheckWire(wire.data(), wire.size());
}

void Audit(const std::uint8_t* data, std::size_t size, const char* context) {
#ifdef CLOUDDNS_AUDIT
  if (tl_in_audit_dump) return;
  if (auto why = CheckWire(data, size)) Die(data, size, context, *why);
#else
  (void)data;
  (void)size;
  (void)context;
#endif
}

void Audit(const WireBuffer& wire, const char* context) {
  Audit(wire.data(), wire.size(), context);
}

}  // namespace clouddns::dns::audit
