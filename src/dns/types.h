// Core DNS protocol enumerations (RFC 1035, 4034, 6891).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clouddns::dns {

/// Resource-record types used in this study. Values are IANA assignments.
enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kSrv = 33,
  kOpt = 41,    ///< EDNS(0) pseudo-RR, additional section only.
  kDs = 43,
  kRrsig = 46,
  kNsec = 47,
  kDnskey = 48,
  kNsec3 = 50,
  kNsec3Param = 51,
  kAxfr = 252,  ///< Zone-transfer pseudo-qtype (TCP only).
  kAny = 255,
};

enum class RrClass : std::uint16_t {
  kIn = 1,
  kCh = 3,
  kAny = 255,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,
  kUpdate = 5,
};

/// Transport the query arrived over; part of every capture record.
enum class Transport : std::uint8_t {
  kUdp = 0,
  kTcp = 1,
};

[[nodiscard]] std::string_view ToString(RrType type);
[[nodiscard]] std::optional<RrType> RrTypeFromString(std::string_view text);

[[nodiscard]] std::string_view ToString(Rcode rcode);
[[nodiscard]] std::string_view ToString(Transport transport);

/// The paper's definition of "junk": any query whose response RCODE is not
/// NOERROR (§3).
[[nodiscard]] constexpr bool IsJunkRcode(Rcode rcode) {
  return rcode != Rcode::kNoError;
}

}  // namespace clouddns::dns
