#include "dns/name.h"

#include <algorithm>
#include <stdexcept>

namespace clouddns::dns {
namespace {

[[nodiscard]] constexpr std::uint8_t LowerByte(std::uint8_t c) {
  // Label length prefixes are <= 63 and sit below 'A', so lowercasing the
  // whole flat byte stream never disturbs them.
  return (c >= 'A' && c <= 'Z') ? static_cast<std::uint8_t>(c - 'A' + 'a') : c;
}

bool IsAllowedLabelChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_';
}

}  // namespace

void Name::CopyFrom(const Name& other) {
  hash_ = other.hash_;
  size_ = other.size_;
  label_count_ = other.label_count_;
  if (other.size_ > kInlineCapacity) {
    auto* heap = new std::uint8_t[kMaxFlatLength];
    std::memcpy(heap, other.HeapPtr(), other.size_);
    SetHeapPtr(heap);
  } else {
    std::memcpy(storage_, other.storage_, other.size_);
  }
}

void Name::MoveFrom(Name& other) noexcept {
  hash_ = other.hash_;
  size_ = other.size_;
  label_count_ = other.label_count_;
  if (other.size_ > kInlineCapacity) {
    SetHeapPtr(other.HeapPtr());
    other.size_ = 0;
    other.label_count_ = 0;
    other.hash_ = kFnvOffset;
  } else {
    std::memcpy(storage_, other.storage_, other.size_);
  }
}

void Name::AppendLabelUnchecked(const std::uint8_t* bytes, std::uint8_t len) {
  const std::size_t new_size = size_ + 1u + len;
  if (new_size > kInlineCapacity && size_ <= kInlineCapacity) {
    auto* heap = new std::uint8_t[kMaxFlatLength];
    std::memcpy(heap, storage_, size_);
    SetHeapPtr(heap);
  }
  std::uint8_t* dst =
      (new_size > kInlineCapacity ? HeapPtr() : storage_) + size_;
  *dst = len;
  std::memcpy(dst + 1, bytes, len);
  size_ = static_cast<std::uint8_t>(new_size);
  ++label_count_;
}

void Name::AppendFlatUnchecked(const std::uint8_t* bytes, std::size_t size,
                               std::size_t labels) {
  const std::size_t new_size = size_ + size;
  if (new_size > kInlineCapacity && size_ <= kInlineCapacity) {
    auto* heap = new std::uint8_t[kMaxFlatLength];
    std::memcpy(heap, storage_, size_);
    SetHeapPtr(heap);
  }
  std::uint8_t* dst =
      (new_size > kInlineCapacity ? HeapPtr() : storage_) + size_;
  std::memcpy(dst, bytes, size);
  size_ = static_cast<std::uint8_t>(new_size);
  label_count_ = static_cast<std::uint8_t>(label_count_ + labels);
}

std::uint64_t Name::HashFlat(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= LowerByte(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

bool Name::FlatEquals(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (LowerByte(a[i]) != LowerByte(b[i])) return false;
  }
  return true;
}

std::size_t Name::LabelOffsets(std::uint8_t* offsets) const {
  const std::uint8_t* base = flat();
  const std::uint8_t* p = base;
  for (std::size_t i = 0; i < label_count_; ++i) {
    offsets[i] = static_cast<std::uint8_t>(p - base);
    p += 1 + *p;
  }
  return label_count_;
}

std::optional<Name> Name::Parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  Name name;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    std::size_t end = (dot == std::string_view::npos) ? text.size() : dot;
    std::string_view label = text.substr(start, end - start);
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    for (char c : label) {
      if (!IsAllowedLabelChar(c)) return std::nullopt;
    }
    if (name.size_ + 1u + label.size() > kMaxFlatLength) return std::nullopt;
    name.AppendLabelUnchecked(
        reinterpret_cast<const std::uint8_t*>(label.data()),
        static_cast<std::uint8_t>(label.size()));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  name.RecomputeHash();
  return name;
}

Name Name::FromLabels(const std::vector<std::string>& labels) {
  Name name;
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabelLength) {
      throw std::invalid_argument("Name::FromLabels: bad label");
    }
    if (name.size_ + 1u + label.size() > kMaxFlatLength) {
      throw std::invalid_argument("Name::FromLabels: name too long");
    }
    name.AppendLabelUnchecked(
        reinterpret_cast<const std::uint8_t*>(label.data()),
        static_cast<std::uint8_t>(label.size()));
  }
  name.RecomputeHash();
  return name;
}

bool Name::Builder::Append(const std::uint8_t* bytes, std::size_t len) {
  if (len == 0 || len > kMaxLabelLength ||
      name_.size_ + 1u + len > kMaxFlatLength) {
    return false;
  }
  name_.AppendLabelUnchecked(bytes, static_cast<std::uint8_t>(len));
  return true;
}

Name Name::Builder::Take() {
  name_.RecomputeHash();
  Name out = std::move(name_);
  name_ = Name();
  return out;
}

std::string_view Name::Label(std::size_t i) const {
  const std::uint8_t* p = flat();
  for (; i > 0; --i) {
    p += 1 + *p;
  }
  return {reinterpret_cast<const char*>(p + 1), *p};
}

Name Name::Parent() const {
  return Suffix(label_count_ > 0 ? label_count_ - 1u : 0u);
}

Name Name::Suffix(std::size_t count) const {
  if (count >= label_count_) return *this;
  const std::uint8_t* p = flat();
  for (std::size_t skip = label_count_ - count; skip > 0; --skip) {
    p += 1 + *p;
  }
  Name suffix;
  suffix.AppendFlatUnchecked(p, static_cast<std::size_t>(flat() + size_ - p),
                             count);
  suffix.RecomputeHash();
  return suffix;
}

Name Name::Child(std::string_view label) const {
  if (label.empty() || label.size() > kMaxLabelLength) {
    throw std::invalid_argument("Name::Child: bad label");
  }
  if (size_ + 1u + label.size() > kMaxFlatLength) {
    throw std::invalid_argument("Name::Child: name too long");
  }
  Name child;
  child.AppendLabelUnchecked(
      reinterpret_cast<const std::uint8_t*>(label.data()),
      static_cast<std::uint8_t>(label.size()));
  child.AppendFlatUnchecked(flat(), size_, label_count_);
  child.RecomputeHash();
  return child;
}

bool Name::IsSubdomainOf(const Name& ancestor) const {
  if (ancestor.label_count_ > label_count_ || ancestor.size_ > size_) {
    return false;
  }
  // Walk whole labels off the front; a raw byte-suffix match is not enough
  // because an ASCII digit inside a label can masquerade as a length prefix
  // and fake a label boundary.
  const std::uint8_t* p = flat();
  for (std::size_t skip = label_count_ - ancestor.label_count_; skip > 0;
       --skip) {
    p += 1 + *p;
  }
  const auto tail = static_cast<std::size_t>(flat() + size_ - p);
  return tail == ancestor.size_ && FlatEquals(p, ancestor.flat(), tail);
}

bool Name::Equals(const Name& other) const {
  return hash_ == other.hash_ && size_ == other.size_ &&
         FlatEquals(flat(), other.flat(), size_);
}

int Name::Compare(const Name& other) const {
  // RFC 4034 §6.1 canonical ordering: compare label-by-label starting from
  // the least significant (rightmost) label.
  std::uint8_t offs_a[128];
  std::uint8_t offs_b[128];
  LabelOffsets(offs_a);
  other.LabelOffsets(offs_b);
  const std::uint8_t* base_a = flat();
  const std::uint8_t* base_b = other.flat();
  const std::size_t n =
      std::min<std::size_t>(label_count_, other.label_count_);
  for (std::size_t i = 1; i <= n; ++i) {
    const std::uint8_t* a = base_a + offs_a[label_count_ - i];
    const std::uint8_t* b = base_b + offs_b[other.label_count_ - i];
    const std::size_t len_a = *a;
    const std::size_t len_b = *b;
    const std::size_t m = std::min(len_a, len_b);
    for (std::size_t j = 1; j <= m; ++j) {
      int diff = static_cast<int>(LowerByte(a[j])) -
                 static_cast<int>(LowerByte(b[j]));
      if (diff != 0) return diff < 0 ? -1 : 1;
    }
    if (len_a != len_b) return len_a < len_b ? -1 : 1;
  }
  if (label_count_ != other.label_count_) {
    return label_count_ < other.label_count_ ? -1 : 1;
  }
  return 0;
}

std::string Name::ToString() const {
  if (label_count_ == 0) return ".";
  std::string out;
  out.reserve(size_);
  const std::uint8_t* p = flat();
  for (std::size_t i = 0; i < label_count_; ++i) {
    if (i > 0) out += '.';
    out.append(reinterpret_cast<const char*>(p + 1), *p);
    p += 1 + *p;
  }
  return out;
}

std::string Name::ToKey() const {
  std::string key = ToString();
  for (char& c : key) c = AsciiLower(c);
  return key;
}

}  // namespace clouddns::dns
