#include "dns/name.h"

#include <stdexcept>

namespace clouddns::dns {
namespace {

bool IsAllowedLabelChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_';
}

std::size_t WireLengthOf(const std::vector<std::string>& labels) {
  std::size_t len = 1;  // terminating root byte
  for (const auto& label : labels) len += 1 + label.size();
  return len;
}

}  // namespace

std::optional<Name> Name::Parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    std::size_t end = (dot == std::string_view::npos) ? text.size() : dot;
    std::string_view label = text.substr(start, end - start);
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    for (char c : label) {
      if (!IsAllowedLabelChar(c)) return std::nullopt;
    }
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (WireLengthOf(labels) > kMaxWireLength) return std::nullopt;
  Name name;
  name.labels_ = std::move(labels);
  return name;
}

Name Name::FromLabels(std::vector<std::string> labels) {
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabelLength) {
      throw std::invalid_argument("Name::FromLabels: bad label");
    }
  }
  if (WireLengthOf(labels) > kMaxWireLength) {
    throw std::invalid_argument("Name::FromLabels: name too long");
  }
  Name name;
  name.labels_ = std::move(labels);
  return name;
}

std::size_t Name::WireLength() const { return WireLengthOf(labels_); }

Name Name::Parent() const {
  Name parent;
  if (labels_.size() > 1) {
    parent.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return parent;
}

Name Name::Suffix(std::size_t count) const {
  Name suffix;
  if (count >= labels_.size()) return *this;
  suffix.labels_.assign(labels_.end() - static_cast<std::ptrdiff_t>(count),
                        labels_.end());
  return suffix;
}

Name Name::Child(std::string_view label) const {
  if (label.empty() || label.size() > kMaxLabelLength) {
    throw std::invalid_argument("Name::Child: bad label");
  }
  Name child;
  child.labels_.reserve(labels_.size() + 1);
  child.labels_.emplace_back(label);
  child.labels_.insert(child.labels_.end(), labels_.begin(), labels_.end());
  if (child.WireLength() > kMaxWireLength) {
    throw std::invalid_argument("Name::Child: name too long");
  }
  return child;
}

bool Name::IsSubdomainOf(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    const std::string& mine = labels_[offset + i];
    const std::string& theirs = ancestor.labels_[i];
    if (mine.size() != theirs.size()) return false;
    for (std::size_t j = 0; j < mine.size(); ++j) {
      if (AsciiLower(mine[j]) != AsciiLower(theirs[j])) return false;
    }
  }
  return true;
}

bool Name::Equals(const Name& other) const {
  return labels_.size() == other.labels_.size() && IsSubdomainOf(other);
}

int Name::Compare(const Name& other) const {
  // RFC 4034 §6.1 canonical ordering: compare label-by-label starting from
  // the least significant (rightmost) label.
  std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 1; i <= n; ++i) {
    const std::string& a = labels_[labels_.size() - i];
    const std::string& b = other.labels_[other.labels_.size() - i];
    std::size_t m = std::min(a.size(), b.size());
    for (std::size_t j = 0; j < m; ++j) {
      int diff = static_cast<unsigned char>(AsciiLower(a[j])) -
                 static_cast<unsigned char>(AsciiLower(b[j]));
      if (diff != 0) return diff < 0 ? -1 : 1;
    }
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  }
  if (labels_.size() != other.labels_.size()) {
    return labels_.size() < other.labels_.size() ? -1 : 1;
  }
  return 0;
}

std::string Name::ToString() const {
  if (labels_.empty()) return ".";
  std::string out;
  out.reserve(WireLength());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += '.';
    out += labels_[i];
  }
  return out;
}

std::string Name::ToKey() const {
  std::string key = ToString();
  for (char& c : key) c = AsciiLower(c);
  return key;
}

std::size_t NameHash::operator()(const Name& name) const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const auto& label : name.labels()) {
    for (char c : label) mix(static_cast<std::uint8_t>(AsciiLower(c)));
    mix('.');
  }
  return static_cast<std::size_t>(h);
}

}  // namespace clouddns::dns
