// Full DNS messages: header, sections, EDNS(0), encode/decode, truncation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/record.h"
#include "dns/types.h"
#include "dns/wire.h"

namespace clouddns::dns {

/// EDNS(0) parameters carried in the OPT pseudo-record (RFC 6891). The
/// paper's Figure 6 is built from `udp_payload_size` of captured queries.
struct EdnsInfo {
  std::uint16_t udp_payload_size = 512;
  bool dnssec_ok = false;  ///< The DO bit.
  std::uint8_t version = 0;

  friend bool operator==(const EdnsInfo&, const EdnsInfo&) = default;
};

/// Classic pre-EDNS maximum UDP response size (RFC 1035 §4.2.1).
inline constexpr std::size_t kClassicUdpLimit = 512;

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  ///< Response flag.
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< Authoritative answer.
  bool tc = false;  ///< Truncated.
  bool rd = false;  ///< Recursion desired.
  bool ra = false;  ///< Recursion available.
  Rcode rcode = Rcode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

class Message {
 public:
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  ///< Excluding the OPT record.
  std::optional<EdnsInfo> edns;

  /// Builds a query with one question. EDNS is attached when provided.
  static Message MakeQuery(std::uint16_t id, const Name& qname, RrType qtype,
                           std::optional<EdnsInfo> edns = std::nullopt);

  /// Builds a response skeleton echoing the query's id/question/EDNS.
  static Message MakeResponse(const Message& query);

  /// Resets this message in place to the MakeQuery skeleton, keeping each
  /// section vector's capacity (reusable-query counterpart of MakeQuery).
  void ResetAsQueryFor(std::uint16_t id, const Name& qname, RrType qtype,
                       const std::optional<EdnsInfo>& edns = std::nullopt);

  /// Resets this message in place to the MakeResponse skeleton for `query`,
  /// keeping each section vector's capacity so a reused response message
  /// stops allocating once warm.
  void ResetAsResponseTo(const Message& query);

  /// Encodes to wire format with name compression. The OPT record is
  /// synthesized from `edns` into the additional section.
  [[nodiscard]] WireBuffer Encode() const;

  /// Reusable-buffer encode: clears `out` (keeping its capacity) and fills
  /// it, so steady-state encoding into a pooled buffer never allocates.
  void EncodeInto(WireBuffer& out) const;

  /// Encodes for UDP transport with a payload limit: when the full message
  /// exceeds `limit`, answer/authority/additional sections are dropped and
  /// TC is set, exactly what an authoritative does before the client retries
  /// over TCP. `limit` comes from the query's EDNS size (or 512).
  [[nodiscard]] WireBuffer EncodeWithLimit(std::size_t limit,
                                           bool* truncated = nullptr) const;

  /// Reusable-buffer variant of EncodeWithLimit.
  void EncodeWithLimitInto(std::size_t limit, WireBuffer& out,
                           bool* truncated = nullptr) const;

  /// Decodes from wire bytes. Returns nullopt on any malformation.
  static std::optional<Message> Decode(const WireBuffer& wire);
  static std::optional<Message> Decode(const std::uint8_t* data,
                                       std::size_t size);

  /// Reusable-message decode: resets `out` (keeping each section vector's
  /// capacity) and fills it. Returns false on any malformation, leaving
  /// `out` in an unspecified but destructible state.
  [[nodiscard]] static bool DecodeInto(const std::uint8_t* data,
                                       std::size_t size, Message& out);

  /// dig-style multi-line rendering for examples and debugging.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace clouddns::dns
