#include "dns/record.h"

namespace clouddns::dns {

void Question::Encode(WireWriter& writer) const {
  writer.WriteName(name);
  writer.WriteU16(static_cast<std::uint16_t>(type));
  writer.WriteU16(static_cast<std::uint16_t>(rclass));
}

bool Question::Decode(WireReader& reader, Question& out) {
  std::uint16_t type = 0, rclass = 0;
  if (!reader.ReadName(out.name) || !reader.ReadU16(type) ||
      !reader.ReadU16(rclass)) {
    return false;
  }
  out.type = static_cast<RrType>(type);
  out.rclass = static_cast<RrClass>(rclass);
  return true;
}

std::string Question::ToString() const {
  return name.ToString() + " " + std::string(dns::ToString(type));
}

void ResourceRecord::Encode(WireWriter& writer) const {
  writer.WriteName(name);
  writer.WriteU16(static_cast<std::uint16_t>(type));
  writer.WriteU16(static_cast<std::uint16_t>(rclass));
  writer.WriteU32(ttl);
  std::size_t rdlength_at = writer.size();
  writer.WriteU16(0);  // RDLENGTH placeholder
  std::size_t rdata_start = writer.size();
  EncodeRdata(rdata, writer);
  writer.PatchU16(rdlength_at,
                  static_cast<std::uint16_t>(writer.size() - rdata_start));
}

bool ResourceRecord::Decode(WireReader& reader, ResourceRecord& out) {
  std::uint16_t type = 0, rclass = 0, rdlength = 0;
  if (!reader.ReadName(out.name) || !reader.ReadU16(type) ||
      !reader.ReadU16(rclass) || !reader.ReadU32(out.ttl) ||
      !reader.ReadU16(rdlength)) {
    return false;
  }
  out.type = static_cast<RrType>(type);
  out.rclass = static_cast<RrClass>(rclass);
  return DecodeRdata(out.type, rdlength, reader, out.rdata);
}

std::string ResourceRecord::ToString() const {
  return name.ToString() + " " + std::to_string(ttl) + " IN " +
         std::string(dns::ToString(type)) + " " + RdataToString(rdata);
}

ResourceRecord MakeA(const Name& name, net::Ipv4Address addr,
                     std::uint32_t ttl) {
  return {name, RrType::kA, RrClass::kIn, ttl, ARdata{addr}};
}

ResourceRecord MakeAaaa(const Name& name, net::Ipv6Address addr,
                        std::uint32_t ttl) {
  return {name, RrType::kAaaa, RrClass::kIn, ttl, AaaaRdata{addr}};
}

ResourceRecord MakeNs(const Name& name, const Name& nameserver,
                      std::uint32_t ttl) {
  return {name, RrType::kNs, RrClass::kIn, ttl, NsRdata{nameserver}};
}

ResourceRecord MakePtr(const Name& name, const Name& target,
                       std::uint32_t ttl) {
  return {name, RrType::kPtr, RrClass::kIn, ttl, PtrRdata{target}};
}

ResourceRecord MakeMx(const Name& name, std::uint16_t pref,
                      const Name& exchange, std::uint32_t ttl) {
  return {name, RrType::kMx, RrClass::kIn, ttl, MxRdata{pref, exchange}};
}

ResourceRecord MakeSoa(const Name& name, const SoaRdata& soa,
                       std::uint32_t ttl) {
  return {name, RrType::kSoa, RrClass::kIn, ttl, soa};
}

ResourceRecord MakeTxt(const Name& name, std::string text, std::uint32_t ttl) {
  TxtRdata rdata;
  rdata.strings.push_back(std::move(text));
  return {name, RrType::kTxt, RrClass::kIn, ttl, std::move(rdata)};
}

}  // namespace clouddns::dns
