// Typed RDATA for the record types this study touches, plus a raw fallback
// so unknown types round-trip losslessly (RFC 3597 spirit).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "dns/wire.h"
#include "net/ip.h"

namespace clouddns::dns {

struct ARdata {
  net::Ipv4Address address;
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

struct AaaaRdata {
  net::Ipv6Address address;
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};

struct NsRdata {
  Name nameserver;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

struct CnameRdata {
  Name target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

struct PtrRdata {
  Name target;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  friend bool operator==(const MxRdata&, const MxRdata&) = default;
};

struct TxtRdata {
  std::vector<std::string> strings;  ///< Each entry <= 255 bytes on the wire.
  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  ///< Negative-caching TTL (RFC 2308).
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

struct SrvRdata {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  Name target;
  friend bool operator==(const SrvRdata&, const SrvRdata&) = default;
};

struct DsRdata {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t digest_type = 0;
  std::vector<std::uint8_t> digest;
  friend bool operator==(const DsRdata&, const DsRdata&) = default;
};

struct DnskeyRdata {
  std::uint16_t flags = 0;  ///< 256 = ZSK, 257 = KSK.
  std::uint8_t protocol = 3;
  std::uint8_t algorithm = 0;
  std::vector<std::uint8_t> public_key;
  friend bool operator==(const DnskeyRdata&, const DnskeyRdata&) = default;
};

struct RrsigRdata {
  std::uint16_t type_covered = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  std::vector<std::uint8_t> signature;
  friend bool operator==(const RrsigRdata&, const RrsigRdata&) = default;
};

struct NsecRdata {
  Name next;
  std::vector<RrType> types;  ///< Ascending, for the type bitmap.
  friend bool operator==(const NsecRdata&, const NsecRdata&) = default;
};

/// RFC 5155 hashed denial of existence. The next-hashed-owner field is
/// raw hash bytes (presentation format base32hex-encodes it; see
/// zone/nsec3.h).
struct Nsec3Rdata {
  std::uint8_t hash_algorithm = 1;  ///< 1 = SHA-1 in the RFC; mocked here.
  std::uint8_t flags = 0;           ///< Bit 0 = opt-out.
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;   ///< <= 255 bytes.
  std::vector<std::uint8_t> next_hashed_owner;
  std::vector<RrType> types;
  friend bool operator==(const Nsec3Rdata&, const Nsec3Rdata&) = default;
};

struct Nsec3ParamRdata {
  std::uint8_t hash_algorithm = 1;
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;
  friend bool operator==(const Nsec3ParamRdata&, const Nsec3ParamRdata&) =
      default;
};

/// Fallback for types without a dedicated struct.
struct RawRdata {
  std::vector<std::uint8_t> data;
  friend bool operator==(const RawRdata&, const RawRdata&) = default;
};

using Rdata =
    std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata, MxRdata,
                 TxtRdata, SoaRdata, SrvRdata, DsRdata, DnskeyRdata,
                 RrsigRdata, NsecRdata, Nsec3Rdata, Nsec3ParamRdata,
                 RawRdata>;

/// Serializes `rdata` (without the RDLENGTH prefix). Name compression is
/// only applied where RFC 1035/3597 permit (NS/CNAME/PTR/MX/SOA targets).
void EncodeRdata(const Rdata& rdata, WireWriter& writer);

/// Parses `rdlength` bytes at the reader into the typed form for `type`;
/// unknown types land in RawRdata. Returns false on truncated/bad data.
[[nodiscard]] bool DecodeRdata(RrType type, std::uint16_t rdlength,
                               WireReader& reader, Rdata& out);

/// Human-readable zone-file-ish rendering, for traces and debugging.
[[nodiscard]] std::string RdataToString(const Rdata& rdata);

}  // namespace clouddns::dns
