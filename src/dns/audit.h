// Debug-build DNS wire-format auditor.
//
// CheckWire() structurally re-walks a full DNS message independently of
// the WireReader parser and reports the first RFC 1035 violation it
// finds: short header, label lengths, forward or looping compression
// pointers, names over 255 wire bytes, RDLENGTH running past the buffer,
// trailing bytes after the last record, and EDNS(0) OPT misuse (non-root
// owner, outside the additional section, duplicated — RFC 6891 §6.1.1).
//
// Audit() is the hook compiled into Message encode/decode and the pcap
// capture writer. Under -DCLOUDDNS_AUDIT=ON it runs CheckWire on every
// message the system emits or accepts and aborts with a hex + decoded
// dump on violation, turning the whole test suite and the bench drivers
// into a conformance harness; in normal builds it is an empty call.
// CheckWire itself is always compiled so tests can drive it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/wire.h"

namespace clouddns::dns::audit {

/// Returns a description of the first structural violation, or nullopt
/// when `data` is a well-formed RFC 1035 message.
[[nodiscard]] std::optional<std::string> CheckWire(const std::uint8_t* data,
                                                   std::size_t size);
[[nodiscard]] std::optional<std::string> CheckWire(const WireBuffer& wire);

/// True when the auditor is compiled into the codec paths.
[[nodiscard]] constexpr bool Enabled() {
#ifdef CLOUDDNS_AUDIT
  return true;
#else
  return false;
#endif
}

/// Codec-path hook: no-op unless CLOUDDNS_AUDIT is on, in which case a
/// violation prints `context`, the offending bytes, and a best-effort
/// decoded rendering, then aborts.
void Audit(const std::uint8_t* data, std::size_t size, const char* context);
void Audit(const WireBuffer& wire, const char* context);

}  // namespace clouddns::dns::audit
