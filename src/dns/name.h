// DNS domain names (RFC 1035 §3.1) as a sequence of labels.
//
// Names compare and hash case-insensitively, as the protocol requires, but
// preserve the case they were constructed with. The root name has zero
// labels and prints as ".".
//
// Storage is a flat, length-prefixed label sequence ([len][bytes]...,
// most specific label first, no terminating root byte) held in a small
// inline buffer, with a heap fallback for the rare name longer than
// kInlineCapacity flat bytes. The case-insensitive FNV-1a hash over the
// flat bytes is computed once at construction, so hash-keyed containers
// and caches never rebuild a canonical key per lookup.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/lifetime.h"

namespace clouddns::dns {

/// Lowercases an ASCII character; DNS is ASCII-case-insensitive only.
[[nodiscard]] constexpr char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

class Name {
 public:
  static constexpr std::size_t kMaxLabelLength = 63;
  /// Maximum wire length including the terminating root byte.
  static constexpr std::size_t kMaxWireLength = 255;
  /// Maximum flat storage bytes (wire length minus the root byte).
  static constexpr std::size_t kMaxFlatLength = kMaxWireLength - 1;
  /// Flat sizes up to this stay in the inline buffer (sizeof(Name) == 64);
  /// longer names (rare: deep chains, 63-byte labels) go to one heap block.
  static constexpr std::size_t kInlineCapacity = 54;

  /// The root name ".".
  Name() noexcept : hash_(kFnvOffset) {}
  Name(const Name& other) { CopyFrom(other); }
  Name(Name&& other) noexcept { MoveFrom(other); }
  Name& operator=(const Name& other) {
    if (this != &other) {
      ReleaseHeap();
      CopyFrom(other);
    }
    return *this;
  }
  Name& operator=(Name&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      MoveFrom(other);
    }
    return *this;
  }
  ~Name() { ReleaseHeap(); }

  /// Parses presentation format ("www.example.nl" or "www.example.nl.").
  /// Returns nullopt for empty labels, over-long labels/names, or characters
  /// outside [-_a-zA-Z0-9] (we do not need escapes for this study).
  static std::optional<Name> Parse(std::string_view text);

  /// Builds from explicit labels, most specific first (["www","example","nl"]).
  /// Throws std::invalid_argument on over-long labels or names.
  static Name FromLabels(const std::vector<std::string>& labels);

  /// Incremental construction for wire decoding; defined after Name.
  class Builder;

  [[nodiscard]] bool IsRoot() const { return label_count_ == 0; }
  [[nodiscard]] std::size_t LabelCount() const { return label_count_; }
  /// The i-th label, most specific first. O(i) walk over the flat bytes.
  [[nodiscard]] std::string_view Label(std::size_t i) const
      CLOUDDNS_LIFETIMEBOUND;

  /// The flat label bytes: [len][bytes]... most specific first, no root
  /// byte. This is what the wire writer emits and what suffix-keyed caches
  /// hash slices of.
  [[nodiscard]] const std::uint8_t* FlatData() const CLOUDDNS_LIFETIMEBOUND {
    return flat();
  }
  [[nodiscard]] std::size_t FlatSize() const { return size_; }
  /// The precomputed case-insensitive FNV-1a hash over the flat bytes.
  [[nodiscard]] std::uint64_t CachedHash() const { return hash_; }
  /// True when the flat bytes live in the inline buffer (tests).
  [[nodiscard]] bool IsInline() const { return size_ <= kInlineCapacity; }

  /// Hashes an arbitrary flat label-byte range the way Name itself is
  /// hashed, so suffix slices of one name can probe Name-keyed tables
  /// without constructing a Name.
  [[nodiscard]] static std::uint64_t HashFlat(const std::uint8_t* data,
                                              std::size_t size);
  /// Case-insensitive equality of two flat label-byte ranges.
  [[nodiscard]] static bool FlatEquals(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       std::size_t size);

  /// Wire-format length: 1 byte per label length + label bytes + root byte.
  [[nodiscard]] std::size_t WireLength() const { return size_ + 1u; }

  /// The name with the most specific label removed; parent of root is root.
  [[nodiscard]] Name Parent() const;

  /// Keeps only the `count` least specific labels ("a.b.c.d".Suffix(2) ==
  /// "c.d"). Suffix(0) is the root.
  [[nodiscard]] Name Suffix(std::size_t count) const;

  /// Prepends a label, making the name one level more specific.
  /// Throws std::invalid_argument if the result would exceed wire limits.
  [[nodiscard]] Name Child(std::string_view label) const;

  /// True when this name equals `ancestor` or is underneath it.
  /// Every name is a subdomain of the root.
  [[nodiscard]] bool IsSubdomainOf(const Name& ancestor) const;

  /// Case-insensitive equality/ordering (canonical DNS ordering by label,
  /// least significant label first, per RFC 4034 §6.1).
  [[nodiscard]] bool Equals(const Name& other) const;
  [[nodiscard]] int Compare(const Name& other) const;

  /// Presentation format without trailing dot ("example.nl"); root is ".".
  [[nodiscard]] std::string ToString() const;

  /// Lowercased presentation form, for use as a canonical map key.
  [[nodiscard]] std::string ToKey() const;

  friend bool operator==(const Name& a, const Name& b) { return a.Equals(b); }
  friend bool operator<(const Name& a, const Name& b) {
    return a.Compare(b) < 0;
  }

 private:
  static constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ull;

  // The heap pointer is memcpy'd into the inline byte array rather than
  // stored in a union so that its 8-byte alignment does not pad the name
  // past one cache line.
  [[nodiscard]] std::uint8_t* HeapPtr() const {
    std::uint8_t* p;
    std::memcpy(&p, storage_, sizeof(p));
    return p;
  }
  void SetHeapPtr(std::uint8_t* p) { std::memcpy(storage_, &p, sizeof(p)); }
  [[nodiscard]] const std::uint8_t* flat() const {
    return size_ > kInlineCapacity ? HeapPtr() : storage_;
  }
  void ReleaseHeap() {
    if (size_ > kInlineCapacity) delete[] HeapPtr();
  }
  void CopyFrom(const Name& other);
  void MoveFrom(Name& other) noexcept;
  /// Appends one label (length + bytes) without validation beyond what the
  /// caller guarantees; promotes to heap storage when needed.
  void AppendLabelUnchecked(const std::uint8_t* bytes, std::uint8_t len);
  /// Appends a pre-validated flat byte range holding `labels` whole labels.
  void AppendFlatUnchecked(const std::uint8_t* bytes, std::size_t size,
                           std::size_t labels);
  void RecomputeHash() { hash_ = HashFlat(flat(), size_); }
  /// Fills `offsets` with the flat offset of each label; returns the count.
  std::size_t LabelOffsets(std::uint8_t* offsets) const;

  std::uint64_t hash_ = kFnvOffset;
  std::uint8_t size_ = 0;
  std::uint8_t label_count_ = 0;
  /// Inline flat bytes, or (when size_ > kInlineCapacity) the heap pointer.
  /// Zero-initialized so the (size_-guarded) heap-pointer read in
  /// ReleaseHeap is never a read of indeterminate bytes — GCC's
  /// -Wmaybe-uninitialized cannot always prove the guard in Debug builds.
  std::uint8_t storage_[kInlineCapacity] = {};
};

static_assert(sizeof(Name) == 64, "Name should stay one cache line");

/// Incremental Name construction for wire decoding: labels are appended in
/// most-specific-first order, exactly the order they appear on the wire.
/// Append() rejects invalid label lengths and wire-length overflow; Take()
/// finalizes the hash and leaves the builder reusable (root name).
class Name::Builder {
 public:
  [[nodiscard]] bool Append(const std::uint8_t* bytes, std::size_t len);
  [[nodiscard]] Name Take();

 private:
  Name name_;
};

struct NameHash {
  std::size_t operator()(const Name& name) const noexcept {
    return static_cast<std::size_t>(name.CachedHash());
  }
};

struct NameEqual {
  bool operator()(const Name& a, const Name& b) const noexcept {
    return a.Equals(b);
  }
};

}  // namespace clouddns::dns
