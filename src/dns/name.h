// DNS domain names (RFC 1035 §3.1) as a sequence of labels.
//
// Names compare and hash case-insensitively, as the protocol requires, but
// preserve the case they were constructed with. The root name has zero
// labels and prints as ".".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace clouddns::dns {

class Name {
 public:
  static constexpr std::size_t kMaxLabelLength = 63;
  /// Maximum wire length including the terminating root byte.
  static constexpr std::size_t kMaxWireLength = 255;

  /// The root name ".".
  Name() = default;

  /// Parses presentation format ("www.example.nl" or "www.example.nl.").
  /// Returns nullopt for empty labels, over-long labels/names, or characters
  /// outside [-_a-zA-Z0-9] (we do not need escapes for this study).
  static std::optional<Name> Parse(std::string_view text);

  /// Builds from explicit labels, most specific first (["www","example","nl"]).
  /// Throws std::invalid_argument on over-long labels or names.
  static Name FromLabels(std::vector<std::string> labels);

  [[nodiscard]] bool IsRoot() const { return labels_.empty(); }
  [[nodiscard]] std::size_t LabelCount() const { return labels_.size(); }
  [[nodiscard]] const std::string& Label(std::size_t i) const {
    return labels_[i];
  }
  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }

  /// Wire-format length: 1 byte per label length + label bytes + root byte.
  [[nodiscard]] std::size_t WireLength() const;

  /// The name with the most specific label removed; parent of root is root.
  [[nodiscard]] Name Parent() const;

  /// Keeps only the `count` least specific labels ("a.b.c.d".Suffix(2) ==
  /// "c.d"). Suffix(0) is the root.
  [[nodiscard]] Name Suffix(std::size_t count) const;

  /// Prepends a label, making the name one level more specific.
  /// Throws std::invalid_argument if the result would exceed wire limits.
  [[nodiscard]] Name Child(std::string_view label) const;

  /// True when this name equals `ancestor` or is underneath it.
  /// Every name is a subdomain of the root.
  [[nodiscard]] bool IsSubdomainOf(const Name& ancestor) const;

  /// Case-insensitive equality/ordering (canonical DNS ordering by label,
  /// least significant label first, per RFC 4034 §6.1).
  [[nodiscard]] bool Equals(const Name& other) const;
  [[nodiscard]] int Compare(const Name& other) const;

  /// Presentation format without trailing dot ("example.nl"); root is ".".
  [[nodiscard]] std::string ToString() const;

  /// Lowercased presentation form, for use as a canonical map key.
  [[nodiscard]] std::string ToKey() const;

  friend bool operator==(const Name& a, const Name& b) { return a.Equals(b); }
  friend bool operator<(const Name& a, const Name& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::vector<std::string> labels_;
};

struct NameHash {
  std::size_t operator()(const Name& name) const noexcept;
};

/// Lowercases an ASCII character; DNS is ASCII-case-insensitive only.
[[nodiscard]] constexpr char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace clouddns::dns
