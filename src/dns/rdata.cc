#include "dns/rdata.h"

#include <algorithm>

namespace clouddns::dns {
namespace {

void EncodeTypeBitmap(const std::vector<RrType>& types, WireWriter& writer) {
  // RFC 4034 §4.1.2: window blocks of 256 types, each with a bitmap of up to
  // 32 bytes. Types must be emitted in ascending order.
  std::vector<std::uint16_t> sorted;
  sorted.reserve(types.size());
  for (RrType t : types) sorted.push_back(static_cast<std::uint16_t>(t));
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::size_t i = 0;
  while (i < sorted.size()) {
    std::uint8_t window = static_cast<std::uint8_t>(sorted[i] >> 8);
    std::uint8_t bitmap[32] = {};
    int max_byte = -1;
    while (i < sorted.size() && (sorted[i] >> 8) == window) {
      std::uint8_t low = static_cast<std::uint8_t>(sorted[i] & 0xff);
      bitmap[low / 8] |= static_cast<std::uint8_t>(0x80 >> (low % 8));
      max_byte = std::max(max_byte, low / 8);
      ++i;
    }
    writer.WriteU8(window);
    writer.WriteU8(static_cast<std::uint8_t>(max_byte + 1));
    writer.WriteBytes(bitmap, static_cast<std::size_t>(max_byte + 1));
  }
}

bool DecodeTypeBitmap(WireReader& reader, std::size_t end_offset,
                      std::vector<RrType>& out) {
  while (reader.offset() < end_offset) {
    std::uint8_t window = 0, len = 0;
    if (!reader.ReadU8(window) || !reader.ReadU8(len)) return false;
    if (len == 0 || len > 32) return false;
    std::vector<std::uint8_t> bitmap;
    if (!reader.ReadBytes(len, bitmap)) return false;
    for (std::size_t byte = 0; byte < bitmap.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        if (bitmap[byte] & (0x80u >> bit)) {
          out.push_back(static_cast<RrType>((window << 8) |
                                            (byte * 8 + static_cast<std::size_t>(bit))));
        }
      }
    }
  }
  return reader.offset() == end_offset;
}

std::string BytesToHex(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

struct EncodeVisitor {
  WireWriter& writer;

  void operator()(const ARdata& r) const {
    auto bytes = r.address.ToBytes();
    writer.WriteBytes(bytes.data(), bytes.size());
  }
  void operator()(const AaaaRdata& r) const {
    writer.WriteBytes(r.address.bytes().data(), r.address.bytes().size());
  }
  void operator()(const NsRdata& r) const { writer.WriteName(r.nameserver); }
  void operator()(const CnameRdata& r) const { writer.WriteName(r.target); }
  void operator()(const PtrRdata& r) const { writer.WriteName(r.target); }
  void operator()(const MxRdata& r) const {
    writer.WriteU16(r.preference);
    writer.WriteName(r.exchange);
  }
  void operator()(const TxtRdata& r) const {
    for (const auto& s : r.strings) {
      std::size_t len = std::min<std::size_t>(s.size(), 255);
      writer.WriteU8(static_cast<std::uint8_t>(len));
      writer.WriteBytes(reinterpret_cast<const std::uint8_t*>(s.data()), len);
    }
  }
  void operator()(const SoaRdata& r) const {
    writer.WriteName(r.mname);
    writer.WriteName(r.rname);
    writer.WriteU32(r.serial);
    writer.WriteU32(r.refresh);
    writer.WriteU32(r.retry);
    writer.WriteU32(r.expire);
    writer.WriteU32(r.minimum);
  }
  void operator()(const SrvRdata& r) const {
    writer.WriteU16(r.priority);
    writer.WriteU16(r.weight);
    writer.WriteU16(r.port);
    writer.WriteName(r.target, /*compress=*/false);
  }
  void operator()(const DsRdata& r) const {
    writer.WriteU16(r.key_tag);
    writer.WriteU8(r.algorithm);
    writer.WriteU8(r.digest_type);
    writer.WriteBytes(r.digest);
  }
  void operator()(const DnskeyRdata& r) const {
    writer.WriteU16(r.flags);
    writer.WriteU8(r.protocol);
    writer.WriteU8(r.algorithm);
    writer.WriteBytes(r.public_key);
  }
  void operator()(const RrsigRdata& r) const {
    writer.WriteU16(r.type_covered);
    writer.WriteU8(r.algorithm);
    writer.WriteU8(r.labels);
    writer.WriteU32(r.original_ttl);
    writer.WriteU32(r.expiration);
    writer.WriteU32(r.inception);
    writer.WriteU16(r.key_tag);
    writer.WriteName(r.signer, /*compress=*/false);
    writer.WriteBytes(r.signature);
  }
  void operator()(const NsecRdata& r) const {
    writer.WriteName(r.next, /*compress=*/false);
    EncodeTypeBitmap(r.types, writer);
  }
  void operator()(const Nsec3Rdata& r) const {
    writer.WriteU8(r.hash_algorithm);
    writer.WriteU8(r.flags);
    writer.WriteU16(r.iterations);
    writer.WriteU8(static_cast<std::uint8_t>(r.salt.size()));
    writer.WriteBytes(r.salt);
    writer.WriteU8(static_cast<std::uint8_t>(r.next_hashed_owner.size()));
    writer.WriteBytes(r.next_hashed_owner);
    EncodeTypeBitmap(r.types, writer);
  }
  void operator()(const Nsec3ParamRdata& r) const {
    writer.WriteU8(r.hash_algorithm);
    writer.WriteU8(r.flags);
    writer.WriteU16(r.iterations);
    writer.WriteU8(static_cast<std::uint8_t>(r.salt.size()));
    writer.WriteBytes(r.salt);
  }
  void operator()(const RawRdata& r) const { writer.WriteBytes(r.data); }
};

}  // namespace

void EncodeRdata(const Rdata& rdata, WireWriter& writer) {
  std::visit(EncodeVisitor{writer}, rdata);
}

bool DecodeRdata(RrType type, std::uint16_t rdlength, WireReader& reader,
                 Rdata& out) {
  const std::size_t end = reader.offset() + rdlength;
  if (reader.remaining() < rdlength) return false;

  auto finish = [&reader, end] { return reader.offset() == end; };

  switch (type) {
    case RrType::kA: {
      if (rdlength != 4) return false;
      std::vector<std::uint8_t> b;
      if (!reader.ReadBytes(4, b)) return false;
      out = ARdata{net::Ipv4Address::FromBytes({b[0], b[1], b[2], b[3]})};
      return true;
    }
    case RrType::kAaaa: {
      if (rdlength != 16) return false;
      std::vector<std::uint8_t> b;
      if (!reader.ReadBytes(16, b)) return false;
      net::Ipv6Address::Bytes bytes;
      std::copy(b.begin(), b.end(), bytes.begin());
      out = AaaaRdata{net::Ipv6Address(bytes)};
      return true;
    }
    case RrType::kNs: {
      NsRdata r;
      if (!reader.ReadName(r.nameserver) || !finish()) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kCname: {
      CnameRdata r;
      if (!reader.ReadName(r.target) || !finish()) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kPtr: {
      PtrRdata r;
      if (!reader.ReadName(r.target) || !finish()) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kMx: {
      MxRdata r;
      if (!reader.ReadU16(r.preference) || !reader.ReadName(r.exchange) ||
          !finish()) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    case RrType::kTxt: {
      TxtRdata r;
      while (reader.offset() < end) {
        std::uint8_t len = 0;
        if (!reader.ReadU8(len)) return false;
        if (reader.offset() + len > end) return false;
        std::vector<std::uint8_t> bytes;
        if (!reader.ReadBytes(len, bytes)) return false;
        r.strings.emplace_back(bytes.begin(), bytes.end());
      }
      if (!finish()) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kSoa: {
      SoaRdata r;
      if (!reader.ReadName(r.mname) || !reader.ReadName(r.rname) ||
          !reader.ReadU32(r.serial) || !reader.ReadU32(r.refresh) ||
          !reader.ReadU32(r.retry) || !reader.ReadU32(r.expire) ||
          !reader.ReadU32(r.minimum) || !finish()) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    case RrType::kSrv: {
      SrvRdata r;
      if (!reader.ReadU16(r.priority) || !reader.ReadU16(r.weight) ||
          !reader.ReadU16(r.port) || !reader.ReadName(r.target) || !finish()) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    case RrType::kDs: {
      DsRdata r;
      if (rdlength < 4) return false;
      if (!reader.ReadU16(r.key_tag) || !reader.ReadU8(r.algorithm) ||
          !reader.ReadU8(r.digest_type) ||
          !reader.ReadBytes(end - reader.offset(), r.digest)) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    case RrType::kDnskey: {
      DnskeyRdata r;
      if (rdlength < 4) return false;
      if (!reader.ReadU16(r.flags) || !reader.ReadU8(r.protocol) ||
          !reader.ReadU8(r.algorithm) ||
          !reader.ReadBytes(end - reader.offset(), r.public_key)) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    case RrType::kRrsig: {
      RrsigRdata r;
      if (rdlength < 18) return false;
      if (!reader.ReadU16(r.type_covered) || !reader.ReadU8(r.algorithm) ||
          !reader.ReadU8(r.labels) || !reader.ReadU32(r.original_ttl) ||
          !reader.ReadU32(r.expiration) || !reader.ReadU32(r.inception) ||
          !reader.ReadU16(r.key_tag) || !reader.ReadName(r.signer)) {
        return false;
      }
      if (reader.offset() > end) return false;
      if (!reader.ReadBytes(end - reader.offset(), r.signature)) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kNsec: {
      NsecRdata r;
      if (!reader.ReadName(r.next)) return false;
      if (reader.offset() > end) return false;
      if (!DecodeTypeBitmap(reader, end, r.types)) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kNsec3: {
      Nsec3Rdata r;
      std::uint8_t salt_len = 0, hash_len = 0;
      if (!reader.ReadU8(r.hash_algorithm) || !reader.ReadU8(r.flags) ||
          !reader.ReadU16(r.iterations) || !reader.ReadU8(salt_len) ||
          !reader.ReadBytes(salt_len, r.salt) || !reader.ReadU8(hash_len) ||
          !reader.ReadBytes(hash_len, r.next_hashed_owner)) {
        return false;
      }
      if (reader.offset() > end) return false;
      if (!DecodeTypeBitmap(reader, end, r.types)) return false;
      out = std::move(r);
      return true;
    }
    case RrType::kNsec3Param: {
      Nsec3ParamRdata r;
      std::uint8_t salt_len = 0;
      if (!reader.ReadU8(r.hash_algorithm) || !reader.ReadU8(r.flags) ||
          !reader.ReadU16(r.iterations) || !reader.ReadU8(salt_len) ||
          !reader.ReadBytes(salt_len, r.salt) ||
          reader.offset() != end) {
        return false;
      }
      out = std::move(r);
      return true;
    }
    default: {
      RawRdata r;
      if (!reader.ReadBytes(rdlength, r.data)) return false;
      out = std::move(r);
      return true;
    }
  }
}

std::string RdataToString(const Rdata& rdata) {
  struct Visitor {
    std::string operator()(const ARdata& r) const {
      return r.address.ToString();
    }
    std::string operator()(const AaaaRdata& r) const {
      return r.address.ToString();
    }
    std::string operator()(const NsRdata& r) const {
      return r.nameserver.ToString();
    }
    std::string operator()(const CnameRdata& r) const {
      return r.target.ToString();
    }
    std::string operator()(const PtrRdata& r) const {
      return r.target.ToString();
    }
    std::string operator()(const MxRdata& r) const {
      return std::to_string(r.preference) + " " + r.exchange.ToString();
    }
    std::string operator()(const TxtRdata& r) const {
      std::string out;
      for (const auto& s : r.strings) {
        if (!out.empty()) out += ' ';
        out += '"' + s + '"';
      }
      return out;
    }
    std::string operator()(const SoaRdata& r) const {
      return r.mname.ToString() + " " + r.rname.ToString() + " " +
             std::to_string(r.serial);
    }
    std::string operator()(const SrvRdata& r) const {
      return std::to_string(r.priority) + " " + std::to_string(r.weight) +
             " " + std::to_string(r.port) + " " + r.target.ToString();
    }
    std::string operator()(const DsRdata& r) const {
      return std::to_string(r.key_tag) + " " + std::to_string(r.algorithm) +
             " " + std::to_string(r.digest_type) + " " + BytesToHex(r.digest);
    }
    std::string operator()(const DnskeyRdata& r) const {
      return std::to_string(r.flags) + " " + std::to_string(r.protocol) +
             " " + std::to_string(r.algorithm) + " " +
             BytesToHex(r.public_key);
    }
    std::string operator()(const RrsigRdata& r) const {
      return std::string(ToString(static_cast<RrType>(r.type_covered))) +
             " " + r.signer.ToString() + " " + std::to_string(r.key_tag);
    }
    std::string operator()(const NsecRdata& r) const {
      std::string out = r.next.ToString();
      for (RrType t : r.types) {
        out += ' ';
        out += ToString(t);
      }
      return out;
    }
    std::string operator()(const Nsec3Rdata& r) const {
      std::string out = std::to_string(r.hash_algorithm) + " " +
                        std::to_string(r.flags) + " " +
                        std::to_string(r.iterations) + " " +
                        (r.salt.empty() ? "-" : BytesToHex(r.salt)) + " " +
                        BytesToHex(r.next_hashed_owner);
      for (RrType t : r.types) {
        out += ' ';
        out += ToString(t);
      }
      return out;
    }
    std::string operator()(const Nsec3ParamRdata& r) const {
      return std::to_string(r.hash_algorithm) + " " +
             std::to_string(r.flags) + " " + std::to_string(r.iterations) +
             " " + (r.salt.empty() ? "-" : BytesToHex(r.salt));
    }
    std::string operator()(const RawRdata& r) const {
      return "\\# " + std::to_string(r.data.size()) + " " + BytesToHex(r.data);
    }
  };
  return std::visit(Visitor{}, rdata);
}

}  // namespace clouddns::dns
