// Resource records and questions.
#pragma once

#include <cstdint>
#include <string>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/types.h"
#include "dns/wire.h"

namespace clouddns::dns {

struct Question {
  Name name;
  RrType type = RrType::kA;
  RrClass rclass = RrClass::kIn;

  void Encode(WireWriter& writer) const;
  [[nodiscard]] static bool Decode(WireReader& reader, Question& out);
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Question&, const Question&) = default;
};

struct ResourceRecord {
  Name name;
  RrType type = RrType::kA;
  RrClass rclass = RrClass::kIn;
  std::uint32_t ttl = 0;
  Rdata rdata;

  void Encode(WireWriter& writer) const;
  [[nodiscard]] static bool Decode(WireReader& reader, ResourceRecord& out);
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) =
      default;
};

// Convenience constructors used throughout zone building and tests.
[[nodiscard]] ResourceRecord MakeA(const Name& name, net::Ipv4Address addr,
                                   std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakeAaaa(const Name& name, net::Ipv6Address addr,
                                      std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakeNs(const Name& name, const Name& nameserver,
                                    std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakePtr(const Name& name, const Name& target,
                                     std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakeMx(const Name& name, std::uint16_t pref,
                                    const Name& exchange, std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakeSoa(const Name& name, const SoaRdata& soa,
                                     std::uint32_t ttl);
[[nodiscard]] ResourceRecord MakeTxt(const Name& name, std::string text,
                                     std::uint32_t ttl);

}  // namespace clouddns::dns
