#include "entrada/analytics.h"

#include <unordered_set>

namespace clouddns::entrada {

Aggregation CountBy(const capture::CaptureBuffer& records, const KeyFn& key,
                    const Filter& filter) {
  Aggregation result;
  for (const auto& record : records) {
    if (filter && !filter(record)) continue;
    ++result.counts[key(record)];
    ++result.total;
  }
  return result;
}

std::uint64_t CountIf(const capture::CaptureBuffer& records,
                      const Filter& filter) {
  std::uint64_t count = 0;
  for (const auto& record : records) {
    if (!filter || filter(record)) ++count;
  }
  return count;
}

std::uint64_t DistinctExact(const capture::CaptureBuffer& records,
                            const KeyFn& key, const Filter& filter) {
  std::unordered_set<std::string> seen;
  for (const auto& record : records) {
    if (filter && !filter(record)) continue;
    seen.insert(key(record));
  }
  return seen.size();
}

Hll DistinctSketch(const capture::CaptureBuffer& records, const KeyFn& key,
                   const Filter& filter) {
  Hll sketch;
  for (const auto& record : records) {
    if (filter && !filter(record)) continue;
    sketch.Add(key(record));
  }
  return sketch;
}

Cdf CollectCdf(const capture::CaptureBuffer& records, const ValueFn& value,
               const Filter& filter) {
  Cdf cdf;
  for (const auto& record : records) {
    if (filter && !filter(record)) continue;
    if (auto v = value(record)) cdf.Add(*v);
  }
  return cdf;
}

std::map<std::string, Aggregation> CountByMonth(
    const capture::CaptureBuffer& records, const KeyFn& key,
    const Filter& filter) {
  std::map<std::string, Aggregation> months;
  // Capture streams are time-ordered, so the month bucket changes rarely:
  // memoize the current month's range and its Aggregation slot instead of
  // redoing civil-date math and a map lookup per record.
  sim::MonthBucketer bucketer;
  std::string current;
  Aggregation* agg = nullptr;
  for (const auto& record : records) {
    if (filter && !filter(record)) continue;
    const std::string& month = bucketer.Key(record.time_us);
    if (agg == nullptr || month != current) {
      current = month;
      agg = &months[month];
    }
    ++agg->counts[key(record)];
    ++agg->total;
  }
  return months;
}

KeyFn KeyQtype() {
  return [](const capture::CaptureRecord& r) {
    return std::string(ToString(r.qtype));
  };
}

KeyFn KeyRcode() {
  return [](const capture::CaptureRecord& r) {
    return std::string(ToString(r.rcode));
  };
}

KeyFn KeyTransport() {
  return [](const capture::CaptureRecord& r) {
    return std::string(ToString(r.transport));
  };
}

KeyFn KeySrcAddress() {
  return [](const capture::CaptureRecord& r) { return r.src.ToString(); };
}

KeyFn KeyIpFamily() {
  return [](const capture::CaptureRecord& r) {
    return std::string(r.src.is_v4() ? "IPv4" : "IPv6");
  };
}

KeyFn KeySrcAs(const net::AsDatabase& asdb) {
  return [&asdb](const capture::CaptureRecord& r) {
    auto asn = asdb.OriginAs(r.src);
    return asn ? "AS" + std::to_string(*asn) : std::string("AS?");
  };
}

Filter FilterJunk() {
  return [](const capture::CaptureRecord& r) {
    return dns::IsJunkRcode(r.rcode);
  };
}

Filter FilterValid() {
  return [](const capture::CaptureRecord& r) {
    return !dns::IsJunkRcode(r.rcode);
  };
}

Filter FilterTransport(dns::Transport transport) {
  return [transport](const capture::CaptureRecord& r) {
    return r.transport == transport;
  };
}

Filter FilterServer(std::uint32_t server_id) {
  return [server_id](const capture::CaptureRecord& r) {
    return r.server_id == server_id;
  };
}

Filter And(Filter a, Filter b) {
  return [a = std::move(a), b = std::move(b)](const capture::CaptureRecord& r) {
    return (!a || a(r)) && (!b || b(r));
  };
}

}  // namespace clouddns::entrada
