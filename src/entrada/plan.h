// Fused analysis plans: register many (filter, key, aggregate) specs and
// execute them all in ONE pass over a capture buffer, chunked across
// worker threads.
//
// The drivers in src/analysis re-scan the same multi-hundred-thousand-row
// buffer 4-10 times per table — once per statistic — and pay a std::function
// call plus a heap-allocated key string per record per scan. A plan walks
// the buffer once: each record is tested against every spec's filter
// (enum-dispatched, no virtual call for the common shapes), keys are
// computed as integer codes, and per-thread partial states merge at the
// end. String keys materialize once per *group* at merge time instead of
// once per record.
//
// Determinism: partial states are merged in chunk order and every
// aggregate is either order-independent (counts, HLL, sets) or sorted
// downstream (CDF quantiles), so results are identical for every thread
// count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "capture/record.h"
#include "capture/sharded.h"
#include "entrada/analytics.h"
#include "entrada/cdf.h"
#include "entrada/hll.h"
#include "net/asdb.h"

namespace clouddns::entrada {

/// Enum-dispatched filter. A record passes when the kind-predicate holds
/// AND every set optional constraint (server, tag) matches AND the custom
/// functor (if any) accepts. The common paper filters never touch a
/// std::function.
struct FilterSpec {
  enum class Kind : std::uint8_t {
    kAll,    ///< Accept everything.
    kValid,  ///< NOERROR responses (§3's "valid" traffic).
    kJunk,   ///< Non-NOERROR responses.
    kUdp,
    kTcp,
    kV4,
    kV6,
  };
  Kind kind = Kind::kAll;
  std::optional<std::uint32_t> server_id;  ///< Restrict to one NS.
  std::optional<std::uint16_t> tag;        ///< Restrict to one tag value.
  Filter custom;                           ///< Fallback escape hatch.

  static FilterSpec All() { return {}; }
  static FilterSpec Valid() { return {Kind::kValid, {}, {}, nullptr}; }
  static FilterSpec Junk() { return {Kind::kJunk, {}, {}, nullptr}; }
  static FilterSpec Udp() { return {Kind::kUdp, {}, {}, nullptr}; }
  static FilterSpec Tcp() { return {Kind::kTcp, {}, {}, nullptr}; }
  static FilterSpec V4() { return {Kind::kV4, {}, {}, nullptr}; }
  static FilterSpec V6() { return {Kind::kV6, {}, {}, nullptr}; }
  static FilterSpec Server(std::uint32_t id) {
    FilterSpec spec;
    spec.server_id = id;
    return spec;
  }
  static FilterSpec Tagged(std::uint16_t value) {
    FilterSpec spec;
    spec.tag = value;
    return spec;
  }
  static FilterSpec Custom(Filter filter) {
    FilterSpec spec;
    spec.custom = std::move(filter);
    return spec;
  }

  [[nodiscard]] FilterSpec& WithServer(std::uint32_t id) {
    server_id = id;
    return *this;
  }
  [[nodiscard]] FilterSpec& WithTag(std::uint16_t value) {
    tag = value;
    return *this;
  }
};

/// Enum-dispatched key extractor. Every kind except kSrcAddress/kCustom
/// codes the key as an integer; strings are rendered only at merge time.
struct KeySpec {
  enum class Kind : std::uint8_t {
    kQtype,
    kRcode,
    kTransport,
    kFamily,      ///< "IPv4" / "IPv6"
    kSrcAddress,  ///< Exact source address (string-keyed).
    kSrcAs,       ///< "AS15169" via the plan's AS database; "AS?" unrouted.
    kTag,         ///< The plan's per-record tag, rendered by the tag namer.
    kCustom,
  };
  Kind kind = Kind::kQtype;
  KeyFn custom;

  static KeySpec Qtype() { return {Kind::kQtype, nullptr}; }
  static KeySpec RcodeKey() { return {Kind::kRcode, nullptr}; }
  static KeySpec Transport() { return {Kind::kTransport, nullptr}; }
  static KeySpec Family() { return {Kind::kFamily, nullptr}; }
  static KeySpec SrcAddress() { return {Kind::kSrcAddress, nullptr}; }
  static KeySpec SrcAs() { return {Kind::kSrcAs, nullptr}; }
  static KeySpec Tag() { return {Kind::kTag, nullptr}; }
  static KeySpec Custom(KeyFn fn) { return {Kind::kCustom, std::move(fn)}; }
};

/// Computes a small integer label for a record — e.g. the provider that
/// owns its source AS. Evaluated lazily, at most once per record, and
/// shared by every spec that filters or groups on the tag.
using TagFn = std::function<std::uint16_t(const capture::CaptureRecord&)>;
/// A tag that is a pure function of the record's source AS (nullopt =
/// unrouted). Declaring that purity lets the plan memoize the AS lookup
/// AND the tag per distinct source address — source addresses repeat
/// thousands of times in a capture, so the per-record cost collapses to
/// one hash probe.
using AsnTagFn = std::function<std::uint16_t(std::optional<net::Asn>)>;
/// Renders a tag value for report keys ("Google", ...).
using TagNamer = std::function<std::string(std::uint16_t)>;

class AnalysisPlan {
 public:
  using Handle = std::size_t;

  /// AS database for KeySpec::SrcAs (and anything the tag fn needs is the
  /// tag fn's own business). Must outlive Execute().
  void SetAsDatabase(const net::AsDatabase& asdb) { asdb_ = &asdb; }
  /// Per-record tag + its renderer; enables FilterSpec::Tagged and
  /// KeySpec::Tag. Must be pure — it runs concurrently on many records.
  void SetTag(TagFn fn, TagNamer namer) {
    tag_fn_ = std::move(fn);
    tag_namer_ = std::move(namer);
  }
  /// AS-pure tag variant: the tag is derived from the source AS alone, so
  /// the plan caches (AS, tag) per source address. Requires SetAsDatabase.
  /// A full SetTag, if also present, takes precedence.
  void SetAsnTag(AsnTagFn fn, TagNamer namer) {
    asn_tag_fn_ = std::move(fn);
    tag_namer_ = std::move(namer);
  }

  // --- Spec registration (before Execute) ---
  Handle Count(FilterSpec filter);
  Handle GroupBy(FilterSpec filter, KeySpec key);
  Handle GroupByMonth(FilterSpec filter, KeySpec key);
  Handle Distinct(FilterSpec filter, KeySpec key);
  Handle Sketch(FilterSpec filter, KeySpec key);
  Handle Collect(FilterSpec filter, ValueFn value);

  /// One fused pass over `records`, chunked over `threads` workers
  /// (0 = hardware concurrency, honoring CLOUDDNS_THREADS; workers run on
  /// the shared base::ThreadPool). Results are bit-identical for every
  /// thread count. Custom functors must be pure.
  void Execute(const capture::CaptureBuffer& records, std::size_t threads = 0);

  /// Shard-wise fused pass: scans the shard buffers in place, paying
  /// neither the K-way merge nor the merged-buffer allocation. Worker w
  /// owns shards s ≡ w (mod workers) in increasing shard order and
  /// partials fold in worker order, so results are byte-identical to
  /// Execute(records.Flatten()) at every thread count (every aggregate is
  /// order-independent or sorted downstream — see the header comment).
  void Execute(const capture::ShardedCapture& records,
               std::size_t threads = 0);

  // --- Result accessors (after Execute) ---
  [[nodiscard]] std::uint64_t CountResult(Handle h) const;
  [[nodiscard]] const Aggregation& GroupResult(Handle h) const;
  [[nodiscard]] const std::map<std::string, Aggregation>& MonthResult(
      Handle h) const;
  [[nodiscard]] std::uint64_t DistinctResult(Handle h) const;
  [[nodiscard]] const Hll& SketchResult(Handle h) const;
  [[nodiscard]] Cdf& CdfResult(Handle h);

 private:
  enum class Op : std::uint8_t {
    kCount,
    kGroup,
    kMonth,
    kDistinct,
    kSketch,
    kCdf,
  };
  struct Spec {
    Op op;
    FilterSpec filter;
    KeySpec key;
    ValueFn value;
    std::size_t slot = 0;  ///< Index into the per-op result array.
  };

  struct Partial;  // Per-worker accumulation state (plan.cc).

  /// A contiguous slice of records (one chunk of a flat buffer, or one
  /// whole shard). A worker's unit of scan work.
  struct ScanRange {
    const capture::CaptureRecord* first;
    const capture::CaptureRecord* last;
  };

  [[nodiscard]] Handle Add(Op op, FilterSpec filter, KeySpec key,
                           ValueFn value);
  void Scan(const capture::CaptureRecord* first, const capture::CaptureRecord* last,
            Partial& partial) const;
  /// Shared back end of both Execute overloads: one worker per entry,
  /// scanning its ranges in order on the shared pool, then Fold.
  void ExecuteRanges(const std::vector<std::vector<ScanRange>>& per_worker);
  void Fold(std::vector<Partial>& partials);

  const net::AsDatabase* asdb_ = nullptr;
  TagFn tag_fn_;
  AsnTagFn asn_tag_fn_;
  TagNamer tag_namer_;

  std::vector<Spec> specs_;
  std::size_t slots_[6] = {0, 0, 0, 0, 0, 0};  ///< Next slot per Op.

  // Results, indexed by spec slot.
  std::vector<std::uint64_t> counts_;
  std::vector<Aggregation> groups_;
  std::vector<std::map<std::string, Aggregation>> months_;
  std::vector<std::uint64_t> distincts_;
  std::vector<Hll> sketches_;
  std::vector<Cdf> cdfs_;
  bool executed_ = false;
};

}  // namespace clouddns::entrada
