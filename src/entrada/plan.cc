#include "entrada/plan.h"

// lint:hot-path
// Scan() runs once per (record, spec) pair over every capture a figure or
// table consumes — keep per-record work allocation-free; strings render
// only at Fold time, once per distinct key.

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "base/threads.h"
#include "net/ip.h"
#include "sim/clock.h"

namespace clouddns::entrada {
namespace {

constexpr std::uint64_t kNoAs = ~0ull;  ///< Code for an unrouted source.

[[nodiscard]] bool IsCoded(KeySpec::Kind kind) {
  return kind != KeySpec::Kind::kSrcAddress && kind != KeySpec::Kind::kCustom;
}

/// Months coded as (year << 4) | month; rendered at merge time.
// lint:allow(hot-alloc): runs once per distinct month at Fold time, not per record
[[nodiscard]] std::string RenderMonth(std::uint64_t code) {
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%04d-%02u",
                        static_cast<int>(code >> 4),
                        static_cast<unsigned>(code & 0xf));
  // lint:allow(hot-alloc): one string per distinct month, merge-time only
  return std::string(buf, static_cast<std::size_t>(n));
}

/// Memoized time -> month-code map; capture streams are time-sorted so
/// the cached range almost always hits.
struct MonthCoder {
  std::uint64_t Code(sim::TimeUs time) {
    if (time < lo_ || time >= hi_) {
      sim::CivilDate date = sim::CivilFromTime(time);
      lo_ = sim::TimeFromCivil({date.year, date.month, 1});
      hi_ = date.month == 12 ? sim::TimeFromCivil({date.year + 1, 1, 1})
                             : sim::TimeFromCivil({date.year, date.month + 1, 1});
      code_ = (static_cast<std::uint64_t>(date.year) << 4) | date.month;
    }
    return code_;
  }
  sim::TimeUs lo_ = 0, hi_ = 0;
  std::uint64_t code_ = 0;
};

/// Per-address memo shared by every record of a worker chunk: the origin
/// AS and (when an AS-pure tag is installed) the tag. Both are pure
/// functions of the address, so per-worker caches cannot perturb results.
struct CachedSrc {
  std::uint64_t asn_code = kNoAs;
  std::uint16_t tag = 0;
};
using SrcCache =
    std::unordered_map<net::IpAddress, CachedSrc, net::IpAddressHash>;

/// Lazy per-record derived values, computed at most once per record no
/// matter how many specs consume them.
struct RecordCtx {
  const capture::CaptureRecord& r;
  const net::AsDatabase* asdb;
  const TagFn* tag_fn;
  const AsnTagFn* asn_tag_fn;
  SrcCache* src_cache;

  const CachedSrc* cached = nullptr;
  bool tag_done = false;
  std::uint16_t tag = 0;

  const CachedSrc& Cached() {
    if (cached == nullptr) {
      auto [it, inserted] = src_cache->try_emplace(r.src);
      if (inserted) {
        if (asdb != nullptr) {
          if (auto asn = asdb->OriginAs(r.src)) it->second.asn_code = *asn;
        }
        if (*asn_tag_fn) {
          it->second.tag = (*asn_tag_fn)(
              it->second.asn_code == kNoAs
                  ? std::nullopt
                  : std::optional<net::Asn>(
                        static_cast<net::Asn>(it->second.asn_code)));
        }
      }
      cached = &it->second;
    }
    return *cached;
  }

  std::uint64_t AsnCode() { return Cached().asn_code; }
  std::uint16_t Tag() {
    if (!tag_done) {
      tag_done = true;
      if (*tag_fn) {
        tag = (*tag_fn)(r);
      } else if (*asn_tag_fn) {
        tag = Cached().tag;
      }
    }
    return tag;
  }
};

[[nodiscard]] bool Pass(const FilterSpec& filter, RecordCtx& ctx) {
  const capture::CaptureRecord& r = ctx.r;
  switch (filter.kind) {
    case FilterSpec::Kind::kAll: break;
    case FilterSpec::Kind::kValid:
      if (dns::IsJunkRcode(r.rcode)) return false;
      break;
    case FilterSpec::Kind::kJunk:
      if (!dns::IsJunkRcode(r.rcode)) return false;
      break;
    case FilterSpec::Kind::kUdp:
      if (r.transport != dns::Transport::kUdp) return false;
      break;
    case FilterSpec::Kind::kTcp:
      if (r.transport != dns::Transport::kTcp) return false;
      break;
    case FilterSpec::Kind::kV4:
      if (!r.src.is_v4()) return false;
      break;
    case FilterSpec::Kind::kV6:
      if (r.src.is_v4()) return false;
      break;
  }
  if (filter.server_id && r.server_id != *filter.server_id) return false;
  if (filter.tag && ctx.Tag() != *filter.tag) return false;
  if (filter.custom && !filter.custom(r)) return false;
  return true;
}

[[nodiscard]] std::uint64_t KeyCode(const KeySpec& key, RecordCtx& ctx) {
  const capture::CaptureRecord& r = ctx.r;
  switch (key.kind) {
    case KeySpec::Kind::kQtype:
      return static_cast<std::uint16_t>(r.qtype);
    case KeySpec::Kind::kRcode:
      return static_cast<std::uint8_t>(r.rcode);
    case KeySpec::Kind::kTransport:
      return static_cast<std::uint8_t>(r.transport);
    case KeySpec::Kind::kFamily:
      return r.src.is_v4() ? 0 : 1;
    case KeySpec::Kind::kSrcAs:
      return ctx.AsnCode();
    case KeySpec::Kind::kTag:
      return ctx.Tag();
    default:
      return 0;  // Unreachable for coded kinds.
  }
}

}  // namespace

/// Per-worker accumulation state; one slot vector per Op, mirroring the
/// plan's own result arrays. Cache-line aligned: partials live in one
/// vector and workers mutate them concurrently, so without the padding
/// adjacent workers' hot counters would false-share a line.
struct alignas(64) AnalysisPlan::Partial {
  /// Group-by state that holds integer-coded keys and a string-key
  /// fallback; only one of the two maps sees traffic per spec.
  struct Group {
    std::unordered_map<std::uint64_t, std::uint64_t> coded;
    // lint:allow(hot-alloc): string-key fallback map — only string-keyed specs (kSrcAddress/kCustom) ever touch it
    std::map<std::string, std::uint64_t> strings;
    std::uint64_t total = 0;
  };
  struct DistinctSet {
    std::unordered_set<std::uint64_t> coded;
    std::unordered_set<net::IpAddress, net::IpAddressHash> addresses;
    // lint:allow(hot-alloc): string-key fallback set for kCustom distinct specs only
    std::unordered_set<std::string> texts;
    [[nodiscard]] std::size_t Size() const {
      return coded.size() + addresses.size() + texts.size();
    }
  };

  std::vector<std::uint64_t> counts;
  std::vector<Group> groups;
  std::vector<std::map<std::uint64_t, Group>> months;
  std::vector<DistinctSet> distincts;
  std::vector<Hll> sketches;
  std::vector<std::vector<double>> cdf_values;
  MonthCoder month_coder;
  SrcCache src_cache;
};

AnalysisPlan::Handle AnalysisPlan::Add(Op op, FilterSpec filter, KeySpec key,
                                       ValueFn value) {
  Spec spec{op, std::move(filter), std::move(key), std::move(value),
            slots_[static_cast<std::size_t>(op)]++};
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

AnalysisPlan::Handle AnalysisPlan::Count(FilterSpec filter) {
  return Add(Op::kCount, std::move(filter), {}, nullptr);
}
AnalysisPlan::Handle AnalysisPlan::GroupBy(FilterSpec filter, KeySpec key) {
  return Add(Op::kGroup, std::move(filter), std::move(key), nullptr);
}
AnalysisPlan::Handle AnalysisPlan::GroupByMonth(FilterSpec filter,
                                                KeySpec key) {
  return Add(Op::kMonth, std::move(filter), std::move(key), nullptr);
}
AnalysisPlan::Handle AnalysisPlan::Distinct(FilterSpec filter, KeySpec key) {
  return Add(Op::kDistinct, std::move(filter), std::move(key), nullptr);
}
AnalysisPlan::Handle AnalysisPlan::Sketch(FilterSpec filter, KeySpec key) {
  return Add(Op::kSketch, std::move(filter), std::move(key), nullptr);
}
AnalysisPlan::Handle AnalysisPlan::Collect(FilterSpec filter, ValueFn value) {
  return Add(Op::kCdf, std::move(filter), {}, std::move(value));
}

void AnalysisPlan::Scan(const capture::CaptureRecord* first,
                        const capture::CaptureRecord* last,
                        Partial& partial) const {
  for (const capture::CaptureRecord* record = first; record != last;
       ++record) {
    RecordCtx ctx{*record, asdb_, &tag_fn_, &asn_tag_fn_,
                  &partial.src_cache};
    for (const Spec& spec : specs_) {
      if (!Pass(spec.filter, ctx)) continue;
      switch (spec.op) {
        case Op::kCount:
          ++partial.counts[spec.slot];
          break;
        case Op::kGroup: {
          Partial::Group& group = partial.groups[spec.slot];
          if (IsCoded(spec.key.kind)) {
            ++group.coded[KeyCode(spec.key, ctx)];
          } else if (spec.key.kind == KeySpec::Kind::kSrcAddress) {
            // lint:allow(hot-alloc): address-keyed group specs are string-keyed by design; the paper tables using them are per-address reports
            ++group.strings[record->src.ToString()];
          } else {
            ++group.strings[spec.key.custom(*record)];
          }
          ++group.total;
          break;
        }
        case Op::kMonth: {
          Partial::Group& group =
              partial.months[spec.slot][partial.month_coder.Code(
                  record->time_us)];
          if (IsCoded(spec.key.kind)) {
            ++group.coded[KeyCode(spec.key, ctx)];
          } else if (spec.key.kind == KeySpec::Kind::kSrcAddress) {
            // lint:allow(hot-alloc): address-keyed group specs are string-keyed by design; the paper tables using them are per-address reports
            ++group.strings[record->src.ToString()];
          } else {
            ++group.strings[spec.key.custom(*record)];
          }
          ++group.total;
          break;
        }
        case Op::kDistinct: {
          Partial::DistinctSet& set = partial.distincts[spec.slot];
          if (spec.key.kind == KeySpec::Kind::kSrcAddress) {
            set.addresses.insert(record->src);
          } else if (IsCoded(spec.key.kind)) {
            set.coded.insert(KeyCode(spec.key, ctx));
          } else {
            set.texts.insert(spec.key.custom(*record));
          }
          break;
        }
        case Op::kSketch:
          if (spec.key.kind == KeySpec::Kind::kSrcAddress) {
            partial.sketches[spec.slot].Add(record->src);
          } else if (IsCoded(spec.key.kind)) {
            // Hash the code; HLL only needs a well-mixed 64-bit input.
            std::uint64_t z =
                KeyCode(spec.key, ctx) + 0x9e3779b97f4a7c15ull;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            partial.sketches[spec.slot].AddHash(z ^ (z >> 31));
          } else {
            partial.sketches[spec.slot].Add(spec.key.custom(*record));
          }
          break;
        case Op::kCdf:
          if (auto v = spec.value(*record)) {
            partial.cdf_values[spec.slot].push_back(*v);
          }
          break;
      }
    }
  }
}

namespace {

/// Key-code -> report string, shared by group and month rendering.
// lint:allow(hot-alloc): renders once per distinct key at Fold time, not per record
std::string RenderCode(KeySpec::Kind kind, std::uint64_t code,
                       const TagNamer& namer) {
  switch (kind) {
    case KeySpec::Kind::kQtype:
      // lint:allow(hot-alloc): merge-time key rendering, once per distinct code
      return std::string(ToString(static_cast<dns::RrType>(code)));
    case KeySpec::Kind::kRcode:
      // lint:allow(hot-alloc): merge-time key rendering, once per distinct code
      return std::string(ToString(static_cast<dns::Rcode>(code)));
    case KeySpec::Kind::kTransport:
      // lint:allow(hot-alloc): merge-time key rendering, once per distinct code
      return std::string(ToString(static_cast<dns::Transport>(code)));
    case KeySpec::Kind::kFamily:
      return code == 0 ? "IPv4" : "IPv6";
    case KeySpec::Kind::kSrcAs:
      return code == kNoAs ? "AS?" : "AS" + std::to_string(code);
    case KeySpec::Kind::kTag:
      return namer ? namer(static_cast<std::uint16_t>(code))
                   : std::to_string(code);
    default:
      return std::to_string(code);
  }
}

}  // namespace

void AnalysisPlan::Fold(std::vector<Partial>& partials) {
  // Reduce worker partials in chunk order, then render coded keys into the
  // string-keyed result structures exactly once per distinct key.
  Partial& merged = partials.front();
  for (std::size_t w = 1; w < partials.size(); ++w) {
    Partial& other = partials[w];
    for (std::size_t s = 0; s < merged.counts.size(); ++s) {
      merged.counts[s] += other.counts[s];
    }
    for (std::size_t s = 0; s < merged.groups.size(); ++s) {
      // lint:allow(unordered-iter): commutative += merge into a keyed map — visitation order cannot change any total
      for (const auto& [code, n] : other.groups[s].coded) {
        merged.groups[s].coded[code] += n;
      }
      for (const auto& [key, n] : other.groups[s].strings) {
        merged.groups[s].strings[key] += n;
      }
      merged.groups[s].total += other.groups[s].total;
    }
    for (std::size_t s = 0; s < merged.months.size(); ++s) {
      for (auto& [month, group] : other.months[s]) {
        Partial::Group& into = merged.months[s][month];
        // lint:allow(unordered-iter): commutative += merge into a keyed map — visitation order cannot change any total
        for (const auto& [code, n] : group.coded) into.coded[code] += n;
        for (const auto& [key, n] : group.strings) into.strings[key] += n;
        into.total += group.total;
      }
    }
    for (std::size_t s = 0; s < merged.distincts.size(); ++s) {
      merged.distincts[s].coded.merge(other.distincts[s].coded);
      merged.distincts[s].addresses.merge(other.distincts[s].addresses);
      merged.distincts[s].texts.merge(other.distincts[s].texts);
    }
    for (std::size_t s = 0; s < merged.sketches.size(); ++s) {
      merged.sketches[s].Merge(other.sketches[s]);
    }
    for (std::size_t s = 0; s < merged.cdf_values.size(); ++s) {
      auto& into = merged.cdf_values[s];
      auto& from = other.cdf_values[s];
      into.insert(into.end(), from.begin(), from.end());
    }
  }

  counts_ = std::move(merged.counts);
  distincts_.clear();
  for (const auto& set : merged.distincts) distincts_.push_back(set.Size());
  sketches_ = std::move(merged.sketches);
  cdfs_.assign(merged.cdf_values.size(), Cdf{});
  for (std::size_t s = 0; s < merged.cdf_values.size(); ++s) {
    for (double v : merged.cdf_values[s]) cdfs_[s].Add(v);
  }

  auto render_group = [this](const Spec& spec, const Partial::Group& group) {
    Aggregation agg;
    // Sorted emission at the report boundary: coded keys leave the hash
    // map through an ordered copy, so rendered output can never pick up
    // hash-iteration order even if a renderer ever collides keys.
    std::map<std::uint64_t, std::uint64_t> ordered(group.coded.begin(),
                                                   group.coded.end());
    for (const auto& [code, n] : ordered) {
      agg.counts[RenderCode(spec.key.kind, code, tag_namer_)] += n;
    }
    for (const auto& [key, n] : group.strings) agg.counts[key] += n;
    agg.total = group.total;
    return agg;
  };
  groups_.assign(slots_[static_cast<std::size_t>(Op::kGroup)], {});
  months_.assign(slots_[static_cast<std::size_t>(Op::kMonth)], {});
  for (const Spec& spec : specs_) {
    if (spec.op == Op::kGroup) {
      groups_[spec.slot] = render_group(spec, merged.groups[spec.slot]);
    } else if (spec.op == Op::kMonth) {
      for (const auto& [month, group] : merged.months[spec.slot]) {
        months_[spec.slot][RenderMonth(month)] = render_group(spec, group);
      }
    }
  }
}

void AnalysisPlan::ExecuteRanges(
    const std::vector<std::vector<ScanRange>>& per_worker) {
  const std::size_t workers = per_worker.size();
  std::vector<Partial> partials(workers);
  for (Partial& partial : partials) {
    partial.counts.assign(slots_[static_cast<std::size_t>(Op::kCount)], 0);
    partial.groups.resize(slots_[static_cast<std::size_t>(Op::kGroup)]);
    partial.months.resize(slots_[static_cast<std::size_t>(Op::kMonth)]);
    partial.distincts.resize(
        slots_[static_cast<std::size_t>(Op::kDistinct)]);
    partial.sketches.resize(slots_[static_cast<std::size_t>(Op::kSketch)]);
    partial.cdf_values.resize(slots_[static_cast<std::size_t>(Op::kCdf)]);
  }

  // Worker w scans only per_worker[w] into partials[w]; which pool thread
  // runs which worker index is unobservable, and Fold reduces in worker
  // order, so results are invariant to scheduling.
  base::ThreadPool::Shared().ParallelFor(
      workers, workers, [this, &per_worker, &partials](std::size_t w) {
        for (const ScanRange& range : per_worker[w]) {
          Scan(range.first, range.last, partials[w]);
        }
      });

  Fold(partials);
  executed_ = true;
}

void AnalysisPlan::Execute(const capture::CaptureBuffer& records,
                          std::size_t threads) {
  std::size_t workers = base::EffectiveThreads(threads);
  // More workers than the pool has execution lanes cannot scan any faster;
  // they only multiply partial-state build and fold cost. Capping is pure
  // scheduling: results are invariant to the worker count either way.
  workers = std::min(workers, base::ThreadPool::Shared().lane_count());
  // Tiny inputs are not worth fanning out.
  if (records.size() < 4096) workers = 1;
  if (workers > records.size() && !records.empty()) workers = records.size();
  if (workers == 0) workers = 1;

  const capture::CaptureRecord* base = records.data();
  const std::size_t total = records.size();
  std::vector<std::vector<ScanRange>> per_worker(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    per_worker[w].push_back({base + total * w / workers,
                             base + total * (w + 1) / workers});
  }
  ExecuteRanges(per_worker);
}

void AnalysisPlan::Execute(const capture::ShardedCapture& records,
                          std::size_t threads) {
  if (records.shard_count() <= 1) {
    // Degenerate sharding (e.g. a cache loaded without its sidecar): the
    // contiguous-chunk path keeps intra-buffer parallelism.
    Execute(records.Flatten(), threads);
    return;
  }
  std::size_t workers =
      std::min(base::EffectiveThreads(threads), records.shard_count());
  // Same lane cap as the flat path: extra workers past the pool's real
  // parallelism only add fold work.
  workers = std::min(workers, base::ThreadPool::Shared().lane_count());
  if (records.size() < 4096) workers = 1;

  // Worker w owns shards s ≡ w (mod workers), scanned in increasing shard
  // order. The partition is a pure function of (shard_count, workers) —
  // never of scheduling — and every aggregate is order-independent, so the
  // fold matches the flatten-then-scan result bit for bit.
  std::vector<std::vector<ScanRange>> per_worker(workers);
  for (std::size_t s = 0; s < records.shard_count(); ++s) {
    const capture::CaptureBuffer& shard = records.shard(s);
    if (shard.empty()) continue;
    per_worker[s % workers].push_back(
        {shard.data(), shard.data() + shard.size()});
  }
  ExecuteRanges(per_worker);
}

std::uint64_t AnalysisPlan::CountResult(Handle h) const {
  return counts_[specs_[h].slot];
}
const Aggregation& AnalysisPlan::GroupResult(Handle h) const {
  return groups_[specs_[h].slot];
}
// lint:allow(hot-alloc): result accessor returns the already-rendered month map
const std::map<std::string, Aggregation>& AnalysisPlan::MonthResult(
    Handle h) const {
  return months_[specs_[h].slot];
}
std::uint64_t AnalysisPlan::DistinctResult(Handle h) const {
  return distincts_[specs_[h].slot];
}
const Hll& AnalysisPlan::SketchResult(Handle h) const {
  return sketches_[specs_[h].slot];
}
Cdf& AnalysisPlan::CdfResult(Handle h) {
  return cdfs_[specs_[h].slot];
}

}  // namespace clouddns::entrada
