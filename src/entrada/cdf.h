// Empirical distributions: the CDF of EDNS(0) sizes (Fig. 6) and the
// median TCP-handshake RTTs of Fig. 5 both come from this.
#pragma once

#include <cstdint>
#include <vector>

namespace clouddns::entrada {

class Cdf {
 public:
  void Add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Value at quantile q in [0, 1] (nearest-rank). q=0.5 is the median.
  [[nodiscard]] double Quantile(double q);
  [[nodiscard]] double Median() { return Quantile(0.5); }

  /// Fraction of samples <= x: the y-axis of a CDF plot.
  [[nodiscard]] double FractionAtOrBelow(double x);

  /// (x, F(x)) pairs at each distinct sample value — the plotted series.
  [[nodiscard]] std::vector<std::pair<double, double>> Curve();

  /// Pools another distribution's samples into this one. Quantiles of the
  /// merged CDF are identical no matter how the samples were partitioned.
  void Merge(const Cdf& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sorted_ = false;
  }

 private:
  void Sort();

  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace clouddns::entrada
