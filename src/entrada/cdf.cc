#include "entrada/cdf.h"

#include <algorithm>
#include <cmath>

namespace clouddns::entrada {

void Cdf::Sort() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) {
  if (values_.empty()) return 0.0;
  Sort();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with ceiling, 1-indexed.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size())));
  if (rank == 0) rank = 1;
  return values_[rank - 1];
}

double Cdf::FractionAtOrBelow(double x) {
  if (values_.empty()) return 0.0;
  Sort();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Cdf::Curve() {
  std::vector<std::pair<double, double>> curve;
  if (values_.empty()) return curve;
  Sort();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    bool last_of_value =
        i + 1 == values_.size() || values_[i + 1] != values_[i];
    if (last_of_value) {
      curve.emplace_back(values_[i],
                         static_cast<double>(i + 1) /
                             static_cast<double>(values_.size()));
    }
  }
  return curve;
}

}  // namespace clouddns::entrada
