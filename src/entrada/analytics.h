// The query layer over capture streams: filters, group-by counting,
// distinct counting (exact and HLL), value extraction into CDFs, and
// monthly time-series bucketing. This is the ENTRADA role: every table and
// figure in the paper is a composition of these primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "capture/record.h"
#include "entrada/cdf.h"
#include "entrada/hll.h"
#include "net/asdb.h"

namespace clouddns::entrada {

using Filter = std::function<bool(const capture::CaptureRecord&)>;
using KeyFn = std::function<std::string(const capture::CaptureRecord&)>;
using ValueFn =
    std::function<std::optional<double>(const capture::CaptureRecord&)>;

/// Group-by result; ordered map for stable report rendering.
struct Aggregation {
  std::map<std::string, std::uint64_t> counts;
  std::uint64_t total = 0;

  [[nodiscard]] std::uint64_t Of(const std::string& key) const {
    auto it = counts.find(key);
    return it == counts.end() ? 0 : it->second;
  }
  [[nodiscard]] double Share(const std::string& key) const {
    return total == 0 ? 0.0
                      : static_cast<double>(Of(key)) /
                            static_cast<double>(total);
  }

  /// Adds another aggregation's counts into this one (the reduction step
  /// of the parallel analysis plan).
  void Merge(const Aggregation& other) {
    for (const auto& [key, count] : other.counts) counts[key] += count;
    total += other.total;
  }
};

/// Counts records per key. A null filter accepts everything.
[[nodiscard]] Aggregation CountBy(const capture::CaptureBuffer& records,
                                  const KeyFn& key,
                                  const Filter& filter = nullptr);

[[nodiscard]] std::uint64_t CountIf(const capture::CaptureBuffer& records,
                                    const Filter& filter);

/// Exact distinct count of key values (hash set; use for scaled runs).
[[nodiscard]] std::uint64_t DistinctExact(const capture::CaptureBuffer& records,
                                          const KeyFn& key,
                                          const Filter& filter = nullptr);

/// HLL distinct count (what full-scale ENTRADA would use).
[[nodiscard]] Hll DistinctSketch(const capture::CaptureBuffer& records,
                                 const KeyFn& key,
                                 const Filter& filter = nullptr);

/// Collects extracted values into a CDF; records where the extractor
/// returns nullopt are skipped.
[[nodiscard]] Cdf CollectCdf(const capture::CaptureBuffer& records,
                             const ValueFn& value,
                             const Filter& filter = nullptr);

/// Month key ("2020-04") -> per-key counts. The Fig. 3 longitudinal view.
[[nodiscard]] std::map<std::string, Aggregation> CountByMonth(
    const capture::CaptureBuffer& records, const KeyFn& key,
    const Filter& filter = nullptr);

// --- Common key extractors ---

[[nodiscard]] KeyFn KeyQtype();
[[nodiscard]] KeyFn KeyRcode();
[[nodiscard]] KeyFn KeyTransport();
[[nodiscard]] KeyFn KeySrcAddress();
[[nodiscard]] KeyFn KeyIpFamily();  ///< "IPv4" / "IPv6"

/// Maps the record's source address to its origin AS ("AS15169"), or
/// "AS?" when unrouted. The database must outlive the returned functor.
[[nodiscard]] KeyFn KeySrcAs(const net::AsDatabase& asdb);

// --- Common filters ---

[[nodiscard]] Filter FilterJunk();       ///< Non-NOERROR responses (§3).
[[nodiscard]] Filter FilterValid();
[[nodiscard]] Filter FilterTransport(dns::Transport transport);
[[nodiscard]] Filter FilterServer(std::uint32_t server_id);
[[nodiscard]] Filter And(Filter a, Filter b);

}  // namespace clouddns::entrada
