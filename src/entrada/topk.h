// Space-Saving heavy hitters (Metwally et al.): the streaming top-k
// counter a full-scale ENTRADA deployment uses where exact per-key counts
// over billions of rows would not fit. We use it to rank source ASes —
// reproducing §4.1's observation that at B-Root the first cloud provider
// ranked only 5th, behind ISPs from India, France and Indonesia.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace clouddns::entrada {

class SpaceSaving {
 public:
  /// Tracks at most `capacity` keys; estimates are exact while the number
  /// of distinct keys stays below the capacity, and overestimates by at
  /// most `MaxError()` beyond that.
  explicit SpaceSaving(std::size_t capacity);

  void Add(const std::string& key, std::uint64_t weight = 1);

  struct Entry {
    std::string key;
    std::uint64_t count = 0;  ///< Estimated count (never an underestimate).
    std::uint64_t error = 0;  ///< Upper bound on the overestimate.
  };

  /// The k heaviest tracked keys, by estimated count descending.
  [[nodiscard]] std::vector<Entry> Top(std::size_t k) const;

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t tracked() const { return counters_.size(); }
  /// Upper bound on any estimate's error (the minimum tracked count once
  /// the structure is full, 0 before that).
  [[nodiscard]] std::uint64_t MaxError() const;

 private:
  struct Counter {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t capacity_;
  // Counters sorted ascending by count via a simple min-heap-free design:
  // we keep them in an unordered_map and find the minimum on eviction.
  // capacity is small (hundreds), so the linear min scan on eviction is
  // cheap relative to hash updates.
  std::unordered_map<std::string, Counter> counters_;
  std::uint64_t total_ = 0;
};

}  // namespace clouddns::entrada
