// HyperLogLog distinct counting.
//
// ENTRADA-scale traces (billions of rows) cannot afford exact distinct
// counts of resolvers/ASes per slice; HLL is the standard answer. We use
// p=14 (16384 registers, ~0.81% standard error) and the bias-free variant
// with linear counting for small cardinalities.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "net/ip.h"

namespace clouddns::entrada {

class Hll {
 public:
  static constexpr int kPrecision = 14;
  static constexpr std::size_t kRegisters = 1u << kPrecision;

  Hll() : registers_{} {}

  /// Adds a pre-hashed 64-bit value.
  void AddHash(std::uint64_t hash);

  /// Convenience adders that hash internally (FNV-1a).
  void Add(std::string_view key);
  void Add(const net::IpAddress& address);

  /// Cardinality estimate.
  [[nodiscard]] double Estimate() const;

  /// Union: after merging, this sketch estimates |A ∪ B|.
  void Merge(const Hll& other);

 private:
  std::array<std::uint8_t, kRegisters> registers_;
};

}  // namespace clouddns::entrada
