#include "entrada/topk.h"

#include <algorithm>
#include <stdexcept>

namespace clouddns::entrada {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SpaceSaving: capacity must be positive");
  }
}

void SpaceSaving::Add(const std::string& key, std::uint64_t weight) {
  total_ += weight;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Counter{key, weight, 0});
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error
  // bound (the Space-Saving invariant: estimates never underestimate).
  auto min_it = counters_.begin();
  for (auto candidate = counters_.begin(); candidate != counters_.end();
       ++candidate) {
    if (candidate->second.count < min_it->second.count) min_it = candidate;
  }
  Counter replacement;
  replacement.key = key;
  replacement.error = min_it->second.count;
  replacement.count = min_it->second.count + weight;
  counters_.erase(min_it);
  counters_.emplace(key, std::move(replacement));
}

std::vector<SpaceSaving::Entry> SpaceSaving::Top(std::size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    entries.push_back({counter.key, counter.count, counter.error});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;  // deterministic ties
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::uint64_t SpaceSaving::MaxError() const {
  if (counters_.size() < capacity_) return 0;
  std::uint64_t min_count = ~std::uint64_t{0};
  for (const auto& [key, counter] : counters_) {
    min_count = std::min(min_count, counter.count);
  }
  return min_count;
}

}  // namespace clouddns::entrada
