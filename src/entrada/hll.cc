#include "entrada/hll.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace clouddns::entrada {
namespace {

std::uint64_t Fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  // Final avalanche (splitmix) so low-entropy inputs still spread.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

void Hll::AddHash(std::uint64_t hash) {
  const std::size_t index = hash >> (64 - kPrecision);
  const std::uint64_t rest = hash << kPrecision;
  // Rank = position of the leftmost 1 in the remaining bits (1-based);
  // all-zero rest maps to the maximum rank.
  const int rank =
      rest == 0 ? (64 - kPrecision + 1) : std::countl_zero(rest) + 1;
  registers_[index] =
      std::max(registers_[index], static_cast<std::uint8_t>(rank));
}

void Hll::Add(std::string_view key) {
  AddHash(Fnv1a(key.data(), key.size()));
}

void Hll::Add(const net::IpAddress& address) {
  if (address.is_v4()) {
    auto bytes = address.v4().ToBytes();
    std::uint8_t tagged[5] = {4, bytes[0], bytes[1], bytes[2], bytes[3]};
    AddHash(Fnv1a(tagged, sizeof tagged));
  } else {
    const auto& bytes = address.v6().bytes();
    std::uint8_t tagged[17];
    tagged[0] = 6;
    std::copy(bytes.begin(), bytes.end(), tagged + 1);
    AddHash(Fnv1a(tagged, sizeof tagged));
  }
}

double Hll::Estimate() const {
  constexpr double m = static_cast<double>(kRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);

  double sum = 0;
  int zeros = 0;
  for (std::uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -reg);
    zeros += reg == 0;
  }
  double estimate = alpha * m * m / sum;

  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is small.
  if (estimate <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void Hll::Merge(const Hll& other) {
  for (std::size_t i = 0; i < kRegisters; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace clouddns::entrada
