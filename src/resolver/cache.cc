#include "resolver/cache.h"

namespace clouddns::resolver {
namespace {

std::string AnswerKey(const dns::Name& qname, dns::RrType qtype) {
  return qname.ToKey() + "/" + std::string(ToString(qtype));
}

std::string NxKey(const dns::Name& qname) { return qname.ToKey() + "/!"; }

}  // namespace

void DnsCache::Put(const dns::Name& qname, dns::RrType qtype,
                   CachedAnswer answer) {
  std::string key = AnswerKey(qname, qtype);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.answer = std::move(answer);
    Touch(it->second, key);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{std::move(answer), lru_.begin()});
  EvictIfNeeded();
}

void DnsCache::PutNxDomain(const dns::Name& qname, sim::TimeUs expires_at) {
  std::string key = NxKey(qname);
  CachedAnswer answer;
  answer.rcode = dns::Rcode::kNxDomain;
  answer.expires_at = expires_at;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.answer = std::move(answer);
    Touch(it->second, key);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{std::move(answer), lru_.begin()});
  EvictIfNeeded();
}

const CachedAnswer* DnsCache::Get(const dns::Name& qname, dns::RrType qtype,
                                  sim::TimeUs now) {
  std::string key = AnswerKey(qname, qtype);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.answer.expires_at <= now) {
    if (it != entries_.end() && !retain_expired_) {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    ++misses_;
    return nullptr;
  }
  ++hits_;
  Touch(it->second, key);
  return &it->second.answer;
}

const CachedAnswer* DnsCache::GetStale(const dns::Name& qname,
                                       dns::RrType qtype, sim::TimeUs now,
                                       sim::TimeUs max_stale) {
  std::string key = AnswerKey(qname, qtype);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  const sim::TimeUs expires_at = it->second.answer.expires_at;
  if (expires_at <= now && expires_at + max_stale <= now) return nullptr;
  ++stale_hits_;
  Touch(it->second, key);
  return &it->second.answer;
}

bool DnsCache::IsNxDomain(const dns::Name& qname, sim::TimeUs now) {
  std::string key = NxKey(qname);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.answer.expires_at <= now) {
    if (it != entries_.end() && !retain_expired_) {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    return false;
  }
  Touch(it->second, key);
  return true;
}

void DnsCache::Touch(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void DnsCache::EvictIfNeeded() {
  while (entries_.size() > max_entries_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

void InfraCache::Put(ZoneEntry entry) {
  zones_[entry.apex.ToKey()] = std::move(entry);
}

ZoneEntry* InfraCache::Get(const dns::Name& apex, sim::TimeUs now) {
  auto it = zones_.find(apex.ToKey());
  if (it == zones_.end()) return nullptr;
  if (it->second.expires_at <= now) {
    zones_.erase(it);
    return nullptr;
  }
  return &it->second;
}

ZoneEntry* InfraCache::DeepestEnclosing(const dns::Name& qname,
                                        sim::TimeUs now) {
  for (std::size_t labels = qname.LabelCount();; --labels) {
    if (ZoneEntry* entry = Get(qname.Suffix(labels), now)) return entry;
    if (labels == 0) break;
  }
  return nullptr;
}

void NsecRangeCache::Put(const dns::Name& zone_apex, Range range) {
  // Owner == next is a degenerate (empty) range; owner == qname proofs
  // from NODATA white lies are stored too but can never cover anything.
  zones_[zone_apex.ToKey()][range.prev] = std::move(range);
}

bool NsecRangeCache::Covers(const dns::Name& zone_apex, const dns::Name& qname,
                            sim::TimeUs now) {
  auto zone_it = zones_.find(zone_apex.ToKey());
  if (zone_it == zones_.end()) return false;
  RangeMap& ranges = zone_it->second;
  auto it = ranges.upper_bound(qname);  // first range with prev > qname
  if (it == ranges.begin()) return false;
  --it;
  const Range& range = it->second;
  if (range.expires_at <= now) {
    ranges.erase(it);
    return false;
  }
  if (range.prev.Compare(qname) >= 0) return false;  // prev must exist
  // Wrapping range: next == apex means "past the last name in the zone".
  bool covered = range.next.Equals(zone_apex)
                     ? qname.IsSubdomainOf(zone_apex)
                     : qname.Compare(range.next) < 0;
  if (covered) ++hits_;
  return covered;
}

std::size_t NsecRangeCache::size() const {
  std::size_t total = 0;
  for (const auto& [apex, ranges] : zones_) total += ranges.size();
  return total;
}

}  // namespace clouddns::resolver
