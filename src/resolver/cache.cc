#include "resolver/cache.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

namespace clouddns::resolver {

std::uint64_t DnsCache::TaggedHash(const dns::Name& qname,
                                   std::uint32_t tag) {
  // Fibonacci-style mix of the cached name hash with the type tag, so
  // qname/A, qname/AAAA and qname/NXDOMAIN land in unrelated slots.
  std::uint64_t hash = qname.CachedHash();
  hash ^= 0x9e3779b97f4a7c15ull + tag + (hash << 6) + (hash >> 2);
  return hash;
}

std::uint32_t DnsCache::Find(const dns::Name& qname, std::uint32_t tag) const {
  return table_.Find(TaggedHash(qname, tag), [&](std::uint32_t index) {
    const Entry& entry = entries_[index];
    return entry.tag == tag && entry.name.Equals(qname);
  });
}

void DnsCache::PutTagged(const dns::Name& qname, std::uint32_t tag,
                         CachedAnswer answer) {
  const std::uint32_t existing = Find(qname, tag);
  if (existing != kNil) {
    entries_[existing].answer = std::move(answer);
    Touch(existing);
    return;
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& entry = entries_[index];
  entry.name = qname;
  entry.hash = TaggedHash(qname, tag);
  entry.tag = tag;
  entry.used = true;
  entry.answer = std::move(answer);
  table_.Insert(entry.hash, index);
  ++count_;
  LruPushFront(index);
  EvictIfNeeded();
}

DnsCache::Entry* DnsCache::GetTagged(const dns::Name& qname, std::uint32_t tag,
                                     sim::TimeUs now) {
  // Expired entries count as misses; without retain_expired they are
  // erased on sight. The expired-but-retained case deliberately does not
  // touch the LRU: only a real (or stale) hit refreshes recency.
  const std::uint32_t index = Find(qname, tag);
  if (index == kNil) return nullptr;
  Entry& entry = entries_[index];
  if (entry.answer.expires_at <= now) {
    if (!retain_expired_) EraseEntry(index);
    return nullptr;
  }
  Touch(index);
  return &entry;
}

void DnsCache::Put(const dns::Name& qname, dns::RrType qtype,
                   CachedAnswer answer) {
  PutTagged(qname, static_cast<std::uint32_t>(qtype), std::move(answer));
}

void DnsCache::PutNxDomain(const dns::Name& qname, sim::TimeUs expires_at) {
  CachedAnswer answer;
  answer.rcode = dns::Rcode::kNxDomain;
  answer.expires_at = expires_at;
  PutTagged(qname, kNxTag, std::move(answer));
}

const CachedAnswer* DnsCache::Get(const dns::Name& qname, dns::RrType qtype,
                                  sim::TimeUs now) {
  Entry* entry = GetTagged(qname, static_cast<std::uint32_t>(qtype), now);
  if (entry == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &entry->answer;
}

bool DnsCache::IsNxDomain(const dns::Name& qname, sim::TimeUs now) {
  return GetTagged(qname, kNxTag, now) != nullptr;
}

const CachedAnswer* DnsCache::GetStale(const dns::Name& qname,
                                       dns::RrType qtype, sim::TimeUs now,
                                       sim::TimeUs max_stale) {
  const std::uint32_t index = Find(qname, static_cast<std::uint32_t>(qtype));
  if (index == kNil) return nullptr;
  Entry& entry = entries_[index];
  const sim::TimeUs expires_at = entry.answer.expires_at;
  if (expires_at <= now && expires_at + max_stale <= now) return nullptr;
  ++stale_hits_;
  Touch(index);
  return &entry.answer;
}

void DnsCache::LruUnlink(std::uint32_t index) {
  Entry& entry = entries_[index];
  if (entry.lru_prev != kNil) {
    entries_[entry.lru_prev].lru_next = entry.lru_next;
  } else {
    lru_head_ = entry.lru_next;
  }
  if (entry.lru_next != kNil) {
    entries_[entry.lru_next].lru_prev = entry.lru_prev;
  } else {
    lru_tail_ = entry.lru_prev;
  }
  entry.lru_prev = kNil;
  entry.lru_next = kNil;
}

void DnsCache::LruPushFront(std::uint32_t index) {
  Entry& entry = entries_[index];
  entry.lru_prev = kNil;
  entry.lru_next = lru_head_;
  if (lru_head_ != kNil) entries_[lru_head_].lru_prev = index;
  lru_head_ = index;
  if (lru_tail_ == kNil) lru_tail_ = index;
}

void DnsCache::Touch(std::uint32_t index) {
  if (lru_head_ == index) return;
  LruUnlink(index);
  LruPushFront(index);
}

void DnsCache::EraseEntry(std::uint32_t index) {
  Entry& entry = entries_[index];
  table_.Erase(entry.hash, [&](std::uint32_t v) { return v == index; });
  LruUnlink(index);
  entry.name = dns::Name();
  entry.answer = CachedAnswer{};
  entry.used = false;
  free_.push_back(index);
  --count_;
}

void DnsCache::EvictIfNeeded() {
  while (count_ > max_entries_ && lru_tail_ != kNil) {
    EraseEntry(lru_tail_);
  }
}

void InfraCache::Put(ZoneEntry entry) {
  const std::uint64_t hash = entry.apex.CachedHash();
  const std::uint32_t existing =
      table_.Find(hash, [&](std::uint32_t index) {
        return slots_[index].entry.apex.Equals(entry.apex);
      });
  if (existing != detail::OpenTable::kNil) {
    // Overwrite in place: resolver code holds ZoneEntry pointers across
    // nested Puts, and the deque slot address never changes.
    slots_[existing].entry = std::move(entry);
    return;
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[index].entry = std::move(entry);
  slots_[index].used = true;
  table_.Insert(hash, index);
  ++count_;
}

ZoneEntry* InfraCache::GetView(std::uint64_t hash, const std::uint8_t* flat,
                               std::size_t size, sim::TimeUs now) {
  const std::uint32_t index = table_.Find(hash, [&](std::uint32_t i) {
    const dns::Name& apex = slots_[i].entry.apex;
    return apex.FlatSize() == size &&
           dns::Name::FlatEquals(apex.FlatData(), flat, size);
  });
  if (index == detail::OpenTable::kNil) return nullptr;
  Slot& slot = slots_[index];
  if (slot.entry.expires_at <= now) {
    table_.Erase(hash, [&](std::uint32_t v) { return v == index; });
    slot.entry = ZoneEntry{};
    slot.used = false;
    free_.push_back(index);
    --count_;
    return nullptr;
  }
  return &slot.entry;
}

ZoneEntry* InfraCache::Get(const dns::Name& apex, sim::TimeUs now) {
  return GetView(apex.CachedHash(), apex.FlatData(), apex.FlatSize(), now);
}

ZoneEntry* InfraCache::DeepestEnclosing(const dns::Name& qname,
                                        sim::TimeUs now) {
  // Every suffix of qname is a trailing slice of its flat bytes, so the
  // walk from deepest to root just advances a pointer one label at a time
  // and hashes the remainder — no Suffix() temporaries.
  const std::uint8_t* p = qname.FlatData();
  const std::uint8_t* const end = p + qname.FlatSize();
  for (;;) {
    const auto size = static_cast<std::size_t>(end - p);
    if (ZoneEntry* entry = GetView(dns::Name::HashFlat(p, size), p, size,
                                   now)) {
      return entry;
    }
    if (p == end) break;
    p += 1 + *p;
  }
  return nullptr;
}

std::uint32_t NsecRangeCache::FindZone(const dns::Name& apex) const {
  return table_.Find(apex.CachedHash(), [&](std::uint32_t index) {
    return zones_[index].apex.Equals(apex);
  });
}

void NsecRangeCache::Put(const dns::Name& zone_apex, Range range) {
  std::uint32_t index = FindZone(zone_apex);
  if (index == detail::OpenTable::kNil) {
    index = static_cast<std::uint32_t>(zones_.size());
    zones_.push_back(ZoneRanges{zone_apex, {}});
    table_.Insert(zone_apex.CachedHash(), index);
  }
  // Owner == next is a degenerate (empty) range; owner == qname proofs
  // from NODATA white lies are stored too but can never cover anything.
  dns::Name prev = range.prev;
  zones_[index].ranges[std::move(prev)] = std::move(range);
}

bool NsecRangeCache::Covers(const dns::Name& zone_apex, const dns::Name& qname,
                            sim::TimeUs now) {
  const std::uint32_t index = FindZone(zone_apex);
  if (index == detail::OpenTable::kNil) return false;
  RangeMap& ranges = zones_[index].ranges;
  auto it = ranges.upper_bound(qname);  // first range with prev > qname
  if (it == ranges.begin()) return false;
  --it;
  const Range& range = it->second;
  if (range.expires_at <= now) {
    ranges.erase(it);
    return false;
  }
  if (range.prev.Compare(qname) >= 0) return false;  // prev must exist
  // Wrapping range: next == apex means "past the last name in the zone".
  bool covered = range.next.Equals(zone_apex)
                     ? qname.IsSubdomainOf(zone_apex)
                     : qname.Compare(range.next) < 0;
  if (covered) ++hits_;
  return covered;
}

std::size_t NsecRangeCache::size() const {
  std::size_t total = 0;
  for (const auto& zone : zones_) total += zone.ranges.size();
  return total;
}

}  // namespace clouddns::resolver
