// Resolver-side caches.
//
// DnsCache holds positive and negative answers (RFC 2308 semantics: NODATA
// is cached per qname+type, NXDOMAIN per qname). InfraCache holds the
// "infrastructure" view — delegation NS sets, their addresses, DS presence,
// and fetched DNSKEYs — which is what makes an iterative resolver send only
// cache-miss traffic to the authoritatives, the property §2 of the paper
// leans on ("we only see DNS cache misses").
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/record.h"
#include "dns/types.h"
#include "net/ip.h"
#include "sim/clock.h"

namespace clouddns::resolver {

struct CachedAnswer {
  dns::Rcode rcode = dns::Rcode::kNoError;
  std::vector<dns::ResourceRecord> records;
  sim::TimeUs expires_at = 0;
};

/// Positive/negative answer cache with TTL expiry and LRU eviction.
///
/// `retain_expired` keeps TTL-expired entries in place (still reported as
/// misses) instead of erasing them on lookup, so a serve-stale resolver
/// (RFC 8767) can fall back to them via GetStale() after live resolution
/// fails. Stale entries remain subject to LRU eviction, so the cache stays
/// bounded either way.
class DnsCache {
 public:
  explicit DnsCache(std::size_t max_entries, bool retain_expired = false)
      : max_entries_(max_entries), retain_expired_(retain_expired) {}

  void Put(const dns::Name& qname, dns::RrType qtype, CachedAnswer answer);
  /// NXDOMAIN entries are stored under the qname alone and match any type.
  void PutNxDomain(const dns::Name& qname, sim::TimeUs expires_at);

  [[nodiscard]] const CachedAnswer* Get(const dns::Name& qname,
                                        dns::RrType qtype, sim::TimeUs now);
  [[nodiscard]] bool IsNxDomain(const dns::Name& qname, sim::TimeUs now);

  /// Serve-stale lookup: returns the entry for qname/qtype even when its
  /// TTL has lapsed, as long as it expired no more than `max_stale` ago.
  /// Only meaningful with retain_expired; a fresh entry is returned too.
  [[nodiscard]] const CachedAnswer* GetStale(const dns::Name& qname,
                                             dns::RrType qtype,
                                             sim::TimeUs now,
                                             sim::TimeUs max_stale);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t stale_hits() const { return stale_hits_; }

 private:
  struct Entry {
    CachedAnswer answer;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Entry& entry, const std::string& key);
  void EvictIfNeeded();

  std::size_t max_entries_;
  bool retain_expired_ = false;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_hits_ = 0;
};

/// What the resolver knows about one delegated zone.
struct ZoneEntry {
  dns::Name apex;
  std::vector<dns::Name> ns_names;
  std::vector<net::IpAddress> v4_addresses;
  std::vector<net::IpAddress> v6_addresses;
  sim::TimeUs expires_at = 0;
  /// DS state: unknown until fetched from the parent (validators only).
  enum class Ds { kUnknown, kPresent, kAbsent } ds = Ds::kUnknown;
  /// When the zone's DNSKEY RRset was last fetched; refetch after TTL.
  sim::TimeUs dnskey_expires_at = 0;
};

class InfraCache {
 public:
  void Put(ZoneEntry entry);
  [[nodiscard]] ZoneEntry* Get(const dns::Name& apex, sim::TimeUs now);

  /// Deepest cached zone at-or-above `qname` that has not expired; the
  /// resolution walk starts there instead of the root.
  [[nodiscard]] ZoneEntry* DeepestEnclosing(const dns::Name& qname,
                                            sim::TimeUs now);

  [[nodiscard]] std::size_t size() const { return zones_.size(); }

 private:
  std::unordered_map<std::string, ZoneEntry> zones_;
};

/// Aggressive NSEC cache (RFC 8198): validated denial *ranges* from signed
/// zones. A cached range [prev, next) lets the resolver synthesize
/// NXDOMAIN for any name it covers without asking the authoritative —
/// which is how large validating resolvers absorb random-name junk before
/// it reaches the root (§4.2.3 of the paper).
class NsecRangeCache {
 public:
  struct Range {
    dns::Name prev;
    dns::Name next;
    sim::TimeUs expires_at = 0;
  };

  void Put(const dns::Name& zone_apex, Range range);

  /// True when an unexpired cached range of `zone_apex` proves `qname`
  /// does not exist (strictly inside (prev, next), or past the last name
  /// when the range wraps to the apex).
  [[nodiscard]] bool Covers(const dns::Name& zone_apex,
                            const dns::Name& qname, sim::TimeUs now);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

 private:
  struct NameCanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      return a.Compare(b) < 0;
    }
  };
  using RangeMap = std::map<dns::Name, Range, NameCanonicalLess>;

  std::unordered_map<std::string, RangeMap> zones_;  // key: apex ToKey()
  std::uint64_t hits_ = 0;
};

}  // namespace clouddns::resolver
