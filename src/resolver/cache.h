// Resolver-side caches.
//
// DnsCache holds positive and negative answers (RFC 2308 semantics: NODATA
// is cached per qname+type, NXDOMAIN per qname). InfraCache holds the
// "infrastructure" view — delegation NS sets, their addresses, DS presence,
// and fetched DNSKEYs — which is what makes an iterative resolver send only
// cache-miss traffic to the authoritatives, the property §2 of the paper
// leans on ("we only see DNS cache misses").
//
// All three caches are keyed on the Name's precomputed hash plus its flat
// label bytes: lookups never build a ToKey() string. DnsCache additionally
// threads an intrusive index-based LRU through its entry slab, replacing
// the old std::list<std::string> whose every touch allocated.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "dns/record.h"
#include "dns/types.h"
#include "net/ip.h"
#include "sim/clock.h"

namespace clouddns::resolver {

namespace detail {

/// Open-addressing (linear probe, backward-shift deletion) index: maps a
/// 64-bit hash to a caller-owned 32-bit slot index. The caller resolves
/// hash collisions through the `eq` predicate, which receives a candidate
/// value. Starts empty and doubles at 50% load, so the thousands of
/// per-engine caches in a scenario stay tiny until used.
class OpenTable {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  template <class Eq>
  [[nodiscard]] std::uint32_t Find(std::uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return kNil;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t idx = static_cast<std::size_t>(hash) & mask;
         slots_[idx].value != kNil; idx = (idx + 1) & mask) {
      if (slots_[idx].hash == hash && eq(slots_[idx].value)) {
        return slots_[idx].value;
      }
    }
    return kNil;
  }

  /// The (hash, value) pair must not already be present.
  void Insert(std::uint64_t hash, std::uint32_t value) {
    if ((count_ + 1) * 2 > slots_.size()) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(hash) & mask;
    while (slots_[idx].value != kNil) idx = (idx + 1) & mask;
    slots_[idx] = Slot{hash, value};
    ++count_;
  }

  /// Removes the entry whose value satisfies `eq`; false if absent.
  template <class Eq>
  bool Erase(std::uint64_t hash, Eq&& eq) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t idx = static_cast<std::size_t>(hash) & mask;
         slots_[idx].value != kNil; idx = (idx + 1) & mask) {
      if (slots_[idx].hash != hash || !eq(slots_[idx].value)) continue;
      // Backward-shift deletion keeps probe chains intact without
      // tombstones: slide later entries into the hole while their ideal
      // position is at or before it.
      std::size_t hole = idx;
      for (std::size_t next = (hole + 1) & mask; slots_[next].value != kNil;
           next = (next + 1) & mask) {
        const std::size_t ideal =
            static_cast<std::size_t>(slots_[next].hash) & mask;
        if (((next - ideal) & mask) >= ((next - hole) & mask)) {
          slots_[hole] = slots_[next];
          hole = next;
        }
      }
      slots_[hole].value = kNil;
      --count_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t value = kNil;
  };

  void Grow() {
    const std::size_t new_size = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    const std::size_t mask = new_size - 1;
    for (const Slot& slot : old) {
      if (slot.value == kNil) continue;
      std::size_t idx = static_cast<std::size_t>(slot.hash) & mask;
      while (slots_[idx].value != kNil) idx = (idx + 1) & mask;
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

}  // namespace detail

struct CachedAnswer {
  dns::Rcode rcode = dns::Rcode::kNoError;
  std::vector<dns::ResourceRecord> records;
  sim::TimeUs expires_at = 0;
};

/// Positive/negative answer cache with TTL expiry and LRU eviction.
///
/// `retain_expired` keeps TTL-expired entries in place (still reported as
/// misses) instead of erasing them on lookup, so a serve-stale resolver
/// (RFC 8767) can fall back to them via GetStale() after live resolution
/// fails. Stale entries remain subject to LRU eviction, so the cache stays
/// bounded either way.
///
/// Returned CachedAnswer pointers are invalidated by the next mutating
/// call (Put/PutNxDomain, or a Get that erases an expired entry) — copy
/// out what you need before touching the cache again.
class DnsCache {
 public:
  explicit DnsCache(std::size_t max_entries, bool retain_expired = false)
      : max_entries_(max_entries), retain_expired_(retain_expired) {}

  void Put(const dns::Name& qname, dns::RrType qtype, CachedAnswer answer);
  /// NXDOMAIN entries are stored under the qname alone and match any type.
  void PutNxDomain(const dns::Name& qname, sim::TimeUs expires_at);

  [[nodiscard]] const CachedAnswer* Get(const dns::Name& qname,
                                        dns::RrType qtype, sim::TimeUs now);
  [[nodiscard]] bool IsNxDomain(const dns::Name& qname, sim::TimeUs now);

  /// Serve-stale lookup: returns the entry for qname/qtype even when its
  /// TTL has lapsed, as long as it expired no more than `max_stale` ago.
  /// Only meaningful with retain_expired; a fresh entry is returned too.
  [[nodiscard]] const CachedAnswer* GetStale(const dns::Name& qname,
                                             dns::RrType qtype,
                                             sim::TimeUs now,
                                             sim::TimeUs max_stale);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t stale_hits() const { return stale_hits_; }

 private:
  static constexpr std::uint32_t kNil = detail::OpenTable::kNil;
  /// Tag for NXDOMAIN entries; outside the 16-bit qtype space so it can
  /// never collide with a real type.
  static constexpr std::uint32_t kNxTag = 0x10000;

  struct Entry {
    dns::Name name;
    std::uint64_t hash = 0;  ///< Name hash mixed with the tag.
    std::uint32_t tag = 0;   ///< Qtype value, or kNxTag.
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    bool used = false;
    CachedAnswer answer;
  };

  static std::uint64_t TaggedHash(const dns::Name& qname, std::uint32_t tag);
  [[nodiscard]] std::uint32_t Find(const dns::Name& qname,
                                   std::uint32_t tag) const;
  void PutTagged(const dns::Name& qname, std::uint32_t tag,
                 CachedAnswer answer);
  [[nodiscard]] Entry* GetTagged(const dns::Name& qname, std::uint32_t tag,
                                 sim::TimeUs now);
  void LruUnlink(std::uint32_t index);
  void LruPushFront(std::uint32_t index);
  void Touch(std::uint32_t index);
  void EraseEntry(std::uint32_t index);
  void EvictIfNeeded();

  std::size_t max_entries_;
  bool retain_expired_ = false;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  detail::OpenTable table_;
  std::size_t count_ = 0;
  std::uint32_t lru_head_ = kNil;  ///< Most recently used.
  std::uint32_t lru_tail_ = kNil;  ///< Eviction victim.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_hits_ = 0;
};

/// What the resolver knows about one delegated zone.
struct ZoneEntry {
  dns::Name apex;
  std::vector<dns::Name> ns_names;
  std::vector<net::IpAddress> v4_addresses;
  std::vector<net::IpAddress> v6_addresses;
  sim::TimeUs expires_at = 0;
  /// DS state: unknown until fetched from the parent (validators only).
  enum class Ds { kUnknown, kPresent, kAbsent } ds = Ds::kUnknown;
  /// When the zone's DNSKEY RRset was last fetched; refetch after TTL.
  sim::TimeUs dnskey_expires_at = 0;
};

/// Returned ZoneEntry pointers stay valid across later Puts (the resolver
/// holds one across a recursive resolution that fills the cache): entries
/// live in a deque and are overwritten in place on re-Put.
class InfraCache {
 public:
  void Put(ZoneEntry entry);
  [[nodiscard]] ZoneEntry* Get(const dns::Name& apex, sim::TimeUs now);

  /// Deepest cached zone at-or-above `qname` that has not expired; the
  /// resolution walk starts there instead of the root. Probes suffix
  /// slices of qname's flat bytes directly — no per-level Name built.
  [[nodiscard]] ZoneEntry* DeepestEnclosing(const dns::Name& qname,
                                            sim::TimeUs now);

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  struct Slot {
    ZoneEntry entry;
    bool used = false;
  };

  /// Looks up by a flat-byte view (a suffix slice of some name), erasing
  /// the entry if expired, exactly like the old Get.
  [[nodiscard]] ZoneEntry* GetView(std::uint64_t hash,
                                   const std::uint8_t* flat, std::size_t size,
                                   sim::TimeUs now);

  std::deque<Slot> slots_;  ///< Deque: stable addresses across Puts.
  std::vector<std::uint32_t> free_;
  detail::OpenTable table_;
  std::size_t count_ = 0;
};

/// Aggressive NSEC cache (RFC 8198): validated denial *ranges* from signed
/// zones. A cached range [prev, next) lets the resolver synthesize
/// NXDOMAIN for any name it covers without asking the authoritative —
/// which is how large validating resolvers absorb random-name junk before
/// it reaches the root (§4.2.3 of the paper).
class NsecRangeCache {
 public:
  struct Range {
    dns::Name prev;
    dns::Name next;
    sim::TimeUs expires_at = 0;
  };

  void Put(const dns::Name& zone_apex, Range range);

  /// True when an unexpired cached range of `zone_apex` proves `qname`
  /// does not exist (strictly inside (prev, next), or past the last name
  /// when the range wraps to the apex).
  [[nodiscard]] bool Covers(const dns::Name& zone_apex,
                            const dns::Name& qname, sim::TimeUs now);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

 private:
  struct NameCanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      return a.Compare(b) < 0;
    }
  };
  using RangeMap = std::map<dns::Name, Range, NameCanonicalLess>;

  struct ZoneRanges {
    dns::Name apex;
    RangeMap ranges;
  };

  [[nodiscard]] std::uint32_t FindZone(const dns::Name& apex) const;

  std::vector<ZoneRanges> zones_;
  detail::OpenTable table_;
  std::uint64_t hits_ = 0;
};

}  // namespace clouddns::resolver
