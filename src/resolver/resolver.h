// The iterative (recursive-resolving) DNS resolver engine.
//
// One RecursiveResolver models one resolver *backend* (a shared cache) that
// egresses through a pool of frontend hosts — which is how large cloud
// resolver farms look from an authoritative server's vantage point: few
// caches, many source addresses. All behaviors the paper measures arise
// here mechanistically:
//   - cache-miss-only traffic to authoritatives (answer + infra caches),
//   - QNAME minimization (RFC 7816) with a configurable rollout instant,
//   - DNSSEC validation fetch patterns (explicit DS per delegation at the
//     parent, DNSKEY per zone per TTL),
//   - EDNS(0) buffer-size policy and TCP fallback on truncated answers,
//   - dual-stack server selection preferring the lower-RTT family,
//   - glueless-delegation chasing with cycle detection (the .nz Feb 2020
//     misconfiguration event in Fig. 3b).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/lifetime.h"
#include "dns/message.h"
#include "resolver/cache.h"
#include "sim/network.h"
#include "sim/random.h"

namespace clouddns::resolver {

/// One egress frontend: a v4 and/or v6 address at a site. Dual-stack hosts
/// are what the paper identifies via matching PTR records (§4.3).
struct EgressHost {
  std::optional<net::IpAddress> v4;
  std::optional<net::IpAddress> v6;
  sim::SiteId site = 0;
};

/// Timeout/retry policy, active when upstream queries are lost to fault
/// injection (sim::FaultInjector). On a lossless network none of this ever
/// fires, so the defaults change nothing for fault-free simulations.
struct RetryConfig {
  /// Retransmissions per server after the initial send. Timers follow
  /// RFC 6298 adapted to DNS: RTO = SRTT + 4·RTTVAR (clamped below),
  /// doubled per retransmission (Karn backoff), and retransmitted
  /// exchanges never feed the RTT estimator (Karn's algorithm).
  int max_retransmits = 2;
  /// Additional servers of the NS set tried after one is declared
  /// unresponsive; each unresponsive server's SRTT is penalized so future
  /// selections deprioritize it.
  int max_failovers = 2;
  sim::TimeUs rto_min_us = 300'000;     ///< 300 ms floor (resolver-style).
  sim::TimeUs rto_max_us = 5'000'000;   ///< 5 s ceiling.
  /// RFC 8767 serve-stale: when live resolution fails, answer from an
  /// expired cache entry no older than this bound. 0 disables (the
  /// study-era behavior: failed resolutions are retried in full, which is
  /// exactly what amplified the .nz event).
  sim::TimeUs serve_stale_ttl_us = 0;
};

struct ResolverConfig {
  std::vector<EgressHost> hosts;
  bool qname_minimization = false;
  /// Q-min activates at this instant (0 = from the beginning); models
  /// Google's Dec 2019 rollout.
  sim::TimeUs qmin_enabled_at = 0;
  bool validate_dnssec = false;
  /// Aggressive NSEC caching (RFC 8198): synthesize NXDOMAIN locally from
  /// validated denial ranges. Requires validation. This is what absorbs
  /// Chromium-style random-TLD junk inside large public resolvers before
  /// it reaches the root (§4.2.3).
  bool aggressive_nsec_caching = false;
  /// Validation style: when true the resolver probes the parent with
  /// explicit DS queries while building the chain of trust (the pattern
  /// that makes Cloudflare's DS share at TLDs so visible, Fig. 2d); when
  /// false it consumes the DS set served inside DO=1 referrals.
  bool explicit_ds_fetch = false;
  /// EDNS(0) advertised UDP payload size; 0 disables EDNS entirely.
  std::uint16_t edns_udp_size = 4096;
  /// Sharpness of the dual-stack preference: P(v6) is proportional to
  /// (1/rtt6)^sharpness. Higher = stronger preference for the faster family.
  double family_preference_sharpness = 4.0;
  /// Operator policy multiplier on the IPv6 weight: >1 prefers v6 beyond
  /// what RTT alone justifies (Facebook), <1 avoids v6 despite dual-stack
  /// frontends (Microsoft).
  double v6_weight_multiplier = 1.0;
  std::size_t max_cache_entries = 1 << 20;
  /// Upstream-query budget per client query (loop/cycle guard).
  int max_upstream_queries = 40;
  /// SERVFAIL caching (RFC 2308 §7, capped at 5 minutes by RFC 9520's
  /// predecessor guidance). 0 disables it — which is how the resolvers of
  /// the study era behaved during the .nz cyclic-dependency event, where
  /// failed resolutions were retried in full (Fig. 3b).
  sim::TimeUs servfail_cache_ttl = 0;
  RetryConfig retry;
  std::uint64_t seed = 1;
};

class RecursiveResolver {
 public:
  /// `root_v4`/`root_v6` are the root-server service addresses (hints).
  RecursiveResolver(sim::Network& network, ResolverConfig config,
                    std::vector<net::IpAddress> root_v4,
                    std::vector<net::IpAddress> root_v6);

  struct Result {
    dns::Rcode rcode = dns::Rcode::kServFail;
    bool from_cache = false;
    int upstream_queries = 0;  ///< Includes retransmits/failover probes.
    int retransmits = 0;       ///< Timeout-driven duplicate sends.
    int timeouts = 0;          ///< Upstream exchanges that got no answer.
    int failovers = 0;         ///< Servers abandoned for a sibling NS.
    bool served_stale = false;  ///< Answered from an expired entry (8767).
    std::vector<dns::ResourceRecord> records;
  };

  /// Resolves a client query at simulated time `now`.
  Result Resolve(const dns::Name& qname, dns::RrType qtype, sim::TimeUs now);

  /// Repoints upstream traffic at a different network plane. The parallel
  /// scenario engine builds engines once, then attaches each to its owner
  /// shard's network (which carries that shard's authoritative servers).
  void AttachNetwork(sim::Network& network) { network_ = &network; }

  [[nodiscard]] const DnsCache& cache() const CLOUDDNS_LIFETIMEBOUND {
    return cache_;
  }
  [[nodiscard]] const ResolverConfig& config() const CLOUDDNS_LIFETIMEBOUND {
    return config_;
  }
  [[nodiscard]] std::uint64_t upstream_query_count() const {
    return upstream_total_;
  }
  [[nodiscard]] std::uint64_t retransmit_count() const {
    return retransmit_total_;
  }
  [[nodiscard]] std::uint64_t timeout_count() const { return timeout_total_; }
  [[nodiscard]] std::uint64_t failover_count() const {
    return failover_total_;
  }
  [[nodiscard]] std::uint64_t served_stale_count() const {
    return served_stale_total_;
  }
  [[nodiscard]] const NsecRangeCache& nsec_cache() const
      CLOUDDNS_LIFETIMEBOUND {
    return nsec_cache_;
  }

 private:
  struct Upstream {
    bool ok = false;
    dns::Message response;
  };

  [[nodiscard]] bool QminActive(sim::TimeUs now) const {
    return config_.qname_minimization && now >= config_.qmin_enabled_at;
  }

  Result ResolveInternal(const dns::Name& qname, dns::RrType qtype,
                         sim::TimeUs now, int& budget, int depth);

  /// Sends one upstream query to the given zone's servers (with family and
  /// server selection, EDNS, and TCP retry on truncation).
  Upstream Send(ZoneEntry& zone, const dns::Name& qname, dns::RrType qtype,
                sim::TimeUs now, int& budget);

  /// Ensures addresses for a zone's nameservers, chasing glueless NS
  /// targets through full resolution (depth-limited, cycle-detected).
  bool EnsureAddresses(ZoneEntry& zone, sim::TimeUs now, int& budget,
                       int depth);

  /// Validator chain maintenance: DS fetch at the parent for a new cut,
  /// DNSKEY fetch per zone per TTL.
  void FetchDsIfNeeded(ZoneEntry& parent, ZoneEntry& child, sim::TimeUs now,
                       int& budget);
  void FetchDnskeyIfNeeded(ZoneEntry& zone, sim::TimeUs now, int& budget);

  /// Builds a ZoneEntry from a referral response.
  ZoneEntry ZoneFromReferral(const dns::Message& response,
                             const dns::Name& cut, sim::TimeUs now) const;

  ZoneEntry* RootEntry(sim::TimeUs now);

  /// Per-(egress site, server address) RTT estimator state. `srtt` drives
  /// server/family selection exactly as before; `rttvar` additionally
  /// feeds the retransmission timer (RTO = srtt + 4·rttvar).
  struct SrttState {
    double srtt = 0.0;
    double rttvar = 0.0;
  };

  /// Retransmission timeout for one server at the given attempt index
  /// (Karn backoff: doubles per retransmission), clamped to the
  /// configured [rto_min, rto_max] band.
  [[nodiscard]] sim::TimeUs RtoFor(std::uint64_t srtt_key, int attempt) const;

  /// Marks a server unresponsive: doubles its SRTT (capped) so failover
  /// picks and all future selections deprioritize it.
  void PenalizeSrtt(std::uint64_t srtt_key);

  sim::Network* network_;
  ResolverConfig config_;
  DnsCache cache_;
  InfraCache infra_;
  NsecRangeCache nsec_cache_;
  sim::Rng rng_;
  ZoneEntry root_;
  /// Smoothed RTT estimates (microseconds), keyed per (egress site,
  /// server address): sites see genuinely different RTTs to the same
  /// anycast service, and mixing their samples into one estimate would
  /// make the dual-stack preference a noise amplifier.
  std::unordered_map<std::uint64_t, SrttState> srtt_;
  [[nodiscard]] static std::uint64_t SrttKey(sim::SiteId site,
                                             const net::IpAddress& addr) {
    return (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ull) ^
           net::IpAddressHash{}(addr);
  }
  /// Names currently being resolved, for glueless-cycle detection. The
  /// recursion is depth-bounded, so this is a tiny LIFO stack scanned by
  /// cached hash + name equality — no string key is ever built.
  struct InFlight {
    std::uint64_t hash = 0;
    dns::RrType type = dns::RrType::kA;
    dns::Name name;
  };
  std::vector<InFlight> in_flight_;
  /// Dual-stack server-selection candidates for one upstream send.
  struct Candidate {
    const net::IpAddress* v4 = nullptr;
    const net::IpAddress* v6 = nullptr;
  };
  /// Scratch state reused across Send calls (Send never recurses): the
  /// query message and its encoding, the network exchange result, and the
  /// server-selection working sets. Their capacity survives between
  /// upstream exchanges, so the steady-state send path does not allocate.
  dns::Message query_msg_;
  dns::WireBuffer query_wire_;
  sim::Network::SendResult send_scratch_;
  std::vector<Candidate> candidates_;
  std::vector<const Candidate*> band_;
  std::vector<const Candidate*> tried_;
  std::uint64_t upstream_total_ = 0;
  std::uint64_t retransmit_total_ = 0;
  std::uint64_t timeout_total_ = 0;
  std::uint64_t failover_total_ = 0;
  std::uint64_t served_stale_total_ = 0;
};

}  // namespace clouddns::resolver
