#include "resolver/resolver.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

#include <algorithm>
#include <cmath>

namespace clouddns::resolver {
namespace {

constexpr double kDefaultSrttUs = 50'000.0;  // optimistic prior: 50 ms
constexpr sim::TimeUs kMaxPositiveTtl = 86'400ull * sim::kMicrosPerSecond;
constexpr sim::TimeUs kDefaultNegativeTtl = 600ull * sim::kMicrosPerSecond;
constexpr sim::TimeUs kMaxInfraTtl = 172'800ull * sim::kMicrosPerSecond;

sim::TimeUs NegativeTtlFrom(const dns::Message& response) {
  for (const auto& rr : response.authorities) {
    if (rr.type == dns::RrType::kSoa) {
      const auto& soa = std::get<dns::SoaRdata>(rr.rdata);
      std::uint32_t ttl = std::min(rr.ttl, soa.minimum);
      return std::max<sim::TimeUs>(1, ttl) * sim::kMicrosPerSecond;
    }
  }
  return kDefaultNegativeTtl;
}

sim::TimeUs PositiveTtlFrom(const std::vector<dns::ResourceRecord>& records) {
  std::uint32_t ttl = 0xffffffffu;
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  sim::TimeUs ttl_us =
      static_cast<sim::TimeUs>(std::max<std::uint32_t>(ttl, 1)) *
      sim::kMicrosPerSecond;
  return std::min(ttl_us, kMaxPositiveTtl);
}

/// A referral is a non-authoritative NOERROR with NS records in authority.
const dns::ResourceRecord* ReferralNs(const dns::Message& response) {
  if (response.header.aa || response.header.rcode != dns::Rcode::kNoError) {
    return nullptr;
  }
  if (!response.answers.empty()) return nullptr;
  for (const auto& rr : response.authorities) {
    if (rr.type == dns::RrType::kNs) return &rr;
  }
  return nullptr;
}

}  // namespace

RecursiveResolver::RecursiveResolver(sim::Network& network,
                                     ResolverConfig config,
                                     std::vector<net::IpAddress> root_v4,
                                     std::vector<net::IpAddress> root_v6)
    : network_(&network),
      config_(std::move(config)),
      cache_(config_.max_cache_entries,
             /*retain_expired=*/config_.retry.serve_stale_ttl_us > 0),
      rng_(config_.seed) {
  root_.apex = dns::Name{};
  root_.v4_addresses = std::move(root_v4);
  root_.v6_addresses = std::move(root_v6);
  root_.expires_at = ~sim::TimeUs{0};  // hints never expire
  // The root trust anchor is configured, so from a validator's view the
  // root always "has a DS".
  root_.ds = ZoneEntry::Ds::kPresent;
}

ZoneEntry* RecursiveResolver::RootEntry(sim::TimeUs /*now*/) { return &root_; }

RecursiveResolver::Result RecursiveResolver::Resolve(const dns::Name& qname,
                                                     dns::RrType qtype,
                                                     sim::TimeUs now) {
  int budget = config_.max_upstream_queries;
  const std::uint64_t upstream_before = upstream_total_;
  const std::uint64_t retransmits_before = retransmit_total_;
  const std::uint64_t timeouts_before = timeout_total_;
  const std::uint64_t failovers_before = failover_total_;
  Result result = ResolveInternal(qname, qtype, now, budget, 0);
  result.upstream_queries = static_cast<int>(upstream_total_ - upstream_before);
  result.retransmits = static_cast<int>(retransmit_total_ - retransmits_before);
  result.timeouts = static_cast<int>(timeout_total_ - timeouts_before);
  result.failovers = static_cast<int>(failover_total_ - failovers_before);
  if (result.rcode == dns::Rcode::kServFail && !result.from_cache &&
      config_.retry.serve_stale_ttl_us > 0) {
    // RFC 8767 serve-stale: live resolution failed, but a recently expired
    // answer is better than an error. Fault-era resolvers that deployed
    // this avoided the full .nz-style retry storms.
    const CachedAnswer* stale =
        cache_.GetStale(qname, qtype, now, config_.retry.serve_stale_ttl_us);
    if (stale != nullptr && stale->rcode != dns::Rcode::kServFail) {
      result.rcode = stale->rcode;
      result.records = stale->records;
      result.from_cache = true;
      result.served_stale = true;
      ++served_stale_total_;
      return result;
    }
  }
  if (result.rcode == dns::Rcode::kServFail && !result.from_cache &&
      config_.servfail_cache_ttl > 0) {
    // RFC 2308 §7: cache the failure briefly so a broken domain does not
    // trigger a full (expensive) re-resolution per client query.
    CachedAnswer failure;
    failure.rcode = dns::Rcode::kServFail;
    failure.expires_at =
        now + std::min<sim::TimeUs>(config_.servfail_cache_ttl,
                                    300ull * sim::kMicrosPerSecond);
    cache_.Put(qname, qtype, failure);
  }
  return result;
}

RecursiveResolver::Result RecursiveResolver::ResolveInternal(
    const dns::Name& qname, dns::RrType qtype, sim::TimeUs now, int& budget,
    int depth) {
  Result result;
  if (depth > 6) return result;  // glueless chain too deep

  if (cache_.IsNxDomain(qname, now)) {
    result.rcode = dns::Rcode::kNxDomain;
    result.from_cache = true;
    return result;
  }
  if (const CachedAnswer* hit = cache_.Get(qname, qtype, now)) {
    result.rcode = hit->rcode;
    result.records = hit->records;
    result.from_cache = true;
    return result;
  }

  const std::uint64_t flight_hash = qname.CachedHash();
  for (const InFlight& flight : in_flight_) {
    if (flight.hash == flight_hash && flight.type == qtype &&
        flight.name.Equals(qname)) {
      return result;  // dependency cycle (e.g. mutually glueless NS)
    }
  }
  in_flight_.push_back(InFlight{flight_hash, qtype, qname});
  struct PopGuard {
    std::vector<InFlight>& stack;
    ~PopGuard() { stack.pop_back(); }
  } pop_guard{in_flight_};

  ZoneEntry* zone = infra_.DeepestEnclosing(qname, now);
  if (zone == nullptr) zone = RootEntry(now);

  if (config_.validate_dnssec) FetchDnskeyIfNeeded(*zone, now, budget);

  std::size_t reveal = std::min(zone->apex.LabelCount() + 1,
                                qname.LabelCount());
  // RFC 7816 §3 fallback: after a failure on the minimized walk the
  // resolver retries once with the full query name. During the .nz cyclic-
  // dependency event this is what turned Google's minimized NS walk into
  // the flood of full A/AAAA queries the TLD observed (Fig. 3b).
  bool qmin_fallback = false;

  for (int iteration = 0; iteration < 24; ++iteration) {
    dns::Name q_name = qname;
    dns::RrType q_type = qtype;
    if (QminActive(now) && !qmin_fallback &&
        reveal < qname.LabelCount()) {
      q_name = qname.Suffix(reveal);
      q_type = dns::RrType::kNs;
    }
    const bool is_final = q_name.Equals(qname) && q_type == qtype;

    if (config_.aggressive_nsec_caching && config_.validate_dnssec &&
        nsec_cache_.Covers(zone->apex, q_name, now)) {
      // RFC 8198: a validated cached NSEC range proves the name cannot
      // exist — answer NXDOMAIN without contacting the authoritative.
      cache_.PutNxDomain(q_name, now + kDefaultNegativeTtl);
      result.rcode = dns::Rcode::kNxDomain;
      return result;
    }

    Upstream reply = Send(*zone, q_name, q_type, now, budget);
    if (!reply.ok) return result;  // SERVFAIL
    const dns::Message& response = reply.response;

    if (response.header.rcode == dns::Rcode::kNxDomain) {
      // A minimized intermediate NXDOMAIN proves the full name cannot
      // exist either.
      cache_.PutNxDomain(q_name, now + NegativeTtlFrom(response));
      if (config_.aggressive_nsec_caching && config_.validate_dnssec) {
        for (const auto& rr : response.authorities) {
          if (rr.type != dns::RrType::kNsec) continue;
          const auto& nsec = std::get<dns::NsecRdata>(rr.rdata);
          NsecRangeCache::Range range;
          range.prev = rr.name;
          range.next = nsec.next;
          range.expires_at =
              now + static_cast<sim::TimeUs>(std::max<std::uint32_t>(
                        rr.ttl, 1)) *
                        sim::kMicrosPerSecond;
          nsec_cache_.Put(zone->apex, std::move(range));
        }
      }
      result.rcode = dns::Rcode::kNxDomain;
      return result;
    }
    if (response.header.rcode != dns::Rcode::kNoError) {
      return result;  // REFUSED/SERVFAIL upstream -> SERVFAIL
    }

    if (const dns::ResourceRecord* ns = ReferralNs(response)) {
      const dns::Name& cut = ns->name;
      if (!cut.IsSubdomainOf(zone->apex) || cut.Equals(zone->apex) ||
          !qname.IsSubdomainOf(cut)) {
        return result;  // malformed referral
      }
      ZoneEntry child = ZoneFromReferral(response, cut, now);
      if (config_.validate_dnssec) {
        if (config_.explicit_ds_fetch) {
          FetchDsIfNeeded(*zone, child, now, budget);
        } else if (zone->ds == ZoneEntry::Ds::kPresent) {
          // DO=1 referrals from signed parents carry the child DS set; use
          // it instead of a separate DS round trip.
          bool present = false;
          for (const auto& rr : response.authorities) {
            if (rr.type == dns::RrType::kDs && rr.name.Equals(cut)) {
              present = true;
              break;
            }
          }
          child.ds = present ? ZoneEntry::Ds::kPresent : ZoneEntry::Ds::kAbsent;
        } else {
          child.ds = ZoneEntry::Ds::kAbsent;
        }
      }
      if (!EnsureAddresses(child, now, budget, depth)) {
        if (QminActive(now) && !qmin_fallback) {
          qmin_fallback = true;  // retry this zone with the full qname
          continue;
        }
        return result;  // glueless chase failed (cycle or budget)
      }
      dns::Name child_apex = child.apex;
      infra_.Put(std::move(child));
      zone = infra_.Get(child_apex, now);
      if (zone == nullptr) return result;
      if (config_.validate_dnssec && zone->ds == ZoneEntry::Ds::kPresent) {
        FetchDnskeyIfNeeded(*zone, now, budget);
      }
      reveal = std::min(std::max(reveal, zone->apex.LabelCount() + 1),
                        qname.LabelCount());
      continue;
    }

    if (!response.answers.empty()) {
      if (is_final) {
        CachedAnswer answer;
        answer.rcode = dns::Rcode::kNoError;
        answer.records = response.answers;
        answer.expires_at = now + PositiveTtlFrom(response.answers);
        cache_.Put(qname, qtype, answer);
        result.rcode = dns::Rcode::kNoError;
        result.records = response.answers;
        return result;
      }
      // Intermediate minimized NS answered positively: the label exists;
      // reveal the next one.
      ++reveal;
      continue;
    }

    // NODATA.
    if (is_final) {
      CachedAnswer answer;
      answer.rcode = dns::Rcode::kNoError;
      answer.expires_at = now + NegativeTtlFrom(response);
      cache_.Put(qname, qtype, answer);
      result.rcode = dns::Rcode::kNoError;
      return result;
    }
    ++reveal;  // RFC 7816: NODATA on the minimized query -> keep walking
  }
  return result;
}

RecursiveResolver::Upstream RecursiveResolver::Send(ZoneEntry& zone,
                                                    const dns::Name& qname,
                                                    dns::RrType qtype,
                                                    sim::TimeUs now,
                                                    int& budget) {
  Upstream failure;
  if (budget <= 0) return failure;

  // Pick the egress host FIRST (uniform over the frontend pool), then let
  // the host's capabilities decide the family: single-stack hosts have no
  // choice; dual-stack hosts prefer the family with the lower smoothed
  // RTT, modulated by operator policy. This is what ties the fleet's
  // dual-stack composition (Table 6) to its traffic split (Table 5).
  const EgressHost* host = nullptr;
  bool can_v4 = false, can_v6 = false;
  for (int attempt = 0; attempt < 8 && host == nullptr; ++attempt) {
    const EgressHost& candidate =
        config_.hosts[rng_.NextBelow(config_.hosts.size())];
    can_v4 = candidate.v4.has_value() && !zone.v4_addresses.empty();
    can_v6 = candidate.v6.has_value() && !zone.v6_addresses.empty();
    if (can_v4 || can_v6) host = &candidate;
  }
  if (host == nullptr) return failure;

  auto estimate = [this, &host](const net::IpAddress& addr) {
    auto it = srtt_.find(SrttKey(host->site, addr));
    return it != srtt_.end() ? std::optional<double>(it->second.srtt)
                             : std::nullopt;
  };

  // Server selection (Müller et al. [30]): resolvers favour low-RTT
  // authoritatives but keep probing the rest — modelled as uniform choice
  // within an RTT band of the best estimate, plus 8% pure exploration.
  // The *nameserver* is chosen family-agnostically (its best family's
  // estimate ranks it); the family is decided afterwards on that server's
  // address pair. Coupling them this way keeps each NS's captured traffic
  // an unbiased sample of the resolver's family mix.
  std::vector<Candidate>& candidates = candidates_;
  candidates.clear();
  const bool paired = can_v4 && can_v6 &&
                      zone.v4_addresses.size() == zone.v6_addresses.size();
  if (paired) {
    for (std::size_t i = 0; i < zone.v4_addresses.size(); ++i) {
      candidates.push_back({&zone.v4_addresses[i], &zone.v6_addresses[i]});
    }
  } else if (can_v4) {
    for (const auto& addr : zone.v4_addresses) {
      candidates.push_back({&addr, nullptr});
    }
  } else {
    for (const auto& addr : zone.v6_addresses) {
      candidates.push_back({nullptr, &addr});
    }
  }

  auto candidate_srtt = [&estimate](const Candidate& c) {
    std::optional<double> best;
    for (const net::IpAddress* addr : {c.v4, c.v6}) {
      if (addr == nullptr) continue;
      auto e = estimate(*addr);
      if (e && (!best || *e < *best)) best = e;
    }
    return best.value_or(kDefaultSrttUs);
  };

  const Candidate* picked = &candidates.front();
  if (candidates.size() > 1) {
    if (rng_.NextDouble() < 0.08) {
      picked = &candidates[rng_.NextBelow(candidates.size())];
    } else {
      double best = 1e18;
      for (const auto& c : candidates) {
        best = std::min(best, candidate_srtt(c));
      }
      std::vector<const Candidate*>& band = band_;
      band.clear();
      for (const auto& c : candidates) {
        if (candidate_srtt(c) <= best * 1.6) band.push_back(&c);
      }
      picked = band[rng_.NextBelow(band.size())];
    }
  }

  // Timeout/retry engine. On a lossless network the first transmission is
  // always answered and none of the machinery below fires — the rng draw
  // sequence and SRTT arithmetic on that path are exactly the historical
  // ones, which is what keeps fault-free runs byte-identical.
  // Retransmissions are charged `elapsed` wait time (the accumulated RTOs)
  // so retried traffic lands later in the capture, exactly as the
  // authoritative's vantage point would record it.
  sim::TimeUs elapsed = 0;
  std::vector<const Candidate*>& tried = tried_;
  tried.clear();
  const Candidate* current = picked;
  for (int failover = 0;; ++failover) {
    tried.push_back(current);

    // Family choice on the current server: dual-stack hosts weigh the two
    // families by smoothed RTT (an unmeasured family inherits the other's
    // estimate so exploration is unbiased), single-stack hosts have no say.
    bool use_v6;
    if (can_v4 && can_v6 && current->v4 != nullptr &&
        current->v6 != nullptr) {
      auto m4 = estimate(*current->v4);
      auto m6 = estimate(*current->v6);
      double rtt4 = m4.value_or(m6.value_or(kDefaultSrttUs));
      double rtt6 = m6.value_or(m4.value_or(kDefaultSrttUs));
      double w4 = std::pow(1.0 / rtt4, config_.family_preference_sharpness);
      double w6 = std::pow(1.0 / rtt6, config_.family_preference_sharpness) *
                  config_.v6_weight_multiplier;
      use_v6 = rng_.NextDouble() < w6 / (w4 + w6);
    } else {
      use_v6 = !(can_v4 && current->v4 != nullptr);
    }
    const net::IpAddress* server = use_v6 ? current->v6 : current->v4;
    net::Endpoint src{
        use_v6 ? *host->v6 : *host->v4,
        static_cast<std::uint16_t>(1024 + rng_.NextBelow(60000))};

    std::optional<dns::EdnsInfo> edns;
    if (config_.edns_udp_size > 0) {
      edns = dns::EdnsInfo{config_.edns_udp_size, config_.validate_dnssec, 0};
    }
    dns::Message& query = query_msg_;
    query.ResetAsQueryFor(static_cast<std::uint16_t>(rng_.Next()), qname,
                          qtype, edns);
    dns::WireBuffer& wire = query_wire_;
    query.EncodeInto(wire);

    const std::uint64_t srtt_key = SrttKey(host->site, *server);
    for (int attempt = 0;; ++attempt) {
      --budget;
      ++upstream_total_;
      sim::Network::SendResult& sent = send_scratch_;
      network_->Query(src, host->site, *server, dns::Transport::kUdp, wire,
                      now + elapsed, sent);
      if (sent.delivered()) {
        if (attempt == 0) {
          // Karn's algorithm: only first-transmission exchanges feed the
          // estimator — a retransmitted exchange's RTT is ambiguous.
          auto it = srtt_.find(srtt_key);
          if (it == srtt_.end()) {
            double rtt = static_cast<double>(sent.rtt_us);
            srtt_.emplace(srtt_key, SrttState{rtt, rtt / 2.0});
          } else {
            SrttState& state = it->second;
            double rtt = static_cast<double>(sent.rtt_us);
            state.rttvar =
                0.75 * state.rttvar + 0.25 * std::abs(state.srtt - rtt);
            state.srtt = 0.75 * state.srtt + 0.25 * rtt;
          }
        }

        Upstream ok;
        if (!dns::Message::DecodeInto(sent.response.data(),
                                      sent.response.size(), ok.response) ||
            ok.response.header.id != query.header.id) {
          return failure;
        }
        if (ok.response.header.tc) {
          // Truncated UDP answer: retry over TCP (RFC 1035 §4.2.2). This
          // is also the RRL "slip" recovery path.
          if (budget <= 0) return failure;
          --budget;
          ++upstream_total_;
          network_->Query(src, host->site, *server, dns::Transport::kTcp,
                          wire, now + elapsed, sent);
          if (!sent.delivered()) return failure;
          if (!dns::Message::DecodeInto(sent.response.data(),
                                        sent.response.size(), ok.response) ||
              ok.response.header.id != query.header.id) {
            return failure;
          }
        }
        ok.ok = true;
        return ok;
      }
      if (!sent.timed_out()) return failure;  // no route / server dropped

      // Lost query, lost response, or withdrawn site: wait out the RTO,
      // then retransmit with Karn backoff until this server's attempts or
      // the overall budget run out.
      ++timeout_total_;
      elapsed += RtoFor(srtt_key, attempt);
      if (attempt < config_.retry.max_retransmits && budget > 0) {
        ++retransmit_total_;
        continue;
      }
      break;  // server declared unresponsive
    }
    PenalizeSrtt(srtt_key);

    if (failover >= config_.retry.max_failovers || budget <= 0) {
      return failure;
    }
    // NS-set failover: try the lowest-SRTT candidate not yet attempted
    // (the penalty above keeps dead servers at the back of the line for
    // subsequent resolutions too).
    const Candidate* next = nullptr;
    double next_srtt = 0.0;
    for (const auto& c : candidates) {
      if (std::find(tried.begin(), tried.end(), &c) != tried.end()) continue;
      double e = candidate_srtt(c);
      if (next == nullptr || e < next_srtt) {
        next = &c;
        next_srtt = e;
      }
    }
    if (next == nullptr) return failure;  // whole NS set unresponsive
    ++failover_total_;
    current = next;
  }
}

sim::TimeUs RecursiveResolver::RtoFor(std::uint64_t srtt_key,
                                      int attempt) const {
  // RFC 6298 adapted to DNS: RTO = SRTT + 4·RTTVAR, 1 s before any sample,
  // clamped to the configured band, then doubled per retransmission.
  double rto_us = 1'000'000.0;
  auto it = srtt_.find(srtt_key);
  if (it != srtt_.end()) {
    rto_us = it->second.srtt + 4.0 * it->second.rttvar;
  }
  auto rto = static_cast<sim::TimeUs>(rto_us);
  rto = std::clamp(rto, config_.retry.rto_min_us, config_.retry.rto_max_us);
  rto <<= std::min(attempt, 10);
  return std::min(rto, config_.retry.rto_max_us);
}

void RecursiveResolver::PenalizeSrtt(std::uint64_t srtt_key) {
  auto it = srtt_
                .try_emplace(srtt_key,
                             SrttState{kDefaultSrttUs, kDefaultSrttUs / 2.0})
                .first;
  it->second.srtt = std::min(it->second.srtt * 2.0,
                             static_cast<double>(config_.retry.rto_max_us));
}

ZoneEntry RecursiveResolver::ZoneFromReferral(const dns::Message& response,
                                              const dns::Name& cut,
                                              sim::TimeUs now) const {
  ZoneEntry entry;
  entry.apex = cut;
  std::uint32_t ns_ttl = 3600;
  for (const auto& rr : response.authorities) {
    if (rr.type == dns::RrType::kNs && rr.name.Equals(cut)) {
      entry.ns_names.push_back(std::get<dns::NsRdata>(rr.rdata).nameserver);
      ns_ttl = rr.ttl;
    }
  }
  for (const auto& rr : response.additionals) {
    if (rr.type == dns::RrType::kA) {
      entry.v4_addresses.push_back(std::get<dns::ARdata>(rr.rdata).address);
    } else if (rr.type == dns::RrType::kAaaa) {
      entry.v6_addresses.push_back(
          std::get<dns::AaaaRdata>(rr.rdata).address);
    }
  }
  sim::TimeUs ttl_us = static_cast<sim::TimeUs>(std::max<std::uint32_t>(
                           ns_ttl, 60)) *
                       sim::kMicrosPerSecond;
  entry.expires_at = now + std::min(ttl_us, kMaxInfraTtl);
  return entry;
}

bool RecursiveResolver::EnsureAddresses(ZoneEntry& zone, sim::TimeUs now,
                                        int& budget, int depth) {
  if (!zone.v4_addresses.empty() || !zone.v6_addresses.empty()) return true;
  // Glueless delegation: resolve the nameserver names themselves. Resolvers
  // fetch both A and AAAA for their upstream targets when dual-stack.
  bool want_v6 = false;
  for (const auto& host : config_.hosts) want_v6 |= host.v6.has_value();

  for (const auto& ns_name : zone.ns_names) {
    Result a = ResolveInternal(ns_name, dns::RrType::kA, now, budget,
                               depth + 1);
    if (a.rcode == dns::Rcode::kNoError) {
      for (const auto& rr : a.records) {
        if (rr.type == dns::RrType::kA) {
          zone.v4_addresses.push_back(std::get<dns::ARdata>(rr.rdata).address);
        }
      }
    }
    if (want_v6) {
      Result aaaa = ResolveInternal(ns_name, dns::RrType::kAaaa, now, budget,
                                    depth + 1);
      if (aaaa.rcode == dns::Rcode::kNoError) {
        for (const auto& rr : aaaa.records) {
          if (rr.type == dns::RrType::kAaaa) {
            zone.v6_addresses.push_back(
                std::get<dns::AaaaRdata>(rr.rdata).address);
          }
        }
      }
    }
    if (!zone.v4_addresses.empty() || !zone.v6_addresses.empty()) return true;
  }
  return false;
}

void RecursiveResolver::FetchDsIfNeeded(ZoneEntry& parent, ZoneEntry& child,
                                        sim::TimeUs now, int& budget) {
  if (child.ds != ZoneEntry::Ds::kUnknown) return;
  // Only zones whose parent chain is secure need a DS; an insecure parent
  // makes the child provably insecure too.
  if (parent.ds != ZoneEntry::Ds::kPresent) {
    child.ds = ZoneEntry::Ds::kAbsent;
    return;
  }
  Upstream reply = Send(parent, child.apex, dns::RrType::kDs, now, budget);
  if (!reply.ok) return;  // leave unknown; retried on next descent
  bool present = false;
  for (const auto& rr : reply.response.answers) {
    if (rr.type == dns::RrType::kDs) {
      present = true;
      break;
    }
  }
  child.ds = present ? ZoneEntry::Ds::kPresent : ZoneEntry::Ds::kAbsent;
}

void RecursiveResolver::FetchDnskeyIfNeeded(ZoneEntry& zone, sim::TimeUs now,
                                            int& budget) {
  if (zone.ds != ZoneEntry::Ds::kPresent) return;
  if (zone.dnskey_expires_at > now) return;
  Upstream reply = Send(zone, zone.apex, dns::RrType::kDnskey, now, budget);
  if (!reply.ok) return;
  std::uint32_t ttl = 3600;
  for (const auto& rr : reply.response.answers) {
    if (rr.type == dns::RrType::kDnskey) ttl = rr.ttl;
  }
  zone.dnskey_expires_at =
      now + static_cast<sim::TimeUs>(ttl) * sim::kMicrosPerSecond;
}

}  // namespace clouddns::resolver
