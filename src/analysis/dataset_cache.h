// Scenario result caching for the bench harness: simulating a capture week
// takes seconds, and most benches share datasets. The capture stream is
// persisted in the columnar format; everything else in a ScenarioResult is
// deterministic from the config and is rebuilt with a traffic-free run.
#pragma once

#include <string>

#include "cloud/scenario.h"

namespace clouddns::analysis {

/// Directory used by default ("./clouddns_cache"); override with the
/// CLOUDDNS_CACHE_DIR environment variable.
[[nodiscard]] std::string DefaultCacheDir();

/// Effective per-dataset client-query budget: the config's value unless
/// the CLOUDDNS_QUERIES environment variable overrides it.
[[nodiscard]] std::uint64_t EffectiveQueryBudget(std::uint64_t configured);

/// Deterministic cache key for a scenario configuration.
[[nodiscard]] std::string CacheKey(const cloud::ScenarioConfig& config);

/// Runs the scenario, reusing the cached capture stream when one exists
/// for this exact configuration. Pass an empty `cache_dir` to disable
/// caching entirely.
[[nodiscard]] cloud::ScenarioResult LoadOrRun(cloud::ScenarioConfig config,
                                              const std::string& cache_dir =
                                                  DefaultCacheDir());

}  // namespace clouddns::analysis
